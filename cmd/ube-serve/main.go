// Command ube-serve runs the µBE session service: the interactive
// solve → inspect → refine loop exposed over HTTP for many concurrent
// users (see internal/server for the API).
//
// Usage:
//
//	ube-serve [-addr :8080] [-workers 4] [-queue 32] [-session-ttl 30m] [-audit audit.jsonl]
//	ube-serve -wal-dir /var/lib/ube/wal [-wal-fsync] [-snapshot-every 16]   durable sessions
//	ube-serve -audit-chain chain.log [-audit-chain-key K]                   tamper-evident audit
//
// With -wal-dir, sessions are durable: every create, committed solve,
// delete and evict is written ahead to a segment log there, and startup
// replays whatever the log holds — after a crash, every acknowledged
// session comes back with its history bit-identical (see internal/wal
// and DESIGN.md §14). -audit-chain mirrors the audit trail into a
// hash-chained, Merkle-sealed log that ube-audit can verify offline.
//
// The process drains gracefully on SIGTERM/SIGINT: new work is refused
// with 503, event streams disconnect, in-flight and queued solves finish
// and are answered, then the listener closes and the process exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ube/internal/auditlog"
	"ube/internal/faultinject"
	"ube/internal/schemaio"
	"ube/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "solve worker pool size")
		queue        = flag.Int("queue", 32, "admission queue depth (excess solves get 429)")
		maxSessions  = flag.Int("max-sessions", 256, "maximum live sessions")
		sessionTTL   = flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle this long (0 disables)")
		auditPath    = flag.String("audit", "", "append-only JSONL audit log path (\"-\" for stdout, empty disables)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "maximum time to wait for in-flight solves on shutdown")
		solveTimeout = flag.Duration("solve-timeout", 0, "per-solve deadline; past it the solve is cancelled with 504 (0 disables)")
		retryAfter   = flag.Int("retry-after", 2, "Retry-After seconds sent with 429/503/504 responses")
		faultPlan    = flag.String("fault-plan", "", "fault-injection plan JSON path (chaos testing only; see internal/faultinject)")
		walDir       = flag.String("wal-dir", "", "write-ahead-log directory: makes sessions durable across restarts (empty disables)")
		walFsync     = flag.Bool("wal-fsync", false, "fsync every WAL group commit before acknowledging")
		walSegBytes  = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0: default 16 MiB)")
		snapEvery    = flag.Int("snapshot-every", 16, "write a per-session WAL snapshot every N solves, bounding recovery replay")
		chainPath    = flag.String("audit-chain", "", "tamper-evident audit chain path (hash-chained, Merkle-sealed; verify with ube-audit)")
		chainKey     = flag.String("audit-chain-key", "", "HMAC key signing the audit chain's Merkle roots (empty: unsigned)")
	)
	flag.Parse()

	cfg := server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		MaxSessions:       *maxSessions,
		SessionTTL:        *sessionTTL,
		SolveTimeout:      *solveTimeout,
		RetryAfterSeconds: *retryAfter,
		WALDir:            *walDir,
		WALFsync:          *walFsync,
		WALSegmentBytes:   *walSegBytes,
		SnapshotEvery:     *snapEvery,
	}
	if *faultPlan != "" {
		raw, err := os.ReadFile(*faultPlan)
		if err != nil {
			log.Fatalf("reading fault plan: %v", err)
		}
		plan, err := schemaio.DecodeFaultPlanBytes(raw)
		if err != nil {
			log.Fatalf("fault plan %s: %v", *faultPlan, err)
		}
		cfg.FaultInjector = faultinject.MustNew(plan)
		log.Printf("CHAOS: fault plan %s armed (seed %d, %d entries) — not for production",
			*faultPlan, plan.Seed, len(plan.Entries))
	}
	switch *auditPath {
	case "":
	case "-":
		cfg.AuditWriter = os.Stdout
	default:
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening audit log: %v", err)
		}
		defer f.Close()
		cfg.AuditWriter = f
	}
	if *chainPath != "" {
		var key []byte
		if *chainKey != "" {
			key = []byte(*chainKey)
		}
		cw, f, err := auditlog.OpenFile(*chainPath, auditlog.Options{Key: key})
		if err != nil {
			log.Fatalf("opening audit chain: %v", err)
		}
		defer f.Close()
		cfg.AuditChain = cw
	}

	srv, err := server.Open(cfg)
	if err != nil {
		log.Fatalf("opening server: %v", err)
	}
	if *walDir != "" {
		// Surface what startup recovery found (also served as the
		// /metrics walRecovery section).
		if data, err := json.Marshal(srv.Metrics()); err == nil {
			var m struct {
				Recovery json.RawMessage `json:"walRecovery"`
			}
			if json.Unmarshal(data, &m) == nil && len(m.Recovery) > 0 {
				log.Printf("durable: recovered from %s: %s", *walDir, m.Recovery)
			}
		}
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("ube-serve listening on %s (workers=%d queue=%d)", *addr, *workers, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("signal received; draining (timeout %s)", *drainTimeout)
	// Refuse new work first so clients fail fast to another replica,
	// then let the HTTP layer finish in-flight requests (solve handlers
	// are still waiting on their results), then stop the worker pool.
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	fmt.Println("drained cleanly")
}
