// Command ube-lint statically checks the µBE tree against the invariants
// its incremental evaluation pipeline depends on: solve determinism (no
// map-order dependence, no wall clock, no global RNG, no goroutine
// identity in solver packages), module-wide nondeterminism taint flow
// into solver/trace/wire sinks, float discipline (no bare float equality
// outside tests), lock and atomic discipline, sync.Pool hygiene and the
// DeltaObjective fallback protocol. It is built purely on the standard
// library's go/parser, go/ast and go/types.
//
// Usage:
//
//	ube-lint [-checks name,...] [-exclude-checks name,...]
//	         [-format text|json] [-tags tag,...] [-list] [patterns]
//
// Patterns are package directories, optionally recursive ("./...", the
// default). -format json emits a machine-readable array of
// {file,line,col,check,message,suppression} objects. Exit status: 0
// clean, 1 diagnostics reported, 2 load or usage error. See DESIGN.md
// ("Invariant catalog" and "Determinism taint analysis") for the checks
// and the //ube:* suppression annotations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ube/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	exclude := flag.String("exclude-checks", "", "comma-separated checks to skip")
	format := flag.String("format", "text", "output format: text or json")
	tags := flag.String("tags", "", "comma-separated extra build tags for file selection")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ube-lint [flags] [patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, name := range lint.CheckNames {
			fmt.Printf("%-14s %s\n", name, lint.CheckDocs[name])
		}
		return
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "ube-lint: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	var cfg lint.Config
	cfg.Checks = parseCheckList(*checks)
	cfg.ExcludeChecks = parseCheckList(*exclude)
	if *tags != "" {
		cfg.BuildTags = strings.Split(*tags, ",")
	}

	diags, err := lint.Run(flag.Args(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ube-lint: %v\n", err)
		os.Exit(2)
	}
	if *format == "json" {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "ube-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ube-lint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// parseCheckList splits a comma-separated check list, rejecting unknown
// names with exit status 2.
func parseCheckList(s string) []string {
	if s == "" {
		return nil
	}
	var names []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if lint.CheckDocs[name] == "" {
			fmt.Fprintf(os.Stderr, "ube-lint: unknown check %q (run -list for the catalog)\n", name)
			os.Exit(2)
		}
		names = append(names, name)
	}
	return names
}
