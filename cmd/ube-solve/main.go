// Command ube-solve runs one µBE iteration non-interactively: it loads a
// universe (JSON from ube-gen, or the Figure 1 text format) and a problem
// spec (JSON), solves, and writes the solution as JSON. It is the
// batch/pipeline counterpart of the interactive ube command.
//
// Usage:
//
//	ube-solve -universe universe.json -problem problem.json [-o solution.json]
//	ube-solve -schemas sources.txt -m 5
//
// A minimal problem spec:
//
//	{"maxSources": 10,
//	 "weights": {"match":0.4, "card":0.3, "coverage":0.2, "redundancy":0.1},
//	 "constraints": {"sources": [3]}}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ube"
	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/spec"
)

func main() {
	var (
		universeFn = flag.String("universe", "", "universe JSON (from ube-gen)")
		schemasFn  = flag.String("schemas", "", "source descriptions in the Figure 1 text format")
		problemFn  = flag.String("problem", "", "problem spec JSON (default: paper defaults with -m)")
		m          = flag.Int("m", 20, "maxSources when no problem spec is given")
		out        = flag.String("o", "", "output path (default: stdout)")
	)
	flag.Parse()

	u, err := loadUniverse(*universeFn, *schemasFn)
	if err != nil {
		fatal(err)
	}
	prob, err := loadProblem(*problemFn, *m, u)
	if err != nil {
		fatal(err)
	}
	eng, err := ube.NewEngine(u)
	if err != nil {
		fatal(err)
	}
	sol, err := eng.Solve(&prob)
	if err != nil {
		fatal(err)
	}

	doc := spec.Render(u, sol)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func loadUniverse(universeFn, schemasFn string) (*model.Universe, error) {
	switch {
	case universeFn != "" && schemasFn != "":
		return nil, fmt.Errorf("give either -universe or -schemas, not both")
	case schemasFn != "":
		f, err := os.Open(schemasFn)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ube.ParseSchemas(f)
	case universeFn != "":
		data, err := os.ReadFile(universeFn)
		if err != nil {
			return nil, err
		}
		var u model.Universe
		if err := json.Unmarshal(data, &u); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", universeFn, err)
		}
		if err := u.Validate(); err != nil {
			return nil, err
		}
		return &u, nil
	default:
		return nil, fmt.Errorf("need -universe or -schemas")
	}
}

func loadProblem(problemFn string, m int, u *model.Universe) (engine.Problem, error) {
	if problemFn == "" {
		// Paper defaults, adapted to what the universe defines.
		p := engine.DefaultProblem()
		p.MaxSources = m
		if !hasChar(u, "mttf") {
			w := p.Weights["mttf"]
			delete(p.Weights, "mttf")
			delete(p.Characteristics, "mttf")
			rest := 1 - w
			for k, v := range p.Weights {
				p.Weights[k] = v / rest
			}
		}
		return p, nil
	}
	data, err := os.ReadFile(problemFn)
	if err != nil {
		return engine.Problem{}, err
	}
	var s spec.ProblemSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return engine.Problem{}, fmt.Errorf("parsing %s: %w", problemFn, err)
	}
	return s.Build()
}

func hasChar(u *model.Universe, name string) bool {
	for i := range u.Sources {
		if _, ok := u.Sources[i].Characteristics[name]; ok {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ube-solve:", err)
	os.Exit(1)
}
