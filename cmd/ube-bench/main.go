// Command ube-bench regenerates the tables and figures of the paper's
// evaluation (§7) and prints them as text tables. Absolute numbers differ
// from the paper (different hardware, language and synthetic BAMM
// substitute); the shapes — how time and quality move with universe size,
// selection bound, constraints and weights — are the reproduction target.
// See EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	ube-bench [-exp all|fig5|fig6|fig7|fig8|tab1|pcsa|perturb|solvers|incremental|trace|scale|churn] [-quick] [-evals 6000] [-seed 0]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.jsonl]
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"text/tabwriter"

	"ube/internal/asciiplot"
	"ube/internal/experiments"
	"ube/internal/schemaio"
	"ube/internal/trace"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run: all, fig5, fig6, fig7, fig8, tab1, pcsa, perturb, solvers, uncoop, datasim, theta, incremental, trace, scale, churn")
		quick      = flag.Bool("quick", false, "scaled-down workload for smoke runs")
		evals      = flag.Int("evals", 0, "per-solve evaluation budget (0 = default)")
		seed       = flag.Int64("seed", 0, "experiment seed offset")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.BoolVar(&plotFigures, "plot", false, "draw ASCII charts for the figures")
	flag.StringVar(&csvDir, "csv", "", "also write each experiment's rows as CSV into this directory")
	flag.StringVar(&traceFile, "trace", "", "write the trace experiment's captured solve trace as JSONL to this file")
	flag.Parse()
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}

	o := experiments.Options{Quick: *quick, MaxEvals: *evals, Seed: *seed}
	err := run(*exp, o)

	// Flush profiles before reporting any experiment error, so a failed
	// run still leaves a usable profile behind.
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		fmt.Printf("wrote %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			fatal(ferr)
		}
		runtime.GC() // materialize only live allocations in the profile
		if ferr := pprof.WriteHeapProfile(f); ferr != nil {
			fatal(ferr)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *memprofile)
	}
	if err != nil {
		fatal(err)
	}
}

// run dispatches one experiment (or all of them) under options o.
func run(exp string, o experiments.Options) error {
	runners := map[string]func(experiments.Options) error{
		"fig5":        runFig5,
		"fig6":        runFig6,
		"fig7":        runFig7,
		"fig8":        runFig8,
		"tab1":        runTable1,
		"pcsa":        runPCSA,
		"perturb":     runPerturb,
		"solvers":     runSolvers,
		"uncoop":      runUncoop,
		"datasim":     runDataSim,
		"theta":       runTheta,
		"incremental": runIncremental,
		"trace":       runTrace,
		"scale":       runScale,
		"churn":       runChurn,
	}
	names := []string{"fig5", "fig6", "fig7", "fig8", "tab1", "pcsa", "perturb", "solvers", "uncoop", "datasim", "theta", "incremental", "trace", "scale", "churn"}

	if exp == "all" {
		for _, name := range names {
			if err := runners[name](o); err != nil {
				return err
			}
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want %s or all)", exp, strings.Join(names, ", "))
	}
	return r(o)
}

// plotFigures draws ASCII charts after each figure's table when set;
// csvDir, when set, receives one CSV file per experiment; traceFile,
// when set, receives the trace experiment's captured solve trace.
var (
	plotFigures bool
	csvDir      string
	traceFile   string
)

// writeCSV dumps one experiment's table as <csvDir>/<name>.csv.
func writeCSV(name string, header []string, rows [][]string) {
	if csvDir == "" {
		return
	}
	path := filepath.Join(csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	if err := w.WriteAll(rows); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

// plotSeries renders one multi-series chart when -plot is on.
func plotSeries(title, xlabel, ylabel string, xs []float64, series []asciiplot.Series) {
	if !plotFigures {
		return
	}
	p := &asciiplot.Plot{Title: title, XLabel: xlabel, YLabel: ylabel, X: xs, Series: series}
	out, err := p.Render()
	if err != nil {
		fmt.Fprintln(os.Stderr, "plot:", err)
		return
	}
	fmt.Println()
	fmt.Print(out)
}

// rowSeries converts TimeQualityRows to plot series per variant.
func rowSeries(rows []experiments.TimeQualityRow, pick func(experiments.TimeQualityRow, string) float64) ([]float64, []asciiplot.Series) {
	xs := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = float64(r.X)
	}
	series := make([]asciiplot.Series, len(experiments.Variants))
	for vi, v := range experiments.Variants {
		ys := make([]float64, len(rows))
		for i, r := range rows {
			ys[i] = pick(r, v.Name)
		}
		series[vi] = asciiplot.Series{Name: v.Name, Y: ys}
	}
	return xs, series
}

// table prints rows under a header through one tabwriter.
func table(title string, header []string, rows [][]string) {
	fmt.Printf("\n=== %s ===\n", title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
}

func variantNames() []string {
	names := make([]string, len(experiments.Variants))
	for i, v := range experiments.Variants {
		names[i] = v.Name
	}
	return names
}

func runFig5(o experiments.Options) error {
	rows, err := experiments.Fig5(o)
	if err != nil {
		return err
	}
	names := variantNames()
	header := append([]string{"universe size"}, names...)
	out := make([][]string, len(rows))
	for i, r := range rows {
		cells := []string{fmt.Sprint(r.X)}
		for _, n := range names {
			cells = append(cells, fmt.Sprintf("%.2fs", r.Seconds[n]))
		}
		out[i] = cells
	}
	table("Figure 5: time to choose sources vs universe size (columns = constraint variants)", header, out)
	writeCSV("fig5", header, out)
	xs, series := rowSeries(rows, func(r experiments.TimeQualityRow, v string) float64 { return r.Seconds[v] })
	plotSeries("Figure 5", "universe size", "seconds", xs, series)
	return nil
}

func runFig6(o experiments.Options) error {
	rows, err := experiments.Fig6And7(o)
	if err != nil {
		return err
	}
	names := variantNames()
	header := append([]string{"sources to choose"}, names...)
	out := make([][]string, len(rows))
	for i, r := range rows {
		cells := []string{fmt.Sprint(r.X)}
		for _, n := range names {
			cells = append(cells, fmt.Sprintf("%.2fs", r.Seconds[n]))
		}
		out[i] = cells
	}
	table("Figure 6: time vs number of sources to choose (columns = constraint variants)", header, out)
	writeCSV("fig6", header, out)
	xs, series := rowSeries(rows, func(r experiments.TimeQualityRow, v string) float64 { return r.Seconds[v] })
	plotSeries("Figure 6", "sources to choose", "seconds", xs, series)
	return nil
}

func runFig7(o experiments.Options) error {
	rows, err := experiments.Fig6And7(o)
	if err != nil {
		return err
	}
	names := variantNames()
	header := append([]string{"sources to choose"}, names...)
	out := make([][]string, len(rows))
	for i, r := range rows {
		cells := []string{fmt.Sprint(r.X)}
		for _, n := range names {
			cells = append(cells, fmt.Sprintf("%.4f", r.Quality[n]))
		}
		out[i] = cells
	}
	table("Figure 7: overall quality vs number of sources to choose (columns = constraint variants)", header, out)
	writeCSV("fig7", header, out)
	xs, series := rowSeries(rows, func(r experiments.TimeQualityRow, v string) float64 { return r.Quality[v] })
	plotSeries("Figure 7", "sources to choose", "Q(S)", xs, series)
	return nil
}

func runFig8(o experiments.Options) error {
	rows, err := experiments.Fig8(o)
	if err != nil {
		return err
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprintf("%.1f", r.Weight),
			fmt.Sprintf("%.4f", r.Card),
			fmt.Sprintf("%.4f", r.Quality),
		}
	}
	table("Figure 8: solution cardinality vs weight on the Card QEF",
		[]string{"w_card", "Card(S)", "Q(S)"}, out)
	writeCSV("fig8", []string{"w_card", "Card(S)", "Q(S)"}, out)
	xs := make([]float64, len(rows))
	ys := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = r.Weight
		ys[i] = r.Card
	}
	plotSeries("Figure 8", "w_card", "Card(S)", xs, []asciiplot.Series{{Name: "Card(S)", Y: ys}})
	return nil
}

func runTable1(o experiments.Options) error {
	rows, err := experiments.Table1(o)
	if err != nil {
		return err
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprint(r.M), fmt.Sprint(r.Selected), fmt.Sprint(r.TrueGAs),
			fmt.Sprint(r.Attrs), fmt.Sprint(r.Missed), fmt.Sprint(r.False), fmt.Sprint(r.Junk),
		}
	}
	table("Table 1: quality of GAs (200-source universe, no constraints)",
		[]string{"m", "sources selected", "true GAs selected", "attrs in true GAs", "true GAs missed", "false GAs", "junk GAs"}, out)
	writeCSV("tab1", []string{"m", "sources_selected", "true_gas", "attrs_in_true_gas", "missed", "false", "junk"}, out)
	return nil
}

func runPCSA(o experiments.Options) error {
	res, err := experiments.PCSAAccuracy(o)
	if err != nil {
		return err
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = []string{
			fmt.Sprint(r.Sources),
			fmt.Sprintf("%.0f", r.Estimate),
			fmt.Sprint(r.Exact),
			fmt.Sprintf("%.2f%%", r.ErrPct),
		}
	}
	table("PCSA union-cardinality accuracy (§7.3)",
		[]string{"|S|", "estimate", "exact", "error"}, out)
	writeCSV("pcsa", []string{"sources", "estimate", "exact", "error_pct"}, out)
	fmt.Printf("worst-case error: %.2f%% (paper reports 7%%)\n", res.WorstErrPct)
	fmt.Printf("signature memory: %.1f KiB across all sources\n", float64(res.SignatureBytes)/1024)
	return nil
}

func runPerturb(o experiments.Options) error {
	trials := 20
	if o.Quick {
		trials = 5
	}
	res, err := experiments.WeightPerturbation(o, trials)
	if err != nil {
		return err
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = []string{fmt.Sprint(r.Trial), fmt.Sprint(r.SourcesChanged), fmt.Sprint(r.GAsChanged)}
	}
	table("Weight sensitivity: ±15% random weight perturbation (§7.4)",
		[]string{"trial", "sources changed", "GAs changed"}, out)
	writeCSV("perturb", []string{"trial", "sources_changed", "gas_changed"}, out)
	fmt.Printf("worst case: %d sources, %d GAs changed (paper: sources rarely change, ≤1 GA)\n",
		res.MaxSourcesChanged, res.MaxGAsChanged)
	return nil
}

func runSolvers(o experiments.Options) error {
	seeds := 3
	if o.Quick {
		seeds = 1
	}
	rows, err := experiments.SolverComparison(o, seeds)
	if err != nil {
		return err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Quality > rows[j].Quality })
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Name,
			fmt.Sprintf("%.4f", r.Quality),
			fmt.Sprintf("%.2fs", r.Seconds),
			fmt.Sprintf("%d/%d", r.Feasible, r.Seeds),
		}
	}
	table("Optimizer comparison under a shared evaluation budget (§6)",
		[]string{"solver", "mean quality", "mean time", "feasible"}, out)
	writeCSV("solvers", []string{"solver", "mean_quality", "mean_time_s", "feasible"}, out)
	return nil
}

func runUncoop(o experiments.Options) error {
	rows, err := experiments.Uncooperative(o)
	if err != nil {
		return err
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprintf("%.0f%%", r.Fraction*100),
			fmt.Sprintf("%.4f", r.Quality),
			fmt.Sprintf("%.4f", r.TrueCoverage),
			fmt.Sprintf("%d/%d", r.UncoopSelected, r.Selected),
		}
	}
	table("Uncooperative sources: quality and true coverage vs signature availability (§4)",
		[]string{"uncooperative", "Q(S)", "true coverage", "uncoop selected"}, out)
	writeCSV("uncoop", []string{"uncoop_fraction", "quality", "true_coverage", "uncoop_selected"}, out)
	return nil
}

func runDataSim(o experiments.Options) error {
	rows, err := experiments.DataSim(o)
	if err != nil {
		return err
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprint(r.M),
			fmt.Sprintf("%d / %d", r.NameTrueGAs, r.DataTrueGAs),
			fmt.Sprintf("%d / %d", r.NameAttrs, r.DataAttrs),
			fmt.Sprintf("%d / %d", r.NameMissed, r.DataMissed),
			fmt.Sprint(r.DataFalse),
		}
	}
	table("Data-based matching: 3-gram names vs value-overlap hybrid (§3 extension; cells are name / data)",
		[]string{"m", "true GAs", "attrs in true GAs", "missed", "false (data)"}, out)
	writeCSV("datasim", []string{"m", "true_gas_name_data", "attrs_name_data", "missed_name_data", "false_data"}, out)
	return nil
}

func runTheta(o experiments.Options) error {
	rows, err := experiments.ThetaSweep(o)
	if err != nil {
		return err
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprintf("%.2f", r.Theta),
			fmt.Sprint(r.TrueGAs), fmt.Sprint(r.Attrs),
			fmt.Sprint(r.Missed), fmt.Sprint(r.False),
			fmt.Sprintf("%.4f", r.Quality),
		}
	}
	table("Matching threshold sensitivity: θ sweep around the paper's 0.65",
		[]string{"theta", "true GAs", "attrs in true GAs", "missed", "false GAs", "Q(S)"}, out)
	writeCSV("theta", []string{"theta", "true_gas", "attrs", "missed", "false", "quality"}, out)
	return nil
}

// incrementalSnapshot is the BENCH_incremental.json schema: the run's
// options plus the ablation rows, mirroring the table/CSV output.
type incrementalSnapshot struct {
	Experiment string                       `json:"experiment"`
	Quick      bool                         `json:"quick"`
	MaxEvals   int                          `json:"max_evals"`
	Seed       int64                        `json:"seed"`
	Rows       []experiments.IncrementalRow `json:"rows"`
}

func runIncremental(o experiments.Options) error {
	rows, err := experiments.Incremental(o)
	if err != nil {
		return err
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			fmt.Sprint(r.M),
			fmt.Sprintf("%.2fs", r.Seconds["legacy"]),
			fmt.Sprintf("%.2fs", r.Seconds["incremental"]),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.4f", r.Quality["legacy"]),
			fmt.Sprintf("%.4f", r.Quality["incremental"]),
			fmt.Sprint(r.SameSources),
		}
	}
	header := []string{"m", "legacy", "incremental", "speedup", "Q legacy", "Q incremental", "same sources"}
	table("Incremental evaluation pipeline vs seed path (unconstrained Fig 6 cells)", header, out)
	writeCSV("incremental", header, out)

	snap := incrementalSnapshot{
		Experiment: "incremental",
		Quick:      o.Quick,
		MaxEvals:   o.MaxEvals,
		Seed:       o.Seed,
		Rows:       rows,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_incremental.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_incremental.json")
	return nil
}

// traceSnapshot is the BENCH_trace.json schema: the run's options plus
// the overhead measurement and the captured trace's counter totals.
type traceSnapshot struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	MaxEvals   int    `json:"max_evals"`
	Seed       int64  `json:"seed"`
	*experiments.TraceResult
}

func runTrace(o experiments.Options) error {
	res, err := experiments.TraceOverhead(o)
	if err != nil {
		return err
	}
	out := [][]string{{
		fmt.Sprint(res.M),
		fmt.Sprintf("%.3fs", res.DisabledSeconds),
		fmt.Sprintf("%.3fs", res.EnabledSeconds),
		fmt.Sprintf("%.2f%%", res.OverheadPct),
		fmt.Sprint(res.Spans),
		fmt.Sprint(res.SameSources),
	}}
	header := []string{"m", "disabled", "enabled", "overhead", "spans", "same sources"}
	table("Solve tracing overhead (golden Fig 6 cell, min of runs)", header, out)
	writeCSV("trace", header, out)

	fmt.Println()
	if err := trace.RenderTable(os.Stdout, res.Trace, 5); err != nil {
		return err
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := schemaio.EncodeTrace(f, res.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", traceFile)
	}

	snap := traceSnapshot{
		Experiment:  "trace",
		Quick:       o.Quick,
		MaxEvals:    o.MaxEvals,
		Seed:        o.Seed,
		TraceResult: res,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_trace.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_trace.json")
	return nil
}

// scaleSnapshot is the BENCH_scale.json schema: the run's options plus
// the sweep rows and the dense-vs-sparse parity checks.
type scaleSnapshot struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	MaxEvals   int    `json:"max_evals"`
	Seed       int64  `json:"seed"`
	*experiments.ScaleResult
}

func runScale(o experiments.Options) error {
	res, err := experiments.Scale(o)
	if err != nil {
		return err
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = []string{
			fmt.Sprint(r.U),
			fmt.Sprint(r.Vocab),
			fmt.Sprint(r.QuadraticPairs),
			fmt.Sprint(r.BlockCandidates),
			fmt.Sprintf("%.3f%%", r.CandidateSharePct),
			fmt.Sprint(r.ClusterPairs),
			fmt.Sprint(r.BoundSkips),
			fmt.Sprintf("%.2fs", r.SolveSeconds),
			fmt.Sprintf("%.4f", r.Quality),
		}
	}
	header := []string{"U", "vocab", "n^2 pairs", "block cand", "cand share", "cluster pairs", "bound skips", "solve", "Q(S)"}
	table("Scale: blocking-index sparse path on large universes", header, out)
	writeCSV("scale", header, out)

	pout := make([][]string, len(res.Parity))
	for i, r := range res.Parity {
		pout[i] = []string{
			fmt.Sprint(r.U),
			fmt.Sprint(r.SameSources),
			fmt.Sprintf("%.6f", r.QualityDense),
			fmt.Sprintf("%.6f", r.QualitySparse),
			fmt.Sprintf("%.4f%%", r.GapPct),
		}
	}
	table("Scale parity: dense matrix vs sparse blocking path (same universe, same problem)",
		[]string{"U", "same sources", "Q dense", "Q sparse", "gap"}, pout)

	snap := scaleSnapshot{
		Experiment:  "scale",
		Quick:       o.Quick,
		MaxEvals:    o.MaxEvals,
		Seed:        o.Seed,
		ScaleResult: res,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_scale.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_scale.json")
	return nil
}

// churnSnapshot is the BENCH_churn.json schema: the run's options plus
// the warm-vs-fresh sweep rows.
type churnSnapshot struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	MaxEvals   int    `json:"max_evals"`
	Seed       int64  `json:"seed"`
	*experiments.ChurnResult
}

func runChurn(o experiments.Options) error {
	res, err := experiments.Churn(o)
	if err != nil {
		return err
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = []string{
			fmt.Sprint(r.U),
			fmt.Sprint(r.Batches),
			fmt.Sprint(r.Mutations),
			fmt.Sprintf("%.3fs", r.WarmSeconds),
			fmt.Sprintf("%.3fs", r.FreshSeconds),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.2gs", r.MaintainSeconds),
			fmt.Sprintf("%.2gs", r.RebuildSeconds),
			fmt.Sprint(r.SameSolutions),
			fmt.Sprintf("%.4f", r.Quality),
		}
	}
	header := []string{"U", "batches", "mutations", "warm", "fresh rebuild", "speedup", "maintain", "rebuild", "same solutions", "Q(S)"}
	table("Churn: incremental re-solve vs rebuild-from-scratch after universe mutation", header, out)
	writeCSV("churn", header, out)

	snap := churnSnapshot{
		Experiment:  "churn",
		Quick:       o.Quick,
		MaxEvals:    o.MaxEvals,
		Seed:        o.Seed,
		ChurnResult: res,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_churn.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_churn.json")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ube-bench:", err)
	os.Exit(1)
}
