// Command ube-trace aggregates solve traces (the JSONL files written by
// ube-bench -trace or served by GET /v1/sessions/{id}/trace) into a
// per-phase attribution table: for each span name, how often it ran and
// where its time went (total vs self), the hottest individual spans, and
// the solve's work-counter totals. With -diff it compares two traces
// phase by phase, so a performance change reads as "agenda self time
// down, same pops".
//
// Usage:
//
//	ube-trace [-top N] trace.jsonl
//	ube-trace -diff before.jsonl after.jsonl
//
// "-" reads a trace from stdin.
package main

import (
	"flag"
	"fmt"
	"os"

	"ube/internal/schemaio"
	"ube/internal/trace"
)

func main() {
	var (
		top  = flag.Int("top", 5, "number of hottest spans to list")
		diff = flag.Bool("diff", false, "compare two traces phase by phase")
	)
	flag.Parse()
	args := flag.Args()

	switch {
	case *diff:
		if len(args) != 2 {
			fatal(fmt.Errorf("-diff needs exactly two trace files, got %d", len(args)))
		}
		a, err := readTrace(args[0])
		if err != nil {
			fatal(err)
		}
		b, err := readTrace(args[1])
		if err != nil {
			fatal(err)
		}
		if err := trace.RenderDiff(os.Stdout, a, b); err != nil {
			fatal(err)
		}
	case len(args) == 1:
		tr, err := readTrace(args[0])
		if err != nil {
			fatal(err)
		}
		if err := trace.RenderTable(os.Stdout, tr, *top); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: ube-trace [-top N] trace.jsonl | ube-trace -diff a.jsonl b.jsonl")
		os.Exit(2)
	}
}

// readTrace decodes one JSONL trace file; "-" means stdin.
func readTrace(path string) (*trace.Trace, error) {
	if path == "-" {
		return schemaio.DecodeTrace(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := schemaio.DecodeTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ube-trace:", err)
	os.Exit(1)
}
