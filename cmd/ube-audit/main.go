// Command ube-audit verifies and queries the tamper-evident audit
// chains written by ube-serve -audit-chain (see internal/auditlog): a
// hash-chained JSONL file whose records are sealed under Merkle roots,
// optionally HMAC-signed.
//
// Usage:
//
//	ube-audit verify [-key K] chain.log      full verification; localizes the first bad record
//	ube-audit prove  [-key K] -seq N chain.log   emit a self-contained inclusion proof (JSON, stdout)
//	ube-audit check  [-key K] proof.json     verify a proof produced by prove
//	ube-audit stats  [-key K] chain.log      chain summary (records, batches, unsealed tail, last root)
//
// "-" reads the chain (or proof) from stdin. -key gives the HMAC key
// that signed the roots; with it, every root's signature is required to
// verify. Exit status: 0 when everything holds, 1 when verification
// fails (the first offending line and sequence number are reported), 2
// on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ube/internal/auditlog"
	"ube/internal/schemaio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "verify":
		runVerify(args)
	case "prove":
		runProve(args)
	case "check":
		runCheck(args)
	case "stats":
		runStats(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ube-audit <verify|prove|check|stats> [flags] <file>
  verify [-key K] chain.log
  prove  [-key K] -seq N [-o proof.json] chain.log
  check  [-key K] proof.json
  stats  [-key K] chain.log`)
	os.Exit(2)
}

// keyFlag registers the shared -key flag on a subcommand's flag set.
func keyFlag(fs *flag.FlagSet) *string {
	return fs.String("key", "", "HMAC key the chain's roots were signed with (empty: signatures not required)")
}

// keyBytes renders the flag as the byte key Verify and friends take.
func keyBytes(key string) []byte {
	if key == "" {
		return nil
	}
	return []byte(key)
}

// openInput opens the positional input file; "-" means stdin.
func openInput(fs *flag.FlagSet) io.ReadCloser {
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	if path == "-" {
		return io.NopCloser(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	return f
}

func runVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	key := keyFlag(fs)
	_ = fs.Parse(args)
	in := openInput(fs)
	defer in.Close()

	rep := auditlog.Verify(in, keyBytes(*key))
	if !rep.OK {
		fmt.Fprintf(os.Stderr, "FAIL: %s\n", rep.Reason)
		fmt.Fprintf(os.Stderr, "  first bad line: %d\n", rep.Line)
		if rep.Seq > 0 {
			fmt.Fprintf(os.Stderr, "  first bad record: seq %d\n", rep.Seq)
		}
		fmt.Fprintf(os.Stderr, "  intact prefix: %d records, %d sealed batches\n", rep.Records, rep.Batches)
		os.Exit(1)
	}
	fmt.Printf("OK: %d records, %d batches, %d unsealed, last seq %d\n",
		rep.Records, rep.Batches, rep.Unsealed, rep.LastSeq)
	if rep.LastRoot != "" {
		fmt.Printf("last root: %s\n", rep.LastRoot)
	}
	if *key != "" && !rep.Signed {
		// Verify with a key already fails on bad signatures; Signed=false
		// with a key means the chain carries no signatures at all.
		fmt.Fprintln(os.Stderr, "FAIL: key given but the chain's roots are unsigned")
		os.Exit(1)
	}
}

func runProve(args []string) {
	fs := flag.NewFlagSet("prove", flag.ExitOnError)
	key := keyFlag(fs)
	seq := fs.Uint64("seq", 0, "1-based sequence number of the record to prove")
	out := fs.String("o", "-", "proof output path (\"-\" for stdout)")
	_ = fs.Parse(args)
	if *seq == 0 {
		fmt.Fprintln(os.Stderr, "prove: -seq is required (records are 1-based)")
		os.Exit(2)
	}
	in := openInput(fs)
	defer in.Close()

	proof, err := auditlog.Prove(in, *seq, keyBytes(*key))
	if err != nil {
		fatal(err)
	}
	data, err := schemaio.EncodeAuditProof(proof)
	if err != nil {
		fatal(err)
	}
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fatal(err)
	}
}

func runCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	key := keyFlag(fs)
	_ = fs.Parse(args)
	in := openInput(fs)
	defer in.Close()

	data, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	proof, err := schemaio.DecodeAuditProofBytes(data)
	if err != nil {
		fatal(err)
	}
	if err := auditlog.CheckProof(proof, keyBytes(*key)); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("OK: record %d is included under batch %d root %s\n", proof.Seq, proof.Batch, proof.Root)
}

func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	key := keyFlag(fs)
	_ = fs.Parse(args)
	in := openInput(fs)
	defer in.Close()

	st, err := auditlog.ReadStats(in, keyBytes(*key))
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("records:  %d\nbatches:  %d\nunsealed: %d\nlast seq: %d\n", st.Records, st.Batches, st.Unsealed, st.LastSeq)
	if st.LastRoot != "" {
		fmt.Printf("last root: %s\n", st.LastRoot)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ube-audit:", err)
	os.Exit(1)
}
