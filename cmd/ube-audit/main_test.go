// CLI-level golden tests for ube-audit. The committed fixtures under
// testdata/ are deterministic chains built from synthetic audit entries
// (the chain format has no clock of its own — record bytes are
// caller-supplied), so the exact file bytes, the CLI's stdout and the
// inclusion-proof JSON are all pinned. Regenerate after an intentional
// format change with:
//
//	go test ./cmd/ube-audit -update
//
// and review the fixture diff like any other golden.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"ube/internal/auditlog"
	"ube/internal/schemaio"
)

var update = flag.Bool("update", false, "rewrite the committed fixtures under testdata/")

// fixtureKey signs the roots of chain-signed.log and its corrupt corpus.
const fixtureKey = "ube-fixture-key"

// TestMain doubles as the CLI entry point: when re-exec'd with the
// dispatch variable set, the test binary IS ube-audit. This keeps the
// exit-status contract (0 ok, 1 verification failure, 2 usage) testable
// without shipping a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("UBE_AUDIT_TEST_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	flag.Parse()
	if *update {
		if err := regenerate(); err != nil {
			fmt.Fprintln(os.Stderr, "regenerating fixtures:", err)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// runCLI re-execs the test binary as ube-audit and captures its output
// and exit status.
func runCLI(stdin []byte, args ...string) (stdout, stderr string, code int, err error) {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "UBE_AUDIT_TEST_RUN_MAIN=1")
	if stdin != nil {
		cmd.Stdin = bytes.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	runErr := cmd.Run()
	code = 0
	if runErr != nil {
		ee, ok := runErr.(*exec.ExitError)
		if !ok {
			return "", "", 0, runErr
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code, nil
}

// fixtureRecords mints n synthetic audit entries shaped like the
// server's real ones, with fixed timestamps so the chain bytes are
// reproducible.
func fixtureRecords(n int) [][]byte {
	actions := []string{"session.create", "solve.enqueue", "solve.apply", "solve.done"}
	recs := make([][]byte, 0, n)
	for i := 1; i <= n; i++ {
		line := fmt.Sprintf(
			`{"ts":"2026-08-01T00:00:%02d.000000000Z","session":"s-%04d","action":%q,"remote":"203.0.113.7:4%03d","detail":{"iter":%d}}`,
			i, (i-1)/4+1, actions[(i-1)%4], i, i)
		recs = append(recs, []byte(line))
	}
	return recs
}

// buildChain renders a chain over records with the given options.
func buildChain(records [][]byte, opts auditlog.Options) ([]byte, error) {
	var buf bytes.Buffer
	w, err := auditlog.NewWriter(&buf, opts)
	if err != nil {
		return nil, err
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// flipAt returns a copy of data with one byte XOR-flipped at a fixed
// offset past the first occurrence of marker.
func flipAt(data []byte, marker string, off int) ([]byte, error) {
	idx := bytes.Index(data, []byte(marker))
	if idx < 0 {
		return nil, fmt.Errorf("marker %q not found", marker)
	}
	out := append([]byte(nil), data...)
	out[idx+off] ^= 0x01
	return out, nil
}

// corruptVariants is the committed flipped-byte corpus: one single-byte
// mutation per verifier failure class, each derived from
// chain-signed.log at a marker-anchored offset.
var corruptVariants = []struct {
	name   string
	marker string
	off    int
}{
	{"record-byte", `"solve.apply"`, 1}, // inside an embedded audit entry
	{"seq-digit", `"seq":12,`, 7},       // a record's sequence number
	{"leaf-hex", `"leaf":"`, 8},         // a record's leaf hash
	{"chain-hex", `"chain":"`, 9},       // the running chain hash
	{"root-hex", `"root":"`, 8},         // a sealed Merkle root
	{"sig-hex", `"sig":"`, 7},           // a root's HMAC signature
}

// regenerate rewrites every committed fixture: the two chains, the
// corrupt corpus, the inclusion-proof golden, and the pinned CLI
// stdout goldens (captured from the CLI itself so they track the real
// output format).
func regenerate() error {
	unsigned, err := buildChain(fixtureRecords(21), auditlog.Options{BatchSize: 8})
	if err != nil {
		return err
	}
	signed, err := buildChain(fixtureRecords(16), auditlog.Options{BatchSize: 8, Key: []byte(fixtureKey)})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join("testdata", "corrupt"), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join("testdata", "chain.log"), unsigned, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join("testdata", "chain-signed.log"), signed, 0o644); err != nil {
		return err
	}
	for _, v := range corruptVariants {
		mut, err := flipAt(signed, v.marker, v.off)
		if err != nil {
			return fmt.Errorf("corrupt variant %s: %w", v.name, err)
		}
		path := filepath.Join("testdata", "corrupt", v.name+".log")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			return err
		}
	}
	// The proof golden and the stdout goldens come from the CLI itself.
	goldens := []struct {
		path string
		args []string
	}{
		{"proof.json", []string{"prove", "-key", fixtureKey, "-seq", "11", filepath.Join("testdata", "chain-signed.log")}},
		{"verify.golden", []string{"verify", filepath.Join("testdata", "chain.log")}},
		{"verify-signed.golden", []string{"verify", "-key", fixtureKey, filepath.Join("testdata", "chain-signed.log")}},
		{"stats-signed.golden", []string{"stats", "-key", fixtureKey, filepath.Join("testdata", "chain-signed.log")}},
		{"check.golden", []string{"check", "-key", fixtureKey, filepath.Join("testdata", "proof.json")}},
	}
	for _, g := range goldens {
		stdout, stderr, code, err := runCLI(nil, g.args...)
		if err != nil {
			return err
		}
		if code != 0 {
			return fmt.Errorf("golden command %v exited %d: %s", g.args, code, stderr)
		}
		if err := os.WriteFile(filepath.Join("testdata", g.path), []byte(stdout), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// readFixture loads one committed fixture.
func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	return data
}

// expectCLI runs the CLI and checks exit status plus pinned stdout.
func expectCLI(t *testing.T, wantCode int, golden string, args ...string) (stdout, stderr string) {
	t.Helper()
	stdout, stderr, code, err := runCLI(nil, args...)
	if err != nil {
		t.Fatal(err)
	}
	if code != wantCode {
		t.Fatalf("ube-audit %v exited %d, want %d\nstdout: %s\nstderr: %s", args, code, wantCode, stdout, stderr)
	}
	if golden != "" {
		want := string(readFixture(t, golden))
		if stdout != want {
			t.Errorf("stdout diverges from %s\n--- got ---\n%s--- want ---\n%s", golden, stdout, want)
		}
	}
	return stdout, stderr
}

// TestVerifyGoldens pins verify's exit status and exact stdout on both
// committed chains.
func TestVerifyGoldens(t *testing.T) {
	expectCLI(t, 0, "verify.golden", "verify", filepath.Join("testdata", "chain.log"))
	expectCLI(t, 0, "verify-signed.golden", "verify", "-key", fixtureKey, filepath.Join("testdata", "chain-signed.log"))
}

// TestVerifyStdin covers the "-" input path: the same chain piped on
// stdin verifies identically.
func TestVerifyStdin(t *testing.T) {
	chain := readFixture(t, "chain.log")
	stdout, stderr, code, err := runCLI(chain, "verify", "-")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("verify - exited %d: %s", code, stderr)
	}
	if want := string(readFixture(t, "verify.golden")); stdout != want {
		t.Errorf("stdin verify stdout %q, want %q", stdout, want)
	}
}

// TestVerifyKeyDiscipline pins the two key-mismatch failures: a wrong
// key must reject a signed chain, and a key given for an unsigned chain
// must fail rather than silently verify nothing.
func TestVerifyKeyDiscipline(t *testing.T) {
	_, stderr := expectCLI(t, 1, "", "verify", "-key", "not-the-key", filepath.Join("testdata", "chain-signed.log"))
	if !strings.Contains(stderr, "FAIL") {
		t.Errorf("wrong-key stderr lacks FAIL: %s", stderr)
	}
	_, stderr = expectCLI(t, 1, "", "verify", "-key", fixtureKey, filepath.Join("testdata", "chain.log"))
	if !strings.Contains(stderr, "unsigned") {
		t.Errorf("key-on-unsigned stderr does not name the problem: %s", stderr)
	}
}

// TestCorruptCorpus runs verify over every committed flipped-byte
// variant: each must exit 1 and localize a failure on stderr.
func TestCorruptCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corrupt", "*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(corruptVariants) {
		t.Fatalf("%d corrupt fixtures on disk, want %d (run with -update)", len(paths), len(corruptVariants))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			_, stderr := expectCLI(t, 1, "", "verify", "-key", fixtureKey, path)
			if !strings.Contains(stderr, "FAIL:") {
				t.Errorf("stderr lacks FAIL: %s", stderr)
			}
			if !strings.Contains(stderr, "first bad line:") {
				t.Errorf("stderr does not localize the bad line: %s", stderr)
			}
		})
	}
}

// TestEveryByteFlipFailsVerification sweeps BOTH flip masks over EVERY
// byte of both committed chains through the same Verify the CLI calls:
// no single-byte mutation of a committed fixture may verify. (The
// corrupt corpus above pins a per-failure-class sample end to end; this
// sweep closes the gaps between the samples.)
func TestEveryByteFlipFailsVerification(t *testing.T) {
	cases := []struct {
		fixture string
		key     []byte
	}{
		{"chain.log", nil},
		{"chain-signed.log", []byte(fixtureKey)},
	}
	for _, tc := range cases {
		data := readFixture(t, tc.fixture)
		for _, mask := range []byte{0x01, 0x80} {
			for pos := range data {
				mut := append([]byte(nil), data...)
				mut[pos] ^= mask
				if rep := auditlog.Verify(bytes.NewReader(mut), tc.key); rep.OK {
					t.Fatalf("%s with byte %d ^ %#x still verifies", tc.fixture, pos, mask)
				}
			}
		}
	}
}

// TestProveCheckGoldens pins the committed inclusion proof byte for
// byte and round-trips it through check.
func TestProveCheckGoldens(t *testing.T) {
	stdout, _ := expectCLI(t, 0, "proof.json", "prove", "-key", fixtureKey, "-seq", "11", filepath.Join("testdata", "chain-signed.log"))
	if !strings.Contains(stdout, schemaio.AuditProofDocName) {
		t.Errorf("proof output lacks the doc name: %s", stdout)
	}
	expectCLI(t, 0, "check.golden", "check", "-key", fixtureKey, filepath.Join("testdata", "proof.json"))
}

// TestProofMutationsFailCheck mutates every hash-bound field of the
// committed proof: the record bytes, the sequence number, a fold-path
// sibling, the root, and the signature. Each must fail decode or check.
// (The batch number is labeling, not hash-bound, so it is not swept.)
func TestProofMutationsFailCheck(t *testing.T) {
	proof := readFixture(t, "proof.json")
	muts := []struct {
		name   string
		marker string
		off    int
	}{
		{"record-byte", `"action":"`, 10},
		{"seq-digit", `"seq":11,`, 7},
		{"sibling-hex", `"sibling":"`, 11},
		{"root-hex", `"root":"`, 8},
		{"sig-hex", `"sig":"`, 7},
	}
	for _, m := range muts {
		t.Run(m.name, func(t *testing.T) {
			mut, err := flipAt(proof, m.marker, m.off)
			if err != nil {
				t.Fatal(err)
			}
			d, err := schemaio.DecodeAuditProofBytes(mut)
			if err != nil {
				return // rejected at decode: detected
			}
			if err := auditlog.CheckProof(d, []byte(fixtureKey)); err == nil {
				t.Error("mutated proof still checks out")
			}
		})
	}
}

// TestStatsGolden pins stats' stdout on the signed chain.
func TestStatsGolden(t *testing.T) {
	expectCLI(t, 0, "stats-signed.golden", "stats", "-key", fixtureKey, filepath.Join("testdata", "chain-signed.log"))
}

// TestUsageExitCodes pins exit status 2 on usage errors.
func TestUsageExitCodes(t *testing.T) {
	for _, args := range [][]string{
		nil,            // no subcommand
		{"frobnicate"}, // unknown subcommand
		{"prove", filepath.Join("testdata", "chain.log")}, // prove without -seq
	} {
		_, _, code, err := runCLI(nil, args...)
		if err != nil {
			t.Fatal(err)
		}
		if code != 2 {
			t.Errorf("ube-audit %v exited %d, want 2", args, code)
		}
	}
}
