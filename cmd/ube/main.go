// Command ube is the interactive µBE tool: the terminal counterpart of the
// paper's GUI (Figure 4). It loads (or synthesizes) a universe of data
// sources and runs the iterative exploration loop of §6: solve, inspect
// the chosen sources and mediated schema, pin what you like as
// constraints, reweight the quality dimensions, and solve again.
//
// Usage:
//
//	ube [-universe universe.json] [-schemas sources.txt] [-synth 200] [-quick] [-m 20]
//
// Then type "help" at the prompt.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ube"
	"ube/internal/repl"
)

func main() {
	var (
		universeFn = flag.String("universe", "", "universe JSON produced by ube-gen (default: synthesize)")
		schemasFn  = flag.String("schemas", "", "source descriptions in the Figure 1 text format (\"name: {attr, attr}\")")
		synthN     = flag.Int("synth", 200, "number of sources to synthesize when no universe file is given")
		quick      = flag.Bool("quick", false, "synthesize the scaled-down workload")
		m          = flag.Int("m", 20, "initial maximum number of sources to select")
	)
	flag.Parse()

	u, err := loadUniverse(*universeFn, *schemasFn, *synthN, *quick)
	if err != nil {
		fatal(err)
	}
	eng, err := ube.NewEngine(u)
	if err != nil {
		fatal(err)
	}
	prob := ube.DefaultProblem()
	prob.MaxSources = *m
	adaptProblem(&prob, eng)
	sess := ube.NewSession(eng, prob)

	fmt.Printf("µBE: %d sources, %d attributes, %d distinct names. Type \"help\".\n",
		u.N(), u.NumAttributes(), eng.VocabularySize())

	if err := repl.New(sess, os.Stdout).Run(os.Stdin); err != nil {
		fatal(err)
	}
}

func loadUniverse(path, schemasPath string, n int, quick bool) (*ube.Universe, error) {
	if schemasPath != "" {
		f, err := os.Open(schemasPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ube.ParseSchemas(f)
	}
	if path == "" {
		cfg := ube.DefaultWorkload()
		if quick {
			cfg = ube.QuickWorkload(n)
		}
		cfg.NumSources = n
		u, _, err := ube.Generate(cfg)
		return u, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var u ube.Universe
	if err := json.Unmarshal(data, &u); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return &u, nil
}

// adaptProblem drops characteristic QEFs the loaded universe does not
// define (e.g. a Figure 1 schema list has no MTTF figures) and
// redistributes their weight over the remaining QEFs.
func adaptProblem(p *ube.Problem, eng *ube.Engine) {
	freed := 0.0
	for name := range p.Characteristics {
		if _, _, ok := eng.Context().CharRange(name); !ok {
			freed += p.Weights[name]
			delete(p.Characteristics, name)
			delete(p.Weights, name)
			fmt.Printf("note: no source defines %q; dropping that QEF\n", name)
		}
	}
	if freed > 0 {
		rest := 1 - freed
		for name, w := range p.Weights {
			if rest > 0 {
				p.Weights[name] = w / rest
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ube:", err)
	os.Exit(1)
}
