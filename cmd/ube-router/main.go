// Command ube-router is the consistent-hash front for sharded µBE
// serving (see internal/router and DESIGN.md §15): it proxies the
// REST/SSE surface of N ube-serve shard processes, placing each session
// on one shard by hashing its ID onto a ring of virtual nodes, so every
// session keeps the single-server deterministic serialization guarantee
// while the fleet scales horizontally.
//
// Usage:
//
//	ube-router -shards http://h1:8080,http://h2:8080 [-addr :8090]
//	           [-replicas 128] [-retry-after 2] [-probe-interval 500ms]
//	           [-fault-plan plan.json]
//
// Placement is a pure function of (shard list, replicas): every
// ube-router started with the same -shards and -replicas routes every
// session identically, so routers are stateless and interchangeable.
// Shard health only gates traffic — an unreachable shard's sessions get
// 503 + Retry-After until probes readmit it; its keys are never
// re-hashed elsewhere, because session state is shard-local.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ube/internal/faultinject"
	"ube/internal/router"
	"ube/internal/schemaio"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		shards        = flag.String("shards", "", "comma-separated shard base URLs, in shard-index order (required)")
		replicas      = flag.Int("replicas", router.DefaultReplicas, "virtual nodes per shard on the hash ring (must match across routers)")
		retryAfter    = flag.Int("retry-after", 2, "Retry-After seconds sent with router-generated 503s")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "shard health probe period")
		faultPlan     = flag.String("fault-plan", "", "fault-injection plan JSON path (chaos testing only)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for in-flight proxied requests on shutdown")
	)
	flag.Parse()

	var urls []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			urls = append(urls, strings.TrimRight(s, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("ube-router: -shards is required (comma-separated base URLs)")
	}

	cfg := router.Config{
		Shards:            urls,
		Replicas:          *replicas,
		RetryAfterSeconds: *retryAfter,
		ProbeInterval:     *probeInterval,
	}
	if *faultPlan != "" {
		raw, err := os.ReadFile(*faultPlan)
		if err != nil {
			log.Fatalf("reading fault plan: %v", err)
		}
		plan, err := schemaio.DecodeFaultPlanBytes(raw)
		if err != nil {
			log.Fatalf("fault plan %s: %v", *faultPlan, err)
		}
		cfg.FaultInjector = faultinject.MustNew(plan)
		log.Printf("CHAOS: fault plan %s armed (seed %d, %d entries) — not for production",
			*faultPlan, plan.Seed, len(plan.Entries))
	}

	rt, err := router.New(cfg)
	if err != nil {
		log.Fatalf("building router: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("ube-router listening on %s fronting %d shards (replicas=%d)", *addr, len(urls), *replicas)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("signal received; draining (timeout %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	rt.Close()
	log.Println("drained cleanly")
}
