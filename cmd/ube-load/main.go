// Command ube-load is a closed-loop load generator for ube-serve: N
// simulated users each create a session over a shared synthetic catalog
// and run the same solve → pin → tighten → reweight script, as fast as
// the server admits them. It reports throughput, latency percentiles and
// queue rejections as BENCH_serve.json, and verifies the service's
// determinism contract end to end: because every user runs an identical
// script against an identical session, all N iteration histories must be
// bit-identical (timing metadata aside) no matter how the scheduler
// interleaved them.
//
// Usage:
//
//	ube-load -users 32 -iters 4 -addr http://localhost:8080
//	ube-load -users 10            # no -addr: serves in-process
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/schemaio"
	"ube/internal/server"
	"ube/internal/synth"
)

func main() {
	var (
		addr    = flag.String("addr", "", "base URL of a running ube-serve (empty: serve in-process)")
		users   = flag.Int("users", 32, "concurrent simulated users")
		iters   = flag.Int("iters", 4, "solve iterations per user")
		n       = flag.Int("n", 40, "sources in the synthetic catalog")
		evals   = flag.Int("evals", 400, "solver evaluation budget per solve")
		workers = flag.Int("workers", 4, "worker pool size (in-process server only)")
		queue   = flag.Int("queue", 32, "admission queue depth (in-process server only)")
		out     = flag.String("o", "BENCH_serve.json", "benchmark output path")
	)
	flag.Parse()

	u, _, err := synth.Generate(synth.QuickConfig(*n))
	if err != nil {
		log.Fatalf("generating catalog: %v", err)
	}

	base := *addr
	var inproc *server.Server
	var httpSrv *http.Server
	if base == "" {
		inproc = server.New(server.Config{Workers: *workers, QueueDepth: *queue, MaxSessions: *users + 8})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		httpSrv = &http.Server{Handler: inproc.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		base = "http://" + ln.Addr().String()
		log.Printf("in-process server on %s (workers=%d queue=%d)", base, *workers, *queue)
	}

	bench, err := run(base, u, *users, *iters, *evals)
	if err != nil {
		log.Fatal(err)
	}

	if inproc != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		if err := inproc.Shutdown(ctx); err != nil {
			log.Fatalf("in-process shutdown: %v", err)
		}
	}

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", data)
	if !bench.Deterministic {
		log.Fatal("FAIL: user histories diverged — determinism contract broken")
	}
}

// benchDoc is the BENCH_serve.json schema.
type benchDoc struct {
	Users         int     `json:"users"`
	ItersPerUser  int     `json:"itersPerUser"`
	Sources       int     `json:"sources"`
	TotalSolves   int     `json:"totalSolves"`
	WallSeconds   float64 `json:"wallSeconds"`
	SolvesPerSec  float64 `json:"solvesPerSec"`
	LatencyMsP50  float64 `json:"latencyMsP50"`
	LatencyMsP95  float64 `json:"latencyMsP95"`
	LatencyMsP99  float64 `json:"latencyMsP99"`
	LatencyMsMax  float64 `json:"latencyMsMax"`
	Rejections429 int     `json:"rejections429"`
	RetriesSlept  int     `json:"retriesSlept"`
	Deterministic bool    `json:"deterministic"`
	ServerMetrics any     `json:"serverMetrics,omitempty"`
}

// userResult is one simulated user's run.
type userResult struct {
	latenciesMs []float64
	rejections  int
	history     string // canonical history JSON, timing stripped
	err         error
}

func run(base string, u *model.Universe, users, iters, evals int) (*benchDoc, error) {
	prob := engine.DefaultProblem()
	if prob.MaxSources > u.N() {
		prob.MaxSources = u.N()
	}
	prob.MaxEvals = evals
	probDoc, err := schemaio.EncodeProblem(&prob)
	if err != nil {
		return nil, err
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	results := make([]userResult, users)
	var wg sync.WaitGroup
	//ube:nondeterministic-ok benchmark wall-clock measurement
	start := time.Now()
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runUser(client, base, u, probDoc, iters)
		}(i)
	}
	wg.Wait()
	//ube:nondeterministic-ok benchmark wall-clock measurement
	wall := time.Since(start)

	bench := &benchDoc{
		Users:        users,
		ItersPerUser: iters,
		Sources:      u.N(),
		WallSeconds:  wall.Seconds(),
	}
	var all []float64
	deterministic := true
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, fmt.Errorf("user %d: %w", i, r.err)
		}
		all = append(all, r.latenciesMs...)
		bench.Rejections429 += r.rejections
		if r.history != results[0].history {
			deterministic = false
		}
	}
	bench.Deterministic = deterministic
	bench.TotalSolves = users * iters
	if wall > 0 {
		bench.SolvesPerSec = float64(bench.TotalSolves) / wall.Seconds()
	}
	sort.Float64s(all)
	bench.LatencyMsP50 = percentile(all, 0.50)
	bench.LatencyMsP95 = percentile(all, 0.95)
	bench.LatencyMsP99 = percentile(all, 0.99)
	if len(all) > 0 {
		bench.LatencyMsMax = all[len(all)-1]
	}
	bench.RetriesSlept = bench.Rejections429

	var metrics any
	if err := getJSON(client, base+"/metrics", &metrics); err == nil {
		bench.ServerMetrics = metrics
	}
	return bench, nil
}

// runUser plays one user's script: create a session, then iterate the
// paper's feedback loop — solve, pin the best source, tighten θ, bias a
// weight — with edits derived only from the previous response, so every
// user's script (and therefore history) is identical.
func runUser(client *http.Client, base string, u *model.Universe, prob *schemaio.ProblemDoc, iters int) userResult {
	var r userResult

	var created struct {
		ID string `json:"id"`
	}
	status, err := postJSON(client, base+"/v1/sessions", map[string]any{"universe": u, "problem": prob}, &created)
	if err != nil {
		r.err = err
		return r
	}
	if status != http.StatusCreated {
		r.err = fmt.Errorf("create session: HTTP %d", status)
		return r
	}
	sessionURL := base + "/v1/sessions/" + created.ID

	var lastSources []int
	for k := 0; k < iters; k++ {
		edit := map[string]any{}
		switch {
		case k == 0: // cold solve, no edits
		case k%3 == 1 && len(lastSources) > 0: // pin the first chosen source
			edit["pinSources"] = []int{lastSources[0]}
		case k%3 == 2: // tighten the matching threshold
			edit["theta"] = 0.75
		default: // bias cardinality, rescaling the rest
			edit["setWeights"] = map[string]float64{"card": 0.5}
		}

		var solved struct {
			Solution *schemaio.SolutionDoc `json:"solution"`
		}
		for {
			//ube:nondeterministic-ok per-request latency measurement
			t0 := time.Now()
			status, retryAfter, err := postJSONRetry(client, sessionURL+"/solve", edit, &solved)
			//ube:nondeterministic-ok per-request latency measurement
			dt := time.Since(t0)
			if err != nil {
				r.err = err
				return r
			}
			if status == http.StatusTooManyRequests {
				r.rejections++
				time.Sleep(retryAfter)
				continue
			}
			if status != http.StatusOK {
				r.err = fmt.Errorf("solve %d: HTTP %d", k, status)
				return r
			}
			r.latenciesMs = append(r.latenciesMs, float64(dt.Nanoseconds())/1e6)
			break
		}
		if solved.Solution != nil {
			lastSources = solved.Solution.Sources
		}
	}

	var hist struct {
		Iterations []schemaio.IterationDoc `json:"iterations"`
	}
	if err := getJSON(client, sessionURL+"/history", &hist); err != nil {
		r.err = err
		return r
	}
	for i := range hist.Iterations {
		hist.Iterations[i].Solution.ElapsedNS = 0 // timing metadata is not part of the contract
	}
	canon, err := json.Marshal(hist.Iterations)
	if err != nil {
		r.err = err
		return r
	}
	r.history = string(canon)
	return r
}

func postJSON(client *http.Client, url string, body, out any) (int, error) {
	status, _, err := postJSONRetry(client, url, body, out)
	return status, err
}

// postJSONRetry posts and, on 429, surfaces the server's Retry-After
// delay so callers can back off exactly as asked.
func postJSONRetry(client *http.Client, url string, body, out any) (int, time.Duration, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if out != nil {
			return resp.StatusCode, 0, json.NewDecoder(resp.Body).Decode(out)
		}
	}
	backoff := 100 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			backoff = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, backoff, nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// percentile returns the q-quantile of sorted (nearest-rank on the
// sorted slice).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
