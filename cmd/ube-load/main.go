// Command ube-load is a closed-loop load generator for ube-serve: N
// simulated users each create a session over a shared synthetic catalog
// and run the same solve → pin → tighten → reweight script, as fast as
// the server admits them. It reports throughput, latency percentiles and
// queue rejections as BENCH_serve.json, and verifies the service's
// determinism contract end to end: because every user runs an identical
// script against an identical session, all N iteration histories must be
// bit-identical (timing metadata aside) no matter how the scheduler
// interleaved them.
//
// Usage:
//
//	ube-load -users 32 -iters 4 -addr http://localhost:8080
//	ube-load -users 10            # no -addr: serves in-process
//	ube-load -chaos plan.json     # chaos mode: replayable fault injection
//	ube-load -churn -users 8      # churn mode: shared mutation schedule, PATCH /universe
//	ube-load -kill-after 3 -resume # durable mode: SIGKILL mid-run, recover, verify
//	ube-load -shards 4 -users 10000 -queue 4096 -solve-cache 64
//	                              # sharded mode: shard children + router (see shard.go)
//
// In chaos mode (-chaos, in-process only) the server is armed with the
// fault plan's injection schedule (see internal/faultinject), the same
// scripted users run against it, and three invariants are checked
// against a fault-free reference run: every surviving history is a
// clean, bit-identical prefix of the reference, and the /metrics
// counters reconcile with the audit log. Any violation exits non-zero
// with the seed and plan needed to replay the run.
//
// In churn mode (-churn, in-process only) every user interleaves the
// scripted solves with the same seeded universe-mutation schedule
// (synth.ChurnSchedule) applied through PATCH /v1/sessions/{id}/universe:
// -iters batches per user, one solve before and after each. All N
// histories and churn acknowledgements must stay bit-identical and the
// server's churn counters must reconcile (every admitted batch committed,
// none errored, conflicted or cancelled); see churn.go.
//
// In durable mode (-kill-after N -resume) ube-load spawns ITSELF as a
// child process running a WAL-backed server (server.Open with a
// scratch -wal-dir), plays the scripted feedback loop against it, and
// after the Nth acknowledged solve SIGKILLs the child mid-flight — the
// real crash, not a simulation. -resume restarts the child on the same
// WAL directory and requires recovery to hand back every acknowledged
// iteration byte-for-byte, then finishes the script and requires the
// final history to match an uninterrupted in-process reference run.
// The verdicts and recovery timing land in BENCH_durable.json.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/schemaio"
	"ube/internal/server"
	"ube/internal/synth"
)

func main() {
	var (
		addr    = flag.String("addr", "", "base URL of a running ube-serve (empty: serve in-process)")
		users   = flag.Int("users", 32, "concurrent simulated users")
		iters   = flag.Int("iters", 4, "solve iterations per user")
		n       = flag.Int("n", 40, "sources in the synthetic catalog")
		evals   = flag.Int("evals", 400, "solver evaluation budget per solve")
		workers = flag.Int("workers", 4, "worker pool size (in-process server only)")
		queue   = flag.Int("queue", 32, "admission queue depth (in-process server only)")
		out     = flag.String("o", "BENCH_serve.json", "benchmark output path")
		seed    = flag.Int64("seed", 1, "base seed for the per-user backoff-jitter RNGs")
		chaos   = flag.String("chaos", "", "fault plan JSON path: run chaos mode (in-process only)")
		timeout = flag.Duration("solve-timeout", 2*time.Second, "per-solve deadline in chaos mode")

		churnMode = flag.Bool("churn", false, "churn mode: interleave solves with a shared seeded mutation schedule (-iters batches per user, in-process only)")
		churnOut  = flag.String("churn-o", "BENCH_churn_serve.json", "churn-mode benchmark output path")

		shards      = flag.Int("shards", 0, "sharded mode: spawn N ube-serve shard children behind an in-process router")
		shardOut    = flag.String("shard-o", "BENCH_shard.json", "sharded-mode benchmark output path")
		solveCache  = flag.Int("solve-cache", 0, "per-shard cross-session solve memo entries (0 disables; see server.Config.SolveCacheSize)")
		binaryWire  = flag.Bool("binary", false, "sharded mode: carry solve and history responses as compact binary frames")
		maxSessions = flag.Int("max-sessions", 256, "maximum live sessions (in-process and child servers)")

		killAfter = flag.Int("kill-after", 0, "durable mode: SIGKILL the WAL-backed server child after N acknowledged solves")
		resume    = flag.Bool("resume", false, "durable mode: restart the killed child on the same WAL and verify recovery")
		walDir    = flag.String("wal-dir", "", "durable mode: WAL directory for the server child (empty: scratch dir)")
		durOut    = flag.String("durable-o", "BENCH_durable.json", "durable-mode benchmark output path")

		serveChild = flag.Bool("serve-child", false, "internal: run as the durable server child (spawned by durable mode)")
		shardChild = flag.Bool("shard-child", false, "internal: run as one shard child (spawned by sharded mode)")
	)
	flag.Parse()

	if *serveChild {
		runServeChild(*walDir, *workers, *queue)
		return
	}
	if *shardChild {
		runShardChild(*workers, *queue, *solveCache, *maxSessions)
		return
	}

	if *churnMode {
		if *addr != "" {
			log.Fatal("-churn runs against an in-process server; drop -addr")
		}
		if err := runChurnMode(*n, *users, *iters, *evals, *workers, *queue, *seed, *churnOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	u, _, err := synth.Generate(synth.QuickConfig(*n))
	if err != nil {
		log.Fatalf("generating catalog: %v", err)
	}

	if *killAfter > 0 {
		if *addr != "" {
			log.Fatal("-kill-after spawns its own server child; drop -addr")
		}
		if !*resume {
			log.Fatal("-kill-after without -resume would only prove the kill; add -resume to verify recovery")
		}
		if err := runDurableMode(u, *killAfter, *iters, *evals, *workers, *queue, *walDir, *durOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *shards > 0 {
		if *addr != "" {
			log.Fatal("-shards spawns its own shard children; drop -addr")
		}
		if err := runShardMode(u, *shards, *users, *iters, *evals, *workers, *queue, *solveCache, *seed, *binaryWire, *shardOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *chaos != "" {
		if *addr != "" {
			log.Fatal("-chaos runs against an in-process server; drop -addr")
		}
		if err := runChaosMode(u, *chaos, *users, *iters, *evals, *workers, *queue, *seed, *timeout); err != nil {
			log.Fatal(err)
		}
		return
	}

	base := *addr
	var inproc *server.Server
	var httpSrv *http.Server
	if base == "" {
		inproc = server.New(server.Config{Workers: *workers, QueueDepth: *queue, MaxSessions: *users + 8})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		httpSrv = &http.Server{Handler: inproc.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		base = "http://" + ln.Addr().String()
		log.Printf("in-process server on %s (workers=%d queue=%d)", base, *workers, *queue)
	}

	bench, err := run(base, u, *users, *iters, *evals, *seed)
	if err != nil {
		log.Fatal(err)
	}

	if inproc != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		if err := inproc.Shutdown(ctx); err != nil {
			log.Fatalf("in-process shutdown: %v", err)
		}
	}

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", data)
	if !bench.Deterministic {
		log.Fatal("FAIL: user histories diverged — determinism contract broken")
	}
}

// benchDoc is the BENCH_serve.json schema.
type benchDoc struct {
	Users         int     `json:"users"`
	ItersPerUser  int     `json:"itersPerUser"`
	Sources       int     `json:"sources"`
	TotalSolves   int     `json:"totalSolves"`
	WallSeconds   float64 `json:"wallSeconds"`
	SolvesPerSec  float64 `json:"solvesPerSec"`
	LatencyMsP50  float64 `json:"latencyMsP50"`
	LatencyMsP95  float64 `json:"latencyMsP95"`
	LatencyMsP99  float64 `json:"latencyMsP99"`
	LatencyMsMax  float64 `json:"latencyMsMax"`
	Rejections429 int     `json:"rejections429"`
	RetriesSlept  int     `json:"retriesSlept"`
	Transient5xx  int     `json:"transient5xxRetries"`
	Deterministic bool    `json:"deterministic"`
	ServerMetrics any     `json:"serverMetrics,omitempty"`
}

// userResult is one simulated user's run.
type userResult struct {
	latenciesMs []float64
	rejections  int // 429s absorbed by backoff
	transients  int // 500/503/504s absorbed by backoff
	abandoned   bool
	iterations  []schemaio.IterationDoc
	history     string // canonical history JSON, timing stripped
	err         error
}

func run(base string, u *model.Universe, users, iters, evals int, seed int64) (*benchDoc, error) {
	prob := engine.DefaultProblem()
	if prob.MaxSources > u.N() {
		prob.MaxSources = u.N()
	}
	prob.MaxEvals = evals
	probDoc, err := schemaio.EncodeProblem(&prob)
	if err != nil {
		return nil, err
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	results := make([]userResult, users)
	var wg sync.WaitGroup
	//ube:nondeterministic-ok benchmark wall-clock measurement
	start := time.Now()
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runUser(client, base, u, probDoc, iters, rand.New(rand.NewSource(seed+int64(i))))
		}(i)
	}
	wg.Wait()
	//ube:nondeterministic-ok benchmark wall-clock measurement
	wall := time.Since(start)

	bench := &benchDoc{
		Users:        users,
		ItersPerUser: iters,
		Sources:      u.N(),
		WallSeconds:  wall.Seconds(),
	}
	var all []float64
	deterministic := true
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, fmt.Errorf("user %d: %w", i, r.err)
		}
		if r.abandoned {
			return nil, fmt.Errorf("user %d: abandoned its script after %d attempts against a fault-free server", i, maxSolveAttempts)
		}
		all = append(all, r.latenciesMs...)
		bench.Rejections429 += r.rejections
		bench.Transient5xx += r.transients
		if r.history != results[0].history {
			deterministic = false
		}
	}
	bench.Deterministic = deterministic
	bench.TotalSolves = users * iters
	if wall > 0 {
		bench.SolvesPerSec = float64(bench.TotalSolves) / wall.Seconds()
	}
	sort.Float64s(all)
	bench.LatencyMsP50 = percentile(all, 0.50)
	bench.LatencyMsP95 = percentile(all, 0.95)
	bench.LatencyMsP99 = percentile(all, 0.99)
	if len(all) > 0 {
		bench.LatencyMsMax = all[len(all)-1]
	}
	bench.RetriesSlept = bench.Rejections429

	var metrics any
	if err := getJSON(client, base+"/metrics", &metrics); err == nil {
		bench.ServerMetrics = metrics
	}
	return bench, nil
}

// maxSolveAttempts bounds the retries one iteration absorbs before the
// user abandons the rest of its script. Against a fault-free server the
// budget is never exhausted; under chaos, exhaustion leaves a clean
// history prefix.
const maxSolveAttempts = 12

// transientStatus reports whether a solve failure is worth retrying
// with the identical request: queue rejection (429), recovered panic
// (500), injected mid-solve cancel (503), or deadline expiry (504). The
// server's full-undo contract makes the retry equivalent.
func transientStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// runUser plays one user's script: create a session, then iterate the
// paper's feedback loop — solve, pin the best source, tighten θ, bias a
// weight — with edits derived only from the previous response, so every
// user's script (and therefore history) is identical. Transient
// failures are retried under rng-jittered exponential backoff floored
// at the server's Retry-After guidance.
func runUser(client *http.Client, base string, u *model.Universe, prob *schemaio.ProblemDoc, iters int, rng *rand.Rand) userResult {
	var r userResult

	var created struct {
		ID string `json:"id"`
	}
	status, err := postJSON(client, base+"/v1/sessions", map[string]any{"universe": u, "problem": prob}, &created)
	if err != nil {
		r.err = err
		return r
	}
	if status != http.StatusCreated {
		r.err = fmt.Errorf("create session: HTTP %d", status)
		return r
	}
	sessionURL := base + "/v1/sessions/" + created.ID

	bo := newBackoff(rng)
	var lastSources []int
script:
	for k := 0; k < iters; k++ {
		edit := scriptEdit(k, lastSources)

		var solved struct {
			Solution *schemaio.SolutionDoc `json:"solution"`
		}
		for attempt := 1; ; attempt++ {
			//ube:nondeterministic-ok per-request latency measurement
			t0 := time.Now()
			status, retryAfter, err := postJSONRetry(client, sessionURL+"/solve", edit, &solved)
			//ube:nondeterministic-ok per-request latency measurement
			dt := time.Since(t0)
			if err != nil {
				r.err = err
				return r
			}
			if status == http.StatusOK {
				r.latenciesMs = append(r.latenciesMs, float64(dt.Nanoseconds())/1e6)
				break
			}
			if !transientStatus(status) {
				r.err = fmt.Errorf("solve %d: HTTP %d", k, status)
				return r
			}
			if status == http.StatusTooManyRequests {
				r.rejections++
			} else {
				r.transients++
			}
			if attempt >= maxSolveAttempts {
				r.abandoned = true
				break script
			}
			time.Sleep(bo.next(retryAfter))
		}
		bo.reset()
		if solved.Solution != nil {
			lastSources = solved.Solution.Sources
		}
	}

	var hist struct {
		Iterations []schemaio.IterationDoc `json:"iterations"`
	}
	if err := getJSON(client, sessionURL+"/history", &hist); err != nil {
		r.err = err
		return r
	}
	r.iterations = hist.Iterations
	for i := range hist.Iterations {
		hist.Iterations[i].Solution.ElapsedNS = 0 // timing metadata is not part of the contract
	}
	canon, err := json.Marshal(hist.Iterations)
	if err != nil {
		r.err = err
		return r
	}
	r.history = string(canon)
	return r
}

// scriptEdit is iteration k's problem edit in the shared user script —
// solve, pin the best source, tighten θ, bias a weight — derived only
// from the iteration index and the previous solution, so every run of
// the script (load users, chaos survivors, durable-mode resumes) edits
// identically.
func scriptEdit(k int, lastSources []int) map[string]any {
	edit := map[string]any{}
	switch {
	case k == 0: // cold solve, no edits
	case k%3 == 1 && len(lastSources) > 0: // pin the first chosen source
		edit["pinSources"] = []int{lastSources[0]}
	case k%3 == 2: // tighten the matching threshold
		edit["theta"] = 0.75
	default: // bias cardinality, rescaling the rest
		edit["setWeights"] = map[string]float64{"card": 0.5}
	}
	return edit
}

// backoff is capped exponential backoff with seeded jitter. The
// server's Retry-After guidance floors every delay; consecutive
// failures double from there up to the cap, plus jitter drawn from the
// user's own RNG so a run with the same -seed sleeps the same schedule.
type backoff struct {
	rng *rand.Rand
	cur time.Duration
}

const (
	backoffFloor = 100 * time.Millisecond
	backoffCap   = 10 * time.Second
)

func newBackoff(rng *rand.Rand) *backoff { return &backoff{rng: rng} }

// reset clears the doubling state after a success.
func (b *backoff) reset() { b.cur = 0 }

// next returns the delay before the following attempt; retryAfter is
// the server's guidance (zero when the response carried none).
func (b *backoff) next(retryAfter time.Duration) time.Duration {
	base := retryAfter
	if base <= 0 {
		base = backoffFloor
	}
	if b.cur < base {
		b.cur = base
	} else {
		b.cur *= 2
	}
	if b.cur > backoffCap {
		b.cur = backoffCap
	}
	jitter := time.Duration(b.rng.Int63n(int64(b.cur/4) + 1))
	return b.cur + jitter
}

func postJSON(client *http.Client, url string, body, out any) (int, error) {
	status, _, err := postJSONRetry(client, url, body, out)
	return status, err
}

// postJSONRetry posts and surfaces the server's Retry-After guidance
// (zero when the response carried none) so callers can back off exactly
// as asked.
func postJSONRetry(client *http.Client, url string, body, out any) (int, time.Duration, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if out != nil {
			return resp.StatusCode, 0, json.NewDecoder(resp.Body).Decode(out)
		}
	}
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// percentile returns the q-quantile of sorted (nearest-rank on the
// sorted slice).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
