// Sharded mode: N ube-serve shard children behind an in-process
// ube-router, driven by the same scripted users as the flat benchmark.
// The parent re-execs itself (-shard-child) per shard so each shard is
// a real OS process with its own heap, GC and solve memo — the deployed
// topology, not a simulation — then mounts internal/router over the
// children's announced addresses and aims the whole user fleet at the
// router.
//
// Determinism across shards is the point of the exercise: every user
// runs the identical script, so every per-user history must be
// bit-identical (operational telemetry aside) no matter which shard the
// ring placed the session on. The run fails, and BENCH_shard.json says
// deterministic:false, if any pair of users diverges — histories are
// compared by SHA-256 so 10k users cost 10k hashes, not 10k histories
// held in memory.
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/router"
	"ube/internal/schemaio"
	"ube/internal/server"
)

// runShardChild is the -shard-child entry: one in-memory shard server
// on an ephemeral port, announced on stdout, served until the parent
// kills the process.
func runShardChild(workers, queue, solveCache, maxSessions int) {
	srv := server.New(server.Config{
		Workers:        workers,
		QueueDepth:     queue,
		MaxSessions:    maxSessions,
		SolveCacheSize: solveCache,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("shard-child: %v", err)
	}
	fmt.Printf("%shttp://%s\n", addrPrefix, ln.Addr())
	if err := (&http.Server{Handler: srv.Handler()}).Serve(ln); err != nil {
		log.Fatalf("shard-child: %v", err)
	}
}

// spawnShardChild starts one shard child and waits for its address.
func spawnShardChild(workers, queue, solveCache, maxSessions int) (*child, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "-shard-child",
		"-workers", strconv.Itoa(workers),
		"-queue", strconv.Itoa(queue),
		"-solve-cache", strconv.Itoa(solveCache),
		"-max-sessions", strconv.Itoa(maxSessions))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, addrPrefix) {
			return &child{cmd: cmd, base: strings.TrimPrefix(line, addrPrefix)}, nil
		}
	}
	_ = cmd.Process.Kill()
	_, _ = cmd.Process.Wait()
	return nil, fmt.Errorf("shard child exited before announcing its address")
}

// shardBenchDoc is the BENCH_shard.json schema.
type shardBenchDoc struct {
	Users         int     `json:"users"`
	ItersPerUser  int     `json:"itersPerUser"`
	Shards        int     `json:"shards"`
	Sources       int     `json:"sources"`
	SolveCache    int     `json:"solveCachePerShard"`
	BinaryWire    bool    `json:"binaryWire"`
	TotalSolves   int     `json:"totalSolves"`
	WallSeconds   float64 `json:"wallSeconds"`
	SolvesPerSec  float64 `json:"solvesPerSec"`
	LatencyMsP50  float64 `json:"latencyMsP50"`
	LatencyMsP95  float64 `json:"latencyMsP95"`
	LatencyMsP99  float64 `json:"latencyMsP99"`
	LatencyMsMax  float64 `json:"latencyMsMax"`
	Rejections429 int     `json:"rejections429"`
	Transient5xx  int     `json:"transient5xxRetries"`
	Deterministic bool    `json:"deterministic"`
	RouterMetrics any     `json:"routerMetrics,omitempty"`
}

// shardUserResult is one user's run in sharded mode: latencies plus a
// history digest instead of the history itself.
type shardUserResult struct {
	latenciesMs []float64
	rejections  int
	transients  int
	histHash    string
	err         error
}

// runShardMode spawns the shard fleet, fronts it with the router, runs
// the user fleet, and writes BENCH_shard.json. The run fails on any
// user error or on determinism divergence.
func runShardMode(u *model.Universe, shards, users, iters, evals, workers, queue, solveCache int, seed int64, binary bool, out string) error {
	prob := engine.DefaultProblem()
	if prob.MaxSources > u.N() {
		prob.MaxSources = u.N()
	}
	prob.MaxEvals = evals
	probDoc, err := schemaio.EncodeProblem(&prob)
	if err != nil {
		return err
	}

	// Each shard must hold every session the ring could place on it;
	// sizing all of them for the full fleet keeps placement skew safe.
	children := make([]*child, 0, shards)
	defer func() {
		for _, c := range children {
			c.kill()
		}
	}()
	urls := make([]string, 0, shards)
	for i := 0; i < shards; i++ {
		c, err := spawnShardChild(workers, queue, solveCache, users+8)
		if err != nil {
			return fmt.Errorf("spawning shard %d: %w", i, err)
		}
		children = append(children, c)
		urls = append(urls, c.base)
	}

	rt, err := router.New(router.Config{Shards: urls})
	if err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	log.Printf("router on %s fronting %d shards (workers=%d queue=%d solve-cache=%d binary=%v)",
		base, shards, workers, queue, solveCache, binary)

	// One pooled client for the whole fleet: 10k users share a bounded
	// connection pool instead of opening 10k sockets.
	client := &http.Client{
		Timeout: 5 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
			MaxConnsPerHost:     256,
		},
	}

	results := make([]shardUserResult, users)
	var wg sync.WaitGroup
	//ube:nondeterministic-ok benchmark wall-clock measurement
	start := time.Now()
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runShardUser(client, base, u, probDoc, iters, binary, rand.New(rand.NewSource(seed+int64(i))))
		}(i)
	}
	wg.Wait()
	//ube:nondeterministic-ok benchmark wall-clock measurement
	wall := time.Since(start)

	bench := &shardBenchDoc{
		Users:        users,
		ItersPerUser: iters,
		Shards:       shards,
		Sources:      u.N(),
		SolveCache:   solveCache,
		BinaryWire:   binary,
		TotalSolves:  users * iters,
		WallSeconds:  wall.Seconds(),
	}
	var all []float64
	deterministic := true
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return fmt.Errorf("user %d: %w", i, r.err)
		}
		all = append(all, r.latenciesMs...)
		bench.Rejections429 += r.rejections
		bench.Transient5xx += r.transients
		if r.histHash != results[0].histHash {
			deterministic = false
		}
	}
	bench.Deterministic = deterministic
	if wall > 0 {
		bench.SolvesPerSec = float64(bench.TotalSolves) / wall.Seconds()
	}
	sort.Float64s(all)
	bench.LatencyMsP50 = percentile(all, 0.50)
	bench.LatencyMsP95 = percentile(all, 0.95)
	bench.LatencyMsP99 = percentile(all, 0.99)
	if len(all) > 0 {
		bench.LatencyMsMax = all[len(all)-1]
	}
	var metrics any
	if err := getJSON(client, base+"/metrics", &metrics); err == nil {
		bench.RouterMetrics = metrics
	}

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s", data)
	if !deterministic {
		return fmt.Errorf("FAIL: user histories diverged across shards — determinism contract broken")
	}
	return nil
}

// runShardUser plays the shared script through the router. With binary
// set, solve responses travel as compact binary frames (content
// negotiation via Accept) and the JSON path is used only for the
// create; either wire must produce the same history.
func runShardUser(client *http.Client, base string, u *model.Universe, prob *schemaio.ProblemDoc, iters int, binary bool, rng *rand.Rand) shardUserResult {
	var r shardUserResult

	var created struct {
		ID string `json:"id"`
	}
	status, err := postJSON(client, base+"/v1/sessions", map[string]any{"universe": u, "problem": prob}, &created)
	if err != nil {
		r.err = err
		return r
	}
	if status != http.StatusCreated {
		r.err = fmt.Errorf("create session: HTTP %d", status)
		return r
	}
	sessionURL := base + "/v1/sessions/" + created.ID

	bo := newBackoff(rng)
	var lastSources []int
	for k := 0; k < iters; k++ {
		edit := scriptEdit(k, lastSources)
		for attempt := 1; ; attempt++ {
			//ube:nondeterministic-ok per-request latency measurement
			t0 := time.Now()
			sources, status, retryAfter, err := shardSolve(client, sessionURL, edit, binary)
			//ube:nondeterministic-ok per-request latency measurement
			dt := time.Since(t0)
			if err != nil {
				r.err = err
				return r
			}
			if status == http.StatusOK {
				r.latenciesMs = append(r.latenciesMs, float64(dt.Nanoseconds())/1e6)
				lastSources = sources
				break
			}
			if !transientStatus(status) {
				r.err = fmt.Errorf("solve %d: HTTP %d", k, status)
				return r
			}
			if status == http.StatusTooManyRequests {
				r.rejections++
			} else {
				r.transients++
			}
			if attempt >= maxSolveAttempts {
				r.err = fmt.Errorf("solve %d: abandoned after %d attempts", k, maxSolveAttempts)
				return r
			}
			time.Sleep(bo.next(retryAfter))
		}
		bo.reset()
	}

	r.histHash, r.err = historyDigest(client, sessionURL, binary, iters)
	return r
}

// shardSolve posts one solve over the chosen wire and returns the
// solution's sources for the next script edit.
func shardSolve(client *http.Client, sessionURL string, edit map[string]any, binary bool) ([]int, int, time.Duration, error) {
	if !binary {
		var solved struct {
			Solution *schemaio.SolutionDoc `json:"solution"`
		}
		status, retryAfter, err := postJSONRetry(client, sessionURL+"/solve", edit, &solved)
		if err != nil || status != http.StatusOK || solved.Solution == nil {
			return nil, status, retryAfter, err
		}
		return solved.Solution.Sources, status, retryAfter, nil
	}

	data, err := json.Marshal(edit)
	if err != nil {
		return nil, 0, 0, err
	}
	req, err := http.NewRequest(http.MethodPost, sessionURL+"/solve", bytes.NewReader(data))
	if err != nil {
		return nil, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", schemaio.BinaryContentType)
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, retryAfter, nil
	}
	sr, err := schemaio.DecodeBinarySolveResult(body)
	if err != nil {
		return nil, resp.StatusCode, retryAfter, fmt.Errorf("decoding binary solve result: %w", err)
	}
	return sr.Solution.Sources, resp.StatusCode, retryAfter, nil
}

// historyDigest fetches the session history over the chosen wire,
// canonicalizes it (wall-clock and cache telemetry zeroed — a memo hit
// legitimately reports zero cost) and returns its SHA-256.
func historyDigest(client *http.Client, sessionURL string, binary bool, wantIters int) (string, error) {
	var iters []schemaio.IterationDoc
	if binary {
		req, err := http.NewRequest(http.MethodGet, sessionURL+"/history", nil)
		if err != nil {
			return "", err
		}
		req.Header.Set("Accept", schemaio.BinaryContentType)
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("history: HTTP %d", resp.StatusCode)
		}
		if iters, err = schemaio.DecodeBinaryHistory(body); err != nil {
			return "", fmt.Errorf("decoding binary history: %w", err)
		}
	} else {
		var hist struct {
			Iterations []schemaio.IterationDoc `json:"iterations"`
		}
		if err := getJSON(client, sessionURL+"/history", &hist); err != nil {
			return "", err
		}
		iters = hist.Iterations
	}
	if len(iters) != wantIters {
		return "", fmt.Errorf("history has %d iterations, want %d", len(iters), wantIters)
	}
	for i := range iters {
		iters[i].Solution.ElapsedNS = 0
		iters[i].Solution.CacheHits = 0
		iters[i].Solution.CacheMisses = 0
		iters[i].Solution.CacheEvictions = 0
	}
	canon, err := json.Marshal(iters)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}
