// Durable mode: a real kill -9 against a WAL-backed server child, then
// recovery verification. The parent re-execs itself (-serve-child) so
// the server lives in its own process and SIGKILL means what it means
// in production — no deferred flushes, no atexit, no goroutine
// shutdown. See the package comment for the invariants checked.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/schemaio"
	"ube/internal/server"
)

// addrPrefix is the line the server child prints once it is listening
// (recovery already done — Open replays before the listener binds).
const addrPrefix = "ADDR "

// runServeChild is the -serve-child entry: a durable session server on
// an ephemeral port, announced on stdout, served until the parent kills
// the process.
func runServeChild(walDir string, workers, queue int) {
	if walDir == "" {
		log.Fatal("-serve-child needs -wal-dir")
	}
	srv, err := server.Open(server.Config{Workers: workers, QueueDepth: queue, WALDir: walDir})
	if err != nil {
		log.Fatalf("serve-child: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("serve-child: %v", err)
	}
	fmt.Printf("%shttp://%s\n", addrPrefix, ln.Addr())
	if err := (&http.Server{Handler: srv.Handler()}).Serve(ln); err != nil {
		log.Fatalf("serve-child: %v", err)
	}
}

// child is one spawned server-child process.
type child struct {
	cmd  *exec.Cmd
	base string // announced base URL
}

// spawnChild starts the server child on walDir and waits for its
// listening announcement.
func spawnChild(walDir string, workers, queue int) (*child, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "-serve-child",
		"-wal-dir", walDir,
		"-workers", strconv.Itoa(workers),
		"-queue", strconv.Itoa(queue))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, addrPrefix) {
			return &child{cmd: cmd, base: strings.TrimPrefix(line, addrPrefix)}, nil
		}
	}
	_ = cmd.Process.Kill()
	_, _ = cmd.Process.Wait()
	return nil, fmt.Errorf("server child exited before announcing its address")
}

// kill SIGKILLs the child and reaps it.
func (c *child) kill() {
	_ = c.cmd.Process.Kill()
	_ = c.cmd.Wait()
}

// durableBenchDoc is the BENCH_durable.json schema: the crash-recovery
// verdicts plus how long recovery took.
type durableBenchDoc struct {
	Sources         int     `json:"sources"`
	Iters           int     `json:"iters"`
	KillAfter       int     `json:"killAfter"`
	AckedAtKill     int     `json:"ackedSolvesAtKill"`
	RecoveredIters  int     `json:"recoveredIterations"`
	RecoveryMs      float64 `json:"recoveryMs"`
	BitIdentical    bool    `json:"recoveredBitIdentical"`
	FinalMatchesRef bool    `json:"finalMatchesReference"`
	WALRecovery     any     `json:"walRecovery,omitempty"`
}

// historyDocsOf fetches and parses a session's /history into raw
// per-iteration documents for byte comparison.
func historyDocsOf(client *http.Client, sessionURL string) ([]json.RawMessage, error) {
	var hist struct {
		Iterations []json.RawMessage `json:"iterations"`
	}
	if err := getJSON(client, sessionURL+"/history", &hist); err != nil {
		return nil, err
	}
	return hist.Iterations, nil
}

// scriptSolve runs iteration k of the shared script against sessionURL
// and returns the solution's sources for the next edit.
func scriptSolve(client *http.Client, sessionURL string, k int, lastSources []int) ([]int, error) {
	var solved struct {
		Solution *schemaio.SolutionDoc `json:"solution"`
	}
	status, err := postJSON(client, sessionURL+"/solve", scriptEdit(k, lastSources), &solved)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("solve %d: HTTP %d", k, status)
	}
	if solved.Solution == nil {
		return nil, fmt.Errorf("solve %d: no solution in response", k)
	}
	return solved.Solution.Sources, nil
}

// stripElapsed zeroes the wall-clock telemetry in a history so runs on
// different machines (or before/after a crash) compare on content.
func stripElapsed(iters []schemaio.IterationDoc) {
	for i := range iters {
		iters[i].Solution.ElapsedNS = 0
	}
}

// runDurableMode plays the crash-recovery scenario end to end and
// writes BENCH_durable.json. Any violated invariant is an error.
func runDurableMode(u *model.Universe, killAfter, iters, evals, workers, queue int, walDir, out string) error {
	if killAfter >= iters {
		return fmt.Errorf("-kill-after %d must be below -iters %d, or nothing is left to resume", killAfter, iters)
	}
	if walDir == "" {
		dir, err := os.MkdirTemp("", "ube-load-wal-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		walDir = dir
	}

	prob := engine.DefaultProblem()
	if prob.MaxSources > u.N() {
		prob.MaxSources = u.N()
	}
	prob.MaxEvals = evals
	probDoc, err := schemaio.EncodeProblem(&prob)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	// Uninterrupted reference: the same script against an in-process
	// server. The engine is deterministic, so the crashed-and-recovered
	// run must land on this exact history (timing aside).
	reference, err := referenceHistory(u, probDoc, iters, evals, workers, queue)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	// Phase 1: the doomed child. Script until killAfter acks, capture
	// what was acknowledged, then SIGKILL — with the next solve already
	// in flight, so the crash lands mid-write, not at a tidy boundary.
	c1, err := spawnChild(walDir, workers, queue)
	if err != nil {
		return err
	}
	defer c1.kill()
	var created struct {
		ID string `json:"id"`
	}
	status, err := postJSON(client, c1.base+"/v1/sessions", map[string]any{"universe": u, "problem": probDoc}, &created)
	if err != nil {
		return err
	}
	if status != http.StatusCreated {
		return fmt.Errorf("create session: HTTP %d", status)
	}
	sessionPath := "/v1/sessions/" + created.ID
	var lastSources []int
	for k := 0; k < killAfter; k++ {
		if lastSources, err = scriptSolve(client, c1.base+sessionPath, k, lastSources); err != nil {
			return err
		}
	}
	acked, err := historyDocsOf(client, c1.base+sessionPath)
	if err != nil {
		return err
	}
	if len(acked) != killAfter {
		return fmt.Errorf("server acknowledged %d solves but serves %d iterations", killAfter, len(acked))
	}
	inFlight := make(chan error, 1)
	go func() {
		_, err := scriptSolve(client, c1.base+sessionPath, killAfter, lastSources)
		inFlight <- err
	}()
	c1.kill()
	<-inFlight // connection error or a racing success; either is a valid crash

	// Phase 2: resume on the same WAL. Everything acknowledged must come
	// back byte-for-byte; the in-flight solve may or may not have
	// committed — both are honest crash outcomes.
	//ube:nondeterministic-ok recovery wall-clock measurement for the bench report
	t0 := time.Now()
	c2, err := spawnChild(walDir, workers, queue)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	//ube:nondeterministic-ok recovery wall-clock measurement for the bench report
	recoveryMs := float64(time.Since(t0).Nanoseconds()) / 1e6
	defer c2.kill()
	recovered, err := historyDocsOf(client, c2.base+sessionPath)
	if err != nil {
		return fmt.Errorf("resume: recovered session: %w", err)
	}
	if len(recovered) < killAfter || len(recovered) > killAfter+1 {
		return fmt.Errorf("recovered %d iterations; want %d acknowledged (+1 if the in-flight solve committed)", len(recovered), killAfter)
	}
	bitIdentical := true
	for i := range acked {
		if string(recovered[i]) != string(acked[i]) {
			bitIdentical = false
			return fmt.Errorf("recovered iteration %d is not bit-identical to the acknowledged one:\n got %s\nwant %s", i, recovered[i], acked[i])
		}
	}

	// Phase 3: finish the script from wherever recovery landed and
	// compare the full history against the uninterrupted reference.
	lastSources = nil
	if len(recovered) > 0 {
		var last schemaio.IterationDoc
		if err := json.Unmarshal(recovered[len(recovered)-1], &last); err != nil {
			return err
		}
		lastSources = last.Solution.Sources
	}
	for k := len(recovered); k < iters; k++ {
		if lastSources, err = scriptSolve(client, c2.base+sessionPath, k, lastSources); err != nil {
			return fmt.Errorf("resume solve %d: %w", k, err)
		}
	}
	var final struct {
		Iterations []schemaio.IterationDoc `json:"iterations"`
	}
	if err := getJSON(client, c2.base+sessionPath+"/history", &final); err != nil {
		return err
	}
	stripElapsed(final.Iterations)
	gotCanon, err := json.Marshal(final.Iterations)
	if err != nil {
		return err
	}
	finalMatches := string(gotCanon) == reference
	if !finalMatches {
		return fmt.Errorf("post-recovery history diverged from the uninterrupted reference:\n got %s\nwant %s", gotCanon, reference)
	}

	var metrics struct {
		WALRecovery any `json:"walRecovery"`
	}
	_ = getJSON(client, c2.base+"/metrics", &metrics)

	bench := &durableBenchDoc{
		Sources:         u.N(),
		Iters:           iters,
		KillAfter:       killAfter,
		AckedAtKill:     len(acked),
		RecoveredIters:  len(recovered),
		RecoveryMs:      recoveryMs,
		BitIdentical:    bitIdentical,
		FinalMatchesRef: finalMatches,
		WALRecovery:     metrics.WALRecovery,
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s", data)
	return nil
}

// referenceHistory runs the script uninterrupted against an in-process
// server and returns the canonical (timing-stripped) history JSON.
func referenceHistory(u *model.Universe, probDoc *schemaio.ProblemDoc, iters, evals, workers, queue int) (string, error) {
	srv := server.New(server.Config{Workers: workers, QueueDepth: queue})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Minute}

	var created struct {
		ID string `json:"id"`
	}
	status, err := postJSON(client, base+"/v1/sessions", map[string]any{"universe": u, "problem": probDoc}, &created)
	if err != nil {
		return "", err
	}
	if status != http.StatusCreated {
		return "", fmt.Errorf("create session: HTTP %d", status)
	}
	sessionURL := base + "/v1/sessions/" + created.ID
	var lastSources []int
	for k := 0; k < iters; k++ {
		if lastSources, err = scriptSolve(client, sessionURL, k, lastSources); err != nil {
			return "", err
		}
	}
	var hist struct {
		Iterations []schemaio.IterationDoc `json:"iterations"`
	}
	if err := getJSON(client, sessionURL+"/history", &hist); err != nil {
		return "", err
	}
	stripElapsed(hist.Iterations)
	canon, err := json.Marshal(hist.Iterations)
	if err != nil {
		return "", err
	}
	return string(canon), nil
}
