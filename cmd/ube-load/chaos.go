package main

// Chaos mode: replayable fault injection against the in-process server.
//
// A fault plan (JSON, see internal/faultinject) arms the server's named
// injection points; the scripted users then run exactly as in benchmark
// mode, retrying transient failures, while the plan fires. A fault-free
// reference run of the same script defines ground truth, and three
// invariants are checked:
//
//  1. Clean prefix — every session history is the full scripted history
//     or a clean prefix of it (a user that exhausted its retry budget).
//  2. Bit-identical survivors — with wall-clock timing and match-cache
//     traffic zeroed, surviving iterations equal the reference's.
//  3. Reconciliation — admitted = completed + errored + cancelled +
//     panicked + timed out, the queue drains to zero, and the audit log
//     accounts for every solve up to the counted dropped lines.
//
// Violations exit non-zero and print the seed plus the plan JSON — the
// complete recipe to replay the run.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"ube/internal/engine"
	"ube/internal/faultinject"
	"ube/internal/model"
	"ube/internal/schemaio"
	"ube/internal/server"
)

// chaosMetricsDoc is the subset of /metrics the reconciliation invariant
// reads.
type chaosMetricsDoc struct {
	SolvesAdmitted  int64 `json:"solvesAdmitted"`
	Solves          int64 `json:"solves"`
	SolveErrors     int64 `json:"solveErrors"`
	SolvesCancelled int64 `json:"solvesCancelled"`
	SolvePanics     int64 `json:"solvePanics"`
	SolveTimeouts   int64 `json:"solveTimeouts"`
	QueueRejections int64 `json:"queueRejections"`
	QueueDepth      int64 `json:"queueDepth"`
	InFlight        int64 `json:"inFlight"`
	AuditDropped    int64 `json:"auditLinesDropped"`
}

// syncWriter is a mutex-guarded audit sink for the chaos server.
type syncWriter struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func runChaosMode(u *model.Universe, planPath string, users, iters, evals, workers, queue int, seed int64, solveTimeout time.Duration) error {
	raw, err := os.ReadFile(planPath)
	if err != nil {
		return err
	}
	plan, err := schemaio.DecodeFaultPlanBytes(raw)
	if err != nil {
		return err
	}
	replay := fmt.Sprintf("replay: seed=%d plan=%s\n%s", plan.Seed, planPath, raw)

	prob := engine.DefaultProblem()
	if prob.MaxSources > u.N() {
		prob.MaxSources = u.N()
	}
	prob.MaxEvals = evals
	probDoc, err := schemaio.EncodeProblem(&prob)
	if err != nil {
		return err
	}

	// Fault-free reference: every user runs the identical script against
	// an identical session, so one sequential user defines ground truth.
	log.Printf("chaos: reference run (%d iterations, fault-free)", iters)
	ref, _, _, err := chaosServerRun(u, probDoc, 1, iters, workers, queue, solveTimeout, seed, nil)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	if len(ref) != 1 || ref[0].abandoned || len(ref[0].iterations) != iters {
		return fmt.Errorf("reference run did not complete its script")
	}
	refCanon := make([]string, 0, iters)
	for k := 0; k < iters; k++ {
		refCanon = append(refCanon, canonicalChaosHistory(ref[0].iterations[:k+1]))
	}

	// Chaos run: same script, N concurrent users, plan armed.
	inj := faultinject.MustNew(plan)
	log.Printf("chaos: fault run (%d users × %d iterations, plan %s, seed %d)", users, iters, planPath, plan.Seed)
	results, metrics, audit, err := chaosServerRun(u, probDoc, users, iters, workers, queue, solveTimeout, seed, inj)
	if err != nil {
		return fmt.Errorf("chaos run: %w", err)
	}

	var violations []string
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	// Invariants 1 and 2: clean, bit-identical prefixes.
	completed := 0
	for i, r := range results {
		n := len(r.iterations)
		completed += n
		if n > iters {
			fail("user %d: history has %d iterations, script only has %d", i, n, iters)
			continue
		}
		if n > 0 && canonicalChaosHistory(r.iterations) != refCanon[n-1] {
			fail("user %d: surviving history (%d iterations) diverges from the fault-free reference", i, n)
		}
		if !r.abandoned && n != iters {
			fail("user %d: completed only %d/%d iterations without abandoning", i, n, iters)
		}
	}

	// Invariant 3: counters and audit log reconcile.
	terminal := metrics.Solves + metrics.SolveErrors + metrics.SolvesCancelled + metrics.SolvePanics + metrics.SolveTimeouts
	if metrics.SolvesAdmitted != terminal {
		fail("metrics do not reconcile: admitted %d != done %d + errors %d + cancelled %d + panics %d + timeouts %d",
			metrics.SolvesAdmitted, metrics.Solves, metrics.SolveErrors, metrics.SolvesCancelled, metrics.SolvePanics, metrics.SolveTimeouts)
	}
	if metrics.QueueDepth != 0 || metrics.InFlight != 0 {
		fail("drained server still reports queueDepth %d, inFlight %d", metrics.QueueDepth, metrics.InFlight)
	}
	counts := map[string]int64{}
	scanner := bufio.NewScanner(strings.NewReader(audit))
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var e struct {
			Action string `json:"action"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			fail("unparseable audit line %q: %v", scanner.Text(), err)
			continue
		}
		counts[e.Action]++
	}
	enqueued := counts["solve.enqueue"]
	terminalLines := counts["solve.done"] + counts["solve.error"] + counts["solve.cancelled"] +
		counts["solve.panic"] + counts["solve.timeout"]
	if enqueued > metrics.SolvesAdmitted || terminalLines > metrics.SolvesAdmitted {
		fail("audit log records more solves than admitted: enqueue %d, terminal %d, admitted %d",
			enqueued, terminalLines, metrics.SolvesAdmitted)
	}
	if deficit := (metrics.SolvesAdmitted - enqueued) + (metrics.SolvesAdmitted - terminalLines); deficit > metrics.AuditDropped {
		fail("audit log is missing %d solve lines but only %d drops were counted", deficit, metrics.AuditDropped)
	}

	firings := inj.Firings()
	log.Printf("chaos: %d faults fired, %d/%d iterations survived, admitted %d (done %d, cancelled %d, panics %d, timeouts %d, rejected %d)",
		len(firings), completed, users*iters, metrics.SolvesAdmitted,
		metrics.Solves, metrics.SolvesCancelled, metrics.SolvePanics, metrics.SolveTimeouts, metrics.QueueRejections)
	if len(violations) > 0 {
		return fmt.Errorf("chaos invariants violated:\n  - %s\n%s", strings.Join(violations, "\n  - "), replay)
	}
	fmt.Printf("chaos: OK — all invariants hold under plan %s (seed %d)\n", planPath, plan.Seed)
	return nil
}

// chaosServerRun starts an in-process server (armed with inj when
// non-nil), drives the scripted users, drains, and returns the per-user
// results plus the drained metrics and audit log.
func chaosServerRun(u *model.Universe, prob *schemaio.ProblemDoc, users, iters, workers, queue int, solveTimeout time.Duration, seed int64, inj *faultinject.Injector) ([]userResult, *chaosMetricsDoc, string, error) {
	audit := &syncWriter{}
	srv := server.New(server.Config{
		Workers:           workers,
		QueueDepth:        queue,
		MaxSessions:       users + 8,
		SolveTimeout:      solveTimeout,
		RetryAfterSeconds: 1,
		AuditWriter:       audit,
		FaultInjector:     inj,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, "", err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Timeout: 5 * time.Minute}
	results := make([]userResult, users)
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runUser(client, base, u, prob, iters, rand.New(rand.NewSource(seed+int64(i))))
		}(i)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, nil, "", fmt.Errorf("shutdown: %w", err)
	}
	var metrics chaosMetricsDoc
	if err := getJSON(client, base+"/metrics", &metrics); err != nil {
		return nil, nil, "", err
	}
	_ = httpSrv.Shutdown(ctx)

	for i := range results {
		if results[i].err != nil {
			return nil, nil, "", fmt.Errorf("user %d: %w", i, results[i].err)
		}
	}
	return results, &metrics, audit.String(), nil
}

// canonicalChaosHistory renders a history with operational metadata
// removed: wall-clock timing and match-cache traffic (retried solves
// warm the session's cache, so cache counters legitimately differ from
// the fault-free reference).
func canonicalChaosHistory(iters []schemaio.IterationDoc) string {
	c := append([]schemaio.IterationDoc(nil), iters...)
	for i := range c {
		c[i].Solution.ElapsedNS = 0
		c[i].Solution.CacheHits = 0
		c[i].Solution.CacheMisses = 0
		c[i].Solution.CacheEvictions = 0
	}
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Sprintf("unmarshalable history: %v", err)
	}
	return string(data)
}
