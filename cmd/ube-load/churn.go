package main

// Churn mode (-churn): the dynamic-universe counterpart of the base
// load loop. N simulated users each own a session over the same base
// catalog and play an identical interleaved script — solve, PATCH the
// shared mutation batch k, solve, ... — with the batches drawn from
// synth.ChurnSchedule, so the whole run is a pure function of the
// flags. Because every user applies the same mutations at the same
// script positions, the determinism contract extends across churn:
// all N iteration histories and all N churn acknowledgements must be
// bit-identical (timing and cache metadata aside) no matter how the
// worker pool interleaved the sessions. The run also requires the
// server's churn counters to reconcile: every admitted batch
// committed, none errored, conflicted, or was cancelled. Violations
// exit non-zero; the verdict and latency split land in the -churn-o
// JSON.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/schemaio"
	"ube/internal/server"
	"ube/internal/synth"
)

// churnBenchDoc is the -churn-o output schema.
type churnBenchDoc struct {
	Users         int     `json:"users"`
	Steps         int     `json:"steps"`
	SolvesPerUser int     `json:"solvesPerUser"`
	SourcesStart  int     `json:"sourcesStart"`
	SourcesEnd    int     `json:"sourcesEnd"`
	TotalSolves   int     `json:"totalSolves"`
	TotalChurns   int     `json:"totalChurns"`
	WallSeconds   float64 `json:"wallSeconds"`
	SolveMsP50    float64 `json:"solveMsP50"`
	SolveMsP95    float64 `json:"solveMsP95"`
	SolveMsMax    float64 `json:"solveMsMax"`
	ChurnMsP50    float64 `json:"churnMsP50"`
	ChurnMsP95    float64 `json:"churnMsP95"`
	ChurnMsMax    float64 `json:"churnMsMax"`
	Rejections429 int     `json:"rejections429"`
	Deterministic bool    `json:"deterministic"`
	MetricsOK     bool    `json:"churnMetricsReconcile"`
	ServerMetrics any     `json:"serverMetrics,omitempty"`
}

// churnUserResult is one user's run through the interleaved script.
type churnUserResult struct {
	solveMs    []float64
	churnMs    []float64
	rejections int
	final      int    // universe size after the last batch
	history    string // canonical history JSON, timing and cache stats stripped
	acks       string // canonical churn-ack JSON (batch numbers + source counts)
	err        error
}

// runChurnMode builds the seeded base catalog and mutation schedule,
// serves in-process, and fans out the users.
func runChurnMode(n, users, steps, evals, workers, queue int, seed int64, out string) error {
	cfg := synth.QuickConfig(n)
	base, batches, err := synth.ChurnSchedule(cfg, synth.ChurnConfig{
		Seed:  cfg.Seed + 71,
		Steps: steps,
	})
	if err != nil {
		return fmt.Errorf("generating churn schedule: %w", err)
	}

	srv := server.New(server.Config{Workers: workers, QueueDepth: queue, MaxSessions: users + 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	baseURL := "http://" + ln.Addr().String()
	log.Printf("in-process server on %s (workers=%d queue=%d churn steps=%d)", baseURL, workers, queue, steps)

	prob := engine.DefaultProblem()
	if prob.MaxSources > base.N() {
		prob.MaxSources = base.N()
	}
	prob.MaxEvals = evals
	probDoc, err := schemaio.EncodeProblem(&prob)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	results := make([]churnUserResult, users)
	var wg sync.WaitGroup
	//ube:nondeterministic-ok benchmark wall-clock measurement
	start := time.Now()
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runChurnUser(client, baseURL, base, probDoc, batches, rand.New(rand.NewSource(seed+int64(i))))
		}(i)
	}
	wg.Wait()
	//ube:nondeterministic-ok benchmark wall-clock measurement
	wall := time.Since(start)

	bench := &churnBenchDoc{
		Users:         users,
		Steps:         len(batches),
		SolvesPerUser: len(batches) + 1,
		SourcesStart:  base.N(),
		WallSeconds:   wall.Seconds(),
		Deterministic: true,
	}
	var solveMs, churnMs []float64
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return fmt.Errorf("churn user %d: %w", i, r.err)
		}
		solveMs = append(solveMs, r.solveMs...)
		churnMs = append(churnMs, r.churnMs...)
		bench.Rejections429 += r.rejections
		if r.history != results[0].history || r.acks != results[0].acks {
			bench.Deterministic = false
		}
	}
	bench.SourcesEnd = results[0].final
	bench.TotalSolves = users * bench.SolvesPerUser
	bench.TotalChurns = users * len(batches)
	sort.Float64s(solveMs)
	sort.Float64s(churnMs)
	bench.SolveMsP50 = percentile(solveMs, 0.50)
	bench.SolveMsP95 = percentile(solveMs, 0.95)
	bench.ChurnMsP50 = percentile(churnMs, 0.50)
	bench.ChurnMsP95 = percentile(churnMs, 0.95)
	if len(solveMs) > 0 {
		bench.SolveMsMax = solveMs[len(solveMs)-1]
	}
	if len(churnMs) > 0 {
		bench.ChurnMsMax = churnMs[len(churnMs)-1]
	}

	var metrics struct {
		ChurnsAdmitted  int64 `json:"churnsAdmitted"`
		Churns          int64 `json:"churns"`
		ChurnErrors     int64 `json:"churnErrors"`
		ChurnConflicts  int64 `json:"churnConflicts"`
		ChurnsCancelled int64 `json:"churnsCancelled"`
	}
	var raw any
	if err := getJSON(client, baseURL+"/metrics", &raw); err != nil {
		return fmt.Errorf("fetching metrics: %w", err)
	}
	data, _ := json.Marshal(raw)
	if err := json.Unmarshal(data, &metrics); err != nil {
		return fmt.Errorf("decoding churn metrics: %w", err)
	}
	bench.ServerMetrics = raw
	bench.MetricsOK = metrics.Churns == int64(bench.TotalChurns) &&
		metrics.ChurnsAdmitted == metrics.Churns &&
		metrics.ChurnErrors == 0 && metrics.ChurnConflicts == 0 && metrics.ChurnsCancelled == 0

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("in-process shutdown: %w", err)
	}

	doc, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s", doc)
	if !bench.Deterministic {
		return fmt.Errorf("FAIL: churned histories diverged across users — determinism contract broken")
	}
	if !bench.MetricsOK {
		return fmt.Errorf("FAIL: churn counters do not reconcile: admitted=%d committed=%d errors=%d conflicts=%d cancelled=%d want admitted==committed==%d and zero otherwise",
			metrics.ChurnsAdmitted, metrics.Churns, metrics.ChurnErrors, metrics.ChurnConflicts, metrics.ChurnsCancelled, bench.TotalChurns)
	}
	return nil
}

// churnAck is the part of the PATCH acknowledgement shared verbatim by
// every user: the batch number, the post-batch universe size and the
// removed IDs. (The session field is per-user and excluded.)
type churnAck struct {
	Batch   int   `json:"batch"`
	Sources int   `json:"sources"`
	Removed []int `json:"removed"`
}

// runChurnUser plays one user's interleaved script: solve, apply batch
// k, solve, ... The solve edits never pin sources — pins would 409
// against scheduled removals — so the script exercises θ and weight
// edits instead. Transient failures retry under the same jittered
// backoff as the base loop; a churn conflict (409) is a hard error
// because the script cannot legitimately produce one.
func runChurnUser(client *http.Client, baseURL string, u *model.Universe, prob *schemaio.ProblemDoc, batches [][]model.Mutation, rng *rand.Rand) churnUserResult {
	var r churnUserResult

	var created struct {
		ID string `json:"id"`
	}
	status, err := postJSON(client, baseURL+"/v1/sessions", map[string]any{"universe": u, "problem": prob}, &created)
	if err != nil {
		r.err = err
		return r
	}
	if status != http.StatusCreated {
		r.err = fmt.Errorf("create session: HTTP %d", status)
		return r
	}
	sessionURL := baseURL + "/v1/sessions/" + created.ID

	bo := newBackoff(rng)
	acks := make([]churnAck, 0, len(batches))
	for k := 0; k <= len(batches); k++ {
		edit := map[string]any{}
		switch {
		case k == 0: // cold solve
		case k%2 == 1: // tighten the matching threshold
			edit = map[string]any{"theta": 0.75}
		default: // bias cardinality, rescaling the rest
			edit = map[string]any{"setWeights": map[string]float64{"card": 0.5}}
		}
		if ms, rej, err := churnRetryLoop(client, bo, rng, func() (int, time.Duration, error) {
			return postJSONRetry(client, sessionURL+"/solve", edit, nil)
		}); err != nil {
			r.err = fmt.Errorf("solve %d: %w", k, err)
			return r
		} else {
			r.solveMs = append(r.solveMs, ms)
			r.rejections += rej
		}
		if k == len(batches) {
			break
		}

		var ack churnAck
		if ms, rej, err := churnRetryLoop(client, bo, rng, func() (int, time.Duration, error) {
			return patchJSONRetry(client, sessionURL+"/universe", schemaio.ChurnRequestDoc{Mutations: batches[k]}, &ack)
		}); err != nil {
			r.err = fmt.Errorf("churn batch %d: %w", k, err)
			return r
		} else {
			r.churnMs = append(r.churnMs, ms)
			r.rejections += rej
		}
		if ack.Batch != k+1 {
			r.err = fmt.Errorf("churn batch %d acknowledged as batch %d", k, ack.Batch)
			return r
		}
		acks = append(acks, ack)
		r.final = ack.Sources
	}
	if len(batches) == 0 {
		r.final = u.N()
	}

	var hist struct {
		Iterations []schemaio.IterationDoc `json:"iterations"`
	}
	if err := getJSON(client, sessionURL+"/history", &hist); err != nil {
		r.err = err
		return r
	}
	for i := range hist.Iterations {
		s := &hist.Iterations[i].Solution
		s.ElapsedNS = 0
		s.CacheHits, s.CacheMisses, s.CacheEvictions = 0, 0, 0
	}
	canon, err := json.Marshal(hist.Iterations)
	if err != nil {
		r.err = err
		return r
	}
	r.history = string(canon)
	ackJSON, err := json.Marshal(acks)
	if err != nil {
		r.err = err
		return r
	}
	r.acks = string(ackJSON)
	return r
}

// churnRetryLoop runs one request until success, retrying transient
// statuses under backoff. It returns the successful attempt's latency
// in milliseconds and the number of 429 rejections absorbed.
func churnRetryLoop(client *http.Client, bo *backoff, rng *rand.Rand, do func() (int, time.Duration, error)) (float64, int, error) {
	rejections := 0
	for attempt := 1; ; attempt++ {
		//ube:nondeterministic-ok per-request latency measurement
		t0 := time.Now()
		status, retryAfter, err := do()
		//ube:nondeterministic-ok per-request latency measurement
		dt := time.Since(t0)
		if err != nil {
			return 0, rejections, err
		}
		if status == http.StatusOK {
			bo.reset()
			return float64(dt.Nanoseconds()) / 1e6, rejections, nil
		}
		if !transientStatus(status) {
			return 0, rejections, fmt.Errorf("HTTP %d", status)
		}
		if status == http.StatusTooManyRequests {
			rejections++
		}
		if attempt >= maxSolveAttempts {
			return 0, rejections, fmt.Errorf("abandoned after %d attempts (last HTTP %d)", attempt, status)
		}
		time.Sleep(bo.next(retryAfter))
	}
}

// patchJSONRetry is postJSONRetry for PATCH: it sends the body, decodes
// a 200 into out, and surfaces the server's Retry-After guidance.
func patchJSONRetry(client *http.Client, url string, body, out any) (int, time.Duration, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, 0, err
	}
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewReader(data))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		return resp.StatusCode, 0, json.NewDecoder(resp.Body).Decode(out)
	}
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, nil
}
