// Command ube-gen generates a synthetic µBE universe — the Section 7.1
// workload of the paper — and writes it as JSON, along with a ground-truth
// sidecar mapping attributes to concepts. The JSON can be loaded by other
// tools or inspected directly.
//
// Usage:
//
//	ube-gen [-n 700] [-seed 1] [-quick] [-no-signatures] [-o universe.json] [-truth truth.json]
//
// With -large the generator switches to the internet-scale workload: a
// synthetic attribute vocabulary that grows with the universe, Zipf
// attribute-name sharing, and no data signatures (every source
// uncooperative). Intended for -n in the 10⁴–10⁵ range.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ube"
)

func main() {
	var (
		n       = flag.Int("n", 700, "number of sources")
		seed    = flag.Int64("seed", 1, "generation seed")
		quick   = flag.Bool("quick", false, "scaled-down workload (small pool and cardinalities)")
		large   = flag.Bool("large", false, "internet-scale workload: growing vocabulary, Zipf name sharing, no signatures")
		noSigs  = flag.Bool("no-signatures", false, "skip data generation; all sources uncooperative")
		out     = flag.String("o", "universe.json", "output path for the universe")
		truthFn = flag.String("truth", "", "optional output path for the ground truth")
	)
	flag.Parse()

	var (
		u     *ube.Universe
		truth *ube.Truth
		err   error
	)
	if *large {
		cfg := ube.LargeWorkload(*n)
		cfg.Seed = *seed
		u, truth, err = ube.GenerateLarge(cfg)
	} else {
		cfg := ube.DefaultWorkload()
		if *quick {
			cfg = ube.QuickWorkload(*n)
		}
		cfg.NumSources = *n
		cfg.Seed = *seed
		cfg.WithSignatures = !*noSigs
		u, truth, err = ube.Generate(cfg)
	}
	if err != nil {
		fatal(err)
	}
	if err := writeJSON(*out, u); err != nil {
		fatal(err)
	}
	var total int64
	for i := range u.Sources {
		total += u.Sources[i].Cardinality
	}
	fmt.Printf("wrote %s: %d sources, %d attributes, %d total tuples\n",
		*out, u.N(), u.NumAttributes(), total)

	if *truthFn != "" {
		if err := writeJSON(*truthFn, truthDoc(truth)); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: ground truth for %d attributes\n", *truthFn, len(truth.ConceptOf))
	}
}

// truthDoc flattens the ground truth into a JSON-friendly shape (maps with
// struct keys do not marshal).
func truthDoc(t *ube.Truth) any {
	type entry struct {
		Source  int `json:"source"`
		Attr    int `json:"attr"`
		Concept int `json:"concept"`
	}
	entries := make([]entry, 0, len(t.ConceptOf))
	for ref, c := range t.ConceptOf {
		entries = append(entries, entry{Source: ref.Source, Attr: ref.Attr, Concept: c})
	}
	return map[string]any{
		"conceptNames": t.ConceptNames,
		"unperturbed":  t.Unperturbed,
		"attributes":   entries,
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ube-gen:", err)
	os.Exit(1)
}
