// Facade tests for the discovery, diffing, workload and query-execution
// surfaces of the public package.
package ube_test

import (
	"testing"

	"ube"
)

func TestPublicDefaultWorkload(t *testing.T) {
	cfg := ube.DefaultWorkload()
	if cfg.NumSources != 700 {
		t.Errorf("paper-scale workload has %d sources, want 700", cfg.NumSources)
	}
	if cfg.MinCard >= cfg.MaxCard {
		t.Errorf("cardinality range [%d,%d] is empty", cfg.MinCard, cfg.MaxCard)
	}
}

func TestPublicDiscoveryToSolveFlow(t *testing.T) {
	u, _, err := ube.Generate(ube.QuickWorkload(30))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ube.NewDiscoveryIndex(u)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search("title author", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("books universe has no sources mentioning title or author")
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("discovery hits not ranked by score")
		}
	}
}

func TestPublicDiffSolutions(t *testing.T) {
	u, _, err := ube.Generate(ube.QuickWorkload(30))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ube.NewEngine(u)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(m int) *ube.Solution {
		p := ube.DefaultProblem()
		p.MaxSources = m
		p.MaxEvals = 600
		sol, err := eng.Solve(&p)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	a := solve(4)
	if d := ube.DiffSolutions(a, a); !d.Unchanged() {
		t.Errorf("self-diff reports changes: %+v", d)
	}
	b := solve(8)
	d := ube.DiffSolutions(a, b)
	if d.Unchanged() {
		t.Error("diff of m=4 vs m=8 solutions reports no change")
	}
	if len(d.AddedSources) == 0 {
		t.Error("growing m added no sources")
	}
}

func TestPublicAggregateQuery(t *testing.T) {
	u := &ube.Universe{Sources: []ube.Source{
		{ID: 0, Name: "storeA", Attributes: []string{"title", "author"}, Cardinality: 3},
		{ID: 1, Name: "storeB", Attributes: []string{"title", "author"}, Cardinality: 2},
	}}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	schema := &ube.MediatedSchema{GAs: []ube.GA{
		ube.NewGA(ube.AttrRef{Source: 0, Attr: 0}, ube.AttrRef{Source: 1, Attr: 0}), // title
		ube.NewGA(ube.AttrRef{Source: 0, Attr: 1}, ube.AttrRef{Source: 1, Attr: 1}), // author
	}}
	sys, err := ube.NewIntegrationSystem(u, []int{0, 1}, schema)
	if err != nil {
		t.Fatal(err)
	}
	providers := map[int]ube.TupleProvider{
		0: &ube.MemProvider{Rows: [][]string{
			{"dune", "herbert"},
			{"messiah", "herbert"},
			{"hyperion", "simmons"},
		}},
		1: &ube.MemProvider{Rows: [][]string{
			{"dune", "herbert"}, // duplicate across stores: counts once
			{"endymion", "simmons"},
		}},
	}
	rows, err := ube.ExecuteAggregateQuery(sys, providers, ube.MediatedAggQuery{GroupBy: 1, Count: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d groups: %+v", len(rows), rows)
	}
	for _, row := range rows {
		if row.DistinctCount != 2 {
			t.Errorf("author %q counts %d distinct titles, want 2", row.Key, row.DistinctCount)
		}
	}
}
