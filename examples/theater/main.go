// Theater: the paper's motivating scenario (§1, Figure 1). A user wants to
// integrate hidden-Web sources that sell or list theater tickets; a query
// for "theater" on a hidden-Web search engine returns far more sources
// than anyone wants to integrate, with wildly heterogeneous query
// interfaces. The eleven schemas below are the exact sample printed in
// Figure 1 of the paper.
//
// The example runs two µBE iterations:
//
//  1. An unconstrained solve. The matcher clusters what it can —
//     "keyword"-style attributes line up — but lexically distant labels
//     for the same concept ("your town" vs "city") stay apart.
//  2. A user-guided solve. The user pins a GA constraint bridging
//     "location"/"your town"/"city" (Matching By Example) and requires
//     their favorite source; the bridge cluster then attracts further
//     location-like attributes.
//
// Run with: go run ./examples/theater
package main

import (
	"fmt"
	"log"
	"strings"

	"ube"
)

// figure1 is the source sample of Figure 1, verbatim.
var figure1 = []struct {
	name  string
	attrs []string
}{
	{"tonyawards.com", []string{"keywords"}},
	{"whatsonstage.com", []string{"your town"}},
	{"aceticket.com", []string{"state", "city", "event", "venue"}},
	{"canadiantheatre.com", []string{"phrase", "search term"}},
	{"londontheatre.co.uk", []string{"type", "keyword"}},
	{"mime.info.com", []string{"search for"}},
	{"pbs.org", []string{"program title", "date", "author", "actor", "director", "keyword"}},
	{"pa.msu.edu", []string{"keyword"}},
	{"wstonline.org", []string{"keyword", "after date", "before date"}},
	{"officiallondontheatre.co.uk", []string{"keyword", "after date", "before date"}},
	{"lastminute.com", []string{"event name", "event type", "location", "date", "radius"}},
}

func main() {
	u := buildUniverse()
	eng, err := ube.NewEngine(u)
	if err != nil {
		log.Fatal(err)
	}

	prob := ube.DefaultProblem()
	prob.MaxSources = 6
	// These hidden-Web sources did not provide data signatures or MTTF
	// figures; drop the data QEFs the universe cannot support and lean
	// on matching quality and cardinality.
	prob.Characteristics = nil
	prob.Weights = ube.Weights{
		ube.MatchQEFName: 0.6,
		"card":           0.2,
		"coverage":       0.1,
		"redundancy":     0.1,
	}
	sess := ube.NewSession(eng, prob)

	fmt.Println("=== iteration 1: unconstrained ===")
	sol, err := sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	printSolution(u, sol)

	// Feedback: the user knows "location", "your town" and "city" all
	// mean the same thing, even though no string similarity supports it,
	// and always buys through lastminute.com.
	fmt.Println("\n=== iteration 2: with user guidance ===")
	bridge := ube.NewGA(
		attr(u, "lastminute.com", "location"),
		attr(u, "whatsonstage.com", "your town"),
		attr(u, "aceticket.com", "city"),
	)
	if err := sess.PinGA(bridge); err != nil {
		log.Fatal(err)
	}
	if err := sess.RequireSource(sourceID(u, "lastminute.com")); err != nil {
		log.Fatal(err)
	}
	sol, err = sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	printSolution(u, sol)
}

func buildUniverse() *ube.Universe {
	u := &ube.Universe{}
	for i, d := range figure1 {
		u.Sources = append(u.Sources, ube.Source{
			ID:         i,
			Name:       d.name,
			Attributes: d.attrs,
			// Listing sizes are made up but plausible: big aggregators
			// versus small venue sites. No signatures: hidden-Web
			// sources are uncooperative in the §4 sense.
			Cardinality: int64(2000 + 3571*i%20000),
		})
	}
	return u
}

func sourceID(u *ube.Universe, name string) int {
	for i := range u.Sources {
		if u.Sources[i].Name == name {
			return i
		}
	}
	log.Fatalf("no source %q", name)
	return -1
}

func attr(u *ube.Universe, source, name string) ube.AttrRef {
	id := sourceID(u, source)
	for a, n := range u.Source(id).Attributes {
		if n == name {
			return ube.AttrRef{Source: id, Attr: a}
		}
	}
	log.Fatalf("no attribute %q at %q", name, source)
	return ube.AttrRef{}
}

func printSolution(u *ube.Universe, sol *ube.Solution) {
	fmt.Printf("quality %.4f, %d sources:\n", sol.Quality, len(sol.Sources))
	for _, id := range sol.Sources {
		s := u.Source(id)
		fmt.Printf("  %-28s {%s}\n", s.Name, strings.Join(s.Attributes, ", "))
	}
	if sol.Schema == nil {
		fmt.Println("  (no feasible schema)")
		return
	}
	fmt.Printf("mediated schema (%d GAs):\n", len(sol.Schema.GAs))
	for i, ga := range sol.Schema.GAs {
		parts := make([]string, len(ga))
		for j, r := range ga {
			parts[j] = fmt.Sprintf("%s.%s", u.Source(r.Source).Name, u.AttrName(r))
		}
		pin := ""
		if sol.Match.FromConstraint != nil && sol.Match.FromConstraint[i] {
			pin = " (user constraint)"
		}
		fmt.Printf("  GA %d%s:\n    %s\n", i, pin, strings.Join(parts, "\n    "))
	}
}
