// Quickstart: build a small universe by hand, solve one µBE problem, and
// print the chosen sources and mediated schema.
//
// This is the minimal end-to-end use of the public API: define sources
// (schema + cardinality + optional PCSA signature + characteristics),
// create an engine, and call Solve.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"ube"
)

func main() {
	u := buildUniverse()

	eng, err := ube.NewEngine(u)
	if err != nil {
		log.Fatal(err)
	}

	prob := ube.DefaultProblem()
	prob.MaxSources = 4 // integrate at most four of the six sources

	sol, err := eng.Solve(&prob)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("overall quality: %.4f\n", sol.Quality)
	for name, v := range sol.Breakdown {
		fmt.Printf("  %-12s %.4f\n", name, v)
	}
	fmt.Printf("\nchosen sources:\n")
	for _, id := range sol.Sources {
		s := u.Source(id)
		fmt.Printf("  %-12s %6d tuples  (%s)\n", s.Name, s.Cardinality, strings.Join(s.Attributes, ", "))
	}
	fmt.Printf("\nmediated schema:\n")
	for i, ga := range sol.Schema.GAs {
		parts := make([]string, len(ga))
		for j, r := range ga {
			parts[j] = fmt.Sprintf("%s.%s", u.Source(r.Source).Name, u.AttrName(r))
		}
		fmt.Printf("  GA %d: %s\n", i, strings.Join(parts, " = "))
	}
}

// buildUniverse defines six small book-selling sources by hand. Each
// source computes a PCSA signature over its tuples — in a real deployment
// the sources themselves would do this and export only the signature.
func buildUniverse() *ube.Universe {
	const sketchMaps, sketchSeed = 256, 42

	type sourceDef struct {
		name   string
		attrs  []string
		mttf   float64
		tuples []string // ISBNs this store stocks
	}

	// Overlapping inventories: alpha/beta are near clones, gamma covers
	// rare titles, delta is big but redundant with alpha.
	defs := []sourceDef{
		{"alphabooks", []string{"title", "author", "isbn", "price"}, 120, isbns(0, 800)},
		{"betabooks", []string{"title", "author", "isbn number", "price range"}, 90, isbns(0, 780)},
		{"gammarare", []string{"book title", "authors", "isbn", "condition"}, 200, isbns(800, 1000)},
		{"deltamart", []string{"title", "author", "keyword", "price"}, 60, isbns(0, 950)},
		{"epsilonshop", []string{"titles", "author name", "isbn", "price"}, 150, isbns(300, 1200)},
		{"zetaoutlet", []string{"voltage", "gearbox"}, 300, isbns(0, 100)}, // not a bookstore at all
	}

	u := &ube.Universe{}
	for i, d := range defs {
		sig, err := ube.NewSignature(sketchMaps, sketchSeed)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range d.tuples {
			sig.AddTuple(t)
		}
		u.Sources = append(u.Sources, ube.Source{
			ID:              i,
			Name:            d.name,
			Attributes:      d.attrs,
			Cardinality:     int64(len(d.tuples)),
			Signature:       sig,
			Characteristics: map[string]float64{"mttf": d.mttf},
		})
	}
	return u
}

// isbns fabricates tuple keys for the half-open range [lo, hi).
func isbns(lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, fmt.Sprintf("isbn-%06d", i))
	}
	return out
}
