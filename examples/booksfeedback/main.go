// Booksfeedback: a complete iterative exploration session on the paper's
// synthetic Books workload (§7.1) — the workflow µBE is built around.
//
// The script plays a user who:
//
//  1. solves unconstrained and inspects the result;
//  2. promotes a GA they like from the output into a GA constraint and
//     pins a favorite source (output-as-input feedback, §6);
//  3. bridges two lexically distant spellings of the same concept
//     ("condition" vs "used or new") with a Matching-By-Example GA
//     constraint, which no string similarity could justify on its own;
//  4. decides query cost matters most and shifts weight onto redundancy,
//     then compares how the solution moved across iterations.
//
// Run with: go run ./examples/booksfeedback
package main

import (
	"fmt"
	"log"
	"strings"

	"ube"
)

func main() {
	cfg := ube.QuickWorkload(120)
	u, _, err := ube.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ube.NewEngine(u)
	if err != nil {
		log.Fatal(err)
	}
	prob := ube.DefaultProblem()
	prob.MaxSources = 10
	sess := ube.NewSession(eng, prob)

	// --- iteration 1: look around -----------------------------------
	fmt.Println("=== iteration 1: unconstrained ===")
	sol, err := sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	summarize(u, sol)

	// --- iteration 2: keep what we liked -----------------------------
	// The user likes the first GA (say, the title cluster) and wants
	// source 0 (a well-known store) in every future solution.
	fmt.Println("\n=== iteration 2: pin a GA and a source ===")
	if err := sess.PinGAFromSolution(0); err != nil {
		log.Fatal(err)
	}
	if err := sess.RequireSource(0); err != nil {
		log.Fatal(err)
	}
	sol, err = sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	summarize(u, sol)

	// --- iteration 3: bridge a semantic gap ---------------------------
	// Several concepts have spellings whose 3-gram similarity is nowhere
	// near θ — "subject" vs "genre", "format" vs "binding", "condition"
	// vs "used or new". Find a pair that exists in this draw, in two
	// different sources, and pin them together: the Matching-By-Example
	// move of Figure 3.
	bridged := false
	for _, pair := range [][2]string{
		{"subject", "genre"},
		{"format", "binding"},
		{"condition", "used or new"},
		{"author", "writer"},
		{"seller", "bookstore"},
	} {
		a, okA := findAttr(u, pair[0])
		b, okB := findAttr(u, pair[1])
		if !okA || !okB || a.Source == b.Source {
			continue
		}
		fmt.Printf("\n=== iteration 3: bridge %q and %q ===\n", pair[0], pair[1])
		if err := sess.PinGA(ube.NewGA(a, b)); err != nil {
			// The attribute may already sit inside the GA pinned in
			// iteration 2; try the next pair.
			continue
		}
		sol, err = sess.Solve()
		if err != nil {
			log.Fatal(err)
		}
		summarize(u, sol)
		showBridge(u, sol, a, b)
		bridged = true
		break
	}
	if !bridged {
		fmt.Println("\n(no bridgeable spelling pair in this draw; skipping iteration 3)")
	}

	// --- iteration 4: redundancy matters now --------------------------
	fmt.Println("\n=== iteration 4: shift weight onto redundancy ===")
	if err := sess.SetWeight("redundancy", 0.5); err != nil {
		log.Fatal(err)
	}
	sol, err = sess.Solve()
	if err != nil {
		log.Fatal(err)
	}
	summarize(u, sol)

	// --- compare the journey ------------------------------------------
	fmt.Println("\n=== session history ===")
	for i, it := range sess.History() {
		fmt.Printf("iteration %d: quality %.4f, redundancy %.3f, %d sources, %d GAs, constraints: %d src / %d GA\n",
			i+1, it.Solution.Quality, it.Solution.Breakdown["redundancy"],
			len(it.Solution.Sources), len(it.Solution.Schema.GAs),
			len(it.Problem.Constraints.Sources), len(it.Problem.Constraints.GAs))
	}
}

// summarize prints the solution at a glance.
func summarize(u *ube.Universe, sol *ube.Solution) {
	fmt.Printf("quality %.4f | card %.3f cov %.3f red %.3f match %.3f\n",
		sol.Quality, sol.Breakdown["card"], sol.Breakdown["coverage"],
		sol.Breakdown["redundancy"], sol.Breakdown[ube.MatchQEFName])
	ids := make([]string, len(sol.Sources))
	for i, id := range sol.Sources {
		ids[i] = fmt.Sprint(id)
	}
	fmt.Printf("sources: %s\n", strings.Join(ids, ", "))
	fmt.Printf("schema: %d GAs covering %d attributes\n",
		len(sol.Schema.GAs), sol.Schema.NumAttributes())
	for i, ga := range sol.Schema.GAs {
		if i == 3 {
			fmt.Printf("  ... %d more GAs\n", len(sol.Schema.GAs)-3)
			break
		}
		fmt.Printf("  GA %d: %s\n", i, gaString(u, ga))
	}
}

func gaString(u *ube.Universe, ga ube.GA) string {
	parts := make([]string, len(ga))
	for j, r := range ga {
		parts[j] = fmt.Sprintf("%d:%s", r.Source, u.AttrName(r))
	}
	return strings.Join(parts, " = ")
}

// findAttr locates any attribute with the exact given name.
func findAttr(u *ube.Universe, name string) (ube.AttrRef, bool) {
	for i := range u.Sources {
		for a, n := range u.Sources[i].Attributes {
			if n == name {
				return ube.AttrRef{Source: i, Attr: a}, true
			}
		}
	}
	return ube.AttrRef{}, false
}

// showBridge prints the GA that grew around the user's bridge constraint.
func showBridge(u *ube.Universe, sol *ube.Solution, a, b ube.AttrRef) {
	for _, ga := range sol.Schema.GAs {
		if ga.Contains(a) {
			fmt.Printf("bridge GA grew to %d attributes: %s\n", len(ga), gaString(u, ga))
			if !ga.Contains(b) {
				fmt.Println("warning: bridge constraint not honored!")
			}
			return
		}
	}
	fmt.Println("warning: bridge GA missing from schema!")
}
