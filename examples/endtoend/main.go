// Endtoend: the complete lifecycle of a µBE-built data integration system.
//
//  1. Describe candidate bookstores (schemas, cardinalities, PCSA
//     signatures computed from their actual inventories).
//  2. Let µBE select which stores to integrate and mediate their schemas.
//  3. Stand the chosen system up and run queries over the mediated schema:
//     tuples are fetched from each selected store, rewritten into the
//     global schema, filtered, and de-duplicated across stores — exactly
//     the query-execution costs the paper's introduction motivates.
//
// Run with: go run ./examples/endtoend
package main

import (
	"fmt"
	"log"
	"strings"

	"ube"
)

// store is one bookstore: its query-interface schema and its inventory.
type store struct {
	name  string
	attrs []string
	rows  [][]string
	mttf  float64
}

// inventory returns rows (title, author, price) for a range of the shared
// catalog, so stores overlap exactly where their ranges do.
func inventory(lo, hi int, priceBump int) [][]string {
	authors := []string{"austen", "borges", "calvino", "dickens", "eco"}
	rows := make([][]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("book %03d", i),
			authors[i%len(authors)],
			fmt.Sprintf("%d", 10+(i%7)+priceBump),
		})
	}
	return rows
}

func main() {
	stores := []store{
		{"alpha", []string{"title", "author", "price"}, inventory(0, 60, 0), 150},
		{"beta", []string{"title", "author", "price"}, inventory(20, 80, 0), 120},
		{"gamma", []string{"book title", "writer", "cost"}, inventory(70, 120, 0), 200},
		{"delta", []string{"title", "author", "price"}, inventory(0, 55, 0), 40}, // redundant with alpha, flaky
		{"epsilon", []string{"titles", "authors", "prices"}, inventory(100, 150, 0), 90},
	}

	// --- 1. describe the universe -------------------------------------
	u := &ube.Universe{}
	providers := map[int]ube.TupleProvider{}
	for i, st := range stores {
		sig, err := ube.NewSignature(ube.DefaultSignatureMaps, 7)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range st.rows {
			sig.AddTuple(row...)
		}
		u.Sources = append(u.Sources, ube.Source{
			ID:              i,
			Name:            st.name,
			Attributes:      st.attrs,
			Cardinality:     int64(len(st.rows)),
			Signature:       sig,
			Characteristics: map[string]float64{"mttf": st.mttf},
		})
		providers[i] = &ube.MemProvider{Rows: st.rows}
	}

	// --- 2. select and mediate ----------------------------------------
	eng, err := ube.NewEngine(u)
	if err != nil {
		log.Fatal(err)
	}
	prob := ube.DefaultProblem()
	prob.MaxSources = 3 // integrate at most three stores
	sol, err := eng.Solve(&prob)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(sol.Sources))
	for i, id := range sol.Sources {
		names[i] = u.Source(id).Name
	}
	fmt.Printf("µBE selected %s (quality %.3f, coverage %.3f, redundancy %.3f)\n",
		strings.Join(names, ", "), sol.Quality, sol.Breakdown["coverage"], sol.Breakdown["redundancy"])

	// --- 3. stand the system up and query it --------------------------
	sys, err := ube.NewIntegrationSystem(u, sol.Sources, sol.Schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mediated schema: %d attributes:", sys.NumGAs())
	var titleGA, authorGA = -1, -1
	for g := 0; g < sys.NumGAs(); g++ {
		label := sys.GALabel(g)
		fmt.Printf(" [%d]=%s", g, label)
		switch label {
		case "title", "book title", "titles":
			titleGA = g
		case "author", "writer", "authors":
			authorGA = g
		}
	}
	fmt.Println()
	if titleGA < 0 || authorGA < 0 {
		log.Fatal("mediated schema lacks title/author attributes")
	}

	// Query 1: everything by borges, de-duplicated across stores.
	res, err := ube.ExecuteQuery(sys, providers, ube.MediatedQuery{
		Select:   []int{titleGA},
		Where:    []ube.MediatedPred{{GA: authorGA, Value: "borges"}},
		Distinct: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSELECT %s WHERE %s = borges → %d distinct titles\n",
		res.Columns[0], sys.GALabel(authorGA), len(res.Rows))
	fmt.Printf("  fetched %d tuples from %d stores, matched %d, removed %d duplicates\n",
		res.Stats.TuplesFetched, res.Stats.SourcesQueried,
		res.Stats.TuplesMatched, res.Stats.DuplicatesRemoved)
	for i, row := range res.Rows {
		if i == 5 {
			fmt.Printf("  ... %d more\n", len(res.Rows)-5)
			break
		}
		fmt.Printf("  %s\n", row[0])
	}

	// Query 2: the full catalog view, counting overlap.
	all, err := ube.ExecuteQuery(sys, providers, ube.MediatedQuery{Distinct: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull catalog: %d distinct mediated rows (%d duplicates resolved across stores)\n",
		len(all.Rows), all.Stats.DuplicatesRemoved)
}
