package ube_test

import (
	"fmt"
	"strings"

	"ube"
)

// ExampleEngine_Solve shows the minimal end-to-end use: describe sources,
// build an engine, solve one problem.
func ExampleEngine_Solve() {
	u := &ube.Universe{Sources: []ube.Source{
		{ID: 0, Name: "alpha", Attributes: []string{"title", "author"}, Cardinality: 900},
		{ID: 1, Name: "beta", Attributes: []string{"title", "author"}, Cardinality: 800},
		{ID: 2, Name: "gamma", Attributes: []string{"voltage"}, Cardinality: 100},
	}}
	eng, err := ube.NewEngine(u)
	if err != nil {
		panic(err)
	}
	prob := ube.DefaultProblem()
	prob.MaxSources = 2
	// This universe has no MTTF characteristic or signatures: weight
	// matching and cardinality only.
	prob.Characteristics = nil
	prob.Weights = ube.Weights{ube.MatchQEFName: 0.6, "card": 0.4, "coverage": 0, "redundancy": 0}

	sol, err := eng.Solve(&prob)
	if err != nil {
		panic(err)
	}
	fmt.Println("sources:", sol.Sources)
	fmt.Println("GAs:", len(sol.Schema.GAs))
	// Output:
	// sources: [0 1]
	// GAs: 2
}

// ExampleSession demonstrates the iterative feedback loop: pin a GA from
// one iteration's output as the next iteration's constraint.
func ExampleSession() {
	u := &ube.Universe{Sources: []ube.Source{
		{ID: 0, Name: "a", Attributes: []string{"title", "price"}, Cardinality: 500},
		{ID: 1, Name: "b", Attributes: []string{"title", "price"}, Cardinality: 500},
		{ID: 2, Name: "c", Attributes: []string{"titles", "cost"}, Cardinality: 500},
	}}
	eng, err := ube.NewEngine(u)
	if err != nil {
		panic(err)
	}
	prob := ube.DefaultProblem()
	prob.MaxSources = 3
	prob.Characteristics = nil
	prob.Weights = ube.Weights{ube.MatchQEFName: 0.7, "card": 0.3, "coverage": 0, "redundancy": 0}

	sess := ube.NewSession(eng, prob)
	if _, err := sess.Solve(); err != nil {
		panic(err)
	}
	// Keep GA 0, then bridge "price" and "cost" by example.
	if err := sess.PinGAFromSolution(0); err != nil {
		panic(err)
	}
	if err := sess.PinGA(ube.NewGA(
		ube.AttrRef{Source: 0, Attr: 1},
		ube.AttrRef{Source: 2, Attr: 1},
	)); err != nil {
		panic(err)
	}
	sol, err := sess.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Println("iterations:", len(sess.History()))
	fmt.Println("schema subsumes pins:", sol.Schema.Subsumes(&ube.MediatedSchema{GAs: sess.Problem().Constraints.GAs}))
	// Output:
	// iterations: 2
	// schema subsumes pins: true
}

// ExampleParseSchemas loads hidden-Web source descriptions in the paper's
// Figure 1 text format.
func ExampleParseSchemas() {
	const listing = `aceticket.com: {state, city, event, venue}
wstonline.org: {keyword, after date, before date} | cardinality=9000
`
	u, err := ube.ParseSchemas(strings.NewReader(listing))
	if err != nil {
		panic(err)
	}
	fmt.Println(u.N(), "sources;", u.Sources[1].Cardinality, "tuples at", u.Sources[1].Name)
	// Output:
	// 2 sources; 9000 tuples at wstonline.org
}

// ExampleApplyComposites bridges an n:m schema gap: {first name, last
// name} at one source jointly match {full name} at another.
func ExampleApplyComposites() {
	u := &ube.Universe{Sources: []ube.Source{
		{ID: 0, Name: "split", Attributes: []string{"first name", "last name"}, Cardinality: 1},
		{ID: 1, Name: "whole", Attributes: []string{"full name"}, Cardinality: 1},
	}}
	derived, mapping, err := ube.ApplyComposites(u, []ube.Composite{
		{Source: 0, Attrs: []int{0, 1}, Name: "full name"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("derived schema of split:", derived.Sources[0].Attributes)
	nm := mapping.ExpandGA(ube.NewGA(
		ube.AttrRef{Source: 0, Attr: 0}, // the fused attribute
		ube.AttrRef{Source: 1, Attr: 0},
	))
	fmt.Println("group sizes:", len(nm.Groups[0]), len(nm.Groups[1]))
	// Output:
	// derived schema of split: [full name]
	// group sizes: 2 1
}
