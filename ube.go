// Package ube is a from-scratch Go implementation of µBE ("Matching By
// Example"), the user-guided source selection and schema mediation system
// for Internet-scale data integration of Aboulnaga & El Gebaly (ICDE 2007).
//
// Given a universe of hundreds or thousands of data-source descriptions —
// each a relational schema, a reported cardinality, an optional PCSA hash
// signature of its data, and non-functional characteristics like mean time
// to failure — µBE simultaneously chooses which sources to integrate and
// what mediated schema to use over them. The choice maximizes a weighted
// sum of quality evaluation functions (schema matching quality, data
// cardinality, coverage, redundancy, and user-defined source
// characteristics) subject to user constraints, and is solved with tabu
// search over the space of source subsets.
//
// The intended workflow is iterative: solve, inspect the solution, pin the
// sources and global attributes (GAs) you like as constraints, reweight
// the quality dimensions, and solve again. Session implements that loop.
//
// A minimal use:
//
//	u := &ube.Universe{Sources: []ube.Source{...}}
//	eng, err := ube.NewEngine(u)
//	if err != nil { ... }
//	prob := ube.DefaultProblem()
//	prob.MaxSources = 10
//	sol, err := eng.Solve(&prob)
//
// The synthetic workload generator of the paper's evaluation lives in
// Generate/DefaultWorkload; the examples/ directory shows complete
// programs.
package ube

import (
	"io"

	"ube/internal/compound"
	"ube/internal/datasim"
	"ube/internal/diq"
	"ube/internal/discovery"
	"ube/internal/engine"
	"ube/internal/eval"
	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/qef"
	"ube/internal/schemaio"
	"ube/internal/search"
	"ube/internal/strsim"
	"ube/internal/synth"
)

// Data model (paper §2). See the internal/model package for full docs.
type (
	// Source is one data source: schema, cardinality, signature,
	// characteristics.
	Source = model.Source
	// Universe is the set of all candidate sources.
	Universe = model.Universe
	// AttrRef names one attribute of one source.
	AttrRef = model.AttrRef
	// GA (Global Attribute) is a set of matching attributes from
	// different sources — one attribute of the mediated schema.
	GA = model.GA
	// MediatedSchema is a set of disjoint GAs.
	MediatedSchema = model.MediatedSchema
	// Constraints carries source constraints, GA constraints and
	// exclusions.
	Constraints = model.Constraints
	// SourceSet is a set of source IDs.
	SourceSet = model.SourceSet
)

// NewGA builds a canonical GA from attribute references.
func NewGA(refs ...AttrRef) GA { return model.NewGA(refs...) }

// NewSourceSet returns an empty source set over IDs [0, n).
func NewSourceSet(n int) *SourceSet { return model.NewSourceSet(n) }

// Engine, problems, solutions and sessions (paper §2.5, §6).
type (
	// Engine solves µBE problems over one universe.
	Engine = engine.Engine
	// Problem is one iteration's optimization problem.
	Problem = engine.Problem
	// Solution is a solved iteration.
	Solution = engine.Solution
	// Session is the iterative user-feedback loop.
	Session = engine.Session
	// Iteration is one history entry of a Session.
	Iteration = engine.Iteration
	// EngineOption configures NewEngine.
	EngineOption = engine.Option
)

// MatchQEFName is the QEF name under which the matching quality F1 is
// weighted and reported.
const MatchQEFName = engine.MatchQEFName

// NewEngine builds an engine over a universe.
func NewEngine(u *Universe, opts ...EngineOption) (*Engine, error) {
	return engine.New(u, opts...)
}

// NewSession starts an iterative session from an initial problem.
func NewSession(e *Engine, initial Problem) *Session {
	return engine.NewSession(e, initial)
}

// DefaultProblem returns the paper's experimental defaults: m=20, θ=0.65,
// β=2, weights 0.25/0.25/0.2/0.15/0.15 over match, card, coverage,
// redundancy and wsum-aggregated MTTF.
func DefaultProblem() Problem { return engine.DefaultProblem() }

// WithMeasure overrides the attribute-name similarity measure.
func WithMeasure(m SimilarityMeasure) EngineOption { return engine.WithMeasure(m) }

// Quality evaluation functions (paper §2.3, §4, §5).
type (
	// Weights maps QEF names to their relative importance (sum 1).
	Weights = qef.Weights
	// QEF is one quality dimension.
	QEF = qef.QEF
	// QEFContext is the evaluation context passed to QEFs.
	QEFContext = qef.Context
	// Aggregator folds a source characteristic over a set into [0,1].
	Aggregator = qef.Aggregator
)

// Predefined characteristic aggregators (§5).
type (
	// WSum is the paper's cardinality-weighted sum aggregation.
	WSum = qef.WSum
	// MeanAgg is the unweighted normalized mean.
	MeanAgg = qef.Mean
	// MinAgg scores a set by its weakest member.
	MinAgg = qef.Min
	// MaxAgg scores a set by its strongest member.
	MaxAgg = qef.Max
)

// AggregatorByName resolves "wsum", "mean", "min" or "max".
func AggregatorByName(name string) (Aggregator, bool) { return qef.AggregatorByName(name) }

// Optimizers (paper §6).
type (
	// Optimizer is a solver for the source-selection problem.
	Optimizer = search.Optimizer
)

// OptimizerByName resolves "tabu", "sls", "anneal", "pso", "greedy" or
// "exhaustive" with default parameters.
func OptimizerByName(name string) (Optimizer, bool) { return search.ByName(name) }

// NewTabu returns the default tabu-search optimizer.
func NewTabu() Optimizer { return search.NewTabu() }

// Similarity measures (paper §3).
type (
	// SimilarityMeasure scores attribute-name similarity in [0,1].
	SimilarityMeasure = strsim.Measure
)

// DefaultMeasure returns the paper's measure: Jaccard over 3-grams.
func DefaultMeasure() SimilarityMeasure { return strsim.Default() }

// NewNGramJaccard returns an n-gram Jaccard measure.
func NewNGramJaccard(n int) SimilarityMeasure { return strsim.NewNGramJaccard(n) }

// PCSA signatures (paper §4). Sources that cooperate with µBE compute a
// signature over their tuples once; µBE estimates union cardinalities by
// ORing signatures.
type (
	// Signature is a PCSA distinct-count sketch.
	Signature = pcsa.Sketch
)

// DefaultSignatureMaps is the default number of PCSA bitmaps (≈4.9%
// standard error at 2 KiB per source).
const DefaultSignatureMaps = pcsa.DefaultMaps

// NewSignature creates an empty signature. All sources of a universe must
// share nmaps and seed.
func NewSignature(nmaps int, seed uint64) (*Signature, error) { return pcsa.New(nmaps, seed) }

// Synthetic workload generation (paper §7.1) and ground-truth evaluation
// (§7.3).
type (
	// WorkloadConfig parameterizes the synthetic Books workload.
	WorkloadConfig = synth.Config
	// Truth is the generation-time ground truth.
	Truth = synth.Truth
	// GAReport carries the Table 1 concept metrics for one solution.
	GAReport = eval.Report
)

// DefaultWorkload returns the paper-scale workload configuration
// (700 sources, 4M-tuple pool, Zipf 10k..1M cardinalities).
func DefaultWorkload() WorkloadConfig { return synth.DefaultConfig() }

// QuickWorkload returns a scaled-down workload for demos and tests.
func QuickWorkload(numSources int) WorkloadConfig { return synth.QuickConfig(numSources) }

// Generate builds a synthetic universe and its ground truth.
func Generate(cfg WorkloadConfig) (*Universe, *Truth, error) { return synth.Generate(cfg) }

// LargeWorkloadConfig parameterizes the internet-scale synthetic
// workload: a Zipf-shared attribute vocabulary that grows with the
// universe, and no data signatures (every source uncooperative).
type LargeWorkloadConfig = synth.LargeConfig

// LargeWorkload returns the large-universe configuration for numSources
// sources (10⁴–10⁵ is the intended range).
func LargeWorkload(numSources int) LargeWorkloadConfig {
	return synth.DefaultLargeConfig(numSources)
}

// GenerateLarge builds a large synthetic universe and its ground truth.
func GenerateLarge(cfg LargeWorkloadConfig) (*Universe, *Truth, error) {
	return synth.GenerateLarge(cfg)
}

// EvaluateGAs scores a solution's schema against the synthetic ground
// truth, producing the paper's Table 1 metrics.
func EvaluateGAs(truth *Truth, sources []int, schema *MediatedSchema) GAReport {
	return eval.Evaluate(truth, sources, schema)
}

// NumConcepts is the number of ground-truth concepts in the synthetic
// Books workload (the paper counts 14).
const NumConcepts = synth.NumConcepts

// ParseSchemas reads source descriptions in the textual format of the
// paper's Figure 1 ("name: {attr, attr} | cardinality=N mttf=X") into a
// universe. Sources loaded this way are uncooperative (no data signature)
// until signatures are attached.
func ParseSchemas(r io.Reader) (*Universe, error) { return schemaio.Parse(r) }

// WriteSchemas renders a universe in the Figure 1 textual format, the
// inverse of ParseSchemas. Signatures are not representable and are
// dropped.
func WriteSchemas(w io.Writer, u *Universe) error { return schemaio.Write(w, u) }

// NewValueMeasure builds the data-based attribute similarity measure of
// §3 from a universe whose sources export per-attribute value signatures
// (Source.AttrSignatures): the score of two attribute names is the larger
// of their name similarity (fallback; nil means the 3-gram default) and
// the estimated Jaccard overlap of their value sets. Use it with
// WithMeasure to let Match bridge lexically unrelated attributes that
// store the same values.
func NewValueMeasure(u *Universe, fallback SimilarityMeasure) (SimilarityMeasure, error) {
	return datasim.New(u, fallback)
}

// Compound schema elements — the n:m matching extension of §2.1: declare
// that several attributes of one source jointly express a single concept,
// fuse them into one derived attribute, match 1:1 on the derived universe,
// and expand the result back to n:m correspondences.
type (
	// Composite declares one compound element.
	Composite = compound.Composite
	// NMMapping expands derived matches back to original attributes.
	NMMapping = compound.Mapping
	// NMMatch is one expanded n:m correspondence.
	NMMatch = compound.NMMatch
)

// ApplyComposites fuses the declared compound elements into a derived
// universe on which the engine runs unchanged; the mapping expands the
// resulting 1:1 GAs into n:m matches over the original attributes.
func ApplyComposites(u *Universe, comps []Composite) (*Universe, *NMMapping, error) {
	return compound.Apply(u, comps)
}

// Query execution over a solved data integration system (the runtime
// costs §1 motivates: retrieve from sources, map to the mediated schema,
// resolve duplicates).
type (
	// IntegrationSystem is a solved system ready for query execution.
	IntegrationSystem = diq.System
	// TupleProvider supplies one source's data at query time.
	TupleProvider = diq.Provider
	// MemProvider is an in-memory TupleProvider.
	MemProvider = diq.MemProvider
	// MediatedQuery is a selection query over the mediated schema.
	MediatedQuery = diq.Query
	// MediatedPred is an equality predicate on a mediated attribute.
	MediatedPred = diq.Pred
	// QueryResult is a query's rows, columns and execution stats.
	QueryResult = diq.Result
)

// NewIntegrationSystem validates and indexes a solved system (typically
// sol.Sources and sol.Schema) for query execution.
func NewIntegrationSystem(u *Universe, sources []int, schema *MediatedSchema) (*IntegrationSystem, error) {
	return diq.NewSystem(u, sources, schema)
}

// ExecuteQuery runs a mediated-schema query against the system using the
// given per-source providers.
func ExecuteQuery(sys *IntegrationSystem, providers map[int]TupleProvider, q MediatedQuery) (*QueryResult, error) {
	return diq.Execute(sys, providers, q)
}

// SolutionDiff summarizes what changed between two solutions — the
// between-iterations view the µBE UI gives the user.
type SolutionDiff = engine.Diff

// DiffSolutions compares two solutions of the same universe (old → new).
func DiffSolutions(old, new *Solution) *SolutionDiff {
	return engine.DiffSolutions(old, new)
}

// Source discovery (Figure 2: descriptions "can be obtained from a hidden
// Web search engine or some other source discovery mechanism"). Index a
// corpus of source descriptions, search by keyword, and materialize the
// hits as a fresh universe for an Engine.
type (
	// DiscoveryIndex is a keyword index over source descriptions.
	DiscoveryIndex = discovery.Index
	// DiscoveryHit is one ranked search result.
	DiscoveryHit = discovery.Hit
)

// NewDiscoveryIndex indexes a corpus of source descriptions.
func NewDiscoveryIndex(u *Universe) (*DiscoveryIndex, error) { return discovery.NewIndex(u) }

// MediatedAggQuery is a grouped distinct count over the mediated schema.
type MediatedAggQuery = diq.AggQuery

// MediatedGroupRow is one aggregation result group.
type MediatedGroupRow = diq.GroupRow

// ExecuteAggregateQuery runs a grouped distinct count ("how many titles
// per author across the selected stores") against the system.
func ExecuteAggregateQuery(sys *IntegrationSystem, providers map[int]TupleProvider, q MediatedAggQuery) ([]MediatedGroupRow, error) {
	rows, _, err := diq.ExecuteAggregate(sys, providers, q)
	return rows, err
}
