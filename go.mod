module ube

go 1.22
