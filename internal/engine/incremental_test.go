package engine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ube/internal/cluster"
	"ube/internal/model"
	"ube/internal/qef"
	"ube/internal/search"
)

// solveObjectives rebuilds the full and delta objectives exactly as Solve
// wires them, so the differential test can probe them directly.
func solveObjectives(t *testing.T, e *Engine, p *Problem) (search.Objective, search.DeltaObjective) {
	t.Helper()
	qefs, err := e.buildQEFs(p)
	if err != nil {
		t.Fatal(err)
	}
	wMatch := p.Weights[MatchQEFName]
	wRest := 1 - wMatch
	comp, err := qef.NewComposite(qefs, restWeights(p.Weights))
	if err != nil {
		t.Fatal(err)
	}
	cfg := clusterConfig(e, p)
	C, G := p.Constraints.Sources, p.Constraints.GAs
	full := func(S *model.SourceSet) (float64, bool) {
		f1, valid := e.matchQuality(S, cfg, C, G)
		return wMatch*f1 + wRest*comp.Eval(e.ctx, S), valid
	}
	dobj, _ := e.deltaObjective(comp, wMatch, wRest, cfg, C, G)
	return full, dobj
}

// clusterConfig mirrors Solve's cluster.Config construction.
func clusterConfig(e *Engine, p *Problem) cluster.Config {
	cfg := cluster.Config{
		Theta:        p.Theta,
		Beta:         p.Beta,
		Sim:          e.sim,
		Scores:       e.scores,
		Neighbors:    e.neighbors(p.Theta),
		LegacyAgenda: e.legacyEval,
	}
	if !e.legacyEval {
		cfg.NameIDs = e.nameIDs
		cfg.Seed = e.seedPairs(p.Theta, cfg.Scores, cfg.Neighbors)
	}
	return cfg
}

// TestDeltaObjectiveMatchesFull walks random add/drop/swap sequences and
// checks the incremental objective agrees with the full objective within
// 1e-12 at every step — the satellite differential property the issue
// requires.
func TestDeltaObjectiveMatchesFull(t *testing.T) {
	e, _ := testEngine(t, 24)
	p := DefaultProblem()
	p.MaxSources = 8
	full, delta := solveObjectives(t, e, &p)

	r := rand.New(rand.NewSource(11))
	n := e.u.N()
	cur := model.NewSourceSet(n)
	for cur.Len() < 6 {
		cur.Add(r.Intn(n))
	}
	for step := 0; step < 300; step++ {
		cand := cur.Clone()
		d := search.Delta{Base: cur, Add: -1, Drop: -1}
		switch r.Intn(3) {
		case 0: // add
			id := r.Intn(n)
			if cand.Has(id) {
				continue
			}
			cand.Add(id)
			d.Add = id
		case 1: // drop
			if cur.Len() <= 1 {
				continue
			}
			els := cur.Elements()
			id := els[r.Intn(len(els))]
			cand.Remove(id)
			d.Drop = id
		default: // swap
			if cur.Len() <= 1 {
				continue
			}
			els := cur.Elements()
			out := els[r.Intn(len(els))]
			in := r.Intn(n)
			if cand.Has(in) {
				continue
			}
			cand.Remove(out)
			cand.Add(in)
			d.Drop, d.Add = out, in
		}
		gotQ, gotOK := delta(cand, d)
		wantQ, wantOK := full(cand)
		if gotOK != wantOK || math.Abs(gotQ-wantQ) > 1e-12 {
			t.Fatalf("step %d (add=%d drop=%d): delta (%v,%v) vs full (%v,%v)",
				step, d.Add, d.Drop, gotQ, gotOK, wantQ, wantOK)
		}
		if r.Intn(2) == 0 {
			cur = cand
		}
	}
}

// TestSolveIncrementalMatchesLegacy solves the same problems on an
// incremental-pipeline engine and a WithLegacyEvaluation engine built
// over the same universe: the chosen sources must be identical and the
// quality equal to float reassociation error.
func TestSolveIncrementalMatchesLegacy(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e, _ := testEngine(t, 40)
		legacy, err := New(e.u, WithLegacyEvaluation())
		if err != nil {
			t.Fatal(err)
		}
		p := smallProblem()
		p.MaxSources = 10
		p.MaxEvals = 1500
		p.Workers = workers

		got, err := e.Solve(&p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := legacy.Solve(&p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Sources, want.Sources) {
			t.Fatalf("workers=%d: incremental chose %v, legacy chose %v", workers, got.Sources, want.Sources)
		}
		if math.Abs(got.Quality-want.Quality) > 1e-9 {
			t.Fatalf("workers=%d: quality %v vs %v", workers, got.Quality, want.Quality)
		}
		if got.MatchCache.Hits+got.MatchCache.Misses == 0 {
			t.Fatal("no match cache traffic recorded")
		}
	}
}

// TestSolveIncrementalDeterministic pins determinism of the incremental
// pipeline under parallel evaluation: repeated solves with Workers > 1
// must return byte-identical solutions (also exercised under -race).
func TestSolveIncrementalDeterministic(t *testing.T) {
	e, _ := testEngine(t, 40)
	p := smallProblem()
	p.MaxSources = 10
	p.MaxEvals = 1200
	p.Workers = 4

	first, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		again, err := e.Solve(&p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Sources, again.Sources) || first.Quality != again.Quality {
			t.Fatalf("run %d diverged: %v q=%v vs %v q=%v",
				i, first.Sources, first.Quality, again.Sources, again.Quality)
		}
	}
}
