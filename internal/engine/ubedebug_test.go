//go:build ubedebug

package engine

import (
	"testing"

	"ube/internal/ubedebug"
)

// TestDeltaAuditRuns proves the sampled delta≡full audit is live under
// the ubedebug tag: a solve performs far more delta evaluations than the
// sampling period, so Audited must advance — and every audit that ran
// agreed (a divergence panics the solve).
func TestDeltaAuditRuns(t *testing.T) {
	prev := ubedebug.SetAuditEvery(1)
	defer ubedebug.SetAuditEvery(prev)
	e, _ := testEngine(t, 40)
	p := smallProblem()
	before := ubedebug.Audited()
	if _, err := e.Solve(&p); err != nil {
		t.Fatal(err)
	}
	if after := ubedebug.Audited(); after <= before {
		t.Fatalf("no delta≡full audits ran during the solve (before=%d after=%d, period=%d)",
			before, after, ubedebug.AuditEvery())
	}
}
