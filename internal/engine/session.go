package engine

import (
	"context"
	"fmt"

	"ube/internal/model"
	"ube/internal/qef"
	"ube/internal/search"
	"ube/internal/trace"
)

// Session is the iterative exploration loop of §1/§6: the user solves,
// inspects the solution, edits the problem — pinning sources, promoting
// output GAs to GA constraints, reweighting QEFs, tightening θ — and
// solves again. By design the constraints the user provides have the same
// structure as the mediated schema µBE outputs, so feedback is "modify the
// output of the current iteration to get the input of the next".
type Session struct {
	engine  *Engine
	problem Problem
	history []Iteration
	// churnDirty marks that the universe mutated since the last solve:
	// the history's source IDs are stale, so the next solve warm-starts
	// from the problem's repaired InitialSources (remapped by
	// ApplyChurn) instead of copying Last().Sources. Cleared once a
	// solve lands in the post-churn ID space.
	churnDirty bool
}

// Iteration records one solved problem and its solution.
type Iteration struct {
	// Problem is a deep snapshot of the problem that was solved.
	Problem Problem
	// Solution is the result.
	Solution *Solution
}

// NewSession starts a session from an initial problem.
func NewSession(e *Engine, initial Problem) *Session {
	return &Session{engine: e, problem: snapshot(initial)}
}

// Engine returns the session's engine.
func (s *Session) Engine() *Engine { return s.engine }

// Problem returns a snapshot of the current problem definition.
func (s *Session) Problem() Problem { return snapshot(s.problem) }

// History returns the solved iterations, oldest first.
func (s *Session) History() []Iteration { return s.history }

// Last returns the most recent solution, or nil before the first Solve.
func (s *Session) Last() *Solution {
	if len(s.history) == 0 {
		return nil
	}
	return s.history[len(s.history)-1].Solution
}

// Solve runs the current problem and appends it to the history. Each
// iteration advances the solver seed so re-solving an unchanged problem
// explores differently, like re-running the tool does for the user, and
// warm-starts from the previous iteration's solution so feedback refines
// rather than restarts the exploration.
func (s *Session) Solve() (*Solution, error) {
	return s.SolveContext(context.Background())
}

// SolveContext is Solve with cancellation. A cancelled solve returns
// ctx.Err() and leaves the session untouched: nothing is appended to the
// history and the seed does not advance, so retrying after a
// cancellation behaves exactly as if the cancelled attempt never
// happened. A nil ctx behaves like context.Background().
func (s *Session) SolveContext(ctx context.Context) (*Solution, error) {
	if last := s.Last(); last != nil && !s.churnDirty {
		s.problem.InitialSources = append([]int(nil), last.Sources...)
	}
	sol, err := s.engine.SolveContext(ctx, &s.problem)
	if err != nil {
		return nil, err
	}
	s.history = append(s.history, Iteration{Problem: snapshot(s.problem), Solution: sol})
	s.problem.Seed++
	s.churnDirty = false
	return sol, nil
}

// SolveInput applies the warm-start (InitialSources from the last
// solution) exactly as the next SolveContext would and returns a
// snapshot of the resulting problem — the complete solver input, since
// a solve is a pure function of (universe, problem). The serving
// layer's cross-session solve memo keys on its encoding: two sessions
// over the same universe whose SolveInput snapshots are equal are
// guaranteed identical solutions by the determinism contract.
// Calling SolveContext afterwards re-applies the same warm-start, so
// SolveInput followed by SolveContext solves exactly this snapshot.
func (s *Session) SolveInput() Problem {
	if last := s.Last(); last != nil && !s.churnDirty {
		s.problem.InitialSources = append([]int(nil), last.Sources...)
	}
	return snapshot(s.problem)
}

// AppendSolved appends an externally obtained solution for the problem
// SolveInput returned, with exactly SolveContext's bookkeeping: the
// iteration records a snapshot of the current problem, and the seed
// advances so the next solve explores differently. The caller (the
// serving layer's solve memo) owns the correctness obligation: sol must
// be the solution SolveContext would have computed for SolveInput() —
// bit-identical, which determinism makes checkable — or the session's
// history silently diverges from a replay.
func (s *Session) AppendSolved(sol *Solution) {
	s.history = append(s.history, Iteration{Problem: snapshot(s.problem), Solution: sol})
	s.problem.Seed++
	s.churnDirty = false
}

// SetProblem replaces the session's current problem wholesale with a
// snapshot of p, leaving the history untouched. Callers that apply a
// batch of feedback edits can save Problem() first and restore it on a
// mid-batch error so edits stay all-or-nothing.
func (s *Session) SetProblem(p Problem) { s.problem = snapshot(p) }

// Restore replaces both the problem and the history wholesale. Two
// callers exist: recovery rebuilding a session from a durable snapshot
// (problem = the snapshot's current problem, seed already advanced past
// the restored iterations), and the service undoing a solve whose
// durability commit failed (problem = the pre-edit save, history minus
// the uncommitted iteration). The next Solve warm-starts from the last
// restored solution, exactly as if the restored history had been solved
// here.
func (s *Session) Restore(p Problem, history []Iteration) {
	s.problem = snapshot(p)
	s.history = append([]Iteration(nil), history...)
}

// SetProgress installs (or, with nil, removes) a progress observer for
// subsequent solves. The callback is a pure side channel and never
// influences results; see search.ProgressFunc.
func (s *Session) SetProgress(fn search.ProgressFunc) { s.problem.Progress = fn }

// SetTrace installs (or, with nil, removes) a span tracer for subsequent
// solves. Like Progress it is a pure side channel and never influences
// results; a tracer records a single solve, so callers install a fresh
// one per solve and Finish it afterwards.
func (s *Session) SetTrace(t *trace.Tracer) { s.problem.Trace = t }

// SetWeights replaces the QEF weights.
func (s *Session) SetWeights(w qef.Weights) { s.problem.Weights = w.Clone() }

// SetWeight adjusts one QEF's weight and rescales the others so the total
// stays 1 — the paper's Figure 8 workflow of biasing a single dimension.
func (s *Session) SetWeight(name string, w float64) error {
	if w < 0 || w > 1 {
		return fmt.Errorf("engine: weight %v outside [0,1]", w)
	}
	cur, ok := s.problem.Weights[name]
	if !ok {
		return fmt.Errorf("engine: unknown QEF %q", name)
	}
	restOld := 1 - cur
	restNew := 1 - w
	next := s.problem.Weights.Clone()
	next[name] = w
	//ube:nondeterministic-ok each key's rescale reads only its own entry; order cannot matter
	for k, v := range next {
		if k == name {
			continue
		}
		if restOld <= weightEpsilon {
			// The other weights were all zero; split evenly.
			next[k] = restNew / float64(len(next)-1)
		} else {
			next[k] = v / restOld * restNew
		}
	}
	s.problem.Weights = next
	return nil
}

// SetMaxSources changes m.
func (s *Session) SetMaxSources(m int) { s.problem.MaxSources = m }

// SetTheta changes the matching threshold θ.
func (s *Session) SetTheta(theta float64) { s.problem.Theta = theta }

// SetBeta changes the GA size floor β.
func (s *Session) SetBeta(beta int) { s.problem.Beta = beta }

// SetOptimizer changes the solver.
func (s *Session) SetOptimizer(opt search.Optimizer) { s.problem.Optimizer = opt }

// RequireSource adds a source constraint.
func (s *Session) RequireSource(id int) error {
	if id < 0 || id >= s.engine.u.N() {
		return fmt.Errorf("engine: source %d out of range", id)
	}
	for _, c := range s.problem.Constraints.Sources {
		if c == id {
			return nil // already required
		}
	}
	s.problem.Constraints.Sources = append(s.problem.Constraints.Sources, id)
	return s.problem.Constraints.Validate(s.engine.u)
}

// DropSourceConstraint removes a source constraint if present.
func (s *Session) DropSourceConstraint(id int) {
	out := s.problem.Constraints.Sources[:0]
	for _, c := range s.problem.Constraints.Sources {
		if c != id {
			out = append(out, c)
		}
	}
	s.problem.Constraints.Sources = out
}

// ExcludeSource forbids a source from any future solution.
func (s *Session) ExcludeSource(id int) error {
	if id < 0 || id >= s.engine.u.N() {
		return fmt.Errorf("engine: source %d out of range", id)
	}
	for _, c := range s.problem.Constraints.Exclude {
		if c == id {
			return nil
		}
	}
	s.problem.Constraints.Exclude = append(s.problem.Constraints.Exclude, id)
	if err := s.problem.Constraints.Validate(s.engine.u); err != nil {
		// Roll back the conflicting exclusion.
		s.problem.Constraints.Exclude = s.problem.Constraints.Exclude[:len(s.problem.Constraints.Exclude)-1]
		return err
	}
	return nil
}

// DropExclusion removes an exclusion if present.
func (s *Session) DropExclusion(id int) {
	out := s.problem.Constraints.Exclude[:0]
	for _, c := range s.problem.Constraints.Exclude {
		if c != id {
			out = append(out, c)
		}
	}
	s.problem.Constraints.Exclude = out
}

// PinGA adds a GA constraint: the next solution's schema must contain a GA
// that contains g.
func (s *Session) PinGA(g model.GA) error {
	if !g.Valid() {
		return fmt.Errorf("engine: GA constraint is not a valid GA")
	}
	next := s.problem.Constraints.Clone()
	next.GAs = append(next.GAs, g)
	if err := next.Validate(s.engine.u); err != nil {
		return err
	}
	s.problem.Constraints = *next
	return nil
}

// PinGAFromSolution promotes GA index i of the last solution's schema into
// a GA constraint — the canonical feedback gesture: the output of one
// iteration becomes the input of the next.
func (s *Session) PinGAFromSolution(i int) error {
	last := s.Last()
	if last == nil || last.Schema == nil {
		return fmt.Errorf("engine: no solved schema to pin from")
	}
	if i < 0 || i >= len(last.Schema.GAs) {
		return fmt.Errorf("engine: GA index %d out of range [0,%d)", i, len(last.Schema.GAs))
	}
	return s.PinGA(append(model.GA(nil), last.Schema.GAs[i]...))
}

// UnpinGA removes GA constraint index i.
func (s *Session) UnpinGA(i int) error {
	gas := s.problem.Constraints.GAs
	if i < 0 || i >= len(gas) {
		return fmt.Errorf("engine: GA constraint index %d out of range [0,%d)", i, len(gas))
	}
	s.problem.Constraints.GAs = append(gas[:i], gas[i+1:]...)
	return nil
}

// AddQEF registers a caller-defined quality dimension with zero weight;
// the user then reweights — the §1 "define new quality metrics" move.
func (s *Session) AddQEF(q qef.QEF) error {
	if q == nil {
		return fmt.Errorf("engine: nil QEF")
	}
	name := q.Name()
	if name == MatchQEFName || name == "card" || name == "coverage" || name == "redundancy" {
		return fmt.Errorf("engine: QEF name %q is reserved", name)
	}
	if _, dup := s.problem.Weights[name]; dup {
		return fmt.Errorf("engine: QEF %q already configured", name)
	}
	s.problem.ExtraQEFs = append(s.problem.ExtraQEFs, q)
	s.problem.Weights[name] = 0
	return nil
}

// AddCharacteristicQEF registers a new characteristic QEF with zero weight;
// the user then reweights (defining new QEFs between iterations, §1).
func (s *Session) AddCharacteristicQEF(char string, agg qef.Aggregator) error {
	if agg == nil {
		return fmt.Errorf("engine: nil aggregator")
	}
	if _, _, ok := s.engine.ctx.CharRange(char); !ok {
		return fmt.Errorf("engine: no source defines characteristic %q", char)
	}
	if s.problem.Characteristics == nil {
		s.problem.Characteristics = make(map[string]qef.Aggregator)
	}
	if _, dup := s.problem.Characteristics[char]; dup {
		return fmt.Errorf("engine: characteristic %q already configured", char)
	}
	s.problem.Characteristics[char] = agg
	if _, ok := s.problem.Weights[char]; !ok {
		s.problem.Weights[char] = 0
	}
	return nil
}

// snapshot deep-copies a problem so history entries are immutable.
func snapshot(p Problem) Problem {
	cp := p
	cp.Constraints = *p.Constraints.Clone()
	cp.Weights = p.Weights.Clone()
	cp.InitialSources = append([]int(nil), p.InitialSources...)
	cp.ExtraQEFs = append([]qef.QEF(nil), p.ExtraQEFs...)
	if p.Characteristics != nil {
		cp.Characteristics = make(map[string]qef.Aggregator, len(p.Characteristics))
		//ube:nondeterministic-ok key-for-key map copy is order-independent
		for k, v := range p.Characteristics {
			cp.Characteristics[k] = v
		}
	}
	return cp
}
