package engine

import (
	"errors"
	"fmt"
	"sort"

	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/strsim"
)

// This file implements universe mutation (churn): sources appearing,
// disappearing and changing metadata while the engine keeps serving
// solves. The engine maintains its derived state incrementally — the
// interned vocabulary's live-name refcounts drive a per-θ dynamic
// blocking index (strsim.DynSparse), a pcsa.UnionCounter maintains the
// universe-distinct signature union, and the QEF context is rebased in
// place — instead of rebuilding from scratch. The differential churn
// suite (churn_test.go) proves that after every prefix of a mutation
// schedule this incremental state is bit-identical to a fresh engine
// built on the mutated universe.
//
// Churn is NOT safe concurrently with solves on the same engine; the
// serving layer serializes it against session solves through its
// per-session work token, exactly like feedback edits.

// Mutation is one universe edit; the type and its op vocabulary live in
// the model package (model.Mutation) so schedule generators and codecs
// need not import the engine. The aliases keep the engine API readable:
// mutations in a batch apply in order, and IDs refer to the universe
// state after the preceding mutations of the same batch (a remove
// renumbers every following source down by one, exactly like
// model.Universe's dense-ID invariant demands).
type Mutation = model.Mutation

// Mutation op names, re-exported for engine callers.
const (
	OpAdd    = model.OpAdd
	OpRemove = model.OpRemove
	OpUpdate = model.OpUpdate
)

// Remap maps pre-batch source IDs to post-batch IDs; -1 marks a removed
// source. It is monotonic on survivors, so remapping a sorted ID list
// keeps it sorted.
type Remap []int

// Of returns the post-batch ID for a pre-batch ID, or -1 when the
// source was removed (or the ID was never valid).
func (r Remap) Of(id int) int {
	if id < 0 || id >= len(r) {
		return -1
	}
	return r[id]
}

// apply remaps a list of IDs, dropping removed ones and preserving
// order. It always returns a fresh slice.
func (r Remap) apply(ids []int) []int {
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if nid := r.Of(id); nid >= 0 {
			out = append(out, nid)
		}
	}
	return out
}

// PinnedSourceError reports a churn batch that would remove a source
// the session's problem currently pins — via a source constraint or a
// GA constraint reference. The batch is refused wholesale; the caller
// drops the constraint first or skips the removal.
type PinnedSourceError struct {
	// ID is the pre-batch ID of the pinned source.
	ID int
	// Constraint is "source" or "ga".
	Constraint string
}

func (e *PinnedSourceError) Error() string {
	return fmt.Sprintf("engine: churn would remove source %d pinned by a %s constraint", e.ID, e.Constraint)
}

// churnEvent is the part of one add/remove that the incremental
// structures consume: attribute names and the tuple signature. Updates
// generate no event — they touch neither the vocabulary nor the union.
type churnEvent struct {
	remove bool
	attrs  []string
	sig    *pcsa.Sketch
}

// churnPlan is a validated batch: the would-be source slice (IDs
// renumbered), the ID remap, and the event sequence. Planning never
// mutates the engine, so a rejected batch is a guaranteed no-op —
// the all-or-nothing contract the serving layer's WAL-ahead-of-apply
// ordering relies on.
type churnPlan struct {
	next      []model.Source
	remap     Remap
	events    []churnEvent
	hadRemove bool
	// rows is the post-batch nameIDs table, spliced in lockstep with
	// next: surviving sources keep their already-interned rows and only
	// added sources hold a nil placeholder, filled at commit. Reusing
	// rows keeps maintenance O(batch + U) pointer moves instead of
	// re-normalizing and re-interning every attribute name in the
	// universe (the dominant cost at U=10⁴).
	rows [][]int
}

// planChurn validates a mutation batch against the current universe and
// builds its plan without touching any engine state. Beyond the final
// model.Universe.Validate, it tracks the cooperative signature
// parameters through every intermediate state, because the maintained
// union counter sees each add/remove individually: a batch whose final
// state validates but which transiently mixes incompatible parameters
// is rejected here rather than exploding mid-commit.
func (e *Engine) planChurn(muts []Mutation) (*churnPlan, error) {
	if len(muts) == 0 {
		return nil, errors.New("engine: empty churn batch")
	}
	n0 := len(e.u.Sources)
	next := append([]model.Source(nil), e.u.Sources...)
	rows := append([][]int(nil), e.nameIDs...)
	remap := make(Remap, n0)
	for i := range remap {
		remap[i] = i
	}
	type sigParams struct {
		nmaps int
		seed  uint64
	}
	var cur sigParams
	coop := 0
	for i := range next {
		if sg := next[i].Signature; sg != nil {
			if coop == 0 {
				cur = sigParams{sg.NumMaps(), sg.Seed()}
			}
			coop++
		}
	}
	plan := &churnPlan{}
	for mi, m := range muts {
		switch m.Op {
		case OpAdd:
			s := m.Source
			s.ID = len(next)
			s.Attributes = append([]string(nil), s.Attributes...)
			s.AttrSignatures = append([]*pcsa.Sketch(nil), s.AttrSignatures...)
			if s.Characteristics != nil {
				cc := make(map[string]float64, len(s.Characteristics))
				//ube:nondeterministic-ok key-for-key map copy is order-independent
				for k, v := range s.Characteristics {
					cc[k] = v
				}
				s.Characteristics = cc
			}
			if sg := s.Signature; sg != nil {
				p := sigParams{sg.NumMaps(), sg.Seed()}
				if coop > 0 && p != cur {
					return nil, fmt.Errorf("engine: churn mutation %d: signature parameters (%d maps, seed %d) incompatible with the live population's (%d maps, seed %d)",
						mi, p.nmaps, p.seed, cur.nmaps, cur.seed)
				}
				if coop == 0 {
					cur = p
				}
				coop++
			}
			next = append(next, s)
			rows = append(rows, nil)
			plan.events = append(plan.events, churnEvent{attrs: s.Attributes, sig: s.Signature})
		case OpRemove:
			if m.ID < 0 || m.ID >= len(next) {
				return nil, fmt.Errorf("engine: churn mutation %d: remove of source %d out of range [0,%d)", mi, m.ID, len(next))
			}
			victim := next[m.ID]
			if victim.Signature != nil {
				coop--
			}
			plan.events = append(plan.events, churnEvent{remove: true, attrs: victim.Attributes, sig: victim.Signature})
			plan.hadRemove = true
			next = append(next[:m.ID], next[m.ID+1:]...)
			rows = append(rows[:m.ID], rows[m.ID+1:]...)
			for j, c := range remap {
				switch {
				case c == m.ID:
					remap[j] = -1
				case c > m.ID:
					remap[j] = c - 1
				}
			}
		case OpUpdate:
			if m.ID < 0 || m.ID >= len(next) {
				return nil, fmt.Errorf("engine: churn mutation %d: update of source %d out of range [0,%d)", mi, m.ID, len(next))
			}
			if m.Cardinality != nil {
				next[m.ID].Cardinality = *m.Cardinality
			}
			if m.Characteristics != nil {
				cc := make(map[string]float64, len(m.Characteristics))
				//ube:nondeterministic-ok key-for-key map copy is order-independent
				for k, v := range m.Characteristics {
					cc[k] = v
				}
				next[m.ID].Characteristics = cc
			}
		default:
			return nil, fmt.Errorf("engine: churn mutation %d: unknown op %q", mi, m.Op)
		}
	}
	for i := range next {
		next[i].ID = i
	}
	tmp := model.Universe{Sources: next}
	if err := tmp.Validate(); err != nil {
		return nil, fmt.Errorf("engine: churn batch rejected: %w", err)
	}
	plan.next = next
	plan.rows = rows
	plan.remap = remap
	return plan, nil
}

// initChurnState lazily builds the structures only churned engines pay
// for: per-name live refcounts, the maintained signature union, and the
// (initially empty) per-θ dynamic blocking indexes. Engines that never
// churn keep the exact pre-churn code paths and costs.
func (e *Engine) initChurnState() {
	e.churned = true
	e.dynByTheta = make(map[float64]*strsim.DynSparse)
	e.dynCharged = make(map[float64]strsim.BlockStats)
	e.nameRefs = make(map[int]int)
	for _, row := range e.nameIDs {
		for _, id := range row {
			e.nameRefs[id]++
		}
	}
	e.sigCounter = pcsa.NewUnionCounter()
	for i := range e.u.Sources {
		if sg := e.u.Sources[i].Signature; sg != nil {
			if err := e.sigCounter.Add(sg); err != nil {
				panic(fmt.Sprintf("engine: validated universe has incompatible signatures: %v", err))
			}
		}
	}
}

// commitChurn applies a validated plan. Planning already proved every
// step admissible, so failures here are programming errors and panic.
func (e *Engine) commitChurn(plan *churnPlan) {
	if !e.churned {
		e.initChurnState()
	}
	// Mutate the per-θ dynamic indexes in ascending θ order so their
	// internal allocation patterns are reproducible run to run.
	thetas := make([]float64, 0, len(e.dynByTheta))
	for th := range e.dynByTheta {
		thetas = append(thetas, th)
	}
	sort.Float64s(thetas)
	for _, ev := range plan.events {
		if ev.remove {
			for _, name := range ev.attrs {
				id := e.sim.Intern(name)
				e.nameRefs[id]--
				if e.nameRefs[id] == 0 {
					delete(e.nameRefs, id)
					for _, th := range thetas {
						if d := e.dynByTheta[th]; d != nil {
							if err := d.Delete(id); err != nil {
								panic(fmt.Sprintf("engine: churn desync: delete name %d from θ=%v index: %v", id, th, err))
							}
						}
					}
				}
			}
			if ev.sig != nil {
				if err := e.sigCounter.Remove(ev.sig); err != nil {
					panic(fmt.Sprintf("engine: churn desync: signature union remove: %v", err))
				}
			}
			continue
		}
		for _, name := range ev.attrs {
			id := e.sim.Intern(name)
			if e.nameRefs[id] == 0 {
				for _, th := range thetas {
					if d := e.dynByTheta[th]; d != nil {
						if err := d.Insert(id); err != nil {
							panic(fmt.Sprintf("engine: churn desync: insert name %d into θ=%v index: %v", id, th, err))
						}
					}
				}
			}
			e.nameRefs[id]++
		}
		if ev.sig != nil {
			if err := e.sigCounter.Add(ev.sig); err != nil {
				panic(fmt.Sprintf("engine: churn desync: signature union add: %v", err))
			}
		}
	}
	e.u.Sources = plan.next
	// Surviving sources carried their interned rows through the plan's
	// splices; only added sources (nil placeholders) intern here, and
	// the event loop above already put their names in the vocabulary, so
	// this assigns no new IDs. Updates never touch Attributes, so reused
	// rows cannot go stale.
	for i, row := range plan.rows {
		if row != nil {
			continue
		}
		attrs := e.u.Sources[i].Attributes
		row = make([]int, len(attrs))
		for a, name := range attrs {
			row[a] = e.sim.Intern(name)
		}
		plan.rows[i] = row
	}
	e.nameIDs = plan.rows
	// Frozen per-θ state is stale in any mutated vocabulary; the dynamic
	// indexes re-freeze lazily on the next solve at each θ.
	clear(e.neighborsByTheta)
	clear(e.seedByTheta)
	clear(e.sparseByTheta)
	if e.matrix != nil {
		e.matrixDirty = true
	}
	if plan.hadRemove && e.matchCache != nil {
		// Removals renumber source IDs, so every cached SourceSet key now
		// names a different set: clear. Pure adds and updates keep the
		// table — a set's F1 depends only on its members' attributes and
		// the clustering parameters, none of which an add or a metadata
		// update can change.
		e.matchMu.Lock()
		clear(e.matchCache)
		e.matchStamp = ""
		e.matchMu.Unlock()
	}
	if err := e.ctx.Rebase(e.sigCounter.Sketch()); err != nil {
		panic(fmt.Sprintf("engine: churn desync: context rebase on validated universe: %v", err))
	}
}

// ApplyChurn applies a mutation batch to the engine's universe,
// maintaining all derived state incrementally. The batch is
// all-or-nothing: any invalid mutation rejects the whole batch with no
// effect. The returned Remap translates pre-batch source IDs.
//
// ApplyChurn mutates the universe the engine was built on in place;
// sessions sharing the engine must repair their problems with
// Session.ApplyChurn instead of calling this directly.
func (e *Engine) ApplyChurn(muts []Mutation) (Remap, error) {
	plan, err := e.planChurn(muts)
	if err != nil {
		return nil, err
	}
	e.commitChurn(plan)
	return plan.remap, nil
}

// AddSource appends one source and returns its assigned ID.
func (e *Engine) AddSource(s model.Source) (int, error) {
	if _, err := e.ApplyChurn([]Mutation{{Op: OpAdd, Source: s}}); err != nil {
		return 0, err
	}
	return e.u.N() - 1, nil
}

// RemoveSource removes one source and returns the resulting ID remap.
func (e *Engine) RemoveSource(id int) (Remap, error) {
	return e.ApplyChurn([]Mutation{{Op: OpRemove, ID: id}})
}

// UpdateSource replaces a source's cardinality and/or characteristics.
func (e *Engine) UpdateSource(id int, cardinality *int64, characteristics map[string]float64) error {
	_, err := e.ApplyChurn([]Mutation{{Op: OpUpdate, ID: id, Cardinality: cardinality, Characteristics: characteristics}})
	return err
}

// Churned reports whether the engine's universe has ever been mutated.
func (e *Engine) Churned() bool { return e.churned }

// ApplyChurn mutates the session engine's universe and repairs the
// session's problem into the post-batch ID space: source constraints,
// GA constraints and the warm start are remapped; exclusions of removed
// sources are dropped silently (excluding a source that no longer
// exists is vacuous). Removing a source the problem pins — required
// directly or referenced by a GA constraint — refuses the whole batch
// with a *PinnedSourceError; the user unpins first, mirroring how
// Constraints.Validate refuses contradictory feedback.
//
// The warm start survives churn: the next solve starts from the last
// solution's sources remapped into the new ID space, minus any that
// vanished, instead of the stale pre-churn IDs. History entries are
// immutable records of what was solved and keep their original IDs.
//
// If removals shrink the universe below MaxSources, MaxSources is
// clamped to the new universe size so the session stays solvable.
func (s *Session) ApplyChurn(muts []Mutation) (Remap, error) {
	plan, err := s.planChurn(muts)
	if err != nil {
		return nil, err
	}
	// Materialize the warm start the next solve would have taken from
	// the history before IDs change, so it can be remapped below. After
	// the first churn the problem's InitialSources are already the
	// repaired warm start and only need remapping again.
	if !s.churnDirty {
		if last := s.Last(); last != nil {
			s.problem.InitialSources = append([]int(nil), last.Sources...)
		}
	}
	s.engine.commitChurn(plan)
	s.problem.Constraints.Sources = plan.remap.apply(s.problem.Constraints.Sources)
	s.problem.Constraints.Exclude = plan.remap.apply(s.problem.Constraints.Exclude)
	for gi, g := range s.problem.Constraints.GAs {
		ng := make(model.GA, len(g))
		for ri, r := range g {
			ng[ri] = model.AttrRef{Source: plan.remap.Of(r.Source), Attr: r.Attr}
		}
		s.problem.Constraints.GAs[gi] = ng
	}
	s.problem.InitialSources = plan.remap.apply(s.problem.InitialSources)
	if n := s.engine.u.N(); s.problem.MaxSources > n && n > 0 {
		s.problem.MaxSources = n
	}
	s.churnDirty = true
	return plan.remap, nil
}

// planChurn validates a batch against both the engine (shape, signature
// compatibility) and the session's problem (pinned sources), without
// committing anything.
func (s *Session) planChurn(muts []Mutation) (*churnPlan, error) {
	plan, err := s.engine.planChurn(muts)
	if err != nil {
		return nil, err
	}
	for _, id := range s.problem.Constraints.Sources {
		if plan.remap.Of(id) < 0 {
			return nil, &PinnedSourceError{ID: id, Constraint: "source"}
		}
	}
	for _, g := range s.problem.Constraints.GAs {
		for _, r := range g {
			if plan.remap.Of(r.Source) < 0 {
				return nil, &PinnedSourceError{ID: r.Source, Constraint: "ga"}
			}
		}
	}
	return plan, nil
}

// CheckChurn validates a batch exactly as ApplyChurn would — engine
// admissibility plus the session's pinned-source refusals — without
// applying anything. A serving layer that must write ahead before
// mutating uses it to order "validate, log, apply": a batch CheckChurn
// admits is guaranteed to apply, because planning is pure and the worker
// owns the session until the apply lands.
func (s *Session) CheckChurn(muts []Mutation) error {
	_, err := s.planChurn(muts)
	return err
}

// ChurnDirty reports whether the universe was mutated since the last
// committed solve — i.e. whether the history tail's source IDs are stale
// and the next solve will warm-start from the repaired
// Problem.InitialSources instead.
func (s *Session) ChurnDirty() bool { return s.churnDirty }

// MarkChurnDirty restores the churn-dirty flag. Recovery uses it after
// Restore when the durable record says the universe changed after the
// last restored solve; the service's solve-undo path uses it so a solve
// whose durability commit failed puts the flag back the way the solve
// found it.
func (s *Session) MarkChurnDirty() { s.churnDirty = true }
