package engine

import (
	"context"
	"sync/atomic"

	"ube/internal/faultinject"
	"ube/internal/model"
	"ube/internal/search"
)

// armSolveFaults arms the solve.cancel-midway injection point for one
// solve. When the point fires (one Fire per solve attempt), the search
// problem's objectives are wrapped with an evaluation counter that
// cancels the returned context after the firing's Arg evaluations — a
// deterministic stand-in for a client vanishing mid-solve. The wrappers
// are pure pass-throughs otherwise, so an unarmed or non-firing solve is
// byte-identical to one without an injector, and a cancelled solve obeys
// the engine's normal cancellation contract: truncate, never reroute.
//
// It returns (nil, nil) when nothing fires; otherwise the caller must
// install the returned context as the solve context and defer cancel.
func (e *Engine) armSolveFaults(ctx context.Context, prob *search.Problem) (context.Context, context.CancelFunc) {
	if e.faults == nil {
		return nil, nil
	}
	f := e.faults.Fire(faultinject.SolveCancelMidway)
	if f == nil {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	var evals atomic.Int64
	tick := func() {
		if evals.Add(1) == f.Arg {
			cancel()
		}
	}
	obj := prob.Objective
	prob.Objective = func(S *model.SourceSet) (float64, bool) {
		tick()
		return obj(S)
	}
	if dobj := prob.DeltaObjective; dobj != nil {
		prob.DeltaObjective = func(S *model.SourceSet, d search.Delta) (float64, bool) {
			tick()
			return dobj(S, d)
		}
	}
	return cctx, cancel
}
