package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"ube/internal/search"
	"ube/internal/synth"
)

// TestSolveContextCancelled verifies a cancelled solve returns promptly
// with context.Canceled instead of a solution.
func TestSolveContextCancelled(t *testing.T) {
	e, _ := testEngine(t, 60)
	p := DefaultProblem()
	p.MaxSources = 12
	p.MaxEvals = 1 << 30 // effectively unbounded: only cancellation can stop it

	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from the progress hook after a few improvements: the solve
	// is provably underway, and the solver must notice at the next
	// iteration boundary.
	calls := 0
	p.Progress = func(search.Progress) {
		calls++
		if calls == 2 {
			cancel()
		}
	}
	start := time.Now()
	sol, err := e.SolveContext(ctx, &p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve returned (%v, %v); want context.Canceled", sol, err)
	}
	if sol != nil {
		t.Error("cancelled solve returned a solution alongside the error")
	}
	// "Promptly" here means nowhere near what the unbounded budget
	// would cost; a generous wall-clock ceiling keeps slow CI honest.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancelled solve took %v", elapsed)
	}
}

// TestSolveContextPreCancelled verifies a solve whose context is already
// cancelled returns the context error without doing work.
func TestSolveContextPreCancelled(t *testing.T) {
	e, _ := testEngine(t, 40)
	p := smallProblem()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SolveContext(ctx, &p); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled solve returned %v; want context.Canceled", err)
	}
}

// TestSolveContextUncancelledByteIdentical verifies that threading an
// uncancelled context (and a progress observer) through a solve leaves
// the result byte-identical to the plain Solve path.
func TestSolveContextUncancelledByteIdentical(t *testing.T) {
	cfg := synth.QuickConfig(40)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(withCtx bool) *Solution {
		e, err := New(u)
		if err != nil {
			t.Fatal(err)
		}
		p := smallProblem()
		if !withCtx {
			sol, err := e.Solve(&p)
			if err != nil {
				t.Fatal(err)
			}
			return sol
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		p.Progress = func(search.Progress) {} // observer must not perturb the result
		sol, err := e.SolveContext(ctx, &p)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	plain, withCtx := solve(false), solve(true)
	if !reflect.DeepEqual(plain.Sources, withCtx.Sources) {
		t.Errorf("sources diverge: %v vs %v", plain.Sources, withCtx.Sources)
	}
	if plain.Quality != withCtx.Quality {
		t.Errorf("quality diverges: %v vs %v", plain.Quality, withCtx.Quality)
	}
	if plain.Evals != withCtx.Evals {
		t.Errorf("evals diverge: %d vs %d", plain.Evals, withCtx.Evals)
	}
	if !reflect.DeepEqual(plain.Breakdown, withCtx.Breakdown) {
		t.Errorf("breakdown diverges: %v vs %v", plain.Breakdown, withCtx.Breakdown)
	}
	if !reflect.DeepEqual(plain.Schema, withCtx.Schema) {
		t.Error("schemas diverge")
	}
}

// TestProgressReportsAreMonotonic verifies the progress side channel:
// evaluation counts never decrease, the final report matches the
// returned solution, and a feasible best never regresses to infeasible.
func TestProgressReportsAreMonotonic(t *testing.T) {
	e, _ := testEngine(t, 40)
	p := smallProblem()
	var reports []search.Progress
	p.Progress = func(pr search.Progress) { reports = append(reports, pr) }
	sol, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no progress reports for a multi-eval solve")
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Evals < reports[i-1].Evals {
			t.Errorf("report %d: evals went backwards (%d after %d)", i, reports[i].Evals, reports[i-1].Evals)
		}
		if reports[i-1].Feasible && !reports[i].Feasible {
			t.Errorf("report %d: feasible best regressed to infeasible", i)
		}
	}
	last := reports[len(reports)-1]
	if last.BestQuality != sol.Quality {
		t.Errorf("final report quality %v != solution quality %v", last.BestQuality, sol.Quality)
	}
	if last.Feasible != sol.Feasible {
		t.Errorf("final report feasibility %v != solution %v", last.Feasible, sol.Feasible)
	}
}

// TestSessionSolveContextCancelLeavesSessionUntouched verifies that a
// cancelled session solve appends nothing and does not advance the seed,
// so the retry is indistinguishable from a first attempt.
func TestSessionSolveContextCancelLeavesSessionUntouched(t *testing.T) {
	e, _ := testEngine(t, 40)
	s := NewSession(e, smallProblem())
	before := s.Problem()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v; want context.Canceled", err)
	}
	if len(s.History()) != 0 {
		t.Error("cancelled solve appended to history")
	}
	if got := s.Problem(); got.Seed != before.Seed {
		t.Errorf("cancelled solve advanced the seed: %d -> %d", before.Seed, got.Seed)
	}
	// And the retry still works.
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if len(s.History()) != 1 {
		t.Error("retry after cancellation did not record an iteration")
	}
}
