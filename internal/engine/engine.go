// Package engine composes the µBE system (Figure 2 of the paper): it wires
// the schema matcher, the QEF framework and a combinatorial optimizer into
// a single Solve entry point, and hosts the iterative feedback Session
// through which users guide the search (§6).
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ube/internal/cluster"
	"ube/internal/faultinject"
	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/qef"
	"ube/internal/search"
	"ube/internal/strsim"
	"ube/internal/trace"
)

// matrixLimit caps the vocabulary size for the dense precomputed
// similarity matrix (n² float32 cells — 4096 names cost 64 MiB).
// Beyond it the engine builds a θ-sparse neighbor table per solve
// threshold from the strsim blocking index; only when the measure has
// no sound blocking scheme (a non-n-gram measure) does it fall back to
// the lazy pairwise cache.
const matrixLimit = 4096

// matchCacheLimit bounds the Match memo table; candidate sets beyond this
// are evaluated without caching (the map is cleared, not grown).
const matchCacheLimit = 1 << 18

// Problem is one iteration's optimization problem (§2.5): the selection
// bound, clustering parameters, constraints, QEF weights and solver choice.
type Problem struct {
	// MaxSources is m, the maximum number of sources to select.
	MaxSources int
	// Theta is the matching-quality threshold θ (paper default 0.65).
	Theta float64
	// Beta is the minimum size β of non-constraint GAs (default 2).
	Beta int
	// Constraints are the user's source/GA constraints (and exclusions).
	Constraints model.Constraints
	// Weights assigns importance to every QEF by name; they must cover
	// exactly the configured QEFs and sum to 1.
	Weights qef.Weights
	// Characteristics configures one QEF per named source
	// characteristic, e.g. {"mttf": qef.WSum{}}.
	Characteristics map[string]qef.Aggregator
	// ExtraQEFs are caller-defined quality dimensions beyond the
	// built-in and characteristic QEFs — the §1 "define new quality
	// metrics" feedback move. Each must have a unique name covered by
	// Weights.
	ExtraQEFs []qef.QEF
	// InitialSources optionally warm-starts the solver from a known
	// candidate, typically the previous iteration's solution. Sessions
	// set this automatically.
	InitialSources []int
	// Optimizer picks the solver; nil means tabu search, the paper's
	// choice.
	Optimizer search.Optimizer
	// Seed drives the solver's randomness.
	Seed int64
	// MaxEvals optionally bounds objective evaluations (0 = solver
	// default).
	MaxEvals int
	// Workers fans candidate evaluations across goroutines inside the
	// solver (≤1 = sequential). Solves are deterministic for a fixed
	// (problem, seed, Workers).
	Workers int
	// BoundPruning lets delta-aware solvers skip the exact evaluation
	// of candidates whose objective upper bound (w_match·1 plus the
	// exactly-computed composite term) cannot beat the incumbent. The
	// returned Solution is byte-identical with or without pruning —
	// skipped candidates still cost one evaluation each — but the trace
	// counters differ (bound.skips appears, and qef work moves between
	// counters), so the flag is opt-in and defaults to off.
	BoundPruning bool
	// Progress, when non-nil, observes the solve: the solver calls it
	// from its deterministic best-so-far fold each time the incumbent
	// improves. It is a pure side channel (the server streams it over
	// SSE) and never influences the result; it must not block.
	Progress search.ProgressFunc
	// Trace, when non-nil, records the solve's span tree and work
	// counters (see internal/trace). Like Progress it is a pure side
	// channel and never influences the result: spans are opened only
	// from the sequential control path, and parallel workers contribute
	// only through atomic counters.
	Trace *trace.Tracer
}

// MatchQEFName is the QEF name of the matching quality F1.
const MatchQEFName = "match"

// DefaultProblem returns the paper's experimental defaults (§7.1): m=20,
// θ=0.65, β=2, weights 0.25/0.25/0.2/0.15/0.15 for match, cardinality,
// coverage, redundancy and MTTF (wsum-aggregated).
func DefaultProblem() Problem {
	return Problem{
		MaxSources:      20,
		Theta:           0.65,
		Beta:            2,
		Weights:         qef.Weights{MatchQEFName: 0.25, "card": 0.25, "coverage": 0.2, "redundancy": 0.15, "mttf": 0.15},
		Characteristics: map[string]qef.Aggregator{"mttf": qef.WSum{}},
		Seed:            1,
	}
}

// Solution is a solved iteration: the chosen sources, the generated
// mediated schema and the quality accounting the UI presents.
type Solution struct {
	// Sources is the chosen set S in ascending ID order.
	Sources []int
	// Set is S as a set.
	Set *model.SourceSet
	// Schema is the automatically generated mediated schema on S; nil
	// if no feasible solution was found.
	Schema *model.MediatedSchema
	// Match carries the per-GA quality detail of the final clustering.
	Match cluster.Result
	// Quality is the overall objective Q(S).
	Quality float64
	// Breakdown is each QEF's raw score on S, keyed by QEF name.
	Breakdown map[string]float64
	// Feasible reports whether the schema satisfies the constraints.
	Feasible bool
	// Evals counts objective evaluations spent by the solver.
	Evals int
	// MatchCache reports the Match memo table's hit/miss/eviction counts
	// during this solve (all zero when memoization is disabled).
	MatchCache CacheStats
	// Elapsed is the wall-clock solve time.
	//ube:operational timing metadata for humans; replay comparisons zero it
	Elapsed time.Duration
}

// Engine holds the per-universe state shared across iterations: the QEF
// context (signature unions, characteristic ranges), the interned
// similarity vocabulary, the clustering fast-path indexes and the Match
// memo table.
type Engine struct {
	u      *model.Universe
	ctx    *qef.Context
	sim    *strsim.Cache
	scores strsim.Scorer
	matrix *strsim.Matrix // nil when the vocabulary exceeds matrixLimit

	// nameIDs maps (source, attribute index) to the interned name ID so
	// the matcher skips per-call interning.
	nameIDs [][]int
	// neighborsByTheta caches the ≥θ name adjacency index per threshold.
	neighborsByTheta map[float64][][]int
	// sparseByTheta caches the θ-sparse scorer per threshold on large
	// vocabularies; a stored nil means the measure does not support
	// blocking and the θ falls back to the lazy cache.
	sparseByTheta map[float64]*strsim.SparseScores
	// block configures the blocking index behind sparseByTheta.
	block strsim.BlockConfig
	// seedByTheta caches the precomputed round-1 clustering agenda per
	// threshold (see cluster.SeedPairs); entries may be nil when the
	// universe doesn't qualify for the fast path.
	seedByTheta map[float64]*cluster.SeedPairs

	// Churn state (see churn.go), nil/false until the first ApplyChurn
	// so never-churned engines keep the exact pre-churn paths and costs.
	// churned switches sparse() from batch builds to the dynamic per-θ
	// indexes; matrixDirty marks the dense matrix for lazy rebuild.
	churned     bool
	matrixDirty bool
	// dynByTheta holds the incrementally maintained blocking index per
	// threshold; a stored nil means the measure doesn't support blocking.
	dynByTheta map[float64]*strsim.DynSparse
	// dynCharged remembers how much of each dynamic index's cumulative
	// work counters were already charged to a solve's trace.
	dynCharged map[float64]strsim.BlockStats
	// nameRefs counts, per interned name ID, the live attribute slots
	// using that name; 0→1 and 1→0 transitions drive index maintenance.
	nameRefs map[int]int
	// sigCounter maintains the union of all cooperative signatures so
	// the QEF context can be rebased without rescanning the universe.
	sigCounter *pcsa.UnionCounter
	// scratch pools the matcher's reusable working memory; one Scratch
	// per concurrent evaluation worker.
	scratch sync.Pool

	legacyEval bool // WithLegacyEvaluation: seed-equivalent slow paths

	// faults arms the engine's injection points (solve.cancel-midway,
	// snapshot.evict); nil outside chaos runs. See internal/faultinject.
	faults *faultinject.Injector

	// matchMu guards matchCache and the cache statistics; parallel solves
	// evaluate candidates concurrently.
	matchMu    sync.Mutex
	matchCache map[string]cachedMatch
	// matchStamp identifies the clustering parameters (θ, β,
	// constraints) the cached entries were computed under; a solve with
	// different parameters invalidates the table.
	matchStamp string
	cacheStats CacheStats
}

type cachedMatch struct {
	quality float64
	valid   bool
}

// CacheStats counts Match memo table traffic. Hits and Misses cover the
// lookups; Evictions counts entries dropped to keep the table bounded.
type CacheStats struct {
	Hits, Misses, Evictions int64
}

func (s CacheStats) sub(o CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits - o.Hits, Misses: s.Misses - o.Misses, Evictions: s.Evictions - o.Evictions}
}

// Option configures engine construction.
type Option func(*options)

type options struct {
	measure     strsim.Measure
	noCache     bool
	legacyEval  bool
	faults      *faultinject.Injector
	block       strsim.BlockConfig
	forceSparse bool
}

// WithMeasure overrides the attribute similarity measure (default: the
// paper's Jaccard over 3-grams).
func WithMeasure(m strsim.Measure) Option {
	return func(o *options) { o.measure = m }
}

// WithoutMatchCache disables Match memoization; it exists for ablation
// benchmarks that quantify what the cache buys.
func WithoutMatchCache() Option {
	return func(o *options) { o.noCache = true }
}

// WithLegacyEvaluation pins the engine to the original evaluation
// pipeline — the sorted-slice clustering agenda, per-call interning, no
// precomputed seed pairs, no scratch reuse and no incremental objective —
// so benchmarks can quantify what the incremental pipeline buys. Results
// are identical either way; only the time differs.
func WithLegacyEvaluation() Option {
	return func(o *options) { o.legacyEval = true }
}

// WithBlocking overrides the blocking-index configuration used to build
// the θ-sparse scorer on large vocabularies — e.g. to select the
// MinHash-LSH mode instead of the default exact-recall prefix filter.
// It has no effect on vocabularies small enough for the dense matrix.
func WithBlocking(cfg strsim.BlockConfig) Option {
	return func(o *options) { o.block = cfg }
}

// WithSparseScores forces the θ-sparse blocking path even when the
// vocabulary would fit the dense matrix. Solves are bit-identical to the
// dense path whenever the blocking index has perfect recall (always, in
// the default prefix-filter mode); the option exists so differential
// tests and the scale experiment can compare the two paths on one
// universe.
func WithSparseScores() Option {
	return func(o *options) { o.forceSparse = true }
}

// WithFaultInjector arms the engine's named fault-injection points
// (solve.cancel-midway, snapshot.evict) with a chaos plan; see
// internal/faultinject. Injected faults never change solve results:
// cancellation truncates a search exactly like a caller cancellation,
// and snapshot eviction only forces a pure cache rebuild.
func WithFaultInjector(in *faultinject.Injector) Option {
	return func(o *options) { o.faults = in }
}

// New builds an engine over a universe: validates it, interns every
// attribute name and precomputes the similarity matrix when the vocabulary
// is small enough.
func New(u *model.Universe, opts ...Option) (*Engine, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	ctx, err := qef.NewContext(u)
	if err != nil {
		return nil, err
	}
	sim := strsim.NewCache(o.measure)
	nameIDs := make([][]int, len(u.Sources))
	for i := range u.Sources {
		attrs := u.Sources[i].Attributes
		nameIDs[i] = make([]int, len(attrs))
		for a, name := range attrs {
			nameIDs[i][a] = sim.Intern(name)
		}
	}
	e := &Engine{
		u:                u,
		ctx:              ctx,
		sim:              sim,
		nameIDs:          nameIDs,
		neighborsByTheta: make(map[float64][][]int),
		sparseByTheta:    make(map[float64]*strsim.SparseScores),
		seedByTheta:      make(map[float64]*cluster.SeedPairs),
		legacyEval:       o.legacyEval,
		faults:           o.faults,
		block:            o.block,
	}
	e.scratch.New = func() any { return &cluster.Scratch{} }
	if !o.noCache {
		e.matchCache = make(map[string]cachedMatch)
	}
	if sim.Len() <= matrixLimit && !o.forceSparse {
		m, err := sim.BuildMatrix()
		if err != nil {
			return nil, err
		}
		e.matrix = m
		e.scores = m
	} else {
		// Large vocabulary: no dense matrix. Solves route through a
		// per-θ sparse scorer built lazily (see scoresFor); e.scores
		// remains the measure-exact fallback.
		e.scores = sim
	}
	return e, nil
}

// Universe returns the engine's universe.
func (e *Engine) Universe() *model.Universe { return e.u }

// Context returns the engine's QEF context.
func (e *Engine) Context() *qef.Context { return e.ctx }

// VocabularySize reports the number of distinct normalized attribute names.
func (e *Engine) VocabularySize() int { return e.sim.Len() }

// validate checks a problem against the universe.
func (e *Engine) validate(p *Problem) error {
	if p.MaxSources < 1 {
		return fmt.Errorf("engine: MaxSources = %d", p.MaxSources)
	}
	if p.MaxSources > e.u.N() {
		return fmt.Errorf("engine: MaxSources %d exceeds universe size %d", p.MaxSources, e.u.N())
	}
	if p.Theta < 0 || p.Theta > 1 {
		return fmt.Errorf("engine: theta %v outside [0,1]", p.Theta)
	}
	if p.Beta < 1 {
		return fmt.Errorf("engine: beta %d < 1", p.Beta)
	}
	if err := p.Constraints.Validate(e.u); err != nil {
		return err
	}
	if req := p.Constraints.ImpliedSources(); len(req) > p.MaxSources {
		return fmt.Errorf("engine: constraints imply %d sources, more than m = %d", len(req), p.MaxSources)
	}
	return nil
}

// buildQEFs assembles the QEF list for a problem: the data QEFs, one
// Characteristic QEF per configured characteristic, and any caller-defined
// extra QEFs.
func (e *Engine) buildQEFs(p *Problem) ([]qef.QEF, error) {
	qefs := []qef.QEF{qef.Card{}, qef.Coverage{}, qef.Redundancy{}}
	// Characteristic QEFs in sorted name order: the composite sums its
	// terms in slice order, and float addition order must not depend on
	// map iteration.
	chars := make([]string, 0, len(p.Characteristics))
	for name := range p.Characteristics {
		chars = append(chars, name)
	}
	sort.Strings(chars)
	for _, name := range chars {
		agg := p.Characteristics[name]
		if agg == nil {
			return nil, fmt.Errorf("engine: nil aggregator for characteristic %q", name)
		}
		if _, _, ok := e.ctx.CharRange(name); !ok {
			return nil, fmt.Errorf("engine: no source defines characteristic %q", name)
		}
		qefs = append(qefs, qef.Characteristic{Char: name, Agg: agg})
	}
	seen := make(map[string]bool, len(qefs)+len(p.ExtraQEFs)+1)
	seen[MatchQEFName] = true
	for _, q := range qefs {
		seen[q.Name()] = true
	}
	for _, q := range p.ExtraQEFs {
		if q == nil {
			return nil, fmt.Errorf("engine: nil extra QEF")
		}
		if seen[q.Name()] {
			return nil, fmt.Errorf("engine: duplicate QEF name %q", q.Name())
		}
		seen[q.Name()] = true
		qefs = append(qefs, q)
	}
	return qefs, nil
}

// restampMatchCache clears the Match memo table when the clustering
// parameters differ from those its entries were computed under: cached F1
// values are only valid for one (θ, β, C, G) configuration.
func (e *Engine) restampMatchCache(p *Problem) {
	if e.matchCache == nil {
		return
	}
	stamp := fmt.Sprintf("%v|%d|%v|%v", p.Theta, p.Beta, p.Constraints.Sources, p.Constraints.GAs)
	e.matchMu.Lock()
	if stamp != e.matchStamp {
		clear(e.matchCache)
		e.matchStamp = stamp
	}
	e.matchMu.Unlock()
}

// matchQuality runs (or recalls) the constrained clustering for S and
// returns F1 and feasibility.
func (e *Engine) matchQuality(S *model.SourceSet, cfg cluster.Config, C []int, G []model.GA) (float64, bool) {
	if e.matchCache == nil {
		return e.runMatch(S, cfg, C, G)
	}
	key := S.Key()
	e.matchMu.Lock()
	hit, ok := e.matchCache[key]
	if ok {
		e.cacheStats.Hits++
	} else {
		e.cacheStats.Misses++
	}
	e.matchMu.Unlock()
	if ok {
		// Hit/miss traffic is deterministic for a fixed (problem, seed,
		// Workers) on a fresh engine: evaluation batches are barriers, so
		// which lookups find an earlier batch's publish never depends on
		// scheduling. (After a random-replacement eviction the counts
		// become load-dependent — evictions themselves are operational.)
		cfg.Stats.Add(trace.CMatchHits, 1)
		return hit.quality, hit.valid
	}
	cfg.Stats.Add(trace.CMatchMisses, 1)
	quality, valid := e.runMatch(S, cfg, C, G)
	e.matchMu.Lock()
	if len(e.matchCache) >= matchCacheLimit {
		// Evict about half the table rather than clearing it wholesale:
		// a full clear made every in-flight candidate a miss at once — a
		// latency cliff exactly when the search was deep into a solve —
		// while halving keeps half the working set warm. Map iteration
		// order is random, so this is random replacement.
		target := matchCacheLimit / 2
		//ube:nondeterministic-ok random replacement is the eviction policy; cached values are exact memos, so survivors never change results
		for k := range e.matchCache {
			if len(e.matchCache) <= target {
				break
			}
			delete(e.matchCache, k)
			e.cacheStats.Evictions++
			cfg.Stats.Add(trace.OMatchEvictions, 1)
		}
	}
	e.matchCache[key] = cachedMatch{quality: quality, valid: valid}
	e.matchMu.Unlock()
	return quality, valid
}

// runMatch executes one clustering with pooled scratch memory.
func (e *Engine) runMatch(S *model.SourceSet, cfg cluster.Config, C []int, G []model.GA) (float64, bool) {
	sc := e.scratch.Get().(*cluster.Scratch)
	cfg.Scratch = sc
	res := cluster.Match(e.u, S.Elements(), C, G, cfg)
	e.scratch.Put(sc)
	return res.Quality, res.Valid
}

// Solve runs one µBE iteration: it builds the objective from the problem's
// QEFs and weights, dispatches the optimizer over the constrained search
// space, and re-runs the matcher on the winning set to produce the full
// mediated schema.
func (e *Engine) Solve(p *Problem) (*Solution, error) {
	return e.SolveContext(context.Background(), p)
}

// SolveContext is Solve with cancellation: ctx is plumbed into the
// optimizer, which checks it at iteration boundaries and stops promptly
// when it is cancelled, in which case SolveContext returns ctx.Err()
// instead of a solution. A nil ctx behaves like context.Background().
// For any ctx that is never cancelled the solve is byte-identical to
// Solve — cancellation can only truncate a search, never reroute it.
func (e *Engine) SolveContext(ctx context.Context, p *Problem) (*Solution, error) {
	//ube:nondeterministic-ok wall-clock Elapsed reporting only; never feeds the objective
	start := time.Now()
	tr := p.Trace
	root := tr.Begin("solve")
	defer tr.End(root)
	setupSpan := tr.Begin("setup")
	if err := e.validate(p); err != nil {
		return nil, err
	}
	qefs, err := e.buildQEFs(p)
	if err != nil {
		return nil, err
	}
	// The weight map must cover the data/characteristic QEFs plus F1.
	names := append([]qef.QEF{fakeMatchQEF{}}, qefs...)
	if err := p.Weights.Validate(names); err != nil {
		return nil, err
	}
	// The composite covers every QEF but F1 with weights rescaled to sum
	// to 1; the objective multiplies it back by (1 − w_match) so each
	// QEF keeps its user-assigned weight. With w_match == 1 there is no
	// composite at all.
	wMatch := p.Weights[MatchQEFName]
	wRest := 1 - wMatch
	var comp *qef.Composite
	if wRest > weightEpsilon {
		comp, err = qef.NewComposite(qefs, restWeights(p.Weights))
		if err != nil {
			return nil, err
		}
	} else {
		wRest = 0
		comp, err = qef.NewComposite(qefs, uniformWeights(qefs))
		if err != nil {
			return nil, err
		}
	}

	scores, nbrs := e.scoresFor(p.Theta, tr.Stats())
	clusterCfg := cluster.Config{
		Theta:        p.Theta,
		Beta:         p.Beta,
		Sim:          e.sim,
		Scores:       scores,
		Neighbors:    nbrs,
		LegacyAgenda: e.legacyEval,
		Stats:        tr.Stats(),
	}
	if !e.legacyEval {
		clusterCfg.NameIDs = e.nameIDs
		clusterCfg.Seed = e.seedPairs(p.Theta, scores, nbrs)
	}
	C := p.Constraints.Sources
	G := p.Constraints.GAs
	e.restampMatchCache(p)
	e.matchMu.Lock()
	statsBefore := e.cacheStats
	e.matchMu.Unlock()

	objective := func(S *model.SourceSet) (float64, bool) {
		f1, valid := e.matchQuality(S, clusterCfg, C, G)
		q := wMatch * f1
		if wRest > 0 {
			clusterCfg.Stats.Add(trace.CQEFFull, 1)
			q += wRest * comp.Eval(e.ctx, S)
		}
		return q, valid
	}

	opt := p.Optimizer
	if opt == nil {
		opt = search.NewTabu()
	}
	prob := &search.Problem{
		N:         e.u.N(),
		M:         p.MaxSources,
		Required:  p.Constraints.ImpliedSources(),
		Excluded:  p.Constraints.Exclude,
		Initial:   p.InitialSources,
		Objective: objective,
		MaxEvals:  p.MaxEvals,
		Workers:   p.Workers,
		Ctx:       ctx,
		Progress:  p.Progress,
		Tracer:    p.Trace,
	}
	if !e.legacyEval {
		dobj, bound := e.deltaObjective(comp, wMatch, wRest, clusterCfg, C, G)
		prob.DeltaObjective = dobj
		if p.BoundPruning {
			prob.Bound = bound
		}
	}
	if armedCtx, cancel := e.armSolveFaults(ctx, prob); cancel != nil {
		defer cancel()
		ctx = armedCtx
		prob.Ctx = armedCtx
	}
	tr.End(setupSpan)
	searchSpan := tr.Begin("search")
	res := opt.Optimize(prob, p.Seed)
	tr.End(searchSpan)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			// The optimizer stopped early on cancellation; its truncated
			// best-so-far is not a solve result.
			return nil, err
		}
	}

	e.matchMu.Lock()
	statsAfter := e.cacheStats
	e.matchMu.Unlock()
	sol := &Solution{
		Sources:    res.S.Elements(),
		Set:        res.S,
		Quality:    res.Quality,
		Feasible:   res.Feasible,
		Evals:      res.Evals,
		MatchCache: statsAfter.sub(statsBefore),
	}
	// Re-run the matcher once on the final set for the full schema (the
	// memo table only keeps scalar results).
	finalSpan := tr.Begin("final")
	final := cluster.Match(e.u, sol.Sources, C, G, clusterCfg)
	sol.Match = final
	sol.Schema = final.Schema
	sol.Breakdown = comp.Breakdown(e.ctx, res.S)
	sol.Breakdown[MatchQEFName] = final.Quality
	tr.End(finalSpan)
	//ube:nondeterministic-ok wall-clock Elapsed reporting only; never feeds the objective
	sol.Elapsed = time.Since(start)
	return sol, nil
}

// weightEpsilon is the smallest non-match weight mass treated as nonzero.
const weightEpsilon = 1e-12

// scoresFor returns the scorer and ≥θ name adjacency a solve at theta
// should cluster with: the dense matrix when the vocabulary fits,
// otherwise a θ-sparse table built lazily from the blocking index. A
// measure with no sound blocking scheme (or a θ outside the blockable
// range) falls back to the lazy pairwise cache with no adjacency index
// — the pre-blocking behavior. The legacy-evaluation pipeline always
// takes the fallback on large vocabularies: it predates the sparse
// path and is pinned to the original code paths.
func (e *Engine) scoresFor(theta float64, st *trace.Stats) (strsim.Scorer, [][]int) {
	e.refreshMatrix()
	if e.matrix != nil {
		return e.matrix, e.neighbors(theta)
	}
	if e.legacyEval {
		return e.scores, nil
	}
	sp := e.sparse(theta, st)
	if sp == nil {
		return e.scores, nil
	}
	return sp, e.neighbors(theta)
}

// refreshMatrix lazily rebuilds (or drops) the dense similarity matrix
// after churn mutated the vocabulary: one rebuild per churn burst, paid
// by the first solve, with pair scores recalled from the lazy cache's
// memo. A vocabulary grown past matrixLimit demotes the engine to the
// θ-sparse path permanently — the path choice is sticky, matching the
// construction-time rule.
func (e *Engine) refreshMatrix() {
	if !e.matrixDirty {
		return
	}
	e.matrixDirty = false
	if e.sim.Len() <= matrixLimit {
		if m, err := e.sim.BuildMatrix(); err == nil {
			e.matrix = m
			e.scores = m
			return
		}
	}
	e.matrix = nil
	e.scores = e.sim
}

// sparse returns (building and caching on first use) the θ-sparse
// scorer for a large vocabulary, or nil when the measure doesn't
// support blocking. The build's deterministic work counts are charged
// to the solve that triggered it (block.* counters); later solves at
// the same θ reuse the table for free. On a churned engine the table
// is frozen from the incrementally maintained dynamic index instead of
// batch-built, and only the work done since the last freeze is charged.
func (e *Engine) sparse(theta float64, st *trace.Stats) *strsim.SparseScores {
	if sp, ok := e.sparseByTheta[theta]; ok {
		return sp
	}
	if e.churned {
		return e.sparseFromDyn(theta, st)
	}
	sp, bs, err := e.sim.BuildSparse(theta, e.block)
	if err != nil {
		sp = nil
	}
	e.sparseByTheta[theta] = sp
	st.Add(trace.CBlockProbes, bs.Probes)
	st.Add(trace.CBlockCandidates, bs.Candidates)
	st.Add(trace.CBlockPruned, bs.Pruned)
	return sp
}

// sparseFromDyn freezes the dynamic blocking index for θ, creating it
// on first use by inserting every live name in ascending ID order (so
// construction is deterministic regardless of churn history).
func (e *Engine) sparseFromDyn(theta float64, st *trace.Stats) *strsim.SparseScores {
	d, ok := e.dynByTheta[theta]
	if !ok {
		nd, err := strsim.NewDynSparse(e.sim, theta, e.block)
		if err != nil {
			nd = nil
		} else {
			ids := make([]int, 0, len(e.nameRefs))
			for id := range e.nameRefs {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				if err := nd.Insert(id); err != nil {
					panic(fmt.Sprintf("engine: churn desync: seed θ=%v index with name %d: %v", theta, id, err))
				}
			}
		}
		e.dynByTheta[theta] = nd
		d = nd
	}
	if d == nil {
		e.sparseByTheta[theta] = nil
		return nil
	}
	sp := d.Freeze()
	e.sparseByTheta[theta] = sp
	bs, charged := d.Stats(), e.dynCharged[theta]
	st.Add(trace.CBlockProbes, bs.Probes-charged.Probes)
	st.Add(trace.CBlockCandidates, bs.Candidates-charged.Candidates)
	st.Add(trace.CBlockPruned, bs.Pruned-charged.Pruned)
	e.dynCharged[theta] = bs
	return sp
}

// neighbors returns (building and caching on first use) the ≥θ name
// adjacency index for the engine's vocabulary — from the dense matrix
// when it exists, else from the θ-sparse table (which must already be
// cached for this θ) — or nil when neither is available.
func (e *Engine) neighbors(theta float64) [][]int {
	if n, ok := e.neighborsByTheta[theta]; ok {
		return n
	}
	var n [][]int
	switch {
	case e.matrix != nil:
		n = e.matrix.Neighbors(theta)
	case e.sparseByTheta[theta] != nil:
		n = e.sparseByTheta[theta].Neighbors(theta)
	default:
		return nil
	}
	e.neighborsByTheta[theta] = n
	return n
}

// restWeights strips the match weight and rescales the remainder to sum
// to 1 so the inner composite validates; the objective multiplies the
// composite back by (1 − w_match).
func restWeights(w qef.Weights) qef.Weights {
	out := make(qef.Weights, len(w))
	//ube:nondeterministic-ok key-for-key map filter is order-independent; Normalized sums in sorted key order
	for k, v := range w {
		if k != MatchQEFName {
			out[k] = v
		}
	}
	return out.Normalized()
}

// uniformWeights gives every QEF equal weight; used only to build a
// breakdown-capable composite when w_match == 1.
func uniformWeights(qefs []qef.QEF) qef.Weights {
	out := make(qef.Weights, len(qefs))
	for _, q := range qefs {
		out[q.Name()] = 1 / float64(len(qefs))
	}
	return out
}

// fakeMatchQEF lets Weights.Validate account for the F1 weight; it is
// never evaluated.
type fakeMatchQEF struct{}

func (fakeMatchQEF) Name() string { return MatchQEFName }
func (fakeMatchQEF) Eval(*qef.Context, *model.SourceSet) float64 {
	panic("engine: the match QEF is evaluated by the engine, not the composite")
}
