package engine

import (
	"testing"

	"ube/internal/model"
	"ube/internal/synth"
)

func BenchmarkApplyChurn10k(b *testing.B) {
	cfg := synth.QuickConfig(10_000)
	base, batches, err := synth.ChurnSchedule(cfg, synth.ChurnConfig{Seed: cfg.Seed + 71, Steps: 200, MinSources: 20})
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(cloneUniverse(base), WithSparseScores())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ApplyChurn(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineNew10k(b *testing.B) {
	cfg := synth.QuickConfig(10_000)
	base, _, err := synth.ChurnSchedule(cfg, synth.ChurnConfig{Seed: cfg.Seed + 71, Steps: 1, MinSources: 20})
	if err != nil {
		b.Fatal(err)
	}
	clones := make([]*model.Universe, 0, 8)
	for i := 0; i < 8; i++ {
		clones = append(clones, cloneUniverse(base))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(clones[i%len(clones)], WithSparseScores()); err != nil {
			b.Fatal(err)
		}
	}
}
