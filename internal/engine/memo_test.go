package engine

import (
	"reflect"
	"testing"
)

// canonicalSolution strips the operational telemetry (wall-clock time,
// cache counters) that legitimately varies between bit-identical solves,
// mirroring the chaos suite's history canonicalization.
func canonicalSolution(sol *Solution) Solution {
	c := *sol
	c.Elapsed = 0
	c.MatchCache = CacheStats{}
	return c
}

// TestAppendSolvedMatchesSolveContext proves the solve-memo hooks are
// exact: a session driven by SolveInput + an external engine solve +
// AppendSolved must be indistinguishable — history, problem state, and
// all future solves — from one driven by SolveContext. This is the
// invariant the serving layer's cross-session memo rests on.
func TestAppendSolvedMatchesSolveContext(t *testing.T) {
	e, _ := testEngine(t, 40)
	ref := NewSession(e, smallProblem())
	memo := NewSession(e, smallProblem())

	for k := 0; k < 3; k++ {
		want, err := ref.Solve()
		if err != nil {
			t.Fatalf("iteration %d: reference solve: %v", k, err)
		}
		// The memo path: snapshot the exact solver input, solve it
		// outside the session, and append the result.
		in := memo.SolveInput()
		got, err := e.Solve(&in)
		if err != nil {
			t.Fatalf("iteration %d: external solve: %v", k, err)
		}
		memo.AppendSolved(got)
		if !reflect.DeepEqual(canonicalSolution(want), canonicalSolution(got)) {
			t.Fatalf("iteration %d: external solve of SolveInput diverges from SolveContext", k)
		}
		// Interleave feedback so warm-start and seed bookkeeping are
		// both exercised under problem edits.
		if k == 0 {
			ref.SetTheta(0.75)
			memo.SetTheta(0.75)
		}
	}

	if !reflect.DeepEqual(ref.Problem(), memo.Problem()) {
		t.Errorf("problem state diverged:\nref  %+v\nmemo %+v", ref.Problem(), memo.Problem())
	}
	rh, mh := ref.History(), memo.History()
	if len(rh) != len(mh) {
		t.Fatalf("history lengths diverged: %d vs %d", len(rh), len(mh))
	}
	for i := range rh {
		if !reflect.DeepEqual(rh[i].Problem, mh[i].Problem) {
			t.Errorf("iteration %d: recorded problems diverged", i)
		}
		if !reflect.DeepEqual(canonicalSolution(rh[i].Solution), canonicalSolution(mh[i].Solution)) {
			t.Errorf("iteration %d: recorded solutions diverged", i)
		}
	}

	// The sessions must stay interchangeable: a normal solve after the
	// memo-driven iterations lands on the same solution.
	a, err := ref.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := memo.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonicalSolution(a), canonicalSolution(b)) {
		t.Error("post-memo solves diverged")
	}
}

// TestSolveInputIsASnapshot proves mutating SolveInput's return cannot
// reach back into the session.
func TestSolveInputIsASnapshot(t *testing.T) {
	e, _ := testEngine(t, 30)
	s := NewSession(e, smallProblem())
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	in := s.SolveInput()
	if len(in.InitialSources) == 0 {
		t.Fatal("SolveInput after a solve should carry the warm start")
	}
	in.InitialSources[0] = -99
	in.Seed = 12345
	if got := s.SolveInput(); len(got.InitialSources) > 0 && got.InitialSources[0] == -99 {
		t.Error("mutating the snapshot leaked into the session")
	}
	if s.Problem().Seed == 12345 {
		t.Error("mutating the snapshot changed the session seed")
	}
}
