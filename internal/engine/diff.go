package engine

import "ube/internal/model"

// Diff summarizes how one solution differs from another — what the µBE UI
// shows the user between iterations so feedback decisions are grounded in
// what actually moved.
type Diff struct {
	// AddedSources and RemovedSources are the selection changes from
	// the old to the new solution, ascending.
	AddedSources   []int
	RemovedSources []int
	// NewGAs are GAs of the new schema with no equal GA in the old;
	// LostGAs the reverse.
	NewGAs  []model.GA
	LostGAs []model.GA
	// QualityDelta is new minus old overall quality.
	QualityDelta float64
}

// Unchanged reports whether nothing moved.
func (d *Diff) Unchanged() bool {
	return len(d.AddedSources) == 0 && len(d.RemovedSources) == 0 &&
		len(d.NewGAs) == 0 && len(d.LostGAs) == 0
}

// DiffSolutions compares two solutions of the same universe, old → new.
// Nil schemas are treated as empty.
func DiffSolutions(old, new *Solution) *Diff {
	d := &Diff{QualityDelta: new.Quality - old.Quality}
	new.Set.ForEach(func(id int) {
		if !old.Set.Has(id) {
			d.AddedSources = append(d.AddedSources, id)
		}
	})
	old.Set.ForEach(func(id int) {
		if !new.Set.Has(id) {
			d.RemovedSources = append(d.RemovedSources, id)
		}
	})
	d.NewGAs = gaDifference(new.Schema, old.Schema)
	d.LostGAs = gaDifference(old.Schema, new.Schema)
	return d
}

// gaDifference returns the GAs of a that have no equal GA in b.
func gaDifference(a, b *model.MediatedSchema) []model.GA {
	if a == nil {
		return nil
	}
	var out []model.GA
	for _, g := range a.GAs {
		found := false
		if b != nil {
			for _, h := range b.GAs {
				if g.Equal(h) {
					found = true
					break
				}
			}
		}
		if !found {
			out = append(out, g)
		}
	}
	return out
}

// DiffLast compares the session's two most recent solutions, or returns
// nil when fewer than two iterations exist.
func (s *Session) DiffLast() *Diff {
	n := len(s.history)
	if n < 2 {
		return nil
	}
	return DiffSolutions(s.history[n-2].Solution, s.history[n-1].Solution)
}
