package engine

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"ube/internal/synth"
	"ube/internal/trace"
)

// TestSparseSolveMatchesDense forces the blocking-index sparse scorer on
// a universe small enough for the dense matrix and requires the two
// paths to produce bit-identical solutions: prefix blocking has recall 1
// and the sparse table answers every Score bit-equal to a matrix cell,
// so nothing downstream may diverge.
func TestSparseSolveMatchesDense(t *testing.T) {
	cfg := synth.QuickConfig(40)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(sparse bool, workers int) *Solution {
		var opts []Option
		if sparse {
			opts = append(opts, WithSparseScores())
		}
		e, err := New(u, opts...)
		if err != nil {
			t.Fatal(err)
		}
		p := smallProblem()
		p.Workers = workers
		sol, err := e.Solve(&p)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	for _, workers := range []int{1, 4} {
		dense := solve(false, workers)
		sparse := solve(true, workers)
		if !reflect.DeepEqual(dense.Sources, sparse.Sources) {
			t.Errorf("workers=%d: sources diverge: %v vs %v", workers, dense.Sources, sparse.Sources)
		}
		//ube:float-exact the sparse path must reproduce the dense solve bit-for-bit
		if dense.Quality != sparse.Quality {
			t.Errorf("workers=%d: quality diverges: %v vs %v", workers, dense.Quality, sparse.Quality)
		}
		if dense.Evals != sparse.Evals {
			t.Errorf("workers=%d: evals diverge: %d vs %d", workers, dense.Evals, sparse.Evals)
		}
		if !reflect.DeepEqual(dense.Breakdown, sparse.Breakdown) {
			t.Errorf("workers=%d: breakdowns diverge: %v vs %v", workers, dense.Breakdown, sparse.Breakdown)
		}
		if !reflect.DeepEqual(dense.Schema, sparse.Schema) {
			t.Errorf("workers=%d: schemas diverge", workers)
		}
	}
}

// TestSparseTraceDeterministic solves on the sparse path twice per
// worker count, each on a fresh engine (cold match cache and cold
// blocking index — build counters are part of the payload), and requires
// byte-identical canonical traces. It also pins that the blocking
// counters actually fire on this path.
func TestSparseTraceDeterministic(t *testing.T) {
	cfg := synth.QuickConfig(40)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(workers int) ([]byte, trace.Counts) {
		e, err := New(u, WithSparseScores())
		if err != nil {
			t.Fatal(err)
		}
		p := smallProblem()
		p.Workers = workers
		tr := trace.New()
		p.Trace = tr
		if _, err := e.Solve(&p); err != nil {
			t.Fatal(err)
		}
		fin := tr.Finish()
		// schemaio would import-cycle back into engine, so serialize the
		// canonical trace with plain JSON; byte equality is what matters.
		data, err := json.Marshal(fin.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		return data, fin.Totals()
	}
	for _, workers := range []int{1, 4} {
		first, totals := solve(workers)
		second, _ := solve(workers)
		if !bytes.Equal(first, second) {
			t.Fatalf("workers=%d: canonical traces differ across fresh-engine reruns:\n--- first\n%s\n--- second\n%s",
				workers, first, second)
		}
		if totals[trace.CBlockProbes] == 0 || totals[trace.CBlockCandidates] == 0 {
			t.Errorf("workers=%d: blocking counters did not fire: probes=%d candidates=%d",
				workers, totals[trace.CBlockProbes], totals[trace.CBlockCandidates])
		}
	}
}

// TestBoundPruningBitSafe solves the same problem with and without the
// objective upper bound and requires identical solutions while the
// pruned run actually skips candidates — pruning is an accounting-only
// shortcut, never a search change.
func TestBoundPruningBitSafe(t *testing.T) {
	cfg := synth.QuickConfig(40)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(pruned bool) (*Solution, int64) {
		e, err := New(u)
		if err != nil {
			t.Fatal(err)
		}
		p := smallProblem()
		p.BoundPruning = pruned
		tr := trace.New()
		p.Trace = tr
		sol, err := e.Solve(&p)
		if err != nil {
			t.Fatal(err)
		}
		return sol, tr.Finish().Totals()[trace.CBoundSkips]
	}
	plain, plainSkips := solve(false)
	pruned, skips := solve(true)
	if plainSkips != 0 {
		t.Errorf("bound skips counted with pruning off: %d", plainSkips)
	}
	if skips == 0 {
		t.Error("bound pruning enabled but no candidate was ever skipped")
	}
	if !reflect.DeepEqual(plain.Sources, pruned.Sources) {
		t.Errorf("pruning changed the selection: %v vs %v", plain.Sources, pruned.Sources)
	}
	//ube:float-exact pruning must be bit-safe
	if plain.Quality != pruned.Quality {
		t.Errorf("pruning changed the quality: %v vs %v", plain.Quality, pruned.Quality)
	}
	if plain.Evals != pruned.Evals {
		t.Errorf("pruning changed the eval count: %d vs %d (skips still count)", plain.Evals, pruned.Evals)
	}
}
