package engine

import (
	"sync"

	"ube/internal/cluster"
	"ube/internal/faultinject"
	"ube/internal/floats"
	"ube/internal/model"
	"ube/internal/qef"
	"ube/internal/search"
	"ube/internal/strsim"
	"ube/internal/trace"
	"ube/internal/ubedebug"
)

// This file holds the incremental half of the evaluation pipeline: the
// per-solve incumbent cache and the delta-aware objective built on it.
// Solvers derive most candidates by editing one incumbent set; the engine
// snapshots that incumbent's evaluation state once (QEF partial sums plus
// its unioned PCSA sketch) and evaluates every add-move off it by
// extending the snapshot with a single source. Drop and swap moves fall
// back to the ordinary full path, which is itself memoized. See DESIGN.md
// ("Evaluation pipeline performance").

// seedPairs returns (building and caching on first use) the precomputed
// round-1 clustering agenda for θ over the solve's routed scorer and
// adjacency (dense or θ-sparse), or nil when the universe doesn't
// qualify for the fast path.
func (e *Engine) seedPairs(theta float64, scores strsim.Scorer, neighbors [][]int) *cluster.SeedPairs {
	if sp, ok := e.seedByTheta[theta]; ok {
		return sp
	}
	sp := cluster.BuildSeedPairs(e.u, e.nameIDs, neighbors, scores, theta)
	e.seedByTheta[theta] = sp
	return sp
}

// incumbent is the per-solve cache of one base set's evaluation state.
// It holds a single slot: solvers walk one incumbent at a time, so by the
// time a new base appears the old snapshot is dead. The snapshot itself
// is immutable — workers that share it only read (sketch extensions
// happen in pooled copies) — and the slot swap is mutex-guarded, so
// concurrent evaluation workers may race to refresh it but each always
// evaluates against a complete snapshot. Snapshot construction is pure,
// so a lost race wastes one pass and changes nothing.
type incumbent struct {
	mu   sync.Mutex
	snap *qef.BaseSnapshot
}

// lookup returns the cached snapshot when it matches base's key.
func (inc *incumbent) lookup(key string) *qef.BaseSnapshot {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.snap != nil && inc.snap.Key() == key {
		return inc.snap
	}
	return nil
}

// publish installs a freshly built snapshot as the incumbent.
func (inc *incumbent) publish(snap *qef.BaseSnapshot) {
	inc.mu.Lock()
	inc.snap = snap
	inc.mu.Unlock()
}

// discard drops the cached snapshot (the snapshot.evict injection
// point). Snapshot construction is pure, so an eviction only forces a
// rebuild and can never change results — which is exactly the invariant
// the chaos suite checks by firing this mid-solve.
func (inc *incumbent) discard() {
	inc.mu.Lock()
	inc.snap = nil
	inc.mu.Unlock()
}

// deltaObjective builds the solve's incremental objective and its
// companion upper bound. Matching quality F1 is inherently whole-set
// (the clustering is global) and stays on the memoized Match path; the
// composite QEF side evaluates add-moves incrementally from the
// incumbent snapshot. For a fixed S the returned quality is independent
// of the delta up to float reassociation in the characteristic folds
// (≪1e-12, see TestDeltaObjectiveMatchesFull).
//
// The bound closure shares the snapshot cache and delta evaluator: it
// computes the composite term exactly (the cheap part — no clustering)
// and bounds only F1 by its range maximum 1, so bound ≥ quality holds
// rigorously: q = w_match·f1 + w_rest·comp ≤ w_match·1 + w_rest·comp.
// A PCSA-side shortcut was deliberately rejected — sketch-union
// estimates are not subadditive, so est(A∪B) ≤ est(A)+est(B) does NOT
// hold and any bound built on it would be unsound.
func (e *Engine) deltaObjective(comp *qef.Composite, wMatch, wRest float64, clusterCfg cluster.Config, C []int, G []model.GA) (search.DeltaObjective, search.BoundFunc) {
	de := qef.NewDeltaEval(comp)
	de.Stats = clusterCfg.Stats
	inc := &incumbent{}
	bound := func(S *model.SourceSet, d search.Delta) (float64, bool) {
		//ube:float-exact wRest is assigned the literal 0 sentinel by Solve when w_match == 1
		if wRest == 0 {
			return wMatch, true
		}
		if d.Base != nil && d.Add >= 0 && d.Drop < 0 && !d.Base.Has(d.Add) {
			key := d.Base.Key()
			snap := inc.lookup(key)
			if snap == nil {
				snap = de.Snapshot(e.ctx, d.Base)
				inc.publish(snap)
			}
			return wMatch + wRest*de.EvalAdd(e.ctx, snap, d.Add, S), true
		}
		clusterCfg.Stats.Add(trace.CQEFFull, 1)
		return wMatch + wRest*comp.Eval(e.ctx, S), true
	}
	dobj := func(S *model.SourceSet, d search.Delta) (float64, bool) {
		f1, valid := e.matchQuality(S, clusterCfg, C, G)
		q := wMatch * f1
		//ube:float-exact wRest is assigned the literal 0 sentinel by Solve when w_match == 1
		if wRest == 0 {
			return q, valid
		}
		if d.Base != nil && d.Add >= 0 && d.Drop < 0 && !d.Base.Has(d.Add) {
			if e.faults.Fire(faultinject.SnapshotEvict) != nil {
				inc.discard()
			}
			key := d.Base.Key()
			snap := inc.lookup(key)
			if snap == nil {
				snap = de.Snapshot(e.ctx, d.Base)
				inc.publish(snap)
			}
			dq := de.EvalAdd(e.ctx, snap, d.Add, S)
			if ubedebug.Enabled && ubedebug.ShouldAudit() {
				// Sampled delta≡full audit: the incremental value must
				// agree with the full composite evaluation on the
				// materialized set up to fold reassociation.
				full := comp.Eval(e.ctx, S)
				ubedebug.Assert(floats.EqTol(dq, full, 1e-9),
					"engine: delta objective %v diverges from full evaluation %v on %q+%d",
					dq, full, key, d.Add)
				ubedebug.CountAudit()
			}
			return q + wRest*dq, valid
		}
		// Drop and swap moves (and bases that don't match the snapshot
		// shape) take the full composite path.
		clusterCfg.Stats.Add(trace.CQEFFull, 1)
		return q + wRest*comp.Eval(e.ctx, S), valid
	}
	return dobj, bound
}
