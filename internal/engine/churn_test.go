package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/strsim"
	"ube/internal/synth"
)

// cloneUniverse copies a universe deeply enough that churn on the copy
// never touches the original: the source slice and every per-source
// slice/map are fresh; immutable sketches stay shared.
func cloneUniverse(u *model.Universe) *model.Universe {
	out := &model.Universe{Sources: append([]model.Source(nil), u.Sources...)}
	for i := range out.Sources {
		s := &out.Sources[i]
		s.Attributes = append([]string(nil), s.Attributes...)
		s.AttrSignatures = append([]*pcsa.Sketch(nil), s.AttrSignatures...)
		if s.Characteristics != nil {
			cc := make(map[string]float64, len(s.Characteristics))
			//ube:nondeterministic-ok key-for-key map copy is order-independent
			for k, v := range s.Characteristics {
				cc[k] = v
			}
			s.Characteristics = cc
		}
	}
	return out
}

// applyOracle is the differential oracle's universe mutator: a separate,
// deliberately naive implementation of the batch semantics (sequential
// IDs, splice + renumber) with none of the engine's incremental
// bookkeeping.
func applyOracle(t *testing.T, u *model.Universe, muts []Mutation) *model.Universe {
	t.Helper()
	out := cloneUniverse(u)
	for _, m := range muts {
		switch m.Op {
		case OpAdd:
			s := m.Source
			s.ID = len(out.Sources)
			out.Sources = append(out.Sources, *cloneUniverse(&model.Universe{Sources: []model.Source{s}}).Source(0))
		case OpRemove:
			out.Sources = append(out.Sources[:m.ID], out.Sources[m.ID+1:]...)
		case OpUpdate:
			if m.Cardinality != nil {
				out.Sources[m.ID].Cardinality = *m.Cardinality
			}
			if m.Characteristics != nil {
				cc := make(map[string]float64, len(m.Characteristics))
				//ube:nondeterministic-ok key-for-key map copy is order-independent
				for k, v := range m.Characteristics {
					cc[k] = v
				}
				out.Sources[m.ID].Characteristics = cc
			}
		default:
			t.Fatalf("oracle: unknown op %q", m.Op)
		}
	}
	for i := range out.Sources {
		out.Sources[i].ID = i
	}
	return out
}

// universeJSON renders a universe for byte equality checks.
func universeJSON(t *testing.T, u *model.Universe) string {
	t.Helper()
	b, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// canonSparse forces the engine's θ-sparse table and renders the rows of
// every live attribute name in an intern-space-independent form:
// normalized name -> sorted "neighborName:scoreBits" entries. Churned
// and fresh engines intern in different orders, so only this canonical
// view is comparable.
func canonSparse(t *testing.T, e *Engine, theta float64) map[string][]string {
	t.Helper()
	sp := e.sparse(theta, nil)
	if sp == nil {
		t.Fatalf("θ=%v: no sparse table (measure not blockable?)", theta)
	}
	live := make(map[int]bool)
	for _, row := range e.nameIDs {
		for _, id := range row {
			live[id] = true
		}
	}
	nbrs := sp.Neighbors(theta)
	out := make(map[string][]string, len(live))
	//ube:nondeterministic-ok each key's row is computed independently and sorted
	for id := range live {
		row := make([]string, 0, len(nbrs[id]))
		for _, j := range nbrs[id] {
			row = append(row, fmt.Sprintf("%s:%016x", e.sim.NameOf(j), math.Float64bits(sp.Score(id, j))))
		}
		sort.Strings(row)
		out[e.sim.NameOf(id)] = row
	}
	return out
}

// unionChecksum is the PCSA union checksum over a universe's
// cooperative signatures, 0 when there are none.
func unionChecksum(t *testing.T, u *model.Universe) uint64 {
	t.Helper()
	var coop []*pcsa.Sketch
	for i := range u.Sources {
		if sg := u.Sources[i].Signature; sg != nil {
			coop = append(coop, sg)
		}
	}
	if len(coop) == 0 {
		return 0
	}
	un, err := pcsa.Union(coop...)
	if err != nil {
		t.Fatal(err)
	}
	return un.Checksum()
}

// canonSolution strips the operational fields replay comparisons zero
// (wall clock, cache traffic) so warm and cold engines compare equal.
func canonSolution(sol *Solution) Solution {
	out := *sol
	out.Elapsed = 0
	out.MatchCache = CacheStats{}
	return out
}

func churnTestModes() []struct {
	name string
	opts []Option
} {
	return []struct {
		name string
		opts []Option
	}{
		{"sparse-prefix", []Option{WithSparseScores()}},
		{"sparse-minhash", []Option{WithSparseScores(), WithBlocking(strsim.BlockConfig{Mode: strsim.BlockMinHash})}},
	}
}

// TestChurnDifferential is the tentpole: a 200-batch seeded schedule of
// adds, removes and updates applied incrementally to one engine, with a
// fresh engine built on the independently mutated universe after every
// prefix. Universe bytes, the maintained signature union and the
// θ-sparse postings must match after every batch; full solves (Workers
// 1 and 4) must match at intervals and at the end.
func TestChurnDifferential(t *testing.T) {
	const seed = 7
	cfg := synth.QuickConfig(30)
	cc := synth.ChurnConfig{Seed: seed, Steps: 200, MinSources: 12, MaxSources: 60}
	if testing.Short() {
		cc.Steps = 40
	}
	base, batches, err := synth.ChurnSchedule(cfg, cc)
	if err != nil {
		t.Fatal(err)
	}
	theta := smallProblem().Theta
	for _, mode := range churnTestModes() {
		t.Run(mode.name, func(t *testing.T) {
			inc, err := New(cloneUniverse(base), mode.opts...)
			if err != nil {
				t.Fatal(err)
			}
			oracle := cloneUniverse(base)
			for bi, batch := range batches {
				if _, err := inc.ApplyChurn(batch); err != nil {
					t.Fatalf("seed %d batch %d: ApplyChurn: %v", seed, bi, err)
				}
				oracle = applyOracle(t, oracle, batch)
				if got, want := universeJSON(t, inc.Universe()), universeJSON(t, oracle); got != want {
					t.Fatalf("seed %d batch %d: incremental universe diverged from oracle", seed, bi)
				}
				if want := unionChecksum(t, oracle); want != 0 {
					got := inc.sigCounter.Sketch()
					if got == nil || got.Checksum() != want {
						t.Fatalf("seed %d batch %d: maintained signature union diverged from fresh union", seed, bi)
					}
				}
				fresh, err := New(cloneUniverse(oracle), mode.opts...)
				if err != nil {
					t.Fatalf("seed %d batch %d: fresh engine: %v", seed, bi, err)
				}
				gotRows, wantRows := canonSparse(t, inc, theta), canonSparse(t, fresh, theta)
				if !reflect.DeepEqual(gotRows, wantRows) {
					for name, row := range wantRows {
						if !reflect.DeepEqual(gotRows[name], row) {
							t.Errorf("seed %d batch %d: row %q: incremental %v, fresh %v", seed, bi, name, gotRows[name], row)
						}
					}
					t.Fatalf("seed %d batch %d: incremental θ-sparse postings diverged from fresh build", seed, bi)
				}
				if bi%20 != 19 && bi != len(batches)-1 {
					continue
				}
				for _, workers := range []int{1, 4} {
					p := smallProblem()
					p.Workers = workers
					pInc, pFresh := p, p
					got, err := inc.Solve(&pInc)
					if err != nil {
						t.Fatalf("seed %d batch %d workers %d: incremental solve: %v", seed, bi, workers, err)
					}
					want, err := fresh.Solve(&pFresh)
					if err != nil {
						t.Fatalf("seed %d batch %d workers %d: fresh solve: %v", seed, bi, workers, err)
					}
					if !reflect.DeepEqual(canonSolution(got), canonSolution(want)) {
						t.Fatalf("seed %d batch %d workers %d: incremental solve diverged from fresh engine:\n got %+v\nwant %+v",
							seed, bi, workers, canonSolution(got), canonSolution(want))
					}
				}
			}
		})
	}
}

// TestChurnDifferentialDense runs the schedule against the dense-matrix
// path: the matrix is rebuilt lazily after churn and solves must match a
// fresh dense engine on the mutated universe.
func TestChurnDifferentialDense(t *testing.T) {
	const seed = 11
	cfg := synth.QuickConfig(25)
	steps := 30
	if testing.Short() {
		steps = 10
	}
	base, batches, err := synth.ChurnSchedule(cfg, synth.ChurnConfig{Seed: seed, Steps: steps, MinSources: 10, MaxSources: 50})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := New(cloneUniverse(base))
	if err != nil {
		t.Fatal(err)
	}
	oracle := cloneUniverse(base)
	for bi, batch := range batches {
		if _, err := inc.ApplyChurn(batch); err != nil {
			t.Fatalf("seed %d batch %d: ApplyChurn: %v", seed, bi, err)
		}
		oracle = applyOracle(t, oracle, batch)
		fresh, err := New(cloneUniverse(oracle))
		if err != nil {
			t.Fatalf("seed %d batch %d: fresh engine: %v", seed, bi, err)
		}
		p := smallProblem()
		pInc, pFresh := p, p
		got, err := inc.Solve(&pInc)
		if err != nil {
			t.Fatalf("seed %d batch %d: incremental solve: %v", seed, bi, err)
		}
		want, err := fresh.Solve(&pFresh)
		if err != nil {
			t.Fatalf("seed %d batch %d: fresh solve: %v", seed, bi, err)
		}
		if !reflect.DeepEqual(canonSolution(got), canonSolution(want)) {
			t.Fatalf("seed %d batch %d: dense-path solve diverged after churn", seed, bi)
		}
	}
	if inc.matrix == nil {
		t.Fatal("dense engine lost its matrix despite a small vocabulary")
	}
}

// TestChurnWarmResolveMatchesFresh: after each churn batch, a session's
// warm-started re-solve must be bit-identical to a from-scratch solve of
// the exact SolveInput snapshot on a fresh engine over the mutated
// universe — the end-to-end warm-start differential.
func TestChurnWarmResolveMatchesFresh(t *testing.T) {
	const seed = 13
	cfg := synth.QuickConfig(30)
	steps := 12
	if testing.Short() {
		steps = 5
	}
	base, batches, err := synth.ChurnSchedule(cfg, synth.ChurnConfig{Seed: seed, Steps: steps, MinSources: 12, MaxSources: 60})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cloneUniverse(base), WithSparseScores())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(e, smallProblem())
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	oracle := cloneUniverse(base)
	for bi, batch := range batches {
		remap, err := s.ApplyChurn(batch)
		if err != nil {
			t.Fatalf("seed %d batch %d: session ApplyChurn: %v", seed, bi, err)
		}
		oracle = applyOracle(t, oracle, batch)
		// The repaired warm start must be the last solution remapped,
		// minus vanished sources.
		wantInit := make([]int, 0)
		for _, id := range s.Last().Sources {
			if bi == 0 {
				if nid := remap.Of(id); nid >= 0 {
					wantInit = append(wantInit, nid)
				}
			}
		}
		input := s.SolveInput()
		if bi == 0 && !reflect.DeepEqual(input.InitialSources, wantInit) {
			t.Fatalf("seed %d batch %d: warm start %v, want remapped %v", seed, bi, input.InitialSources, wantInit)
		}
		fresh, err := New(cloneUniverse(oracle), WithSparseScores())
		if err != nil {
			t.Fatal(err)
		}
		inputCopy := input
		want, err := fresh.Solve(&inputCopy)
		if err != nil {
			t.Fatalf("seed %d batch %d: from-scratch solve: %v", seed, bi, err)
		}
		got, err := s.Solve()
		if err != nil {
			t.Fatalf("seed %d batch %d: warm re-solve: %v", seed, bi, err)
		}
		if !reflect.DeepEqual(canonSolution(got), canonSolution(want)) {
			t.Fatalf("seed %d batch %d: warm-started re-solve diverged from from-scratch solve:\n got %+v\nwant %+v",
				seed, bi, canonSolution(got), canonSolution(want))
		}
	}
}

// TestChurnAddRemoveNoOp: adding a source and then removing it restores
// the engine's observable state exactly — universe bytes, signature
// union, sparse postings and solve results.
func TestChurnAddRemoveNoOp(t *testing.T) {
	cfg := synth.QuickConfig(20)
	base, batches, err := synth.ChurnSchedule(cfg, synth.ChurnConfig{Seed: 3, Steps: 1, BatchMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Dig an add out of the schedule's pool: generate until we have one.
	var added model.Source
	found := false
	for _, m := range batches[0] {
		if m.Op == OpAdd {
			added, found = m.Source, true
		}
	}
	if !found {
		ext := cfg
		ext.NumSources = cfg.NumSources + 1
		pool, _, err := synth.Generate(ext)
		if err != nil {
			t.Fatal(err)
		}
		added = pool.Sources[cfg.NumSources]
	}
	e, err := New(cloneUniverse(base), WithSparseScores())
	if err != nil {
		t.Fatal(err)
	}
	theta := smallProblem().Theta
	beforeU := universeJSON(t, e.Universe())
	beforeRows := canonSparse(t, e, theta)
	p := smallProblem()
	beforeSol, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.AddSource(added)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RemoveSource(id); err != nil {
		t.Fatal(err)
	}
	if got := universeJSON(t, e.Universe()); got != beforeU {
		t.Fatal("add-then-remove changed the universe")
	}
	if got := unionChecksum(t, e.Universe()); e.sigCounter.Sketch() != nil && e.sigCounter.Sketch().Checksum() != got {
		t.Fatal("add-then-remove desynced the maintained signature union")
	}
	if got := canonSparse(t, e, theta); !reflect.DeepEqual(got, beforeRows) {
		t.Fatal("add-then-remove changed the θ-sparse postings")
	}
	p2 := smallProblem()
	afterSol, err := e.Solve(&p2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonSolution(beforeSol), canonSolution(afterSol)) {
		t.Fatal("add-then-remove changed solve results")
	}
}

// TestChurnCommutingBatches: mutation orders with the same net effect
// must land in identical final state. Removing {a, b} descending equals
// removing ascending with the shifted ID; independent updates commute.
func TestChurnCommutingBatches(t *testing.T) {
	cfg := synth.QuickConfig(20)
	u, _, err := synth.ChurnSchedule(cfg, synth.ChurnConfig{Seed: 1, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	card := int64(4242)
	mttf := 77.5
	perms := [][]Mutation{
		{
			{Op: OpUpdate, ID: 3, Cardinality: &card},
			{Op: OpUpdate, ID: 9, Characteristics: map[string]float64{"mttf": mttf}},
			{Op: OpRemove, ID: 12},
			{Op: OpRemove, ID: 5},
		},
		{
			{Op: OpRemove, ID: 5},
			{Op: OpRemove, ID: 11}, // original 12, shifted by the removal of 5
			{Op: OpUpdate, ID: 8, Characteristics: map[string]float64{"mttf": mttf}}, // original 9, likewise shifted
			{Op: OpUpdate, ID: 3, Cardinality: &card},
		},
	}
	theta := smallProblem().Theta
	var wantU string
	var wantRows map[string][]string
	var wantSol Solution
	for pi, muts := range perms {
		e, err := New(cloneUniverse(u), WithSparseScores())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.ApplyChurn(muts); err != nil {
			t.Fatalf("perm %d: %v", pi, err)
		}
		gotU := universeJSON(t, e.Universe())
		gotRows := canonSparse(t, e, theta)
		p := smallProblem()
		sol, err := e.Solve(&p)
		if err != nil {
			t.Fatal(err)
		}
		gotSol := canonSolution(sol)
		if pi == 0 {
			wantU, wantRows, wantSol = gotU, gotRows, gotSol
			continue
		}
		if gotU != wantU {
			t.Fatalf("perm %d: final universe differs from perm 0", pi)
		}
		if !reflect.DeepEqual(gotRows, wantRows) {
			t.Fatalf("perm %d: final postings differ from perm 0", pi)
		}
		if !reflect.DeepEqual(gotSol, wantSol) {
			t.Fatalf("perm %d: final solve differs from perm 0", pi)
		}
	}
}

// TestChurnPinnedSource: removing a source the session pins — required
// directly or referenced by a GA constraint — returns a typed
// *PinnedSourceError, never panics, and leaves the batch unapplied.
func TestChurnPinnedSource(t *testing.T) {
	cfg := synth.QuickConfig(20)
	u, _, err := synth.ChurnSchedule(cfg, synth.ChurnConfig{Seed: 2, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cloneUniverse(u), WithSparseScores())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(e, smallProblem())
	if err := s.RequireSource(3); err != nil {
		t.Fatal(err)
	}
	if err := s.PinGA(model.NewGA(
		model.AttrRef{Source: 5, Attr: 0},
		model.AttrRef{Source: 6, Attr: 0},
	)); err != nil {
		t.Fatal(err)
	}
	before := universeJSON(t, e.Universe())
	beforeProblem := s.Problem()
	var pinErr *PinnedSourceError
	// Direct source constraint; the batch removes an innocent source
	// first, so refusal also proves all-or-nothing.
	_, err = s.ApplyChurn([]Mutation{{Op: OpRemove, ID: 10}, {Op: OpRemove, ID: 3}})
	if !errors.As(err, &pinErr) || pinErr.ID != 3 || pinErr.Constraint != "source" {
		t.Fatalf("removing required source: got %v, want *PinnedSourceError{ID:3, source}", err)
	}
	_, err = s.ApplyChurn([]Mutation{{Op: OpRemove, ID: 5}})
	if !errors.As(err, &pinErr) || pinErr.ID != 5 || pinErr.Constraint != "ga" {
		t.Fatalf("removing GA-pinned source: got %v, want *PinnedSourceError{ID:5, ga}", err)
	}
	if got := universeJSON(t, e.Universe()); got != before {
		t.Fatal("refused churn mutated the universe")
	}
	if !reflect.DeepEqual(s.Problem(), beforeProblem) {
		t.Fatal("refused churn mutated the problem")
	}
	// Removing the unpinned neighbor remaps the constraints in place.
	remap, err := s.ApplyChurn([]Mutation{{Op: OpRemove, ID: 4}})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Problem()
	if !reflect.DeepEqual(p.Constraints.Sources, []int{3}) {
		t.Fatalf("source constraint after remap: %v", p.Constraints.Sources)
	}
	if got := p.Constraints.GAs[0]; got[0].Source != 4 || got[1].Source != 5 {
		t.Fatalf("GA constraint after remap: %+v", got)
	}
	if remap.Of(5) != 4 || remap.Of(4) != -1 {
		t.Fatalf("remap: %v", remap)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatalf("solve after constrained churn: %v", err)
	}
}

// TestChurnRejects covers batch validation: unknown ops, out-of-range
// IDs, empty batches and transiently incompatible signature parameters
// are refused with no effect.
func TestChurnRejects(t *testing.T) {
	cfg := synth.QuickConfig(12)
	u, _, err := synth.ChurnSchedule(cfg, synth.ChurnConfig{Seed: 4, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cloneUniverse(u), WithSparseScores())
	if err != nil {
		t.Fatal(err)
	}
	before := universeJSON(t, e.Universe())
	cases := []struct {
		name string
		muts []Mutation
	}{
		{"empty", nil},
		{"unknown-op", []Mutation{{Op: "rename", ID: 0}}},
		{"remove-oob", []Mutation{{Op: OpRemove, ID: 99}}},
		{"remove-negative", []Mutation{{Op: OpRemove, ID: -1}}},
		{"update-oob", []Mutation{{Op: OpUpdate, ID: 99}}},
		{"add-empty-schema", []Mutation{{Op: OpAdd, Source: model.Source{Name: "bad"}}}},
		{"add-incompatible-signature", []Mutation{{Op: OpAdd, Source: model.Source{
			Name:        "bad-sig",
			Attributes:  []string{"title"},
			Cardinality: 10,
			Signature:   pcsa.MustNew(16, 999),
		}}}},
		{"remove-then-oob", []Mutation{{Op: OpRemove, ID: 11}, {Op: OpRemove, ID: 11}}},
	}
	for _, tc := range cases {
		if _, err := e.ApplyChurn(tc.muts); err == nil {
			t.Errorf("%s: batch accepted", tc.name)
		}
		if got := universeJSON(t, e.Universe()); got != before {
			t.Fatalf("%s: refused batch mutated the universe", tc.name)
		}
	}
	// Sequential IDs: removing 11 twice is out of range the second time,
	// but removing 11 then 10 is two distinct sources.
	if _, err := e.ApplyChurn([]Mutation{{Op: OpRemove, ID: 11}, {Op: OpRemove, ID: 10}}); err != nil {
		t.Fatalf("sequential removes: %v", err)
	}
	if e.Universe().N() != 10 {
		t.Fatalf("universe size after two removes: %d", e.Universe().N())
	}
	if !e.Churned() {
		t.Fatal("Churned() false after a committed batch")
	}
}
