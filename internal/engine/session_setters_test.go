package engine

import (
	"testing"

	"ube/internal/faultinject"
	"ube/internal/search"
	"ube/internal/strsim"
	"ube/internal/trace"
)

func TestSessionSetProblemReplacesWholesale(t *testing.T) {
	e, _ := testEngine(t, 20)
	s := NewSession(e, smallProblem())
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	next := smallProblem()
	next.MaxSources = 3
	next.Theta = 0.8
	s.SetProblem(next)
	got := s.Problem()
	if got.MaxSources != 3 || got.Theta != 0.8 {
		t.Errorf("problem after SetProblem: m=%d θ=%v", got.MaxSources, got.Theta)
	}
	if len(s.History()) != 1 {
		t.Errorf("SetProblem touched the history: %d entries", len(s.History()))
	}
	// The stored problem is a snapshot: mutating the caller's copy after
	// the call must not leak in.
	next.Constraints.Sources = append(next.Constraints.Sources, 0)
	if len(s.Problem().Constraints.Sources) != 0 {
		t.Error("SetProblem aliased the caller's constraint slices")
	}
}

func TestSessionSetProgressAndTrace(t *testing.T) {
	e, _ := testEngine(t, 20)
	s := NewSession(e, smallProblem())
	var calls int
	s.SetProgress(func(search.Progress) { calls++ })
	trc := trace.New()
	s.SetTrace(trc)
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("progress observer never called")
	}
	tr := trc.Finish()
	if len(tr.Spans) == 0 || tr.Spans[0].Name != "solve" {
		t.Fatalf("session tracer captured no solve span: %+v", tr.Spans)
	}
	// Removal restores the untraced, unobserved solve.
	s.SetProgress(nil)
	s.SetTrace(nil)
	calls = 0
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Error("removed progress observer still called")
	}
}

func TestSessionSetWeightsClones(t *testing.T) {
	e, _ := testEngine(t, 20)
	s := NewSession(e, smallProblem())
	w := s.Problem().Weights
	w[MatchQEFName] = 0.9
	s.SetWeights(w)
	w[MatchQEFName] = 0.1 // must not reach the session's copy
	//ube:float-exact the weight was stored verbatim two lines up
	if got := s.Problem().Weights[MatchQEFName]; got != 0.9 {
		t.Errorf("match weight = %v, want the cloned 0.9", got)
	}
}

// TestEngineOptions exercises the option wiring: a custom measure and an
// armed (but empty) fault injector must leave solves working.
func TestEngineOptions(t *testing.T) {
	e, _ := testEngine(t, 20)
	u := e.Universe()
	custom, err := New(u, WithMeasure(strsim.NewNGramJaccard(2)), WithFaultInjector(faultinject.MustNew(faultinject.Plan{})))
	if err != nil {
		t.Fatal(err)
	}
	p := smallProblem()
	sol, err := custom.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || len(sol.Sources) == 0 {
		t.Errorf("solve under custom options: feasible=%v sources=%v", sol.Feasible, sol.Sources)
	}
}
