package engine

import (
	"math"
	"testing"

	"ube/internal/model"
	"ube/internal/qef"
	"ube/internal/search"
	"ube/internal/synth"
)

// testEngine builds an engine over a small synthetic universe.
func testEngine(t *testing.T, n int) (*Engine, *synth.Truth) {
	t.Helper()
	cfg := synth.QuickConfig(n)
	u, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(u)
	if err != nil {
		t.Fatal(err)
	}
	return e, truth
}

func smallProblem() Problem {
	p := DefaultProblem()
	p.MaxSources = 8
	p.MaxEvals = 1500
	return p
}

func TestSolveEndToEnd(t *testing.T) {
	e, _ := testEngine(t, 40)
	p := smallProblem()
	sol, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("unconstrained solve on a books universe must be feasible")
	}
	if len(sol.Sources) == 0 || len(sol.Sources) > p.MaxSources {
		t.Errorf("selected %d sources for m=%d", len(sol.Sources), p.MaxSources)
	}
	if sol.Schema == nil || len(sol.Schema.GAs) == 0 {
		t.Fatal("no mediated schema produced")
	}
	if !sol.Schema.Valid() {
		t.Error("schema invalid")
	}
	if sol.Quality <= 0 || sol.Quality > 1 {
		t.Errorf("quality %v out of range", sol.Quality)
	}
	// Breakdown must carry all five QEFs and reassemble to Quality.
	names := []string{MatchQEFName, "card", "coverage", "redundancy", "mttf"}
	sum := 0.0
	for _, n := range names {
		v, ok := sol.Breakdown[n]
		if !ok {
			t.Fatalf("breakdown missing %q", n)
		}
		if v < 0 || v > 1 {
			t.Errorf("breakdown[%s] = %v", n, v)
		}
		sum += p.Weights[n] * v
	}
	if math.Abs(sum-sol.Quality) > 1e-9 {
		t.Errorf("breakdown reassembles to %v, quality is %v", sum, sol.Quality)
	}
	if sol.Evals == 0 || sol.Elapsed <= 0 {
		t.Error("accounting fields unset")
	}
}

func TestSolveHonorsConstraints(t *testing.T) {
	e, truth := testEngine(t, 40)
	p := smallProblem()
	p.Constraints.Sources = []int{truth.Unperturbed[3], truth.Unperturbed[7]}
	p.Constraints.Exclude = []int{5, 11}
	sol, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range p.Constraints.Sources {
		if !sol.Set.Has(id) {
			t.Errorf("required source %d missing", id)
		}
	}
	for _, id := range p.Constraints.Exclude {
		if sol.Set.Has(id) {
			t.Errorf("excluded source %d selected", id)
		}
	}
	if sol.Feasible && !sol.Schema.ValidOn(p.Constraints.Sources) {
		t.Error("feasible solution's schema not valid on C")
	}
}

func TestSolveHonorsGAConstraints(t *testing.T) {
	e, _ := testEngine(t, 40)
	u := e.Universe()
	// Pin two attributes from sources 0 and 1 into one GA.
	g := model.NewGA(
		model.AttrRef{Source: 0, Attr: 0},
		model.AttrRef{Source: 1, Attr: 0},
	)
	p := smallProblem()
	p.Constraints.GAs = []model.GA{g}
	sol, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	// GA-implied sources are required.
	if !sol.Set.Has(0) || !sol.Set.Has(1) {
		t.Error("GA-implied sources not selected")
	}
	if sol.Schema == nil {
		t.Fatal("no schema")
	}
	if !sol.Schema.Subsumes(&model.MediatedSchema{GAs: []model.GA{g}}) {
		t.Errorf("schema does not subsume the GA constraint; GAs: %v (names %q/%q)",
			sol.Schema.GAs, u.AttrName(g[0]), u.AttrName(g[1]))
	}
}

func TestSolveValidation(t *testing.T) {
	e, _ := testEngine(t, 20)
	mut := func(f func(*Problem)) *Problem {
		p := smallProblem()
		f(&p)
		return &p
	}
	bad := []*Problem{
		mut(func(p *Problem) { p.MaxSources = 0 }),
		mut(func(p *Problem) { p.MaxSources = 21 }),
		mut(func(p *Problem) { p.Theta = 1.5 }),
		mut(func(p *Problem) { p.Beta = 0 }),
		mut(func(p *Problem) { p.Constraints.Sources = []int{99} }),
		mut(func(p *Problem) {
			p.MaxSources = 1
			p.Constraints.Sources = []int{0, 1}
		}),
		mut(func(p *Problem) { p.Weights = qef.Weights{"card": 1} }),
		mut(func(p *Problem) { p.Weights[MatchQEFName] = 0.5 }), // sum != 1
		mut(func(p *Problem) { p.Characteristics = map[string]qef.Aggregator{"latency": qef.WSum{}} }),
		mut(func(p *Problem) { p.Characteristics = map[string]qef.Aggregator{"mttf": nil} }),
	}
	for i, p := range bad {
		if _, err := e.Solve(p); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestSolveMatchOnlyWeights(t *testing.T) {
	// w_match = 1: the engine must not choke on an empty composite.
	e, _ := testEngine(t, 30)
	p := smallProblem()
	p.Weights = qef.Weights{MatchQEFName: 1, "card": 0, "coverage": 0, "redundancy": 0, "mttf": 0}
	sol, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Quality-sol.Breakdown[MatchQEFName]) > 1e-9 {
		t.Errorf("match-only quality %v != F1 %v", sol.Quality, sol.Breakdown[MatchQEFName])
	}
}

func TestSolveDeterminism(t *testing.T) {
	e, _ := testEngine(t, 30)
	p := smallProblem()
	a, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Set.Equal(b.Set) || a.Quality != b.Quality {
		t.Error("same problem+seed gave different solutions")
	}
	p2 := smallProblem()
	p2.Seed = 77
	c, err := e.Solve(&p2)
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may or may not differ; just must not error
}

func TestSolveWithAllOptimizers(t *testing.T) {
	e, _ := testEngine(t, 30)
	for _, name := range []string{"tabu", "sls", "anneal", "pso", "greedy"} {
		opt, _ := search.ByName(name)
		p := smallProblem()
		p.Optimizer = opt
		p.MaxEvals = 800
		sol, err := e.Solve(&p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sol.Feasible {
			t.Errorf("%s: infeasible on an easy universe", name)
		}
	}
}

func TestMatchCacheConsistency(t *testing.T) {
	// Solving twice reuses the cache; results must match a fresh engine.
	cfg := synth.QuickConfig(25)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := New(u)
	if err != nil {
		t.Fatal(err)
	}
	p := smallProblem()
	warm1, err := e1.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := e1.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(u)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := e2.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	if warm1.Quality != cold.Quality || warm2.Quality != cold.Quality {
		t.Errorf("cache changed results: %v / %v / %v", warm1.Quality, warm2.Quality, cold.Quality)
	}
}

func TestEngineAccessors(t *testing.T) {
	e, _ := testEngine(t, 20)
	if e.Universe() == nil || e.Context() == nil {
		t.Error("nil accessors")
	}
	if e.VocabularySize() == 0 {
		t.Error("no vocabulary interned")
	}
}

func TestSessionIterativeFlow(t *testing.T) {
	e, _ := testEngine(t, 40)
	s := NewSession(e, smallProblem())
	if s.Last() != nil {
		t.Error("Last before any solve should be nil")
	}
	sol1, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.History()) != 1 || s.Last() != sol1 {
		t.Error("history bookkeeping wrong")
	}
	// Feedback: pin the first GA of the output.
	if err := s.PinGAFromSolution(0); err != nil {
		t.Fatal(err)
	}
	sol2, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	pinned := &model.MediatedSchema{GAs: s.Problem().Constraints.GAs}
	if sol2.Schema == nil || !sol2.Schema.Subsumes(pinned) {
		t.Error("iteration 2 does not honor the pinned GA")
	}
	if len(s.History()) != 2 {
		t.Error("history length wrong")
	}
	// History snapshots are isolated from later edits.
	if len(s.History()[0].Problem.Constraints.GAs) != 0 {
		t.Error("history snapshot mutated by later feedback")
	}
}

func TestSessionSourceFeedback(t *testing.T) {
	e, truth := testEngine(t, 40)
	s := NewSession(e, smallProblem())
	id := truth.Unperturbed[5]
	if err := s.RequireSource(id); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireSource(id); err != nil {
		t.Fatal("re-requiring must be idempotent")
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Set.Has(id) {
		t.Error("required source missing")
	}
	// Conflicting exclusion is rejected and rolled back.
	if err := s.ExcludeSource(id); err == nil {
		t.Error("excluding a required source should fail")
	}
	if _, err := s.Solve(); err != nil {
		t.Fatalf("session corrupted by rejected exclusion: %v", err)
	}
	// Exclude another source; it disappears.
	other := (id + 1) % 40
	if err := s.ExcludeSource(other); err != nil {
		t.Fatal(err)
	}
	sol, err = s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Set.Has(other) {
		t.Error("excluded source selected")
	}
	// Drop feedback.
	s.DropSourceConstraint(id)
	s.DropExclusion(other)
	if len(s.Problem().Constraints.Sources) != 0 || len(s.Problem().Constraints.Exclude) != 0 {
		t.Error("drops did not apply")
	}
	if err := s.RequireSource(400); err == nil {
		t.Error("out-of-range require should fail")
	}
	if err := s.ExcludeSource(-1); err == nil {
		t.Error("out-of-range exclude should fail")
	}
}

func TestSessionSetWeight(t *testing.T) {
	e, _ := testEngine(t, 20)
	s := NewSession(e, smallProblem())
	if err := s.SetWeight("card", 0.6); err != nil {
		t.Fatal(err)
	}
	w := s.Problem().Weights
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v after SetWeight", sum)
	}
	if w["card"] != 0.6 {
		t.Errorf("card weight = %v", w["card"])
	}
	// Ratios among the others preserved: match was 0.25, coverage 0.2.
	if math.Abs(w[MatchQEFName]/w["coverage"]-0.25/0.2) > 1e-9 {
		t.Errorf("relative weights distorted: %v", w)
	}
	// Solving still works.
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWeight("card", 1.5); err == nil {
		t.Error("out-of-range weight accepted")
	}
	if err := s.SetWeight("nope", 0.5); err == nil {
		t.Error("unknown QEF accepted")
	}
	// Setting a weight to 1 zeroes the rest.
	if err := s.SetWeight("card", 1); err != nil {
		t.Fatal(err)
	}
	w = s.Problem().Weights
	if w["card"] != 1 || w[MatchQEFName] != 0 {
		t.Errorf("weights after card=1: %v", w)
	}
	// And moving back from the all-zero rest splits evenly.
	if err := s.SetWeight("card", 0.5); err != nil {
		t.Fatal(err)
	}
	w = s.Problem().Weights
	if math.Abs(w[MatchQEFName]-0.125) > 1e-9 {
		t.Errorf("even split after degenerate rest: %v", w)
	}
}

func TestSessionPinGAValidation(t *testing.T) {
	e, _ := testEngine(t, 20)
	s := NewSession(e, smallProblem())
	if err := s.PinGA(model.GA{}); err == nil {
		t.Error("empty GA accepted")
	}
	bad := model.NewGA(model.AttrRef{Source: 0, Attr: 99})
	if err := s.PinGA(bad); err == nil {
		t.Error("dangling GA ref accepted")
	}
	if err := s.PinGAFromSolution(0); err == nil {
		t.Error("pin-from-solution before solving should fail")
	}
	good := model.NewGA(model.AttrRef{Source: 0, Attr: 0}, model.AttrRef{Source: 1, Attr: 0})
	if err := s.PinGA(good); err != nil {
		t.Fatal(err)
	}
	// Overlapping pin rejected (attribute already constrained).
	overlap := model.NewGA(model.AttrRef{Source: 0, Attr: 0}, model.AttrRef{Source: 2, Attr: 0})
	if err := s.PinGA(overlap); err == nil {
		t.Error("overlapping GA constraint accepted")
	}
	if err := s.UnpinGA(0); err != nil {
		t.Fatal(err)
	}
	if err := s.UnpinGA(5); err == nil {
		t.Error("out-of-range unpin accepted")
	}
}

func TestSessionAddCharacteristicQEF(t *testing.T) {
	cfg := synth.QuickConfig(20)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Add a latency characteristic to every source.
	for i := range u.Sources {
		u.Sources[i].Characteristics["latency"] = float64(10 + i)
	}
	e, err := New(u)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(e, smallProblem())
	if err := s.AddCharacteristicQEF("latency", qef.Mean{}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCharacteristicQEF("latency", qef.Mean{}); err == nil {
		t.Error("duplicate characteristic accepted")
	}
	if err := s.AddCharacteristicQEF("nope", qef.Mean{}); err == nil {
		t.Error("undefined characteristic accepted")
	}
	if err := s.AddCharacteristicQEF("mttf", nil); err == nil {
		t.Error("nil aggregator accepted")
	}
	// New QEF starts at weight 0; reweight and solve.
	if err := s.SetWeight("latency", 0.2); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sol.Breakdown["latency"]; !ok {
		t.Error("latency QEF missing from breakdown")
	}
}

func TestSessionSetters(t *testing.T) {
	e, _ := testEngine(t, 20)
	s := NewSession(e, smallProblem())
	s.SetMaxSources(5)
	s.SetTheta(0.8)
	s.SetBeta(3)
	opt, _ := search.ByName("greedy")
	s.SetOptimizer(opt)
	p := s.Problem()
	if p.MaxSources != 5 || p.Theta != 0.8 || p.Beta != 3 || p.Optimizer == nil {
		t.Errorf("setters did not apply: %+v", p)
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Sources) > 5 {
		t.Error("m not applied")
	}
	if s.Engine() != e {
		t.Error("Engine accessor wrong")
	}
}

func TestSessionWarmStartsFromLastSolution(t *testing.T) {
	e, _ := testEngine(t, 30)
	s := NewSession(e, smallProblem())
	first, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	hist := s.History()
	if len(hist[0].Problem.InitialSources) != 0 {
		t.Error("first iteration should start cold")
	}
	if len(hist[1].Problem.InitialSources) == 0 {
		t.Fatal("second iteration should warm-start")
	}
	want := model.NewSourceSetOf(30, first.Sources...)
	got := model.NewSourceSetOf(30, hist[1].Problem.InitialSources...)
	if !want.Equal(got) {
		t.Errorf("warm start %v differs from previous solution %v", got.Elements(), want.Elements())
	}
}

func TestEngineWithoutMatchCache(t *testing.T) {
	cfg := synth.QuickConfig(25)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := New(u)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := New(u, WithoutMatchCache())
	if err != nil {
		t.Fatal(err)
	}
	p := smallProblem()
	a, err := cached.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := uncached.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Quality != b.Quality || !a.Set.Equal(b.Set) {
		t.Errorf("memoization changed results: %.6f vs %.6f", a.Quality, b.Quality)
	}
}

// preferenceQEF is a caller-defined quality dimension standing in for a
// subjective user preference (§1: solutions "will likely depend as well on
// the subjective preferences of the user").
type preferenceQEF struct{}

func (preferenceQEF) Name() string { return "preference" }
func (q preferenceQEF) Eval(ctx *qef.Context, S *model.SourceSet) float64 {
	// A deliberately simple preference: reward even source IDs.
	even := 0
	S.ForEach(func(id int) {
		if id%2 == 0 {
			even++
		}
	})
	if S.Len() == 0 {
		return 0
	}
	return float64(even) / float64(S.Len())
}

func TestExtraQEFs(t *testing.T) {
	e, _ := testEngine(t, 30)
	p := smallProblem()
	p.ExtraQEFs = []qef.QEF{preferenceQEF{}}
	p.Weights = qef.Weights{
		MatchQEFName: 0.1, "card": 0.1, "coverage": 0.1, "redundancy": 0.1,
		"mttf": 0.1, "preference": 0.5,
	}
	sol, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sol.Breakdown["preference"]; !ok {
		t.Fatal("custom QEF missing from breakdown")
	}
	// Weighted at 0.5, the even-ID preference should dominate selection.
	even := 0
	for _, id := range sol.Sources {
		if id%2 == 0 {
			even++
		}
	}
	if even < len(sol.Sources)-1 {
		t.Errorf("custom QEF not steering selection: %v", sol.Sources)
	}

	// Errors: nil and duplicate names.
	p.ExtraQEFs = []qef.QEF{nil}
	if _, err := e.Solve(&p); err == nil {
		t.Error("nil extra QEF accepted")
	}
	p.ExtraQEFs = []qef.QEF{qef.Card{}}
	if _, err := e.Solve(&p); err == nil {
		t.Error("duplicate QEF name accepted")
	}
}

func TestSessionAddQEF(t *testing.T) {
	e, _ := testEngine(t, 30)
	s := NewSession(e, smallProblem())
	if err := s.AddQEF(preferenceQEF{}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddQEF(preferenceQEF{}); err == nil {
		t.Error("duplicate AddQEF accepted")
	}
	if err := s.AddQEF(nil); err == nil {
		t.Error("nil AddQEF accepted")
	}
	if err := s.AddQEF(qef.Card{}); err == nil {
		t.Error("reserved name accepted")
	}
	if err := s.SetWeight("preference", 0.3); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sol.Breakdown["preference"]; !ok {
		t.Error("session custom QEF missing from breakdown")
	}
}

func TestDiffSolutions(t *testing.T) {
	e, _ := testEngine(t, 40)
	s := NewSession(e, smallProblem())
	if s.DiffLast() != nil {
		t.Error("DiffLast before two solves should be nil")
	}
	a, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Identical solve (same seed forced): diff against itself.
	self := DiffSolutions(a, a)
	if !self.Unchanged() || self.QualityDelta != 0 {
		t.Errorf("self diff not empty: %+v", self)
	}
	// Exclude a chosen source and re-solve: the diff must show it gone.
	victim := a.Sources[0]
	if err := s.ExcludeSource(victim); err != nil {
		t.Fatal(err)
	}
	b, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	d := s.DiffLast()
	if d == nil {
		t.Fatal("DiffLast nil after two solves")
	}
	removed := false
	for _, id := range d.RemovedSources {
		if id == victim {
			removed = true
		}
	}
	if !removed {
		t.Errorf("excluded source %d not in RemovedSources %v", victim, d.RemovedSources)
	}
	if got := DiffSolutions(a, b).QualityDelta; got != b.Quality-a.Quality {
		t.Errorf("quality delta %v", got)
	}
	// Nil schemas are tolerated.
	aCopy := *a
	aCopy.Schema = nil
	d2 := DiffSolutions(&aCopy, b)
	if len(d2.LostGAs) != 0 || len(d2.NewGAs) == 0 {
		t.Errorf("nil-schema diff wrong: %+v", d2)
	}
}

func TestParallelSolveDeterministicAndEquivalent(t *testing.T) {
	e, _ := testEngine(t, 40)
	mk := func(workers int) Problem {
		p := smallProblem()
		p.MaxEvals = 100000 // ample: no mid-batch budget truncation
		p.Workers = workers
		return p
	}
	p1 := mk(1)
	seq, err := e.Solve(&p1)
	if err != nil {
		t.Fatal(err)
	}
	p4 := mk(4)
	par1, err := e.Solve(&p4)
	if err != nil {
		t.Fatal(err)
	}
	par2, err := e.Solve(&p4)
	if err != nil {
		t.Fatal(err)
	}
	if !par1.Set.Equal(par2.Set) || par1.Quality != par2.Quality {
		t.Fatal("parallel solve not deterministic across runs")
	}
	if !seq.Set.Equal(par1.Set) || seq.Quality != par1.Quality {
		t.Errorf("parallel solve differs from sequential: %v/%.6f vs %v/%.6f",
			par1.Sources, par1.Quality, seq.Sources, seq.Quality)
	}
}

func TestMatchCacheInvalidatedOnParameterChange(t *testing.T) {
	// Two solves with different θ must not share cached F1 values. With
	// a very high θ the matcher finds only exact-duplicate clusters, so
	// the match quality of the final solution differs from a low-θ run;
	// before cache stamping, the second search was silently guided by
	// the first solve's scores.
	e, _ := testEngine(t, 30)
	lo := smallProblem()
	lo.Theta = 0.4
	a, err := e.Solve(&lo)
	if err != nil {
		t.Fatal(err)
	}
	hi := smallProblem()
	hi.Theta = 0.95
	b, err := e.Solve(&hi)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh engines solving the same problems are the ground truth.
	e2, _ := testEngine(t, 30)
	_ = a
	bFresh, err := e2.Solve(&hi)
	if err != nil {
		t.Fatal(err)
	}
	if b.Quality != bFresh.Quality || !b.Set.Equal(bFresh.Set) {
		t.Errorf("stale cache leaked across θ change: %.6f vs fresh %.6f", b.Quality, bFresh.Quality)
	}
	// Same for constraint changes.
	con := smallProblem()
	con.Constraints.Sources = []int{2}
	c1, err := e.Solve(&con)
	if err != nil {
		t.Fatal(err)
	}
	e3, _ := testEngine(t, 30)
	c2, err := e3.Solve(&con)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Quality != c2.Quality || !c1.Set.Equal(c2.Set) {
		t.Errorf("stale cache leaked across constraint change")
	}
}
