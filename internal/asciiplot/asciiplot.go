// Package asciiplot renders small multi-series line charts as text, so the
// ube-bench command can draw the paper's figures directly in the terminal
// next to their tables.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	// Y holds one value per shared X position.
	Y []float64
}

// Plot is one chart.
type Plot struct {
	// Title is printed above the canvas.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// X holds the shared x-axis values.
	X []float64
	// Series are the lines; each must have len(Y) == len(X).
	Series []Series
	// Width and Height are the canvas size in characters (default 56×14).
	Width, Height int
}

// markers distinguish series on the shared canvas.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the plot. It returns an error on inconsistent dimensions.
func (p *Plot) Render() (string, error) {
	if len(p.X) < 2 {
		return "", fmt.Errorf("asciiplot: need at least 2 x positions, got %d", len(p.X))
	}
	if len(p.Series) == 0 {
		return "", fmt.Errorf("asciiplot: no series")
	}
	for _, s := range p.Series {
		if len(s.Y) != len(p.X) {
			return "", fmt.Errorf("asciiplot: series %q has %d points for %d x positions", s.Name, len(s.Y), len(p.X))
		}
	}
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 56
	}
	if h <= 0 {
		h = 14
	}

	xmin, xmax := minMax(p.X)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		lo, hi := minMax(s.Y)
		ymin, ymax = math.Min(ymin, lo), math.Max(ymax, hi)
	}
	//ube:float-exact degenerate-range sentinel: only a literally flat series needs the widening
	if ymax == ymin {
		ymax = ymin + 1 // flat series still render
	}
	//ube:float-exact degenerate-range sentinel
	if xmax == xmin {
		return "", fmt.Errorf("asciiplot: degenerate x range")
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		mark := markers[si%len(markers)]
		for i := range p.X {
			col := int(math.Round((p.X[i] - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((s.Y[i]-ymin)/(ymax-ymin)*float64(h-1)))
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yTop, yBot := formatTick(ymax), formatTick(ymin)
	labelW := max(len(yTop), len(yBot))
	for r, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = pad(yTop, labelW)
		case h - 1:
			label = pad(yBot, labelW)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	xLo, xHi := formatTick(xmin), formatTick(xmax)
	gap := w - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLo, strings.Repeat(" ", gap), xHi)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", labelW), p.XLabel, p.YLabel)
	}
	legend := make([]string, len(p.Series))
	for i, s := range p.Series {
		legend[i] = fmt.Sprintf("%c %s", markers[i%len(markers)], s.Name)
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", labelW), strings.Join(legend, "   "))
	return b.String(), nil
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	return lo, hi
}

// formatTick renders an axis extreme compactly.
func formatTick(v float64) string {
	switch {
	//ube:float-exact integrality test: only exactly integral ticks may drop their decimals
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}
