package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	p := &Plot{
		Title:  "Figure X",
		XLabel: "m",
		YLabel: "seconds",
		X:      []float64{10, 20, 30, 40, 50},
		Series: []Series{
			{Name: "none", Y: []float64{0.2, 1.1, 3.4, 7.3, 16.2}},
			{Name: "5src", Y: []float64{0.1, 0.9, 2.8, 7.5, 12.5}},
		},
	}
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure X", "* none", "o 5src", "x: m, y: seconds", "10", "50"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both markers appear on the canvas.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers missing:\n%s", out)
	}
	// Canvas has the default height plus decorations.
	if lines := strings.Count(out, "\n"); lines < 14 {
		t.Errorf("only %d lines:\n%s", lines, out)
	}
}

func TestRenderMonotoneShape(t *testing.T) {
	// A strictly increasing series must place its last marker above its
	// first: find the rows of the extreme columns.
	p := &Plot{
		X:      []float64{0, 1, 2, 3},
		Series: []Series{{Name: "up", Y: []float64{0, 1, 2, 3}}},
		Width:  20, Height: 8,
	}
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, line := range lines {
		if idx := strings.IndexByte(line, '*'); idx >= 0 {
			if lastRow == -1 {
				lastRow = i // topmost marker = highest value
			}
			firstRow = i // bottommost marker = lowest value
		}
	}
	if lastRow >= firstRow {
		t.Errorf("increasing series not rendered ascending (top %d, bottom %d):\n%s", lastRow, firstRow, out)
	}
}

func TestRenderFlatSeries(t *testing.T) {
	p := &Plot{
		X:      []float64{1, 2, 3},
		Series: []Series{{Name: "flat", Y: []float64{5, 5, 5}}},
	}
	if _, err := p.Render(); err != nil {
		t.Errorf("flat series should render: %v", err)
	}
}

func TestRenderErrors(t *testing.T) {
	cases := []*Plot{
		{X: []float64{1}, Series: []Series{{Name: "a", Y: []float64{1}}}},
		{X: []float64{1, 2}},
		{X: []float64{1, 2}, Series: []Series{{Name: "a", Y: []float64{1}}}},
		{X: []float64{2, 2}, Series: []Series{{Name: "a", Y: []float64{1, 2}}}},
	}
	for i, p := range cases {
		if _, err := p.Render(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestManySeriesMarkersCycle(t *testing.T) {
	var series []Series
	for i := 0; i < 10; i++ {
		series = append(series, Series{Name: string(rune('a' + i)), Y: []float64{float64(i), float64(i + 1)}})
	}
	p := &Plot{X: []float64{0, 1}, Series: series}
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "j") {
		t.Errorf("legend incomplete:\n%s", out)
	}
}
