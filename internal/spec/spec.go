// Package spec defines the JSON exchange format for µBE problems and
// solutions, used by the ube-solve command and any caller that drives µBE
// from configuration rather than code. A ProblemSpec is the declarative
// form of engine.Problem (optimizers and aggregators referenced by name);
// a SolutionDoc is a self-describing rendering of engine.Solution with
// names resolved, suitable for downstream tools.
package spec

import (
	"fmt"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/qef"
	"ube/internal/search"
)

// ProblemSpec is the JSON form of one µBE iteration's problem.
type ProblemSpec struct {
	// MaxSources is m. Required.
	MaxSources int `json:"maxSources"`
	// Theta and Beta default to the paper's 0.65 and 2 when omitted.
	Theta float64 `json:"theta,omitempty"`
	Beta  int     `json:"beta,omitempty"`
	// Constraints uses the model JSON forms (source IDs, GA attribute
	// references, exclusions).
	Constraints model.Constraints `json:"constraints,omitempty"`
	// Weights maps QEF names to weights; they must cover "match", the
	// data QEFs and every configured characteristic, and sum to 1.
	// Omitted entirely, they default to the paper's weights when the
	// characteristics are exactly {"mttf"}; otherwise they are required.
	Weights map[string]float64 `json:"weights,omitempty"`
	// Characteristics maps characteristic names to aggregator names
	// ("wsum", "mean", "min", "max").
	Characteristics map[string]string `json:"characteristics,omitempty"`
	// Optimizer is one of "tabu", "sls", "anneal", "pso", "greedy";
	// empty means tabu.
	Optimizer string `json:"optimizer,omitempty"`
	// Seed, MaxEvals and Workers tune the solver.
	Seed     int64 `json:"seed,omitempty"`
	MaxEvals int   `json:"maxEvals,omitempty"`
	Workers  int   `json:"workers,omitempty"`
	// InitialSources optionally warm-starts the solver.
	InitialSources []int `json:"initialSources,omitempty"`
}

// Build resolves the spec into an engine problem.
func (s *ProblemSpec) Build() (engine.Problem, error) {
	p := engine.DefaultProblem()
	if s.MaxSources < 1 {
		return p, fmt.Errorf("spec: maxSources %d < 1", s.MaxSources)
	}
	p.MaxSources = s.MaxSources
	//ube:float-exact zero is the JSON "field unset" sentinel; any explicit θ, however small, must win
	if s.Theta != 0 {
		p.Theta = s.Theta
	}
	if s.Beta != 0 {
		p.Beta = s.Beta
	}
	p.Constraints = *s.Constraints.Clone()
	p.Seed = s.Seed
	p.MaxEvals = s.MaxEvals
	p.Workers = s.Workers
	p.InitialSources = append([]int(nil), s.InitialSources...)

	if s.Characteristics != nil {
		p.Characteristics = make(map[string]qef.Aggregator, len(s.Characteristics))
		for char, aggName := range s.Characteristics {
			agg, ok := qef.AggregatorByName(aggName)
			if !ok {
				return p, fmt.Errorf("spec: unknown aggregator %q for characteristic %q", aggName, char)
			}
			p.Characteristics[char] = agg
		}
	}
	if s.Weights != nil {
		p.Weights = make(qef.Weights, len(s.Weights))
		for k, v := range s.Weights {
			p.Weights[k] = v
		}
		if s.Characteristics == nil {
			// The weights define which QEFs exist: drop default
			// characteristics (the paper's MTTF) the spec does not
			// weight.
			for char := range p.Characteristics {
				if _, ok := s.Weights[char]; !ok {
					delete(p.Characteristics, char)
				}
			}
		}
	}
	if s.Optimizer != "" {
		opt, ok := search.ByName(s.Optimizer)
		if !ok {
			return p, fmt.Errorf("spec: unknown optimizer %q", s.Optimizer)
		}
		p.Optimizer = opt
	}
	return p, nil
}

// SolutionDoc is the JSON rendering of a solution.
type SolutionDoc struct {
	Quality   float64            `json:"quality"`
	Feasible  bool               `json:"feasible"`
	Breakdown map[string]float64 `json:"breakdown"`
	Evals     int                `json:"evals"`
	ElapsedMS float64            `json:"elapsedMs"`
	Sources   []SourceDoc        `json:"sources"`
	Schema    []GADoc            `json:"schema"`
}

// SourceDoc describes one chosen source.
type SourceDoc struct {
	ID          int    `json:"id"`
	Name        string `json:"name"`
	Cardinality int64  `json:"cardinality"`
}

// GADoc describes one GA with attribute names resolved.
type GADoc struct {
	Quality        float64  `json:"quality"`
	FromConstraint bool     `json:"fromConstraint,omitempty"`
	Attributes     []GAAttr `json:"attributes"`
}

// GAAttr is one attribute of a GA.
type GAAttr struct {
	Source     int    `json:"source"`
	SourceName string `json:"sourceName"`
	Attr       int    `json:"attr"`
	Name       string `json:"name"`
}

// Render builds the JSON document for a solution over its universe.
func Render(u *model.Universe, sol *engine.Solution) *SolutionDoc {
	doc := &SolutionDoc{
		Quality:   sol.Quality,
		Feasible:  sol.Feasible,
		Breakdown: sol.Breakdown,
		Evals:     sol.Evals,
		ElapsedMS: float64(sol.Elapsed.Microseconds()) / 1000,
	}
	for _, id := range sol.Sources {
		src := u.Source(id)
		doc.Sources = append(doc.Sources, SourceDoc{
			ID: id, Name: src.Name, Cardinality: src.Cardinality,
		})
	}
	if sol.Schema != nil {
		for i, g := range sol.Schema.GAs {
			ga := GADoc{}
			if sol.Match.GAQuality != nil {
				ga.Quality = sol.Match.GAQuality[i]
			}
			if sol.Match.FromConstraint != nil {
				ga.FromConstraint = sol.Match.FromConstraint[i]
			}
			for _, r := range g {
				ga.Attributes = append(ga.Attributes, GAAttr{
					Source:     r.Source,
					SourceName: u.Source(r.Source).Name,
					Attr:       r.Attr,
					Name:       u.AttrName(r),
				})
			}
			doc.Schema = append(doc.Schema, ga)
		}
	}
	return doc
}
