package spec

import (
	"encoding/json"
	"testing"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/synth"
)

func TestBuildDefaults(t *testing.T) {
	s := ProblemSpec{MaxSources: 10}
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxSources != 10 || p.Theta != 0.65 || p.Beta != 2 {
		t.Errorf("defaults wrong: %+v", p)
	}
	if p.Optimizer != nil {
		t.Error("optimizer should default to nil (tabu)")
	}
	if _, ok := p.Characteristics["mttf"]; !ok {
		t.Error("paper default characteristics should survive an empty spec")
	}
}

func TestBuildFull(t *testing.T) {
	raw := `{
		"maxSources": 8,
		"theta": 0.8,
		"beta": 3,
		"constraints": {"sources": [1,2], "gas": [[{"source":1,"attr":0},{"source":2,"attr":0}]], "exclude": [9]},
		"weights": {"match": 0.5, "card": 0.3, "coverage": 0.1, "redundancy": 0.05, "latency": 0.05},
		"characteristics": {"latency": "min"},
		"optimizer": "greedy",
		"seed": 7,
		"maxEvals": 1234,
		"initialSources": [1,2,3]
	}`
	var s ProblemSpec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxSources != 8 || p.Theta != 0.8 || p.Beta != 3 || p.Seed != 7 || p.MaxEvals != 1234 {
		t.Errorf("scalars wrong: %+v", p)
	}
	if len(p.Constraints.Sources) != 2 || len(p.Constraints.GAs) != 1 || len(p.Constraints.Exclude) != 1 {
		t.Errorf("constraints wrong: %+v", p.Constraints)
	}
	if !p.Constraints.GAs[0].Valid() {
		t.Error("GA constraint did not round-trip as valid")
	}
	if p.Optimizer == nil || p.Optimizer.Name() != "greedy" {
		t.Error("optimizer not resolved")
	}
	if len(p.Characteristics) != 1 || p.Characteristics["latency"].Name() != "min" {
		t.Errorf("characteristics wrong: %v", p.Characteristics)
	}
	if p.Weights["match"] != 0.5 {
		t.Errorf("weights wrong: %v", p.Weights)
	}
	if len(p.InitialSources) != 3 {
		t.Errorf("initial sources wrong: %v", p.InitialSources)
	}
}

func TestBuildWeightsDropDefaultCharacteristics(t *testing.T) {
	s := ProblemSpec{
		MaxSources: 5,
		Weights:    map[string]float64{"match": 0.4, "card": 0.3, "coverage": 0.2, "redundancy": 0.1},
	}
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Characteristics) != 0 {
		t.Errorf("unweighted default characteristics should be dropped: %v", p.Characteristics)
	}
}

func TestBuildErrors(t *testing.T) {
	bad := []ProblemSpec{
		{MaxSources: 0},
		{MaxSources: 5, Optimizer: "genetic"},
		{MaxSources: 5, Characteristics: map[string]string{"mttf": "median"}},
	}
	for i, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRenderAndSolveRoundTrip(t *testing.T) {
	cfg := synth.QuickConfig(30)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(u)
	if err != nil {
		t.Fatal(err)
	}
	s := ProblemSpec{MaxSources: 6, MaxEvals: 800, Seed: 3}
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	doc := Render(u, sol)
	if doc.Quality != sol.Quality || doc.Feasible != sol.Feasible {
		t.Error("doc scalars wrong")
	}
	if len(doc.Sources) != len(sol.Sources) {
		t.Errorf("doc has %d sources for %d chosen", len(doc.Sources), len(sol.Sources))
	}
	for i, sd := range doc.Sources {
		if sd.Name != u.Source(sol.Sources[i]).Name {
			t.Errorf("source %d name mismatch", i)
		}
	}
	if len(doc.Schema) != len(sol.Schema.GAs) {
		t.Errorf("doc has %d GAs for %d in schema", len(doc.Schema), len(sol.Schema.GAs))
	}
	for i, ga := range doc.Schema {
		for j, a := range ga.Attributes {
			ref := sol.Schema.GAs[i][j]
			if a.Name != u.AttrName(ref) || a.Source != ref.Source {
				t.Errorf("GA %d attr %d resolved wrong", i, j)
			}
		}
	}
	// The document is valid JSON and round-trips.
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back SolutionDoc
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Quality != doc.Quality || len(back.Schema) != len(doc.Schema) {
		t.Error("JSON round trip lost data")
	}
}

func TestRenderInfeasible(t *testing.T) {
	u := &model.Universe{Sources: []model.Source{
		{ID: 0, Name: "a", Attributes: []string{"x"}, Cardinality: 1},
	}}
	e, err := engine.New(u)
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultProblem()
	p.MaxSources = 1
	p.Characteristics = nil
	p.Weights = map[string]float64{"match": 0.5, "card": 0.2, "coverage": 0.2, "redundancy": 0.1}
	p.Constraints.Sources = []int{0} // source 0's attr matches nothing
	p.MaxEvals = 50
	sol, err := e.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	doc := Render(u, sol)
	if doc.Feasible {
		t.Error("single unmatched source with C={0} should be infeasible")
	}
	if len(doc.Schema) != 0 {
		t.Errorf("infeasible doc should have no schema, got %d GAs", len(doc.Schema))
	}
}
