package repl

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"ube/internal/engine"
	"ube/internal/synth"
)

// newREPL builds a REPL over a small synthetic session, returning the
// output buffer.
func newREPL(t *testing.T) (*REPL, *strings.Builder) {
	t.Helper()
	cfg := synth.QuickConfig(30)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(u)
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultProblem()
	p.MaxSources = 6
	p.MaxEvals = 400
	var out strings.Builder
	r := New(engine.NewSession(e, p), &out)
	r.Prompt = "" // keep test output clean
	return r, &out
}

// run feeds a script and returns all output.
func run(t *testing.T, script string) string {
	t.Helper()
	r, out := newREPL(t)
	if err := r.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestSolveAndShow(t *testing.T) {
	out := run(t, "solve\nshow\nquit\n")
	if c := strings.Count(out, "mediated schema"); c != 2 {
		t.Errorf("expected two schema printouts, got %d:\n%s", c, out)
	}
	if !strings.Contains(out, "quality") || !strings.Contains(out, "sources (") {
		t.Errorf("solution printout incomplete:\n%s", out)
	}
}

func TestShowBeforeSolve(t *testing.T) {
	out := run(t, "show\nquit\n")
	if !strings.Contains(out, "error: nothing solved yet") {
		t.Errorf("missing error:\n%s", out)
	}
}

func TestWeightsFlow(t *testing.T) {
	out := run(t, "weights\nweight card 0.6\nquit\n")
	if !strings.Contains(out, "card") || !strings.Contains(out, "0.600") {
		t.Errorf("weight update not reflected:\n%s", out)
	}
	out = run(t, "weight card 2\nquit\n")
	if !strings.Contains(out, "error:") {
		t.Errorf("invalid weight accepted:\n%s", out)
	}
	out = run(t, "weight\nquit\n")
	if !strings.Contains(out, "usage: weight") {
		t.Errorf("missing usage:\n%s", out)
	}
}

func TestParameterCommands(t *testing.T) {
	r, out := newREPL(t)
	script := "m 4\ntheta 0.8\nbeta 3\noptimizer greedy\nsolve\nquit\n"
	if err := r.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	p := rSession(r).Problem()
	if p.MaxSources != 4 || p.Theta != 0.8 || p.Beta != 3 {
		t.Errorf("parameters not applied: %+v", p)
	}
	if p.Optimizer == nil || p.Optimizer.Name() != "greedy" {
		t.Error("optimizer not applied")
	}
	sol := rSession(r).Last()
	if sol == nil || len(sol.Sources) > 4 {
		t.Errorf("solve ignored m: %+v", sol)
	}
	_ = out
}

// rSession exposes the session for assertions.
func rSession(r *REPL) *engine.Session { return r.sess }

func TestConstraintCommands(t *testing.T) {
	r, out := newREPL(t)
	script := strings.Join([]string{
		"require 3",
		"exclude 9",
		"constraints",
		"solve",
		"unrequire 3",
		"unexclude 9",
		"constraints",
		"quit",
	}, "\n") + "\n"
	if err := r.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "required sources: [3]") {
		t.Errorf("require not shown:\n%s", text)
	}
	if !strings.Contains(text, "excluded sources: [9]") {
		t.Errorf("exclude not shown:\n%s", text)
	}
	if !strings.Contains(text, "required sources: []") {
		t.Errorf("unrequire not shown:\n%s", text)
	}
	sol := rSession(r).Last()
	if !sol.Set.Has(3) || sol.Set.Has(9) {
		t.Errorf("constraints not enforced in solve: %v", sol.Sources)
	}
}

func TestPinFlow(t *testing.T) {
	r, out := newREPL(t)
	script := "solve\npin 0\nconstraints\nsolve\nunpin 0\nquit\n"
	if err := r.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "pinned") {
		t.Errorf("pin not confirmed:\n%s", text)
	}
	if !strings.Contains(text, "GA constraint 0:") {
		t.Errorf("constraint not listed:\n%s", text)
	}
	// After the second solve the schema subsumes the pin: a * marker
	// appears.
	if !strings.Contains(text, "*") {
		t.Errorf("pinned GA marker missing:\n%s", text)
	}
	if len(rSession(r).Problem().Constraints.GAs) != 0 {
		t.Error("unpin did not apply")
	}
}

func TestPinAttrs(t *testing.T) {
	out := run(t, "pin-attrs 0:0 1:0\nconstraints\nquit\n")
	if !strings.Contains(out, "pinned; attributes will share a GA") {
		t.Errorf("pin-attrs failed:\n%s", out)
	}
	if !strings.Contains(out, "GA constraint 0:") {
		t.Errorf("constraint missing:\n%s", out)
	}
	// Malformed forms error out.
	for _, bad := range []string{"pin-attrs 0:0\n", "pin-attrs a:b c:d\n", "pin-attrs 00 11\n"} {
		out := run(t, bad+"quit\n")
		if !strings.Contains(out, "error:") && !strings.Contains(out, "usage:") {
			t.Errorf("bad pin-attrs %q accepted:\n%s", bad, out)
		}
	}
}

func TestBrowseCommands(t *testing.T) {
	out := run(t, "sources 3\nsource 0\nquit\n")
	if !strings.Contains(out, "[  0]") || !strings.Contains(out, "... 27 more") {
		t.Errorf("sources listing wrong:\n%s", out)
	}
	if !strings.Contains(out, "cardinality:") || !strings.Contains(out, "mttf:") {
		t.Errorf("source detail wrong:\n%s", out)
	}
	out = run(t, "source 99\nquit\n")
	if !strings.Contains(out, "error:") {
		t.Errorf("out-of-range source accepted:\n%s", out)
	}
}

func TestHistoryCommand(t *testing.T) {
	out := run(t, "solve\nm 4\nsolve\nhistory\nquit\n")
	if !strings.Contains(out, "#0:") || !strings.Contains(out, "#1:") {
		t.Errorf("history incomplete:\n%s", out)
	}
	if !strings.Contains(out, "m=4") {
		t.Errorf("history misses parameter change:\n%s", out)
	}
}

func TestUnknownAndHelp(t *testing.T) {
	out := run(t, "frobnicate\nhelp\nquit\n")
	if !strings.Contains(out, `unknown command "frobnicate"`) {
		t.Errorf("unknown command not reported:\n%s", out)
	}
	if !strings.Contains(out, "pin <ga-index>") {
		t.Errorf("help incomplete:\n%s", out)
	}
}

func TestEOFTerminates(t *testing.T) {
	r, _ := newREPL(t)
	if err := r.Run(strings.NewReader("solve\n")); err != nil {
		t.Fatalf("EOF should end the loop cleanly: %v", err)
	}
}

func TestBlankLinesIgnored(t *testing.T) {
	out := run(t, "\n\n  \nweights\nquit\n")
	if strings.Contains(out, "error:") {
		t.Errorf("blank lines caused errors:\n%s", out)
	}
}

func TestSaveCommand(t *testing.T) {
	r, out := newREPL(t)
	path := t.TempDir() + "/sol.json"
	script := "save " + path + "\nsolve\nsave " + path + "\nquit\n"
	if err := r.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "error: nothing solved yet") {
		t.Errorf("save before solve should error:\n%s", text)
	}
	if !strings.Contains(text, "wrote "+path) {
		t.Errorf("save confirmation missing:\n%s", text)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("saved file is not JSON: %v", err)
	}
	if _, ok := doc["quality"]; !ok {
		t.Errorf("saved doc incomplete: %v", doc)
	}
}

func TestDiffCommand(t *testing.T) {
	out := run(t, "diff\nsolve\nm 4\nsolve\ndiff\nquit\n")
	if !strings.Contains(out, "error: need at least two solved iterations") {
		t.Errorf("premature diff not rejected:\n%s", out)
	}
	if !strings.Contains(out, "quality") {
		t.Errorf("diff output incomplete:\n%s", out)
	}
	// Shrinking m from 6 to 4 must remove sources.
	if !strings.Contains(out, "removed sources:") {
		t.Errorf("diff misses removed sources:\n%s", out)
	}
}
