// Package repl implements the interactive µBE command loop — the terminal
// counterpart of the paper's GUI (Figure 4). The ube command wires it to
// stdin/stdout; tests drive it with buffers.
//
// The command set mirrors the §6 interaction model: solve, inspect the
// chosen sources and mediated schema, promote output GAs to constraints,
// pin or exclude sources, reweight QEFs, and solve again.
package repl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/search"
	"ube/internal/spec"
)

// REPL drives one session over a reader/writer pair.
type REPL struct {
	sess *engine.Session
	out  io.Writer
	// Prompt is printed before each command; empty disables it.
	Prompt string
}

// New returns a REPL over the session writing to out.
func New(sess *engine.Session, out io.Writer) *REPL {
	return &REPL{sess: sess, out: out, Prompt: "ube> "}
}

// Run reads commands from in until EOF or "quit".
func (r *REPL) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	for {
		if r.Prompt != "" {
			fmt.Fprint(r.out, r.Prompt)
		}
		if !sc.Scan() {
			fmt.Fprintln(r.out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		args := strings.Fields(line)
		if args[0] == "quit" || args[0] == "exit" {
			return nil
		}
		if err := r.Dispatch(args); err != nil {
			fmt.Fprintln(r.out, "error:", err)
		}
	}
}

// Dispatch executes one parsed command line.
func (r *REPL) Dispatch(args []string) error {
	if len(args) == 0 {
		return nil
	}
	cmd, rest := args[0], args[1:]
	s := r.sess
	switch cmd {
	case "help":
		r.help()
	case "solve":
		sol, err := s.Solve()
		if err != nil {
			return err
		}
		r.printSolution(sol)
	case "show":
		if s.Last() == nil {
			return fmt.Errorf("nothing solved yet; run \"solve\"")
		}
		r.printSolution(s.Last())
	case "weights":
		r.printWeights()
	case "weight":
		if len(rest) != 2 {
			return fmt.Errorf("usage: weight <qef> <value>")
		}
		w, err := strconv.ParseFloat(rest[1], 64)
		if err != nil {
			return err
		}
		if err := s.SetWeight(rest[0], w); err != nil {
			return err
		}
		r.printWeights()
	case "m":
		n, err := atoi(rest, "m <count>")
		if err != nil {
			return err
		}
		s.SetMaxSources(n)
	case "theta":
		if len(rest) != 1 {
			return fmt.Errorf("usage: theta <0..1>")
		}
		v, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			return err
		}
		s.SetTheta(v)
	case "beta":
		n, err := atoi(rest, "beta <count>")
		if err != nil {
			return err
		}
		s.SetBeta(n)
	case "optimizer":
		if len(rest) != 1 {
			return fmt.Errorf("usage: optimizer <tabu|sls|anneal|pso|greedy>")
		}
		opt, ok := search.ByName(rest[0])
		if !ok {
			return fmt.Errorf("unknown optimizer %q", rest[0])
		}
		s.SetOptimizer(opt)
	case "require":
		id, err := atoi(rest, "require <source-id>")
		if err != nil {
			return err
		}
		return s.RequireSource(id)
	case "unrequire":
		id, err := atoi(rest, "unrequire <source-id>")
		if err != nil {
			return err
		}
		s.DropSourceConstraint(id)
	case "exclude":
		id, err := atoi(rest, "exclude <source-id>")
		if err != nil {
			return err
		}
		return s.ExcludeSource(id)
	case "unexclude":
		id, err := atoi(rest, "unexclude <source-id>")
		if err != nil {
			return err
		}
		s.DropExclusion(id)
	case "pin":
		i, err := atoi(rest, "pin <ga-index>")
		if err != nil {
			return err
		}
		if err := s.PinGAFromSolution(i); err != nil {
			return err
		}
		fmt.Fprintln(r.out, "pinned; it will be part of every future schema")
	case "pin-attrs":
		return r.pinAttrs(rest)
	case "unpin":
		i, err := atoi(rest, "unpin <constraint-index>")
		if err != nil {
			return err
		}
		return s.UnpinGA(i)
	case "constraints":
		r.printConstraints()
	case "sources":
		r.printSources(rest)
	case "source":
		id, err := atoi(rest, "source <source-id>")
		if err != nil {
			return err
		}
		return r.printSource(id)
	case "save":
		if len(rest) != 1 {
			return fmt.Errorf("usage: save <file.json>")
		}
		return r.save(rest[0])
	case "diff":
		d := s.DiffLast()
		if d == nil {
			return fmt.Errorf("need at least two solved iterations")
		}
		r.printDiff(d)
	case "history":
		for i, it := range s.History() {
			fmt.Fprintf(r.out, "#%d: m=%d |C|=%d |G|=%d → Q=%.4f, %d sources, %d GAs, %v\n",
				i, it.Problem.MaxSources, len(it.Problem.Constraints.Sources),
				len(it.Problem.Constraints.GAs), it.Solution.Quality,
				len(it.Solution.Sources), gaCount(it.Solution), it.Solution.Elapsed.Round(1000000))
		}
	default:
		return fmt.Errorf("unknown command %q; try \"help\"", cmd)
	}
	return nil
}

// printDiff shows what moved between the last two iterations.
func (r *REPL) printDiff(d *engine.Diff) {
	u := r.sess.Engine().Universe()
	if d.Unchanged() {
		fmt.Fprintln(r.out, "no changes between the last two iterations")
		return
	}
	fmt.Fprintf(r.out, "quality %+.4f\n", d.QualityDelta)
	if len(d.AddedSources) > 0 {
		fmt.Fprintf(r.out, "added sources:   %v\n", d.AddedSources)
	}
	if len(d.RemovedSources) > 0 {
		fmt.Fprintf(r.out, "removed sources: %v\n", d.RemovedSources)
	}
	for _, g := range d.NewGAs {
		parts := make([]string, len(g))
		for j, ref := range g {
			parts[j] = fmt.Sprintf("%d:%s", ref.Source, u.AttrName(ref))
		}
		fmt.Fprintf(r.out, "new GA:  {%s}\n", strings.Join(parts, ", "))
	}
	for _, g := range d.LostGAs {
		parts := make([]string, len(g))
		for j, ref := range g {
			parts[j] = fmt.Sprintf("%d:%s", ref.Source, u.AttrName(ref))
		}
		fmt.Fprintf(r.out, "lost GA: {%s}\n", strings.Join(parts, ", "))
	}
}

// save writes the last solution as JSON.
func (r *REPL) save(path string) error {
	last := r.sess.Last()
	if last == nil {
		return fmt.Errorf("nothing solved yet; run \"solve\"")
	}
	doc := spec.Render(r.sess.Engine().Universe(), last)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "wrote %s\n", path)
	return nil
}

func gaCount(sol *engine.Solution) int {
	if sol.Schema == nil {
		return 0
	}
	return len(sol.Schema.GAs)
}

func atoi(rest []string, usage string) (int, error) {
	if len(rest) != 1 {
		return 0, fmt.Errorf("usage: %s", usage)
	}
	return strconv.Atoi(rest[0])
}

// pinAttrs parses "pin-attrs src:attr src:attr ..." into a GA constraint.
func (r *REPL) pinAttrs(rest []string) error {
	if len(rest) < 2 {
		return fmt.Errorf("usage: pin-attrs <src:attr> <src:attr> [...]")
	}
	refs := make([]model.AttrRef, 0, len(rest))
	for _, tok := range rest {
		parts := strings.SplitN(tok, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad attribute %q; want src:attr", tok)
		}
		src, err1 := strconv.Atoi(parts[0])
		attr, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad attribute %q; want src:attr", tok)
		}
		refs = append(refs, model.AttrRef{Source: src, Attr: attr})
	}
	if err := r.sess.PinGA(model.NewGA(refs...)); err != nil {
		return err
	}
	fmt.Fprintln(r.out, "pinned; attributes will share a GA in every future schema")
	return nil
}

func (r *REPL) printSolution(sol *engine.Solution) {
	u := r.sess.Engine().Universe()
	fmt.Fprintf(r.out, "quality %.4f (feasible=%v, %d evals, %v)\n",
		sol.Quality, sol.Feasible, sol.Evals, sol.Elapsed.Round(1000000))
	names := make([]string, 0, len(sol.Breakdown))
	for n := range sol.Breakdown {
		names = append(names, n)
	}
	sort.Strings(names)
	weights := r.sess.Problem().Weights
	for _, n := range names {
		fmt.Fprintf(r.out, "  %-12s %.4f (weight %.2f)\n", n, sol.Breakdown[n], weights[n])
	}
	fmt.Fprintf(r.out, "sources (%d):\n", len(sol.Sources))
	for _, id := range sol.Sources {
		src := u.Source(id)
		fmt.Fprintf(r.out, "  [%3d] %-16s card=%-8d attrs=%s\n", id, src.Name, src.Cardinality,
			strings.Join(src.Attributes, ", "))
	}
	if sol.Schema == nil {
		fmt.Fprintln(r.out, "no mediated schema (infeasible)")
		return
	}
	fmt.Fprintf(r.out, "mediated schema (%d GAs):\n", len(sol.Schema.GAs))
	for i, g := range sol.Schema.GAs {
		parts := make([]string, len(g))
		for j, ref := range g {
			parts[j] = fmt.Sprintf("%d:%s", ref.Source, u.AttrName(ref))
		}
		marker := " "
		if sol.Match.FromConstraint != nil && sol.Match.FromConstraint[i] {
			marker = "*"
		}
		fmt.Fprintf(r.out, "  GA %-2d%s q=%.2f  {%s}\n", i, marker, sol.Match.GAQuality[i], strings.Join(parts, ", "))
	}
}

func (r *REPL) printWeights() {
	w := r.sess.Problem().Weights
	names := make([]string, 0, len(w))
	for n := range w {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(r.out, "  %-12s %.3f\n", n, w[n])
	}
}

func (r *REPL) printConstraints() {
	c := r.sess.Problem().Constraints
	u := r.sess.Engine().Universe()
	fmt.Fprintf(r.out, "required sources: %v\n", c.Sources)
	fmt.Fprintf(r.out, "excluded sources: %v\n", c.Exclude)
	for i, g := range c.GAs {
		parts := make([]string, len(g))
		for j, ref := range g {
			parts[j] = fmt.Sprintf("%d:%s", ref.Source, u.AttrName(ref))
		}
		fmt.Fprintf(r.out, "GA constraint %d: {%s}\n", i, strings.Join(parts, ", "))
	}
}

func (r *REPL) printSources(rest []string) {
	u := r.sess.Engine().Universe()
	limit := 20
	if len(rest) == 1 {
		if n, err := strconv.Atoi(rest[0]); err == nil {
			limit = n
		}
	}
	for i := 0; i < u.N() && i < limit; i++ {
		src := u.Source(i)
		fmt.Fprintf(r.out, "  [%3d] %-16s card=%-8d attrs=%s\n", i, src.Name, src.Cardinality,
			strings.Join(src.Attributes, ", "))
	}
	if u.N() > limit {
		fmt.Fprintf(r.out, "  ... %d more (use \"sources <n>\")\n", u.N()-limit)
	}
}

func (r *REPL) printSource(id int) error {
	u := r.sess.Engine().Universe()
	if id < 0 || id >= u.N() {
		return fmt.Errorf("source %d out of range [0,%d)", id, u.N())
	}
	src := u.Source(id)
	fmt.Fprintf(r.out, "[%d] %s\n  cardinality: %d\n  cooperative: %v\n", id, src.Name, src.Cardinality, src.Cooperative())
	chars := make([]string, 0, len(src.Characteristics))
	for name := range src.Characteristics {
		chars = append(chars, name)
	}
	sort.Strings(chars)
	for _, name := range chars {
		fmt.Fprintf(r.out, "  %s: %.2f\n", name, src.Characteristics[name])
	}
	for i, a := range src.Attributes {
		fmt.Fprintf(r.out, "  attr %d: %s\n", i, a)
	}
	return nil
}

func (r *REPL) help() {
	fmt.Fprint(r.out, `commands:
  solve                      run the optimizer on the current problem
  show                       re-print the last solution
  weights                    show QEF weights
  weight <qef> <v>           set one weight (others rescale to keep sum 1)
  m <n> | theta <v> | beta <n>   change problem parameters
  optimizer <name>           tabu | sls | anneal | pso | greedy
  require/unrequire <id>     pin or unpin a source
  exclude/unexclude <id>     forbid or re-allow a source
  pin <ga-index>             promote a GA of the last solution to a constraint
  pin-attrs <s:a> <s:a> ...  pin specific attributes into one GA
  unpin <index>              remove a GA constraint
  constraints                show current constraints
  save <file.json>           write the last solution as JSON
  sources [n] | source <id>  browse the universe
  diff                       what changed between the last two iterations
  history                    summary of past iterations
  quit
`)
}
