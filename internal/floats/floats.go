// Package floats holds the shared epsilon comparison helpers. The
// incremental evaluation pipeline (qef.DeltaEval) reproduces the full
// pipeline only up to floating-point reassociation, so bare == / != on
// floats is a latent divergence between the two; ube-lint's floateq check
// bans it outside tests, and comparisons route through these helpers
// instead. Sites where bit-exact comparison is the point (sort
// comparators, zero-weight skips that must stay in lockstep across
// pipelines, cache keys) stay on == with a //ube:float-exact annotation.
package floats

import "math"

// Eps is the default comparison tolerance. Solve qualities live in [0,1]
// and delta-vs-full reassociation error is ≪1e-12, so 1e-9 cleanly
// separates "same value computed two ways" from "different value".
const Eps = 1e-9

// EqTol reports whether a and b agree within tol, scaled by the larger
// magnitude (but never below 1, so values near zero compare absolutely).
func EqTol(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Eq is EqTol at the default tolerance.
func Eq(a, b float64) bool { return EqTol(a, b, Eps) }

// Zero reports whether x is within Eps of zero.
func Zero(x float64) bool { return math.Abs(x) <= Eps }
