package floats

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{0, 1e-12, true},
		{0, 1e-6, false},
		{1e6, 1e6 + 1e-4, true}, // relative scaling at large magnitude
		{1e6, 1e6 + 10, false},
		{-1, 1, false},
		{math.Inf(1), math.Inf(1), false}, // Inf-Inf is NaN; never "equal"
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(1e-12) || !Zero(-1e-12) {
		t.Error("tiny values should be Zero")
	}
	if Zero(1e-6) || Zero(-1) || Zero(math.NaN()) {
		t.Error("non-tiny values should not be Zero")
	}
}

func TestEqTol(t *testing.T) {
	if !EqTol(1, 1.05, 0.1) {
		t.Error("EqTol should accept within explicit tolerance")
	}
	if EqTol(1, 1.2, 0.1) {
		t.Error("EqTol should reject outside explicit tolerance")
	}
}
