package compound

import (
	"reflect"
	"testing"

	"ube/internal/cluster"
	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/strsim"
)

// nameUniverse builds the canonical n:m scenario: source 0 splits the
// person name into two attributes, source 1 stores it whole.
func nameUniverse() *model.Universe {
	return &model.Universe{Sources: []model.Source{
		{ID: 0, Name: "split", Cardinality: 10,
			Attributes: []string{"first name", "last name", "isbn"}},
		{ID: 1, Name: "whole", Cardinality: 10,
			Attributes: []string{"full name", "isbn"}},
	}}
}

func TestApplyFusesAttributes(t *testing.T) {
	u := nameUniverse()
	derived, m, err := Apply(u, []Composite{
		{Source: 0, Attrs: []int{0, 1}, Name: "full name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Source 0: isbn stays, composite appended.
	if got := derived.Sources[0].Attributes; !reflect.DeepEqual(got, []string{"isbn", "full name"}) {
		t.Fatalf("derived schema 0 = %v", got)
	}
	// Source 1 untouched.
	if got := derived.Sources[1].Attributes; !reflect.DeepEqual(got, []string{"full name", "isbn"}) {
		t.Fatalf("derived schema 1 = %v", got)
	}
	// Expansion: the fused attr maps back to both originals.
	fused := model.AttrRef{Source: 0, Attr: 1}
	want := []model.AttrRef{{Source: 0, Attr: 0}, {Source: 0, Attr: 1}}
	if got := m.Expand(fused); !reflect.DeepEqual(got, want) {
		t.Errorf("Expand(fused) = %v, want %v", got, want)
	}
	// Plain attrs map to themselves.
	if got := m.Expand(model.AttrRef{Source: 0, Attr: 0}); !reflect.DeepEqual(got, []model.AttrRef{{Source: 0, Attr: 2}}) {
		t.Errorf("Expand(plain isbn) = %v", got)
	}
	// The original universe is untouched.
	if len(u.Sources[0].Attributes) != 3 {
		t.Error("Apply mutated the original universe")
	}
}

func TestApplyDefaultName(t *testing.T) {
	u := nameUniverse()
	derived, _, err := Apply(u, []Composite{{Source: 0, Attrs: []int{1, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	// Members are canonicalized by index order before joining.
	if got := derived.Sources[0].Attributes[1]; got != "first name last name" {
		t.Errorf("default fused name = %q", got)
	}
}

func TestApplyValidation(t *testing.T) {
	u := nameUniverse()
	bad := [][]Composite{
		{{Source: 9, Attrs: []int{0, 1}}},                                  // source out of range
		{{Source: 0, Attrs: []int{0}}},                                     // single attribute
		{{Source: 0, Attrs: []int{0, 7}}},                                  // attr out of range
		{{Source: 0, Attrs: []int{0, 0}}},                                  // duplicate member
		{{Source: 0, Attrs: []int{0, 1}}, {Source: 0, Attrs: []int{1, 2}}}, // overlap
	}
	for i, comps := range bad {
		if _, _, err := Apply(u, comps); err == nil {
			t.Errorf("bad composites %d accepted", i)
		}
	}
	// No composites at all is legal: identity transform.
	derived, m, err := Apply(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if derived.NumAttributes() != u.NumAttributes() {
		t.Error("identity transform changed the universe")
	}
	if got := m.Expand(model.AttrRef{Source: 1, Attr: 1}); got[0] != (model.AttrRef{Source: 1, Attr: 1}) {
		t.Error("identity expansion wrong")
	}
}

func TestExpandPanicsOnForeignRef(t *testing.T) {
	u := nameUniverse()
	_, m, err := Apply(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Expand on a foreign ref should panic")
		}
	}()
	m.Expand(model.AttrRef{Source: 5, Attr: 5})
}

func TestEndToEndNMMatch(t *testing.T) {
	// The full §2.1 workflow: declare the composite with the
	// counterpart's label, match the derived universe 1:1, expand back
	// to an n:m correspondence.
	u := nameUniverse()
	derived, mapping, err := Apply(u, []Composite{
		{Source: 0, Attrs: []int{0, 1}, Name: "full name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{Theta: 0.65, Beta: 2, Sim: strsim.NewCache(nil)}
	res := cluster.Match(derived, []int{0, 1}, nil, nil, cfg)
	if !res.Valid || len(res.Schema.GAs) != 2 {
		t.Fatalf("derived match: %+v", res)
	}
	matches := mapping.ExpandSchema(res.Schema)
	var nameMatch, isbnMatch *NMMatch
	for i := range matches {
		total := 0
		for _, grp := range matches[i].Groups {
			total += len(grp)
		}
		if total == 3 {
			nameMatch = &matches[i]
		} else {
			isbnMatch = &matches[i]
		}
	}
	if nameMatch == nil || isbnMatch == nil {
		t.Fatalf("expected a 2:1 and a 1:1 match, got %+v", matches)
	}
	// The 2:1 match pairs {first name, last name} with {full name}.
	sizes := []int{len(nameMatch.Groups[0]), len(nameMatch.Groups[1])}
	if !(sizes[0] == 2 && sizes[1] == 1 || sizes[0] == 1 && sizes[1] == 2) {
		t.Errorf("n:m group sizes = %v, want {2,1}", sizes)
	}
	// And the 1:1 match is isbn=isbn over original refs.
	for _, grp := range isbnMatch.Groups {
		if len(grp) != 1 || u.AttrName(grp[0]) != "isbn" {
			t.Errorf("isbn match wrong: %v", isbnMatch.Groups)
		}
	}
	// Without the composite, the split attributes cannot match at all.
	plain := cluster.Match(u, []int{0, 1}, nil, nil, cfg)
	for _, g := range plain.Schema.GAs {
		if g.Contains(model.AttrRef{Source: 0, Attr: 0}) || g.Contains(model.AttrRef{Source: 0, Attr: 1}) {
			t.Error("premise broken: split name matched without the composite")
		}
	}
}

func TestFusedSignatures(t *testing.T) {
	mk := func(lo, hi int) *pcsa.Sketch {
		s := pcsa.MustNew(64, 3)
		for v := lo; v < hi; v++ {
			s.AddUint64(uint64(v))
		}
		return s
	}
	u := &model.Universe{Sources: []model.Source{
		{ID: 0, Name: "a", Cardinality: 1,
			Attributes:     []string{"x", "y", "z"},
			AttrSignatures: []*pcsa.Sketch{mk(0, 500), mk(500, 1000), mk(2000, 2500)}},
	}}
	derived, _, err := Apply(u, []Composite{{Source: 0, Attrs: []int{0, 1}, Name: "xy"}})
	if err != nil {
		t.Fatal(err)
	}
	d := derived.Sources[0]
	if len(d.AttrSignatures) != len(d.Attributes) {
		t.Fatalf("derived signatures misaligned: %d vs %d", len(d.AttrSignatures), len(d.Attributes))
	}
	// The fused signature estimates the union of both value ranges.
	fusedIdx := -1
	for i, n := range d.Attributes {
		if n == "xy" {
			fusedIdx = i
		}
	}
	if fusedIdx < 0 {
		t.Fatalf("fused attribute missing: %v", d.Attributes)
	}
	est := d.AttrSignatures[fusedIdx].Estimate()
	if est < 800 || est > 1200 {
		t.Errorf("fused signature estimates %.0f, want ≈1000", est)
	}
}
