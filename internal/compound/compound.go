// Package compound implements the n:m matching extension sketched in the
// paper's §2.1: "our formulation may be extended to accommodate compound
// schema elements by replacing the attributes in our definitions with
// compound elements (e.g., elements consisting of sets of attributes).
// This would enable us to handle matching with n:m cardinality by mapping
// n:m matches to 1:1 matches on compound elements."
//
// The user declares composites — sets of attributes of one source that
// jointly express a single concept, such as {first name, last name} — and
// Apply derives a universe in which each composite is fused into one
// attribute (optionally under a user-chosen label, which is how the
// lexical gap to "full name" is bridged). µBE then runs unchanged on the
// derived universe, and Mapping expands the resulting 1:1 GAs back into
// n:m correspondences over the original attributes.
package compound

import (
	"fmt"
	"sort"
	"strings"

	"ube/internal/model"
	"ube/internal/pcsa"
)

// A Composite declares that a set of attributes of one source express one
// concept jointly.
type Composite struct {
	// Source is the owning source's ID.
	Source int
	// Attrs are the member attribute indices (at least two).
	Attrs []int
	// Name optionally labels the fused element; empty means the member
	// names joined with spaces. Choosing the label the counterpart
	// sources use ("full name") is how users bridge n:m gaps lexically.
	Name string
}

// Mapping translates between the derived universe and the original one.
type Mapping struct {
	expand map[model.AttrRef][]model.AttrRef
}

// Apply fuses the declared composites into a derived universe. The
// original universe is not modified. Composites must reference existing
// attributes, contain at least two, and not overlap within a source.
func Apply(u *model.Universe, comps []Composite) (*model.Universe, *Mapping, error) {
	bySource := make(map[int][]Composite)
	used := make(map[model.AttrRef]bool)
	for i, c := range comps {
		if c.Source < 0 || c.Source >= u.N() {
			return nil, nil, fmt.Errorf("compound: composite %d: source %d out of range", i, c.Source)
		}
		if len(c.Attrs) < 2 {
			return nil, nil, fmt.Errorf("compound: composite %d: needs at least two attributes", i)
		}
		seen := make(map[int]bool, len(c.Attrs))
		for _, a := range c.Attrs {
			ref := model.AttrRef{Source: c.Source, Attr: a}
			if !u.ValidRef(ref) {
				return nil, nil, fmt.Errorf("compound: composite %d: attribute %d out of range at source %d", i, a, c.Source)
			}
			if seen[a] {
				return nil, nil, fmt.Errorf("compound: composite %d: duplicate attribute %d", i, a)
			}
			seen[a] = true
			if used[ref] {
				return nil, nil, fmt.Errorf("compound: attribute %d of source %d appears in two composites", a, c.Source)
			}
			used[ref] = true
		}
		// Canonical member order keeps derived names deterministic.
		c.Attrs = append([]int(nil), c.Attrs...)
		sort.Ints(c.Attrs)
		bySource[c.Source] = append(bySource[c.Source], c)
	}

	derived := &model.Universe{Sources: make([]model.Source, 0, u.N())}
	m := &Mapping{expand: make(map[model.AttrRef][]model.AttrRef)}
	for id := range u.Sources {
		src := &u.Sources[id]
		d := model.Source{
			ID:              id,
			Name:            src.Name,
			Cardinality:     src.Cardinality,
			Signature:       src.Signature,
			Characteristics: src.Characteristics,
		}
		// Plain attributes first, in original order.
		for a, name := range src.Attributes {
			ref := model.AttrRef{Source: id, Attr: a}
			if used[ref] {
				continue
			}
			dref := model.AttrRef{Source: id, Attr: len(d.Attributes)}
			d.Attributes = append(d.Attributes, name)
			if src.AttrSignatures != nil {
				d.AttrSignatures = append(d.AttrSignatures, src.AttrSignatures[a])
			}
			m.expand[dref] = []model.AttrRef{ref}
		}
		// Then one fused attribute per composite.
		for _, c := range bySource[id] {
			name := c.Name
			if name == "" {
				parts := make([]string, len(c.Attrs))
				for i, a := range c.Attrs {
					parts[i] = src.Attributes[a]
				}
				name = strings.Join(parts, " ")
			}
			dref := model.AttrRef{Source: id, Attr: len(d.Attributes)}
			d.Attributes = append(d.Attributes, name)
			if src.AttrSignatures != nil {
				fused, err := fuseSignatures(src, c.Attrs)
				if err != nil {
					return nil, nil, err
				}
				d.AttrSignatures = append(d.AttrSignatures, fused)
			}
			orig := make([]model.AttrRef, len(c.Attrs))
			for i, a := range c.Attrs {
				orig[i] = model.AttrRef{Source: id, Attr: a}
			}
			m.expand[dref] = orig
		}
		derived.Sources = append(derived.Sources, d)
	}
	if err := derived.Validate(); err != nil {
		return nil, nil, fmt.Errorf("compound: derived universe invalid: %w", err)
	}
	return derived, m, nil
}

// fuseSignatures unions the value signatures of the composite's members:
// the fused element's value set is the union of its parts'.
func fuseSignatures(src *model.Source, attrs []int) (*pcsa.Sketch, error) {
	sigs := make([]*pcsa.Sketch, len(attrs))
	for i, a := range attrs {
		sigs[i] = src.AttrSignatures[a]
	}
	fused, err := pcsa.Union(sigs...)
	if err != nil {
		return nil, fmt.Errorf("compound: fusing signatures: %w", err)
	}
	return fused, nil
}

// Expand maps a derived attribute reference back to the original
// attributes it stands for (a single one for plain attributes). It panics
// on references that are not part of the derived universe.
func (m *Mapping) Expand(ref model.AttrRef) []model.AttrRef {
	orig, ok := m.expand[ref]
	if !ok {
		panic(fmt.Sprintf("compound: %+v is not a derived attribute", ref))
	}
	return orig
}

// An NMMatch is one mediated-schema attribute expanded to the original
// universe: per participating source, the set of original attributes that
// jointly map to it. Groups with more than one attribute are the n-side of
// an n:m match.
type NMMatch struct {
	// Groups holds one attribute group per derived GA member, in GA
	// order.
	Groups [][]model.AttrRef
}

// ExpandGA expands a GA over the derived universe into an n:m match.
func (m *Mapping) ExpandGA(g model.GA) NMMatch {
	nm := NMMatch{Groups: make([][]model.AttrRef, len(g))}
	for i, ref := range g {
		nm.Groups[i] = append([]model.AttrRef(nil), m.Expand(ref)...)
	}
	return nm
}

// ExpandSchema expands every GA of a derived mediated schema.
func (m *Mapping) ExpandSchema(s *model.MediatedSchema) []NMMatch {
	if s == nil {
		return nil
	}
	out := make([]NMMatch, len(s.GAs))
	for i, g := range s.GAs {
		out[i] = m.ExpandGA(g)
	}
	return out
}
