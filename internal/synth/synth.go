package synth

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"ube/internal/model"
	"ube/internal/pcsa"
)

// Config parameterizes workload generation. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Seed drives all randomness: schemas, cardinalities, tuples and
	// characteristics are pure functions of (Config, source ID).
	Seed int64
	// NumSources is the universe size (the paper generates 700 and
	// experiments on prefixes of 100–700).
	NumSources int

	// MinCard and MaxCard bound per-source cardinalities; §7.1 uses
	// 10,000 to 1,000,000 under a Zipf distribution.
	MinCard, MaxCard int64
	// ZipfS is the Zipf skew exponent (> 1).
	ZipfS float64

	// PoolSize is the number of distinct tuples in existence; §7.1 uses
	// 4,000,000, half General and half Specialty.
	PoolSize int
	// SpecialtyShare is the fraction of a specialty source's tuples
	// drawn from the Specialty half ("a small number of tuples from the
	// Specialty pool", §7.1). Even-indexed sources are General-only;
	// odd-indexed sources are specialty sources.
	SpecialtyShare float64

	// MTTFMean and MTTFStd parameterize the mean-time-to-failure
	// characteristic; §7.1 uses a normal distribution with mean 100
	// days and standard deviation 40, truncated at zero.
	MTTFMean, MTTFStd float64

	// PerturbRemove and PerturbReplace are the per-attribute
	// probabilities of the §7.1 schema perturbations; PerturbAddMax is
	// the maximum number of junk attributes added per schema.
	PerturbRemove, PerturbReplace float64
	PerturbAddMax                 int

	// SketchMaps and SketchSeed parameterize the PCSA signatures all
	// sources share. WithSignatures false skips data generation
	// entirely (every source is uncooperative) — useful for tests that
	// only exercise matching.
	SketchMaps     int
	SketchSeed     uint64
	WithSignatures bool

	// Workers bounds the goroutines used for signature generation
	// (0 means GOMAXPROCS). Schemas, cardinalities and characteristics
	// are always derived sequentially so results are identical at any
	// parallelism; only the per-source tuple streams — independent by
	// construction — fan out.
	Workers int

	// WithAttrSignatures additionally gives every attribute a PCSA
	// signature over its value set, enabling the data-based similarity
	// measure (internal/datasim). Attributes of the same ground-truth
	// concept draw AttrValues values from a shared per-concept pool of
	// ValuePool values, so their value overlap is high; different
	// concepts use disjoint pools.
	WithAttrSignatures bool
	AttrValues         int
	ValuePool          int
}

// DefaultConfig returns the paper-scale configuration of §7.1.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		NumSources:     700,
		MinCard:        10_000,
		MaxCard:        1_000_000,
		ZipfS:          1.4,
		PoolSize:       4_000_000,
		SpecialtyShare: 0.05,
		MTTFMean:       100,
		MTTFStd:        40,
		PerturbRemove:  0.1,
		PerturbReplace: 0.1,
		PerturbAddMax:  2,
		SketchMaps:     pcsa.DefaultMaps,
		SketchSeed:     0x5EED,
		WithSignatures: true,
		AttrValues:     1050,
		ValuePool:      1200,
	}
}

// QuickConfig returns a configuration scaled down ~10–100× for smoke runs
// and tests: small cardinalities and pool, few sources.
func QuickConfig(numSources int) Config {
	c := DefaultConfig()
	c.NumSources = numSources
	c.MinCard = 1_000
	c.MaxCard = 20_000
	c.PoolSize = 100_000
	return c
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.NumSources < 1:
		return fmt.Errorf("synth: NumSources = %d", c.NumSources)
	case c.MinCard < 1 || c.MaxCard < c.MinCard:
		return fmt.Errorf("synth: bad cardinality range [%d,%d]", c.MinCard, c.MaxCard)
	case c.PoolSize < 2:
		return fmt.Errorf("synth: PoolSize = %d", c.PoolSize)
	case int64(c.PoolSize)/2 < c.MaxCard:
		return fmt.Errorf("synth: MaxCard %d exceeds half the pool (%d); sources could not be filled with distinct tuples", c.MaxCard, c.PoolSize/2)
	case c.ZipfS <= 1:
		return fmt.Errorf("synth: ZipfS must exceed 1, got %v", c.ZipfS)
	case c.SpecialtyShare < 0 || c.SpecialtyShare > 1:
		return fmt.Errorf("synth: SpecialtyShare = %v", c.SpecialtyShare)
	case c.PerturbRemove < 0 || c.PerturbRemove > 1 || c.PerturbReplace < 0 || c.PerturbReplace > 1:
		return fmt.Errorf("synth: perturbation probabilities out of range")
	case c.PerturbAddMax < 0:
		return fmt.Errorf("synth: PerturbAddMax = %d", c.PerturbAddMax)
	case (c.WithSignatures || c.WithAttrSignatures) && c.SketchMaps < 1:
		return fmt.Errorf("synth: SketchMaps = %d", c.SketchMaps)
	case c.WithAttrSignatures && (c.AttrValues < 1 || c.ValuePool <= c.AttrValues):
		return fmt.Errorf("synth: need 0 < AttrValues (%d) < ValuePool (%d)", c.AttrValues, c.ValuePool)
	}
	return nil
}

// Truth is the generation-time ground truth the evaluation needs (§7.3):
// which concept every attribute expresses and which sources are exact
// (unperturbed) copies of a base schema.
type Truth struct {
	// ConceptOf maps every attribute to a concept ID in [0,NumConcepts)
	// or JunkConcept.
	ConceptOf map[model.AttrRef]int
	// ConceptNames are the canonical concept names by ID.
	ConceptNames []string
	// Unperturbed lists the source IDs whose schema is a verbatim base
	// schema — the paper draws its source constraints from these
	// ("random sources with schemas that are fully conformant to one of
	// the original BAMM schemas").
	Unperturbed []int
}

// Generate builds the universe and its ground truth.
func Generate(cfg Config) (*model.Universe, *Truth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bases := baseSchemas()
	u := &model.Universe{Sources: make([]model.Source, 0, cfg.NumSources)}
	truth := &Truth{
		ConceptOf:    make(map[model.AttrRef]int),
		ConceptNames: ConceptNames(),
	}

	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64((cfg.MaxCard-cfg.MinCard)/1000))

	for id := 0; id < cfg.NumSources; id++ {
		var attrs []string
		base := id % len(bases)
		if id < len(bases) {
			// The first 50 sources are the verbatim repository.
			attrs = append(attrs, bases[base]...)
			truth.Unperturbed = append(truth.Unperturbed, id)
		} else {
			attrs = perturb(bases[base], cfg, rng)
		}
		for a, name := range attrs {
			truth.ConceptOf[model.AttrRef{Source: id, Attr: a}] = ConceptOfName(name)
		}

		card := cfg.MinCard + int64(zipf.Uint64())*1000
		if card > cfg.MaxCard {
			card = cfg.MaxCard
		}
		mttf := rng.NormFloat64()*cfg.MTTFStd + cfg.MTTFMean
		if mttf < 1 {
			mttf = 1
		}
		src := model.Source{
			ID:              id,
			Name:            fmt.Sprintf("books-src-%03d", id),
			Attributes:      attrs,
			Cardinality:     card,
			Characteristics: map[string]float64{"mttf": mttf},
		}
		u.Sources = append(u.Sources, src)
	}

	if cfg.WithSignatures || cfg.WithAttrSignatures {
		buildSignatures(cfg, u)
	}
	if err := u.Validate(); err != nil {
		return nil, nil, fmt.Errorf("synth: generated universe invalid: %w", err)
	}
	return u, truth, nil
}

// buildSignatures computes tuple and attribute-value signatures for every
// source. Each source's streams are pure functions of (seed, source ID),
// so the work fans out across workers with identical results at any
// parallelism.
func buildSignatures(cfg Config, u *model.Universe) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > u.N() {
		workers = u.N()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch *pcsa.DenseSet
			if cfg.WithSignatures {
				scratch = pcsa.NewDenseSet(cfg.PoolSize)
			}
			for {
				id := int(next.Add(1)) - 1
				if id >= u.N() {
					return
				}
				src := &u.Sources[id]
				if cfg.WithSignatures {
					sig := pcsa.MustNew(cfg.SketchMaps, cfg.SketchSeed)
					scratch.Reset()
					streamInto(cfg, id, src.Cardinality, scratch, func(t int) { sig.AddUint64(uint64(t)) })
					src.Signature = sig
				}
				if cfg.WithAttrSignatures {
					src.AttrSignatures = make([]*pcsa.Sketch, len(src.Attributes))
					for a, name := range src.Attributes {
						src.AttrSignatures[a] = attrSignature(cfg, id, a, name)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// perturb applies the §7.1 schema perturbations to a base schema: remove
// attributes, replace attributes with junk words, and add junk words,
// while keeping at least one attribute.
func perturb(base []string, cfg Config, rng *rand.Rand) []string {
	attrs := make([]string, 0, len(base)+cfg.PerturbAddMax)
	for _, a := range base {
		switch x := rng.Float64(); {
		case x < cfg.PerturbRemove:
			// removed
		case x < cfg.PerturbRemove+cfg.PerturbReplace:
			attrs = append(attrs, junkWords[rng.Intn(len(junkWords))])
		default:
			attrs = append(attrs, a)
		}
	}
	if cfg.PerturbAddMax > 0 {
		for i := rng.Intn(cfg.PerturbAddMax + 1); i > 0; i-- {
			attrs = append(attrs, junkWords[rng.Intn(len(junkWords))])
		}
	}
	if len(attrs) == 0 {
		attrs = append(attrs, base[rng.Intn(len(base))])
	}
	return dedupe(attrs)
}

// dedupe removes duplicate names within one schema; a relational query
// interface does not expose the same label twice.
func dedupe(attrs []string) []string {
	seen := make(map[string]bool, len(attrs))
	out := attrs[:0]
	for _, a := range attrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// IsSpecialty reports whether source id draws part of its data from the
// Specialty pool (§7.1 gives specialty data to half the sources).
func IsSpecialty(id int) bool { return id%2 == 1 }

// attrValueSeed decorrelates attribute-value sketches from tuple
// signatures so the two hash families are independent.
const attrValueSeed = 0xA77A

// valueRegion returns the value-pool index an attribute name draws from:
// one pool per concept, one per junk word. Attributes of the same concept
// share a pool, which is what gives them overlapping value sets.
func valueRegion(name string) int {
	if c := ConceptOfName(name); c != JunkConcept {
		return c
	}
	for i, w := range junkWords {
		if w == name {
			return NumConcepts + i
		}
	}
	// Names outside the repository vocabulary (hand-built universes)
	// get a pool of their own, keyed by a stable string hash.
	h := 0
	for _, r := range name {
		h = h*131 + int(r)
	}
	if h < 0 {
		h = -h
	}
	return NumConcepts + len(junkWords) + h%1024
}

// attrSignature builds the value signature for one attribute: AttrValues
// distinct values drawn from the attribute's concept pool, deterministic
// in (seed, source, attr).
func attrSignature(cfg Config, sourceID, attr int, name string) *pcsa.Sketch {
	sig := pcsa.MustNew(cfg.SketchMaps, cfg.SketchSeed^attrValueSeed)
	stride := uint64(sourceID+1)*0x9E3779B97F4A7C15 + uint64(attr+1)*0xC2B2AE3D27D4EB4F
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(stride)))
	base := valueRegion(name) * cfg.ValuePool
	seen := make(map[int]struct{}, cfg.AttrValues)
	for len(seen) < cfg.AttrValues {
		v := base + rng.Intn(cfg.ValuePool)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		sig.AddUint64(uint64(v))
	}
	return sig
}

// StreamTuples replays source id's exact tuple stream — card distinct
// tuple IDs in [0, PoolSize) — into fn. The stream is a pure function of
// (cfg.Seed, id, card), which is how exact ground-truth counting works
// without ever materializing tuples: re-stream into a DenseSet.
func StreamTuples(cfg Config, id int, card int64, fn func(tupleID int)) {
	seen := pcsa.NewDenseSet(cfg.PoolSize)
	streamInto(cfg, id, card, seen, fn)
}

// streamInto is StreamTuples with a caller-provided (reset) scratch set,
// letting Generate reuse one allocation across hundreds of sources.
func streamInto(cfg Config, id int, card int64, seen *pcsa.DenseSet, fn func(tupleID int)) {
	perSource := uint64(id+1) * 0x9E3779B97F4A7C15 // golden-ratio stride
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(perSource)))
	general := cfg.PoolSize / 2
	specialty := cfg.PoolSize - general

	nSpecial := int64(0)
	if IsSpecialty(id) {
		nSpecial = int64(float64(card) * cfg.SpecialtyShare)
	}
	emit := func(lo, span int, want int64) {
		for got := int64(0); got < want; {
			t := lo + rng.Intn(span)
			if seen.Has(t) {
				continue
			}
			seen.Add(t)
			fn(t)
			got++
		}
	}
	emit(general, specialty, nSpecial)
	emit(0, general, card-nSpecial)
}
