package synth

import (
	"fmt"
	"math/rand"

	"ube/internal/model"
)

// ChurnConfig parameterizes a deterministic universe-mutation schedule:
// a sequence of batches in which sources appear, disappear and change
// metadata. The schedule is a pure function of (Config, ChurnConfig), so
// every consumer — the differential suite, ube-load, the churn
// experiment, WAL replay — regenerates the identical mutation stream
// from the two seeds.
type ChurnConfig struct {
	// Seed drives the schedule's randomness, independent of the
	// universe generator's seed.
	Seed int64
	// Steps is the number of mutation batches.
	Steps int
	// BatchMax bounds mutations per batch (1..BatchMax); default 3.
	BatchMax int
	// MinSources floors removals so the universe never shrinks below
	// it; default max(1, initial/2). Callers that solve against the
	// churning universe set it at or above the problem's MaxSources.
	MinSources int
	// MaxSources caps additions; default 2× the initial size.
	MaxSources int
}

func (cc ChurnConfig) withDefaults(n int) (ChurnConfig, error) {
	if cc.Steps < 1 {
		return cc, fmt.Errorf("synth: churn Steps = %d", cc.Steps)
	}
	if cc.BatchMax == 0 {
		cc.BatchMax = 3
	}
	if cc.BatchMax < 1 {
		return cc, fmt.Errorf("synth: churn BatchMax = %d", cc.BatchMax)
	}
	if cc.MinSources == 0 {
		cc.MinSources = n / 2
	}
	if cc.MinSources < 1 {
		cc.MinSources = 1
	}
	if cc.MaxSources == 0 {
		cc.MaxSources = 2 * n
	}
	if cc.MinSources > n || cc.MaxSources < n {
		return cc, fmt.Errorf("synth: churn bounds [%d,%d] exclude the initial size %d", cc.MinSources, cc.MaxSources, n)
	}
	return cc, nil
}

// ChurnSchedule generates the initial universe for cfg plus a
// deterministic mutation schedule over it. Added sources come from the
// same synthesizer, generated past the initial population, so their
// schemas, signatures and characteristics are drawn from the same
// distributions and share signature parameters with the base universe.
// Mutation IDs are relative to the universe state after the preceding
// mutations, matching engine.ApplyChurn's sequential semantics.
//
// The op mix is roughly 40% add / 30% remove / 30% update; adds and
// removes degrade to updates at the size bounds, so every batch is
// non-empty.
func ChurnSchedule(cfg Config, cc ChurnConfig) (*model.Universe, [][]model.Mutation, error) {
	c, err := cc.withDefaults(cfg.NumSources)
	if err != nil {
		return nil, nil, err
	}
	ext := cfg
	ext.NumSources = cfg.NumSources + c.Steps*c.BatchMax
	pool, _, err := Generate(ext)
	if err != nil {
		return nil, nil, err
	}
	u := &model.Universe{Sources: append([]model.Source(nil), pool.Sources[:cfg.NumSources]...)}
	rng := rand.New(rand.NewSource(c.Seed))
	n := cfg.NumSources
	fresh := cfg.NumSources
	batches := make([][]model.Mutation, 0, c.Steps)
	for b := 0; b < c.Steps; b++ {
		k := 1 + rng.Intn(c.BatchMax)
		muts := make([]model.Mutation, 0, k)
		for i := 0; i < k; i++ {
			kind := rng.Intn(10)
			if kind < 4 && (n >= c.MaxSources || fresh >= len(pool.Sources)) {
				kind = 9
			}
			if kind >= 4 && kind < 7 && n <= c.MinSources {
				kind = 9
			}
			switch {
			case kind < 4: // add
				s := pool.Sources[fresh]
				fresh++
				s.ID = 0
				muts = append(muts, model.Mutation{Op: model.OpAdd, Source: s})
				n++
			case kind < 7: // remove
				muts = append(muts, model.Mutation{Op: model.OpRemove, ID: rng.Intn(n)})
				n--
			default: // update
				card := cfg.MinCard + rng.Int63n(cfg.MaxCard-cfg.MinCard+1)
				mttf := cfg.MTTFMean * (0.5 + rng.Float64())
				muts = append(muts, model.Mutation{
					Op:              model.OpUpdate,
					ID:              rng.Intn(n),
					Cardinality:     &card,
					Characteristics: map[string]float64{"mttf": mttf},
				})
			}
		}
		batches = append(batches, muts)
	}
	return u, batches, nil
}
