package synth

import (
	"fmt"
	"math/rand"

	"ube/internal/model"
)

// This file generates "internet-scale" universes for the blocking/sparse
// similarity experiments: tens of thousands of sources over a synthetic
// attribute vocabulary that grows with the universe, with Zipf-distributed
// attribute-name sharing (a few names are everywhere, a long tail appears
// in a handful of sources — the regime where quadratic all-pairs scoring
// dies and a blocking index is required). Sources carry no data
// signatures: at this scale every source is modeled as uncooperative
// (§4), so selection competes on matching, cardinality and
// characteristics.

// LargeConfig parameterizes large-universe generation. Start from
// DefaultLargeConfig.
type LargeConfig struct {
	// Seed drives all randomness; the universe is a pure function of the
	// config.
	Seed int64
	// NumSources is the universe size (10⁴–10⁵ is the intended range).
	NumSources int

	// Concepts is the number of distinct ground-truth concepts in the
	// synthetic vocabulary; 0 derives max(64, NumSources/8), so the
	// vocabulary grows with the universe instead of saturating.
	Concepts int
	// VariantsPerConcept is how many name spellings each concept has
	// (1..5). Same-concept variants share the concept's core word and
	// clear the paper's 3-gram Jaccard θ = 0.65 against it; different
	// concepts have lexically unrelated core words.
	VariantsPerConcept int
	// ZipfS is the skew of concept popularity (> 1): which concepts a
	// source exposes is a Zipf draw, giving the head/tail name sharing.
	ZipfS float64
	// AttrsMin and AttrsMax bound the number of attributes per source.
	AttrsMin, AttrsMax int

	// MinCard and MaxCard bound per-source cardinalities, CardZipfS the
	// Zipf skew of the draw (as in Config).
	MinCard, MaxCard int64
	CardZipfS        float64

	// MTTFMean and MTTFStd parameterize the mean-time-to-failure
	// characteristic (truncated normal, as in Config).
	MTTFMean, MTTFStd float64
}

// DefaultLargeConfig returns the scale-experiment configuration for
// numSources sources: quick-scale cardinalities (the data side is not
// what this workload measures) and a vocabulary of NumSources/8 concepts
// with 4 variants each.
func DefaultLargeConfig(numSources int) LargeConfig {
	return LargeConfig{
		Seed:               1,
		NumSources:         numSources,
		VariantsPerConcept: 4,
		ZipfS:              1.2,
		AttrsMin:           4,
		AttrsMax:           10,
		MinCard:            1_000,
		MaxCard:            20_000,
		CardZipfS:          1.4,
		MTTFMean:           100,
		MTTFStd:            40,
	}
}

// conceptCount resolves the Concepts default.
func (c *LargeConfig) conceptCount() int {
	if c.Concepts > 0 {
		return c.Concepts
	}
	n := c.NumSources / 8
	if n < 64 {
		n = 64
	}
	return n
}

// Validate checks the configuration.
func (c *LargeConfig) Validate() error {
	switch {
	case c.NumSources < 1:
		return fmt.Errorf("synth: NumSources = %d", c.NumSources)
	case c.VariantsPerConcept < 1 || c.VariantsPerConcept > len(variantSuffixes):
		return fmt.Errorf("synth: VariantsPerConcept %d outside [1,%d]", c.VariantsPerConcept, len(variantSuffixes))
	case c.ZipfS <= 1 || c.CardZipfS <= 1:
		return fmt.Errorf("synth: Zipf skews must exceed 1 (got %v, %v)", c.ZipfS, c.CardZipfS)
	case c.AttrsMin < 2 || c.AttrsMax < c.AttrsMin:
		return fmt.Errorf("synth: bad attribute range [%d,%d]", c.AttrsMin, c.AttrsMax)
	case c.MinCard < 1 || c.MaxCard < c.MinCard+1000:
		return fmt.Errorf("synth: bad cardinality range [%d,%d]", c.MinCard, c.MaxCard)
	case c.conceptCount() < c.AttrsMax:
		return fmt.Errorf("synth: %d concepts cannot fill %d attributes", c.conceptCount(), c.AttrsMax)
	}
	return nil
}

// variantSuffixes generate a concept's name variants from its core word.
// Appending at most 5 runes to a 12-rune core keeps every variant's
// 3-gram Jaccard against the bare core ≥ 10/15 ≈ 0.667 > 0.65, so
// same-concept variants cluster at the paper's θ while different
// concepts (disjoint core words) stay far below it.
var variantSuffixes = []string{"", "s", " id", " tag", " code"}

// mix64 is the splitmix64 finalizer, used to decorrelate core-word
// spellings from concept IDs (sequential IDs must not share prefixes, or
// distinct concepts would overlap in 3-gram space).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// coreWords derives n distinct 12-letter core words from the seed. Each
// letter is drawn uniformly from a–z so the 3-gram space is as wide as
// possible (26³ grams): the blocking index's candidate counts are driven
// by gram document frequency, and a narrow alphabet would make every
// gram common and every name everyone's candidate. Collisions (two
// concepts hashing to the same spelling) re-mix deterministically until
// distinct.
func coreWords(n int, seed uint64) []string {
	const wordLen = 12
	words := make([]string, n)
	seen := make(map[string]bool, n)
	buf := make([]byte, wordLen)
	for i := range words {
		for salt := uint64(0); ; salt++ {
			// splitmix64-style stream: seed + i·golden, never XOR (seed^i
			// cancels to zero when i equals the seed, and mix64(0) = 0
			// degenerates the word to 'aaaaaaaa…').
			h := mix64(seed + 0x9E3779B97F4A7C15*uint64(i) + salt<<40)
			for p := range buf {
				if p == 8 {
					// One 64-bit draw holds ~13.6 letters but mixing a
					// second word partway keeps the tail uniform.
					h = mix64(h ^ seed)
				}
				buf[p] = 'a' + byte(h%26)
				h /= 26
			}
			w := string(buf)
			if !seen[w] {
				seen[w] = true
				words[i] = w
				break
			}
		}
	}
	return words
}

// GenerateLarge builds a large universe and its ground truth. Truth has
// no Unperturbed list (there is no base-schema repository at this scale);
// ConceptOf and ConceptNames cover the synthetic vocabulary.
func GenerateLarge(cfg LargeConfig) (*model.Universe, *Truth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	nConcepts := cfg.conceptCount()
	cores := coreWords(nConcepts, uint64(cfg.Seed)*0x9E3779B97F4A7C15)

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipfConcept := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(nConcepts-1))
	zipfCard := rand.NewZipf(rng, cfg.CardZipfS, 1, uint64((cfg.MaxCard-cfg.MinCard)/1000))

	u := &model.Universe{Sources: make([]model.Source, 0, cfg.NumSources)}
	truth := &Truth{
		ConceptOf:    make(map[model.AttrRef]int, cfg.NumSources*(cfg.AttrsMin+cfg.AttrsMax)/2),
		ConceptNames: cores,
	}
	picked := make([]int, 0, cfg.AttrsMax)
	for id := 0; id < cfg.NumSources; id++ {
		k := cfg.AttrsMin + rng.Intn(cfg.AttrsMax-cfg.AttrsMin+1)
		picked = picked[:0]
		for len(picked) < k {
			c := int(zipfConcept.Uint64())
			dup := false
			for _, p := range picked {
				if p == c {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, c)
			}
		}
		attrs := make([]string, k)
		for a, c := range picked {
			// The dominant spelling wins slightly more than half the
			// time; the rest splits evenly across the suffix variants.
			v := 0
			if cfg.VariantsPerConcept > 1 && rng.Float64() >= 0.55 {
				v = 1 + rng.Intn(cfg.VariantsPerConcept-1)
			}
			attrs[a] = cores[c] + variantSuffixes[v]
			truth.ConceptOf[model.AttrRef{Source: id, Attr: a}] = c
		}

		card := cfg.MinCard + int64(zipfCard.Uint64())*1000
		if card > cfg.MaxCard {
			card = cfg.MaxCard
		}
		mttf := rng.NormFloat64()*cfg.MTTFStd + cfg.MTTFMean
		if mttf < 1 {
			mttf = 1
		}
		u.Sources = append(u.Sources, model.Source{
			ID:              id,
			Name:            fmt.Sprintf("large-src-%06d", id),
			Attributes:      attrs,
			Cardinality:     card,
			Characteristics: map[string]float64{"mttf": mttf},
		})
	}
	if err := u.Validate(); err != nil {
		return nil, nil, fmt.Errorf("synth: generated large universe invalid: %w", err)
	}
	return u, truth, nil
}
