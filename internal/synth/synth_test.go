package synth

import (
	"math"
	"math/rand"
	"testing"

	"ube/internal/model"
	"ube/internal/pcsa"
)

func TestBaseSchemas(t *testing.T) {
	schemas := baseSchemas()
	if len(schemas) != 50 {
		t.Fatalf("repository has %d schemas, want 50", len(schemas))
	}
	conceptsSeen := map[int]bool{}
	for i, s := range schemas {
		if len(s) < 2 {
			t.Errorf("schema %d has %d attributes, want ≥2", i, len(s))
		}
		names := map[string]bool{}
		for _, a := range s {
			if names[a] {
				t.Errorf("schema %d repeats attribute %q", i, a)
			}
			names[a] = true
			c := ConceptOfName(a)
			if c == JunkConcept {
				t.Errorf("schema %d contains non-repository name %q", i, a)
			}
			conceptsSeen[c] = true
		}
	}
	// All 14 concepts must be expressed somewhere in the repository —
	// the paper counts exactly 14 distinct concepts in its 50 schemas.
	if len(conceptsSeen) != NumConcepts {
		t.Errorf("repository expresses %d concepts, want %d", len(conceptsSeen), NumConcepts)
	}
	// The repository is a static artifact: identical on every call.
	again := baseSchemas()
	for i := range schemas {
		if len(schemas[i]) != len(again[i]) {
			t.Fatalf("repository not deterministic at schema %d", i)
		}
		for j := range schemas[i] {
			if schemas[i][j] != again[i][j] {
				t.Fatalf("repository not deterministic at schema %d attr %d", i, j)
			}
		}
	}
}

func TestConceptTable(t *testing.T) {
	names := ConceptNames()
	if len(names) != NumConcepts {
		t.Fatalf("%d concept names", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate concept name %q", n)
		}
		seen[n] = true
	}
	// Weights of each concept sum to ~1 and variants are unique globally.
	variantSeen := map[string]bool{}
	for id, c := range concepts {
		if len(c.variants) != len(c.weights) {
			t.Errorf("concept %s: %d variants, %d weights", c.name, len(c.variants), len(c.weights))
		}
		sum := 0.0
		for _, w := range c.weights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("concept %s: weights sum to %v", c.name, sum)
		}
		for _, v := range c.variants {
			if variantSeen[v] {
				t.Errorf("variant %q appears under two concepts", v)
			}
			variantSeen[v] = true
			if ConceptOfName(v) != id {
				t.Errorf("ConceptOfName(%q) = %d, want %d", v, ConceptOfName(v), id)
			}
		}
	}
	if ConceptOfName("voltage") != JunkConcept {
		t.Error("junk word mapped to a concept")
	}
	// Junk words must not collide with repository vocabulary.
	for _, j := range junkWords {
		if variantSeen[j] {
			t.Errorf("junk word %q is also a concept variant", j)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := QuickConfig(20)
	if err := good.Validate(); err != nil {
		t.Fatalf("QuickConfig invalid: %v", err)
	}
	mut := func(f func(*Config)) Config {
		c := QuickConfig(20)
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.NumSources = 0 }),
		mut(func(c *Config) { c.MinCard = 0 }),
		mut(func(c *Config) { c.MaxCard = c.MinCard - 1 }),
		mut(func(c *Config) { c.PoolSize = 1 }),
		mut(func(c *Config) { c.MaxCard = int64(c.PoolSize) }),
		mut(func(c *Config) { c.ZipfS = 1.0 }),
		mut(func(c *Config) { c.SpecialtyShare = 1.5 }),
		mut(func(c *Config) { c.PerturbRemove = -0.1 }),
		mut(func(c *Config) { c.PerturbAddMax = -1 }),
		mut(func(c *Config) { c.SketchMaps = 0 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// SketchMaps is irrelevant without signatures.
	c := QuickConfig(20)
	c.WithSignatures = false
	c.SketchMaps = 0
	if err := c.Validate(); err != nil {
		t.Errorf("signature-free config rejected: %v", err)
	}
}

func TestGenerateBasics(t *testing.T) {
	cfg := QuickConfig(80)
	u, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 80 {
		t.Fatalf("N = %d", u.N())
	}
	// First 50 sources are verbatim base schemas.
	if len(truth.Unperturbed) != 50 {
		t.Errorf("%d unperturbed sources, want 50", len(truth.Unperturbed))
	}
	bases := baseSchemas()
	for _, id := range truth.Unperturbed {
		base := bases[id%len(bases)]
		src := u.Source(id)
		if len(src.Attributes) != len(base) {
			t.Errorf("source %d not verbatim", id)
		}
	}
	for i := range u.Sources {
		s := &u.Sources[i]
		if s.Cardinality < cfg.MinCard || s.Cardinality > cfg.MaxCard {
			t.Errorf("source %d cardinality %d outside [%d,%d]", i, s.Cardinality, cfg.MinCard, cfg.MaxCard)
		}
		if s.Characteristics["mttf"] <= 0 {
			t.Errorf("source %d mttf %v", i, s.Characteristics["mttf"])
		}
		if s.Signature == nil {
			t.Errorf("source %d missing signature", i)
		}
		// Ground truth covers every attribute.
		for a := range s.Attributes {
			if _, ok := truth.ConceptOf[model.AttrRef{Source: i, Attr: a}]; !ok {
				t.Errorf("attr %d/%d missing from ground truth", i, a)
			}
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := QuickConfig(30)
	u1, t1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u2, t2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u1.Sources {
		a, b := &u1.Sources[i], &u2.Sources[i]
		if a.Cardinality != b.Cardinality || len(a.Attributes) != len(b.Attributes) {
			t.Fatalf("source %d differs across runs", i)
		}
		if a.Signature.Estimate() != b.Signature.Estimate() {
			t.Fatalf("source %d signature differs across runs", i)
		}
	}
	if len(t1.ConceptOf) != len(t2.ConceptOf) {
		t.Fatal("ground truth differs across runs")
	}
	// A different seed gives different cardinalities somewhere.
	cfg2 := cfg
	cfg2.Seed = 999
	u3, _, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range u1.Sources {
		if u1.Sources[i].Cardinality != u3.Sources[i].Cardinality {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical cardinalities")
	}
}

func TestSignatureMatchesStream(t *testing.T) {
	// The signature produced by Generate must equal the signature of the
	// replayed stream: StreamTuples is the ground-truth contract.
	cfg := QuickConfig(10)
	u, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 1, 7} {
		src := u.Source(id)
		sig := pcsa.MustNew(cfg.SketchMaps, cfg.SketchSeed)
		n := int64(0)
		StreamTuples(cfg, id, src.Cardinality, func(t int) {
			sig.AddUint64(uint64(t))
			n++
		})
		if n != src.Cardinality {
			t.Errorf("source %d stream emitted %d tuples, want %d", id, n, src.Cardinality)
		}
		if sig.Estimate() != src.Signature.Estimate() {
			t.Errorf("source %d replayed signature differs", id)
		}
	}
}

func TestStreamDistinctAndInRange(t *testing.T) {
	cfg := QuickConfig(10)
	seen := pcsa.NewDenseSet(cfg.PoolSize)
	count := int64(0)
	StreamTuples(cfg, 3, 5000, func(tid int) {
		if tid < 0 || tid >= cfg.PoolSize {
			t.Fatalf("tuple ID %d out of pool", tid)
		}
		count++
	})
	StreamTuples(cfg, 3, 5000, func(tid int) { seen.Add(tid) })
	if count != 5000 || seen.Count() != 5000 {
		t.Errorf("stream emitted %d tuples, %d distinct; want 5000/5000", count, seen.Count())
	}
}

func TestSpecialtySplit(t *testing.T) {
	cfg := QuickConfig(10)
	general := cfg.PoolSize / 2
	// Even source: all tuples from the General pool.
	StreamTuples(cfg, 2, 3000, func(tid int) {
		if tid >= general {
			t.Fatalf("general-only source emitted specialty tuple %d", tid)
		}
	})
	if IsSpecialty(2) || !IsSpecialty(3) {
		t.Error("IsSpecialty parity wrong")
	}
	// Odd source: the configured share from the Specialty pool.
	var spec, tot int64
	StreamTuples(cfg, 3, 3000, func(tid int) {
		tot++
		if tid >= general {
			spec++
		}
	})
	want := int64(float64(3000) * cfg.SpecialtyShare)
	if spec != want {
		t.Errorf("specialty source drew %d specialty tuples, want %d", spec, want)
	}
}

func TestCardinalityDistribution(t *testing.T) {
	// Zipf skew: the majority of sources sit near MinCard, a few are
	// large — the §7.1 shape.
	cfg := QuickConfig(200)
	u, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small, large := 0, 0
	for i := range u.Sources {
		c := u.Sources[i].Cardinality
		if c < cfg.MinCard*3 {
			small++
		}
		if c > cfg.MaxCard/2 {
			large++
		}
	}
	if small < 100 {
		t.Errorf("only %d/200 sources are small; Zipf skew missing", small)
	}
	if large == 0 {
		t.Log("no large sources in this draw (acceptable for Zipf, but unusual)")
	}
}

func TestMTTFDistribution(t *testing.T) {
	cfg := QuickConfig(300)
	u, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := range u.Sources {
		sum += u.Sources[i].Characteristics["mttf"]
	}
	mean := sum / float64(u.N())
	if mean < 85 || mean > 115 {
		t.Errorf("mttf sample mean %v too far from 100", mean)
	}
}

func TestPerturbationProperties(t *testing.T) {
	cfg := QuickConfig(300)
	cfg.WithSignatures = false
	u, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	junk, total := 0, 0
	for ref, c := range truth.ConceptOf {
		total++
		if c == JunkConcept {
			junk++
			name := u.AttrName(ref)
			if ConceptOfName(name) != JunkConcept {
				t.Errorf("truth says junk but %q is a concept variant", name)
			}
		}
	}
	if junk == 0 {
		t.Error("perturbation produced no junk attributes at all")
	}
	if frac := float64(junk) / float64(total); frac > 0.5 {
		t.Errorf("junk fraction %v too high; perturbation should retain domain character", frac)
	}
	// Perturbed sources exist and keep at least one attribute.
	for i := 50; i < u.N(); i++ {
		if len(u.Sources[i].Attributes) == 0 {
			t.Errorf("source %d lost all attributes", i)
		}
	}
}

func TestSourceConstraintsHelper(t *testing.T) {
	cfg := QuickConfig(100)
	cfg.WithSignatures = false
	_, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	cs, err := SourceConstraints(truth, 5, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 5 {
		t.Fatalf("%d constraints", len(cs))
	}
	unpert := map[int]bool{}
	for _, id := range truth.Unperturbed {
		unpert[id] = true
	}
	seen := map[int]bool{}
	for _, id := range cs {
		if !unpert[id] {
			t.Errorf("constraint %d is not an unperturbed source", id)
		}
		if seen[id] {
			t.Errorf("duplicate constraint %d", id)
		}
		seen[id] = true
	}
	// Limit respected.
	cs2, err := SourceConstraints(truth, 3, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range cs2 {
		if id >= 10 {
			t.Errorf("constraint %d beyond limit", id)
		}
	}
	// Impossible request errors.
	if _, err := SourceConstraints(truth, 20, 10, rng); err == nil {
		t.Error("over-demanding constraint request should fail")
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestGAConstraintsHelper(t *testing.T) {
	cfg := QuickConfig(100)
	cfg.WithSignatures = false
	u, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	gas, err := GAConstraints(u, truth, 2, 5, seqInts(100), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(gas) != 2 {
		t.Fatalf("%d GA constraints", len(gas))
	}
	partial := model.MediatedSchema{GAs: gas}
	if !partial.Valid() {
		t.Fatal("GA constraints must form a valid partial schema")
	}
	for _, g := range gas {
		if len(g) < 2 || len(g) > 5 {
			t.Errorf("GA size %d outside [2,5]", len(g))
		}
		// All attributes of one GA share a concept (accurate matching).
		c0 := truth.ConceptOf[g[0]]
		for _, r := range g {
			if truth.ConceptOf[r] != c0 {
				t.Errorf("GA mixes concepts %d and %d", c0, truth.ConceptOf[r])
			}
		}
	}
	// Distinct concepts across GAs.
	if truth.ConceptOf[gas[0][0]] == truth.ConceptOf[gas[1][0]] {
		t.Error("GA constraints share a concept")
	}
	// Over-demanding request errors.
	if _, err := GAConstraints(u, truth, NumConcepts+1, 5, seqInts(100), rng); err == nil {
		t.Error("too many GA constraints should fail")
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := QuickConfig(10)
	cfg.NumSources = 0
	if _, _, err := Generate(cfg); err == nil {
		t.Error("invalid config should fail Generate")
	}
}

func TestAttrSignatures(t *testing.T) {
	cfg := QuickConfig(30)
	cfg.WithSignatures = false
	cfg.WithAttrSignatures = true
	u, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range u.Sources {
		s := &u.Sources[i]
		if len(s.AttrSignatures) != len(s.Attributes) {
			t.Fatalf("source %d: %d attr signatures for %d attributes", i, len(s.AttrSignatures), len(s.Attributes))
		}
		for a, sig := range s.AttrSignatures {
			est := sig.Estimate()
			if est < float64(cfg.AttrValues)*0.7 || est > float64(cfg.AttrValues)*1.3 {
				t.Errorf("source %d attr %d: estimate %.0f far from %d values", i, a, est, cfg.AttrValues)
			}
		}
	}
	// Same-concept attributes overlap heavily; different concepts do not.
	type ref struct{ s, a int }
	byConcept := map[int]ref{}
	var sameJ, diffJ float64
	sameN, diffN := 0, 0
	for r, c := range truth.ConceptOf {
		if c == JunkConcept {
			continue
		}
		if prev, ok := byConcept[c]; ok {
			j := estJaccard(u.Sources[prev.s].AttrSignatures[prev.a], u.Sources[r.Source].AttrSignatures[r.Attr])
			sameJ += j
			sameN++
		} else {
			byConcept[c] = ref{r.Source, r.Attr}
		}
	}
	refs := make([]ref, 0, len(byConcept))
	for _, r := range byConcept {
		refs = append(refs, r)
	}
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			diffJ += estJaccard(u.Sources[refs[i].s].AttrSignatures[refs[i].a], u.Sources[refs[j].s].AttrSignatures[refs[j].a])
			diffN++
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Fatal("degenerate draw")
	}
	sameJ /= float64(sameN)
	diffJ /= float64(diffN)
	if sameJ < 0.6 {
		t.Errorf("same-concept mean value overlap %.2f, want ≥ 0.6", sameJ)
	}
	if diffJ > 0.1 {
		t.Errorf("cross-concept mean value overlap %.2f, want ≈ 0", diffJ)
	}

	// Determinism.
	u2, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if u.Sources[3].AttrSignatures[0].Estimate() != u2.Sources[3].AttrSignatures[0].Estimate() {
		t.Error("attr signatures not deterministic")
	}
}

func estJaccard(a, b *pcsa.Sketch) float64 {
	u, err := pcsa.Union(a, b)
	if err != nil {
		panic(err)
	}
	uu := u.Estimate()
	if uu <= 0 {
		return 0
	}
	inter := a.Estimate() + b.Estimate() - uu
	if inter < 0 {
		inter = 0
	}
	return inter / uu
}

func TestAttrSignatureConfigValidation(t *testing.T) {
	cfg := QuickConfig(10)
	cfg.WithAttrSignatures = true
	cfg.AttrValues = 0
	if err := cfg.Validate(); err == nil {
		t.Error("AttrValues=0 accepted")
	}
	cfg = QuickConfig(10)
	cfg.WithAttrSignatures = true
	cfg.AttrValues = cfg.ValuePool
	if err := cfg.Validate(); err == nil {
		t.Error("AttrValues == ValuePool accepted")
	}
}

func TestParallelGenerationIdentical(t *testing.T) {
	cfg := QuickConfig(40)
	cfg.Workers = 1
	seq, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Sources {
		a, b := &seq.Sources[i], &par.Sources[i]
		if a.Cardinality != b.Cardinality {
			t.Fatalf("source %d cardinality differs across parallelism", i)
		}
		if a.Signature.Estimate() != b.Signature.Estimate() {
			t.Fatalf("source %d signature differs across parallelism", i)
		}
	}
}
