package synth

import (
	"reflect"
	"strings"
	"testing"

	"ube/internal/model"
	"ube/internal/strsim"
)

func TestDefaultLargeConfigValid(t *testing.T) {
	for _, n := range []int{1, 40, 1_000, 100_000} {
		cfg := DefaultLargeConfig(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("default config for %d sources invalid: %v", n, err)
		}
	}
	// The vocabulary grows with the universe past the 64-concept floor.
	small, big := DefaultLargeConfig(100), DefaultLargeConfig(100_000)
	if small.conceptCount() != 64 {
		t.Errorf("small universe concepts = %d, want the 64 floor", small.conceptCount())
	}
	if big.conceptCount() != 12_500 {
		t.Errorf("100k-source universe concepts = %d, want 12500", big.conceptCount())
	}
}

func TestLargeConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*LargeConfig)
	}{
		{"no sources", func(c *LargeConfig) { c.NumSources = 0 }},
		{"zero variants", func(c *LargeConfig) { c.VariantsPerConcept = 0 }},
		{"too many variants", func(c *LargeConfig) { c.VariantsPerConcept = len(variantSuffixes) + 1 }},
		{"flat zipf", func(c *LargeConfig) { c.ZipfS = 1 }},
		{"flat card zipf", func(c *LargeConfig) { c.CardZipfS = 0.5 }},
		{"one attribute", func(c *LargeConfig) { c.AttrsMin = 1 }},
		{"inverted attrs", func(c *LargeConfig) { c.AttrsMin, c.AttrsMax = 8, 4 }},
		{"zero card", func(c *LargeConfig) { c.MinCard = 0 }},
		{"narrow cards", func(c *LargeConfig) { c.MaxCard = c.MinCard + 10 }},
		{"vocab too small", func(c *LargeConfig) { c.Concepts = 5 }},
	}
	for _, tc := range cases {
		cfg := DefaultLargeConfig(1000)
		tc.break_(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
		if _, _, err := GenerateLarge(cfg); err == nil {
			t.Errorf("%s: GenerateLarge accepted the invalid config", tc.name)
		}
	}
}

func TestCoreWordsDistinctAndDeterministic(t *testing.T) {
	a := coreWords(5000, 42)
	b := coreWords(5000, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("coreWords not deterministic for a fixed seed")
	}
	seen := make(map[string]bool, len(a))
	for _, w := range a {
		if len(w) != 12 {
			t.Fatalf("core word %q is not 12 letters", w)
		}
		for _, r := range w {
			if r < 'a' || r > 'z' {
				t.Fatalf("core word %q outside a-z", w)
			}
		}
		if seen[w] {
			t.Fatalf("duplicate core word %q", w)
		}
		seen[w] = true
	}
	if reflect.DeepEqual(a[:10], coreWords(10, 43)) {
		t.Error("different seeds produced identical core words")
	}
}

func TestGenerateLargeShape(t *testing.T) {
	cfg := DefaultLargeConfig(500)
	u, truth, err := GenerateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 500 {
		t.Fatalf("generated %d sources", u.N())
	}
	if len(truth.Unperturbed) != 0 {
		t.Error("large universes have no base-schema repository")
	}
	if len(truth.ConceptNames) != cfg.conceptCount() {
		t.Errorf("%d concept names for %d concepts", len(truth.ConceptNames), cfg.conceptCount())
	}
	for i := range u.Sources {
		s := &u.Sources[i]
		if s.Signature != nil {
			t.Fatalf("source %d has data signatures; every large source is uncooperative", i)
		}
		if k := len(s.Attributes); k < cfg.AttrsMin || k > cfg.AttrsMax {
			t.Errorf("source %d has %d attributes outside [%d,%d]", i, k, cfg.AttrsMin, cfg.AttrsMax)
		}
		if s.Cardinality < cfg.MinCard || s.Cardinality > cfg.MaxCard {
			t.Errorf("source %d cardinality %d outside range", i, s.Cardinality)
		}
		if s.Characteristics["mttf"] < 1 {
			t.Errorf("source %d mttf %v below the floor", i, s.Characteristics["mttf"])
		}
	}
	// Ground truth covers every attribute, and every name is its
	// concept's core word plus a known suffix.
	for i := range u.Sources {
		for a, name := range u.Sources[i].Attributes {
			c, ok := truth.ConceptOf[model.AttrRef{Source: i, Attr: a}]
			if !ok {
				t.Fatalf("attribute (%d,%d) missing from ground truth", i, a)
			}
			if !strings.HasPrefix(name, truth.ConceptNames[c]) {
				t.Fatalf("attribute %q does not extend its concept core %q", name, truth.ConceptNames[c])
			}
		}
	}
}

// TestGenerateLargeVariantsClearTheta pins the workload's geometry: every
// suffix variant scores ≥ the paper's θ = 0.65 against its bare core
// under 3-gram Jaccard, and distinct concepts stay far below it — the
// property that makes ground-truth concepts recoverable through the
// blocking index.
func TestGenerateLargeVariantsClearTheta(t *testing.T) {
	m := strsim.NewNGramJaccard(3)
	cores := coreWords(200, 7)
	for _, core := range cores[:20] {
		for _, suf := range variantSuffixes {
			if s := m.Score(core, core+suf); s < 0.65 {
				t.Errorf("variant %q scores %v against core %q, below θ", core+suf, s, core)
			}
		}
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if s := m.Score(cores[i], cores[j]); s >= 0.65 {
				t.Errorf("distinct cores %q/%q score %v, at or above θ", cores[i], cores[j], s)
			}
		}
	}
}

func TestGenerateLargeDeterministic(t *testing.T) {
	cfg := DefaultLargeConfig(300)
	u1, t1, err := GenerateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u2, t2, err := GenerateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(u1, u2) || !reflect.DeepEqual(t1, t2) {
		t.Fatal("GenerateLarge is not a pure function of its config")
	}
	cfg.Seed = 2
	u3, _, err := GenerateLarge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(u1, u3) {
		t.Error("different seeds generated identical universes")
	}
}
