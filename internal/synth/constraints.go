package synth

import (
	"fmt"
	"math/rand"

	"ube/internal/model"
)

// SourceConstraints draws k source constraints the way the paper's
// experiments do (§7.2): random sources whose schemas are fully conformant
// to one of the original base schemas (unperturbed copies).
func SourceConstraints(truth *Truth, k int, limit int, rng *rand.Rand) ([]int, error) {
	var pool []int
	for _, id := range truth.Unperturbed {
		if id < limit {
			pool = append(pool, id)
		}
	}
	if len(pool) < k {
		return nil, fmt.Errorf("synth: only %d unperturbed sources below %d, need %d", len(pool), limit, k)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	out := append([]int(nil), pool[:k]...)
	return out, nil
}

// GAConstraints draws k GA constraints the way the paper's experiments do
// (§7.2): each GA has up to maxAttrs attributes that represent accurate
// matchings — attributes of the same ground-truth concept taken from
// distinct sources in the allowed list. The GAs use distinct concepts so
// they are pairwise disjoint. Passing the source-constraint set as allowed
// keeps the GA constraints from implying sources beyond C.
func GAConstraints(u *model.Universe, truth *Truth, k, maxAttrs int, allowed []int, rng *rand.Rand) ([]model.GA, error) {
	ok := make(map[int]bool, len(allowed))
	for _, id := range allowed {
		ok[id] = true
	}
	// Group attribute refs by concept, one ref per source per concept.
	byConcept := make(map[int][]model.AttrRef)
	seen := make(map[[2]int]bool) // (concept, source) pairs already taken
	for ref, c := range truth.ConceptOf {
		if c == JunkConcept || !ok[ref.Source] {
			continue
		}
		key := [2]int{c, ref.Source}
		if seen[key] {
			continue
		}
		seen[key] = true
		byConcept[c] = append(byConcept[c], ref)
	}
	// Deterministic concept order, then shuffle.
	var ids []int
	for c := 0; c < NumConcepts; c++ {
		if len(byConcept[c]) >= 2 {
			ids = append(ids, c)
		}
	}
	if len(ids) < k {
		return nil, fmt.Errorf("synth: only %d concepts span ≥2 allowed sources, need %d", len(ids), k)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })

	gas := make([]model.GA, 0, k)
	for _, c := range ids[:k] {
		refs := byConcept[c]
		// Canonical order before shuffling: map iteration order above
		// is random, which would break run-to-run determinism.
		sortRefs(refs)
		rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })
		n := maxAttrs
		if n > len(refs) {
			n = len(refs)
		}
		gas = append(gas, model.NewGA(refs[:n]...))
	}
	return gas, nil
}

func sortRefs(refs []model.AttrRef) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].Less(refs[j-1]); j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}
