// Package synth generates the synthetic workload of the paper's
// experimental setup (§7.1): 700 data-source descriptions whose schemas are
// based on the 50 Books-domain schemas of the BAMM repository, with data
// drawn from a 4,000,000-tuple pool split into General and Specialty
// halves, Zipf-distributed cardinalities between 10,000 and 1,000,000
// tuples, and a normally distributed mean-time-to-failure characteristic.
//
// The BAMM repository (the UIUC Web-integration repository) is no longer
// distributed, so this package substitutes a generated repository with the
// two properties the experiments depend on: exactly 14 distinct concepts —
// the number the paper counts by hand in the BAMM Books schemas — and
// per-concept attribute-name variants that range from trivially matchable
// (identical names across sources) to unmatchable at θ = 0.65 (synonyms
// with no lexical overlap), so that concept recall grows with the number
// of selected sources as in Table 1. See DESIGN.md for the substitution
// rationale.
package synth

import (
	"math/rand"
)

// NumConcepts is the number of distinct concepts in the Books repository,
// matching the paper's hand count of 14.
const NumConcepts = 14

// JunkConcept is the pseudo-concept ID assigned to attributes injected by
// perturbation from the unrelated-word list. Junk attributes belong to no
// true GA.
const JunkConcept = -1

// concept describes one Books-domain concept: its canonical name for
// reporting, how often it appears in a base schema, and its name variants.
// The first variant is the dominant spelling; clusterable variants share
// enough 3-grams with it to clear θ = 0.65, distant variants are synonyms
// that only a GA constraint can bridge.
type concept struct {
	name     string
	freq     float64 // probability a base schema exposes this concept
	variants []string
	// weights bias variant choice toward the dominant spelling; same
	// length as variants.
	weights []float64
}

// concepts is the ground-truth concept table. Frequencies are tiered so
// that core bibliographic concepts appear in almost every source while
// niche ones are rare — the property that makes Table 1's true-GA count
// grow with the number of sources selected.
var concepts = [NumConcepts]concept{
	{
		name: "title", freq: 0.95,
		variants: []string{"title", "titles", "book title", "title keyword"},
		weights:  []float64{0.6, 0.15, 0.15, 0.1},
	},
	{
		name: "author", freq: 0.9,
		variants: []string{"author", "authors", "author name", "writer"},
		weights:  []float64{0.55, 0.2, 0.15, 0.1},
	},
	{
		name: "keyword", freq: 0.8,
		variants: []string{"keyword", "keywords", "keyword search", "search term"},
		weights:  []float64{0.5, 0.25, 0.15, 0.1},
	},
	{
		name: "isbn", freq: 0.7,
		variants: []string{"isbn", "isbn number", "isbn code"},
		weights:  []float64{0.7, 0.2, 0.1},
	},
	{
		name: "subject", freq: 0.6,
		variants: []string{"subject", "subjects", "subject area", "category", "genre"},
		weights:  []float64{0.4, 0.2, 0.1, 0.2, 0.1},
	},
	{
		name: "price", freq: 0.55,
		variants: []string{"price", "prices", "price range", "max price"},
		weights:  []float64{0.5, 0.2, 0.2, 0.1},
	},
	{
		name: "publisher", freq: 0.5,
		variants: []string{"publisher", "publishers", "publisher name"},
		weights:  []float64{0.6, 0.2, 0.2},
	},
	{
		name: "format", freq: 0.4,
		variants: []string{"format", "formats", "book format", "binding"},
		weights:  []float64{0.5, 0.2, 0.15, 0.15},
	},
	{
		name: "pubdate", freq: 0.4,
		variants: []string{"publication date", "publication year", "pub date", "year"},
		weights:  []float64{0.4, 0.25, 0.2, 0.15},
	},
	{
		name: "edition", freq: 0.3,
		variants: []string{"edition", "editions", "edition number"},
		weights:  []float64{0.6, 0.2, 0.2},
	},
	{
		name: "language", freq: 0.25,
		variants: []string{"language", "languages", "book language"},
		weights:  []float64{0.6, 0.2, 0.2},
	},
	{
		name: "condition", freq: 0.2,
		variants: []string{"condition", "book condition", "used or new"},
		weights:  []float64{0.5, 0.3, 0.2},
	},
	{
		name: "seller", freq: 0.15,
		variants: []string{"seller", "sellers", "seller name", "bookstore"},
		weights:  []float64{0.5, 0.2, 0.2, 0.1},
	},
	{
		name: "age", freq: 0.1,
		variants: []string{"age range", "age ranges", "reader age"},
		weights:  []float64{0.5, 0.25, 0.25},
	},
}

// ConceptNames returns the canonical names of the 14 concepts, indexed by
// concept ID.
func ConceptNames() []string {
	out := make([]string, NumConcepts)
	for i, c := range concepts {
		out[i] = c.name
	}
	return out
}

// conceptByVariant maps every variant spelling to its concept ID.
var conceptByVariant = func() map[string]int {
	m := make(map[string]int)
	for id, c := range concepts {
		for _, v := range c.variants {
			m[v] = id
		}
	}
	return m
}()

// ConceptOfName returns the concept ID of an attribute name, or
// JunkConcept for names outside the repository vocabulary.
func ConceptOfName(name string) int {
	if id, ok := conceptByVariant[name]; ok {
		return id
	}
	return JunkConcept
}

// junkWords is the list of words unrelated to the Books domain used by the
// perturbation step (§7.1: "a list of words unrelated to the Books
// domain"). The list is large and lexically diverse so accidental 3-gram
// matches between junk attributes are rare.
var junkWords = []string{
	"voltage", "humidity", "altitude", "protein", "gearbox", "nebula",
	"quartz", "tundra", "sodium", "lagoon", "piston", "meridian",
	"glacier", "enzyme", "torque", "osmosis", "pendulum", "vortex",
	"capacitor", "equator", "fjord", "hydrogen", "isotope", "jaguar",
	"kelvin", "lumen", "magma", "neutron", "obsidian", "plasma",
	"quasar", "ridgeline", "stamen", "thermostat", "uranium", "velocity",
	"watt", "xylem", "yacht", "zeppelin", "asphalt", "barometer",
	"cyclone", "dynamo", "estuary", "fulcrum", "geyser", "harmonic",
	"impedance", "jetstream", "krypton", "latitude", "monsoon", "nozzle",
	"orbital", "photon", "quarry", "reactor", "sextant", "turbine",
	"umbra", "viscosity", "wavelength", "xenon", "yttrium", "zodiac",
	"aquifer", "biome", "cantilever", "delta wing", "epoch", "filament",
	"gimbal", "horizon", "inertia", "joule", "keel", "lichen",
	"mantle", "nimbus", "ozone", "pylon", "quill", "rotor",
}

// pickVariant draws a variant of concept id using its weights.
func pickVariant(id int, rng *rand.Rand) string {
	c := &concepts[id]
	x := rng.Float64()
	acc := 0.0
	for i, w := range c.weights {
		acc += w
		if x < acc {
			return c.variants[i]
		}
	}
	return c.variants[len(c.variants)-1]
}

// baseSchemas generates the 50-schema Books repository. The generation is
// deterministic (fixed internal seed): every call returns the same
// repository, playing the role of the static BAMM snapshot. Each schema
// exposes a concept with its tier probability and at least two concepts
// overall (a query interface with fewer is not a useful source).
func baseSchemas() [][]string {
	const repoSeed = 0xBA33 // fixed: the repository is a static artifact
	rng := rand.New(rand.NewSource(repoSeed))
	schemas := make([][]string, 0, 50)
	for len(schemas) < 50 {
		var attrs []string
		for id := range concepts {
			if rng.Float64() < concepts[id].freq {
				attrs = append(attrs, pickVariant(id, rng))
			}
		}
		if len(attrs) < 2 {
			continue
		}
		schemas = append(schemas, attrs)
	}
	return schemas
}
