//go:build !ubedebug

package ubedebug

// Enabled reports whether the build carries the ubedebug tag. It is a
// constant so that `if ubedebug.Enabled { ... }` blocks fold away
// entirely in normal builds.
const Enabled = false

// Assert is a no-op without the ubedebug tag; call sites gate on
// Enabled, so in normal builds neither it nor its arguments are ever
// evaluated.
func Assert(cond bool, format string, args ...any) {}

// ShouldAudit never samples without the ubedebug tag.
func ShouldAudit() bool { return false }

// CountAudit is a no-op without the ubedebug tag.
func CountAudit() {}

// Audited always reports zero without the ubedebug tag.
func Audited() uint64 { return 0 }

// AuditEvery reports zero without the ubedebug tag (no sampling grid).
func AuditEvery() uint64 { return 0 }

// SetAuditEvery is a no-op without the ubedebug tag; it reports zero.
func SetAuditEvery(n uint64) uint64 { return 0 }
