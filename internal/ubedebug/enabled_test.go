//go:build ubedebug

package ubedebug

import (
	"strings"
	"testing"
)

func TestEnabledConstant(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the ubedebug tag")
	}
}

func TestAssertPassAndFail(t *testing.T) {
	Assert(true, "must not fire")

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assert(false) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "boom 42") {
			t.Fatalf("panic value %v does not carry the formatted message", r)
		}
	}()
	Assert(false, "boom %d", 42)
}

func TestShouldAuditSamplesEveryNth(t *testing.T) {
	every := AuditEvery()
	if every == 0 {
		t.Fatal("AuditEvery is zero under the ubedebug tag")
	}
	// The shared counter may start at any phase; over 3*every calls the
	// sampling grid must fire exactly 3 times.
	hits := 0
	for i := uint64(0); i < 3*every; i++ {
		if ShouldAudit() {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("ShouldAudit fired %d times over %d calls with period %d", hits, 3*every, every)
	}
}

func TestCountAuditAdvances(t *testing.T) {
	before := Audited()
	CountAudit()
	CountAudit()
	if got := Audited(); got != before+2 {
		t.Fatalf("Audited = %d after two CountAudit calls from %d", got, before)
	}
}
