//go:build ubedebug

package ubedebug

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
)

// Enabled reports whether the build carries the ubedebug tag. It is a
// constant so that `if ubedebug.Enabled { ... }` blocks fold away
// entirely in normal builds.
const Enabled = true

// auditEvery is the delta≡full audit sampling period: every Nth
// ShouldAudit call returns true. Overridable via UBE_DEBUG_AUDIT_EVERY.
var auditEvery atomic.Uint64

func init() {
	every := uint64(64)
	if v := os.Getenv("UBE_DEBUG_AUDIT_EVERY"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			panic(fmt.Sprintf("ubedebug: UBE_DEBUG_AUDIT_EVERY must be a positive integer, got %q", v))
		}
		every = n
	}
	auditEvery.Store(every)
}

var (
	ticks   atomic.Uint64 // ShouldAudit calls
	audited atomic.Uint64 // CountAudit calls (audits actually performed)
)

// Assert panics with the formatted message when cond is false. Call
// sites gate on Enabled so the arguments are never evaluated in normal
// builds.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("ubedebug: assertion failed: " + fmt.Sprintf(format, args...))
	}
}

// ShouldAudit reports whether this call falls on the sampling grid
// (every auditEvery-th call process-wide). Sampling is a shared atomic
// counter, not randomness or time: the debug layer obeys the same
// determinism rules ube-lint enforces on the solver. Under concurrency
// the set of sampled call sites varies with scheduling, but audits only
// observe invariants — they never influence results.
func ShouldAudit() bool {
	return ticks.Add(1)%auditEvery.Load() == 0
}

// CountAudit records that one audit was actually performed, so tests
// can prove the audit path is live in tagged builds.
func CountAudit() { audited.Add(1) }

// Audited returns the number of audits performed so far.
func Audited() uint64 { return audited.Load() }

// AuditEvery returns the active sampling period.
func AuditEvery() uint64 { return auditEvery.Load() }

// SetAuditEvery overrides the sampling period (n must be positive) and
// returns the previous one; tests use it to force dense auditing.
func SetAuditEvery(n uint64) uint64 {
	if n == 0 {
		panic("ubedebug: SetAuditEvery(0)")
	}
	return auditEvery.Swap(n)
}
