//go:build !ubedebug

package ubedebug

import "testing"

func TestDisabledIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the ubedebug tag")
	}
	Assert(false, "must not panic in normal builds")
	for i := 0; i < 1000; i++ {
		if ShouldAudit() {
			t.Fatal("ShouldAudit fired in a normal build")
		}
	}
	CountAudit()
	if Audited() != 0 {
		t.Fatal("Audited must stay zero in normal builds")
	}
	if AuditEvery() != 0 {
		t.Fatal("AuditEvery must be zero in normal builds")
	}
	if SetAuditEvery(64) != 0 {
		t.Fatal("SetAuditEvery must stay inert in normal builds")
	}
}
