// Package ubedebug is the runtime half of µBE's invariant enforcement:
// assertions that compile to real checks under the `ubedebug` build tag
// and to empty inlineable no-ops otherwise. The static half is ube-lint
// (internal/lint); DESIGN.md's invariant catalog describes what each
// guarded invariant protects.
//
// Call sites gate on the Enabled constant so the normal build pays
// nothing — the constant folds, the branch and its argument evaluation
// disappear:
//
//	if ubedebug.Enabled {
//		ubedebug.Assert(idx < len(maps), "register %d out of %d", idx, len(maps))
//	}
//
// The checks wired through this package: PCSA register bounds
// (pcsa.AddHash), clustering agenda sorted-run ordering
// (cluster.sortRun), incumbent snapshot immutability via checksum
// (qef.Snapshot/EvalAdd), and the sampled delta≡full objective audit
// (engine.deltaObjective). Run them with:
//
//	go test -tags ubedebug ./...
//
// The audit sampling rate is configurable through UBE_DEBUG_AUDIT_EVERY
// (audit every Nth delta evaluation; default 64; 1 audits everything).
// Sampling is counter-based, not random: the debug layer must obey the
// same determinism rules it polices, so it draws no randomness and reads
// no clock.
package ubedebug
