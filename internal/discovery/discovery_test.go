package discovery

import (
	"testing"

	"ube/internal/model"
)

// corpus mixes theater-ticket sources with unrelated ones — the §1
// CompletePlanet scenario in miniature.
func corpus() *model.Universe {
	defs := []struct {
		name  string
		attrs []string
	}{
		{"aceticket.com", []string{"state", "city", "event", "venue"}},
		{"londontheatre.co.uk", []string{"type", "keyword"}},
		{"wstonline.org", []string{"keyword", "after date", "before date"}},
		{"lastminute.com", []string{"event name", "event type", "location", "date", "radius"}},
		{"weatherdata.net", []string{"humidity", "temperature", "wind"}},
		{"carparts.example", []string{"part number", "gearbox", "engine"}},
		{"theatermania.example", []string{"show", "theater", "date"}},
	}
	u := &model.Universe{}
	for i, d := range defs {
		u.Sources = append(u.Sources, model.Source{
			ID: i, Name: d.name, Attributes: d.attrs, Cardinality: 100,
		})
	}
	return u
}

func TestSearchRanksRelevantSources(t *testing.T) {
	idx, err := NewIndex(corpus())
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search("theater", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits for theater")
	}
	// Sources 1 and 6 mention theater (name/attr); the weather and car
	// sources must not appear.
	for _, h := range hits {
		if h.Source == 4 || h.Source == 5 {
			t.Errorf("irrelevant source %d matched", h.Source)
		}
		if h.Score <= 0 {
			t.Errorf("hit with nonpositive score: %+v", h)
		}
	}
	// Multi-term queries union and rank.
	hits, err = idx.Search("event date", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < 3 {
		t.Fatalf("event date should match several sources: %v", hits)
	}
	// Scores descend.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatalf("hits not sorted: %v", hits)
		}
	}
}

func TestSearchLimitAndMisses(t *testing.T) {
	idx, err := NewIndex(corpus())
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search("date", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Errorf("limit ignored: %d hits", len(hits))
	}
	hits, err = idx.Search("zeppelin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("nonsense query matched: %v", hits)
	}
	if _, err := idx.Search("   ", 0); err == nil {
		t.Error("empty query accepted")
	}
}

func TestMaterialize(t *testing.T) {
	u := corpus()
	idx, err := NewIndex(u)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search("theater keyword", 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, orig, err := idx.Materialize(hits)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != len(hits) || len(orig) != len(hits) {
		t.Fatalf("materialized %d sources for %d hits", sub.N(), len(hits))
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range sub.Sources {
		if sub.Sources[i].ID != i {
			t.Errorf("IDs not renumbered densely: %d at %d", sub.Sources[i].ID, i)
		}
		if sub.Sources[i].Name != u.Sources[orig[i]].Name {
			t.Errorf("mapping wrong at %d", i)
		}
	}
	// The original universe is untouched.
	if u.Sources[0].ID != 0 || u.N() != 7 {
		t.Error("Materialize mutated the corpus")
	}
	// Errors.
	if _, _, err := idx.Materialize(nil); err == nil {
		t.Error("empty hits accepted")
	}
	if _, _, err := idx.Materialize([]Hit{{Source: 99}}); err == nil {
		t.Error("out-of-range hit accepted")
	}
	if _, _, err := idx.Materialize([]Hit{{Source: 1}, {Source: 1}}); err == nil {
		t.Error("duplicate hit accepted")
	}
}

func TestHostnameTokenization(t *testing.T) {
	idx, err := NewIndex(corpus())
	if err != nil {
		t.Fatal(err)
	}
	// "londontheatre" is one token of the hostname; searching for it
	// finds the site.
	hits, err := idx.Search("londontheatre", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Source != 1 {
		t.Errorf("hostname token search failed: %v", hits)
	}
}
