// Package discovery implements the source-discovery step that feeds µBE
// (Figure 2 of the paper: "Such descriptions can be obtained from a hidden
// Web search engine or some other source discovery mechanism"). The §1
// walkthrough starts by issuing the query "theater" to CompletePlanet.com
// and getting 1021 candidate sources; this package plays that role over a
// corpus of source descriptions: it indexes names and schemas, answers
// keyword queries with TF-IDF-ranked sources, and materializes the result
// as a fresh universe ready for an Engine.
package discovery

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ube/internal/model"
	"ube/internal/strsim"
)

// Index is an inverted index over source descriptions.
type Index struct {
	u *model.Universe
	// postings maps a token to the sources containing it and the term
	// frequency at each.
	postings map[string]map[int]int
	// docLen is the token count per source description.
	docLen []int
}

// NewIndex indexes a universe's source names and attribute names.
func NewIndex(u *model.Universe) (*Index, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	idx := &Index{
		u:        u,
		postings: make(map[string]map[int]int),
		docLen:   make([]int, u.N()),
	}
	for i := range u.Sources {
		s := &u.Sources[i]
		for _, tok := range tokenize(s.Name) {
			idx.add(tok, i)
		}
		for _, a := range s.Attributes {
			for _, tok := range tokenize(a) {
				idx.add(tok, i)
			}
		}
	}
	return idx, nil
}

func (idx *Index) add(tok string, src int) {
	m := idx.postings[tok]
	if m == nil {
		m = make(map[int]int)
		idx.postings[tok] = m
	}
	m[src]++
	idx.docLen[src]++
}

// tokenize splits a description field into normalized tokens. Dotted host
// names ("aceticket.com") split on the dots too, so the site name's words
// are searchable.
func tokenize(s string) []string {
	return strings.Fields(strsim.Normalize(s))
}

// A Hit is one ranked discovery result.
type Hit struct {
	// Source is the source ID within the indexed universe.
	Source int
	// Score is the TF-IDF relevance of the source to the query.
	Score float64
}

// Search returns the sources matching any query keyword, ranked by TF-IDF
// (sum over query terms of tf·idf, length-normalized). An empty query is
// an error; a query matching nothing returns an empty slice.
func (idx *Index) Search(query string, limit int) ([]Hit, error) {
	terms := tokenize(query)
	if len(terms) == 0 {
		return nil, fmt.Errorf("discovery: empty query")
	}
	n := float64(idx.u.N())
	scores := make(map[int]float64)
	for _, term := range terms {
		posting := idx.postings[term]
		if len(posting) == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(len(posting)))
		for src, tf := range posting {
			scores[src] += float64(tf) / float64(idx.docLen[src]) * idf
		}
	}
	hits := make([]Hit, 0, len(scores))
	for src, score := range scores {
		hits = append(hits, Hit{Source: src, Score: score})
	}
	sort.Slice(hits, func(i, j int) bool {
		//ube:float-exact sort comparators need a strict total order; an epsilon compare is not transitive
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Source < hits[j].Source
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits, nil
}

// Materialize builds a fresh universe from discovery hits: the µBE input
// for the discovered domain. Source IDs are renumbered densely; the
// returned mapping gives the original ID for each new one.
func (idx *Index) Materialize(hits []Hit) (*model.Universe, []int, error) {
	if len(hits) == 0 {
		return nil, nil, fmt.Errorf("discovery: no hits to materialize")
	}
	u := &model.Universe{Sources: make([]model.Source, 0, len(hits))}
	orig := make([]int, 0, len(hits))
	seen := make(map[int]bool, len(hits))
	for _, h := range hits {
		if h.Source < 0 || h.Source >= idx.u.N() {
			return nil, nil, fmt.Errorf("discovery: hit source %d out of range", h.Source)
		}
		if seen[h.Source] {
			return nil, nil, fmt.Errorf("discovery: duplicate hit for source %d", h.Source)
		}
		seen[h.Source] = true
		src := idx.u.Sources[h.Source] // copy
		src.ID = len(u.Sources)
		u.Sources = append(u.Sources, src)
		orig = append(orig, h.Source)
	}
	if err := u.Validate(); err != nil {
		return nil, nil, err
	}
	return u, orig, nil
}
