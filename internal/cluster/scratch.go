package cluster

import "ube/internal/model"

// Scratch is Match's reusable working memory. The clustering loop is run
// thousands of times per solve on small, short-lived structures — seed
// clusters, their singleton attr/source/name slices, the agenda buffers —
// and allocating them fresh each call makes the allocator and GC a large
// share of solve time. A Scratch keeps the backing arrays alive across
// calls: sized once for the biggest Match seen, then reused with no
// per-call allocation beyond the assembled Result (which must be fresh —
// callers retain it).
//
// A Scratch must not be shared by concurrent Match calls. The engine keeps
// one per evaluation worker.
type Scratch struct {
	slab  []workCluster   // every cluster of the current call
	attrs []model.AttrRef // backing for singleton attr slices
	ints  []int           // backing for singleton source/name slices

	arena   []*workCluster   // agenda: cluster index -> cluster
	list    []*workCluster   // the evolving cluster list
	owners  [][]*workCluster // agenda: name ID -> clusters carrying it
	queue   []agendaEntry    // agenda: carried pair run
	pending []agendaEntry    // agenda: next round's carried run
	fresh   []agendaEntry    // agenda: newborn pair run
	spare   []agendaEntry    // agenda: radix ping-pong buffer
}

// newCluster hands out a zeroed cluster from the slab. seed() sizes the
// slab for the worst case (every seed cluster plus one per possible
// merge), so the slab never reallocates mid-run — pointers into it stay
// valid for the whole Match call.
func (s *Scratch) newCluster() *workCluster {
	s.slab = s.slab[:len(s.slab)+1]
	c := &s.slab[len(s.slab)-1]
	*c = workCluster{}
	return c
}
