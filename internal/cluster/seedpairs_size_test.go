package cluster

import (
	"testing"

	"ube/internal/strsim"
)

// TestSeedPairsSize pins the reported footprint to the layout: one 8-byte
// pair record per precomputed pair plus the 4-byte group-start table.
func TestSeedPairsSize(t *testing.T) {
	u := mkUniverse(
		[]string{"title", "author"},
		[]string{"book_title", "writer"},
		[]string{"title", "price"},
	)
	sim := strsim.NewCache(nil)
	for i := range u.Sources {
		for _, a := range u.Sources[i].Attributes {
			sim.Intern(a)
		}
	}
	m := mustMatrix(sim)
	theta := 0.3
	sp := BuildSeedPairs(u, buildNameIDs(u, sim), m.Neighbors(theta), m, theta)
	if sp == nil {
		t.Fatal("BuildSeedPairs returned nil")
	}
	if sp.Len() == 0 {
		t.Fatal("no seed pairs found for overlapping schemas")
	}
	if want := 8*sp.Len() + 4*(len(u.Sources)*len(u.Sources)+1); sp.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d for %d pairs over %d sources",
			sp.SizeBytes(), want, sp.Len(), len(u.Sources))
	}
}
