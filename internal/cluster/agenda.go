package cluster

import (
	"math"
	"slices"

	"ube/internal/strsim"
	"ube/internal/trace"
	"ube/internal/ubedebug"
)

// This file implements the heap-agenda scheduling of Algorithm 1's merge
// rounds. The legacy path (run in cluster.go) re-enumerates, re-scores and
// re-sorts every candidate pair on every round, which the profile shows is
// where solve time goes: O(rounds × pairs log pairs) with the pair scoring
// itself repeated each round. The agenda path scores each pair exactly
// once and carries it across rounds:
//
//   - every pair is scored when one of its endpoints is created (at seed
//     time, or when a merge gives birth to a cluster);
//   - each round walks the candidate pairs in best-first order,
//     replicating the legacy sorted walk entry for entry;
//   - pairs whose endpoints both survive a round un-merged (necessarily
//     source-overlapping pairs, which can never merge) are carried to the
//     next round with their cached similarity — never re-scored. Because
//     the walk emits them in priority order, the carried list is already
//     sorted, so carrying costs O(1) per pair per round;
//   - only the fresh pairs — those involving a cluster born in the
//     previous round — are sorted each round, into a second run that a
//     two-pointer walk merges with the carried stream;
//   - pairs that reference a merged or eliminated cluster are stale and
//     are dropped on sight.
//
// The result is byte-identical to the legacy path (the differential test
// in agenda_test.go proves it on random universes). The equivalence rests
// on two facts worked out from run()'s semantics:
//
//  1. A pair that survives a round with both endpoints free is source-
//     overlapping: a disjoint pair with both endpoints free merges the
//     moment the walk reaches it. So carried-over pairs never merge and
//     never need rescoring, and every merge in round r involves at least
//     one cluster born in round r−1 (or round 1's seeds).
//
//  2. The legacy tiebreak for equal similarities is the pair of slice
//     positions, and the next round's slice is born-in-merge-order
//     followed by survivors in previous order. Assigning each born
//     cluster an ord below every existing cluster's (increasing within
//     one round's born list) therefore keeps ord-order identical to
//     slice-position order in every round, so the priority
//     (sim desc, ordLo asc, ordHi asc) walks in the legacy order.
//
// Entries carry the endpoints' immutable ord ranks (for comparisons) and
// their arena indices (to reach the cluster at processing time); they
// deliberately hold no pointers, so copying them in sorts, heap sifts and
// carry filters stays write-barrier-free.
//
// The similarity is stored as simKey(s), an integer whose ascending order
// is exactly descending similarity, so every comparison in the sort, the
// heap and the stream merge is a pure integer compare. With realistic
// vocabularies most candidate pairs tie on similarity, making comparator
// cost the dominant term of Match — float compares with branchy
// tiebreaks measurably lose to this.
type agendaEntry struct {
	key        int64 // simKey(sim): ascending key = descending similarity
	ordA, ordB int32 // walk priority tiebreak: endpoint ranks, ordA < ordB
	idxA, idxB int32 // endpoints' slots in the cluster arena
}

// simKey maps a similarity in [0,1] to an integer whose ascending order
// is descending similarity. IEEE-754 bit patterns of non-negative floats
// are order-isomorphic to their values, so the mapping is exact: equal
// sims share a key and distinct sims order strictly, preserving the
// legacy walk order tie-for-tie.
func simKey(sim float64) int64 {
	return -int64(math.Float64bits(sim))
}

// simKey30 is simKey for similarities that came out of a strsim.Table.
// The table stores scores as float32, so the float32 bit pattern loses
// nothing, and scores in [0,1] keep the pattern below 2^30 — small enough
// for the seed queue to be radix-sorted in three 10-bit passes instead of
// comparison-sorted. The key is bit-inverted so that, like simKey,
// ascending key order is descending similarity.
func simKey30(sim float64) int64 {
	return int64(0x3FFFFFFF - math.Float32bits(float32(sim)))
}

// entryBefore is the walk priority — the legacy sort order: similarity
// descending, then the position ranks ascending. It is a strict total
// order over distinct pairs, so walk order is unique.
func entryBefore(x, y agendaEntry) bool {
	switch {
	case x.key != y.key:
		return x.key < y.key
	case x.ordA != y.ordA:
		return x.ordA < y.ordA
	default:
		return x.ordB < y.ordB
	}
}

// entry builds an agenda entry with endpoints in ord order.
func entry(a, b *workCluster, key int64) agendaEntry {
	if a.ord > b.ord {
		a, b = b, a
	}
	return agendaEntry{key: key, ordA: a.ord, ordB: b.ord, idxA: a.idx, idxB: b.idx}
}

// runAgenda executes the merge rounds of Algorithm 1 (lines 5–23) on the
// sorted-run agenda. It produces the same cluster list, in the same order,
// as run(). When preGathered is set, seedQ is the unsorted round-1 agenda
// (from SeedPairs) and the seed enumeration is skipped; the gather only
// happens with a matrix scorer, so its keys are simKey30 keys.
func runAgenda(clusters []*workCluster, seedQ []agendaEntry, preGathered bool, cfg Config, sc *Scratch) []*workCluster {
	arena := sc.arena[:0]
	for i, c := range clusters {
		c.ord = int32(i)
		c.idx = int32(i)
		c.mergedIn = 0
		c.cand = false
		c.gone = false
		c.markBy = nil
		arena = append(arena, c)
	}

	// Table scores (dense matrix or θ-sparse) are float32-exact,
	// unlocking 30-bit keys and the radix seed sort; any other scorer
	// uses full float64-bit keys and a comparison sort. Both key forms
	// order identically to the similarity, so the walk is the same
	// either way.
	_, matrixKeys := cfg.Scores.(strsim.Table)
	mkKey := simKey
	if matrixKeys {
		mkKey = simKey30
	}

	// The round-1 pairs all involve newly created clusters, so scoring
	// them lazily buys nothing: enumerate and sort them once into the
	// carried queue. Later rounds only sort their own fresh trickle —
	// pairs involving a newborn — and merge it into the pre-sorted
	// carried stream with a two-pointer walk.
	nSeed := len(clusters)
	var owners [][]*workCluster
	if cfg.Neighbors != nil {
		if cap(sc.owners) < len(cfg.Neighbors) {
			sc.owners = make([][]*workCluster, len(cfg.Neighbors))
		}
		owners = sc.owners[:len(cfg.Neighbors)]
		for i := range owners {
			owners[i] = owners[i][:0]
		}
		for _, c := range clusters {
			for _, n := range c.names {
				owners[n] = append(owners[n], c)
			}
		}
	}
	var queue []agendaEntry
	spare := sc.spare
	if preGathered {
		queue = seedQ
	} else {
		queue = sc.queue[:0]
		if owners != nil {
			for _, c := range clusters {
				queue = appendPairsIndexed(queue, c, owners, cfg, mkKey, false)
			}
		} else {
			for i := 0; i < len(clusters); i++ {
				for j := i + 1; j < len(clusters); j++ {
					if s := clusterSim(clusters[i], clusters[j], cfg.Scores); s >= cfg.Theta {
						queue = append(queue, entry(clusters[i], clusters[j], mkKey(s)))
					}
				}
			}
		}
	}
	queue, spare = sortRun(queue, spare, 0, nSeed, matrixKeys)

	// Work counters accumulate locally and flush once at the single
	// return below, so the walk itself carries no atomics.
	var pops int64
	admitted := int64(len(queue))

	fresh := sc.fresh[:0]
	minOrd := int32(0)
	pending := sc.pending[:0]
	for round := 1; ; round++ {
		var born []*workCluster
		pending = pending[:0]

		// Walk the round's pairs best-first by merging the two sorted
		// streams: the carried queue and the round's fresh pairs. The
		// walk observes exactly the merged/free states the legacy
		// sorted walk observes, because the merged order equals the
		// legacy sort order and both walks mutate state identically.
		qi, fi := 0, 0
		for qi < len(queue) || fi < len(fresh) {
			pops++
			var e agendaEntry
			if qi < len(queue) && (fi == len(fresh) || entryBefore(queue[qi], fresh[fi])) {
				e = queue[qi]
				qi++
			} else {
				e = fresh[fi]
				fi++
			}
			a, b := arena[e.idxA], arena[e.idxB]
			if a.gone || b.gone {
				continue // stale: an endpoint was eliminated
			}
			aM, bM := a.mergedIn != 0, b.mergedIn != 0
			switch {
			case !aM && !bM:
				if disjointSources(a, b) {
					u := sc.newCluster()
					mergeInto(u, a, b, sc)
					u.idx = int32(len(arena))
					arena = append(arena, u)
					born = append(born, u)
					a.mergedIn, b.mergedIn = round, round
				} else {
					// Can never merge; may carry to the next round
					// if both endpoints survive (lines 15–19 only
					// fire when a partner merges first). Appended in
					// walk order, so pending stays sorted.
					pending = append(pending, e)
				}
			case aM != bM:
				// One partner was just merged; the other becomes a
				// merge candidate and survives elimination. A partner
				// merged in an earlier round would make the entry
				// stale, but the invariants above rule that out: the
				// agenda only ever holds pairs between clusters alive
				// and un-merged when the round began.
				if aM {
					b.cand = true
				} else {
					a.cand = true
				}
			default:
				// Both endpoints merged this round: nothing to do.
			}
		}

		// Eliminate clusters that can never merge again (lines 20–22)
		// and splice the newborns in front, exactly like the legacy
		// next-round slice.
		next := born
		for _, c := range clusters {
			switch {
			case c.mergedIn != 0:
				// replaced by its union
			case c.keep || c.grown || c.cand:
				c.cand = false
				next = append(next, c)
			default:
				c.gone = true
			}
		}
		clusters = next
		if len(born) == 0 {
			// Hand the working buffers back for the next Match call.
			sc.arena = arena
			sc.queue, sc.pending, sc.fresh, sc.spare = queue, pending, fresh, spare
			sc.list = clusters
			cfg.Stats.Add(trace.CClusterRounds, int64(round))
			cfg.Stats.Add(trace.CClusterPops, pops)
			cfg.Stats.Add(trace.CClusterPairs, admitted)
			return clusters
		}

		// Carry the pairs that survived the round intact — an endpoint
		// may have merged or been eliminated after the pair was walked,
		// so filter again. Survivors keep their relative (sorted) order.
		queue, pending = pending, queue
		keep := queue[:0]
		for _, e := range queue {
			a, b := arena[e.idxA], arena[e.idxB]
			if a.mergedIn == 0 && !a.gone && b.mergedIn == 0 && !b.gone {
				keep = append(keep, e)
			}
		}
		queue = keep

		// Rank the newborns below every existing cluster, preserving
		// their merge order, so ord-order keeps matching the legacy
		// slice order.
		minOrd -= int32(len(born))
		for i, c := range born {
			c.ord = minOrd + int32(i)
		}

		// Score only the fresh pairs: each newborn against every
		// cluster ranked after it (later newborns + survivors), then
		// sort the batch into its own run for the next round's merge
		// walk. Newborns must all be indexed before any scoring so
		// that born[i] can see born[j>i] through the owners lists.
		fresh = fresh[:0]
		if owners != nil {
			for _, c := range born {
				for _, n := range c.names {
					owners[n] = append(owners[n], c)
				}
			}
			for _, c := range born {
				fresh = appendPairsIndexed(fresh, c, owners, cfg, mkKey, true)
			}
		} else {
			for i, c := range born {
				for _, x := range clusters[i+1:] {
					if s := clusterSim(c, x, cfg.Scores); s >= cfg.Theta {
						fresh = append(fresh, entry(c, x, mkKey(s)))
					}
				}
			}
		}
		fresh, spare = sortRun(fresh, spare, minOrd, nSeed-int(minOrd), matrixKeys)
		admitted += int64(len(fresh))
	}
}

// sortRun sorts a batch of agenda entries into walk order — (key, ordA,
// ordB) ascending — and returns the sorted slice plus the spare buffer
// left over for the next call. In matrix mode the keys fit in 30 bits and
// the batch's ords are dense in [ordLo, ordLo+nOrds), so a 5-pass stable
// LSD counting sort (ordB, ordA, then three 10-bit key digits) replaces
// the comparison sort for batches big enough to amortize the bucket
// clears. The seed batch is the bulk of all pairs Match ever scores — on
// the synthetic workload round 1 holds ~75% of the total pair volume —
// and with heavily duplicated similarities a comparison sort spends most
// of its time in tiebreaks, so the linear sort is where the agenda path's
// headroom is.
func sortRun(queue, scratch []agendaEntry, ordLo int32, nOrds int, matrixKeys bool) (sorted, spare []agendaEntry) {
	if !matrixKeys || len(queue) < 128 {
		slices.SortFunc(queue, func(x, y agendaEntry) int {
			switch {
			case x.key != y.key:
				if x.key < y.key {
					return -1
				}
				return 1
			case x.ordA != y.ordA:
				return int(x.ordA - y.ordA)
			default:
				return int(x.ordB - y.ordB)
			}
		})
		if ubedebug.Enabled {
			checkSortedRun(queue)
		}
		return queue, scratch
	}

	const digitBits = 10
	const digits = 1 << digitBits
	if cap(scratch) < len(queue) {
		scratch = make([]agendaEntry, len(queue))
	}
	src, dst := queue, scratch[:len(queue)]
	counts := make([]int32, max(nOrds, digits))

	// prefixSum turns the histogram into starting offsets.
	prefixSum := func(cnt []int32) {
		var sum int32
		for i, c := range cnt {
			cnt[i] = sum
			sum += c
		}
	}

	// Each pass is a stable counting sort on one field, least significant
	// first. The loops are hand-unrolled per field rather than closing
	// over an extractor function: an indirect call per element per pass
	// would cost more than the sort itself at these sizes.

	// Pass 1: ordB, offset to the dense [0, nOrds) bucket range.
	cnt := counts[:nOrds]
	clear(cnt)
	for i := range src {
		cnt[src[i].ordB-ordLo]++
	}
	prefixSum(cnt)
	for i := range src {
		d := src[i].ordB - ordLo
		dst[cnt[d]] = src[i]
		cnt[d]++
	}
	src, dst = dst, src

	// Pass 2: ordA.
	clear(cnt)
	for i := range src {
		cnt[src[i].ordA-ordLo]++
	}
	prefixSum(cnt)
	for i := range src {
		d := src[i].ordA - ordLo
		dst[cnt[d]] = src[i]
		cnt[d]++
	}
	src, dst = dst, src

	// Passes 3–5: the 30-bit key, 10 bits at a time. Real workloads
	// draw keys from a handful of distinct scores, so often every key
	// agrees on the high digits — those passes reorder nothing and are
	// skipped (a one-traversal scan buys up to two two-traversal
	// passes).
	var diff int32
	k0 := int32(src[0].key)
	for i := range src {
		diff |= int32(src[i].key) ^ k0
	}
	maxShift := 3 * digitBits
	switch {
	case diff == 0:
		maxShift = 0
	case diff>>digitBits == 0:
		maxShift = digitBits
	case diff>>(2*digitBits) == 0:
		maxShift = 2 * digitBits
	}
	cnt = counts[:digits]
	for shift := 0; shift < maxShift; shift += digitBits {
		clear(cnt)
		for i := range src {
			cnt[int32(src[i].key>>shift)&(digits-1)]++
		}
		prefixSum(cnt)
		for i := range src {
			d := int32(src[i].key>>shift) & (digits - 1)
			dst[cnt[d]] = src[i]
			cnt[d]++
		}
		src, dst = dst, src
	}
	if ubedebug.Enabled {
		checkSortedRun(src)
	}
	return src, dst
}

// checkSortedRun asserts the sorted-run post-condition the merge walk
// depends on: entries in walk order (key, ordA, ordB ascending). Only
// reached under the ubedebug build tag.
func checkSortedRun(run []agendaEntry) {
	for i := 1; i < len(run); i++ {
		ubedebug.Assert(!entryBefore(run[i], run[i-1]),
			"cluster: sort run out of walk order at %d: %+v before %+v", i, run[i-1], run[i])
	}
}

// appendPairsIndexed appends c's candidate pairs found through the ≥θ
// name adjacency index, scoring only cluster pairs with a known
// above-threshold name link (the same enumeration as
// collectPairsIndexed). With skipDead set (mid-run, when the owners lists
// may reference merged or eliminated clusters) dead partners are skipped
// rather than compacted. The x.ord > c.ord filter pushes each pair from
// its smaller-ord side exactly once — for that to cover newborn-newborn
// pairs, all of a round's newborns must be indexed before any is scored.
func appendPairsIndexed(out []agendaEntry, c *workCluster, owners [][]*workCluster, cfg Config, mkKey func(float64) int64, skipDead bool) []agendaEntry {
	for _, na := range c.names {
		for _, nb := range cfg.Neighbors[na] {
			for _, x := range owners[nb] {
				if x.ord <= c.ord || x.markBy == c {
					continue
				}
				if skipDead && (x.gone || x.mergedIn != 0) {
					continue
				}
				x.markBy = c
				if s := clusterSim(c, x, cfg.Scores); s >= cfg.Theta {
					out = append(out, entry(c, x, mkKey(s)))
				}
			}
		}
	}
	return out
}
