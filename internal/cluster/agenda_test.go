package cluster

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"ube/internal/model"
	"ube/internal/strsim"
	"ube/internal/synth"
)

// randomSchemas draws n source schemas from the test vocabulary.
func randomSchemas(r *rand.Rand, n int) [][]string {
	vocab := []string{
		"title", "titles", "book title", "author", "authors", "writer",
		"isbn", "isbn number", "price", "price range", "keyword",
		"keywords", "publisher", "format", "year", "language",
	}
	var schemas [][]string
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(6)
		attrs := make([]string, 0, k)
		seen := map[string]bool{}
		for len(attrs) < k {
			a := vocab[r.Intn(len(vocab))]
			if !seen[a] {
				seen[a] = true
				attrs = append(attrs, a)
			}
		}
		schemas = append(schemas, attrs)
	}
	return schemas
}

// buildNameIDs interns every attribute and returns the source→attr→ID map
// the engine precomputes in production.
func buildNameIDs(u *model.Universe, sim *strsim.Cache) [][]int {
	ids := make([][]int, len(u.Sources))
	for i := range u.Sources {
		ids[i] = make([]int, len(u.Sources[i].Attributes))
		for a, name := range u.Sources[i].Attributes {
			ids[i][a] = sim.Intern(name)
		}
	}
	return ids
}

// TestAgendaMatchesLegacy is the differential property test required by
// the issue: over seeded random universes, with and without the matrix
// scorer / neighbors index / GA constraints / NameIDs precompute, the
// heap-agenda Match must produce a Result byte-identical to the legacy
// sorted-slice path.
func TestAgendaMatchesLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(20240807))
	// One scratch reused across many trials (when drawn): reuse must be
	// invisible — stale buffer contents must never leak into a Result.
	shared := &Scratch{}
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(12)
		u := mkUniverse(randomSchemas(r, n)...)

		var G []model.GA
		if r.Intn(2) == 0 {
			s1, s2 := r.Intn(n), r.Intn(n)
			if s1 != s2 {
				G = append(G, model.NewGA(
					model.AttrRef{Source: s1, Attr: r.Intn(len(u.Sources[s1].Attributes))},
					model.AttrRef{Source: s2, Attr: r.Intn(len(u.Sources[s2].Attributes))},
				))
			}
		}

		theta := 0.4 + r.Float64()*0.55
		beta := 2 + r.Intn(2)

		base := Config{Theta: theta, Beta: beta, Sim: strsim.NewCache(nil)}
		indexed := r.Intn(2) == 0
		seedIdx := false
		if indexed {
			for i := range u.Sources {
				for _, a := range u.Sources[i].Attributes {
					base.Sim.Intern(a)
				}
			}
			m := mustMatrix(base.Sim)
			base.Scores = m
			base.Neighbors = m.Neighbors(theta)
			if r.Intn(2) == 0 {
				base.Seed = BuildSeedPairs(u, buildNameIDs(u, base.Sim), base.Neighbors, m, theta)
				seedIdx = base.Seed != nil
			}
		}
		if r.Intn(2) == 0 {
			base.NameIDs = buildNameIDs(u, base.Sim)
		}
		if r.Intn(2) == 0 {
			base.Scratch = shared
		}

		// Sometimes run on a strict sorted subset of the sources (the
		// engine's usual call shape, and the one the SeedPairs gather
		// must filter correctly); G references full-universe sources,
		// so subsets only apply without constraints.
		S := allSources(u)
		if len(G) == 0 && n > 2 && r.Intn(3) == 0 {
			S = S[:0]
			for s := 0; s < n; s++ {
				if r.Intn(3) > 0 {
					S = append(S, s)
				}
			}
		}

		legacy := base
		legacy.LegacyAgenda = true
		want := Match(u, S, nil, G, legacy)

		agenda := base
		agenda.LegacyAgenda = false
		got := Match(u, S, nil, G, agenda)

		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (n=%d θ=%.3f β=%d indexed=%v seedIdx=%v G=%v S=%v):\nlegacy: %+v\nagenda: %+v",
				trial, n, theta, beta, indexed, seedIdx, G, S, want, got)
		}
	}
}

// TestAgendaMatchesLegacyWithSourceConstraints exercises the C-validity
// path (Match may return the NULL result) on both implementations.
func TestAgendaMatchesLegacyWithSourceConstraints(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(6)
		u := mkUniverse(randomSchemas(r, n)...)
		C := []int{r.Intn(n)}

		base := Config{Theta: 0.5 + r.Float64()*0.45, Beta: 2, Sim: strsim.NewCache(nil)}
		legacy := base
		legacy.LegacyAgenda = true
		want := Match(u, allSources(u), C, nil, legacy)
		got := Match(u, allSources(u), C, nil, base)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: legacy %+v vs agenda %+v", trial, want, got)
		}
	}
}

// BenchmarkMatchSynth measures Match on the synthetic BAMM universe the
// experiments use (N=200), on random m=50 subsets — the workload the
// solver's inner loop actually runs.
func BenchmarkMatchSynth(b *testing.B) {
	u, _, err := synth.Generate(synth.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		legacy  bool
		seedIdx bool
	}{{"legacy", true, false}, {"agenda", false, false}, {"agenda-seedidx", false, true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{Theta: 0.65, Beta: 2, Sim: strsim.NewCache(nil), LegacyAgenda: mode.legacy}
			for i := range u.Sources {
				for _, a := range u.Sources[i].Attributes {
					cfg.Sim.Intern(a)
				}
			}
			m := mustMatrix(cfg.Sim)
			cfg.Scores = m
			cfg.Neighbors = m.Neighbors(cfg.Theta)
			cfg.NameIDs = buildNameIDs(u, cfg.Sim)
			if mode.seedIdx {
				cfg.Seed = BuildSeedPairs(u, cfg.NameIDs, cfg.Neighbors, m, cfg.Theta)
				if cfg.Seed == nil {
					b.Fatal("BuildSeedPairs returned nil")
				}
			}
			if !mode.legacy {
				cfg.Scratch = &Scratch{}
			}
			r := rand.New(rand.NewSource(7))
			subsets := make([][]int, 64)
			for i := range subsets {
				subsets[i] = r.Perm(u.N())[:50]
				slices.Sort(subsets[i])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Match(u, subsets[i%len(subsets)], nil, nil, cfg)
			}
		})
	}
}

func BenchmarkMatchAgenda(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	schemas := randomSchemas(r, 50)
	u := mkUniverse(schemas...)
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"legacy", true}, {"agenda", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := defaultCfg()
			cfg.LegacyAgenda = mode.legacy
			for i := range u.Sources {
				for _, a := range u.Sources[i].Attributes {
					cfg.Sim.Intern(a)
				}
			}
			m := mustMatrix(cfg.Sim)
			cfg.Scores = m
			cfg.Neighbors = m.Neighbors(cfg.Theta)
			cfg.NameIDs = buildNameIDs(u, cfg.Sim)
			S := allSources(u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Match(u, S, nil, nil, cfg)
			}
		})
	}
}
