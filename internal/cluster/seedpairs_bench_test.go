package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"ube/internal/strsim"
)

// BenchmarkSeedPairsSparse measures seed-pair construction on the
// blocking-index path: the sparse table (built once, outside the loop)
// stands in for the dense matrix as both adjacency and Table, the
// configuration the engine uses on large vocabularies.
func BenchmarkSeedPairsSparse(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	cores := []string{"title", "author", "isbn", "price", "publisher", "year", "edition", "format"}
	suffixes := []string{"", "s", " id", " code"}
	schemas := make([][]string, 200)
	for i := range schemas {
		k := 3 + r.Intn(4)
		seen := map[string]bool{}
		for len(schemas[i]) < k {
			name := cores[r.Intn(len(cores))] + suffixes[r.Intn(len(suffixes))]
			if !seen[name] {
				seen[name] = true
				schemas[i] = append(schemas[i], name)
			}
		}
		// A per-source unique attribute keeps the vocabulary growing with
		// the universe, as in the internet-scale workload.
		schemas[i] = append(schemas[i], fmt.Sprintf("local field %03d", i))
	}
	u := mkUniverse(schemas...)
	sim := strsim.NewCache(nil)
	for i := range u.Sources {
		for _, a := range u.Sources[i].Attributes {
			sim.Intern(a)
		}
	}
	theta := 0.65
	sp, _, err := sim.BuildSparse(theta, strsim.BlockConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ids := buildNameIDs(u, sim)
	nbrs := sp.Neighbors(theta)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := BuildSeedPairs(u, ids, nbrs, sp, theta); got.Len() == 0 {
			b.Fatal("no seed pairs on overlapping schemas")
		}
	}
}
