package cluster

import (
	"math"

	"ube/internal/model"
	"ube/internal/strsim"
)

// SeedPairs is a universe-level precomputation of the round-1 agenda: every
// pair of attribute slots whose name similarity reaches θ, grouped by
// source pair. Round 1 holds the bulk of all candidate pairs Match ever
// scores (~75% on the synthetic workload), and with a matrix scorer its
// content depends only on (universe, θ) — not on the candidate subset — so
// the engine builds this once per solve and every Match(S) replaces the
// whole seed enumeration and scoring with a gather over the |S|(|S|+1)/2
// groups of S's source pairs: two array lookups per group, one 8-byte
// record copy per emitted pair, no similarity lookups at all.
//
// The gather relies on seed()'s layout: with G empty, seed() emits one
// singleton cluster per attribute in (position of source in S, attribute
// index) order, so each slot's subset ord is its source's running
// attribute base plus the attribute index, and a pair of singletons scores
// exactly the name-pair score the matrix holds. Match falls back to the
// ordinary enumeration whenever the preconditions fail (see
// seedCompatible).
type SeedPairs struct {
	pairs  []seedPair // grouped by (srcA, srcB) source pair
	start  []int32    // srcA*nSrc+srcB -> offset of the group in pairs
	nSrc   int
	scores strsim.Table // identity-gates against a rebuilt vocabulary
	theta  float64
}

// seedPair is one candidate pair within a source-pair group: the two
// attribute indices and the pair's similarity as a simKey30 key. 8 bytes,
// so a gather streams groups at memory speed.
type seedPair struct {
	key          int32
	attrA, attrB int16
}

// seedPairsMaxSources caps the group-offset table (nSrc² int32s, 16 MB at
// the cap); larger universes just skip the fast path.
const seedPairsMaxSources = 2048

// BuildSeedPairs precomputes the global seed agenda for a universe at
// threshold theta. It returns nil — callers then just skip the fast path —
// when the preconditions don't hold: the scorer must be a float32-exact
// table (dense matrix or θ-sparse — either way exact 30-bit keys),
// nameIDs and neighbors must be prebuilt for it, and the universe must
// fit the compact encoding.
func BuildSeedPairs(u *model.Universe, nameIDs [][]int, neighbors [][]int, scores strsim.Scorer, theta float64) *SeedPairs {
	m, ok := scores.(strsim.Table)
	if !ok || nameIDs == nil || neighbors == nil || u.N() > seedPairsMaxSources {
		return nil
	}

	type slot struct{ src, attr int32 }
	owners := make([][]slot, m.Len()) // name ID -> slots carrying it
	for s := 0; s < u.N(); s++ {
		attrs := u.Source(s).Attributes
		if len(attrs) > math.MaxInt16 {
			return nil
		}
		for a := range attrs {
			n := nameIDs[s][a]
			owners[n] = append(owners[n], slot{int32(s), int32(a)})
		}
	}

	// Two passes over the same enumeration: group sizes, then records.
	// Every unordered slot pair with score ≥ θ lands in exactly one
	// group, emitted from its (src, attr)-smaller side; a singleton has
	// one name, so no pair is reachable via two name links.
	nSrc := u.N()
	sp := &SeedPairs{start: make([]int32, nSrc*nSrc+1), nSrc: nSrc, scores: m, theta: theta}
	counts := sp.start[1:]
	forEachPair := func(emit func(group int32, key int32, attrA, attrB int16)) {
		for s := 0; s < nSrc; s++ {
			row := int32(s * nSrc)
			for a := range u.Source(s).Attributes {
				na := nameIDs[s][a]
				for _, nb := range neighbors[na] {
					score := m.Score(na, nb)
					if score < theta {
						continue
					}
					key := int32(simKey30(score))
					for _, t := range owners[nb] {
						if int(t.src) < s || (int(t.src) == s && int(t.attr) <= a) {
							continue
						}
						emit(row+t.src, key, int16(a), int16(t.attr))
					}
				}
			}
		}
	}
	forEachPair(func(group, _ int32, _, _ int16) { counts[group]++ })
	var sum int32
	for g := range counts {
		counts[g], sum = sum, sum+counts[g]
	}
	sp.pairs = make([]seedPair, sum)
	forEachPair(func(group, key int32, attrA, attrB int16) {
		sp.pairs[counts[group]] = seedPair{key: key, attrA: attrA, attrB: attrB}
		counts[group]++
	})
	// counts[g] now holds the END of group g, i.e. start[g+1] — exactly
	// what the shifted view made it.
	return sp
}

// Len reports the number of precomputed global pairs.
func (sp *SeedPairs) Len() int { return len(sp.pairs) }

// SizeBytes reports the memory footprint of the pair list and group table.
func (sp *SeedPairs) SizeBytes() int { return 8*len(sp.pairs) + 4*len(sp.start) }

// seedCompatible reports whether the precomputed agenda applies to this
// Match call: same score table, same θ, no GA constraints (constraint
// seeds break the one-singleton-per-slot layout), and a strictly
// ascending S (the gather computes subset ords from running attribute
// bases).
func seedCompatible(sp *SeedPairs, S []int, G []model.GA, cfg Config) bool {
	//ube:float-exact θ is a cache key: the precomputed agenda only applies to the bit-identical threshold it was built for
	if sp == nil || len(G) > 0 || cfg.Scores != strsim.Scorer(sp.scores) || cfg.Theta != sp.theta {
		return false
	}
	for i := 1; i < len(S); i++ {
		if S[i] <= S[i-1] {
			return false
		}
	}
	return true
}

// gatherSeed appends the round-1 agenda of subset S to out (unsorted;
// runAgenda radix-sorts it into walk order). Seed ords equal arena
// indices (runAgenda numbers the initial clusters 0..n), so ords double
// as idx fields.
func gatherSeed(u *model.Universe, S []int, sp *SeedPairs, out []agendaEntry) []agendaEntry {
	bases := make([]int32, len(S))
	ord := int32(0)
	for i, s := range S {
		bases[i] = ord
		ord += int32(len(u.Source(s).Attributes))
	}
	for i, si := range S {
		row := si * sp.nSrc
		bi := bases[i]
		for j := i; j < len(S); j++ {
			g := row + S[j]
			lo, hi := sp.start[g], sp.start[g+1]
			if lo == hi {
				continue
			}
			bj := bases[j]
			for _, p := range sp.pairs[lo:hi] {
				oa, ob := bi+int32(p.attrA), bj+int32(p.attrB)
				out = append(out, agendaEntry{key: int64(p.key), ordA: oa, ordB: ob, idxA: oa, idxB: ob})
			}
		}
	}
	return out
}
