// Package cluster implements µBE's schema matching operator Match(S): the
// greedy constrained similarity clustering of Algorithm 1 (paper §3).
//
// Match takes a set of sources and produces a mediated schema — a set of
// GAs, each a cluster of attributes from different sources — together with
// a measure of matching quality that serves as the F1 QEF. User-supplied GA
// constraints seed clusters that are never discarded, bridging semantic
// gaps the similarity measure cannot see (the "Matching By Example" idea,
// Figure 3): a cluster containing the dissimilar pair (a, b) keeps growing
// because attributes similar to a join via a and attributes similar to b
// join via b, without being penalized by the other's presence.
//
// Cluster-to-cluster similarity is the maximum similarity between an
// attribute of one and an attribute of the other, and the quality of a
// cluster is the maximum similarity between any two of its attributes, both
// as defined in §3.
package cluster

import (
	"fmt"
	"slices"
	"sort"

	"ube/internal/model"
	"ube/internal/strsim"
	"ube/internal/trace"
)

// Config carries the clustering parameters of the optimization problem.
type Config struct {
	// Theta is the matching threshold θ: two clusters merge only if
	// their similarity is at least Theta. The paper's default is 0.65.
	Theta float64
	// Beta is the lower bound β on the number of attributes in any
	// output GA that does not stem from a GA constraint. Algorithm 1
	// only ever outputs grown clusters of size ≥ 2, so Beta ≤ 2 is a
	// no-op; larger values filter small GAs from the result.
	Beta int
	// Sim interns attribute names and caches pairwise similarities. It
	// must be non-nil; callers share one cache across all Match calls on
	// a universe so that re-clustering during search is cheap.
	Sim *strsim.Cache
	// Scores optionally overrides Sim for scoring interned name pairs,
	// typically with a precomputed strsim.Matrix over the universe's
	// vocabulary. Nil means score through Sim.
	Scores strsim.Scorer
	// Neighbors optionally indexes, for every interned name ID, the
	// name IDs with similarity ≥ Theta (see strsim.Matrix.Neighbors).
	// When present, merge-candidate enumeration touches only cluster
	// pairs with a known above-threshold name link instead of scoring
	// all Θ(k²) pairs each round. It must be built for the same
	// vocabulary as Scores and the same (or lower) threshold.
	Neighbors [][]int
	// NameIDs optionally maps NameIDs[sourceID][attrIndex] to the
	// interned name ID of that attribute, letting seed skip the
	// per-call interning (a lock acquire + normalization per attribute
	// per Match). The engine precomputes it once per universe. The IDs
	// must come from Sim so that Scores and Neighbors line up.
	NameIDs [][]int
	// Scratch optionally supplies reusable working memory for Match.
	// A Scratch must not be shared by concurrent Match calls; callers
	// running parallel evaluations keep one per worker. Nil makes Match
	// allocate fresh (correct, just slower — the clustering loop's
	// allocation traffic is a large share of solve time otherwise).
	Scratch *Scratch
	// Seed optionally holds the universe-level precomputed round-1
	// agenda (see BuildSeedPairs). When it applies to a call — same
	// matrix and θ, no GA constraints, strictly ascending S — Match
	// gathers the initial candidate pairs from it instead of
	// enumerating, scoring and sorting them. Nil disables the fast path.
	Seed *SeedPairs
	// LegacyAgenda selects the seed implementation of the merge rounds
	// (re-enumerate, re-score and fully sort all candidate pairs every
	// round) instead of the heap agenda (see agenda.go). The two are
	// byte-identical in output; the flag exists for differential tests
	// and ablations.
	LegacyAgenda bool
	// Stats, when non-nil, receives the clustering work counters (runs,
	// rounds, agenda pops, pairs admitted) for solve tracing. A pure
	// side channel: results never depend on it, and counts accumulate
	// locally per Match call and flush once, so the hot loops carry no
	// atomics. Note the two agenda implementations do equivalent work
	// but count it differently (the legacy path re-enumerates pairs
	// every round), so counter values are comparable only within one
	// implementation.
	Stats *trace.Stats
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Theta < 0 || c.Theta > 1 {
		return fmt.Errorf("cluster: theta %v outside [0,1]", c.Theta)
	}
	if c.Beta < 1 {
		return fmt.Errorf("cluster: beta %d < 1", c.Beta)
	}
	if c.Sim == nil {
		return fmt.Errorf("cluster: nil similarity cache")
	}
	return nil
}

// Result is the outcome of one Match call.
type Result struct {
	// Schema is the generated mediated schema, nil when no matching
	// satisfies both the threshold and the source constraints (the
	// algorithm's "return NULL" case).
	Schema *model.MediatedSchema
	// Quality is the F1 value: the mean, over the GAs of Schema, of each
	// GA's quality of matching. Zero when Schema is nil or empty.
	Quality float64
	// GAQuality holds the per-GA quality, parallel to Schema.GAs.
	GAQuality []float64
	// FromConstraint marks, parallel to Schema.GAs, the GAs that contain
	// a user GA constraint and are therefore exempt from the θ and β
	// floors (§2.5).
	FromConstraint []bool
	// Valid reports whether the schema is valid on the source
	// constraints C. When false, Schema is nil and Quality is 0.
	Valid bool
}

// workCluster is one cluster during Algorithm 1. Clusters hold their
// attributes, the set of sources they touch (for GA validity), and the set
// of distinct interned attribute names (similarity depends only on names,
// so deduplicating them makes max-link computation cheap on synthetic
// universes where the same name recurs across many sources).
type workCluster struct {
	attrs []model.AttrRef
	srcs  []int // sorted source IDs (one attr per source in a valid GA)
	names []int // sorted unique interned name IDs
	keep  bool  // seeded by a GA constraint: never eliminated
	grown bool  // created by a merge in some round

	// Heap-agenda state (agenda.go). ord is a stable rank reproducing
	// the legacy slice-position order; idx is the cluster's slot in the
	// arena (so agenda entries can be pointer-free — a pointer-bearing
	// entry type makes every sort swap and heap sift pay a GC write
	// barrier, which dominates the profile); the rest is round status.
	ord      int32
	idx      int32
	mergedIn int          // round this cluster was merged away in (0 = alive)
	cand     bool         // merge candidate this round (survives elimination)
	gone     bool         // eliminated
	markBy   *workCluster // pair-enumeration dedup mark
}

// Match runs Algorithm 1 on the schemas of the sources in S under source
// constraints C and GA constraints G. The caller must guarantee S ⊇ C and
// S ⊇ the sources implied by G (the engine arranges both; see §3: "we
// ensure for any call to Match(S) that S contains C").
func Match(u *model.Universe, S []int, C []int, G []model.GA, cfg Config) Result {
	if err := cfg.Validate(); err != nil {
		panic(err) // configuration is programmer-controlled
	}

	cfg.Stats.Add(trace.CMatchRuns, 1)
	if cfg.Scores == nil {
		cfg.Scores = cfg.Sim
	}
	sc := cfg.Scratch
	if sc == nil {
		sc = &Scratch{}
	}
	clusters := seed(u, S, G, cfg, sc)
	if cfg.LegacyAgenda {
		clusters = run(clusters, cfg)
	} else {
		var seedQ []agendaEntry
		preGathered := seedCompatible(cfg.Seed, S, G, cfg)
		if preGathered {
			seedQ = gatherSeed(u, S, cfg.Seed, sc.queue[:0])
		}
		clusters = runAgenda(clusters, seedQ, preGathered, cfg, sc)
	}
	return assemble(clusters, C, G, cfg)
}

// seed builds the initial cluster list: one keep-cluster per GA constraint,
// then one singleton per remaining attribute of every source in S
// (Algorithm 1 lines 1–4). Clusters and the singletons' tiny slices come
// from the scratch slabs, sized here for the whole call: seeds plus one
// slot per possible merge, so agenda-held pointers into the slab stay
// valid without it ever reallocating mid-run.
func seed(u *model.Universe, S []int, G []model.GA, cfg Config, sc *Scratch) []*workCluster {
	intern := func(r model.AttrRef) int {
		if cfg.NameIDs != nil {
			return cfg.NameIDs[r.Source][r.Attr]
		}
		return cfg.Sim.Intern(u.AttrName(r))
	}

	nSlots := 0
	for _, id := range S {
		nSlots += len(u.Source(id).Attributes)
	}
	seeds := len(G) + nSlots
	if cap(sc.slab) < 2*seeds {
		sc.slab = make([]workCluster, 0, 2*seeds+seeds/2)
	}
	sc.slab = sc.slab[:0]
	if cap(sc.attrs) < nSlots {
		sc.attrs = make([]model.AttrRef, 0, nSlots+nSlots/4)
	}
	sc.attrs = sc.attrs[:0]
	if cap(sc.ints) < 2*nSlots {
		sc.ints = make([]int, 0, 2*nSlots+nSlots/2)
	}
	sc.ints = sc.ints[:0]

	clusters := sc.list[:0]
	var inConstraint map[model.AttrRef]struct{}
	if len(G) > 0 {
		inConstraint = make(map[model.AttrRef]struct{})
		for _, g := range G {
			c := sc.newCluster()
			c.keep = true
			for _, r := range g {
				c.attrs = append(c.attrs, r)
				inConstraint[r] = struct{}{}
				addSource(c, r.Source)
				addName(c, intern(r))
			}
			clusters = append(clusters, c)
		}
	}
	for _, id := range S {
		src := u.Source(id)
		for a := range src.Attributes {
			r := model.AttrRef{Source: id, Attr: a}
			if _, taken := inConstraint[r]; taken {
				continue
			}
			c := sc.newCluster()
			na := len(sc.attrs)
			sc.attrs = append(sc.attrs, r)
			c.attrs = sc.attrs[na : na+1 : na+1]
			ni := len(sc.ints)
			sc.ints = append(sc.ints, id, intern(r))
			c.srcs = sc.ints[ni : ni+1 : ni+1]
			c.names = sc.ints[ni+1 : ni+2 : ni+2]
			clusters = append(clusters, c)
		}
	}
	sc.list = clusters
	return clusters
}

func addSource(c *workCluster, id int) {
	i := sort.SearchInts(c.srcs, id)
	if i < len(c.srcs) && c.srcs[i] == id {
		return
	}
	c.srcs = append(c.srcs, 0)
	copy(c.srcs[i+1:], c.srcs[i:])
	c.srcs[i] = id
}

func addName(c *workCluster, nameID int) {
	i := sort.SearchInts(c.names, nameID)
	if i < len(c.names) && c.names[i] == nameID {
		return
	}
	c.names = append(c.names, 0)
	copy(c.names[i+1:], c.names[i:])
	c.names[i] = nameID
}

// pair is a candidate merge, ordered by similarity (desc) with a
// deterministic index tiebreak.
type pair struct {
	i, j int
	sim  float64
}

// run executes the iterative merge rounds (Algorithm 1 lines 5–23).
func run(clusters []*workCluster, cfg Config) []*workCluster {
	var rounds, pops, admitted int64
	for {
		rounds++
		done := true
		merged := make([]bool, len(clusters))
		cand := make([]bool, len(clusters))

		// Find all cluster pairs with similarity ≥ θ, best first
		// (line 8's priority queue, realized as a sorted slice).
		pairs := collectPairs(clusters, cfg)
		admitted += int64(len(pairs))
		pops += int64(len(pairs))

		var born []*workCluster
		for _, p := range pairs {
			mi, mj := merged[p.i], merged[p.j]
			switch {
			case !mi && !mj:
				if a, b := clusters[p.i], clusters[p.j]; disjointSources(a, b) {
					born = append(born, merge(a, b))
					merged[p.i], merged[p.j] = true, true
					done = false
				}
			case mi != mj:
				// One partner was taken this round; remember the
				// other so it survives into the next round
				// (lines 15–19).
				if mi {
					cand[p.j] = true
				} else {
					cand[p.i] = true
				}
				done = false
			}
		}

		// Eliminate clusters that can never merge again: singletons
		// that are neither constraint-seeded nor merge candidates
		// (lines 20–22). Grown clusters are valid GAs already and are
		// always retained.
		next := born
		for i, c := range clusters {
			if merged[i] {
				continue // replaced by its union
			}
			if c.keep || c.grown || cand[i] {
				next = append(next, c)
			}
		}
		clusters = next
		if done {
			cfg.Stats.Add(trace.CClusterRounds, rounds)
			cfg.Stats.Add(trace.CClusterPops, pops)
			cfg.Stats.Add(trace.CClusterPairs, admitted)
			return clusters
		}
	}
}

// collectPairs returns every pair of clusters with similarity ≥ θ, sorted
// by similarity descending (deterministic tiebreak on indices).
func collectPairs(clusters []*workCluster, cfg Config) []pair {
	var pairs []pair
	if cfg.Neighbors != nil {
		pairs = collectPairsIndexed(clusters, cfg)
	} else {
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				s := clusterSim(clusters[i], clusters[j], cfg.Scores)
				if s >= cfg.Theta {
					pairs = append(pairs, pair{i, j, s})
				}
			}
		}
	}
	slices.SortFunc(pairs, func(a, b pair) int {
		switch {
		//ube:float-exact sort comparators need a strict total order; an epsilon compare is not transitive
		case a.sim != b.sim:
			if a.sim > b.sim {
				return -1
			}
			return 1
		case a.i != b.i:
			return a.i - b.i
		default:
			return a.j - b.j
		}
	})
	return pairs
}

// collectPairsIndexed enumerates candidate pairs through the name
// adjacency index: only cluster pairs sharing an above-threshold name link
// are scored, which on realistic vocabularies is a tiny fraction of all
// pairs.
func collectPairsIndexed(clusters []*workCluster, cfg Config) []pair {
	owners := make([][]int, len(cfg.Neighbors)) // name ID -> clusters carrying it
	for ci, c := range clusters {
		for _, n := range c.names {
			owners[n] = append(owners[n], ci)
		}
	}
	// mark[j] == i+1 marks cluster j as already paired with cluster i,
	// deduplicating without a map. Only pairs with j > i are scored.
	mark := make([]int, len(clusters))
	var pairs []pair
	for i, c := range clusters {
		for _, na := range c.names {
			for _, nb := range cfg.Neighbors[na] {
				for _, j := range owners[nb] {
					if j <= i || mark[j] == i+1 {
						continue
					}
					mark[j] = i + 1
					s := clusterSim(c, clusters[j], cfg.Scores)
					if s >= cfg.Theta {
						pairs = append(pairs, pair{i, j, s})
					}
				}
			}
		}
	}
	return pairs
}

// clusterSim is the §3 cluster similarity: the maximum similarity between
// an attribute of a and an attribute of b. Similarity depends only on
// names, so it is computed over the deduplicated name sets.
func clusterSim(a, b *workCluster, sim strsim.Scorer) float64 {
	best := 0.0
	for _, na := range a.names {
		for _, nb := range b.names {
			if s := sim.Score(na, nb); s > best {
				best = s
				//ube:float-exact early exit only on the exact maximum score; a near-1 epsilon match must keep scanning
				if best == 1 {
					return 1
				}
			}
		}
	}
	return best
}

// disjointSources reports whether merging a and b yields a valid GA
// (no source contributes two attributes, Definition 1). Both source lists
// are sorted, so a single merge scan suffices.
func disjointSources(a, b *workCluster) bool {
	i, j := 0, 0
	for i < len(a.srcs) && j < len(b.srcs) {
		switch {
		case a.srcs[i] == b.srcs[j]:
			return false
		case a.srcs[i] < b.srcs[j]:
			i++
		default:
			j++
		}
	}
	return true
}

// mergeInto fills c (slab-allocated) with the union of a and b, carving
// the union's slices out of the scratch pools. Handed-out pool regions are
// never written again — later appends extend past them (or move to a grown
// backing array, leaving old regions intact) — so earlier unions stay
// valid for the whole Match call.
func mergeInto(c, a, b *workCluster, sc *Scratch) {
	n := len(sc.attrs)
	sc.attrs = append(append(sc.attrs, a.attrs...), b.attrs...)
	c.attrs = sc.attrs[n:len(sc.attrs):len(sc.attrs)]
	n = len(sc.ints)
	sc.ints = appendMergedSorted(sc.ints, a.srcs, b.srcs)
	c.srcs = sc.ints[n:len(sc.ints):len(sc.ints)]
	n = len(sc.ints)
	sc.ints = appendMergedSorted(sc.ints, a.names, b.names)
	c.names = sc.ints[n:len(sc.ints):len(sc.ints)]
	c.keep = a.keep || b.keep
	c.grown = true
}

// appendMergedSorted appends the sorted union of two sorted int slices.
func appendMergedSorted(out, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// merge returns the union cluster of a and b.
func merge(a, b *workCluster) *workCluster {
	c := &workCluster{
		attrs: make([]model.AttrRef, 0, len(a.attrs)+len(b.attrs)),
		srcs:  mergeSorted(a.srcs, b.srcs),
		names: mergeSorted(a.names, b.names),
		keep:  a.keep || b.keep,
		grown: true,
	}
	c.attrs = append(c.attrs, a.attrs...)
	c.attrs = append(c.attrs, b.attrs...)
	return c
}

// mergeSorted returns the sorted union of two sorted int slices.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// quality is the §3 cluster quality: the maximum similarity between any
// two attributes of the cluster. A singleton has no pair and scores 0.
func quality(c *workCluster, sim strsim.Scorer) float64 {
	best := 0.0
	for i := 0; i < len(c.names); i++ {
		for j := i + 1; j < len(c.names); j++ {
			if s := sim.Score(c.names[i], c.names[j]); s > best {
				best = s
			}
		}
	}
	// Distinct attributes sharing one normalized name collapse to a
	// single name ID; any such duplicate is a perfect match.
	if len(c.attrs) > len(c.names) {
		best = 1
	}
	return best
}

// assemble applies the β filter, checks validity on C, and packages the
// result (Algorithm 1 line 24).
func assemble(clusters []*workCluster, C []int, G []model.GA, cfg Config) Result {
	var res Result
	schema := &model.MediatedSchema{}
	for _, c := range clusters {
		g := model.NewGA(c.attrs...)
		exempt := containsConstraint(g, G)
		if !exempt && len(g) < max(cfg.Beta, 2) {
			// Non-constraint GAs must express an actual matching
			// (≥ 2 attributes) and satisfy the user's β floor.
			continue
		}
		schema.GAs = append(schema.GAs, g)
		res.GAQuality = append(res.GAQuality, quality(c, cfg.Scores))
		res.FromConstraint = append(res.FromConstraint, exempt)
	}
	sortSchema(schema, res.GAQuality, res.FromConstraint)

	if !schema.ValidOn(C) {
		// No matching satisfies both the threshold and the source
		// constraints for this set of sources.
		return Result{}
	}
	res.Schema = schema
	res.Valid = true
	if len(schema.GAs) > 0 {
		sum := 0.0
		for _, q := range res.GAQuality {
			sum += q
		}
		res.Quality = sum / float64(len(schema.GAs))
	}
	return res
}

// containsConstraint reports whether some user GA constraint is a subset
// of g (g grew out of it and inherits its exemption).
func containsConstraint(g model.GA, G []model.GA) bool {
	for _, c := range G {
		if g.ContainsAll(c) {
			return true
		}
	}
	return false
}

// sortSchema orders GAs deterministically (by first attribute) so that
// equal inputs produce byte-identical results across runs.
func sortSchema(m *model.MediatedSchema, qual []float64, fromC []bool) {
	idx := make([]int, len(m.GAs))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		// Distinct GAs never share a first attribute (an attribute
		// belongs to one cluster), so this is a strict total order and
		// stability is moot.
		ga, gb := m.GAs[a], m.GAs[b]
		if ga[0].Less(gb[0]) {
			return -1
		}
		return 1
	})
	gas := make([]model.GA, len(idx))
	qs := make([]float64, len(idx))
	fs := make([]bool, len(idx))
	for to, from := range idx {
		gas[to], qs[to], fs[to] = m.GAs[from], qual[from], fromC[from]
	}
	copy(m.GAs, gas)
	copy(qual, qs)
	copy(fromC, fs)
}
