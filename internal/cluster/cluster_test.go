package cluster

import (
	"math/rand"
	"testing"

	"ube/internal/model"
	"ube/internal/strsim"
)

// mustMatrix builds the dense matrix for a test vocabulary, panicking on
// the (impossible at test sizes) over-limit error.
func mustMatrix(c *strsim.Cache) *strsim.Matrix {
	m, err := c.BuildMatrix()
	if err != nil {
		panic(err)
	}
	return m
}

// mkUniverse builds a universe from schemas given as attribute-name lists.
func mkUniverse(schemas ...[]string) *model.Universe {
	u := &model.Universe{}
	for i, attrs := range schemas {
		u.Sources = append(u.Sources, model.Source{
			ID:          i,
			Name:        "s",
			Attributes:  attrs,
			Cardinality: 100,
		})
	}
	return u
}

func defaultCfg() Config {
	return Config{Theta: 0.65, Beta: 2, Sim: strsim.NewCache(nil)}
}

func allSources(u *model.Universe) []int {
	ids := make([]int, u.N())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Theta: -0.1, Beta: 2, Sim: strsim.NewCache(nil)},
		{Theta: 1.1, Beta: 2, Sim: strsim.NewCache(nil)},
		{Theta: 0.5, Beta: 0, Sim: strsim.NewCache(nil)},
		{Theta: 0.5, Beta: 2, Sim: nil},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	good := defaultCfg()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestMatchExactDuplicates(t *testing.T) {
	// Three sources sharing "title" and two sharing "author": two GAs.
	u := mkUniverse(
		[]string{"title", "author"},
		[]string{"title", "price"},
		[]string{"title", "author"},
	)
	res := Match(u, allSources(u), nil, nil, defaultCfg())
	if !res.Valid || res.Schema == nil {
		t.Fatal("match should succeed")
	}
	if len(res.Schema.GAs) != 2 {
		t.Fatalf("want 2 GAs, got %d: %v", len(res.Schema.GAs), res.Schema.GAs)
	}
	var title, author model.GA
	for _, g := range res.Schema.GAs {
		switch len(g) {
		case 3:
			title = g
		case 2:
			author = g
		}
	}
	if title == nil || author == nil {
		t.Fatalf("unexpected GA sizes: %v", res.Schema.GAs)
	}
	for _, r := range title {
		if u.AttrName(r) != "title" {
			t.Errorf("title GA contains %q", u.AttrName(r))
		}
	}
	for _, r := range author {
		if u.AttrName(r) != "author" {
			t.Errorf("author GA contains %q", u.AttrName(r))
		}
	}
	// Exact duplicates give per-GA quality 1 and overall quality 1.
	if res.Quality != 1 {
		t.Errorf("quality = %v, want 1", res.Quality)
	}
	// "price" is a singleton and must not appear.
	if res.Schema.NumAttributes() != 5 {
		t.Errorf("schema covers %d attrs, want 5", res.Schema.NumAttributes())
	}
}

func TestMatchRespectsTheta(t *testing.T) {
	// "keyword" and "keywords" have 3-gram Jaccard ~0.83; with θ=0.9 they
	// must not merge, with θ=0.65 they must.
	u := mkUniverse([]string{"keyword"}, []string{"keywords"})
	lo := defaultCfg()
	res := Match(u, allSources(u), nil, nil, lo)
	if len(res.Schema.GAs) != 1 {
		t.Errorf("θ=0.65: want 1 GA, got %v", res.Schema.GAs)
	}
	hi := defaultCfg()
	hi.Theta = 0.9
	res = Match(u, allSources(u), nil, nil, hi)
	if len(res.Schema.GAs) != 0 {
		t.Errorf("θ=0.9: want 0 GAs, got %v", res.Schema.GAs)
	}
}

func TestMatchQualityFloor(t *testing.T) {
	// Every non-constraint GA's quality must be ≥ θ by construction.
	u := mkUniverse(
		[]string{"title", "author", "isbn"},
		[]string{"book title", "author", "isbn number"},
		[]string{"title", "writer", "isbn"},
		[]string{"titles", "authors", "price"},
	)
	cfg := defaultCfg()
	res := Match(u, allSources(u), nil, nil, cfg)
	if !res.Valid {
		t.Fatal("match should succeed")
	}
	for i, q := range res.GAQuality {
		if !res.FromConstraint[i] && q < cfg.Theta {
			t.Errorf("GA %d quality %v below θ", i, q)
		}
	}
}

func TestMatchGAValidity(t *testing.T) {
	// A source with two identical attribute names: they can never land in
	// the same GA (Definition 1), even though their similarity is 1.
	u := mkUniverse(
		[]string{"title", "title"},
		[]string{"title"},
		[]string{"title"},
	)
	res := Match(u, allSources(u), nil, nil, defaultCfg())
	if !res.Valid {
		t.Fatal("match should succeed")
	}
	if !res.Schema.Valid() {
		t.Fatal("schema must be valid")
	}
	for _, g := range res.Schema.GAs {
		if !g.Valid() {
			t.Errorf("invalid GA in output: %v", g)
		}
	}
	// All four attributes are pairwise-identical "title"; the best the
	// matcher can do is GAs that each take at most one attr per source.
	total := res.Schema.NumAttributes()
	if total > 4 {
		t.Errorf("schema covers %d attrs, more than exist", total)
	}
}

func TestFigure3Bridging(t *testing.T) {
	// The paper's Figure 3: without a GA constraint, "F name" and "Prenom"
	// stay apart; with the constraint, the cluster bridges the semantic
	// gap and grows with attributes similar to either side.
	u := mkUniverse(
		[]string{"F name"},     // 0: English
		[]string{"Prenom"},     // 1: French
		[]string{"first name"}, // 2: similar to neither above θ? check below
		[]string{"Prenoms"},    // 3: similar to Prenom
	)
	cfg := defaultCfg()

	// Sanity: the bridged pair is below θ on its own.
	if s := cfg.Sim.ScoreNames("F name", "Prenom"); s >= cfg.Theta {
		t.Fatalf("test premise broken: sim(F name, Prenom) = %v", s)
	}

	// Without constraints, "F name" and "Prenom" never share a GA.
	res := Match(u, allSources(u), nil, nil, cfg)
	fname := model.AttrRef{Source: 0, Attr: 0}
	prenom := model.AttrRef{Source: 1, Attr: 0}
	if res.Schema != nil {
		for _, g := range res.Schema.GAs {
			if g.Contains(fname) && g.Contains(prenom) {
				t.Fatal("unconstrained match must not bridge F name/Prenom")
			}
		}
	}

	// With the GA constraint, they must end up together, and "Prenoms"
	// (similar to Prenom) joins the same cluster via the bridge.
	G := []model.GA{model.NewGA(fname, prenom)}
	res = Match(u, allSources(u), nil, G, cfg)
	if !res.Valid {
		t.Fatal("constrained match should succeed")
	}
	var bridged model.GA
	for _, g := range res.Schema.GAs {
		if g.Contains(fname) {
			bridged = g
		}
	}
	if bridged == nil || !bridged.Contains(prenom) {
		t.Fatalf("GA constraint not honored: %v", res.Schema.GAs)
	}
	if !bridged.Contains(model.AttrRef{Source: 3, Attr: 0}) {
		t.Errorf("bridge should attract Prenoms: %v", bridged)
	}
	// The output must subsume the constraint schema (G ⊑ M).
	gSchema := &model.MediatedSchema{GAs: G}
	if !res.Schema.Subsumes(gSchema) {
		t.Error("output must subsume GA constraints")
	}
}

func TestConstraintGAExemptFromTheta(t *testing.T) {
	// A GA constraint of totally dissimilar names survives with quality
	// below θ and is flagged FromConstraint.
	u := mkUniverse([]string{"apple"}, []string{"zebra"})
	G := []model.GA{model.NewGA(
		model.AttrRef{Source: 0, Attr: 0},
		model.AttrRef{Source: 1, Attr: 0},
	)}
	res := Match(u, allSources(u), nil, G, defaultCfg())
	if !res.Valid || len(res.Schema.GAs) != 1 {
		t.Fatalf("constraint GA must survive: %+v", res)
	}
	if !res.FromConstraint[0] {
		t.Error("GA should be flagged as constraint-derived")
	}
	if res.GAQuality[0] >= 0.65 {
		t.Errorf("quality %v unexpectedly above θ", res.GAQuality[0])
	}
}

func TestSourceConstraintFailure(t *testing.T) {
	// Source 2's only attribute matches nothing: a source constraint on
	// it cannot be satisfied, so Match returns the NULL schema.
	u := mkUniverse(
		[]string{"title"},
		[]string{"title"},
		[]string{"xyzzy"},
	)
	res := Match(u, allSources(u), []int{2}, nil, defaultCfg())
	if res.Valid || res.Schema != nil || res.Quality != 0 {
		t.Errorf("match should return NULL on unsatisfiable C: %+v", res)
	}
	// Without the constraint the same universe matches fine.
	res = Match(u, allSources(u), nil, nil, defaultCfg())
	if !res.Valid || len(res.Schema.GAs) != 1 {
		t.Errorf("unconstrained match should succeed: %+v", res)
	}
	// And a constraint on a matched source is satisfied.
	res = Match(u, allSources(u), []int{0, 1}, nil, defaultCfg())
	if !res.Valid {
		t.Error("satisfiable C rejected")
	}
}

func TestBetaFiltersSmallGAs(t *testing.T) {
	u := mkUniverse(
		[]string{"title", "author"},
		[]string{"title", "author"},
		[]string{"title"},
	)
	cfg := defaultCfg()
	cfg.Beta = 3
	res := Match(u, allSources(u), nil, nil, cfg)
	// title spans 3 sources (kept); author spans only 2 (filtered).
	if len(res.Schema.GAs) != 1 || len(res.Schema.GAs[0]) != 3 {
		t.Fatalf("β=3: want only the 3-attr title GA, got %v", res.Schema.GAs)
	}
	// GA constraints are exempt from β.
	G := []model.GA{model.NewGA(
		model.AttrRef{Source: 0, Attr: 1},
		model.AttrRef{Source: 1, Attr: 1},
	)}
	res = Match(u, allSources(u), nil, G, cfg)
	if len(res.Schema.GAs) != 2 {
		t.Fatalf("constraint GA must be exempt from β: %v", res.Schema.GAs)
	}
}

func TestTransitiveChaining(t *testing.T) {
	// Max-link clustering chains a–b–c even when sim(a,c) < θ, as long as
	// adjacent links clear θ.
	u := mkUniverse(
		[]string{"publication date"},
		[]string{"publication dates"},
		[]string{"publication dated"}, // close to both
	)
	cfg := defaultCfg()
	sim := cfg.Sim.ScoreNames("publication date", "publication dates")
	if sim < cfg.Theta {
		t.Skipf("premise: adjacent sim %v below θ", sim)
	}
	res := Match(u, allSources(u), nil, nil, cfg)
	if len(res.Schema.GAs) != 1 || len(res.Schema.GAs[0]) != 3 {
		t.Errorf("want one 3-attr chained GA, got %v", res.Schema.GAs)
	}
}

func TestMatchEmptyAndSingleSource(t *testing.T) {
	u := mkUniverse([]string{"title", "author"})
	// No sources at all: empty schema, valid on empty C.
	res := Match(u, nil, nil, nil, defaultCfg())
	if !res.Valid || len(res.Schema.GAs) != 0 || res.Quality != 0 {
		t.Errorf("empty S: %+v", res)
	}
	// One source: no cross-source matches possible.
	res = Match(u, []int{0}, nil, nil, defaultCfg())
	if !res.Valid || len(res.Schema.GAs) != 0 {
		t.Errorf("single source: %+v", res)
	}
	// A source constraint then fails (source 0 untouched by any GA).
	res = Match(u, []int{0}, []int{0}, nil, defaultCfg())
	if res.Valid {
		t.Error("C={0} with no matches should fail")
	}
}

func TestMatchDeterminism(t *testing.T) {
	u := mkUniverse(
		[]string{"title", "author", "isbn", "price"},
		[]string{"title", "authors", "isbn"},
		[]string{"book title", "author", "price range"},
		[]string{"titles", "writer", "price"},
		[]string{"title", "author", "price"},
	)
	cfg := defaultCfg()
	first := Match(u, allSources(u), nil, nil, cfg)
	for i := 0; i < 5; i++ {
		again := Match(u, allSources(u), nil, nil, defaultCfg())
		if len(again.Schema.GAs) != len(first.Schema.GAs) {
			t.Fatalf("nondeterministic GA count: %d vs %d", len(again.Schema.GAs), len(first.Schema.GAs))
		}
		for j := range again.Schema.GAs {
			if !again.Schema.GAs[j].Equal(first.Schema.GAs[j]) {
				t.Fatalf("nondeterministic GA %d: %v vs %v", j, again.Schema.GAs[j], first.Schema.GAs[j])
			}
		}
		if again.Quality != first.Quality {
			t.Fatalf("nondeterministic quality")
		}
	}
}

func TestMatrixScorerEquivalence(t *testing.T) {
	// Match with a precomputed Matrix must give identical results to the
	// lazy cache scorer.
	u := mkUniverse(
		[]string{"title", "author", "isbn"},
		[]string{"title", "keyword"},
		[]string{"titles", "author name", "isbn"},
		[]string{"keyword", "price"},
	)
	lazy := defaultCfg()
	res1 := Match(u, allSources(u), nil, nil, lazy)

	fast := defaultCfg()
	for i := range u.Sources {
		for _, a := range u.Sources[i].Attributes {
			fast.Sim.Intern(a)
		}
	}
	fast.Scores = mustMatrix(fast.Sim)
	res2 := Match(u, allSources(u), nil, nil, fast)

	if len(res1.Schema.GAs) != len(res2.Schema.GAs) {
		t.Fatalf("matrix vs cache GA count: %d vs %d", len(res2.Schema.GAs), len(res1.Schema.GAs))
	}
	for i := range res1.Schema.GAs {
		if !res1.Schema.GAs[i].Equal(res2.Schema.GAs[i]) {
			t.Errorf("GA %d differs", i)
		}
	}
}

func TestRandomUniverseInvariants(t *testing.T) {
	// Property test: on random universes the output schema is always
	// valid, subsumes G, and non-constraint GAs meet θ and β.
	vocab := []string{
		"title", "titles", "book title", "author", "authors", "writer",
		"isbn", "isbn number", "price", "price range", "keyword",
		"keywords", "publisher", "format", "year", "language",
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		var schemas [][]string
		n := 2 + r.Intn(8)
		for i := 0; i < n; i++ {
			k := 1 + r.Intn(5)
			attrs := make([]string, 0, k)
			seen := map[string]bool{}
			for len(attrs) < k {
				a := vocab[r.Intn(len(vocab))]
				if !seen[a] {
					seen[a] = true
					attrs = append(attrs, a)
				}
			}
			schemas = append(schemas, attrs)
		}
		u := mkUniverse(schemas...)
		cfg := defaultCfg()
		cfg.Theta = 0.5 + r.Float64()*0.45

		// Random 2-attribute GA constraint from two distinct sources.
		var G []model.GA
		if n >= 2 && r.Intn(2) == 0 {
			s1, s2 := r.Intn(n), r.Intn(n)
			if s1 != s2 {
				G = append(G, model.NewGA(
					model.AttrRef{Source: s1, Attr: r.Intn(len(schemas[s1]))},
					model.AttrRef{Source: s2, Attr: r.Intn(len(schemas[s2]))},
				))
			}
		}
		res := Match(u, allSources(u), nil, G, cfg)
		if !res.Valid {
			t.Fatalf("trial %d: match with empty C must always be valid", trial)
		}
		if !res.Schema.Valid() {
			t.Fatalf("trial %d: invalid schema %v", trial, res.Schema.GAs)
		}
		if !res.Schema.Subsumes(&model.MediatedSchema{GAs: G}) {
			t.Fatalf("trial %d: schema does not subsume G", trial)
		}
		for i, g := range res.Schema.GAs {
			if res.FromConstraint[i] {
				continue
			}
			if res.GAQuality[i] < cfg.Theta {
				t.Fatalf("trial %d: GA quality %v < θ %v", trial, res.GAQuality[i], cfg.Theta)
			}
			if len(g) < 2 {
				t.Fatalf("trial %d: non-constraint singleton GA", trial)
			}
		}
		if res.Quality < 0 || res.Quality > 1 {
			t.Fatalf("trial %d: quality %v out of range", trial, res.Quality)
		}
	}
}

func BenchmarkMatch50Sources(b *testing.B) {
	vocab := []string{
		"title", "titles", "book title", "author", "authors", "writer",
		"isbn", "isbn number", "price", "price range", "keyword",
		"keywords", "publisher", "format", "year", "language",
	}
	r := rand.New(rand.NewSource(1))
	var schemas [][]string
	for i := 0; i < 50; i++ {
		k := 3 + r.Intn(5)
		attrs := make([]string, 0, k)
		seen := map[string]bool{}
		for len(attrs) < k {
			a := vocab[r.Intn(len(vocab))]
			if !seen[a] {
				seen[a] = true
				attrs = append(attrs, a)
			}
		}
		schemas = append(schemas, attrs)
	}
	u := mkUniverse(schemas...)
	cfg := defaultCfg()
	for i := range u.Sources {
		for _, a := range u.Sources[i].Attributes {
			cfg.Sim.Intern(a)
		}
	}
	cfg.Scores = mustMatrix(cfg.Sim)
	S := allSources(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Match(u, S, nil, nil, cfg)
	}
}

func TestFixpointNoMergeableGAsRemain(t *testing.T) {
	// Algorithm 1 terminates "when it cannot find any more pairs of
	// clusters to merge": in the final schema, any two GAs whose
	// similarity clears θ must be unmergeable (they share a source).
	vocab := []string{
		"title", "titles", "book title", "author", "authors", "writer",
		"isbn", "isbn number", "price", "keyword", "keywords",
	}
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		var schemas [][]string
		n := 3 + r.Intn(7)
		for i := 0; i < n; i++ {
			k := 2 + r.Intn(4)
			attrs := make([]string, 0, k)
			seen := map[string]bool{}
			for len(attrs) < k {
				a := vocab[r.Intn(len(vocab))]
				if !seen[a] {
					seen[a] = true
					attrs = append(attrs, a)
				}
			}
			schemas = append(schemas, attrs)
		}
		u := mkUniverse(schemas...)
		cfg := defaultCfg()
		res := Match(u, allSources(u), nil, nil, cfg)
		if res.Schema == nil {
			continue
		}
		gas := res.Schema.GAs
		for i := 0; i < len(gas); i++ {
			for j := i + 1; j < len(gas); j++ {
				if gaSim(u, gas[i], gas[j], cfg) >= cfg.Theta && disjointGASources(gas[i], gas[j]) {
					t.Fatalf("trial %d: GAs %v and %v are similar and mergeable — not a fixpoint", trial, gas[i], gas[j])
				}
			}
		}
	}
}

// gaSim recomputes the §3 max-link similarity between two output GAs.
func gaSim(u *model.Universe, a, b model.GA, cfg Config) float64 {
	best := 0.0
	for _, ra := range a {
		for _, rb := range b {
			if s := cfg.Sim.ScoreNames(u.AttrName(ra), u.AttrName(rb)); s > best {
				best = s
			}
		}
	}
	return best
}

func disjointGASources(a, b model.GA) bool {
	srcs := map[int]bool{}
	for _, r := range a {
		srcs[r.Source] = true
	}
	for _, r := range b {
		if srcs[r.Source] {
			return false
		}
	}
	return true
}
