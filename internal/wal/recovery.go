package wal

// Recovery: Open scans the segment files, repairs a torn tail by
// clean-prefix truncation (only ever legal in the final segment — an
// earlier segment was complete before its successor was created, so a
// tear there is corruption, not a crash artifact), enforces sequence
// contiguity across the surviving records, and hands them back for the
// server to replay.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"strings"

	"ube/internal/faultinject"
	"ube/internal/schemaio"
)

// Recovery reports what Open found on disk.
type Recovery struct {
	// Records is the surviving clean prefix, in sequence order.
	Records []*schemaio.WALRecordDoc
	// Segments is how many segment files were scanned.
	Segments int
	// TornBytes counts bytes discarded from the final segment's tail
	// (a partial or corrupt frame from a crash mid-write).
	TornBytes int64
	// DroppedRecords counts whole records removed from the clean
	// prefix by the recovery.truncated-tail fault point.
	DroppedRecords int
	// LastSeq is the sequence number of the last surviving record.
	LastSeq uint64
}

// frameInfo locates one decoded frame inside its segment.
type frameInfo struct {
	payload []byte
	off     int64
}

// Open recovers the log in dir and positions it for appending. The
// returned Recovery carries every surviving record; the log's next
// append continues the sequence after them.
func Open(opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating dir: %w", err)
	}
	indexes, err := listSegments(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	rec := &Recovery{Segments: len(indexes)}
	var records []*schemaio.WALRecordDoc
	var finalFrames []frameInfo
	finalIdx := 1
	if len(indexes) == 0 {
		// Fresh log: create the first segment.
		f, err := os.OpenFile(segmentPath(opts.Dir, 1), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: creating first segment: %w", err)
		}
		if err := syncDir(opts.Dir); err != nil {
			f.Close()
			return nil, nil, err
		}
		return startLog(opts, f, 1, 0, 0, rec)
	}
	for i, idx := range indexes {
		final := i == len(indexes)-1
		path := segmentPath(opts.Dir, idx)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reading segment %d: %w", idx, err)
		}
		frames, clean, scanErr := scanFrames(data)
		if scanErr != nil && !final {
			return nil, nil, fmt.Errorf("wal: segment %d is torn at offset %d but is not the final segment: %w", idx, clean, scanErr)
		}
		if final {
			finalIdx = idx
			finalFrames = frames
			if scanErr != nil {
				rec.TornBytes = int64(len(data)) - clean
				if err := os.Truncate(path, clean); err != nil {
					return nil, nil, fmt.Errorf("wal: repairing torn tail of segment %d: %w", idx, err)
				}
			}
		}
		for _, fr := range frames {
			doc, err := schemaio.DecodeWALRecordBytes(fr.payload)
			if err != nil {
				return nil, nil, fmt.Errorf("wal: segment %d offset %d: %w", idx, fr.off, err)
			}
			if n := len(records); n > 0 && doc.Seq != records[n-1].Seq+1 {
				return nil, nil, fmt.Errorf("wal: segment %d offset %d: record seq %d breaks contiguity after %d", idx, fr.off, doc.Seq, records[n-1].Seq)
			}
			records = append(records, doc)
		}
	}
	cleanLen := int64(0)
	if len(finalFrames) > 0 {
		last := finalFrames[len(finalFrames)-1]
		cleanLen = last.off + frameHeaderSize + int64(len(last.payload))
	}
	// recovery.truncated-tail simulates a tear wider than one frame:
	// drop whole records off the clean prefix and truncate the file to
	// match, bounded by what the final segment actually holds.
	if f := opts.Injector.Fire(faultinject.RecoveryTruncatedTail); f != nil {
		drop := int(f.Arg)
		if drop > len(finalFrames) {
			drop = len(finalFrames)
		}
		if drop > 0 {
			keep := len(finalFrames) - drop
			cleanLen = 0
			if keep > 0 {
				last := finalFrames[keep-1]
				cleanLen = last.off + frameHeaderSize + int64(len(last.payload))
			}
			if err := os.Truncate(segmentPath(opts.Dir, finalIdx), cleanLen); err != nil {
				return nil, nil, fmt.Errorf("wal: injected tail truncation of segment %d: %w", finalIdx, err)
			}
			records = records[:len(records)-drop]
			rec.DroppedRecords = drop
		}
	}
	if len(records) > 0 {
		rec.LastSeq = records[len(records)-1].Seq
	}
	rec.Records = records
	f, err := os.OpenFile(segmentPath(opts.Dir, finalIdx), os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening segment %d for append: %w", finalIdx, err)
	}
	if _, err := f.Seek(cleanLen, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seeking segment %d: %w", finalIdx, err)
	}
	return startLog(opts, f, finalIdx, cleanLen, rec.LastSeq, rec)
}

// startLog finishes Open: wires the flusher around an opened active
// segment.
func startLog(opts Options, active *os.File, idx int, off int64, lastSeq uint64, rec *Recovery) (*Log, *Recovery, error) {
	l := &Log{
		opts:      opts,
		itemCh:    make(chan *item, opts.BatchRecords*2),
		rotateCh:  make(chan *rotateReq, 1),
		stop:      make(chan struct{}),
		flusherD:  make(chan struct{}),
		active:    active,
		activeIdx: idx,
		activeOff: off,
		seq:       lastSeq,
	}
	l.activeBytes.Store(off)
	l.stats.LastSeq = lastSeq
	l.stats.ActiveSegment = idx
	go l.flusher()
	return l, rec, nil
}

// listSegments returns the existing segment indexes in ascending order,
// rejecting gaps: rotation deletes only from the oldest end, so a
// missing middle segment means lost history.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing dir: %w", err)
	}
	var indexes []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
		if err != nil || idx < 1 {
			return nil, fmt.Errorf("wal: unrecognized segment file %q", name)
		}
		indexes = append(indexes, idx)
	}
	sort.Ints(indexes)
	for i := 1; i < len(indexes); i++ {
		if indexes[i] != indexes[i-1]+1 {
			return nil, fmt.Errorf("wal: segment gap between %d and %d", indexes[i-1], indexes[i])
		}
	}
	return indexes, nil
}

// scanFrames walks data frame by frame, returning every intact frame
// and the clean-prefix length. A non-nil error describes why scanning
// stopped early (short header, impossible length, short payload, CRC
// mismatch); the frames before it are still good.
func scanFrames(data []byte) ([]frameInfo, int64, error) {
	var frames []frameInfo
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			return frames, off, fmt.Errorf("wal: %d-byte partial frame header", len(rest))
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxFramePayload {
			return frames, off, fmt.Errorf("wal: frame declares %d-byte payload, limit %d", n, maxFramePayload)
		}
		if int64(len(rest)) < frameHeaderSize+int64(n) {
			return frames, off, fmt.Errorf("wal: frame declares %d-byte payload but only %d bytes remain", n, len(rest)-frameHeaderSize)
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int64(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			return frames, off, fmt.Errorf("wal: frame CRC mismatch")
		}
		frames = append(frames, frameInfo{payload: payload, off: off})
		off += frameHeaderSize + int64(n)
	}
	return frames, off, nil
}

// ScanFrames is the exported clean-prefix scanner: it returns the
// intact payloads, the clean-prefix length, and the tear description
// (nil when data ends exactly on a frame boundary). It never panics on
// arbitrary input — the fuzz harness holds it to that.
func ScanFrames(data []byte) ([][]byte, int64, error) {
	frames, clean, err := scanFrames(data)
	payloads := make([][]byte, len(frames))
	for i, fr := range frames {
		payloads[i] = fr.payload
	}
	return payloads, clean, err
}
