package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ube/internal/faultinject"
	"ube/internal/schemaio"
)

func openTest(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	opts.Dir = dir
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func mustAppend(t *testing.T, l *Log, typ, session string, data []byte) uint64 {
	t.Helper()
	seq, err := l.Append(typ, session, data)
	if err != nil {
		t.Fatalf("Append(%s): %v", typ, err)
	}
	return seq
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openTest(t, dir, Options{})
	if len(rec.Records) != 0 || rec.Segments != 0 {
		t.Fatalf("fresh log recovered %d records, %d segments", len(rec.Records), rec.Segments)
	}
	want := []struct {
		typ, session string
		data         string
	}{
		{schemaio.WALTypeCreate, "s1", `{"universe":["a"]}`},
		{schemaio.WALTypeSolve, "s1", `{"iteration":0,"request":{}}`},
		{schemaio.WALTypeSolve, "s1", `{"iteration":1,"request":{"pins":["x"]}}`},
		{schemaio.WALTypeDelete, "s1", ""},
	}
	for i, w := range want {
		var data []byte
		if w.data != "" {
			data = []byte(w.data)
		}
		seq := mustAppend(t, l, w.typ, w.session, data)
		if seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if st := l.Stats(); st.Appends != 4 || st.LastSeq != 4 {
		t.Fatalf("stats after appends: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != len(want) || rec2.LastSeq != 4 || rec2.TornBytes != 0 {
		t.Fatalf("recovery: %d records, lastSeq %d, torn %d", len(rec2.Records), rec2.LastSeq, rec2.TornBytes)
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) || r.Type != want[i].typ || r.Session != want[i].session {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
		if want[i].data != "" && string(r.Data) != want[i].data {
			t.Fatalf("record %d data = %s, want %s", i, r.Data, want[i].data)
		}
	}
	// The recovered log continues the sequence.
	if seq := mustAppend(t, l2, schemaio.WALTypeEvict, "s2", nil); seq != 5 {
		t.Fatalf("post-recovery append got seq %d, want 5", seq)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	l, _ := openTest(t, t.TempDir(), Options{BatchRecords: 16, MaxWait: 20 * time.Millisecond})
	defer l.Close()
	const n = 64
	var wg sync.WaitGroup
	seqs := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seqs[i] = mustAppend(t, l, schemaio.WALTypeEvict, fmt.Sprintf("s%d", i), nil)
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("appends = %d, want %d", st.Appends, n)
	}
	if st.Batches >= n {
		t.Fatalf("batches = %d; group commit coalesced nothing", st.Batches)
	}
	var lat uint64
	for _, c := range st.FlushLatency {
		lat += c
	}
	if lat != n {
		t.Fatalf("latency histogram holds %d observations, want %d", lat, n)
	}
	seen := make(map[uint64]bool)
	for _, s := range seqs {
		if s == 0 || s > n || seen[s] {
			t.Fatalf("sequence numbers not a permutation of 1..%d: %v", n, seqs)
		}
		seen[s] = true
	}
}

func TestTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	mustAppend(t, l, schemaio.WALTypeCreate, "s1", []byte(`{"u":1}`))
	mustAppend(t, l, schemaio.WALTypeEvict, "s1", nil)
	l.Close()

	path := segmentPath(dir, 1)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tail []byte
	}{
		{"partial header", []byte{0x10, 0x00}},
		{"declared length past EOF", append([]byte{0xff, 0x00, 0x00, 0x00, 1, 2, 3, 4}, []byte("short")...)},
		{"crc mismatch", func() []byte {
			fr := EncodeFrame([]byte(`{"seq":3}`))
			fr[len(fr)-1] ^= 0xff
			return fr
		}()},
		{"oversize length", []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, append(append([]byte{}, good...), tc.tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			l, rec := openTest(t, dir, Options{})
			defer l.Close()
			if len(rec.Records) != 2 || rec.TornBytes != int64(len(tc.tail)) {
				t.Fatalf("recovered %d records, torn %d bytes (tail %d)", len(rec.Records), rec.TornBytes, len(tc.tail))
			}
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(after, good) {
				t.Fatalf("repair left %d bytes, want %d", len(after), len(good))
			}
		})
	}
}

func TestTailExactlyAtFrameBoundary(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	mustAppend(t, l, schemaio.WALTypeCreate, "s1", []byte(`{"u":1}`))
	l.Close()
	// No tear: the file ends exactly where the last frame does.
	l2, rec := openTest(t, dir, Options{})
	defer l2.Close()
	if rec.TornBytes != 0 || len(rec.Records) != 1 {
		t.Fatalf("boundary-exact tail: torn %d, records %d", rec.TornBytes, len(rec.Records))
	}
}

func TestMidSegmentCorruptionTruncatesFromThere(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	mustAppend(t, l, schemaio.WALTypeCreate, "s1", []byte(`{"u":1}`))
	mustAppend(t, l, schemaio.WALTypeEvict, "s1", nil)
	mustAppend(t, l, schemaio.WALTypeEvict, "s2", nil)
	l.Close()
	path := segmentPath(dir, 1)
	data, _ := os.ReadFile(path)
	frames, _, _ := scanFrames(data)
	// Flip a payload byte of the middle frame: everything from it on is
	// discarded as the torn tail.
	data[frames[1].off+frameHeaderSize] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 1 || rec.Records[0].Seq != 1 {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
	if rec.TornBytes == 0 {
		t.Fatal("no torn bytes counted")
	}
}

func TestTornNonFinalSegmentIsError(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	mustAppend(t, l, schemaio.WALTypeCreate, "s1", []byte(`{"u":1}`))
	if err := l.Rotate(func() ([]SessionSnapshot, error) {
		return []SessionSnapshot{{Session: "s1", Data: []byte(`{"s":1}`)}}, nil
	}); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	l.Close()
	// Rotation removed segment 1; recreate a fake torn predecessor.
	if err := os.WriteFile(segmentPath(dir, 1), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "not the final segment") {
		t.Fatalf("Open err = %v", err)
	}
}

func TestRotationAnchorsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	mustAppend(t, l, schemaio.WALTypeCreate, "s1", []byte(`{"u":1}`))
	mustAppend(t, l, schemaio.WALTypeSolve, "s1", []byte(`{"iteration":0,"request":{}}`))
	snap := []byte(`{"state":"s1-after-1-solve"}`)
	if err := l.Rotate(func() ([]SessionSnapshot, error) {
		return []SessionSnapshot{{Session: "s1", Data: snap}}, nil
	}); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if _, err := os.Stat(segmentPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("segment 1 still present after rotation: %v", err)
	}
	mustAppend(t, l, schemaio.WALTypeSolve, "s1", []byte(`{"iteration":1,"request":{}}`))
	if st := l.Stats(); st.Rotations != 1 {
		t.Fatalf("rotations = %d", st.Rotations)
	}
	l.Close()

	l2, rec := openTest(t, dir, Options{})
	defer l2.Close()
	types := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		types[i] = r.Type
	}
	want := []string{schemaio.WALTypeSnapshot, schemaio.WALTypeCheckpoint, schemaio.WALTypeSolve}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("recovered types %v, want %v", types, want)
	}
	if string(rec.Records[0].Data) != string(snap) {
		t.Fatalf("snapshot payload %s", rec.Records[0].Data)
	}
	ckpt, err := schemaio.DecodeWALCheckpointBytes(rec.Records[1].Data)
	if err != nil || len(ckpt.Sessions) != 1 || ckpt.Sessions[0] != "s1" {
		t.Fatalf("checkpoint %v: %v", ckpt, err)
	}
	// Seqs continue across the rotation: 2 appends, then snapshot=3,
	// checkpoint=4, post-rotation solve=5.
	if rec.Records[0].Seq != 3 || rec.LastSeq != 5 {
		t.Fatalf("snapshot seq %d, lastSeq %d", rec.Records[0].Seq, rec.LastSeq)
	}
}

func TestSnapshotOnlyLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	// Rotate with zero live sessions: the new segment holds only the
	// checkpoint record.
	if err := l.Rotate(func() ([]SessionSnapshot, error) { return nil, nil }); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	l.Close()
	l2, rec := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 1 || rec.Records[0].Type != schemaio.WALTypeCheckpoint {
		t.Fatalf("recovered %+v", rec.Records)
	}
}

func TestShouldRotate(t *testing.T) {
	l, _ := openTest(t, t.TempDir(), Options{SegmentBytes: 64})
	defer l.Close()
	if l.ShouldRotate() {
		t.Fatal("empty log wants rotation")
	}
	mustAppend(t, l, schemaio.WALTypeCreate, "s1", []byte(`{"u":"`+strings.Repeat("x", 128)+`"}`))
	if !l.ShouldRotate() {
		t.Fatal("oversized segment does not want rotation")
	}
}

func TestSegmentGapIsError(t *testing.T) {
	dir := t.TempDir()
	for _, idx := range []int{1, 3} {
		if err := os.WriteFile(segmentPath(dir, idx), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("Open err = %v", err)
	}
}

func TestSeqContiguityViolationIsError(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	for _, seq := range []uint64{1, 3} {
		payload, err := schemaio.EncodeWALRecord(&schemaio.WALRecordDoc{Seq: seq, Type: schemaio.WALTypeEvict, Session: "s1"})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(EncodeFrame(payload))
	}
	if err := os.WriteFile(segmentPath(dir, 1), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "contiguity") {
		t.Fatalf("Open err = %v", err)
	}
}

func TestUnrecognizedSegmentFileIsError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-abc.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "unrecognized") {
		t.Fatalf("Open err = %v", err)
	}
}

func TestInjectedWriteError(t *testing.T) {
	inj := faultinject.MustNew(faultinject.Plan{Entries: []faultinject.Entry{
		{Point: faultinject.WALWriteError, Trigger: 2, Action: "fail"},
	}})
	l, _ := openTest(t, t.TempDir(), Options{Injector: inj})
	defer l.Close()
	mustAppend(t, l, schemaio.WALTypeCreate, "s1", []byte(`{"u":1}`))
	if _, err := l.Append(schemaio.WALTypeEvict, "s1", nil); err == nil {
		t.Fatal("injected write error did not surface")
	}
	// The failed append consumed no sequence number; the next one did.
	if seq := mustAppend(t, l, schemaio.WALTypeEvict, "s1", nil); seq != 2 {
		t.Fatalf("post-failure append got seq %d, want 2", seq)
	}
	st := l.Stats()
	if st.AppendErrors != 1 || st.Appends != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInjectedFsyncStall(t *testing.T) {
	inj := faultinject.MustNew(faultinject.Plan{Entries: []faultinject.Entry{
		{Point: faultinject.WALFsyncStall, Trigger: 1, Action: "stall", Arg: 30},
	}})
	l, _ := openTest(t, t.TempDir(), Options{Fsync: true, Injector: inj})
	defer l.Close()
	//ube:nondeterministic-ok measuring an injected stall in a test
	start := time.Now()
	mustAppend(t, l, schemaio.WALTypeCreate, "s1", []byte(`{"u":1}`))
	//ube:nondeterministic-ok measuring an injected stall in a test
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("stalled append returned after %v, want ≥30ms", d)
	}
	st := l.Stats()
	if st.FsyncStalls != 1 || st.Fsyncs != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInjectedTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	for i := 0; i < 5; i++ {
		mustAppend(t, l, schemaio.WALTypeEvict, fmt.Sprintf("s%d", i), nil)
	}
	l.Close()
	inj := faultinject.MustNew(faultinject.Plan{Entries: []faultinject.Entry{
		{Point: faultinject.RecoveryTruncatedTail, Trigger: 1, Action: "truncate", Arg: 2},
	}})
	l2, rec := openTest(t, dir, Options{Injector: inj})
	if len(rec.Records) != 3 || rec.DroppedRecords != 2 || rec.LastSeq != 3 {
		t.Fatalf("recovery after injected truncation: %d records, dropped %d, lastSeq %d",
			len(rec.Records), rec.DroppedRecords, rec.LastSeq)
	}
	// The file was physically truncated, so appends continue from seq 4
	// and a later disarmed recovery sees a consistent log.
	if seq := mustAppend(t, l2, schemaio.WALTypeEvict, "s9", nil); seq != 4 {
		t.Fatalf("post-truncation append got seq %d, want 4", seq)
	}
	l2.Close()
	l3, rec3 := openTest(t, dir, Options{})
	defer l3.Close()
	if len(rec3.Records) != 4 || rec3.TornBytes != 0 {
		t.Fatalf("final recovery: %d records, torn %d", len(rec3.Records), rec3.TornBytes)
	}
}

func TestClosedLogRefusesWork(t *testing.T) {
	l, _ := openTest(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(schemaio.WALTypeEvict, "s1", nil); err != ErrClosed {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := l.Rotate(func() ([]SessionSnapshot, error) { return nil, nil }); err != ErrClosed {
		t.Fatalf("Rotate after Close: %v", err)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}

func TestScanFramesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var want [][]byte
	for i := 0; i < 10; i++ {
		p, _ := json.Marshal(map[string]int{"i": i})
		want = append(want, p)
		buf.Write(EncodeFrame(p))
	}
	got, clean, err := ScanFrames(buf.Bytes())
	if err != nil || clean != int64(buf.Len()) || len(got) != len(want) {
		t.Fatalf("ScanFrames: %d frames, clean %d/%d, err %v", len(got), clean, buf.Len(), err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d = %s, want %s", i, got[i], want[i])
		}
	}
}
