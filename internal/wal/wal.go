// Package wal is the append-only write-ahead log behind durable
// sessions (DESIGN.md §14). Every session lifecycle event — create
// (with the full request bytes), committed solve (with the request that
// produced it), periodic snapshot, delete, evict — is framed as
// u32le(len) ‖ u32le(crc32c) ‖ payload and appended to a numbered
// segment file. Appends go through a single group-commit flusher:
// callers block until the batch holding their record is written (and
// fsynced, when configured), so a record handed back with a sequence
// number is durable under the configured discipline.
//
// Rotation writes a self-contained snapshot of every live session plus
// a checkpoint marker at the head of a fresh segment, fsyncs it, and
// only then deletes older segments — so the set of files on disk always
// replays to the current state. Recovery (Open) scans the segments,
// repairs a torn tail by clean-prefix truncation (legal only in the
// final segment), and returns the surviving records for the server to
// replay through the deterministic engine.
//
// The log stores bytes and sequence numbers; it never interprets
// payloads beyond the strict envelope in internal/schemaio. Wall-clock
// reads here are operational (commit timestamps, flush latency); replay
// never consults them.
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ube/internal/faultinject"
	"ube/internal/schemaio"
)

const (
	// frameHeaderSize is the fixed prefix of every frame: payload
	// length then CRC-32C of the payload, both little-endian u32.
	frameHeaderSize = 8
	// maxFramePayload bounds a single record: the 64 MiB request-body
	// bound plus envelope slack. A larger declared length is treated as
	// corruption, not a frame to allocate.
	maxFramePayload = 72 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// FlushLatencyBucketsMs are the upper bounds (milliseconds) of the
// flush-latency histogram; one overflow bucket follows the last bound.
var FlushLatencyBucketsMs = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250}

// Options configures a log. The zero value of every field gets a
// usable default except Dir, which is required.
type Options struct {
	// Dir holds the segment files; created if absent.
	Dir string
	// Fsync syncs every group commit before acknowledging it. Off, the
	// log still writes through to the OS on every batch, so only an OS
	// crash (not a process crash) can lose acknowledged records.
	Fsync bool
	// BatchRecords flushes a batch at this many records (default 64).
	BatchRecords int
	// BatchBytes flushes a batch at this many payload bytes
	// (default 1 MiB).
	BatchBytes int
	// MaxWait bounds how long the first record of a batch waits for
	// company before the batch flushes anyway (default 2ms).
	MaxWait time.Duration
	// SegmentBytes is the size past which ShouldRotate reports true
	// (default 16 MiB). Rotation itself is the caller's move, because
	// only the caller can produce session snapshots.
	SegmentBytes int64
	// Injector arms the wal.* fault points; nil is disarmed.
	Injector *faultinject.Injector
}

func (o Options) withDefaults() Options {
	if o.BatchRecords <= 0 {
		o.BatchRecords = 64
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = 1 << 20
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

// SessionSnapshot is one session's self-contained snapshot payload
// (schemaio.SessionSnapshotDoc bytes), produced by the server's
// rotation callback.
type SessionSnapshot struct {
	Session string
	Data    []byte
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Appends       uint64
	AppendErrors  uint64
	Batches       uint64
	Fsyncs        uint64
	FsyncStalls   uint64
	Rotations     uint64
	BytesWritten  uint64
	LastSeq       uint64
	ActiveSegment int
	ActiveBytes   int64
	// FlushLatency counts commits per FlushLatencyBucketsMs bucket,
	// plus one trailing overflow bucket.
	FlushLatency [11]uint64
}

type item struct {
	typ     string
	session string
	data    []byte
	//ube:operational commit wall-clock carried into the record's operational TS field
	ts int64
	//ube:operational enqueue instant, read only to measure commit latency
	enq time.Time
	res chan itemResult
}

type itemResult struct {
	seq uint64
	err error
}

type rotateReq struct {
	build func() ([]SessionSnapshot, error)
	done  chan error
}

// Log is an open write-ahead log. All writes funnel through one
// flusher goroutine, so segment bytes and sequence numbers are a pure
// function of append order.
type Log struct {
	opts Options

	itemCh   chan *item
	rotateCh chan *rotateReq
	stop     chan struct{}
	flusherD chan struct{}

	// closeMu serializes Append/Rotate channel sends against Close, so
	// Close never strands a sender on a channel the flusher has left.
	closeMu sync.RWMutex
	closed  bool

	// Flusher-owned state; no lock needed.
	active    *os.File
	activeIdx int
	activeOff int64
	seq       uint64
	failed    error

	activeBytes atomic.Int64

	statsMu sync.Mutex
	stats   Stats
}

// Append frames one record and blocks until it is durable under the
// configured discipline, returning its sequence number. The data bytes
// are retained until the commit completes and must not be mutated.
func (l *Log) Append(typ, session string, data []byte) (uint64, error) {
	if f := l.opts.Injector.Fire(faultinject.WALWriteError); f != nil {
		l.statsMu.Lock()
		l.stats.AppendErrors++
		l.statsMu.Unlock()
		return 0, fmt.Errorf("wal: injected write error (arrival %d)", f.Arrival)
	}
	it := &item{
		typ:     typ,
		session: session,
		data:    data,
		//ube:nondeterministic-ok commit wall-clock stamped into the operational TS field
		ts: time.Now().Unix(),
		//ube:nondeterministic-ok latency measurement start; never fed into record content
		enq: time.Now(),
		res: make(chan itemResult, 1),
	}
	l.closeMu.RLock()
	if l.closed {
		l.closeMu.RUnlock()
		return 0, ErrClosed
	}
	// The read lock must span the send: Close flips closed under the
	// write lock and only then stops the flusher, so a send under RLock
	// can never hit a channel nobody drains.
	//ube:lock-held-ok flusher always drains itemCh while the lock is acquirable; Close excludes this send via the write lock
	l.itemCh <- it
	l.closeMu.RUnlock()
	r := <-it.res
	return r.seq, r.err
}

// ShouldRotate reports whether the active segment has outgrown
// Options.SegmentBytes. Cheap enough for every commit path.
func (l *Log) ShouldRotate() bool {
	return l.activeBytes.Load() > l.opts.SegmentBytes
}

// Rotate starts a fresh segment anchored by a checkpoint: it flushes
// pending appends, calls build for a snapshot of every live session,
// writes the snapshots plus a checkpoint record at the head of the new
// segment, fsyncs, and deletes the older segments. build runs on the
// flusher goroutine after the flush, so its snapshots cover every
// record the deleted segments could contain.
func (l *Log) Rotate(build func() ([]SessionSnapshot, error)) error {
	rr := &rotateReq{build: build, done: make(chan error, 1)}
	l.closeMu.RLock()
	if l.closed {
		l.closeMu.RUnlock()
		return ErrClosed
	}
	// Same protocol as Append: the lock makes send-vs-Close impossible.
	//ube:lock-held-ok flusher always drains rotateCh while the lock is acquirable; Close excludes this send via the write lock
	l.rotateCh <- rr
	l.closeMu.RUnlock()
	return <-rr.done
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.statsMu.Lock()
	defer l.statsMu.Unlock()
	s := l.stats
	s.ActiveBytes = l.activeBytes.Load()
	return s
}

// Close flushes pending appends and closes the segment. Further
// operations return ErrClosed.
func (l *Log) Close() error {
	l.closeMu.Lock()
	if l.closed {
		l.closeMu.Unlock()
		return nil
	}
	l.closed = true
	l.closeMu.Unlock()
	close(l.stop)
	<-l.flusherD
	if l.active != nil {
		return l.active.Close()
	}
	return nil
}

// flusher is the single writer: it batches items by count, bytes and
// MaxWait, commits each batch, and services rotations between batches.
func (l *Log) flusher() {
	defer close(l.flusherD)
	var timer *time.Timer
	for {
		select {
		case it := <-l.itemCh:
			batch := []*item{it}
			size := len(it.data)
			if timer == nil {
				timer = time.NewTimer(l.opts.MaxWait)
			} else {
				timer.Reset(l.opts.MaxWait)
			}
		fill:
			for len(batch) < l.opts.BatchRecords && size < l.opts.BatchBytes {
				select {
				case more := <-l.itemCh:
					batch = append(batch, more)
					size += len(more.data)
				case <-timer.C:
					break fill
				case <-l.stop:
					break fill
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			l.commit(batch)
		case rr := <-l.rotateCh:
			rr.done <- l.doRotate(rr.build)
		case <-l.stop:
			l.drain()
			return
		}
	}
}

// drain commits everything still queued at Close time. Close holds the
// write lock first, so no new sends race this.
func (l *Log) drain() {
	for {
		select {
		case it := <-l.itemCh:
			l.commit([]*item{it})
		case rr := <-l.rotateCh:
			rr.done <- ErrClosed
		default:
			return
		}
	}
}

// commit writes one batch as consecutive frames, syncs when configured,
// and answers every item. On any error the segment is truncated back to
// the pre-batch offset and the sequence counter rolled back, so a
// failed batch leaves no partial trace: callers can retry, and the log
// never acknowledges less than it wrote.
func (l *Log) commit(batch []*item) {
	if len(batch) == 0 {
		return
	}
	err := l.failed
	var seqs []uint64
	if err == nil {
		seqs, err = l.writeBatch(batch)
	}
	l.statsMu.Lock()
	if err != nil {
		l.stats.AppendErrors += uint64(len(batch))
	} else {
		l.stats.Appends += uint64(len(batch))
		l.stats.Batches++
		l.stats.LastSeq = l.seq
	}
	for _, it := range batch {
		//ube:nondeterministic-ok commit latency observation; operational histogram only
		lat := time.Since(it.enq)
		l.stats.FlushLatency[latencyBucket(lat)]++
	}
	l.statsMu.Unlock()
	for i, it := range batch {
		if err != nil {
			it.res <- itemResult{err: err}
		} else {
			it.res <- itemResult{seq: seqs[i]}
		}
	}
}

// writeBatch encodes and writes the batch's frames, returning the
// assigned sequence numbers. Flusher goroutine only.
func (l *Log) writeBatch(batch []*item) ([]uint64, error) {
	startOff := l.activeOff
	startSeq := l.seq
	var buf bytes.Buffer
	seqs := make([]uint64, len(batch))
	for i, it := range batch {
		l.seq++
		seqs[i] = l.seq
		payload, err := schemaio.EncodeWALRecord(&schemaio.WALRecordDoc{
			Seq:     l.seq,
			Type:    it.typ,
			Session: it.session,
			TS:      it.ts,
			Data:    it.data,
		})
		if err != nil {
			l.seq = startSeq
			return nil, err
		}
		appendFrame(&buf, payload)
	}
	if err := l.writeDurable(buf.Bytes()); err != nil {
		l.rollback(startOff, startSeq)
		return nil, err
	}
	l.activeOff += int64(buf.Len())
	l.activeBytes.Store(l.activeOff)
	l.statsMu.Lock()
	l.stats.BytesWritten += uint64(buf.Len())
	l.statsMu.Unlock()
	return seqs, nil
}

// writeDurable writes raw frame bytes to the active segment and syncs
// under the configured discipline, servicing the fsync-stall fault.
func (l *Log) writeDurable(frames []byte) error {
	if _, err := l.active.Write(frames); err != nil {
		return fmt.Errorf("wal: writing segment %d: %w", l.activeIdx, err)
	}
	if l.opts.Fsync {
		if f := l.opts.Injector.Fire(faultinject.WALFsyncStall); f != nil {
			l.statsMu.Lock()
			l.stats.FsyncStalls++
			l.statsMu.Unlock()
			time.Sleep(time.Duration(f.Arg) * time.Millisecond)
		}
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: fsync segment %d: %w", l.activeIdx, err)
		}
		l.statsMu.Lock()
		l.stats.Fsyncs++
		l.statsMu.Unlock()
	}
	return nil
}

// rollback returns the segment and sequence counter to their pre-batch
// state after a failed write. If even the truncate fails the log is
// fail-stopped: every later append reports the sticky error.
func (l *Log) rollback(off int64, seq uint64) {
	l.seq = seq
	if err := l.active.Truncate(off); err != nil {
		l.failed = fmt.Errorf("wal: rollback truncate of segment %d failed, log is fail-stopped: %w", l.activeIdx, err)
		return
	}
	if _, err := l.active.Seek(off, 0); err != nil {
		l.failed = fmt.Errorf("wal: rollback seek of segment %d failed, log is fail-stopped: %w", l.activeIdx, err)
	}
}

// doRotate performs checkpoint-anchored rotation on the flusher
// goroutine: snapshots from build land at the head of a new fsynced
// segment before any older segment is removed, so every record a
// removed segment held is covered by a snapshot that is already
// durable.
func (l *Log) doRotate(build func() ([]SessionSnapshot, error)) error {
	if l.failed != nil {
		return l.failed
	}
	snaps, err := build()
	if err != nil {
		return fmt.Errorf("wal: building rotation snapshots: %w", err)
	}
	newIdx := l.activeIdx + 1
	f, err := os.OpenFile(segmentPath(l.opts.Dir, newIdx), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %d: %w", newIdx, err)
	}
	var buf bytes.Buffer
	startSeq := l.seq
	sessions := make([]string, 0, len(snaps))
	ok := func() error {
		for _, s := range snaps {
			l.seq++
			sessions = append(sessions, s.Session)
			payload, err := schemaio.EncodeWALRecord(&schemaio.WALRecordDoc{
				Seq:     l.seq,
				Type:    schemaio.WALTypeSnapshot,
				Session: s.Session,
				//ube:nondeterministic-ok commit wall-clock stamped into the operational TS field
				TS:   time.Now().Unix(),
				Data: s.Data,
			})
			if err != nil {
				return err
			}
			appendFrame(&buf, payload)
		}
		ckpt, err := schemaio.EncodeWALCheckpoint(&schemaio.WALCheckpointDoc{Sessions: sessions})
		if err != nil {
			return err
		}
		l.seq++
		payload, err := schemaio.EncodeWALRecord(&schemaio.WALRecordDoc{
			Seq:  l.seq,
			Type: schemaio.WALTypeCheckpoint,
			//ube:nondeterministic-ok commit wall-clock stamped into the operational TS field
			TS:   time.Now().Unix(),
			Data: ckpt,
		})
		if err != nil {
			return err
		}
		appendFrame(&buf, payload)
		if _, err := f.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("wal: writing segment %d: %w", newIdx, err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync segment %d: %w", newIdx, err)
		}
		return syncDir(l.opts.Dir)
	}()
	if ok != nil {
		l.seq = startSeq
		f.Close()
		os.Remove(segmentPath(l.opts.Dir, newIdx))
		return ok
	}
	// The checkpoint is durable: swap segments and drop the old ones.
	oldIdx := l.activeIdx
	l.active.Close()
	l.active = f
	l.activeIdx = newIdx
	l.activeOff = int64(buf.Len())
	l.activeBytes.Store(l.activeOff)
	for idx := oldIdx; idx >= 1; idx-- {
		path := segmentPath(l.opts.Dir, idx)
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				break
			}
			return fmt.Errorf("wal: removing superseded segment %d: %w", idx, err)
		}
	}
	if err := syncDir(l.opts.Dir); err != nil {
		return err
	}
	l.statsMu.Lock()
	l.stats.Rotations++
	l.stats.BytesWritten += uint64(buf.Len())
	l.stats.LastSeq = l.seq
	l.statsMu.Unlock()
	return nil
}

// appendFrame appends one length‖crc‖payload frame to buf.
func appendFrame(buf *bytes.Buffer, payload []byte) {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf.Write(hdr[:])
	buf.Write(payload)
}

// EncodeFrame frames one payload — the exact bytes Append would write
// for it. Exported for tests and the fuzz harness.
func EncodeFrame(payload []byte) []byte {
	var buf bytes.Buffer
	appendFrame(&buf, payload)
	return buf.Bytes()
}

// latencyBucket maps a commit latency to its histogram bucket index.
func latencyBucket(d time.Duration) int {
	ms := float64(d) / float64(time.Millisecond)
	for i, le := range FlushLatencyBucketsMs {
		if ms <= le {
			return i
		}
	}
	return len(FlushLatencyBucketsMs)
}

// segmentPath names segment idx inside dir.
func segmentPath(dir string, idx int) string {
	return fmt.Sprintf("%s/wal-%08d.log", dir, idx)
}

// syncDir fsyncs the directory so segment creation and removal are
// themselves durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	return nil
}
