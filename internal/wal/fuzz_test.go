package wal

import (
	"bytes"
	"testing"

	"ube/internal/schemaio"
)

// FuzzWALDecode holds the trust boundary: arbitrary segment bytes —
// torn frames, bit-flips, hostile lengths — must scan without panicking,
// every intact payload must strict-decode or error (never panic), and
// anything we frame ourselves must survive a scan bit-identically.
func FuzzWALDecode(f *testing.F) {
	good, _ := schemaio.EncodeWALRecord(&schemaio.WALRecordDoc{
		Seq: 1, Type: schemaio.WALTypeCreate, Session: "s1", Data: []byte(`{"u":1}`),
	})
	f.Add(EncodeFrame(good))
	f.Add(append(EncodeFrame(good), EncodeFrame(good)...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	torn := EncodeFrame(good)
	f.Add(torn[:len(torn)-3])
	flipped := EncodeFrame(good)
	flipped[frameHeaderSize+2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, clean, scanErr := ScanFrames(data)
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean prefix %d outside [0,%d]", clean, len(data))
		}
		if scanErr == nil && clean != int64(len(data)) {
			t.Fatalf("no tear reported but clean %d < %d", clean, len(data))
		}
		// Decoding surviving payloads must never panic; errors are fine.
		for _, p := range payloads {
			_, _ = schemaio.DecodeWALRecordBytes(p)
		}
		// Re-framing the surviving payloads must scan back bit-identically:
		// the codec is a fixed point on its own output.
		var buf bytes.Buffer
		for _, p := range payloads {
			buf.Write(EncodeFrame(p))
		}
		again, clean2, err2 := ScanFrames(buf.Bytes())
		if err2 != nil || clean2 != int64(buf.Len()) || len(again) != len(payloads) {
			t.Fatalf("re-scan: %d frames, clean %d/%d, err %v", len(again), clean2, buf.Len(), err2)
		}
		for i := range payloads {
			if !bytes.Equal(again[i], payloads[i]) {
				t.Fatalf("payload %d changed across re-frame", i)
			}
		}
	})
}
