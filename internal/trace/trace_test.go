package trace_test

import (
	"strings"
	"testing"

	"ube/internal/trace"
)

func TestSpanTreeShape(t *testing.T) {
	tr := trace.New()
	st := tr.Stats()
	root := tr.Begin("solve")
	st.Add(trace.CSearchEvals, 2)
	child := tr.Begin("search")
	st.Add(trace.CSearchEvals, 5)
	st.Add(trace.CMatchRuns, 3)
	tr.End(child)
	st.Add(trace.CQEFFull, 1)
	tr.End(root)
	got := tr.Finish()

	if len(got.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(got.Spans))
	}
	rootSp, childSp := got.Spans[0], got.Spans[1]
	if rootSp.Name != "solve" || rootSp.Parent != -1 {
		t.Errorf("root span = %q parent %d, want solve/-1", rootSp.Name, rootSp.Parent)
	}
	if childSp.Name != "search" || childSp.Parent != rootSp.ID {
		t.Errorf("child span = %q parent %d, want search/%d", childSp.Name, childSp.Parent, rootSp.ID)
	}
	// The child sees only the counts added while it was open; the root
	// sees everything.
	if got := childSp.Counts[trace.CSearchEvals]; got != 5 {
		t.Errorf("child search.evals = %d, want 5", got)
	}
	if got := childSp.Counts[trace.CMatchRuns]; got != 3 {
		t.Errorf("child match.runs = %d, want 3", got)
	}
	if got := rootSp.Counts[trace.CSearchEvals]; got != 7 {
		t.Errorf("root search.evals = %d, want 7", got)
	}
	if got := rootSp.Counts[trace.CQEFFull]; got != 1 {
		t.Errorf("root qef.full = %d, want 1", got)
	}
	totals := got.Totals()
	if totals[trace.CSearchEvals] != 7 || totals[trace.CMatchRuns] != 3 || totals[trace.CQEFFull] != 1 {
		t.Errorf("totals = %v", totals)
	}
}

// Ending an outer span must close any descendants an early return left
// open — the optimizers rely on this for their iteration spans.
func TestEndClosesDescendants(t *testing.T) {
	tr := trace.New()
	outer := tr.Begin("run")
	inner := tr.Begin("iter")
	innermost := tr.Begin("step")
	tr.End(outer)
	got := tr.Finish()
	if len(got.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(got.Spans))
	}
	// All closed: a later Begin must attach at the root, not under a
	// stale stack entry.
	tail := tr.Begin("late")
	tr.End(tail)
	got2 := tr.Finish()
	if sp := got2.Spans[3]; sp.Parent != -1 {
		t.Errorf("post-End span parent = %d, want -1", sp.Parent)
	}
	// Ending an already-closed span is a no-op.
	tr.End(inner)
	tr.End(innermost)
	if n := len(tr.Finish().Spans); n != 4 {
		t.Errorf("spans after redundant Ends = %d, want 4", n)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *trace.Tracer
	if id := tr.Begin("x"); id != -1 {
		t.Errorf("nil Begin = %d, want -1", id)
	}
	tr.End(-1)
	tr.End(7)
	if tr.Finish() != nil {
		t.Error("nil Finish != nil")
	}
	if st := tr.Stats(); st != nil {
		t.Error("nil Stats != nil")
	}
	var st *trace.Stats
	st.Add(trace.CSearchEvals, 1) // must not panic
}

// The disabled path must be zero-allocation: a solve with no tracer
// installed carries only nil checks.
func TestDisabledTracerAllocs(t *testing.T) {
	var tr *trace.Tracer
	st := tr.Stats()
	if n := testing.AllocsPerRun(100, func() {
		id := tr.Begin("solve")
		st.Add(trace.CSearchEvals, 1)
		st.Add(trace.CMatchHits, 0)
		tr.End(id)
		_ = tr.Finish()
	}); n != 0 {
		t.Errorf("disabled tracer path allocates %.1f per op, want 0", n)
	}
}

func TestMaxSpansDrops(t *testing.T) {
	tr := &trace.Tracer{MaxSpans: 2}
	a := tr.Begin("a")
	b := tr.Begin("b")
	c := tr.Begin("c")
	if c != -1 {
		t.Errorf("over-cap Begin = %d, want -1", c)
	}
	tr.End(c)
	tr.End(b)
	tr.End(a)
	got := tr.Finish()
	if len(got.Spans) != 2 || got.Dropped != 1 {
		t.Errorf("spans = %d dropped = %d, want 2/1", len(got.Spans), got.Dropped)
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	tr := trace.New()
	tr.Begin("solve")
	tr.Begin("search")
	got := tr.Finish()
	if len(got.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(got.Spans))
	}
	for _, sp := range got.Spans {
		if sp.Dur < 0 {
			t.Errorf("span %q has negative duration %d", sp.Name, sp.Dur)
		}
	}
}

func TestCanonicalStripsTimingsAndOperational(t *testing.T) {
	tr := trace.New()
	st := tr.Stats()
	id := tr.Begin("solve")
	st.Add(trace.CSearchEvals, 4)
	st.Add(trace.OSnapshotBuilds, 2)
	st.Add(trace.OMatchEvictions, 9)
	tr.End(id)
	got := tr.Finish()
	canon := got.Canonical()
	sp := canon.Spans[0]
	if sp.Start != 0 || sp.Dur != 0 {
		t.Errorf("canonical timing = (%d,%d), want zeros", sp.Start, sp.Dur)
	}
	if sp.Counts[trace.OSnapshotBuilds] != 0 || sp.Counts[trace.OMatchEvictions] != 0 {
		t.Error("canonical kept operational counters")
	}
	if sp.Counts[trace.CSearchEvals] != 4 {
		t.Errorf("canonical search.evals = %d, want 4", sp.Counts[trace.CSearchEvals])
	}
	// The original is untouched.
	if got.Spans[0].Counts[trace.OSnapshotBuilds] != 2 {
		t.Error("Canonical mutated its receiver")
	}
	var nilTr *trace.Trace
	if nilTr.Canonical() != nil {
		t.Error("nil Canonical != nil")
	}
}

func TestCounterNamesRoundTrip(t *testing.T) {
	names := trace.CounterNames()
	if len(names) != int(trace.NumCounters) {
		t.Fatalf("CounterNames len = %d, want %d", len(names), trace.NumCounters)
	}
	seen := make(map[string]bool)
	for c := trace.Counter(0); c < trace.NumCounters; c++ {
		name := c.Name()
		if name == "" || name == "invalid" {
			t.Errorf("counter %d has no wire name", c)
		}
		if seen[name] {
			t.Errorf("duplicate wire name %q", name)
		}
		seen[name] = true
		back, ok := trace.CounterByName(name)
		if !ok || back != c {
			t.Errorf("CounterByName(%q) = %v,%v, want %v,true", name, back, ok, c)
		}
	}
	if _, ok := trace.CounterByName("no.such.counter"); ok {
		t.Error("CounterByName accepted an unknown name")
	}
	if trace.NumCounters.Name() != "invalid" {
		t.Errorf("out-of-range Name() = %q", trace.NumCounters.Name())
	}
	// The operational split starts at OSnapshotBuilds.
	if trace.CSketchUnions.Operational() {
		t.Error("pcsa.unions misclassified as operational")
	}
	for _, c := range []trace.Counter{trace.OSnapshotBuilds, trace.OSnapshotUnions, trace.OMatchEvictions} {
		if !c.Operational() {
			t.Errorf("%s not classified operational", c.Name())
		}
	}
}

func TestCountsMap(t *testing.T) {
	var c trace.Counts
	if c.Map() != nil {
		t.Error("zero Counts.Map() != nil")
	}
	c[trace.CSearchEvals] = 3
	c[trace.CMatchHits] = 1
	m := c.Map()
	if len(m) != 2 || m["search.evals"] != 3 || m["match.hits"] != 1 {
		t.Errorf("Map() = %v", m)
	}
}

func TestAggregateSelfPartitionsTotals(t *testing.T) {
	// Hand-built tree: root(10) with children a(4) and b(3); a has child
	// c(1). Self must partition the root total.
	mk := func(id, parent int32, name string, dur int64, evals int64) trace.Span {
		sp := trace.Span{ID: id, Parent: parent, Name: name, Dur: dur}
		sp.Counts[trace.CSearchEvals] = evals
		return sp
	}
	tr := &trace.Trace{Spans: []trace.Span{
		mk(0, -1, "solve", 10, 100),
		mk(1, 0, "a", 4, 60),
		mk(2, 1, "c", 1, 10),
		mk(3, 0, "b", 3, 30),
	}}
	phases := trace.Aggregate(tr)
	bySelf := make(map[string]trace.PhaseStat)
	var selfSum int64
	var evalSum int64
	for _, ps := range phases {
		bySelf[ps.Name] = ps
		selfSum += ps.Self
		evalSum += ps.Counts[trace.CSearchEvals]
	}
	if selfSum != 10 {
		t.Errorf("self sum = %d, want the root total 10", selfSum)
	}
	if evalSum != 100 {
		t.Errorf("self eval sum = %d, want the root total 100", evalSum)
	}
	if got := bySelf["solve"].Self; got != 3 {
		t.Errorf("solve self = %d, want 3", got)
	}
	if got := bySelf["a"].Self; got != 3 {
		t.Errorf("a self = %d, want 3", got)
	}
	if got := bySelf["a"].Counts[trace.CSearchEvals]; got != 50 {
		t.Errorf("a self evals = %d, want 50", got)
	}
	// Sorted by self descending, name ascending on ties.
	if phases[len(phases)-1].Name != "c" {
		t.Errorf("last phase = %q, want the smallest-self one (c)", phases[len(phases)-1].Name)
	}

	top := trace.TopSpans(tr, 2)
	if len(top) != 2 || top[0].Span.Name != "solve" && top[0].Self != 3 {
		t.Errorf("TopSpans = %+v", top)
	}
	if trace.TopSpans(nil, 3) != nil || trace.Aggregate(nil) != nil {
		t.Error("nil trace aggregation not nil")
	}
}

func TestRenderTableEmpty(t *testing.T) {
	var b strings.Builder
	if err := trace.RenderTable(&b, &trace.Trace{}, 5); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "empty trace\n" {
		t.Errorf("empty render = %q", got)
	}
}
