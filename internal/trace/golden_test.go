package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ube/internal/schemaio"
	"ube/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden tables under testdata (the trace fixture itself stays frozen)")

// fixture loads the committed solve trace captured from
//
//	go run ./cmd/ube-bench -exp trace -quick -evals 400 -trace internal/trace/testdata/fig6.trace.jsonl
//
// The timings inside are frozen with the file, so the rendered tables are
// exact functions of the fixture bytes.
func fixture(t *testing.T) *trace.Trace {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "fig6.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := schemaio.DecodeTrace(f)
	if err != nil {
		t.Fatalf("committed fixture does not decode: %v", err)
	}
	return tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output (re-run with -update if intended):\n--- got\n%s\n--- want\n%s", name, got, want)
	}
}

// TestRenderTableGolden pins ube-trace's table output byte for byte on the
// committed fixture — the same rendering `ube-trace testdata/fig6.trace.jsonl`
// prints.
func TestRenderTableGolden(t *testing.T) {
	tr := fixture(t)
	var b bytes.Buffer
	if err := trace.RenderTable(&b, tr, 5); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6.table.golden", b.Bytes())
}

// TestRenderDiffGolden pins the diff rendering. Diffing the fixture
// against itself exercises the full row layout with all deltas zero.
func TestRenderDiffGolden(t *testing.T) {
	tr := fixture(t)
	var b bytes.Buffer
	if err := trace.RenderDiff(&b, tr, tr); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6.diff.golden", b.Bytes())
}
