package trace

// Aggregation turns a span tree into the per-phase attribution table
// ube-trace prints: for every span name, how often it ran, how long it
// took in total (children included) and in self time (children
// excluded), plus the self counter deltas. Self values partition the
// solve — summing self across phases reproduces the root totals — so
// the table reads as "where did the time and the work actually go".

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PhaseStat is one row of the attribution table: all spans sharing a
// name, folded.
type PhaseStat struct {
	Name   string
	Count  int
	Total  int64 // ns, children included
	Self   int64 // ns, children excluded
	Counts Counts
}

// SpanStat is one span ranked by self time.
type SpanStat struct {
	Span  Span
	Self  int64 // ns, children excluded
	Order int   // rank by self time, 0 first
}

// selfValues computes per-span self durations and self counter deltas
// by subtracting each span's direct children (parents always precede
// children, so one forward pass suffices).
func selfValues(tr *Trace) (self []int64, counts []Counts) {
	self = make([]int64, len(tr.Spans))
	counts = make([]Counts, len(tr.Spans))
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		self[i] += sp.Dur
		counts[i] = addCounts(counts[i], sp.Counts)
		if p := sp.Parent; p >= 0 && int(p) < len(tr.Spans) {
			self[p] -= sp.Dur
			counts[p] = subCounts(counts[p], sp.Counts)
		}
	}
	return self, counts
}

func addCounts(a, b Counts) Counts {
	for i := range a {
		a[i] += b[i]
	}
	return a
}

func subCounts(a, b Counts) Counts {
	for i := range a {
		a[i] -= b[i]
	}
	return a
}

// Aggregate folds a trace into per-phase rows, sorted by self time
// descending with name as the deterministic tiebreak.
func Aggregate(tr *Trace) []PhaseStat {
	if tr == nil || len(tr.Spans) == 0 {
		return nil
	}
	self, selfCounts := selfValues(tr)
	byName := make(map[string]*PhaseStat)
	order := make([]string, 0, 8)
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		ps := byName[sp.Name]
		if ps == nil {
			ps = &PhaseStat{Name: sp.Name}
			byName[sp.Name] = ps
			order = append(order, sp.Name)
		}
		ps.Count++
		ps.Total += sp.Dur
		ps.Self += self[i]
		ps.Counts = addCounts(ps.Counts, selfCounts[i])
	}
	out := make([]PhaseStat, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TopSpans returns the k individual spans with the largest self time,
// ties broken by span ID so the ranking is deterministic.
func TopSpans(tr *Trace, k int) []SpanStat {
	if tr == nil || len(tr.Spans) == 0 || k <= 0 {
		return nil
	}
	self, _ := selfValues(tr)
	out := make([]SpanStat, 0, len(tr.Spans))
	for i := range tr.Spans {
		out = append(out, SpanStat{Span: tr.Spans[i], Self: self[i]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Span.ID < out[j].Span.ID
	})
	if len(out) > k {
		out = out[:k]
	}
	for i := range out {
		out[i].Order = i
	}
	return out
}

// wall is the trace's wall time: the sum of root span durations.
func wall(tr *Trace) int64 {
	var w int64
	for i := range tr.Spans {
		if tr.Spans[i].Parent == -1 {
			w += tr.Spans[i].Dur
		}
	}
	return w
}

// ms renders nanoseconds as fixed-point milliseconds.
func ms(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }

// pct renders part/whole as a percentage, "-" when whole is zero.
func pct(part, whole int64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// RenderTable writes the per-phase attribution table for one trace:
// phase rows (count, total, self, self share of wall time), the topK
// hottest individual spans, and the solve-wide counter totals. The
// output is a pure function of the trace bytes, so golden tests can pin
// it exactly.
func RenderTable(w io.Writer, tr *Trace, topK int) error {
	if tr == nil || len(tr.Spans) == 0 {
		_, err := fmt.Fprintln(w, "empty trace")
		return err
	}
	var b strings.Builder
	label := tr.Label
	if label == "" {
		label = "(unlabeled)"
	}
	fmt.Fprintf(&b, "trace %s: %d spans, %d dropped, wall %s\n", label, len(tr.Spans), tr.Dropped, ms(wall(tr)))
	b.WriteString("\nphase                     count        total         self   self%\n")
	wallNs := wall(tr)
	for _, ps := range Aggregate(tr) {
		fmt.Fprintf(&b, "%-24s %6d %12s %12s %7s\n", ps.Name, ps.Count, ms(ps.Total), ms(ps.Self), pct(ps.Self, wallNs))
	}
	if top := TopSpans(tr, topK); len(top) > 0 {
		fmt.Fprintf(&b, "\ntop %d spans by self time\n", len(top))
		for _, ss := range top {
			fmt.Fprintf(&b, "  #%-5d %-24s %12s self %12s total\n", ss.Span.ID, ss.Span.Name, ms(ss.Self), ms(ss.Span.Dur))
		}
	}
	totals := tr.Totals()
	if nz := totals.SortedNonzero(); len(nz) > 0 {
		b.WriteString("\ncounters\n")
		for _, c := range nz {
			op := ""
			if c.Operational() {
				op = "  (operational)"
			}
			fmt.Fprintf(&b, "  %-24s %12d%s\n", c.Name(), totals[c], op)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderDiff writes a phase-by-phase comparison of two traces: self
// time and counter totals for each, with deltas, so a perf PR reads as
// "agenda self time −38%, same pops". Phases present in either trace
// appear, sorted by the larger absolute self-time delta first.
func RenderDiff(w io.Writer, a, b *Trace) error {
	type row struct {
		name   string
		a, b   int64 // self ns
		ca, cb int   // counts
	}
	rowsOf := func(tr *Trace) map[string]PhaseStat {
		m := make(map[string]PhaseStat)
		for _, ps := range Aggregate(tr) {
			m[ps.Name] = ps
		}
		return m
	}
	ra, rb := rowsOf(a), rowsOf(b)
	names := make([]string, 0, len(ra)+len(rb))
	for name := range ra {
		names = append(names, name)
	}
	//ube:nondeterministic-ok keys are collected for sorting only
	for name := range rb {
		if _, dup := ra[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	rows := make([]row, 0, len(names))
	for _, name := range names {
		rows = append(rows, row{name: name, a: ra[name].Self, b: rb[name].Self, ca: ra[name].Count, cb: rb[name].Count})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		di, dj := rows[i].b-rows[i].a, rows[j].b-rows[j].a
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		return di > dj
	})
	var out strings.Builder
	la, lb := a.Label, b.Label
	if la == "" {
		la = "a"
	}
	if lb == "" {
		lb = "b"
	}
	fmt.Fprintf(&out, "trace diff: %s (wall %s) vs %s (wall %s)\n", la, ms(wall(a)), lb, ms(wall(b)))
	out.WriteString("\nphase                       self a       self b        delta  count a  count b\n")
	for _, r := range rows {
		fmt.Fprintf(&out, "%-24s %12s %12s %12s %8d %8d\n", r.name, ms(r.a), ms(r.b), ms(r.b-r.a), r.ca, r.cb)
	}
	ta, tb := a.Totals(), b.Totals()
	var changed []Counter
	for c := Counter(0); c < NumCounters; c++ {
		if ta[c] != 0 || tb[c] != 0 {
			changed = append(changed, c)
		}
	}
	if len(changed) > 0 {
		out.WriteString("\ncounters                         a            b        delta\n")
		for _, c := range changed {
			fmt.Fprintf(&out, "  %-24s %10d %12d %12d\n", c.Name(), ta[c], tb[c], tb[c]-ta[c])
		}
	}
	_, err := io.WriteString(w, out.String())
	return err
}
