// Package trace is a span tracer for the solve hot path: the engine
// opens a root span per solve, each optimizer opens spans around its
// iteration structure, and the cluster/QEF/PCSA layers report work into
// deterministic payload counters. A trace therefore answers "which phase
// of which iteration burned the budget" the way the paper's Section 7
// experiments reason about cost — per phase, per iteration, per layer.
//
// The design splits every measurement into one of two classes:
//
//   - Counters (candidates evaluated, agenda pops, cache hits, sketch
//     unions) are deterministic: for a fixed (problem, seed, Workers)
//     they are byte-reproducible across runs, machines and -race, and
//     the determinism tests compare them exactly.
//   - Timings (span start offsets and durations) are operational only:
//     they come from the monotonic clock and never influence results.
//     Canonical strips them, along with the few counters whose values
//     depend on scheduling (snapshot rebuilds lost to publish races,
//     cache evictions), so canonical traces are byte-comparable.
//
// Tracing is strictly opt-in and zero-allocation when disabled: every
// method is a no-op on a nil *Tracer or nil *Stats, so the hot path
// carries only nil checks when no tracer is installed.
//
// Spans are created only on sequential control paths (the engine solve
// stages and the optimizers' iteration loops, which run between
// parallel evaluation batches). Parallel workers contribute through
// atomic counter increments only, so the span tree shape is always
// deterministic and counter snapshots at span boundaries observe
// quiescent totals.
package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Counter identifies one payload counter. The deterministic counters
// come first; Operational reports the split.
type Counter uint8

const (
	// CSearchEvals counts objective evaluations (equals Solution.Evals).
	CSearchEvals Counter = iota
	// CSearchBatches counts parallel candidate-evaluation batches.
	CSearchBatches
	// CMatchRuns counts clustering runs (match-cache misses plus the
	// final schema materialization).
	CMatchRuns
	// CMatchHits counts match-cache hits.
	CMatchHits
	// CMatchMisses counts match-cache misses.
	CMatchMisses
	// CClusterRounds counts agenda rounds across clustering runs.
	CClusterRounds
	// CClusterPops counts agenda entries examined (pops off the merged
	// carry-over/fresh stream).
	CClusterPops
	// CClusterPairs counts candidate pairs scored at or above θ and
	// admitted to the agenda.
	CClusterPairs
	// CQEFDelta counts incremental QEF evaluations (DeltaEval.EvalAdd).
	CQEFDelta
	// CQEFFull counts full composite QEF evaluations — the objective's
	// non-match term and the delta evaluator's fallback path. Each full
	// evaluation implies up to two full-path PCSA union sweeps
	// (coverage and redundancy), which are not counted separately: the
	// shared qef.Context has no per-solve identity to attribute them to.
	CQEFFull
	// CSketchUnions counts incremental-path PCSA union batches: one per
	// cooperative EvalAdd (scratch copy + union + estimate).
	CSketchUnions
	// CBlockProbes counts blocking-index probes: one per name whose
	// candidate list is generated from the inverted index.
	CBlockProbes
	// CBlockCandidates counts candidate pairs surfaced by the blocking
	// index before exact verification (the sparse analogue of the dense
	// path's n² comparisons).
	CBlockCandidates
	// CBlockPruned counts candidate pairs discarded by exact
	// verification (index said "plausible", the measure scored < θ).
	CBlockPruned
	// CBoundSkips counts solver candidates whose exact objective
	// evaluation was skipped because an upper bound could not beat the
	// incumbent. Each skip still counts as one CSearchEvals.
	CBoundSkips

	// Operational counters below this point depend on scheduling and
	// are stripped by Canonical.

	// OSnapshotBuilds counts incumbent base-snapshot builds. Under
	// Workers>1 concurrent workers can build the same snapshot and lose
	// the publish race, so the count is load-dependent.
	OSnapshotBuilds
	// OSnapshotUnions counts per-member PCSA unions performed while
	// building base snapshots.
	OSnapshotUnions
	// OMatchEvictions counts match-cache evictions (random replacement
	// under memory pressure).
	OMatchEvictions

	// NumCounters is the number of defined counters.
	NumCounters
)

var counterNames = [NumCounters]string{
	CSearchEvals:     "search.evals",
	CSearchBatches:   "search.batches",
	CMatchRuns:       "match.runs",
	CMatchHits:       "match.hits",
	CMatchMisses:     "match.misses",
	CClusterRounds:   "cluster.rounds",
	CClusterPops:     "cluster.pops",
	CClusterPairs:    "cluster.pairs",
	CQEFDelta:        "qef.delta",
	CQEFFull:         "qef.full",
	CSketchUnions:    "pcsa.unions",
	CBlockProbes:     "block.probes",
	CBlockCandidates: "block.candidates",
	CBlockPruned:     "block.pruned",
	CBoundSkips:      "bound.skips",
	OSnapshotBuilds:  "qef.snapshots",
	OSnapshotUnions:  "pcsa.snapshotUnions",
	OMatchEvictions:  "match.evictions",
}

var counterIndex = func() map[string]Counter {
	m := make(map[string]Counter, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		m[counterNames[c]] = c
	}
	return m
}()

// Name returns the counter's stable wire name.
func (c Counter) Name() string {
	if c >= NumCounters {
		return "invalid"
	}
	return counterNames[c]
}

// Operational reports whether the counter's value depends on scheduling
// (and is therefore stripped by Canonical).
func (c Counter) Operational() bool { return c >= OSnapshotBuilds && c < NumCounters }

// CounterByName resolves a wire name back to its counter.
func CounterByName(name string) (Counter, bool) {
	c, ok := counterIndex[name]
	return c, ok
}

// Counts is a plain snapshot of every counter.
type Counts [NumCounters]int64

// Map renders the nonzero counters as a name→value map (the JSONL wire
// form; encoding/json emits map keys sorted, so the bytes are stable).
func (c *Counts) Map() map[string]int64 {
	var n int
	for i := range c {
		if c[i] != 0 {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	m := make(map[string]int64, n)
	for i := range c {
		if c[i] != 0 {
			m[Counter(i).Name()] = c[i]
		}
	}
	return m
}

// Stats is the concurrent counter block a Tracer exposes to the layers
// below it. Add is safe from parallel evaluation workers and a no-op on
// a nil receiver, so instrumented code needs no tracer-enabled branch.
type Stats struct {
	c [NumCounters]atomic.Int64
}

// Add increments counter c by n. Nil-safe and zero-allocation.
func (s *Stats) Add(c Counter, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.c[c].Add(n)
}

// read snapshots every counter into out.
func (s *Stats) read(out *Counts) {
	for i := range s.c {
		out[i] = s.c[i].Load()
	}
}

// Span is one closed interval of the solve. Counts are the counter
// deltas observed between Begin and End, children included; Aggregate
// derives self values by subtracting direct children.
type Span struct {
	ID     int32
	Parent int32 // -1 for a root span
	Name   string
	//ube:operational span timings are stripped by Canonical and never byte-compared
	Start int64 // ns since the tracer's first Begin; operational only
	//ube:operational span timings are stripped by Canonical and never byte-compared
	Dur    int64 // ns; operational only
	Counts Counts
}

// Trace is a finished span tree plus the tracer's drop count.
type Trace struct {
	Label   string
	Spans   []Span
	Dropped int64 // spans not recorded because MaxSpans was reached
}

// Canonical returns a copy with every timing zeroed and every
// operational counter stripped. Two solves of the same (problem, seed,
// Workers) produce byte-identical canonical traces; the determinism
// tests compare exactly that.
func (tr *Trace) Canonical() *Trace {
	if tr == nil {
		return nil
	}
	out := &Trace{Label: tr.Label, Spans: append([]Span(nil), tr.Spans...), Dropped: tr.Dropped}
	for i := range out.Spans {
		sp := &out.Spans[i]
		sp.Start, sp.Dur = 0, 0
		for c := Counter(0); c < NumCounters; c++ {
			if c.Operational() {
				sp.Counts[c] = 0
			}
		}
	}
	return out
}

// Totals sums the counter deltas of the root spans (every increment is
// covered by some root, so this is the whole solve's total).
func (tr *Trace) Totals() Counts {
	var t Counts
	if tr == nil {
		return t
	}
	for i := range tr.Spans {
		if tr.Spans[i].Parent != -1 {
			continue
		}
		for c := range t {
			t[c] += tr.Spans[i].Counts[c]
		}
	}
	return t
}

// DefaultMaxSpans bounds a trace when the tracer does not override it:
// past the cap new spans are dropped (and counted) rather than grown,
// so a runaway solve cannot balloon a session's memory.
const DefaultMaxSpans = 16384

// Tracer records one solve's span tree. It is not safe for concurrent
// Begin/End (spans are only opened from the solve's sequential control
// path); Stats is the concurrent part. The zero value is ready to use,
// and all methods are no-ops on a nil receiver.
type Tracer struct {
	// MaxSpans caps the recorded spans; 0 means DefaultMaxSpans.
	MaxSpans int
	// Label annotates the finished trace (e.g. "session s1 iter 3").
	Label string

	stats   Stats
	spans   []Span
	stack   []int32 // open span IDs, root first
	marks   []Counts
	started bool
	start   time.Time
	dropped int64
}

// New returns an empty tracer with default limits.
func New() *Tracer { return &Tracer{} }

// Stats returns the tracer's counter block (nil when the tracer is nil,
// which every Stats method tolerates).
func (t *Tracer) Stats() *Stats {
	if t == nil {
		return nil
	}
	return &t.stats
}

func (t *Tracer) cap() int {
	if t.MaxSpans > 0 {
		return t.MaxSpans
	}
	return DefaultMaxSpans
}

// Begin opens a span named name under the innermost open span and
// returns its ID, or -1 when disabled or over the span cap. The
// returned ID is passed to End; -1 is always safe to End.
func (t *Tracer) Begin(name string) int {
	if t == nil {
		return -1
	}
	if !t.started {
		t.started = true
		//ube:nondeterministic-ok span timings are operational-only and stripped by Canonical
		t.start = time.Now()
	}
	if len(t.spans) >= t.cap() {
		t.dropped++
		return -1
	}
	parent := int32(-1)
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	id := int32(len(t.spans))
	var mark Counts
	t.stats.read(&mark)
	//ube:nondeterministic-ok span timings are operational-only and stripped by Canonical
	now := time.Since(t.start).Nanoseconds()
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: now})
	t.stack = append(t.stack, id)
	t.marks = append(t.marks, mark)
	return int(id)
}

// End closes the span with the given ID, first closing any still-open
// descendants, so callers may End an outer span on an early return
// without unwinding inner ones. Ending -1 or an already-closed span is
// a no-op.
func (t *Tracer) End(id int) {
	if t == nil || id < 0 {
		return
	}
	want := int32(id)
	onStack := false
	for _, s := range t.stack {
		if s == want {
			onStack = true
			break
		}
	}
	if !onStack {
		return
	}
	//ube:nondeterministic-ok span timings are operational-only and stripped by Canonical
	now := time.Since(t.start).Nanoseconds()
	var cur Counts
	t.stats.read(&cur)
	for len(t.stack) > 0 {
		top := t.stack[len(t.stack)-1]
		sp := &t.spans[top]
		sp.Dur = now - sp.Start
		mark := &t.marks[len(t.marks)-1]
		for i := range cur {
			sp.Counts[i] = cur[i] - mark[i]
		}
		t.stack = t.stack[:len(t.stack)-1]
		t.marks = t.marks[:len(t.marks)-1]
		if top == want {
			return
		}
	}
}

// Finish closes any spans still open and returns the finished trace.
// Nil-safe (returns nil). The tracer is single-solve: reusing it after
// Finish appends to the same tree.
func (t *Tracer) Finish() *Trace {
	if t == nil {
		return nil
	}
	if len(t.stack) > 0 {
		t.End(int(t.stack[0]))
	}
	return &Trace{Label: t.Label, Spans: append([]Span(nil), t.spans...), Dropped: t.dropped}
}

// CounterNames returns every counter's wire name in counter order.
func CounterNames() []string {
	out := make([]string, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		out[c] = c.Name()
	}
	return out
}

// SortedNonzero returns the nonzero counters of c sorted by wire name —
// the deterministic rendering order used by the attribution table.
func (c *Counts) SortedNonzero() []Counter {
	var out []Counter
	for i := range c {
		if c[i] != 0 {
			out = append(out, Counter(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
