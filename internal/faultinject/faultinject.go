// Package faultinject is the seeded, deterministic fault-injection layer
// behind the chaos suite (see DESIGN.md §10). Production code declares
// named injection points (the admission queue, the worker pool's solve
// boundary, the SSE writer, the audit log, the janitor, the engine's
// snapshot cache); a chaos run arms them with a Plan — a JSON schedule of
// (point, trigger, action) entries — and every run is replayable from the
// plan plus its seed because firing is a pure function of per-point
// arrival counts, never of the clock or the scheduler.
//
// The package is stdlib-only and dependency-free within the module so any
// layer (server, engine) can declare points without import cycles. A nil
// *Injector is the disarmed state: every method no-ops, so production
// call sites need no guards and pay one nil check when faults are off.
package faultinject

import (
	"fmt"
	"sync"
)

// Point names one injection site. The catalog is closed: plans referring
// to unknown points fail validation, so a typo cannot silently disarm a
// chaos scenario.
type Point string

const (
	// QueueOverflow forces the admission queue to report "full" so the
	// client gets 429 + Retry-After regardless of actual depth.
	QueueOverflow Point = "queue.overflow"
	// WorkerPanic panics a worker at the solve boundary; the service
	// must recover it into a 500 and keep the session's work token
	// protocol intact.
	WorkerPanic Point = "worker.panic"
	// WorkerStall blocks a worker for Arg milliseconds before the solve,
	// bounded by the per-solve deadline (504 + Retry-After when it
	// expires).
	WorkerStall Point = "worker.stall"
	// SSESlowClient drops one published SSE frame, simulating a
	// subscriber too slow to drain its buffer.
	SSESlowClient Point = "sse.slow-client"
	// AuditWriteError drops one audit line, simulating a failed write to
	// the audit sink; the server counts the loss so /metrics↔audit
	// reconciliation stays checkable.
	AuditWriteError Point = "audit.write-error"
	// SolveCancelMidway cancels a solve from inside the engine after Arg
	// objective evaluations; the session must be left untouched, exactly
	// as for a client-initiated cancellation.
	SolveCancelMidway Point = "solve.cancel-midway"
	// SnapshotEvict discards the engine's incumbent snapshot so the next
	// add-move rebuilds it; results must be unchanged (the cache is a
	// pure memo).
	SnapshotEvict Point = "snapshot.evict"
	// JanitorEvict forces one janitor sweep to treat every idle session
	// as expired, regardless of TTL.
	JanitorEvict Point = "janitor.evict"
	// WALWriteError fails one write-ahead-log append, simulating a full
	// or failing disk under the durability layer; the server must refuse
	// the un-durable commit (full undo + 503) and count the failure.
	WALWriteError Point = "wal.write-error"
	// WALFsyncStall delays one WAL group-commit fsync by Arg
	// milliseconds, stretching commit latency without losing anything.
	WALFsyncStall Point = "wal.fsync-stall"
	// RecoveryTruncatedTail drops the last Arg records from the clean
	// prefix during WAL recovery, simulating a torn tail wider than one
	// frame; recovery must come up with the shorter, still-clean prefix.
	RecoveryTruncatedTail Point = "recovery.truncated-tail"
	// RouterShardKill marks a shard dead at the router's solve-proxy
	// boundary: the target shard of the triggering request (or, with
	// Arg > 0, shard index Arg-1) stops receiving traffic permanently —
	// probes never readmit it — so its sessions surface as clean 503s
	// while other shards' sessions must stay bit-identical.
	RouterShardKill Point = "router.shard-kill"
	// RouterPartition drops routed solve requests at the router while
	// the entry covers their arrivals (use Repeat for the partition's
	// width), returning 503 + Retry-After; when the entry stops
	// covering, traffic flows again and retried sessions must converge
	// on the fault-free histories.
	RouterPartition Point = "router.partition"
	// ChurnMidway panics a worker midway through a universe-mutation
	// (churn) job, after validation but before anything is logged or
	// applied; the service must recover it into a 500 with the session's
	// universe, WAL and mirrors all untouched, so the histories with and
	// without the fault stay bit-identical.
	ChurnMidway Point = "churn.midway"
	// ChurnConflict forces a churn job to report a pinned-source
	// conflict (409) regardless of the batch's contents, exercising the
	// refusal path — batch rejected wholesale, universe untouched —
	// deterministically.
	ChurnConflict Point = "churn.conflict"
)

// Points is the full injection-point catalog in stable order.
var Points = []Point{
	QueueOverflow,
	WorkerPanic,
	WorkerStall,
	SSESlowClient,
	AuditWriteError,
	SolveCancelMidway,
	SnapshotEvict,
	JanitorEvict,
	WALWriteError,
	WALFsyncStall,
	RecoveryTruncatedTail,
	RouterShardKill,
	RouterPartition,
	ChurnMidway,
	ChurnConflict,
}

// actions maps each point to its single legal action verb. One verb per
// point keeps plans self-describing without an open-ended action space.
var actions = map[Point]string{
	QueueOverflow:         "reject",
	WorkerPanic:           "panic",
	WorkerStall:           "stall",
	SSESlowClient:         "drop",
	AuditWriteError:       "drop",
	SolveCancelMidway:     "cancel",
	SnapshotEvict:         "evict",
	JanitorEvict:          "evict",
	WALWriteError:         "fail",
	WALFsyncStall:         "stall",
	RecoveryTruncatedTail: "truncate",
	RouterShardKill:       "kill",
	RouterPartition:       "drop",
	ChurnMidway:           "panic",
	ChurnConflict:         "reject",
}

// argRequired marks points whose entries must carry a positive Arg
// (stall duration in milliseconds, cancel-after evaluation count).
var argRequired = map[Point]bool{
	WorkerStall:           true,
	SolveCancelMidway:     true,
	WALFsyncStall:         true,
	RecoveryTruncatedTail: true,
}

// Entry schedules one fault: starting at the Trigger-th arrival at Point
// (1-based), fire Action for Repeat consecutive arrivals (default 1).
type Entry struct {
	Point   Point  `json:"point"`
	Trigger int    `json:"trigger"`
	Action  string `json:"action"`
	Repeat  int    `json:"repeat,omitempty"`
	Arg     int64  `json:"arg,omitempty"`
}

// repeat returns the effective repeat count.
func (e *Entry) repeat() int {
	if e.Repeat <= 0 {
		return 1
	}
	return e.Repeat
}

// covers reports whether the entry fires at the given arrival index.
func (e *Entry) covers(arrival int) bool {
	return arrival >= e.Trigger && arrival < e.Trigger+e.repeat()
}

// Plan is a replayable fault schedule. Seed identifies the run: the
// injector itself draws no randomness, but chaos drivers seed their
// client-side randomness (jitter, scripts) from it so "seed + plan"
// reproduces a whole run.
type Plan struct {
	Seed    int64   `json:"seed"`
	Entries []Entry `json:"entries"`
}

// Validate rejects malformed plans: unknown points, wrong action verbs,
// non-positive triggers, negative repeats, and missing or negative Args
// where the point requires one.
func (p *Plan) Validate() error {
	for i := range p.Entries {
		e := &p.Entries[i]
		want, ok := actions[e.Point]
		if !ok {
			return fmt.Errorf("faultinject: entry %d: unknown point %q", i, e.Point)
		}
		if e.Action != want {
			return fmt.Errorf("faultinject: entry %d: point %q takes action %q, not %q", i, e.Point, want, e.Action)
		}
		if e.Trigger < 1 {
			return fmt.Errorf("faultinject: entry %d: trigger %d < 1 (arrivals are 1-based)", i, e.Trigger)
		}
		if e.Repeat < 0 {
			return fmt.Errorf("faultinject: entry %d: negative repeat %d", i, e.Repeat)
		}
		if argRequired[e.Point] && e.Arg <= 0 {
			return fmt.Errorf("faultinject: entry %d: point %q requires a positive arg", i, e.Point)
		}
		if e.Arg < 0 {
			return fmt.Errorf("faultinject: entry %d: negative arg %d", i, e.Arg)
		}
	}
	return nil
}

// Firing records one fault that fired: which point, with what action and
// argument, at which arrival index.
type Firing struct {
	Point   Point
	Action  string
	Arg     int64
	Arrival int
}

// Injector arms a validated plan. Fire is the single hot-path entry:
// each call counts one arrival at a point and returns the scheduled
// Firing when the plan covers that arrival, nil otherwise. All state is
// mutex-guarded arrival counters, so firing depends only on how many
// times each point was reached — replayable wherever the workload itself
// is deterministic.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	arrivals map[Point]int
	firings  []Firing
}

// New validates the plan and arms it.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	// Deep-copy entries so later mutation of the caller's plan cannot
	// change an armed schedule.
	plan.Entries = append([]Entry(nil), plan.Entries...)
	return &Injector{plan: plan, arrivals: make(map[Point]int)}, nil
}

// MustNew is New for tests and fixtures with known-good plans.
func MustNew(plan Plan) *Injector {
	in, err := New(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// Seed returns the armed plan's seed; 0 on a nil (disarmed) injector.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.plan.Seed
}

// Plan returns a copy of the armed plan; the zero Plan on a nil injector.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return Plan{Seed: in.plan.Seed, Entries: append([]Entry(nil), in.plan.Entries...)}
}

// Fire counts one arrival at point and returns the scheduled firing, or
// nil when nothing is scheduled for that arrival. Nil receivers no-op,
// so production call sites need no guards.
func (in *Injector) Fire(point Point) *Firing {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.arrivals[point]++
	arrival := in.arrivals[point]
	for i := range in.plan.Entries {
		e := &in.plan.Entries[i]
		if e.Point != point || !e.covers(arrival) {
			continue
		}
		f := Firing{Point: point, Action: e.Action, Arg: e.Arg, Arrival: arrival}
		in.firings = append(in.firings, f)
		return &f
	}
	return nil
}

// Arrivals reports how many times Fire was called for point.
func (in *Injector) Arrivals(point Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.arrivals[point]
}

// FiredCount reports how many firings point has produced.
func (in *Injector) FiredCount(point Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, f := range in.firings {
		if f.Point == point {
			n++
		}
	}
	return n
}

// Firings returns every firing so far, in fire order.
func (in *Injector) Firings() []Firing {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Firing(nil), in.firings...)
}
