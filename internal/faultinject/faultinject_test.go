package faultinject

import (
	"sync"
	"testing"
)

func TestValidateRejectsMalformedPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"unknown point", Plan{Entries: []Entry{{Point: "worker.explode", Trigger: 1, Action: "panic"}}}},
		{"wrong action", Plan{Entries: []Entry{{Point: WorkerPanic, Trigger: 1, Action: "stall"}}}},
		{"zero trigger", Plan{Entries: []Entry{{Point: WorkerPanic, Trigger: 0, Action: "panic"}}}},
		{"negative repeat", Plan{Entries: []Entry{{Point: WorkerPanic, Trigger: 1, Action: "panic", Repeat: -1}}}},
		{"stall without arg", Plan{Entries: []Entry{{Point: WorkerStall, Trigger: 1, Action: "stall"}}}},
		{"cancel without arg", Plan{Entries: []Entry{{Point: SolveCancelMidway, Trigger: 1, Action: "cancel"}}}},
		{"negative arg", Plan{Entries: []Entry{{Point: WorkerPanic, Trigger: 1, Action: "panic", Arg: -5}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(); err == nil {
				t.Errorf("plan validated: %+v", tc.plan)
			}
			if _, err := New(tc.plan); err == nil {
				t.Error("New accepted an invalid plan")
			}
		})
	}
}

func TestEveryPointHasAnAction(t *testing.T) {
	for _, p := range Points {
		plan := Plan{Entries: []Entry{{Point: p, Trigger: 1, Action: actions[p], Arg: 1}}}
		if err := plan.Validate(); err != nil {
			t.Errorf("catalog point %q does not validate: %v", p, err)
		}
	}
}

// TestRouterPoints pins the router fault points' contract: one verb
// each, and Arg optional (shard-kill's Arg selects a shard index + 1,
// with 0 meaning "the triggering request's target").
func TestRouterPoints(t *testing.T) {
	if got := actions[RouterShardKill]; got != "kill" {
		t.Errorf("router.shard-kill action = %q, want kill", got)
	}
	if got := actions[RouterPartition]; got != "drop" {
		t.Errorf("router.partition action = %q, want drop", got)
	}
	if argRequired[RouterShardKill] || argRequired[RouterPartition] {
		t.Error("router points must accept entries without an Arg")
	}
	plan := Plan{Entries: []Entry{
		{Point: RouterShardKill, Trigger: 3, Action: "kill"},
		{Point: RouterPartition, Trigger: 1, Action: "drop", Repeat: 8},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatalf("router plan does not validate: %v", err)
	}
}

func TestFireSchedule(t *testing.T) {
	in := MustNew(Plan{Seed: 7, Entries: []Entry{
		{Point: WorkerPanic, Trigger: 2, Action: "panic", Repeat: 2},
		{Point: WorkerStall, Trigger: 1, Action: "stall", Arg: 50},
	}})

	// worker.panic fires on arrivals 2 and 3 only.
	for arrival := 1; arrival <= 5; arrival++ {
		f := in.Fire(WorkerPanic)
		want := arrival == 2 || arrival == 3
		if (f != nil) != want {
			t.Errorf("worker.panic arrival %d: fired=%v, want %v", arrival, f != nil, want)
		}
		if f != nil && f.Arrival != arrival {
			t.Errorf("firing records arrival %d, want %d", f.Arrival, arrival)
		}
	}
	// worker.stall fires once, carrying its arg.
	if f := in.Fire(WorkerStall); f == nil || f.Arg != 50 {
		t.Errorf("worker.stall first arrival: got %+v, want arg 50", f)
	}
	if f := in.Fire(WorkerStall); f != nil {
		t.Errorf("worker.stall fired past its window: %+v", f)
	}
	// Unarmed points never fire but still count arrivals.
	if f := in.Fire(QueueOverflow); f != nil {
		t.Errorf("unarmed point fired: %+v", f)
	}

	if got := in.FiredCount(WorkerPanic); got != 2 {
		t.Errorf("FiredCount(worker.panic) = %d, want 2", got)
	}
	if got := in.Arrivals(WorkerPanic); got != 5 {
		t.Errorf("Arrivals(worker.panic) = %d, want 5", got)
	}
	if got := in.Arrivals(QueueOverflow); got != 1 {
		t.Errorf("Arrivals(queue.overflow) = %d, want 1", got)
	}
	if got := len(in.Firings()); got != 3 {
		t.Errorf("%d firings recorded, want 3", got)
	}
	if in.Seed() != 7 {
		t.Errorf("Seed() = %d, want 7", in.Seed())
	}
}

func TestNilInjectorNoOps(t *testing.T) {
	var in *Injector
	if f := in.Fire(WorkerPanic); f != nil {
		t.Errorf("nil injector fired: %+v", f)
	}
	if in.FiredCount(WorkerPanic) != 0 || in.Arrivals(WorkerPanic) != 0 || in.Firings() != nil {
		t.Error("nil injector reports state")
	}
	if in.Seed() != 0 {
		t.Error("nil injector has a seed")
	}
	if got := in.Plan(); len(got.Entries) != 0 {
		t.Error("nil injector has a plan")
	}
}

// TestFireIsArrivalDeterministic proves firing depends only on arrival
// counts: concurrent callers racing on one point produce exactly the
// scheduled number of firings, however the scheduler interleaves them.
func TestFireIsArrivalDeterministic(t *testing.T) {
	in := MustNew(Plan{Entries: []Entry{
		{Point: AuditWriteError, Trigger: 10, Action: "drop", Repeat: 5},
	}})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				in.Fire(AuditWriteError)
			}
		}()
	}
	wg.Wait()
	if got := in.Arrivals(AuditWriteError); got != 200 {
		t.Fatalf("%d arrivals, want 200", got)
	}
	if got := in.FiredCount(AuditWriteError); got != 5 {
		t.Fatalf("%d firings, want exactly 5", got)
	}
}

// TestPlanCopyIsolation proves the injector snapshots the plan: mutating
// the caller's entry slice after New cannot change the armed schedule.
func TestPlanCopyIsolation(t *testing.T) {
	entries := []Entry{{Point: WorkerPanic, Trigger: 1, Action: "panic"}}
	in := MustNew(Plan{Entries: entries})
	entries[0].Trigger = 99
	if f := in.Fire(WorkerPanic); f == nil {
		t.Fatal("armed schedule changed after caller mutation")
	}
}
