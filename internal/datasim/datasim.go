// Package datasim provides the data-based attribute similarity measure of
// µBE's §3, which states that Match can build on "any attribute similarity
// measure, whether schema based or data based". Where the schema-based
// default compares attribute *names* (3-gram Jaccard), this measure
// compares attribute *value sets*: two attributes that store overlapping
// values — "subject" and "genre" both holding {fiction, poetry, history} —
// are similar even when their names share nothing lexically.
//
// Value sets are never shipped: each source exports one PCSA signature per
// attribute (model.Source.AttrSignatures), and the measure estimates the
// Jaccard overlap |A∩B|/|A∪B| from the signatures alone using the same
// union-by-OR identity the coverage QEF relies on: |A∩B| = |A|+|B|−|A∪B|.
//
// Because µBE's clustering identifies attributes by normalized name, the
// measure aggregates signatures per distinct name across the whole
// universe; the score between two names is the overlap of everything ever
// stored under those names.
package datasim

import (
	"fmt"

	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/strsim"
)

// Measure scores attribute similarity by estimated value overlap, backed
// by a name-based measure: the final score is the maximum of the two, so
// adding value evidence never loses matches that names alone justify.
// Measure implements strsim.Measure.
type Measure struct {
	byName map[string]*pcsa.Sketch
	name   strsim.Measure
}

// New builds the measure from a universe's attribute signatures. The
// universe must have been validated; sources without AttrSignatures
// contribute no value evidence. A nil fallback means strsim.Default().
// It returns an error if no source in the universe exports attribute
// signatures — the caller should then use a name measure directly.
func New(u *model.Universe, fallback strsim.Measure) (*Measure, error) {
	if fallback == nil {
		fallback = strsim.Default()
	}
	m := &Measure{byName: make(map[string]*pcsa.Sketch), name: fallback}
	for i := range u.Sources {
		s := &u.Sources[i]
		if s.AttrSignatures == nil {
			continue
		}
		for a, sig := range s.AttrSignatures {
			key := strsim.Normalize(s.Attributes[a])
			if cur, ok := m.byName[key]; ok {
				if err := cur.UnionInto(sig); err != nil {
					return nil, fmt.Errorf("datasim: %w", err)
				}
			} else {
				m.byName[key] = sig.Clone()
			}
		}
	}
	if len(m.byName) == 0 {
		return nil, fmt.Errorf("datasim: no source exports attribute signatures")
	}
	return m, nil
}

// Name implements strsim.Measure.
func (m *Measure) Name() string { return "value-overlap+" + m.name.Name() }

// Score implements strsim.Measure: max(name similarity, value overlap).
func (m *Measure) Score(a, b string) float64 {
	s := m.name.Score(a, b)
	//ube:float-exact early exit only on the exact maximum score
	if s == 1 {
		return 1
	}
	if v := m.valueOverlap(strsim.Normalize(a), strsim.Normalize(b)); v > s {
		s = v
	}
	return s
}

// valueOverlap estimates Jaccard(A,B) from the two names' aggregated
// signatures, 0 when either name has no value evidence.
func (m *Measure) valueOverlap(a, b string) float64 {
	sa, okA := m.byName[a]
	sb, okB := m.byName[b]
	if !okA || !okB {
		return 0
	}
	if a == b {
		return 1
	}
	union, err := pcsa.Union(sa, sb)
	if err != nil {
		// Incompatible signatures were rejected by Universe.Validate;
		// reaching this is a construction bug.
		panic(err)
	}
	u := union.Estimate()
	if u <= 0 {
		return 0
	}
	inter := sa.Estimate() + sb.Estimate() - u
	if inter <= 0 {
		return 0
	}
	j := inter / u
	if j > 1 {
		j = 1
	}
	return j
}

// Names reports how many distinct attribute names carry value evidence.
func (m *Measure) Names() int { return len(m.byName) }
