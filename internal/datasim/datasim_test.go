package datasim

import (
	"testing"

	"ube/internal/cluster"
	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/strsim"
	"ube/internal/synth"
)

// sketchOver returns a signature over value IDs [lo, hi).
func sketchOver(lo, hi int) *pcsa.Sketch {
	s := pcsa.MustNew(256, 9)
	for v := lo; v < hi; v++ {
		s.AddUint64(uint64(v))
	}
	return s
}

// overlapUniverse builds two sources whose attributes have controlled
// value overlap: "subject" and "genre" share ~90% of values, "price" is
// disjoint from both.
func overlapUniverse() *model.Universe {
	return &model.Universe{Sources: []model.Source{
		{
			ID: 0, Name: "a", Cardinality: 10,
			Attributes:     []string{"subject", "price"},
			AttrSignatures: []*pcsa.Sketch{sketchOver(0, 1000), sketchOver(50000, 51000)},
		},
		{
			ID: 1, Name: "b", Cardinality: 10,
			Attributes:     []string{"genre", "cost band"},
			AttrSignatures: []*pcsa.Sketch{sketchOver(100, 1100), sketchOver(70000, 71000)},
		},
	}}
}

func TestNewRequiresSignatures(t *testing.T) {
	u := &model.Universe{Sources: []model.Source{
		{ID: 0, Name: "a", Attributes: []string{"x"}, Cardinality: 1},
	}}
	if _, err := New(u, nil); err == nil {
		t.Error("universe without attribute signatures should be rejected")
	}
}

func TestValueOverlapScores(t *testing.T) {
	u := overlapUniverse()
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := New(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Names() != 4 {
		t.Errorf("Names = %d, want 4", m.Names())
	}
	// subject/genre: ~900 shared of ~1100 union → ≈0.82, far above what
	// the names justify lexically.
	s := m.Score("subject", "genre")
	if s < 0.6 {
		t.Errorf("value overlap subject/genre = %v, want ≥ 0.6", s)
	}
	if nameOnly := strsim.Default().Score("subject", "genre"); nameOnly >= 0.5 {
		t.Fatalf("test premise broken: names alone score %v", nameOnly)
	}
	// Disjoint values, dissimilar names: near zero.
	if s := m.Score("price", "genre"); s > 0.2 {
		t.Errorf("price/genre = %v, want ≈0", s)
	}
	// Name evidence still counts: identical names score 1 even without
	// any signature for one of them.
	if s := m.Score("unknown attr", "unknown attr"); s != 1 {
		t.Errorf("identical unknown names = %v, want 1", s)
	}
	// Self-similarity through the value path.
	if s := m.Score("subject", "Subject"); s != 1 {
		t.Errorf("normalized-equal names = %v, want 1", s)
	}
	// Symmetry and range.
	for _, pair := range [][2]string{{"subject", "genre"}, {"price", "cost band"}, {"subject", "price"}} {
		a, b := m.Score(pair[0], pair[1]), m.Score(pair[1], pair[0])
		if a != b {
			t.Errorf("asymmetric score for %v: %v vs %v", pair, a, b)
		}
		if a < 0 || a > 1 {
			t.Errorf("score %v out of range for %v", a, pair)
		}
	}
	if m.Name() == "" {
		t.Error("empty measure name")
	}
}

func TestMaxOfNameAndValue(t *testing.T) {
	// Names nearly identical but values disjoint: the name evidence must
	// win (max composition never loses lexical matches).
	u := &model.Universe{Sources: []model.Source{
		{
			ID: 0, Name: "a", Cardinality: 1,
			Attributes:     []string{"keyword"},
			AttrSignatures: []*pcsa.Sketch{sketchOver(0, 1000)},
		},
		{
			ID: 1, Name: "b", Cardinality: 1,
			Attributes:     []string{"keywords"},
			AttrSignatures: []*pcsa.Sketch{sketchOver(90000, 91000)},
		},
	}}
	m, err := New(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	name := strsim.Default().Score("keyword", "keywords")
	if got := m.Score("keyword", "keywords"); got < name {
		t.Errorf("hybrid %v lost to name-only %v", got, name)
	}
}

func TestAggregationAcrossSources(t *testing.T) {
	// Two sources both expose "subject" with different value subsets;
	// the measure aggregates them under one name.
	u := &model.Universe{Sources: []model.Source{
		{ID: 0, Name: "a", Cardinality: 1, Attributes: []string{"subject"},
			AttrSignatures: []*pcsa.Sketch{sketchOver(0, 500)}},
		{ID: 1, Name: "b", Cardinality: 1, Attributes: []string{"subject"},
			AttrSignatures: []*pcsa.Sketch{sketchOver(500, 1000)}},
		{ID: 2, Name: "c", Cardinality: 1, Attributes: []string{"theme"},
			AttrSignatures: []*pcsa.Sketch{sketchOver(0, 1000)}},
	}}
	m, err := New(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	// "theme" covers the union of both "subject" halves → high overlap.
	if s := m.Score("subject", "theme"); s < 0.6 {
		t.Errorf("aggregated subject vs theme = %v, want ≥ 0.6", s)
	}
}

func TestDataBasedMatchingBridgesConcepts(t *testing.T) {
	// End to end with the synthetic workload: with value signatures on,
	// the data-based measure lets Match cluster lexically distant
	// variants of one concept ("subject"/"genre") that the name measure
	// cannot, with no GA constraint.
	cfg := synth.QuickConfig(40)
	cfg.WithSignatures = false
	cfg.WithAttrSignatures = true
	u, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(u, nil)
	if err != nil {
		t.Fatal(err)
	}

	ids := make([]int, u.N())
	for i := range ids {
		ids[i] = i
	}
	nameCfg := cluster.Config{Theta: 0.65, Beta: 2, Sim: strsim.NewCache(nil)}
	dataCfg := cluster.Config{Theta: 0.65, Beta: 2, Sim: strsim.NewCache(m)}

	crossName := crossVariantMerges(u, truth, cluster.Match(u, ids, nil, nil, nameCfg))
	crossData := crossVariantMerges(u, truth, cluster.Match(u, ids, nil, nil, dataCfg))
	if crossData <= crossName {
		t.Errorf("data-based matching should merge more cross-variant attributes: name=%d data=%d", crossName, crossData)
	}

	// And it must not create false (concept-mixing) GAs.
	res := cluster.Match(u, ids, nil, nil, dataCfg)
	for _, g := range res.Schema.GAs {
		first := truth.ConceptOf[g[0]]
		for _, r := range g {
			c := truth.ConceptOf[r]
			if c != first && c != synth.JunkConcept && first != synth.JunkConcept {
				t.Errorf("data-based GA mixes concepts %d and %d: %v", first, c, g)
			}
		}
	}
}

// crossVariantMerges counts attributes that ended up in a GA alongside a
// differently-named attribute of the same concept — the bridging the
// data-based measure is supposed to add.
func crossVariantMerges(u *model.Universe, truth *synth.Truth, res cluster.Result) int {
	if res.Schema == nil {
		return 0
	}
	n := 0
	for _, g := range res.Schema.GAs {
		names := map[string]bool{}
		concepts := map[int]bool{}
		for _, r := range g {
			names[u.AttrName(r)] = true
			concepts[truth.ConceptOf[r]] = true
		}
		if len(names) > 1 && len(concepts) == 1 {
			n += len(g)
		}
	}
	return n
}
