package server

import (
	"encoding/json"
	"fmt"
	"sync"

	"ube/internal/faultinject"
)

// hub fans solver events out to the SSE subscribers of one session.
// Publishing never blocks: a subscriber that cannot keep up has events
// dropped rather than stalling the worker that is solving. Events are an
// observability side channel — the authoritative record is the history
// endpoint — so lossy delivery to slow watchers is the right trade.
type hub struct {
	inj    *faultinject.Injector
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

func newHub(inj *faultinject.Injector) *hub {
	return &hub{inj: inj, subs: make(map[chan []byte]struct{})}
}

// subscribe registers a new watcher. It returns ok=false once the hub is
// closed (session deleted or evicted). The channel is closed by the hub
// when the session goes away.
func (h *hub) subscribe() (chan []byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, false
	}
	ch := make(chan []byte, 64)
	h.subs[ch] = struct{}{}
	return ch, true
}

// unsubscribe removes a watcher. Idempotent; safe after close.
func (h *hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
}

// publish formats one SSE frame and offers it to every subscriber,
// dropping it for any whose buffer is full.
func (h *hub) publish(event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return // event payloads are server-constructed; this cannot happen
	}
	if h.inj.Fire(faultinject.SSESlowClient) != nil {
		// Injected slow client: the frame is dropped exactly as for a
		// subscriber with a full buffer. The chaos suite then proves
		// lost events never corrupt the authoritative history.
		return
	}
	frame := []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", event, data))
	h.mu.Lock()
	defer h.mu.Unlock()
	//ube:nondeterministic-ok fan-out order across independent subscriber channels is unobservable
	for ch := range h.subs {
		select {
		case ch <- frame:
		default: // slow watcher: drop, never block the solver
		}
	}
}

// close shuts the hub down and closes every subscriber channel, which
// ends their SSE streams.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	//ube:nondeterministic-ok teardown order across independent subscriber channels is unobservable
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
