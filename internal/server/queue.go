package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"ube/internal/engine"
	"ube/internal/faultinject"
	"ube/internal/model"
	"ube/internal/qef"
	"ube/internal/schemaio"
	"ube/internal/search"
	"ube/internal/spec"
	"ube/internal/trace"
)

// The admission queue and worker pool.
//
// Jobs are not queued globally: each session keeps its own FIFO of
// admitted jobs, and a session with work holds exactly one "work token"
// in the shared work channel. A worker that receives the token drains
// that session's FIFO to empty before returning to the pool. Two
// properties fall out, and both are load-bearing:
//
//  1. Per-session mutual exclusion — at most one worker ever touches a
//     session, so the wrapped engine.Session needs no locks.
//  2. Deterministic serialization — same-session jobs execute in
//     admission order, not in whatever order goroutines would win a
//     mutex, so N concurrent posts to one session always produce the
//     same history as posting them sequentially in admission order.
//
// The global bound is on admitted-but-not-executing jobs across all
// sessions; past it, clients get 429 + Retry-After.

// solveJob is one admitted job: a solve request, or — when churn is
// non-nil — a universe-mutation batch riding the same per-session FIFO,
// so churn serializes against solves in admission order exactly like
// feedback edits do.
type solveJob struct {
	req       *solveRequest
	raw       []byte          // canonical request bytes, for the WAL record
	ctx       context.Context // the posting request's context
	remote    string
	iteration int              // history index this job will produce; set at execution
	churn     []model.Mutation // non-nil: a universe mutation, not a solve (churn.go)
	done      chan jobResult   // buffered(1): worker never blocks on a gone client
}

type jobResult struct {
	status int
	body   any
	// retryAfter asks the handler to attach backoff guidance (a
	// Retry-After header) to the response: set on 503/504 results whose
	// condition is transient.
	retryAfter bool
}

// errDraining distinguishes drain refusals from queue overflow.
var errDraining = errors.New("server is draining")

// enqueue admits a job onto a session's FIFO, scheduling the session
// into the worker pool if it wasn't already. It returns errDraining or
// errQueueFull without side effects when admission fails.
var errQueueFull = errors.New("solve queue is full")

func (s *Server) enqueue(sn *session, job *solveJob) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errDraining
	}
	//ube:lock-held-ok Fire is a seeded counter check, never a delay; admission must be atomic with the depth read
	if s.inj.Fire(faultinject.QueueOverflow) != nil {
		// Injected overflow: the queue reports full regardless of depth,
		// exercising the whole 429 + Retry-After + client-backoff path.
		s.mu.Unlock()
		s.metrics.rejections.Add(1)
		return errQueueFull
	}
	if int(s.metrics.queueDepth.Load()) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.metrics.rejections.Add(1)
		return errQueueFull
	}
	s.metrics.queueDepth.Add(1)
	s.jobsWG.Add(1)
	s.mu.Unlock()

	sn.mu.Lock()
	if sn.closed {
		sn.mu.Unlock()
		s.metrics.queueDepth.Add(-1)
		s.jobsWG.Done()
		return errSessionGone
	}
	sn.pending = append(sn.pending, job)
	position := len(sn.pending)
	schedule := !sn.scheduled
	if schedule {
		sn.scheduled = true
	}
	sn.mu.Unlock()

	// Admission reconciles per job kind: solves against the solve
	// terminal counters, churn batches against the churn ones.
	if job.churn != nil {
		s.metrics.churnsAdmitted.Add(1)
	} else {
		s.metrics.solvesAdmitted.Add(1)
	}
	sn.hub.publish("queued", map[string]any{"position": position, "queueDepth": s.metrics.queueDepth.Load()})
	if schedule {
		// Never blocks: the channel holds one token per session with
		// work, and sessions-with-work ≤ admitted jobs ≤ QueueDepth,
		// the channel's capacity.
		s.work <- sn
	}
	return nil
}

var errSessionGone = errors.New("session is gone")

// worker pulls session tokens and drains each session's FIFO to empty.
func (s *Server) worker() {
	defer s.workersWG.Done()
	for sn := range s.work {
		for {
			sn.mu.Lock()
			if len(sn.pending) == 0 {
				sn.scheduled = false
				sn.mu.Unlock()
				break
			}
			job := sn.pending[0]
			sn.pending = sn.pending[1:]
			sn.mu.Unlock()
			if job.churn != nil {
				s.runChurnJob(sn, job)
			} else {
				s.runJob(sn, job)
			}
		}
	}
}

// runJob executes one admitted solve: apply the request's problem edits
// all-or-nothing, then solve under the posting request's context, bounded
// by the configured per-solve deadline. A panic anywhere in the job —
// injected or real — is recovered into a 500: the session's problem is
// restored, the panic is audited, and control returns to the worker loop,
// which keeps draining the session's FIFO, so the session's work token is
// released exactly as on a normal return.
func (s *Server) runJob(sn *session, job *solveJob) {
	s.metrics.queueDepth.Add(-1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)
	defer s.jobsWG.Done()

	var (
		finished   bool
		saved      engine.Problem
		savedValid bool
	)
	finish := func(status int, body any) {
		finished = true
		job.done <- jobResult{status: status, body: body}
	}
	finishRetry := func(status int, body any) {
		finished = true
		job.done <- jobResult{status: status, body: body, retryAfter: true}
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// runJob is single-goroutine, so finished/saved reads are safe.
		if savedValid {
			sn.sess.SetProblem(saved)
			_ = sn.refreshProblemDoc()
		}
		sn.sess.SetProgress(nil)
		sn.sess.SetTrace(nil)
		s.metrics.solvePanics.Add(1)
		s.audit.record(sn.id, "solve.panic", job.remote, map[string]any{"iteration": job.iteration, "panic": fmt.Sprint(r)})
		sn.hub.publish("error", map[string]any{"iteration": job.iteration, "error": "internal error: solve panicked"})
		if !finished {
			finish(http.StatusInternalServerError, errorDoc{Error: "internal error: solve panicked"})
		}
	}()
	// The history index this job's solution will occupy if it succeeds.
	// Worker context, so reading the engine session is safe.
	job.iteration = len(sn.sess.History())

	// The client may be long gone by the time this job reaches the
	// front of its session's queue; don't burn a worker on it.
	if job.ctx.Err() != nil {
		s.metrics.solvesCancelled.Add(1)
		s.audit.record(sn.id, "solve.cancelled", job.remote, map[string]any{"iteration": job.iteration, "stage": "queued"})
		finish(statusClientClosedRequest, errorDoc{Error: "request cancelled before execution"})
		return
	}

	// Apply edits atomically: on any error, restore the pre-edit
	// problem so a rejected request leaves the session untouched.
	saved = sn.sess.Problem()
	savedValid = true
	savedChurnDirty := sn.sess.ChurnDirty()
	if err := applyEdits(sn.sess, job.req); err != nil {
		sn.sess.SetProblem(saved)
		s.metrics.solveErrors.Add(1)
		s.audit.record(sn.id, "solve.error", job.remote, map[string]any{"iteration": job.iteration, "error": err.Error()})
		finish(http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	if err := sn.refreshProblemDoc(); err != nil {
		sn.sess.SetProblem(saved)
		_ = sn.refreshProblemDoc()
		s.metrics.solveErrors.Add(1)
		finish(http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}
	s.audit.record(sn.id, "solve.apply", job.remote, map[string]any{"iteration": job.iteration, "edits": job.req})

	sn.hub.publish("start", map[string]any{"iteration": job.iteration})
	sn.sess.SetProgress(func(pr search.Progress) {
		sn.hub.publish("progress", map[string]any{
			"iteration":   job.iteration,
			"evals":       pr.Evals,
			"bestQuality": pr.BestQuality,
			"feasible":    pr.Feasible,
		})
	})
	// Solve tracing is sampled under load (see trace.go); the tracer is
	// a pure side channel, so sampled-out solves are byte-identical to
	// traced ones.
	var trc *trace.Tracer
	if s.shouldTrace() {
		trc = trace.New()
		trc.Label = fmt.Sprintf("%s iter %d", sn.id, job.iteration)
		sn.sess.SetTrace(trc)
	} else {
		s.metrics.tracesSampledOut.Add(1)
	}
	// Bound the solve (and any injected stall) by the per-solve
	// deadline so a stalled worker is reclaimed, not lost.
	solveCtx := job.ctx
	if s.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		solveCtx, cancel = context.WithTimeout(job.ctx, s.cfg.SolveTimeout)
		defer cancel()
	}
	if f := s.inj.Fire(faultinject.WorkerStall); f != nil {
		stall(solveCtx, time.Duration(f.Arg)*time.Millisecond)
	}
	if s.inj.Fire(faultinject.WorkerPanic) != nil {
		panic("faultinject: worker.panic fired at the solve boundary")
	}
	//ube:nondeterministic-ok latency measurement around the solve; never fed back into it
	start := time.Now()
	sol, memoHit, err := s.solveViaMemo(sn, solveCtx)
	//ube:nondeterministic-ok latency measurement around the solve; never fed back into it
	elapsed := time.Since(start)
	sn.sess.SetProgress(nil)
	sn.sess.SetTrace(nil)

	switch {
	case err != nil && job.ctx.Err() != nil:
		// Cancelled mid-solve: the session is untouched (engine
		// guarantees no history append, no seed advance), but the
		// edits stand — same as a cancelled retry of an edited
		// problem. Roll them back too so cancellation is a full undo.
		sn.sess.SetProblem(saved)
		_ = sn.refreshProblemDoc()
		s.metrics.solvesCancelled.Add(1)
		s.audit.record(sn.id, "solve.cancelled", job.remote, map[string]any{"iteration": job.iteration, "stage": "solving"})
		finish(statusClientClosedRequest, errorDoc{Error: "request cancelled during solve"})
		return
	case err != nil && solveCtx.Err() != nil && errors.Is(solveCtx.Err(), context.DeadlineExceeded):
		// The per-solve deadline expired (a stalled or overlong solve).
		// Same full undo as a client cancellation, but the client is
		// still listening: tell it to back off and retry.
		sn.sess.SetProblem(saved)
		_ = sn.refreshProblemDoc()
		s.metrics.solveTimeouts.Add(1)
		s.audit.record(sn.id, "solve.timeout", job.remote, map[string]any{"iteration": job.iteration, "timeoutMs": s.cfg.SolveTimeout.Milliseconds()})
		sn.hub.publish("error", map[string]any{"iteration": job.iteration, "error": "solve deadline exceeded"})
		finishRetry(http.StatusGatewayTimeout, errorDoc{Error: fmt.Sprintf("solve exceeded its %s deadline", s.cfg.SolveTimeout)})
		return
	case err != nil && errors.Is(err, context.Canceled):
		// Cancelled from inside the engine (an injected mid-solve
		// cancellation) while the client and deadline both survive.
		// Full undo; the condition is transient, so advise a retry.
		sn.sess.SetProblem(saved)
		_ = sn.refreshProblemDoc()
		s.metrics.solvesCancelled.Add(1)
		s.audit.record(sn.id, "solve.cancelled", job.remote, map[string]any{"iteration": job.iteration, "stage": "injected"})
		sn.hub.publish("error", map[string]any{"iteration": job.iteration, "error": "solve cancelled mid-flight"})
		finishRetry(http.StatusServiceUnavailable, errorDoc{Error: "solve cancelled mid-flight"})
		return
	case err != nil:
		sn.sess.SetProblem(saved)
		_ = sn.refreshProblemDoc()
		s.metrics.solveErrors.Add(1)
		s.audit.record(sn.id, "solve.error", job.remote, map[string]any{"iteration": job.iteration, "error": err.Error()})
		sn.hub.publish("error", map[string]any{"iteration": job.iteration, "error": err.Error()})
		finish(http.StatusUnprocessableEntity, errorDoc{Error: err.Error()})
		return
	}

	if err := sn.appendIterationDoc(); err != nil {
		// Unreachable for problems admitted through the JSON API
		// (encode already succeeded pre-solve), but fail loudly.
		s.metrics.solveErrors.Add(1)
		finish(http.StatusInternalServerError, errorDoc{Error: err.Error()})
		return
	}
	_ = sn.refreshProblemDoc() // seed advanced
	// Write-ahead before acknowledging: a solve the client saw must
	// replay after a crash. Mirrors are updated first so a concurrent
	// rotation snapshot always covers every record already flushed. On
	// failure the solve is fully undone — engine history, seed, mirrors
	// — and the client told to retry: the service never acknowledges a
	// result it cannot recover.
	if err := s.walCommitSolve(sn, job); err != nil {
		sn.dropLastIteration()
		hist := sn.sess.History()
		sn.sess.Restore(saved, hist[:len(hist)-1])
		if savedChurnDirty {
			// The successful solve cleared the flag; the undo must put it
			// back or the next solve would warm-start from pre-churn IDs.
			sn.sess.MarkChurnDirty()
		}
		_ = sn.refreshProblemDoc()
		s.metrics.solveErrors.Add(1)
		s.audit.record(sn.id, "solve.error", job.remote, map[string]any{"iteration": job.iteration, "error": err.Error()})
		sn.hub.publish("error", map[string]any{"iteration": job.iteration, "error": "solve not durable"})
		finishRetry(http.StatusServiceUnavailable, errorDoc{Error: fmt.Sprintf("solve not durable: %v", err)})
		return
	}
	sn.touch()

	s.metrics.solves.Add(1)
	s.metrics.observeLatency(elapsed)
	s.metrics.cacheHits.Add(sol.MatchCache.Hits)
	s.metrics.cacheMisses.Add(sol.MatchCache.Misses)
	s.metrics.cacheEvictions.Add(sol.MatchCache.Evictions)
	// A memo hit ran no engine work, so the tracer saw nothing; an
	// empty span tree would only mislead.
	if trc != nil && !memoHit {
		sn.storeTrace(job.iteration, trc.Finish())
		s.metrics.tracesCaptured.Add(1)
	}

	resp := s.buildSolveResponse(sn, job.iteration, sol)
	sn.hub.publish("done", map[string]any{
		"iteration": job.iteration,
		"quality":   sol.Quality,
		"feasible":  sol.Feasible,
		"sources":   sol.Sources,
		"evals":     sol.Evals,
		"elapsedMs": elapsed.Milliseconds(),
	})
	s.audit.record(sn.id, "solve.done", job.remote, map[string]any{
		"iteration": job.iteration,
		"quality":   sol.Quality,
		"feasible":  sol.Feasible,
		"sources":   sol.Sources,
		"evals":     sol.Evals,
	})
	finish(http.StatusOK, resp)
}

// solveViaMemo runs one solve through the cross-session memo
// (solvecache.go) when it is enabled, falling back to a plain engine
// solve otherwise. Worker context only. On a hit the session advances
// via AppendSolved — proven bit-equivalent to SolveContext by the
// engine's differential test — and the reported hit lets the caller
// skip trace bookkeeping. Any failure to key, decode or encode simply
// degrades to an uncached solve: the memo can never turn a solvable
// request into an error.
func (s *Server) solveViaMemo(sn *session, ctx context.Context) (*engine.Solution, bool, error) {
	if s.solveCache == nil || sn.universeFP == "" {
		sol, err := sn.sess.SolveContext(ctx)
		return sol, false, err
	}
	key := ""
	input := sn.sess.SolveInput()
	input.Progress = nil
	input.Trace = nil
	if doc, err := schemaio.EncodeProblem(&input); err == nil {
		if raw, err := json.Marshal(doc); err == nil {
			key = sn.universeFP + "\x00" + string(raw)
		}
	}
	if key != "" {
		if frame, ok := s.solveCache.get(key); ok {
			if doc, err := schemaio.DecodeBinarySolution(frame); err == nil {
				if sol, err := doc.Decode(); err == nil {
					s.metrics.solveCacheHits.Add(1)
					sn.sess.AppendSolved(sol)
					return sol, true, nil
				}
			}
		}
	}
	sol, err := sn.sess.SolveContext(ctx)
	if err != nil || key == "" {
		return sol, false, err
	}
	s.metrics.solveCacheMisses.Add(1)
	doc := schemaio.EncodeSolution(sol)
	// Stored frames carry the logical result only: wall-clock time and
	// match-cache counters describe the solve that filled the entry,
	// not the hits it will serve, and replay comparisons zero them
	// anyway.
	doc.ElapsedNS = 0
	doc.CacheHits, doc.CacheMisses, doc.CacheEvictions = 0, 0, 0
	if frame, err := schemaio.EncodeBinarySolution(doc); err == nil {
		if s.solveCache.put(key, frame) {
			s.metrics.solveCacheEvictions.Add(1)
		}
	}
	return sol, false, nil
}

// stall blocks for d, simulating a wedged worker, but stays bounded by
// ctx so the per-solve deadline (or the client vanishing) reclaims the
// worker.
func stall(ctx context.Context, d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	if ctx == nil {
		<-timer.C
		return
	}
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// buildSolveResponse assembles the solve response: the human-readable
// rendered solution plus the machine round-trip doc and the diff against
// the previous iteration.
func (s *Server) buildSolveResponse(sn *session, iteration int, sol *engine.Solution) *solveResponse {
	resp := &solveResponse{
		Session:   sn.id,
		Iteration: iteration,
		Rendered:  spec.Render(sn.eng.Universe(), sol),
	}
	sn.mu.Lock()
	if len(sn.historyDocs) > 0 {
		d := sn.historyDocs[len(sn.historyDocs)-1].Solution
		resp.Solution = &d
	}
	if n := len(sn.solutions); n >= 2 {
		resp.Diff = engine.DiffSolutions(sn.solutions[n-2], sn.solutions[n-1])
	}
	sn.mu.Unlock()
	return resp
}

// applyEdits applies one solve request's problem edits to the session in
// a fixed, documented order: scalars first (maxSources, theta, beta,
// optimizer, workers, maxEvals), then weights (wholesale replacement
// before single-weight rescales, rescales in ascending name order), then
// source constraints (drops before adds), then GA constraints (unpins by
// descending index, then pins). The caller restores the prior problem on
// error, making the batch all-or-nothing.
func applyEdits(sess *engine.Session, req *solveRequest) error {
	if req.MaxSources != nil {
		sess.SetMaxSources(*req.MaxSources)
	}
	if req.Theta != nil {
		sess.SetTheta(*req.Theta)
	}
	if req.Beta != nil {
		sess.SetBeta(*req.Beta)
	}
	if req.Optimizer != "" {
		opt, ok := search.ByName(req.Optimizer)
		if !ok {
			return errors.New("unknown optimizer " + req.Optimizer)
		}
		sess.SetOptimizer(opt)
	}
	p := sess.Problem()
	if req.Workers != nil {
		p.Workers = *req.Workers
		sess.SetProblem(p)
	}
	if req.MaxEvals != nil {
		p = sess.Problem()
		p.MaxEvals = *req.MaxEvals
		sess.SetProblem(p)
	}
	if len(req.Weights) > 0 {
		sess.SetWeights(qef.Weights(req.Weights))
	}
	if len(req.SetWeights) > 0 {
		// Ascending name order: rescales interact, so the order is part
		// of the API contract and must not depend on map iteration.
		names := make([]string, 0, len(req.SetWeights))
		for name := range req.SetWeights {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := sess.SetWeight(name, req.SetWeights[name]); err != nil {
				return err
			}
		}
	}
	for _, id := range req.DropSourcePins {
		sess.DropSourceConstraint(id)
	}
	for _, id := range req.DropExclusions {
		sess.DropExclusion(id)
	}
	for _, id := range req.PinSources {
		if err := sess.RequireSource(id); err != nil {
			return err
		}
	}
	for _, id := range req.ExcludeSources {
		if err := sess.ExcludeSource(id); err != nil {
			return err
		}
	}
	if len(req.UnpinGAs) > 0 {
		// Descending index so earlier removals don't shift later ones.
		idx := append([]int(nil), req.UnpinGAs...)
		sort.Sort(sort.Reverse(sort.IntSlice(idx)))
		for _, i := range idx {
			if err := sess.UnpinGA(i); err != nil {
				return err
			}
		}
	}
	for _, i := range req.PinGAs {
		if err := sess.PinGAFromSolution(i); err != nil {
			return err
		}
	}
	return nil
}
