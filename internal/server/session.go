package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ube/internal/engine"
	"ube/internal/faultinject"
	"ube/internal/schemaio"
)

// session is one tenant's live exploration loop plus the server-side
// bookkeeping around it.
//
// Concurrency contract: the wrapped engine.Session is touched ONLY from
// worker context, and the admission queue guarantees at most one worker
// runs a given session's jobs at a time (see queue.go), so the engine
// session needs no locking at all. Handlers never read it; they read the
// document mirrors below, which the worker refreshes under mu after every
// mutation. That keeps GET /history and friends responsive while a solve
// is running instead of blocking behind it.
type session struct {
	id      string
	hub     *hub
	eng     *engine.Engine
	sess    *engine.Session // worker-only after the create handler returns
	created time.Time
	// createRaw is the canonical create-request bytes, immutable once
	// set; snapshots embed them so recovery can rebuild the engine from
	// the same input the live create handler saw.
	createRaw []byte
	// universeFP keys the cross-session solve memo (solvecache.go);
	// empty when the memo is disabled. Worker-context only after the
	// create handler returns: churn recomputes it when the universe
	// mutates, and the only reader (solveViaMemo) runs on the worker.
	universeFP string

	mu        sync.Mutex
	lastUsed  time.Time
	pending   []*solveJob // admitted, waiting their turn, FIFO
	scheduled bool        // a work token for this session is live
	closed    bool        // deleted or evicted: no new solves

	// Handler-visible mirrors of the engine session, refreshed by the
	// worker after each mutation.
	problemDoc  *schemaio.ProblemDoc
	historyDocs []schemaio.IterationDoc
	solutions   []*engine.Solution // immutable once appended; for diffs
	traces      []storedTrace      // ring of the last traced solves; see trace.go
	// churnDocs mirrors every committed universe-mutation batch in
	// order, each tagged with the solve count it landed after; snapshots
	// embed them so recovery can replay the universe's whole lifecycle.
	churnDocs []schemaio.SnapshotChurnDoc
	// sources mirrors the universe's size for handlers: the engine's
	// universe is worker-only once churn can mutate it.
	sources int
}

// touch marks the session used now, for TTL accounting.
func (sn *session) touch() {
	sn.mu.Lock()
	//ube:nondeterministic-ok TTL bookkeeping; never observable in solve results
	sn.lastUsed = time.Now()
	sn.mu.Unlock()
}

// refreshProblemDoc re-mirrors the current problem. Worker/create-handler
// context only (reads the engine session).
func (sn *session) refreshProblemDoc() error {
	p := sn.sess.Problem()
	p.Progress = nil
	doc, err := schemaio.EncodeProblem(&p)
	if err != nil {
		return err
	}
	sn.mu.Lock()
	sn.problemDoc = doc
	sn.mu.Unlock()
	return nil
}

// appendIterationDoc mirrors the just-solved iteration. Worker context
// only.
func (sn *session) appendIterationDoc() error {
	hist := sn.sess.History()
	it := &hist[len(hist)-1]
	doc, err := schemaio.EncodeIteration(it)
	if err != nil {
		return err
	}
	sn.mu.Lock()
	sn.historyDocs = append(sn.historyDocs, *doc)
	sn.solutions = append(sn.solutions, it.Solution)
	sn.mu.Unlock()
	return nil
}

// dropLastIteration removes the newest mirrored iteration — the undo
// half of a solve whose durability commit failed. Worker context only.
func (sn *session) dropLastIteration() {
	sn.mu.Lock()
	if n := len(sn.historyDocs); n > 0 {
		sn.historyDocs = sn.historyDocs[:n-1]
	}
	if n := len(sn.solutions); n > 0 {
		sn.solutions = sn.solutions[:n-1]
	}
	sn.mu.Unlock()
}

// snapshotDoc renders the session's durable snapshot from the
// handler-visible mirrors alone, so it is safe from any goroutine —
// including the WAL flusher during rotation — without touching the
// worker-only engine session.
func (sn *session) snapshotDoc() (*schemaio.SessionSnapshotDoc, error) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.problemDoc == nil {
		return nil, fmt.Errorf("session %s has no problem mirror", sn.id)
	}
	if len(sn.createRaw) == 0 {
		return nil, fmt.Errorf("session %s has no create request", sn.id)
	}
	return &schemaio.SessionSnapshotDoc{
		ID:      sn.id,
		Create:  sn.createRaw,
		Problem: sn.problemDoc,
		History: sn.historyDocs[:len(sn.historyDocs):len(sn.historyDocs)],
		Solves:  len(sn.historyDocs),
		Churn:   sn.churnDocs[:len(sn.churnDocs):len(sn.churnDocs)],
	}, nil
}

// sessionInfo is the GET /v1/sessions/{id} (and create) response body.
type sessionInfo struct {
	ID            string               `json:"id"`
	Sources       int                  `json:"sources"`
	Iterations    int                  `json:"iterations"`
	PendingSolves int                  `json:"pendingSolves"`
	CreatedAt     string               `json:"createdAt"`
	Problem       *schemaio.ProblemDoc `json:"problem"`
}

func (sn *session) info() *sessionInfo {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return &sessionInfo{
		ID:            sn.id,
		Sources:       sn.sources,
		Iterations:    len(sn.historyDocs),
		PendingSolves: len(sn.pending),
		CreatedAt:     sn.created.UTC().Format(time.RFC3339Nano),
		Problem:       sn.problemDoc,
	}
}

// lookupSession returns a live session by ID, touching it for TTL.
func (s *Server) lookupSession(id string) (*session, bool) {
	s.mu.Lock()
	sn, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	sn.touch()
	return sn, true
}

// listSessionIDs returns all live session IDs, ascending.
func (s *Server) listSessionIDs() []string {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// removeSession unregisters a session (client delete or eviction) and
// closes its event hub. Queued solves still drain: the worker holds its
// own pointer, and closed=true stops new admissions.
func (s *Server) removeSession(id, action string) bool {
	s.mu.Lock()
	sn, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	sn.mu.Lock()
	sn.closed = true
	sn.mu.Unlock()
	s.metrics.sessionsActive.Add(-1)
	if action == "session.evict" {
		s.metrics.sessionsEvicted.Add(1)
		sn.hub.publish("evicted", map[string]string{"session": id})
	}
	sn.hub.close()
	// The removal must survive a restart too, or recovery resurrects a
	// session the client was told is gone. The action strings are the
	// WAL's own lifecycle vocabulary. Best-effort: the session is
	// already unregistered, so a failed append only risks resurrection,
	// which recovery tolerates; the failure is still counted.
	_ = s.walAppend(action, id, nil)
	s.audit.record(id, action, "", nil)
	return true
}

// janitor evicts sessions idle past the TTL. Sessions with queued or
// running work are never evicted, however stale.
func (s *Server) janitor(ttl time.Duration) {
	defer s.janitorWG.Done()
	interval := ttl / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.drainCh:
			return
		case <-ticker.C:
		}
		//ube:nondeterministic-ok TTL comparison against the wall clock
		cutoff := time.Now().Add(-ttl)
		if s.inj.Fire(faultinject.JanitorEvict) != nil {
			// Injected forced sweep: every idle session reads as expired.
			// Sessions with queued or running work stay protected — that
			// safety condition is exactly what the fault exercises.
			//ube:nondeterministic-ok forced-sweep cutoff is eviction policy, not solver input
			cutoff = time.Now().Add(ttl)
		}
		for _, id := range s.listSessionIDs() {
			s.mu.Lock()
			sn, ok := s.sessions[id]
			s.mu.Unlock()
			if !ok {
				continue
			}
			sn.mu.Lock()
			idle := sn.lastUsed.Before(cutoff) && len(sn.pending) == 0 && !sn.scheduled
			sn.mu.Unlock()
			if idle {
				s.removeSession(id, "session.evict")
			}
		}
	}
}
