package server

// Durable sessions (DESIGN.md §14). With Config.WALDir set, every
// session lifecycle event is written ahead to internal/wal before the
// client hears about it: create records carry the canonical create
// request, solve records carry the iteration ordinal and the canonical
// solve request, delete/evict records carry just the session. Because
// every solve is a pure function of (problem, seed) — the determinism
// contract the whole service is built on — recovery needs no result
// bytes: Open replays the surviving records through the same
// buildSession/applyEdits/SolveContext path the live handlers took and
// reconstructs every session's history bit-identically. The only
// non-reproducible parts of a history are operational telemetry
// (wall-clock time, cache warmth); solve records carry the observed
// values and replay patches them into the re-solved result.
//
// Snapshots bound the replay work: a session.snapshot record embeds the
// create request, the current problem (seed already advanced) and the
// mirrored history, so solves at iterations below the snapshot's count
// are skipped, not re-run. Rotation writes a snapshot of every live
// session at the head of a fresh segment and deletes the older ones;
// the periodic per-session snapshots (Config.SnapshotEvery) do the same
// for long-lived sessions between rotations.
//
// Universe mutation (churn) rides the same scheme: a session.churn
// record carries its 1-based batch ordinal and the canonical PATCH
// request, written ahead of the apply (see churn.go), and replay pushes
// the request through the same Session.ApplyChurn the live job took —
// the engine's differential churn suite proves the incremental result
// is bit-identical to building the mutated universe fresh. Snapshots
// embed every committed batch (with the solve count each landed after)
// so a restore re-applies them to the rebuilt engine before installing
// the snapshot's already-repaired problem.
//
// Replay tolerance: a create record for a session a snapshot already
// restored is a duplicate (rotation raced the create's group commit)
// and is skipped; solve/churn/delete/evict records naming an unknown
// session are orphans (their session's removal committed before a
// crash, or a create-undo raced a queued solve) and are counted, not
// fatal. A solve record whose iteration — or a churn record whose batch
// ordinal — leaves a gap is corruption and recovery refuses to guess.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"ube/internal/engine"
	"ube/internal/schemaio"
	"ube/internal/wal"
)

// recoveryDoc reports what startup recovery found and did; served under
// /metrics as walRecovery.
type recoveryDoc struct {
	Segments       int    `json:"segments"`
	Records        int    `json:"records"`
	TornBytes      int64  `json:"tornBytes"`
	DroppedRecords int    `json:"droppedRecords"`
	LastSeq        uint64 `json:"lastSeq"`
	Sessions       int    `json:"sessions"`
	SolvesReplayed int    `json:"solvesReplayed"`
	SolvesSkipped  int    `json:"solvesSkipped"`
	ChurnsReplayed int    `json:"churnsReplayed"`
	ChurnsSkipped  int    `json:"churnsSkipped"`
	Orphans        int    `json:"orphanRecords"`
	Duplicates     int    `json:"duplicateCreates"`
}

// openDurable opens (and recovers) the WAL and replays its records into
// live sessions. Runs during Open, before any worker or janitor starts.
func (s *Server) openDurable() error {
	l, rec, err := wal.Open(wal.Options{
		Dir:          s.cfg.WALDir,
		Fsync:        s.cfg.WALFsync,
		SegmentBytes: s.cfg.WALSegmentBytes,
		Injector:     s.inj,
	})
	if err != nil {
		return err
	}
	doc := &recoveryDoc{
		Segments:       rec.Segments,
		Records:        len(rec.Records),
		TornBytes:      rec.TornBytes,
		DroppedRecords: rec.DroppedRecords,
		LastSeq:        rec.LastSeq,
	}
	if err := s.replay(rec.Records, doc); err != nil {
		l.Close()
		return err
	}
	s.wal = l
	// Resume the ID counter past every session the log ever named — not
	// just survivors — so a deleted session's ID is never reissued to a
	// different tenant (the audit trail and the log stay unambiguous).
	maxID := int64(0)
	for _, r := range rec.Records {
		if n, err := strconv.ParseInt(strings.TrimPrefix(r.Session, "s"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
	}
	s.nextID.Store(maxID)
	doc.Sessions = len(s.sessions)
	s.recovered = doc
	s.metrics.sessionsActive.Add(int64(len(s.sessions)))
	s.audit.record("", "server.recover", "", map[string]any{
		"records":        doc.Records,
		"sessions":       doc.Sessions,
		"solvesReplayed": doc.SolvesReplayed,
		"churnsReplayed": doc.ChurnsReplayed,
		"tornBytes":      doc.TornBytes,
	})
	return nil
}

// replay folds the recovered records, oldest first, into s.sessions.
// Any error aborts recovery: a record that committed live but cannot
// replay means the log (or the code) is wrong, and serving a partial
// history would be worse than refusing to start.
func (s *Server) replay(records []*schemaio.WALRecordDoc, doc *recoveryDoc) error {
	for _, r := range records {
		switch r.Type {
		case schemaio.WALTypeCreate:
			if _, ok := s.sessions[r.Session]; ok {
				doc.Duplicates++
				continue
			}
			sn, err := s.replaySession(r.Session, r.Data)
			if err != nil {
				return fmt.Errorf("server: wal replay: create record %d: %w", r.Seq, err)
			}
			s.sessions[r.Session] = sn
		case schemaio.WALTypeSnapshot:
			snap, err := schemaio.DecodeSessionSnapshotBytes(r.Data)
			if err != nil {
				return fmt.Errorf("server: wal replay: snapshot record %d: %w", r.Seq, err)
			}
			sn, err := s.restoreSnapshot(snap)
			if err != nil {
				return fmt.Errorf("server: wal replay: snapshot record %d: %w", r.Seq, err)
			}
			// Wholesale replace: the snapshot is self-contained and
			// covers everything an earlier create/solve prefix built.
			s.sessions[snap.ID] = sn
		case schemaio.WALTypeSolve:
			sn, ok := s.sessions[r.Session]
			if !ok {
				doc.Orphans++
				continue
			}
			sd, err := schemaio.DecodeWALSolveBytes(r.Data)
			if err != nil {
				return fmt.Errorf("server: wal replay: solve record %d: %w", r.Seq, err)
			}
			if err := s.replaySolve(sn, sd, doc); err != nil {
				return fmt.Errorf("server: wal replay: solve record %d (session %s): %w", r.Seq, r.Session, err)
			}
		case schemaio.WALTypeChurn:
			sn, ok := s.sessions[r.Session]
			if !ok {
				doc.Orphans++
				continue
			}
			cd, err := schemaio.DecodeWALChurnBytes(r.Data)
			if err != nil {
				return fmt.Errorf("server: wal replay: churn record %d: %w", r.Seq, err)
			}
			if err := s.replayChurn(sn, cd, doc); err != nil {
				return fmt.Errorf("server: wal replay: churn record %d (session %s): %w", r.Seq, r.Session, err)
			}
		case schemaio.WALTypeDelete, schemaio.WALTypeEvict:
			if _, ok := s.sessions[r.Session]; !ok {
				doc.Orphans++
				continue
			}
			delete(s.sessions, r.Session)
		case schemaio.WALTypeCheckpoint:
			// Informational: the snapshots preceding it already replayed.
		}
	}
	return nil
}

// replaySession rebuilds an engine session from stored create-request
// bytes through the same buildSession the live handler used.
func (s *Server) replaySession(id string, createRaw []byte) (*session, error) {
	var req createSessionRequest
	dec := json.NewDecoder(bytes.NewReader(createRaw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding create request: %w", err)
	}
	sn, err := s.buildSession(&req)
	if err != nil {
		return nil, err
	}
	sn.id = id
	sn.createRaw = append([]byte(nil), createRaw...)
	return sn, nil
}

// restoreSnapshot rebuilds a session wholesale from a self-contained
// snapshot: the engine from the create request, then problem and
// history restored directly — no solves re-run.
func (s *Server) restoreSnapshot(snap *schemaio.SessionSnapshotDoc) (*session, error) {
	sn, err := s.replaySession(snap.ID, snap.Create)
	if err != nil {
		return nil, err
	}
	// Re-apply the snapshot's churn batches to the rebuilt engine at the
	// engine level: the snapshot's problem is already the final repaired
	// one (constraints and warm start remapped, MaxSources clamped), so
	// only the universe needs mutating, and session-level pin checks
	// against the create-time problem could spuriously refuse a batch the
	// live session admitted after dropping a pin.
	for i := range snap.Churn {
		muts, err := schemaio.DecodeChurnRequestBytes(snap.Churn[i].Request)
		if err != nil {
			return nil, fmt.Errorf("snapshot churn batch %d: %w", i+1, err)
		}
		if _, err := sn.eng.ApplyChurn(muts); err != nil {
			return nil, fmt.Errorf("snapshot churn batch %d: %w", i+1, err)
		}
	}
	p, err := snap.Problem.Decode()
	if err != nil {
		return nil, fmt.Errorf("snapshot problem: %w", err)
	}
	history := make([]engine.Iteration, 0, len(snap.History))
	sols := make([]*engine.Solution, 0, len(snap.History))
	for i := range snap.History {
		it, err := snap.History[i].Decode()
		if err != nil {
			return nil, fmt.Errorf("snapshot iteration %d: %w", i, err)
		}
		history = append(history, it)
		sols = append(sols, it.Solution)
	}
	sn.sess.Restore(p, history)
	if n := len(snap.Churn); n > 0 {
		// The flag the live session held at snapshot time is derivable: a
		// batch after the last solve means the history tail's IDs are
		// stale and the next solve must warm-start from the repaired
		// InitialSources the snapshot's problem carries.
		if snap.Churn[n-1].AfterSolves == snap.Solves {
			sn.sess.MarkChurnDirty()
		}
		if s.solveCache != nil {
			fp, err := universeFingerprint(sn.eng.Universe())
			if err != nil {
				return nil, fmt.Errorf("fingerprinting mutated universe: %w", err)
			}
			sn.universeFP = fp
		}
	}
	if err := sn.refreshProblemDoc(); err != nil {
		return nil, err
	}
	sn.mu.Lock()
	sn.historyDocs = append([]schemaio.IterationDoc(nil), snap.History...)
	sn.solutions = sols
	sn.churnDocs = append([]schemaio.SnapshotChurnDoc(nil), snap.Churn...)
	sn.sources = sn.eng.Universe().N()
	sn.mu.Unlock()
	return sn, nil
}

// replaySolve re-runs one committed solve. Solves the session's restore
// point already covers are skipped by iteration ordinal; a gap means
// lost records inside the clean prefix, which recovery refuses.
func (s *Server) replaySolve(sn *session, sd *schemaio.WALSolveDoc, doc *recoveryDoc) error {
	cur := len(sn.sess.History())
	if sd.Iteration < cur {
		doc.SolvesSkipped++
		return nil
	}
	if sd.Iteration > cur {
		return fmt.Errorf("iteration %d leaves a gap after %d committed", sd.Iteration, cur)
	}
	req := &solveRequest{}
	dec := json.NewDecoder(bytes.NewReader(sd.Request))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("decoding solve request: %w", err)
	}
	if err := applyEdits(sn.sess, req); err != nil {
		return fmt.Errorf("re-applying edits: %w", err)
	}
	if err := sn.refreshProblemDoc(); err != nil {
		return err
	}
	if _, err := sn.sess.SolveContext(context.Background()); err != nil {
		return fmt.Errorf("re-solving: %w", err)
	}
	// The solve result is reproducible; its operational telemetry
	// (wall-clock, cache warmth) is not. Patch in what the live solve
	// observed so the mirrored documents come back bit-identical.
	hist := sn.sess.History()
	sol := hist[len(hist)-1].Solution
	sol.Elapsed = time.Duration(sd.ElapsedNS)
	sol.MatchCache = engine.CacheStats{Hits: sd.CacheHits, Misses: sd.CacheMisses, Evictions: sd.CacheEvictions}
	if err := sn.appendIterationDoc(); err != nil {
		return err
	}
	if err := sn.refreshProblemDoc(); err != nil {
		return err
	}
	doc.SolvesReplayed++
	return nil
}

// replayChurn re-applies one committed universe-mutation batch through
// the same Session.ApplyChurn path the live job took. Batches the
// session's restore point already covers are skipped by batch ordinal;
// a gap means lost records inside the clean prefix, which recovery
// refuses. The pinned-source checks cannot fire spuriously: replay
// reconstructs the exact problem state the live CheckChurn admitted the
// batch against.
func (s *Server) replayChurn(sn *session, cd *schemaio.WALChurnDoc, doc *recoveryDoc) error {
	cur := len(sn.churnDocs)
	if cd.Batch <= cur {
		doc.ChurnsSkipped++
		return nil
	}
	if cd.Batch > cur+1 {
		return fmt.Errorf("batch %d leaves a gap after %d committed", cd.Batch, cur)
	}
	muts, err := schemaio.DecodeChurnRequestBytes(cd.Request)
	if err != nil {
		return fmt.Errorf("decoding churn request: %w", err)
	}
	if _, err := sn.sess.ApplyChurn(muts); err != nil {
		return fmt.Errorf("re-applying churn: %w", err)
	}
	if err := sn.refreshProblemDoc(); err != nil {
		return err
	}
	if s.solveCache != nil {
		fp, err := universeFingerprint(sn.eng.Universe())
		if err != nil {
			return fmt.Errorf("fingerprinting mutated universe: %w", err)
		}
		sn.universeFP = fp
	}
	sn.churnDocs = append(sn.churnDocs, schemaio.SnapshotChurnDoc{AfterSolves: len(sn.historyDocs), Request: cd.Request})
	sn.sources = sn.eng.Universe().N()
	doc.ChurnsReplayed++
	return nil
}

// walAppend commits one lifecycle record, counting failures for
// /healthz and /metrics. A nil log (durability off) accepts everything.
func (s *Server) walAppend(typ, session string, data []byte) error {
	if s.wal == nil {
		return nil
	}
	if _, err := s.wal.Append(typ, session, data); err != nil {
		s.metrics.walAppendErrors.Add(1)
		return err
	}
	return nil
}

// walCommitSolve makes one solved iteration durable and then does the
// housekeeping that keeps recovery fast: a periodic per-session
// snapshot and, when the active segment has outgrown its bound, a
// checkpoint-anchored rotation. Only the solve record itself can fail
// the commit — snapshots and rotation are optimizations, and losing one
// only lengthens a future replay.
func (s *Server) walCommitSolve(sn *session, job *solveJob) error {
	if s.wal == nil {
		return nil
	}
	// Worker context: the just-appended iteration is the history tail.
	hist := sn.sess.History()
	sol := hist[len(hist)-1].Solution
	payload, err := schemaio.EncodeWALSolve(&schemaio.WALSolveDoc{
		Iteration:      job.iteration,
		Request:        job.raw,
		ElapsedNS:      sol.Elapsed.Nanoseconds(),
		CacheHits:      sol.MatchCache.Hits,
		CacheMisses:    sol.MatchCache.Misses,
		CacheEvictions: sol.MatchCache.Evictions,
	})
	if err != nil {
		s.metrics.walAppendErrors.Add(1)
		return err
	}
	if err := s.walAppend(schemaio.WALTypeSolve, sn.id, payload); err != nil {
		return err
	}
	s.maybeSnapshot(sn)
	s.maybeRotate()
	return nil
}

// maybeSnapshot writes a per-session snapshot every SnapshotEvery
// solves. Best-effort: the solve is already durable, so a failed
// snapshot costs replay time, not data.
func (s *Server) maybeSnapshot(sn *session) {
	sn.mu.Lock()
	n := len(sn.historyDocs)
	sn.mu.Unlock()
	if n == 0 || n%s.cfg.SnapshotEvery != 0 {
		return
	}
	doc, err := sn.snapshotDoc()
	if err != nil {
		return
	}
	payload, err := schemaio.EncodeSessionSnapshot(doc)
	if err != nil {
		return
	}
	_ = s.walAppend(schemaio.WALTypeSnapshot, sn.id, payload)
}

// maybeRotate starts a fresh checkpoint-anchored segment once the
// active one outgrows its bound.
func (s *Server) maybeRotate() {
	if !s.wal.ShouldRotate() {
		return
	}
	if err := s.wal.Rotate(s.buildSnapshots); err != nil && !errors.Is(err, wal.ErrClosed) {
		s.metrics.walAppendErrors.Add(1)
	}
}

// buildSnapshots renders a snapshot of every live session for rotation.
// It runs on the WAL flusher goroutine, after pending appends flush, so
// it reads only the handler-visible mirrors and immutable fields —
// never the worker-only engine sessions. Every record already flushed
// has its mirror updated (mirrors are refreshed before the WAL append),
// so the snapshots cover everything the deleted segments could hold.
func (s *Server) buildSnapshots() ([]wal.SessionSnapshot, error) {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	//ube:nondeterministic-ok collection order is fixed by the sort below
	for _, sn := range s.sessions {
		sessions = append(sessions, sn)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	out := make([]wal.SessionSnapshot, 0, len(sessions))
	for _, sn := range sessions {
		doc, err := sn.snapshotDoc()
		if err != nil {
			return nil, err
		}
		payload, err := schemaio.EncodeSessionSnapshot(doc)
		if err != nil {
			return nil, err
		}
		out = append(out, wal.SessionSnapshot{Session: sn.id, Data: payload})
	}
	return out, nil
}
