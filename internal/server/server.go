// Package server is the multi-tenant µBE session service: the engine's
// interactive feedback loop (solve → inspect → pin/reweight/tighten →
// re-solve, §1/§6 of the paper) exposed over HTTP so many users can run
// concurrent exploration sessions against one process.
//
// The API is deliberately small and stdlib-only (net/http + encoding/json):
//
//	POST   /v1/sessions                  create a session (universe, schemas text, or inline problem)
//	GET    /v1/sessions                  list session IDs
//	GET    /v1/sessions/{id}             session info + current problem
//	DELETE /v1/sessions/{id}             delete a session
//	POST   /v1/sessions/{id}/solve       apply problem edits (all-or-nothing) and solve
//	PATCH  /v1/sessions/{id}/universe    apply a universe-mutation (churn) batch, all-or-nothing
//	GET    /v1/sessions/{id}/history     full iteration history (schemaio docs)
//	GET    /v1/sessions/{id}/history/{k} one iteration
//	GET    /v1/sessions/{id}/diff        diff two iterations (?from=&to=, default last two)
//	GET    /v1/sessions/{id}/events      SSE stream of solver events (queued/start/progress/done/error/evicted)
//	GET    /v1/sessions/{id}/trace       latest solve's span trace, JSONL (?iter=k for a retained iteration)
//	GET    /healthz                      liveness
//	GET    /metrics                      operational counters, JSON
//
// Concurrency model: solves are admitted into a bounded queue (overflow →
// 429 + Retry-After) feeding a fixed worker pool; same-session solves are
// serialized in admission order (see queue.go), which both protects the
// lock-free engine.Session and keeps concurrent clients deterministic.
// Determinism contract: the solver never sees a clock, a goroutine ID, or
// an unordered map walk — every solve is a pure function of (problem,
// seed), so a session's history depends only on the order requests were
// admitted, never on server load.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ube/internal/auditlog"
	"ube/internal/engine"
	"ube/internal/faultinject"
	"ube/internal/model"
	"ube/internal/schemaio"
	"ube/internal/spec"
	"ube/internal/wal"
)

// statusClientClosedRequest reports a solve whose client vanished before
// the result existed (nginx's 499 convention). Nobody receives these
// bodies; the code exists for the audit trail and tests.
const statusClientClosedRequest = 499

// maxRequestBody bounds request bodies (universes can be large, but not
// unbounded).
const maxRequestBody = 64 << 20

// Config sizes the service.
type Config struct {
	// Workers is the solve worker pool size. Default 2.
	Workers int
	// QueueDepth bounds solves admitted but not yet executing, across
	// all sessions; past it clients get 429 + Retry-After. Default 16.
	QueueDepth int
	// MaxSessions bounds live sessions. Default 256.
	MaxSessions int
	// SessionTTL evicts sessions idle that long; 0 disables eviction.
	SessionTTL time.Duration
	// AuditWriter receives the append-only JSONL audit log of every
	// session mutation; nil disables auditing.
	AuditWriter io.Writer
	// EngineOptions configure every engine the server builds.
	EngineOptions []engine.Option
	// SolveTimeout bounds each solve's execution; past it the solve is
	// cancelled and the client gets 504 + Retry-After. 0 disables the
	// deadline. The bound covers stalled workers too: a worker is never
	// lost to one job for longer than SolveTimeout.
	SolveTimeout time.Duration
	// RetryAfterSeconds is the backoff guidance sent in Retry-After on
	// every 429/503/504. Default 2.
	RetryAfterSeconds int
	// FaultInjector, when non-nil, arms the named fault-injection
	// points threaded through the service and its engines (see
	// internal/faultinject and DESIGN.md §10). Chaos testing only; nil
	// in production.
	FaultInjector *faultinject.Injector
	// TraceSampleEvery thins solve tracing under load: while the queue
	// is shallow (depth ≤ Workers) every solve is traced; past that only
	// every TraceSampleEvery-th solve is. Default 8; see trace.go.
	TraceSampleEvery int
	// WALDir, when set, makes sessions durable: every create, committed
	// solve, delete and evict is written ahead to a segment log there,
	// and Open replays whatever the log holds before serving (see
	// durability.go and DESIGN.md §14). Empty disables durability.
	WALDir string
	// WALFsync makes every WAL group commit fsync before acknowledging.
	// Off, acknowledged records still survive a process crash (they are
	// written through to the OS), just not an OS crash.
	WALFsync bool
	// WALSegmentBytes overrides the WAL's rotation threshold (default
	// 16 MiB); rotation snapshots every live session into a fresh
	// segment and deletes the old ones.
	WALSegmentBytes int64
	// SnapshotEvery writes a per-session snapshot record after every
	// this-many solves of a session, bounding how much of its history
	// recovery must re-solve. Default 16; ≤0 gets the default, and
	// rotation snapshots happen regardless.
	SnapshotEvery int
	// AuditChain, when non-nil, mirrors every audit line into a
	// tamper-evident hash chain (internal/auditlog) alongside the plain
	// AuditWriter JSONL. Callers own sealing on their own schedule;
	// Shutdown seals the final partial batch.
	AuditChain *auditlog.Writer
	// SolveCacheSize bounds the deterministic cross-session solve memo
	// (entries, LRU past the bound; see solvecache.go). Identical
	// solver inputs over identical universes are answered from the
	// memo without engine work — exact by the determinism contract,
	// since a solve is a pure function of (universe, input snapshot).
	// 0 disables the memo (the default).
	SolveCacheSize int
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 256
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 2
	}
	if cfg.TraceSampleEvery <= 0 {
		cfg.TraceSampleEvery = 8
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 16
	}
	return cfg
}

// Server is the µBE session service. Create with New, mount Handler()
// on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg     Config
	metrics *metrics
	audit   *auditLog
	mux     *http.ServeMux
	inj     *faultinject.Injector
	engOpts []engine.Option

	mu       sync.Mutex
	sessions map[string]*session
	draining bool
	nextID   atomic.Int64

	solveCache *solveCache // nil unless Config.SolveCacheSize > 0

	wal       *wal.Log
	recovered *recoveryDoc

	work      chan *session
	jobsWG    sync.WaitGroup
	workersWG sync.WaitGroup
	janitorWG sync.WaitGroup
	drainCh   chan struct{}
	drainOnce sync.Once
}

// New builds a server and starts its worker pool (and TTL janitor when
// configured). Callers own its lifecycle: call Shutdown when done.
//
// New delegates to Open and panics on error; construction can only fail
// when durability (Config.WALDir) is configured, so durable callers
// should use Open directly and handle the error.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic("server: " + err.Error())
	}
	return s
}

// Open builds a server, recovers durable state when Config.WALDir is
// set (see durability.go), and starts the worker pool and TTL janitor.
// Recovery completes before any worker or janitor goroutine starts, so
// replayed sessions can never race live traffic or eviction.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		metrics:  &metrics{},
		audit:    newAuditLog(cfg.AuditWriter, cfg.AuditChain),
		inj:      cfg.FaultInjector,
		sessions: make(map[string]*session),
		work:     make(chan *session, cfg.QueueDepth),
		drainCh:  make(chan struct{}),
	}
	s.audit.arm(s.inj, &s.metrics.auditDropped)
	if cfg.SolveCacheSize > 0 {
		s.solveCache = newSolveCache(cfg.SolveCacheSize)
	}
	s.engOpts = cfg.EngineOptions
	if s.inj != nil {
		s.engOpts = append(append([]engine.Option(nil), cfg.EngineOptions...), engine.WithFaultInjector(s.inj))
	}
	s.routes()
	if cfg.WALDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	s.workersWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.SessionTTL > 0 {
		s.janitorWG.Add(1)
		go s.janitor(cfg.SessionTTL)
	}
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes the server itself mountable.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics returns a point-in-time counters snapshot (also served by
// /metrics); exported for in-process embedders like ube-load.
func (s *Server) Metrics() any { return s.metricsSnapshot() }

// BeginDrain stops admitting sessions and solves and disconnects event
// streams; already-admitted solves keep running. Idempotent.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		close(s.drainCh)
		s.audit.record("", "server.drain", "", nil)
	})
}

// Shutdown drains, waits (bounded by ctx) for every admitted solve to
// finish, then stops the worker pool. After a clean Shutdown no server
// goroutine remains.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Safe: draining since BeginDrain, and jobsWG.Wait proved every
	// admitted job — hence every pending work-token send — completed.
	close(s.work)
	s.workersWG.Wait()
	s.janitorWG.Wait()
	// Workers are gone, so nothing appends anymore: flush and close the
	// WAL, and seal the audit chain's final partial batch.
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			return err
		}
	}
	s.audit.seal()
	return nil
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("POST /v1/sessions/{id}/solve", s.handleSolve)
	mux.HandleFunc("PATCH /v1/sessions/{id}/universe", s.handleChurn)
	mux.HandleFunc("GET /v1/sessions/{id}/history", s.handleHistory)
	mux.HandleFunc("GET /v1/sessions/{id}/history/{k}", s.handleHistoryAt)
	mux.HandleFunc("GET /v1/sessions/{id}/diff", s.handleDiff)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/sessions/{id}/trace", s.handleTrace)
	s.mux = mux
}

// errorDoc is every error response body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// wantsBinary reports whether the request opted into the compact binary
// frames (internal/schemaio binary codec) via content negotiation.
// JSON stays the default: only an explicit Accept of the binary media
// type switches the response encoding, and only on the hot solve and
// history paths. Errors are always JSON.
func wantsBinary(r *http.Request) bool {
	for _, v := range r.Header.Values("Accept") {
		for _, part := range strings.Split(v, ",") {
			mt := strings.TrimSpace(part)
			if i := strings.IndexByte(mt, ';'); i >= 0 {
				mt = strings.TrimSpace(mt[:i])
			}
			if strings.EqualFold(mt, schemaio.BinaryContentType) {
				return true
			}
		}
	}
	return false
}

func writeBinary(w http.ResponseWriter, status int, frame []byte) {
	w.Header().Set("Content-Type", schemaio.BinaryContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.WriteHeader(status)
	_, _ = w.Write(frame)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// readBody drains a bounded request body so the raw bytes can both be
// decoded and written ahead to the WAL verbatim.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return nil, false
	}
	return data, true
}

// decodeBytes strictly decodes an already-read request body: unknown
// fields are rejected, an empty body means all defaults.
func decodeBytes(w http.ResponseWriter, data []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// canonicalBody compacts a request body to the exact bytes the WAL
// stores and replay re-decodes; an empty body canonicalizes to the
// empty object it means.
func canonicalBody(raw []byte) ([]byte, error) {
	if len(bytes.TrimSpace(raw)) == 0 {
		return []byte("{}"), nil
	}
	return schemaio.CompactJSON(raw)
}

// healthDoc is the /healthz body. Degraded reports a live but impaired
// service: audit lines were lost to sink failures, or WAL appends
// failed — state a load balancer keeps routing to but an operator must
// see.
type healthDoc struct {
	Status       string `json:"status"`
	Degraded     bool   `json:"degraded,omitempty"`
	AuditDropped int64  `json:"auditLinesDropped,omitempty"`
	WALErrors    int64  `json:"walAppendErrors,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	doc := healthDoc{Status: "ok"}
	doc.AuditDropped = s.metrics.auditDropped.Load()
	doc.WALErrors = s.metrics.walAppendErrors.Load()
	doc.Degraded = doc.AuditDropped > 0 || doc.WALErrors > 0
	if draining {
		doc.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

// createSessionRequest starts a session from exactly one universe form:
// an inline universe document (ube-gen output), or source descriptions
// in the paper's Figure 1 text format. The optional problem overrides
// the paper-default starting problem.
type createSessionRequest struct {
	Universe *model.Universe      `json:"universe,omitempty"`
	Schemas  string               `json:"schemas,omitempty"`
	Problem  *schemaio.ProblemDoc `json:"problem,omitempty"`
	// ID, when set, names the session instead of letting the server
	// mint an ID. Routers use this to place a session under a key they
	// chose on the hash ring; a stateless front can then route every
	// later request for the session without a lookup table. Validated
	// by validateSessionID; duplicates get 409.
	ID string `json:"id,omitempty"`
}

// sessionIDPattern admits client-supplied session IDs: short, URL-safe,
// no separators the route patterns could misparse.
var sessionIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// reservedIDPattern matches the server's own minted IDs ("s" + counter).
// Client-supplied IDs may not use this shape: WAL recovery resumes the
// mint counter by parsing it, so a client squatting on "s7" could
// collide with a future minted session after a restart.
var reservedIDPattern = regexp.MustCompile(`^s[0-9]+$`)

// validateSessionID vets a client-supplied session ID.
func validateSessionID(id string) error {
	if !sessionIDPattern.MatchString(id) {
		return fmt.Errorf("session id %q must match %s", id, sessionIDPattern)
	}
	if reservedIDPattern.MatchString(id) {
		return fmt.Errorf("session id %q uses the server-minted shape s<n>, which is reserved", id)
	}
	return nil
}

// buildSession constructs an unregistered session from a create
// request: the universe (inline or parsed from schemas text), the
// engine, the starting problem, and the handler-visible mirrors. The
// caller assigns the ID and registers it. Shared by the create handler
// and WAL replay, so a recovered session is built by exactly the code
// that built it live.
func (s *Server) buildSession(req *createSessionRequest) (*session, error) {
	var u *model.Universe
	switch {
	case req.Universe != nil && req.Schemas != "":
		return nil, errors.New("give either universe or schemas, not both")
	case req.Universe != nil:
		u = req.Universe
	case req.Schemas != "":
		parsed, err := schemaio.Parse(strings.NewReader(req.Schemas))
		if err != nil {
			return nil, fmt.Errorf("parsing schemas: %v", err)
		}
		u = parsed
	default:
		return nil, errors.New("need universe or schemas")
	}
	if err := u.Validate(); err != nil {
		return nil, fmt.Errorf("invalid universe: %v", err)
	}

	var prob engine.Problem
	if req.Problem != nil {
		p, err := req.Problem.Decode()
		if err != nil {
			return nil, fmt.Errorf("invalid problem: %v", err)
		}
		prob = p
	} else {
		prob = defaultProblemFor(u)
	}

	eng, err := engine.New(u, s.engOpts...)
	if err != nil {
		return nil, fmt.Errorf("building engine: %v", err)
	}

	sn := &session{
		hub:     newHub(s.inj),
		eng:     eng,
		sess:    engine.NewSession(eng, prob),
		sources: u.N(),
	}
	if s.solveCache != nil {
		fp, err := universeFingerprint(u)
		if err != nil {
			return nil, fmt.Errorf("fingerprinting universe: %v", err)
		}
		sn.universeFP = fp
	}
	//ube:nondeterministic-ok creation time is TTL bookkeeping, not solver input
	sn.created = time.Now()
	sn.lastUsed = sn.created
	if err := sn.refreshProblemDoc(); err != nil {
		return nil, fmt.Errorf("problem has no JSON form: %v", err)
	}
	return sn, nil
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	var req createSessionRequest
	if !decodeBytes(w, raw, &req) {
		return
	}
	canon, err := canonicalBody(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.ID != "" {
		if err := validateSessionID(req.ID); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	sn, err := s.buildSession(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sn.createRaw = canon

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.retryAfter())
		writeError(w, http.StatusTooManyRequests, "session limit (%d) reached", s.cfg.MaxSessions)
		return
	}
	if req.ID != "" {
		if _, dup := s.sessions[req.ID]; dup {
			s.mu.Unlock()
			writeError(w, http.StatusConflict, "session %q already exists", req.ID)
			return
		}
		sn.id = req.ID
	} else {
		sn.id = "s" + strconv.FormatInt(s.nextID.Add(1), 10)
	}
	s.sessions[sn.id] = sn
	s.mu.Unlock()

	// Write-ahead before acknowledging: a session the client was told
	// about must exist again after a crash. On failure the registration
	// is undone — the service never acknowledges more than it persisted.
	if err := s.walAppend(schemaio.WALTypeCreate, sn.id, canon); err != nil {
		s.mu.Lock()
		delete(s.sessions, sn.id)
		s.mu.Unlock()
		sn.mu.Lock()
		sn.closed = true
		sn.mu.Unlock()
		sn.hub.close()
		w.Header().Set("Retry-After", s.retryAfter())
		writeError(w, http.StatusServiceUnavailable, "session not durable: %v", err)
		return
	}

	s.metrics.sessionsCreated.Add(1)
	s.metrics.sessionsActive.Add(1)
	s.audit.record(sn.id, "session.create", r.RemoteAddr, map[string]any{"sources": sn.eng.Universe().N()})
	writeJSON(w, http.StatusCreated, sn.info())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": s.listSessionIDs()})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, sn.info())
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	s.removeSession(id, "session.delete")
	s.audit.record(id, "session.delete.by", r.RemoteAddr, nil)
	w.WriteHeader(http.StatusNoContent)
}

// solveRequest is the POST .../solve body: a batch of problem edits
// (applied all-or-nothing before the solve; see applyEdits for the
// order) — all optional, so an empty body means "solve again as-is".
type solveRequest struct {
	MaxSources     *int               `json:"maxSources,omitempty"`
	Theta          *float64           `json:"theta,omitempty"`
	Beta           *int               `json:"beta,omitempty"`
	Optimizer      string             `json:"optimizer,omitempty"`
	Workers        *int               `json:"workers,omitempty"`
	MaxEvals       *int               `json:"maxEvals,omitempty"`
	Weights        map[string]float64 `json:"weights,omitempty"`
	SetWeights     map[string]float64 `json:"setWeights,omitempty"`
	PinSources     []int              `json:"pinSources,omitempty"`
	DropSourcePins []int              `json:"dropSourcePins,omitempty"`
	ExcludeSources []int              `json:"excludeSources,omitempty"`
	DropExclusions []int              `json:"dropExclusions,omitempty"`
	PinGAs         []int              `json:"pinGAs,omitempty"`
	UnpinGAs       []int              `json:"unpinGAs,omitempty"`
}

// solveResponse is the successful solve body: the rendered (name-resolved)
// solution for humans, the exact round-trip doc for machines, and the
// diff against the previous iteration when one exists.
type solveResponse struct {
	Session   string                `json:"session"`
	Iteration int                   `json:"iteration"`
	Rendered  *spec.SolutionDoc     `json:"rendered,omitempty"`
	Solution  *schemaio.SolutionDoc `json:"solution,omitempty"`
	Diff      *engine.Diff          `json:"diff,omitempty"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	req := &solveRequest{}
	if !decodeBytes(w, raw, req) {
		return
	}
	canon, err := canonicalBody(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	job := &solveJob{
		req:    req,
		raw:    canon,
		ctx:    r.Context(),
		remote: r.RemoteAddr,
		done:   make(chan jobResult, 1),
	}
	switch err := s.enqueue(sn, job); {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", s.retryAfter())
		s.audit.record(sn.id, "solve.reject", r.RemoteAddr, map[string]any{"queueDepth": s.cfg.QueueDepth})
		writeError(w, http.StatusTooManyRequests, "solve queue is full (depth %d)", s.cfg.QueueDepth)
		return
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case errors.Is(err, errSessionGone):
		writeError(w, http.StatusGone, "session was deleted")
		return
	}
	s.audit.record(sn.id, "solve.enqueue", r.RemoteAddr, nil)
	select {
	case res := <-job.done:
		if res.retryAfter {
			w.Header().Set("Retry-After", s.retryAfter())
		}
		if resp, ok := res.body.(*solveResponse); ok && res.status == http.StatusOK && wantsBinary(r) && resp.Solution != nil {
			frame, err := schemaio.EncodeBinarySolveResult(&schemaio.SolveResultDoc{
				Session:   resp.Session,
				Iteration: resp.Iteration,
				Solution:  *resp.Solution,
			})
			if err == nil {
				writeBinary(w, http.StatusOK, frame)
				return
			}
			// Unencodable result (can't happen for JSON-admitted
			// problems): fall back to the JSON reference form.
		}
		writeJSON(w, res.status, res.body)
	case <-r.Context().Done():
		// Client gone; the worker will observe the dead context and
		// discard the job (or its result) without us.
	}
}

// retryAfter renders the configured backoff guidance for Retry-After
// headers on 429/503/504 responses.
func (s *Server) retryAfter() string {
	return strconv.Itoa(s.cfg.RetryAfterSeconds)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	sn.mu.Lock()
	docs := sn.historyDocs // append-only; shared read of the prefix is safe
	sn.mu.Unlock()
	if wantsBinary(r) {
		frame, err := schemaio.EncodeBinaryHistory(docs)
		if err == nil {
			writeBinary(w, http.StatusOK, frame)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"iterations": docs})
}

func (s *Server) handleHistoryAt(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	k, err := strconv.Atoi(r.PathValue("k"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad iteration index %q", r.PathValue("k"))
		return
	}
	sn.mu.Lock()
	docs := sn.historyDocs
	sn.mu.Unlock()
	if k < 0 || k >= len(docs) {
		writeError(w, http.StatusNotFound, "iteration %d out of range [0,%d)", k, len(docs))
		return
	}
	writeJSON(w, http.StatusOK, docs[k])
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	sn.mu.Lock()
	sols := sn.solutions
	sn.mu.Unlock()
	if len(sols) < 2 {
		writeError(w, http.StatusConflict, "need at least two iterations to diff (have %d)", len(sols))
		return
	}
	from, to := len(sols)-2, len(sols)-1
	var err error
	if v := r.URL.Query().Get("from"); v != "" {
		if from, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, "bad from index %q", v)
			return
		}
	}
	if v := r.URL.Query().Get("to"); v != "" {
		if to, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, "bad to index %q", v)
			return
		}
	}
	if from < 0 || from >= len(sols) || to < 0 || to >= len(sols) {
		writeError(w, http.StatusBadRequest, "diff indices (%d,%d) out of range [0,%d)", from, to, len(sols))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"from": from,
		"to":   to,
		"diff": engine.DiffSolutions(sols[from], sols[to]),
	})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, ok := sn.hub.subscribe()
	if !ok {
		writeError(w, http.StatusGone, "session was deleted")
		return
	}
	defer sn.hub.unsubscribe(ch)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, ": connected\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case frame, open := <-ch:
			if !open {
				return // session deleted or evicted
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		}
	}
}

// defaultProblemFor adapts the paper-default problem to a universe: m is
// capped by the universe size, and the mttf characteristic QEF is dropped
// (weight redistributed) when no source defines mttf.
func defaultProblemFor(u *model.Universe) engine.Problem {
	p := engine.DefaultProblem()
	if p.MaxSources > u.N() {
		p.MaxSources = u.N()
	}
	hasMTTF := false
	for i := 0; i < u.N(); i++ {
		if _, ok := u.Source(i).Characteristic("mttf"); ok {
			hasMTTF = true
			break
		}
	}
	if !hasMTTF {
		wMTTF := p.Weights["mttf"]
		delete(p.Weights, "mttf")
		delete(p.Characteristics, "mttf")
		rest := 1 - wMTTF
		//ube:nondeterministic-ok each key rescales independently; order cannot matter
		for k, v := range p.Weights {
			p.Weights[k] = v / rest
		}
	}
	return p
}
