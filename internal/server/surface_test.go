package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestServeHTTPAndListSessions mounts the server as a plain http.Handler
// (the embedding path, no ListenAndServe) and lists sessions through it.
func TestServeHTTPAndListSessions(t *testing.T) {
	u := testUniverse(t, 20)
	srv, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, u, testProblemDoc())

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("list sessions: %d %s", rec.Code, rec.Body)
	}
	var got struct {
		Sessions []string `json:"sessions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Sessions) != 1 || got.Sessions[0] != id {
		t.Errorf("sessions = %v, want [%s]", got.Sessions, id)
	}

	// The exported metrics accessor returns the same snapshot the
	// /metrics endpoint serializes.
	data, err := json.Marshal(srv.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	var m metricsDoc
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.SessionsActive != 1 {
		t.Errorf("Metrics() sessionsActive = %d, want 1", m.SessionsActive)
	}
}
