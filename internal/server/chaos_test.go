package server

// The chaos suite: scripted users hammer an in-process server while a
// seeded fault plan (internal/faultinject) fires injected failures at
// the service's weak points. Because every fault is a pure function of
// arrival counts, a failing run is replayed exactly by re-running with
// the same plan — every failure message embeds the seed and the plan
// JSON for that purpose.
//
// Three invariants hold under every committed plan:
//
//  1. Clean prefix — each session's history is the full scripted
//     history or a clean prefix of it; faults never leave a torn or
//     reordered iteration behind.
//  2. Bit-identical survivors — canonicalized (wall-clock timing and
//     match-cache traffic zeroed, since retries warm the per-session
//     cache), every surviving iteration is byte-identical to the same
//     iteration of a fault-free reference run.
//  3. Reconciliation — after drain, every admitted solve is accounted
//     for: admitted = completed + errored + cancelled + panicked +
//     timed out, the queue is empty, and the audit log agrees with the
//     counters up to the injector's counted dropped lines.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ube/internal/faultinject"
	"ube/internal/model"
	"ube/internal/schemaio"
)

const (
	chaosUsers       = 4
	chaosIters       = 3
	chaosMaxAttempts = 12
	chaosPlanDir     = "testdata/chaosplans"
)

// chaosConfig is the service configuration every chaos run uses. The
// solve deadline is far above a healthy solve's wall-clock so only
// injected stalls ever hit it. A non-empty walDir makes the run
// durable — with fsync on, so the wal.fsync-stall point is reachable.
func chaosConfig(inj *faultinject.Injector, audit *syncBuffer, workers int, walDir string) Config {
	cfg := Config{
		Workers:           workers,
		QueueDepth:        16,
		SolveTimeout:      2 * time.Second,
		RetryAfterSeconds: 1,
		AuditWriter:       audit,
		FaultInjector:     inj,
	}
	if walDir != "" {
		cfg.WALDir = walDir
		cfg.WALFsync = true
	}
	return cfg
}

// planTouchesWAL reports whether a plan exercises the durability layer,
// which only exists when the run is configured with a WAL.
func planTouchesWAL(plan faultinject.Plan) bool {
	for _, e := range plan.Entries {
		switch e.Point {
		case faultinject.WALWriteError, faultinject.WALFsyncStall, faultinject.RecoveryTruncatedTail:
			return true
		}
	}
	return false
}

// chaosWALDir returns the WAL directory a plan's run should use: a
// fresh temp dir for WAL plans, empty (durability off) otherwise.
func chaosWALDir(t *testing.T, plan faultinject.Plan) string {
	t.Helper()
	if planTouchesWAL(plan) {
		return t.TempDir()
	}
	return ""
}

// chaosPlanNames lists the committed plan fixtures, sorted.
func chaosPlanNames(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(chaosPlanDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func loadChaosPlan(t *testing.T, name string) faultinject.Plan {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(chaosPlanDir, name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := schemaio.DecodeFaultPlanBytes(data)
	if err != nil {
		t.Fatalf("plan %s: %v", name, err)
	}
	return plan
}

// replayBanner renders the reproduction recipe embedded in every chaos
// failure message: the seed plus the full plan JSON.
func replayBanner(name string, plan faultinject.Plan) string {
	data, err := schemaio.EncodeFaultPlan(&plan)
	if err != nil {
		return fmt.Sprintf("replay: plan %s, seed %d", name, plan.Seed)
	}
	return fmt.Sprintf("replay: plan %s, seed %d\n%s", name, plan.Seed, data)
}

// chaosPost is postJSON without *testing.T, safe for user goroutines.
func chaosPost(url string, body any) (int, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// chaosScript builds iteration k's solve request for the scripted user.
// Every edit depends only on the user's own successful results, so a
// retried request is bit-identical to the failed one (the server's
// full-undo contract makes the retry equivalent) and the fault-free
// reference run issues exactly the same sequence.
func chaosScript(k int, last *schemaio.SolutionDoc) solveRequest {
	switch {
	case k == 0:
		return solveRequest{}
	case k%3 == 1 && last != nil && len(last.Sources) > 0:
		return solveRequest{PinSources: []int{last.Sources[0]}}
	case k%3 == 2:
		theta := 0.7
		return solveRequest{Theta: &theta}
	default:
		return solveRequest{SetWeights: map[string]float64{"card": 0.5}}
	}
}

// chaosSolve posts one solve, retrying transient failures (429 queue
// rejection, 500 recovered panic, 503 injected cancel, 504 deadline)
// with the identical request. ok=false means the user exhausted its
// attempts and abandons the rest of its script — the clean-prefix case.
func chaosSolve(url string, req solveRequest) (sol *schemaio.SolutionDoc, ok bool, err error) {
	for attempt := 0; attempt < chaosMaxAttempts; attempt++ {
		status, body, err := chaosPost(url, req)
		if err != nil {
			return nil, false, err
		}
		switch status {
		case http.StatusOK:
			var sr solveResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				return nil, false, fmt.Errorf("decoding solve response: %w", err)
			}
			return sr.Solution, true, nil
		case http.StatusTooManyRequests, http.StatusInternalServerError,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			time.Sleep(20 * time.Millisecond)
		default:
			return nil, false, fmt.Errorf("solve: unexpected status %d: %s", status, body)
		}
	}
	return nil, false, nil
}

// chaosCreate creates the user's session, retrying transient refusals:
// a failed WAL append undoes the registration and answers 503, and the
// retried create is acknowledged under a fresh ID.
func chaosCreate(baseURL string, u *model.Universe, userIdx int) (string, error) {
	doc := testProblemDoc()
	doc.Seed = int64(1000 + userIdx)
	for attempt := 0; attempt < chaosMaxAttempts; attempt++ {
		status, body, err := chaosPost(baseURL+"/v1/sessions", createSessionRequest{Universe: u, Problem: doc})
		if err != nil {
			return "", err
		}
		switch status {
		case http.StatusCreated:
			var info sessionInfo
			if err := json.Unmarshal(body, &info); err != nil {
				return "", err
			}
			return info.ID, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(20 * time.Millisecond)
		default:
			return "", fmt.Errorf("create session: status %d: %s", status, body)
		}
	}
	return "", fmt.Errorf("create session: attempts exhausted")
}

// driveChaosUser runs one user's whole script and returns the session ID
// and its final history as the server reports it.
func driveChaosUser(baseURL string, u *model.Universe, userIdx int) (string, []schemaio.IterationDoc, error) {
	id, err := chaosCreate(baseURL, u, userIdx)
	if err != nil {
		return "", nil, err
	}

	var last *schemaio.SolutionDoc
	for k := 0; k < chaosIters; k++ {
		sol, ok, err := chaosSolve(baseURL+"/v1/sessions/"+id+"/solve", chaosScript(k, last))
		if err != nil {
			return id, nil, fmt.Errorf("user %d iteration %d: %w", userIdx, k, err)
		}
		if !ok {
			break // abandoned after retries; history stays a clean prefix
		}
		last = sol
	}

	resp, err := http.Get(baseURL + "/v1/sessions/" + id + "/history")
	if err != nil {
		return id, nil, err
	}
	defer resp.Body.Close()
	var hist struct {
		Iterations []schemaio.IterationDoc `json:"iterations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		return id, nil, err
	}
	return id, hist.Iterations, nil
}

// chaosHealth is the /healthz body as the reconciliation check reads it.
type chaosHealth struct {
	Status       string `json:"status"`
	Degraded     bool   `json:"degraded"`
	AuditDropped int64  `json:"auditLinesDropped"`
	WALErrors    int64  `json:"walAppendErrors"`
}

// chaosRun is one full run's observable outcome.
type chaosRun struct {
	sessions  []string                  // per user, the acknowledged session ID
	histories [][]schemaio.IterationDoc // per user
	metrics   *metricsDoc
	health    chaosHealth // /healthz as seen after drain, before shutdown
	audit     string
}

// runChaos starts a server (armed with inj when non-nil, durable when
// walDir is non-empty), drives the scripted users — concurrently for
// chaos pressure, sequentially for deterministic replay — then drains
// and returns every observable.
func runChaos(t *testing.T, u *model.Universe, inj *faultinject.Injector, workers int, concurrent bool, walDir string) chaosRun {
	t.Helper()
	var buf syncBuffer
	srv, err := Open(chaosConfig(inj, &buf, workers, walDir))
	if err != nil {
		t.Fatalf("opening chaos server: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())

	sessions := make([]string, chaosUsers)
	histories := make([][]schemaio.IterationDoc, chaosUsers)
	errs := make([]error, chaosUsers)
	if concurrent {
		var wg sync.WaitGroup
		for i := 0; i < chaosUsers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sessions[i], histories[i], errs[i] = driveChaosUser(ts.URL, u, i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < chaosUsers; i++ {
			sessions[i], histories[i], errs[i] = driveChaosUser(ts.URL, u, i)
		}
	}
	for i, err := range errs {
		if err != nil {
			t.Errorf("user %d: %v", i, err)
		}
	}

	// Degraded-mode reporting is part of the run's observable outcome,
	// and /healthz only answers while the server is up: fetch it after
	// the load drains but before shutdown.
	var health chaosHealth
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()
	return chaosRun{sessions: sessions, histories: histories, metrics: srv.metricsSnapshot(), health: health, audit: buf.String()}
}

// canonicalIterations renders a history with operational metadata
// removed: wall-clock timing and match-cache traffic are zeroed (a
// retried solve warms the session's cache, so cache counters — unlike
// everything else — legitimately differ from the fault-free reference).
func canonicalIterations(t *testing.T, docs []schemaio.IterationDoc) []byte {
	t.Helper()
	c := append([]schemaio.IterationDoc(nil), docs...)
	for i := range c {
		c[i].Solution.ElapsedNS = 0
		c[i].Solution.CacheHits = 0
		c[i].Solution.CacheMisses = 0
		c[i].Solution.CacheEvictions = 0
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// checkHistoryInvariants asserts invariants 1 and 2: each chaos history
// is a prefix of the reference and every surviving iteration is
// bit-identical to it.
func checkHistoryInvariants(t *testing.T, name string, plan faultinject.Plan, ref, got [][]schemaio.IterationDoc) {
	t.Helper()
	for i := range got {
		if len(got[i]) > len(ref[i]) {
			t.Errorf("user %d: chaos history has %d iterations, reference only %d\n%s",
				i, len(got[i]), len(ref[i]), replayBanner(name, plan))
			continue
		}
		want := canonicalIterations(t, ref[i][:len(got[i])])
		have := canonicalIterations(t, got[i])
		if !bytes.Equal(want, have) {
			t.Errorf("user %d: surviving history diverges from the fault-free reference\nreference %s\nsurvived  %s\n%s",
				i, want, have, replayBanner(name, plan))
		}
	}
}

// checkReconciliation asserts invariant 3 against the drained server's
// counters and audit log.
func checkReconciliation(t *testing.T, name string, plan faultinject.Plan, run chaosRun) {
	t.Helper()
	m := run.metrics
	terminal := m.Solves + m.SolveErrors + m.SolvesCancelled + m.SolvePanics + m.SolveTimeouts
	if m.SolvesAdmitted != terminal {
		t.Errorf("metrics do not reconcile: admitted %d != done %d + errors %d + cancelled %d + panics %d + timeouts %d\n%s",
			m.SolvesAdmitted, m.Solves, m.SolveErrors, m.SolvesCancelled, m.SolvePanics, m.SolveTimeouts,
			replayBanner(name, plan))
	}
	if m.QueueDepth != 0 || m.InFlight != 0 {
		t.Errorf("drained server still reports queueDepth %d, inFlight %d\n%s",
			m.QueueDepth, m.InFlight, replayBanner(name, plan))
	}

	counts := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSpace(run.audit), "\n") {
		if line == "" {
			continue
		}
		var e auditEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("audit line %q: %v", line, err)
		}
		counts[e.Action]++
	}
	enqueued := counts["solve.enqueue"]
	terminalLines := counts["solve.done"] + counts["solve.error"] + counts["solve.cancelled"] +
		counts["solve.panic"] + counts["solve.timeout"]
	if enqueued > m.SolvesAdmitted || terminalLines > m.SolvesAdmitted {
		t.Errorf("audit log records more solves than were admitted: enqueue %d, terminal %d, admitted %d\n%s",
			enqueued, terminalLines, m.SolvesAdmitted, replayBanner(name, plan))
	}
	deficit := (m.SolvesAdmitted - enqueued) + (m.SolvesAdmitted - terminalLines)
	if deficit > m.AuditDropped {
		t.Errorf("audit log is missing %d solve lines but only %d drops were counted\n%s",
			deficit, m.AuditDropped, replayBanner(name, plan))
	}

	// Degraded-mode reporting: /healthz must admit impairment exactly
	// when audit lines were dropped or durability commits were refused —
	// a silently lossy trail is the failure mode this pins down.
	refusals := int64(0)
	if m.WAL != nil {
		refusals = m.WAL.CommitRefusals
	}
	wantDegraded := m.AuditDropped > 0 || refusals > 0
	if run.health.Degraded != wantDegraded {
		t.Errorf("healthz reports degraded=%v with auditDropped=%d walCommitRefusals=%d\n%s",
			run.health.Degraded, m.AuditDropped, refusals, replayBanner(name, plan))
	}
	if run.health.AuditDropped != m.AuditDropped || run.health.WALErrors != refusals {
		t.Errorf("healthz counters (auditDropped=%d walErrors=%d) disagree with metrics (%d, %d)\n%s",
			run.health.AuditDropped, run.health.WALErrors, m.AuditDropped, refusals, replayBanner(name, plan))
	}
}

// chaosMetricsWant returns the exact injected-failure counts each plan
// must produce given the suite's load (chaosUsers×chaosIters solves plus
// their retries): it proves the plan actually fired, not just that the
// service survived.
func chaosMetricsWant(name string) map[string]int64 {
	switch name {
	case "worker-panic":
		return map[string]int64{"solvePanics": 2}
	case "worker-stall":
		return map[string]int64{"solveTimeouts": 1}
	case "queue-overflow":
		return map[string]int64{"queueRejections": 3}
	case "audit-write-error":
		return map[string]int64{"auditDropped": 5}
	case "cancel-midway":
		return map[string]int64{"solvesCancelled": 2}
	case "mixed":
		return map[string]int64{"solvePanics": 1, "queueRejections": 1}
	case "wal-write-error":
		return map[string]int64{"walCommitRefusals": 2}
	case "wal-fsync-stall":
		return map[string]int64{"walFsyncStalls": 2}
	case "recovery-truncated-tail":
		// Fires only at recovery time; TestChaosDurableRecovery asserts
		// its effect, the live run just proves the service shrugs it off.
		return nil
	default:
		return nil
	}
}

func metricByName(m *metricsDoc, name string) int64 {
	switch name {
	case "solvePanics":
		return m.SolvePanics
	case "solveTimeouts":
		return m.SolveTimeouts
	case "queueRejections":
		return m.QueueRejections
	case "auditDropped":
		return m.AuditDropped
	case "solvesCancelled":
		return m.SolvesCancelled
	case "walCommitRefusals":
		if m.WAL == nil {
			return -1
		}
		return m.WAL.CommitRefusals
	case "walFsyncStalls":
		if m.WAL == nil {
			return -1
		}
		return int64(m.WAL.FsyncStalls)
	default:
		return -1
	}
}

// TestChaosPlanFixtures pins the committed plan corpus: every fixture
// decodes and validates, and the ten required fault classes are all
// covered.
func TestChaosPlanFixtures(t *testing.T) {
	covered := map[faultinject.Point]bool{}
	for _, name := range chaosPlanNames(t) {
		plan := loadChaosPlan(t, name)
		for _, e := range plan.Entries {
			covered[e.Point] = true
		}
	}
	for _, p := range []faultinject.Point{
		faultinject.WorkerPanic,
		faultinject.WorkerStall,
		faultinject.QueueOverflow,
		faultinject.AuditWriteError,
		faultinject.SolveCancelMidway,
		faultinject.WALWriteError,
		faultinject.WALFsyncStall,
		faultinject.RecoveryTruncatedTail,
		faultinject.ChurnMidway,
		faultinject.ChurnConflict,
	} {
		if !covered[p] {
			t.Errorf("no committed chaos plan exercises %s", p)
		}
	}
}

// TestChaosSuite is the tentpole: N concurrent scripted users against an
// in-process server while each committed fault plan fires, holding the
// three chaos invariants.
func TestChaosSuite(t *testing.T) {
	u := testUniverse(t, 30)
	ref := runChaos(t, u, nil, 3, false, "")
	for i, h := range ref.histories {
		if len(h) != chaosIters {
			t.Fatalf("fault-free reference: user %d completed %d/%d iterations", i, len(h), chaosIters)
		}
	}

	for _, name := range chaosPlanNames(t) {
		t.Run(name, func(t *testing.T) {
			plan := loadChaosPlan(t, name)
			run := runChaos(t, u, faultinject.MustNew(plan), 3, true, chaosWALDir(t, plan))

			checkHistoryInvariants(t, name, plan, ref.histories, run.histories)
			checkReconciliation(t, name, plan, run)

			// The plans are sized so retries always succeed within the
			// attempt budget: every script must run to completion.
			for i, h := range run.histories {
				if len(h) != chaosIters {
					t.Errorf("user %d completed %d/%d iterations\n%s", i, len(h), chaosIters, replayBanner(name, plan))
				}
			}
			for metric, want := range chaosMetricsWant(name) {
				if got := metricByName(run.metrics, metric); got != want {
					t.Errorf("%s = %d, want exactly %d (plan did not fire as scheduled)\n%s",
						metric, got, want, replayBanner(name, plan))
				}
			}
		})
	}
}

// TestChaosReplayDeterminism is the replayability guarantee: the same
// seed + plan driven by the deterministic sequential driver produces
// byte-identical surviving histories across two independent server
// instances.
func TestChaosReplayDeterminism(t *testing.T) {
	u := testUniverse(t, 30)
	for _, name := range chaosPlanNames(t) {
		t.Run(name, func(t *testing.T) {
			plan := loadChaosPlan(t, name)
			first := runChaos(t, u, faultinject.MustNew(plan), 1, false, chaosWALDir(t, plan))
			second := runChaos(t, u, faultinject.MustNew(plan), 1, false, chaosWALDir(t, plan))
			for i := range first.histories {
				a := canonicalIterations(t, first.histories[i])
				b := canonicalIterations(t, second.histories[i])
				if !bytes.Equal(a, b) {
					t.Errorf("user %d: replay diverged\nfirst  %s\nsecond %s\n%s",
						i, a, b, replayBanner(name, plan))
				}
			}
		})
	}
}

// TestChaosDurableRecovery closes the durability loop for the WAL fault
// plans: after a chaos run against a durable server, a second Open on
// the same log — with the same plan re-armed — recovers every
// acknowledged history bit-identically (telemetry included, since solve
// records carry the observed values), less only the records an injected
// tail truncation deliberately dropped.
func TestChaosDurableRecovery(t *testing.T) {
	u := testUniverse(t, 30)
	for _, name := range chaosPlanNames(t) {
		plan := loadChaosPlan(t, name)
		if !planTouchesWAL(plan) {
			continue
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			run := runChaos(t, u, faultinject.MustNew(plan), 3, true, dir)

			srv, err := Open(Config{Workers: 1, QueueDepth: 4, WALDir: dir, WALFsync: true,
				FaultInjector: faultinject.MustNew(plan)})
			if err != nil {
				t.Fatalf("reopening durable server: %v\n%s", err, replayBanner(name, plan))
			}
			ts := httptest.NewServer(srv.Handler())
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					t.Errorf("shutdown: %v", err)
				}
				ts.Close()
			}()

			// recovery.truncated-tail entries may drop that many records
			// off the log's tail; every other plan must lose nothing.
			allowedDrop := 0
			for _, e := range plan.Entries {
				if e.Point == faultinject.RecoveryTruncatedTail {
					allowedDrop += int(e.Arg)
				}
			}
			if got := srv.recovered.DroppedRecords; got > allowedDrop {
				t.Errorf("recovery dropped %d records, plan allows at most %d\n%s",
					got, allowedDrop, replayBanner(name, plan))
			}

			liveTotal, recoveredTotal := 0, 0
			for i, id := range run.sessions {
				want := run.histories[i]
				liveTotal += len(want)
				resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/history")
				if err != nil {
					t.Fatal(err)
				}
				var hist struct {
					Iterations []schemaio.IterationDoc `json:"iterations"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
					resp.Body.Close()
					t.Fatalf("user %d history after recovery: %v", i, err)
				}
				resp.Body.Close()
				got := hist.Iterations
				recoveredTotal += len(got)
				if len(got) > len(want) {
					t.Errorf("user %d: recovery has %d iterations, live run acknowledged %d\n%s",
						i, len(got), len(want), replayBanner(name, plan))
					continue
				}
				a, err := json.Marshal(want[:len(got)])
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Errorf("user %d: recovered history diverges from the live run\nlive      %s\nrecovered %s\n%s",
						i, a, b, replayBanner(name, plan))
				}
			}
			if liveTotal-recoveredTotal != srv.recovered.DroppedRecords {
				t.Errorf("recovery is missing %d acknowledged iterations but reports %d dropped records\n%s",
					liveTotal-recoveredTotal, srv.recovered.DroppedRecords, replayBanner(name, plan))
			}
		})
	}
}

// TestJanitorForcedSweep covers the janitor.evict point: a forced sweep
// evicts idle sessions immediately, but never a session with queued or
// running work.
func TestJanitorForcedSweep(t *testing.T) {
	u := testUniverse(t, 30)
	inj := faultinject.MustNew(faultinject.Plan{
		Seed: 7,
		Entries: []faultinject.Entry{
			{Point: faultinject.JanitorEvict, Trigger: 1, Action: "evict", Repeat: 1 << 20},
		},
	})
	// TTL 10s → sweeps every 2.5s; the forced sweep evicts idle sessions
	// seconds before their TTL could.
	srv, ts := newTestServer(t, Config{SessionTTL: 10 * time.Second, FaultInjector: inj})

	// A busy session survives every forced sweep while its solve runs.
	doc := testProblemDoc()
	doc.MaxEvals = 200000
	busy := createSession(t, ts.URL, u, doc)
	busyDone := make(chan struct{})
	go func() {
		defer close(busyDone)
		status, body, err := chaosPost(ts.URL+"/v1/sessions/"+busy+"/solve", solveRequest{})
		if err != nil || status != http.StatusOK {
			t.Errorf("busy solve: status %d err %v: %s", status, err, body)
		}
	}()
	waitFor(t, 10*time.Second, func() bool { return srv.metrics.inFlight.Load() == 1 })

	// An idle session is swept long before its one-hour TTL.
	idle := createSession(t, ts.URL, u, testProblemDoc())
	waitFor(t, 20*time.Second, func() bool { return srv.metrics.sessionsEvicted.Load() >= 1 })
	if resp := getJSON(t, ts.URL+"/v1/sessions/"+idle, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("idle session survived a forced sweep: %d", resp.StatusCode)
	}
	if srv.metrics.inFlight.Load() == 1 {
		s, ok := srv.lookupSession(busy)
		if !ok || s == nil {
			t.Error("busy session was evicted mid-solve")
		}
	}
	<-busyDone
}

// TestSSESlowClientDrop covers the sse.slow-client point at the hub
// level: the scheduled frame is dropped, later frames still arrive, and
// nothing blocks.
func TestSSESlowClientDrop(t *testing.T) {
	inj := faultinject.MustNew(faultinject.Plan{
		Seed: 8,
		Entries: []faultinject.Entry{
			{Point: faultinject.SSESlowClient, Trigger: 1, Action: "drop"},
		},
	})
	h := newHub(inj)
	ch, ok := h.subscribe()
	if !ok {
		t.Fatal("subscribe on fresh hub failed")
	}
	h.publish("queued", map[string]int{"position": 1}) // dropped by the fault
	h.publish("start", map[string]int{"iteration": 0})
	select {
	case frame := <-ch:
		if !bytes.Contains(frame, []byte("event: start")) {
			t.Errorf("first delivered frame is %q; the queued frame should have been dropped", frame)
		}
	default:
		t.Fatal("no frame delivered after the dropped one")
	}
	if n := inj.FiredCount(faultinject.SSESlowClient); n != 1 {
		t.Errorf("sse.slow-client fired %d times; want 1", n)
	}
	h.close()
}
