package server

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"ube/internal/schemaio"
)

// getTrace fetches a session's trace endpoint and returns the response
// plus the raw body.
func getTrace(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestTraceEndpoint(t *testing.T) {
	u := testUniverse(t, 30)
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, u, testProblemDoc())

	// Before any solve: nothing retained.
	if resp, _ := getTrace(t, ts.URL+"/v1/sessions/"+id+"/trace"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace before solve: %d, want 404", resp.StatusCode)
	}

	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{}); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, resp.StatusCode, body)
		}
	}

	// Latest trace: a valid JSONL stream with the solve root span and
	// the second iteration's label.
	resp, body := getTrace(t, ts.URL+"/v1/sessions/"+id+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("trace content type %q", ct)
	}
	tr, err := schemaio.DecodeTrace(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("trace body does not decode: %v", err)
	}
	if len(tr.Spans) == 0 || tr.Spans[0].Name != "solve" {
		t.Fatalf("trace has no solve root span: %+v", tr.Spans)
	}
	if want := id + " iter 1"; tr.Label != want {
		t.Errorf("trace label %q, want %q", tr.Label, want)
	}
	if totals := tr.Totals(); totals.Map()["search.evals"] == 0 {
		t.Error("trace counted no evaluations")
	}

	// ?iter selects a retained iteration; out-of-ring iterations 404,
	// malformed ones 400.
	resp, body = getTrace(t, ts.URL+"/v1/sessions/"+id+"/trace?iter=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace iter=0: %d %s", resp.StatusCode, body)
	}
	if tr, err = schemaio.DecodeTrace(bytes.NewReader(body)); err != nil || tr.Label != id+" iter 0" {
		t.Errorf("trace iter=0 label %q err %v", tr.Label, err)
	}
	if resp, _ = getTrace(t, ts.URL+"/v1/sessions/"+id+"/trace?iter=7"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace iter=7: %d, want 404", resp.StatusCode)
	}
	if resp, _ = getTrace(t, ts.URL+"/v1/sessions/"+id+"/trace?iter=x"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trace iter=x: %d, want 400", resp.StatusCode)
	}
	if resp, _ = getTrace(t, ts.URL+"/v1/sessions/nope/trace"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of missing session: %d, want 404", resp.StatusCode)
	}

	// Captured traces show up in /metrics.
	var m metricsDoc
	if resp := getJSON(t, ts.URL+"/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if m.TracesCaptured != 2 {
		t.Errorf("tracesCaptured = %d, want 2", m.TracesCaptured)
	}
}

// TestTraceRingEviction solves past the ring size and checks only the
// last traceRingSize iterations are retained.
func TestTraceRingEviction(t *testing.T) {
	u := testUniverse(t, 20)
	_, ts := newTestServer(t, Config{})
	p := testProblemDoc()
	id := createSession(t, ts.URL, u, p)

	total := traceRingSize + 3
	for i := 0; i < total; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{}); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, resp.StatusCode, body)
		}
	}
	// The oldest iterations aged out; the newest are retained.
	if resp, _ := getTrace(t, ts.URL+"/v1/sessions/"+id+"/trace?iter=0"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted iteration still served: %d", resp.StatusCode)
	}
	for k := total - traceRingSize; k < total; k++ {
		url := ts.URL + "/v1/sessions/" + id + "/trace?iter=" + itoa(k)
		if resp, body := getTrace(t, url); resp.StatusCode != http.StatusOK {
			t.Errorf("retained iteration %d: %d %s", k, resp.StatusCode, body)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestTraceSampling pins the sampling policy arithmetic: shallow queues
// trace every solve; deep queues thin to every Nth.
func TestTraceSampling(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, TraceSampleEvery: 4})
	defer func() {
		if err := srv.Shutdown(t.Context()); err != nil {
			t.Error(err)
		}
	}()
	// Shallow queue: always trace.
	if !srv.shouldTrace() {
		t.Error("shallow queue not traced")
	}
	// Deep queue: every 4th tick.
	srv.metrics.queueDepth.Store(5)
	traced := 0
	for i := 0; i < 8; i++ {
		if srv.shouldTrace() {
			traced++
		}
	}
	if traced != 2 {
		t.Errorf("deep queue traced %d of 8, want 2", traced)
	}
}
