package server

import (
	"net/http"
	"strconv"

	"ube/internal/schemaio"
	"ube/internal/trace"
)

// Per-session solve tracing.
//
// Every solve can carry a span tracer (see internal/trace); the finished
// trace is kept in a small per-session ring and served as JSONL by
// GET /v1/sessions/{id}/trace. Tracing is a pure side channel — the
// engine guarantees traced and untraced solves produce identical
// results — so the only operational question is overhead under load,
// which the sampling policy answers: while the admission queue is
// shallow (depth ≤ worker pool) every solve is traced; once a backlog
// forms only every TraceSampleEvery-th solve is, so tracing cost cannot
// compound the backlog.

// traceRingSize bounds the per-session trace ring: the last
// traceRingSize captured traces (by iteration) are retained.
const traceRingSize = 8

// storedTrace is one captured solve trace; the Trace is immutable after
// Finish, so handlers may encode it outside the session lock.
type storedTrace struct {
	iteration int
	trace     *trace.Trace
}

// shouldTrace applies the sampling policy for one about-to-run solve.
func (s *Server) shouldTrace() bool {
	if int(s.metrics.queueDepth.Load()) <= s.cfg.Workers {
		return true
	}
	return s.metrics.traceTick.Add(1)%int64(s.cfg.TraceSampleEvery) == 0
}

// storeTrace appends a finished trace to the session's ring. Worker
// context, but the ring is handler-visible, hence the lock.
func (sn *session) storeTrace(iteration int, tr *trace.Trace) {
	if tr == nil {
		return
	}
	sn.mu.Lock()
	sn.traces = append(sn.traces, storedTrace{iteration: iteration, trace: tr})
	if len(sn.traces) > traceRingSize {
		n := copy(sn.traces, sn.traces[len(sn.traces)-traceRingSize:])
		for i := n; i < len(sn.traces); i++ {
			sn.traces[i] = storedTrace{} // release the evicted trace
		}
		sn.traces = sn.traces[:n]
	}
	sn.mu.Unlock()
}

// handleTrace serves a captured solve trace as JSONL (the schemaio trace
// codec): the most recent one by default, or ?iter=k for a specific
// retained iteration. 404 when nothing (or not that iteration) is
// retained — either the session hasn't solved, the iteration aged out of
// the ring, or the solve was sampled out under load.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	want := -1
	if v := r.URL.Query().Get("iter"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 0 {
			writeError(w, http.StatusBadRequest, "bad iteration %q", v)
			return
		}
		want = k
	}
	var tr *trace.Trace
	sn.mu.Lock()
	if want < 0 {
		if n := len(sn.traces); n > 0 {
			tr = sn.traces[n-1].trace
		}
	} else {
		for i := range sn.traces {
			if sn.traces[i].iteration == want {
				tr = sn.traces[i].trace
				break
			}
		}
	}
	sn.mu.Unlock()
	if tr == nil {
		writeError(w, http.StatusNotFound, "no trace retained (ring keeps the last %d traced solves)", traceRingSize)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = schemaio.EncodeTrace(w, tr)
}
