package server

// The deterministic cross-session solve memo (DESIGN.md §15).
//
// A solve is a pure function of (universe, solver input): the engine
// draws every random number from the problem's seed, and the warm-start
// InitialSources are part of the input snapshot (engine.Session.
// SolveInput). Two sessions — on one shard or many — that reach the
// same (universe fingerprint, canonical solver-input document) are
// therefore guaranteed the same solution bit for bit. The memo exploits
// that: scripted or templated workloads (load drivers, batch re-runs,
// classrooms of users exploring the same dataset) pay each distinct
// solve once per shard instead of once per session.
//
// Exactness is inherited, not approximated: the key is the canonical
// JSON of the exact problem document the engine would solve plus a
// SHA-256 of the session's universe document, and the value is the
// canonical binary solution frame, decoded freshly per hit so sessions
// never share mutable state. Operational telemetry (wall-clock time,
// match-cache counters) is zeroed in stored frames — a hit costs no
// engine work, and replay comparisons already canonicalize those fields
// away. The memo is off by default (Config.SolveCacheSize = 0) and
// invisible to WAL recovery, which always re-solves through the engine.

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"ube/internal/model"
)

// solveCache is a mutex-guarded LRU from solver-input key to canonical
// binary solution frame. Entry-count bounded: solution frames for
// realistic universes are a few KiB, so a few thousand entries is a few
// MiB.
type solveCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type solveCacheEntry struct {
	key   string
	frame []byte
}

func newSolveCache(capacity int) *solveCache {
	return &solveCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// get returns the stored frame and refreshes its recency.
func (c *solveCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*solveCacheEntry).frame, true
}

// put stores a frame, evicting the least-recently-used entry past
// capacity. Reports whether an eviction happened.
func (c *solveCache) put(key string, frame []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*solveCacheEntry).frame = frame
		c.order.MoveToFront(el)
		return false
	}
	c.entries[key] = c.order.PushFront(&solveCacheEntry{key: key, frame: frame})
	if c.order.Len() <= c.cap {
		return false
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	delete(c.entries, oldest.Value.(*solveCacheEntry).key)
	return true
}

// len reports the live entry count.
func (c *solveCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// universeFingerprint hashes a universe's canonical JSON document.
// encoding/json is deterministic for a fixed Go value (struct fields in
// declaration order, map keys sorted), so equal universes — including
// one universe sent to several shards — always hash equal.
func universeFingerprint(u *model.Universe) (string, error) {
	raw, err := json.Marshal(u)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}
