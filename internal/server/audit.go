package server

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ube/internal/faultinject"
)

// auditLog is the append-only JSONL record of every session mutation:
// one JSON object per line, in commit order, answering who did what to
// which session and when. The log is an operational artifact, not an
// input: nothing in the engine ever reads it, so the wall-clock
// timestamps here cannot leak into solve results.
type auditLog struct {
	mu  sync.Mutex
	enc *json.Encoder
	w   io.Writer

	// inj injects write errors (the audit.write-error point); dropped
	// counts the lines lost to them so /metrics↔audit reconciliation
	// remains checkable even under injected sink failures.
	inj     *faultinject.Injector
	dropped *atomic.Int64
}

// auditEntry is one audit line.
type auditEntry struct {
	// TS is the wall-clock commit time, RFC3339Nano.
	TS string `json:"ts"`
	// Session is the session ID, "" for server-scoped events.
	Session string `json:"session,omitempty"`
	// Action names the mutation: session.create, session.delete,
	// session.evict, solve.enqueue, solve.reject, solve.apply,
	// solve.done, solve.error, solve.cancelled, solve.timeout,
	// solve.panic, server.drain.
	Action string `json:"action"`
	// Remote is the client address that caused the mutation, "" for
	// server-initiated events (eviction, drain).
	Remote string `json:"remote,omitempty"`
	// Detail carries action-specific fields.
	Detail any `json:"detail,omitempty"`
}

// newAuditLog wraps a sink; a nil writer disables auditing.
func newAuditLog(w io.Writer) *auditLog {
	if w == nil {
		return nil
	}
	return &auditLog{enc: json.NewEncoder(w), w: w}
}

// arm threads the fault injector and the dropped-lines counter into the
// log. Nil receivers no-op (no sink means no lines to drop).
func (a *auditLog) arm(inj *faultinject.Injector, dropped *atomic.Int64) {
	if a == nil {
		return
	}
	a.inj = inj
	a.dropped = dropped
}

// record appends one entry. Safe for concurrent use; nil receivers
// no-op so call sites need no guards.
func (a *auditLog) record(session, action, remote string, detail any) {
	if a == nil {
		return
	}
	if a.inj.Fire(faultinject.AuditWriteError) != nil {
		// Injected sink failure: the line is lost, as it would be to a
		// full disk, but the loss itself is counted.
		if a.dropped != nil {
			a.dropped.Add(1)
		}
		return
	}
	//ube:nondeterministic-ok audit timestamps record when a mutation was committed; they are write-only operational metadata
	ts := time.Now().UTC().Format(time.RFC3339Nano)
	a.mu.Lock()
	defer a.mu.Unlock()
	// Encode errors (a full disk, a closed pipe) must not take the
	// service down; the audit log is best-effort by design.
	_ = a.enc.Encode(auditEntry{TS: ts, Session: session, Action: action, Remote: remote, Detail: detail})
}
