package server

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ube/internal/auditlog"
	"ube/internal/faultinject"
)

// auditLog is the append-only JSONL record of every session mutation:
// one JSON object per line, in commit order, answering who did what to
// which session and when. The log is an operational artifact, not an
// input: nothing in the engine ever reads it, so the wall-clock
// timestamps here cannot leak into solve results.
//
// Alongside the plain sink the log can mirror every line into a
// tamper-evident hash chain (internal/auditlog); the chain embeds the
// same bytes, so either file answers the same questions and ube-audit
// verifies the chained one.
type auditLog struct {
	mu    sync.Mutex
	w     io.Writer
	chain *auditlog.Writer

	// inj injects write errors (the audit.write-error point); dropped
	// counts the lines lost to them — or to real sink failures — so
	// /metrics↔audit reconciliation remains checkable and /healthz can
	// report the degraded sink instead of hiding it.
	inj     *faultinject.Injector
	dropped *atomic.Int64
}

// auditEntry is one audit line.
type auditEntry struct {
	// TS is the wall-clock commit time, RFC3339Nano.
	//ube:operational audit timestamps are write-only operational metadata, never replayed
	TS string `json:"ts"`
	// Session is the session ID, "" for server-scoped events.
	Session string `json:"session,omitempty"`
	// Action names the mutation: session.create, session.delete,
	// session.evict, solve.enqueue, solve.reject, solve.apply,
	// solve.done, solve.error, solve.cancelled, solve.timeout,
	// solve.panic, server.drain, server.recover.
	Action string `json:"action"`
	// Remote is the client address that caused the mutation, "" for
	// server-initiated events (eviction, drain, recovery).
	Remote string `json:"remote,omitempty"`
	// Detail carries action-specific fields.
	Detail any `json:"detail,omitempty"`
}

// newAuditLog wraps the sinks; nil for both disables auditing.
func newAuditLog(w io.Writer, chain *auditlog.Writer) *auditLog {
	if w == nil && chain == nil {
		return nil
	}
	return &auditLog{w: w, chain: chain}
}

// arm threads the fault injector and the dropped-lines counter into the
// log. Nil receivers no-op (no sink means no lines to drop).
func (a *auditLog) arm(inj *faultinject.Injector, dropped *atomic.Int64) {
	if a == nil {
		return
	}
	a.inj = inj
	a.dropped = dropped
}

// record appends one entry. Safe for concurrent use; nil receivers
// no-op so call sites need no guards.
//
// A failed write (injected or real: a full disk, a closed pipe) must
// not take the service down — the audit trail is an operational
// artifact — but it must not vanish either: every lost line is counted
// so /healthz reports the sink as degraded and chaos reconciliation can
// assert on exactly how many lines were lost.
func (a *auditLog) record(session, action, remote string, detail any) {
	if a == nil {
		return
	}
	if a.inj.Fire(faultinject.AuditWriteError) != nil {
		// Injected sink failure: the line is lost, as it would be to a
		// full disk, but the loss itself is counted.
		a.drop()
		return
	}
	//ube:nondeterministic-ok audit timestamps record when a mutation was committed; they are write-only operational metadata
	ts := time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(auditEntry{TS: ts, Session: session, Action: action, Remote: remote, Detail: detail})
	if err != nil {
		a.drop()
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	failed := false
	if a.w != nil {
		if _, err := a.w.Write(append(line, '\n')); err != nil {
			failed = true
		}
	}
	if a.chain != nil {
		if err := a.chain.Append(line); err != nil {
			failed = true
		}
	}
	if failed {
		a.drop()
	}
}

// drop counts one lost line.
func (a *auditLog) drop() {
	if a.dropped != nil {
		a.dropped.Add(1)
	}
}

// seal closes the chain's current partial Merkle batch, if a chain is
// configured — called at shutdown so a cleanly stopped chain is sealed
// end to end.
func (a *auditLog) seal() {
	if a == nil || a.chain == nil {
		return
	}
	if err := a.chain.Seal(); err != nil {
		a.drop()
	}
}
