package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"ube/internal/schemaio"
)

// The server-side building blocks of sharded serving: client-supplied
// session IDs (the router places sessions under keys it hashed),
// binary content negotiation on the hot paths, and the deterministic
// cross-session solve memo.

func TestClientSuppliedSessionIDs(t *testing.T) {
	u := testUniverse(t, 25)
	_, ts := newTestServer(t, Config{})

	// A valid custom ID is honored verbatim.
	resp, body := postJSON(t, ts.URL+"/v1/sessions", createSessionRequest{Universe: u, Problem: testProblemDoc(), ID: "g17"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("custom-ID create: %d %s", resp.StatusCode, body)
	}
	var info sessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "g17" {
		t.Fatalf("created session ID %q, want g17", info.ID)
	}
	if resp := getJSON(t, ts.URL+"/v1/sessions/g17", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET custom-ID session: %d", resp.StatusCode)
	}

	// Duplicates conflict.
	resp, _ = postJSON(t, ts.URL+"/v1/sessions", createSessionRequest{Universe: u, Problem: testProblemDoc(), ID: "g17"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate custom ID: %d, want 409", resp.StatusCode)
	}

	// Server-minted IDs are unaffected and still interleave fine.
	minted := createSession(t, ts.URL, u, testProblemDoc())
	if minted == "g17" {
		t.Error("minted ID collided with the custom one")
	}

	// Invalid and reserved IDs are rejected up front.
	for _, bad := range []string{"has space", "slash/у", "s12", "s0", "", string(make([]byte, 65))} {
		resp, _ := postJSON(t, ts.URL+"/v1/sessions", createSessionRequest{Universe: u, Problem: testProblemDoc(), ID: bad})
		if bad == "" {
			// Empty means "mint one": must succeed.
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("empty ID: %d, want 201", resp.StatusCode)
			}
			continue
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("ID %q: %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestCustomIDSurvivesRecovery proves a router-placed session recovers
// under its custom key and the mint counter stays clear of it.
func TestCustomIDSurvivesRecovery(t *testing.T) {
	u := testUniverse(t, 25)
	dir := t.TempDir()

	_, ts, stop := openDurableServer(t, Config{WALDir: dir})
	resp, body := postJSON(t, ts.URL+"/v1/sessions", createSessionRequest{Universe: u, Problem: testProblemDoc(), ID: "ring-42"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	if resp, body = postJSON(t, ts.URL+"/v1/sessions/ring-42/solve", solveRequest{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	var before historyDoc
	getJSON(t, ts.URL+"/v1/sessions/ring-42/history", &before)
	stop()

	_, ts2, _ := openDurableServer(t, Config{WALDir: dir})
	var after historyDoc
	if resp := getJSON(t, ts2.URL+"/v1/sessions/ring-42/history", &after); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered history: %d", resp.StatusCode)
	}
	if len(after.Iterations) != len(before.Iterations) {
		t.Fatalf("recovered %d iterations, want %d", len(after.Iterations), len(before.Iterations))
	}
	// A fresh minted session must not collide with anything.
	id := createSession(t, ts2.URL, u, testProblemDoc())
	if id == "ring-42" {
		t.Error("mint counter collided with the custom ID")
	}
}

type historyDoc struct {
	Iterations []schemaio.IterationDoc `json:"iterations"`
}

func TestBinaryContentNegotiation(t *testing.T) {
	u := testUniverse(t, 25)
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, u, testProblemDoc())

	// Binary solve response: same doc as the JSON reference.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+id+"/solve", bytes.NewReader([]byte("{}")))
	req.Header.Set("Accept", schemaio.BinaryContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary solve: %d %s", resp.StatusCode, frame)
	}
	if ct := resp.Header.Get("Content-Type"); ct != schemaio.BinaryContentType {
		t.Fatalf("binary solve content type %q", ct)
	}
	sr, err := schemaio.DecodeBinarySolveResult(frame)
	if err != nil {
		t.Fatalf("decoding binary solve result: %v", err)
	}
	if sr.Session != id || sr.Iteration != 0 {
		t.Errorf("binary solve result (%q, %d), want (%q, 0)", sr.Session, sr.Iteration, id)
	}

	// Binary history matches the JSON history doc for doc.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/sessions/"+id+"/history", nil)
	req.Header.Set("Accept", schemaio.BinaryContentType)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	binHist, err := schemaio.DecodeBinaryHistory(frame)
	if err != nil {
		t.Fatalf("decoding binary history: %v", err)
	}
	var jsonHist historyDoc
	getJSON(t, ts.URL+"/v1/sessions/"+id+"/history", &jsonHist)
	if len(binHist) != len(jsonHist.Iterations) {
		t.Fatalf("binary history has %d iterations, JSON %d", len(binHist), len(jsonHist.Iterations))
	}
	if !reflect.DeepEqual(binHist[0].Solution.Sources, jsonHist.Iterations[0].Solution.Sources) {
		t.Error("binary and JSON histories disagree on sources")
	}
	if binHist[0].Solution.Quality != jsonHist.Iterations[0].Solution.Quality {
		t.Error("binary and JSON histories disagree on quality")
	}

	// No Accept header: JSON stays the default.
	resp = getJSON(t, ts.URL+"/v1/sessions/"+id+"/history", nil)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default history content type %q", ct)
	}
}

// TestSolveMemoIsExact drives two sessions through the same scripted
// iterations on a memo-enabled server and a third on a memo-free one:
// all three histories must agree on every solver-visible field, and the
// memo must actually serve the repeats.
func TestSolveMemoIsExact(t *testing.T) {
	u := testUniverse(t, 25)
	srvMemo, tsMemo := newTestServer(t, Config{SolveCacheSize: 64})
	_, tsPlain := newTestServer(t, Config{})

	script := func(base string) []schemaio.IterationDoc {
		id := createSession(t, base, u, testProblemDoc())
		for k := 0; k < 3; k++ {
			var req solveRequest
			if k == 2 {
				th := 0.75
				req.Theta = &th
			}
			resp, body := postJSON(t, base+"/v1/sessions/"+id+"/solve", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("solve %d: %d %s", k, resp.StatusCode, body)
			}
		}
		var h historyDoc
		getJSON(t, base+"/v1/sessions/"+id+"/history", &h)
		return h.Iterations
	}

	a := script(tsMemo.URL)  // fills the memo
	b := script(tsMemo.URL)  // must be served from it
	c := script(tsPlain.URL) // the uncached reference

	for _, pair := range []struct {
		name string
		x, y []schemaio.IterationDoc
	}{{"memo-vs-memo", a, b}, {"memo-vs-plain", a, c}} {
		if len(pair.x) != len(pair.y) {
			t.Fatalf("%s: %d vs %d iterations", pair.name, len(pair.x), len(pair.y))
		}
		for i := range pair.x {
			x, y := canonicalIteration(pair.x[i]), canonicalIteration(pair.y[i])
			if !reflect.DeepEqual(x, y) {
				t.Errorf("%s: iteration %d diverged:\n%+v\n%+v", pair.name, i, x, y)
			}
		}
	}

	m := srvMemo.Metrics().(*metricsDoc)
	if m.SolveCacheMisses != 3 {
		t.Errorf("solve cache misses = %d, want 3 (one per distinct input)", m.SolveCacheMisses)
	}
	if m.SolveCacheHits != 3 {
		t.Errorf("solve cache hits = %d, want 3 (the whole second run)", m.SolveCacheHits)
	}
}

// canonicalIteration zeroes the operational telemetry that legitimately
// differs between bit-identical solves, mirroring the chaos suite.
func canonicalIteration(it schemaio.IterationDoc) schemaio.IterationDoc {
	it.Solution.ElapsedNS = 0
	it.Solution.CacheHits, it.Solution.CacheMisses, it.Solution.CacheEvictions = 0, 0, 0
	return it
}

func TestSolveCacheLRUBound(t *testing.T) {
	c := newSolveCache(2)
	c.put("a", []byte{1})
	c.put("b", []byte{2})
	if evicted := c.put("c", []byte{3}); !evicted {
		t.Error("third insert into cap-2 cache did not evict")
	}
	if _, ok := c.get("a"); ok {
		t.Error("LRU victim still present")
	}
	if f, ok := c.get("b"); !ok || f[0] != 2 {
		t.Error("survivor missing")
	}
	// Refreshing recency protects an entry.
	c.get("b")
	c.put("d", []byte{4})
	if _, ok := c.get("b"); !ok {
		t.Error("recently used entry evicted")
	}
	if c.len() != 2 {
		t.Errorf("cache len %d, want 2", c.len())
	}
}
