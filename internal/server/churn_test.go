package server

// Tests for the PATCH /v1/sessions/{id}/universe (churn) endpoint: the
// live request paths, durability (WAL replay and snapshot restore must
// reproduce churned sessions bit-identically — including the warm-start
// flag, checked differentially against a never-restarted control), and
// the churn chaos plans (churn.midway, churn.conflict) under which the
// surviving state must match a fault-free reference exactly.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ube/internal/faultinject"
	"ube/internal/model"
	"ube/internal/schemaio"
)

// patchJSON issues a PATCH with a JSON body.
func patchJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// churnWith applies one churn batch, failing the test on any non-200.
func churnWith(t *testing.T, baseURL, id string, muts []model.Mutation) churnResponse {
	t.Helper()
	resp, body := patchJSON(t, baseURL+"/v1/sessions/"+id+"/universe", schemaio.ChurnRequestDoc{Mutations: muts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("churn: %d %s", resp.StatusCode, body)
	}
	var cr churnResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

// addMutation builds an OpAdd for a blind (signature-free) source.
func addMutation(name string, attrs []string, card int64) model.Mutation {
	return model.Mutation{Op: model.OpAdd, Source: model.Source{
		Name:        name,
		Attributes:  attrs,
		Cardinality: card,
	}}
}

// canonicalSolution renders a solution with operational metadata
// zeroed, mirroring canonicalIterations: wall-clock timing and
// match-cache traffic legitimately differ between a warm live session
// and a cold recovered one, everything else must not.
func canonicalSolution(t *testing.T, doc *schemaio.SolutionDoc) []byte {
	t.Helper()
	if doc == nil {
		t.Fatal("solve response carries no solution doc")
	}
	c := *doc
	c.ElapsedNS = 0
	c.CacheHits = 0
	c.CacheMisses = 0
	c.CacheEvictions = 0
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestChurnEndpointLifecycle(t *testing.T) {
	u := testUniverse(t, 20)
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, u, testProblemDoc())
	solveWith(t, ts.URL, id, solveRequest{})

	card := int64(5000)
	cr := churnWith(t, ts.URL, id, []model.Mutation{
		addMutation("churn-one", []string{"title", "author", "fresh_attr"}, 4000),
		{Op: model.OpRemove, ID: 3},
		{Op: model.OpUpdate, ID: 0, Cardinality: &card},
	})
	if cr.Batch != 1 || cr.Sources != 20 {
		t.Fatalf("churn response %+v; want batch 1, 20 sources", cr)
	}
	if len(cr.Removed) != 1 || cr.Removed[0] != 3 {
		t.Fatalf("churn removed %v; want [3]", cr.Removed)
	}

	var info sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+id, &info)
	if info.Sources != 20 {
		t.Fatalf("session info reports %d sources after churn; want 20", info.Sources)
	}

	// The session keeps solving over the mutated universe, and a second
	// batch gets the next ordinal.
	sr := solveWith(t, ts.URL, id, solveRequest{})
	if sr.Iteration != 1 {
		t.Fatalf("post-churn solve is iteration %d; want 1 (0-based)", sr.Iteration)
	}
	cr = churnWith(t, ts.URL, id, []model.Mutation{
		{Op: model.OpUpdate, ID: 1, Characteristics: map[string]float64{"mttf": 123}},
	})
	if cr.Batch != 2 || len(cr.Removed) != 0 {
		t.Fatalf("second churn response %+v; want batch 2, nothing removed", cr)
	}
	solveWith(t, ts.URL, id, solveRequest{})

	var m metricsDoc
	getJSON(t, ts.URL+"/metrics", &m)
	if m.ChurnsAdmitted != 2 || m.Churns != 2 || m.ChurnErrors != 0 || m.ChurnConflicts != 0 {
		t.Fatalf("churn metrics admitted=%d churns=%d errors=%d conflicts=%d; want 2/2/0/0",
			m.ChurnsAdmitted, m.Churns, m.ChurnErrors, m.ChurnConflicts)
	}
}

func TestChurnPinnedSourceConflict(t *testing.T) {
	u := testUniverse(t, 20)
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, u, testProblemDoc())
	solveWith(t, ts.URL, id, solveRequest{PinSources: []int{2}})

	resp, body := patchJSON(t, ts.URL+"/v1/sessions/"+id+"/universe",
		schemaio.ChurnRequestDoc{Mutations: []model.Mutation{{Op: model.OpRemove, ID: 2}}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("removing a pinned source: %d %s; want 409", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "pinned") {
		t.Fatalf("409 body does not name the pin: %s", body)
	}
	// Refused wholesale: the universe is untouched.
	var info sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+id, &info)
	if info.Sources != 20 {
		t.Fatalf("refused churn changed the universe: %d sources", info.Sources)
	}
	var m metricsDoc
	getJSON(t, ts.URL+"/metrics", &m)
	if m.ChurnConflicts != 1 || m.Churns != 0 {
		t.Fatalf("conflict metrics churns=%d conflicts=%d; want 0/1", m.Churns, m.ChurnConflicts)
	}

	// Unpinning clears the refusal.
	solveWith(t, ts.URL, id, solveRequest{DropSourcePins: []int{2}})
	cr := churnWith(t, ts.URL, id, []model.Mutation{{Op: model.OpRemove, ID: 2}})
	if cr.Sources != 19 || len(cr.Removed) != 1 || cr.Removed[0] != 2 {
		t.Fatalf("post-unpin churn response %+v", cr)
	}
}

func TestChurnRejectsBadRequests(t *testing.T) {
	u := testUniverse(t, 20)
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, u, testProblemDoc())

	// Decode-level refusals (never admitted, so never counted).
	for _, tc := range []struct {
		name string
		body any
	}{
		{"unknown op", map[string]any{"mutations": []map[string]any{{"op": "rename", "id": 1}}}},
		{"empty batch", map[string]any{"mutations": []map[string]any{}}},
		{"add without schema", map[string]any{"mutations": []map[string]any{{"op": "add", "source": map[string]any{"name": "x"}}}}},
		{"update changing nothing", map[string]any{"mutations": []map[string]any{{"op": "update", "id": 1}}}},
	} {
		resp, body := patchJSON(t, ts.URL+"/v1/sessions/"+id+"/universe", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s; want 400", tc.name, resp.StatusCode, body)
		}
	}

	// Engine-level refusal: structurally valid, semantically out of range.
	resp, body := patchJSON(t, ts.URL+"/v1/sessions/"+id+"/universe",
		schemaio.ChurnRequestDoc{Mutations: []model.Mutation{{Op: model.OpRemove, ID: 500}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range remove: %d %s; want 400", resp.StatusCode, body)
	}
	var m metricsDoc
	getJSON(t, ts.URL+"/metrics", &m)
	if m.ChurnsAdmitted != 1 || m.ChurnErrors != 1 {
		t.Fatalf("admitted=%d errors=%d; want 1/1 (decode failures are pre-admission)",
			m.ChurnsAdmitted, m.ChurnErrors)
	}

	// Unknown session.
	resp, _ = patchJSON(t, ts.URL+"/v1/sessions/s999999/universe",
		schemaio.ChurnRequestDoc{Mutations: []model.Mutation{{Op: model.OpRemove, ID: 0}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("churn on unknown session: %d; want 404", resp.StatusCode)
	}
}

// churnScriptStep posts one scripted churn batch for (user, step). The
// batch is a pure function of its coordinates, so a retry is
// bit-identical and a fault-free reference run issues the same batches;
// each batch adds one source and removes one, keeping the universe at a
// constant 20 so every scripted ID stays in range.
func churnScriptStep(baseURL, id string, user, step int) error {
	muts := []model.Mutation{
		addMutation(fmt.Sprintf("churn-u%d-s%d", user, step),
			[]string{"title", "year", fmt.Sprintf("attr_u%d_s%d", user, step)}, int64(3000+100*user+step)),
		{Op: model.OpRemove, ID: (7*step + 3*user) % 20},
	}
	data, err := json.Marshal(schemaio.ChurnRequestDoc{Mutations: muts})
	if err != nil {
		return err
	}
	for attempt := 0; attempt < chaosMaxAttempts; attempt++ {
		req, err := http.NewRequest(http.MethodPatch, baseURL+"/v1/sessions/"+id+"/universe", bytes.NewReader(data))
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		_, rerr := buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return rerr
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return nil
		case http.StatusTooManyRequests, http.StatusInternalServerError,
			http.StatusServiceUnavailable, http.StatusConflict:
			// 409s here can only be injected (the script pins nothing);
			// like recovered panics, the identical retry must succeed.
		default:
			return fmt.Errorf("churn: unexpected status %d: %s", resp.StatusCode, buf.String())
		}
	}
	return fmt.Errorf("churn: attempts exhausted")
}

// runChurnChaos drives chaosUsers sequential scripted users — each
// alternating solves with churn batches — and returns the observable
// run. Sequential driving makes fault arrival order, and therefore the
// whole run, deterministic.
func runChurnChaos(t *testing.T, u *model.Universe, inj *faultinject.Injector) chaosRun {
	t.Helper()
	var buf syncBuffer
	srv, err := Open(chaosConfig(inj, &buf, 2, ""))
	if err != nil {
		t.Fatalf("opening churn chaos server: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())

	sessions := make([]string, chaosUsers)
	histories := make([][]schemaio.IterationDoc, chaosUsers)
	for i := 0; i < chaosUsers; i++ {
		id, err := chaosCreate(ts.URL, u, i)
		if err != nil {
			t.Fatalf("user %d create: %v", i, err)
		}
		sessions[i] = id
		for k := 0; k < chaosIters; k++ {
			if _, ok, err := chaosSolve(ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{}); err != nil || !ok {
				t.Fatalf("user %d solve %d: ok=%v err=%v", i, k, ok, err)
			}
			if k+1 < chaosIters {
				if err := churnScriptStep(ts.URL, id, i, k); err != nil {
					t.Fatalf("user %d churn %d: %v", i, k, err)
				}
			}
		}
		var hist struct {
			Iterations []schemaio.IterationDoc `json:"iterations"`
		}
		if resp := getJSON(t, ts.URL+"/v1/sessions/"+id+"/history", &hist); resp.StatusCode != http.StatusOK {
			t.Fatalf("user %d history: %d", i, resp.StatusCode)
		}
		histories[i] = hist.Iterations
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()
	return chaosRun{sessions: sessions, histories: histories, metrics: srv.metricsSnapshot(), audit: buf.String()}
}

// TestChurnChaos fires the committed churn fault plans against scripted
// users that interleave solves and universe mutation: the midway panic
// and the injected conflict are both retried to convergence, so the
// final histories must be bit-identical to a fault-free reference and
// the metrics must reconcile with the audit trail.
func TestChurnChaos(t *testing.T) {
	u := testUniverse(t, 20)
	ref := runChurnChaos(t, u, nil)
	for i, h := range ref.histories {
		if len(h) != chaosIters {
			t.Fatalf("fault-free reference: user %d completed %d/%d iterations", i, len(h), chaosIters)
		}
	}

	for _, name := range []string{"churn-midway", "churn-conflict"} {
		t.Run(name, func(t *testing.T) {
			plan := loadChaosPlan(t, name)
			run := runChurnChaos(t, u, faultinject.MustNew(plan))
			for i := range run.histories {
				want := canonicalIterations(t, ref.histories[i])
				got := canonicalIterations(t, run.histories[i])
				if !bytes.Equal(want, got) {
					t.Errorf("user %d: history diverges from the fault-free reference\nreference %s\nsurvived  %s\n%s",
						i, want, got, replayBanner(name, plan))
				}
			}

			m := run.metrics
			// Every script retried to success: the committed batch count
			// matches the fault-free reference exactly.
			if m.Churns != ref.metrics.Churns {
				t.Errorf("churns = %d, reference committed %d\n%s", m.Churns, ref.metrics.Churns, replayBanner(name, plan))
			}
			switch name {
			case "churn-midway":
				if m.ChurnErrors != 2 {
					t.Errorf("churnErrors = %d, want exactly 2 recovered panics\n%s", m.ChurnErrors, replayBanner(name, plan))
				}
			case "churn-conflict":
				if m.ChurnConflicts != 2 {
					t.Errorf("churnConflicts = %d, want exactly 2 injected conflicts\n%s", m.ChurnConflicts, replayBanner(name, plan))
				}
			}
			// Admission reconciles against the churn terminal counters…
			terminal := m.Churns + m.ChurnErrors + m.ChurnConflicts + m.ChurnsCancelled
			if m.ChurnsAdmitted != terminal {
				t.Errorf("churn metrics do not reconcile: admitted %d != churns %d + errors %d + conflicts %d + cancelled %d\n%s",
					m.ChurnsAdmitted, m.Churns, m.ChurnErrors, m.ChurnConflicts, m.ChurnsCancelled, replayBanner(name, plan))
			}
			// …and the audit trail agrees with every counter.
			counts := map[string]int64{}
			for _, line := range strings.Split(strings.TrimSpace(run.audit), "\n") {
				if line == "" {
					continue
				}
				var e auditEntry
				if err := json.Unmarshal([]byte(line), &e); err != nil {
					t.Fatalf("audit line %q: %v", line, err)
				}
				counts[e.Action]++
			}
			if counts["churn.enqueue"] != m.ChurnsAdmitted {
				t.Errorf("audit churn.enqueue %d != admitted %d\n%s", counts["churn.enqueue"], m.ChurnsAdmitted, replayBanner(name, plan))
			}
			if counts["churn.apply"] != m.Churns {
				t.Errorf("audit churn.apply %d != churns %d\n%s", counts["churn.apply"], m.Churns, replayBanner(name, plan))
			}
			if counts["churn.conflict"] != m.ChurnConflicts {
				t.Errorf("audit churn.conflict %d != conflicts %d\n%s", counts["churn.conflict"], m.ChurnConflicts, replayBanner(name, plan))
			}
			if counts["churn.error"]+counts["churn.panic"] != m.ChurnErrors {
				t.Errorf("audit churn.error %d + churn.panic %d != churnErrors %d\n%s",
					counts["churn.error"], counts["churn.panic"], m.ChurnErrors, replayBanner(name, plan))
			}
		})
	}
}

// TestChurnDurableReplay: a session's whole lifecycle — solves
// interleaved with churn — replays bit-identically from the WAL, and
// the recovered session's NEXT solve matches a never-restarted control
// running the same script, proving the warm-start state (the churn-dirty
// flag and the repaired initial sources) survives recovery.
func TestChurnDurableReplay(t *testing.T) {
	dir := t.TempDir()
	u := testUniverse(t, 20)
	card := int64(7777)
	script := func(baseURL, id string) {
		solveWith(t, baseURL, id, solveRequest{})
		churnWith(t, baseURL, id, []model.Mutation{
			addMutation("durable-add", []string{"title", "subject", "durable_attr"}, 6000),
			{Op: model.OpRemove, ID: 5},
		})
		solveWith(t, baseURL, id, solveRequest{})
		churnWith(t, baseURL, id, []model.Mutation{
			{Op: model.OpUpdate, ID: 2, Cardinality: &card},
		})
	}

	// Control: never restarted.
	_, tsCtl := newTestServer(t, Config{})
	ctlID := createSession(t, tsCtl.URL, u, testProblemDoc())
	script(tsCtl.URL, ctlID)

	// Durable run: same script, then crash-restart mid-lifecycle — after
	// a churn, before its next solve, inside the churn-dirty window.
	_, ts, stop := openDurableServer(t, Config{WALDir: dir})
	id := createSession(t, ts.URL, u, testProblemDoc())
	script(ts.URL, id)
	wantHist := historyBody(t, ts.URL, id)
	var wantInfo sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+id, &wantInfo)
	stop()

	srv2, ts2, stop2 := openDurableServer(t, Config{WALDir: dir})
	if srv2.recovered == nil || srv2.recovered.ChurnsReplayed != 2 {
		t.Fatalf("recovery stats = %+v, want 2 churns replayed", srv2.recovered)
	}
	if got := historyBody(t, ts2.URL, id); !bytes.Equal(got, wantHist) {
		t.Fatalf("recovered history differs:\n got %s\nwant %s", got, wantHist)
	}
	var gotInfo sessionInfo
	getJSON(t, ts2.URL+"/v1/sessions/"+id, &gotInfo)
	if gotInfo.Sources != wantInfo.Sources {
		t.Fatalf("recovered universe has %d sources, live had %d", gotInfo.Sources, wantInfo.Sources)
	}
	wantProb, _ := json.Marshal(wantInfo.Problem)
	gotProb, _ := json.Marshal(gotInfo.Problem)
	if !bytes.Equal(gotProb, wantProb) {
		t.Fatalf("recovered problem differs:\n got %s\nwant %s", gotProb, wantProb)
	}

	// The differential continuation: control and recovered sessions solve
	// once more and must produce identical iterations.
	ctlNext := solveWith(t, tsCtl.URL, ctlID, solveRequest{})
	recNext := solveWith(t, ts2.URL, id, solveRequest{})
	a := canonicalSolution(t, ctlNext.Solution)
	b := canonicalSolution(t, recNext.Solution)
	if !bytes.Equal(a, b) {
		t.Fatalf("post-recovery solve diverges from the never-restarted control:\ncontrol   %s\nrecovered %s", a, b)
	}

	// And the continuation itself survives another restart.
	wantHist2 := historyBody(t, ts2.URL, id)
	stop2()
	_, ts3, _ := openDurableServer(t, Config{WALDir: dir})
	if got := historyBody(t, ts3.URL, id); !bytes.Equal(got, wantHist2) {
		t.Fatalf("second recovery differs:\n got %s\nwant %s", got, wantHist2)
	}
}

// TestChurnSnapshotRestore: a rotation snapshot embeds the churn batches
// and recovery restores from it without replaying them — and the
// restored session still solves identically to a never-restarted
// control, including when the snapshot was taken inside the churn-dirty
// window.
func TestChurnSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	u := testUniverse(t, 20)
	script := func(baseURL, id string) {
		solveWith(t, baseURL, id, solveRequest{})
		churnWith(t, baseURL, id, []model.Mutation{
			addMutation("snap-add", []string{"title", "creator", "snap_attr"}, 4500),
			{Op: model.OpRemove, ID: 4},
		})
	}

	_, tsCtl := newTestServer(t, Config{})
	ctlID := createSession(t, tsCtl.URL, u, testProblemDoc())
	script(tsCtl.URL, ctlID)

	srv, ts, stop := openDurableServer(t, Config{WALDir: dir})
	id := createSession(t, ts.URL, u, testProblemDoc())
	script(ts.URL, id)
	// Rotate now: the snapshot is taken with churn after the last solve,
	// so the restored session must come back churn-dirty.
	if err := srv.wal.Rotate(srv.buildSnapshots); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	want := historyBody(t, ts.URL, id)
	stop()

	srv2, ts2, _ := openDurableServer(t, Config{WALDir: dir})
	if rec := srv2.recovered; rec == nil || rec.ChurnsReplayed != 0 || rec.SolvesReplayed != 0 {
		t.Fatalf("recovery stats = %+v, want a pure snapshot restore", rec)
	}
	if got := historyBody(t, ts2.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("snapshot recovery differs:\n got %s\nwant %s", got, want)
	}
	sn, ok := srv2.lookupSession(id)
	if !ok {
		t.Fatal("restored session missing")
	}
	if !sn.sess.ChurnDirty() {
		t.Fatal("snapshot inside the churn-dirty window restored with a clean flag")
	}

	ctlNext := solveWith(t, tsCtl.URL, ctlID, solveRequest{})
	recNext := solveWith(t, ts2.URL, id, solveRequest{})
	a := canonicalSolution(t, ctlNext.Solution)
	b := canonicalSolution(t, recNext.Solution)
	if !bytes.Equal(a, b) {
		t.Fatalf("post-restore solve diverges from the control:\ncontrol  %s\nrestored %s", a, b)
	}
}

// TestReplayChurnSkipAndGap pins the replay tolerance rules directly:
// batches the restore point covers are skipped; a gap is refused.
func TestReplayChurnSkipAndGap(t *testing.T) {
	u := testUniverse(t, 20)
	srv, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, u, testProblemDoc())
	sn, ok := srv.lookupSession(id)
	if !ok {
		t.Fatal("session missing")
	}
	raw, err := json.Marshal(schemaio.ChurnRequestDoc{Mutations: []model.Mutation{{Op: model.OpRemove, ID: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	sn.churnDocs = []schemaio.SnapshotChurnDoc{{AfterSolves: 0, Request: raw}}
	doc := &recoveryDoc{}
	if err := srv.replayChurn(sn, &schemaio.WALChurnDoc{Batch: 1, Request: raw}, doc); err != nil {
		t.Fatalf("covered batch not skipped: %v", err)
	}
	if doc.ChurnsSkipped != 1 || doc.ChurnsReplayed != 0 {
		t.Fatalf("skip stats %+v; want 1 skipped", doc)
	}
	if err := srv.replayChurn(sn, &schemaio.WALChurnDoc{Batch: 3, Request: raw}, doc); err == nil ||
		!strings.Contains(err.Error(), "gap") {
		t.Fatalf("gapped batch accepted: %v", err)
	}
}

// TestChurnWALWriteErrorRefuses: an injected append failure on the
// churn record refuses the whole batch — 503 + Retry-After, universe
// untouched — and the identical retry then commits durably.
func TestChurnWALWriteErrorRefuses(t *testing.T) {
	dir := t.TempDir()
	u := testUniverse(t, 20)
	inj := faultinject.MustNew(faultinject.Plan{Entries: []faultinject.Entry{
		// Arrival 1 is the create's append; arrival 2 the churn record's.
		{Point: faultinject.WALWriteError, Trigger: 2, Action: "fail"},
	}})
	_, ts, stop := openDurableServer(t, Config{WALDir: dir, FaultInjector: inj})
	id := createSession(t, ts.URL, u, testProblemDoc())

	muts := []model.Mutation{{Op: model.OpRemove, ID: 1}}
	resp, body := patchJSON(t, ts.URL+"/v1/sessions/"+id+"/universe", schemaio.ChurnRequestDoc{Mutations: muts})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("churn under WAL failure: %d %s; want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After")
	}
	var info sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+id, &info)
	if info.Sources != 20 {
		t.Fatalf("refused churn mutated the universe: %d sources", info.Sources)
	}

	cr := churnWith(t, ts.URL, id, muts)
	if cr.Batch != 1 || cr.Sources != 19 {
		t.Fatalf("retried churn %+v; want batch 1, 19 sources", cr)
	}
	want := historyBody(t, ts.URL, id)
	var wantInfo sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+id, &wantInfo)
	stop()

	_, ts2, _ := openDurableServer(t, Config{WALDir: dir})
	if got := historyBody(t, ts2.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("post-failure recovery differs:\n got %s\nwant %s", got, want)
	}
	var gotInfo sessionInfo
	getJSON(t, ts2.URL+"/v1/sessions/"+id, &gotInfo)
	if gotInfo.Sources != wantInfo.Sources {
		t.Fatalf("recovered universe has %d sources, want %d", gotInfo.Sources, wantInfo.Sources)
	}
}
