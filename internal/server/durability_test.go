package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ube/internal/auditlog"
	"ube/internal/faultinject"
)

// openDurableServer starts a durable server with Open and returns a
// stop function. Tests call stop to simulate an orderly restart; the
// cleanup guards against double-stops so crash-style tests can simply
// abandon the instance (acknowledged records are already on disk — the
// WAL acknowledges nothing less).
func openDurableServer(t *testing.T, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	srv, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
	t.Cleanup(stop)
	return srv, ts, stop
}

// solveWith posts one solve and returns the iteration it produced.
func solveWith(t *testing.T, baseURL, id string, req solveRequest) solveResponse {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/v1/sessions/"+id+"/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// historyBody fetches the raw /history response — the bit-identity
// comparison unit for recovery.
func historyBody(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/sessions/" + id + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history %s: %d %s", id, resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

func sessionIDs(t *testing.T, baseURL string) []string {
	t.Helper()
	var out struct {
		Sessions []string `json:"sessions"`
	}
	if resp := getJSON(t, baseURL+"/v1/sessions", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("list sessions: %d", resp.StatusCode)
	}
	return out.Sessions
}

// TestDurableRestartBitIdentical is the tentpole property: everything
// the server acknowledged before a restart — sessions, whole iteration
// histories, current problems — comes back byte-for-byte identical from
// the WAL, including a deleted session staying deleted and the ID
// counter not reissuing old names.
func TestDurableRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	u := testUniverse(t, 20)
	cfg := Config{WALDir: dir}

	_, ts, stop := openDurableServer(t, cfg)
	s1 := createSession(t, ts.URL, u, testProblemDoc())
	solveWith(t, ts.URL, s1, solveRequest{})
	theta := 0.45
	solveWith(t, ts.URL, s1, solveRequest{Theta: &theta, PinSources: []int{2}})
	solveWith(t, ts.URL, s1, solveRequest{ExcludeSources: []int{7}})

	s2 := createSession(t, ts.URL, u, testProblemDoc())
	solveWith(t, ts.URL, s2, solveRequest{})
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete %s: %v %v", s2, err, resp)
	}
	resp.Body.Close()

	wantHist := historyBody(t, ts.URL, s1)
	var wantInfo sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+s1, &wantInfo)
	stop()

	srv2, ts2, stop2 := openDurableServer(t, cfg)
	if got := sessionIDs(t, ts2.URL); len(got) != 1 || got[0] != s1 {
		t.Fatalf("recovered sessions %v, want [%s]", got, s1)
	}
	if got := historyBody(t, ts2.URL, s1); !bytes.Equal(got, wantHist) {
		t.Fatalf("recovered history differs:\n got %s\nwant %s", got, wantHist)
	}
	var gotInfo sessionInfo
	getJSON(t, ts2.URL+"/v1/sessions/"+s1, &gotInfo)
	if gotInfo.Iterations != wantInfo.Iterations {
		t.Fatalf("recovered iterations %d, want %d", gotInfo.Iterations, wantInfo.Iterations)
	}
	wantProb, _ := json.Marshal(wantInfo.Problem)
	gotProb, _ := json.Marshal(gotInfo.Problem)
	if !bytes.Equal(gotProb, wantProb) {
		t.Fatalf("recovered problem differs:\n got %s\nwant %s", gotProb, wantProb)
	}
	if srv2.recovered == nil || srv2.recovered.SolvesReplayed != 4 {
		t.Fatalf("recovery stats = %+v, want 4 solves replayed", srv2.recovered)
	}
	// New sessions must not collide with recovered (or deleted) IDs.
	s3 := createSession(t, ts2.URL, u, testProblemDoc())
	if s3 == s1 || s3 == s2 {
		t.Fatalf("recovered server reissued session ID %s", s3)
	}
	// The recovered session keeps solving — and the continuation itself
	// survives another restart.
	solveWith(t, ts2.URL, s1, solveRequest{})
	wantHist2 := historyBody(t, ts2.URL, s1)
	stop2()

	_, ts3, _ := openDurableServer(t, cfg)
	if got := historyBody(t, ts3.URL, s1); !bytes.Equal(got, wantHist2) {
		t.Fatalf("second recovery differs:\n got %s\nwant %s", got, wantHist2)
	}
}

// TestDurableSnapshotsAndRotation forces a snapshot after every solve
// and a rotation after every commit (1-byte segment bound): recovery
// then restores from snapshots instead of re-solving, and still lands
// on the identical history.
func TestDurableSnapshotsAndRotation(t *testing.T) {
	dir := t.TempDir()
	u := testUniverse(t, 20)
	cfg := Config{WALDir: dir, SnapshotEvery: 1, WALSegmentBytes: 1}

	srv, ts, stop := openDurableServer(t, cfg)
	id := createSession(t, ts.URL, u, testProblemDoc())
	for i := 0; i < 3; i++ {
		solveWith(t, ts.URL, id, solveRequest{})
	}
	if st := srv.wal.Stats(); st.Rotations == 0 {
		t.Fatalf("expected rotations with a 1-byte segment bound, stats %+v", st)
	}
	want := historyBody(t, ts.URL, id)
	stop()

	srv2, ts2, _ := openDurableServer(t, cfg)
	if got := historyBody(t, ts2.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("snapshot recovery differs:\n got %s\nwant %s", got, want)
	}
	rec := srv2.recovered
	if rec == nil || rec.SolvesReplayed > 1 {
		// Rotation after the last solve snapshotted everything; at most
		// the final commit can trail the last checkpoint.
		t.Fatalf("recovery stats = %+v, want snapshot-covered replay", rec)
	}
}

// TestDurableEmptyAndSnapshotOnlyLogs covers the truncation boundary
// shapes: a fresh empty log and a log holding only a rotation
// checkpoint (snapshot records, no trailing solves).
func TestDurableEmptyAndSnapshotOnlyLogs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{WALDir: dir}
	srv, _, stop := openDurableServer(t, cfg)
	if n := len(srv.listSessionIDs()); n != 0 {
		t.Fatalf("fresh log recovered %d sessions", n)
	}
	stop()

	// Build a snapshot-only log: create + solve, then rotate so the
	// only segment holds snapshot + checkpoint records.
	u := testUniverse(t, 20)
	srv2, ts2, stop2 := openDurableServer(t, cfg)
	id := createSession(t, ts2.URL, u, testProblemDoc())
	solveWith(t, ts2.URL, id, solveRequest{})
	if err := srv2.wal.Rotate(srv2.buildSnapshots); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	want := historyBody(t, ts2.URL, id)
	stop2()

	srv3, ts3, _ := openDurableServer(t, cfg)
	if got := historyBody(t, ts3.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("snapshot-only recovery differs:\n got %s\nwant %s", got, want)
	}
	if rec := srv3.recovered; rec == nil || rec.SolvesReplayed != 0 {
		t.Fatalf("recovery stats = %+v, want zero replayed solves", rec)
	}
}

// TestWALWriteErrorRefusesCommit holds the write-ahead contract under
// an injected append failure: the solve is fully undone (no history
// growth, problem untouched, seed not advanced), the client gets a
// retryable 503, /healthz degrades — and the retry then produces
// exactly what the first attempt would have.
func TestWALWriteErrorRefusesCommit(t *testing.T) {
	dir := t.TempDir()
	u := testUniverse(t, 20)
	inj := faultinject.MustNew(faultinject.Plan{Entries: []faultinject.Entry{
		// Arrival 1 is the create's append; arrival 2 the first solve's.
		{Point: faultinject.WALWriteError, Trigger: 2, Action: "fail"},
	}})
	cfg := Config{WALDir: dir, FaultInjector: inj}

	_, ts, stop := openDurableServer(t, cfg)
	id := createSession(t, ts.URL, u, testProblemDoc())
	var before sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+id, &before)

	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve under WAL failure: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After")
	}
	var after sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+id, &after)
	if after.Iterations != 0 {
		t.Fatalf("refused solve left %d iterations", after.Iterations)
	}
	bp, _ := json.Marshal(before.Problem)
	ap, _ := json.Marshal(after.Problem)
	if !bytes.Equal(bp, ap) {
		t.Fatalf("refused solve changed the problem:\n before %s\n after %s", bp, ap)
	}
	var health healthDoc
	getJSON(t, ts.URL+"/healthz", &health)
	if !health.Degraded || health.WALErrors == 0 {
		t.Fatalf("healthz after WAL failure = %+v, want degraded", health)
	}

	// The retry commits, and the committed result survives a restart.
	sr := solveWith(t, ts.URL, id, solveRequest{})
	if sr.Iteration != 0 {
		t.Fatalf("retry produced iteration %d, want 0", sr.Iteration)
	}
	want := historyBody(t, ts.URL, id)
	stop()
	_, ts2, _ := openDurableServer(t, Config{WALDir: dir})
	if got := historyBody(t, ts2.URL, id); !bytes.Equal(got, want) {
		t.Fatalf("post-failure recovery differs:\n got %s\nwant %s", got, want)
	}
}

// TestRecoveryTruncatedTailInjection drops the last record of the
// clean prefix at recovery: the server must come up with the shorter
// history — the exact prefix — and the disk must agree (a second,
// disarmed recovery sees the same state).
func TestRecoveryTruncatedTailInjection(t *testing.T) {
	dir := t.TempDir()
	u := testUniverse(t, 20)
	_, ts, stop := openDurableServer(t, Config{WALDir: dir})
	id := createSession(t, ts.URL, u, testProblemDoc())
	for i := 0; i < 3; i++ {
		solveWith(t, ts.URL, id, solveRequest{})
	}
	full := historyBody(t, ts.URL, id)
	stop()

	inj := faultinject.MustNew(faultinject.Plan{Entries: []faultinject.Entry{
		{Point: faultinject.RecoveryTruncatedTail, Trigger: 1, Action: "truncate", Arg: 1},
	}})
	srv2, ts2, stop2 := openDurableServer(t, Config{WALDir: dir, FaultInjector: inj})
	if srv2.recovered.DroppedRecords != 1 {
		t.Fatalf("recovery stats = %+v, want 1 dropped record", srv2.recovered)
	}
	truncated := historyBody(t, ts2.URL, id)
	var fullDoc, truncDoc struct {
		Iterations []json.RawMessage `json:"iterations"`
	}
	if err := json.Unmarshal(full, &fullDoc); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(truncated, &truncDoc); err != nil {
		t.Fatal(err)
	}
	if len(truncDoc.Iterations) != len(fullDoc.Iterations)-1 {
		t.Fatalf("truncated recovery has %d iterations, want %d", len(truncDoc.Iterations), len(fullDoc.Iterations)-1)
	}
	for i := range truncDoc.Iterations {
		if !bytes.Equal(truncDoc.Iterations[i], fullDoc.Iterations[i]) {
			t.Fatalf("iteration %d differs after tail truncation", i)
		}
	}
	stop2()

	// The injected truncation was physical: a disarmed recovery agrees.
	_, ts3, _ := openDurableServer(t, Config{WALDir: dir})
	if got := historyBody(t, ts3.URL, id); !bytes.Equal(got, truncated) {
		t.Fatalf("disarmed recovery disagrees with injected truncation:\n got %s\nwant %s", got, truncated)
	}
}

// TestJanitorEvictionAfterRecovery: replay finishes before the janitor
// starts, so recovered sessions are never evicted mid-replay; they then
// age out normally, the eviction is WAL-logged, and a further restart
// honors it.
func TestJanitorEvictionAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	u := testUniverse(t, 20)
	_, ts, stop := openDurableServer(t, Config{WALDir: dir})
	id := createSession(t, ts.URL, u, testProblemDoc())
	solveWith(t, ts.URL, id, solveRequest{})
	stop()

	srv2, ts2, stop2 := openDurableServer(t, Config{WALDir: dir, SessionTTL: 250 * time.Millisecond})
	if got := sessionIDs(t, ts2.URL); len(got) != 1 {
		t.Fatalf("recovered sessions %v, want 1: recovery must beat the janitor", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv2.mu.Lock()
		n := len(srv2.sessions)
		srv2.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered session never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	stop2()

	_, ts3, _ := openDurableServer(t, Config{WALDir: dir})
	if got := sessionIDs(t, ts3.URL); len(got) != 0 {
		t.Fatalf("eviction did not survive restart: %v", got)
	}
}

// TestAuditSinkDegradedMode is the audit-sink fix: a failing sink no
// longer drops lines silently — the loss is counted and /healthz
// reports the degraded state.
func TestAuditSinkDegradedMode(t *testing.T) {
	u := testUniverse(t, 20)
	inj := faultinject.MustNew(faultinject.Plan{Entries: []faultinject.Entry{
		{Point: faultinject.AuditWriteError, Trigger: 1, Action: "drop"},
	}})
	var sink bytes.Buffer
	_, ts := newTestServer(t, Config{AuditWriter: &sink, FaultInjector: inj})
	createSession(t, ts.URL, u, testProblemDoc())
	var health healthDoc
	getJSON(t, ts.URL+"/healthz", &health)
	if !health.Degraded || health.AuditDropped == 0 {
		t.Fatalf("healthz = %+v, want degraded with dropped lines counted", health)
	}
	var m metricsDoc
	getJSON(t, ts.URL+"/metrics", &m)
	if m.AuditDropped != health.AuditDropped {
		t.Fatalf("metrics auditDropped %d != healthz %d", m.AuditDropped, health.AuditDropped)
	}
}

// TestAuditChainThroughServer mirrors the audit trail into the hash
// chain and verifies the sealed result end to end: every line is a
// valid audit entry, the chain verifies, and shutdown sealed the tail.
func TestAuditChainThroughServer(t *testing.T) {
	u := testUniverse(t, 20)
	var plain, chain bytes.Buffer
	cw, err := auditlog.NewWriter(&chain, auditlog.Options{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Open(Config{AuditWriter: &plain, AuditChain: cw})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	id := createSession(t, ts.URL, u, testProblemDoc())
	solveWith(t, ts.URL, id, solveRequest{})
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	rep := auditlog.Verify(bytes.NewReader(chain.Bytes()), nil)
	if !rep.OK {
		t.Fatalf("chain does not verify: %s (line %d)", rep.Reason, rep.Line)
	}
	if rep.Records == 0 {
		t.Fatal("chain holds no records")
	}
	if rep.Unsealed != 0 {
		t.Fatalf("shutdown left %d unsealed records", rep.Unsealed)
	}
	// The chain embeds the same lines the plain sink got.
	plainLines := bytes.Count(plain.Bytes(), []byte("\n"))
	if rep.Records != plainLines {
		t.Fatalf("chain has %d records, plain sink %d lines", rep.Records, plainLines)
	}
	// Tampering with any chain byte is detected.
	mut := append([]byte(nil), chain.Bytes()...)
	mut[len(mut)/2] ^= 0x20
	if rep := auditlog.Verify(bytes.NewReader(mut), nil); rep.OK {
		t.Fatal("tampered chain verified")
	}
}

// TestDurableMetricsSurface checks the wal.* /metrics section: counters
// present, flush-latency histogram cumulative and +Inf-terminated, and
// the recovery report attached after a restart.
func TestDurableMetricsSurface(t *testing.T) {
	dir := t.TempDir()
	u := testUniverse(t, 20)
	_, ts, stop := openDurableServer(t, Config{WALDir: dir})
	id := createSession(t, ts.URL, u, testProblemDoc())
	solveWith(t, ts.URL, id, solveRequest{})

	var m metricsDoc
	getJSON(t, ts.URL+"/metrics", &m)
	if m.WAL == nil {
		t.Fatal("durable server serves no wal metrics")
	}
	if m.WAL.Appends < 2 {
		t.Fatalf("wal appends %d, want ≥2 (create + solve)", m.WAL.Appends)
	}
	b := m.WAL.FlushLatency.Buckets
	if len(b) == 0 || b[len(b)-1].LE != "+Inf" {
		t.Fatalf("flush latency histogram malformed: %+v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i].Count < b[i-1].Count {
			t.Fatalf("flush latency histogram not cumulative at %d: %+v", i, b)
		}
	}
	if b[len(b)-1].Count != int64(m.WAL.Appends) {
		t.Fatalf("flush latency total %d != appends %d", b[len(b)-1].Count, m.WAL.Appends)
	}
	stop()

	_, ts2, _ := openDurableServer(t, Config{WALDir: dir})
	getJSON(t, ts2.URL+"/metrics", &m)
	if m.Recovery == nil || m.Recovery.Sessions != 1 {
		t.Fatalf("walRecovery after restart = %+v", m.Recovery)
	}
}
