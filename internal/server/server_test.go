package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/schemaio"
	"ube/internal/synth"
)

// testUniverse generates a deterministic synthetic universe shared by the
// tests; every caller with the same n gets the same universe.
func testUniverse(t *testing.T, n int) *model.Universe {
	t.Helper()
	u, _, err := synth.Generate(synth.QuickConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// testProblemDoc is the small, fast starting problem the tests use.
func testProblemDoc() *schemaio.ProblemDoc {
	p := engine.DefaultProblem()
	p.MaxSources = 5
	p.MaxEvals = 400
	doc, err := schemaio.EncodeProblem(&p)
	if err != nil {
		panic(err)
	}
	return doc
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// createSession posts a session for universe u and returns its ID.
func createSession(t *testing.T, baseURL string, u *model.Universe, prob *schemaio.ProblemDoc) string {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/v1/sessions", createSessionRequest{Universe: u, Problem: prob})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: %d %s", resp.StatusCode, body)
	}
	var info sessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" {
		t.Fatal("created session has no ID")
	}
	return info.ID
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var health map[string]string
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz status %q", health["status"])
	}
	var m metricsDoc
	if resp := getJSON(t, ts.URL+"/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if len(m.SolveLatency.Buckets) == 0 || m.SolveLatency.Buckets[len(m.SolveLatency.Buckets)-1].LE != "+Inf" {
		t.Errorf("latency histogram malformed: %+v", m.SolveLatency)
	}
}

// TestSessionLifecycle walks the whole API surface: create, solve with
// edits, history, diff, per-iteration fetch, delete.
func TestSessionLifecycle(t *testing.T) {
	u := testUniverse(t, 30)
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, u, testProblemDoc())

	// Solve once with no edits.
	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve 1: %d %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Iteration != 0 || sr.Solution == nil || sr.Rendered == nil {
		t.Fatalf("solve 1 response malformed: %+v", sr)
	}

	// Solve again, tightening the problem: pin the first chosen source
	// and shrink m.
	pin := sr.Solution.Sources[0]
	m := 4
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{
		PinSources: []int{pin},
		MaxSources: &m,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve 2: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Iteration != 1 {
		t.Errorf("second solve is iteration %d; want 1", sr.Iteration)
	}
	if sr.Diff == nil {
		t.Error("second solve has no diff")
	}
	found := false
	for _, src := range sr.Solution.Sources {
		if src == pin {
			found = true
		}
	}
	if !found {
		t.Errorf("pinned source %d missing from %v", pin, sr.Solution.Sources)
	}

	// The session info reflects the edits.
	var info sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+id, &info)
	if info.Iterations != 2 || info.Problem.MaxSources != 4 {
		t.Errorf("session info %+v; want 2 iterations, maxSources 4", info)
	}

	// History has both iterations and they decode.
	var hist struct {
		Iterations []schemaio.IterationDoc `json:"iterations"`
	}
	getJSON(t, ts.URL+"/v1/sessions/"+id+"/history", &hist)
	if len(hist.Iterations) != 2 {
		t.Fatalf("history has %d iterations; want 2", len(hist.Iterations))
	}
	if _, err := hist.Iterations[1].Decode(); err != nil {
		t.Errorf("history iteration does not decode: %v", err)
	}
	var one schemaio.IterationDoc
	if resp := getJSON(t, ts.URL+"/v1/sessions/"+id+"/history/1", &one); resp.StatusCode != http.StatusOK {
		t.Fatalf("history/1: %d", resp.StatusCode)
	}
	if !reflect.DeepEqual(one, hist.Iterations[1]) {
		t.Error("history/1 differs from history[1]")
	}

	// Diff endpoint agrees with the solve response's diff.
	var diffResp struct {
		From int          `json:"from"`
		To   int          `json:"to"`
		Diff *engine.Diff `json:"diff"`
	}
	getJSON(t, ts.URL+"/v1/sessions/"+id+"/diff", &diffResp)
	if diffResp.From != 0 || diffResp.To != 1 {
		t.Errorf("default diff range (%d,%d); want (0,1)", diffResp.From, diffResp.To)
	}
	if !reflect.DeepEqual(diffResp.Diff, sr.Diff) {
		t.Errorf("diff endpoint %+v != solve diff %+v", diffResp.Diff, sr.Diff)
	}

	// Delete, then everything 404s/410s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/sessions/"+id, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("get after delete: %d", resp.StatusCode)
	}
}

// TestSolveEditRollback verifies a rejected edit batch leaves the problem
// exactly as it was: edits are all-or-nothing.
func TestSolveEditRollback(t *testing.T) {
	u := testUniverse(t, 30)
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, u, testProblemDoc())

	var before sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+id, &before)

	// theta edit is valid, optimizer is not: the whole batch must fail
	// and the valid part must not stick.
	theta := 0.9
	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{
		Theta:     &theta,
		Optimizer: "no-such-optimizer",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad edit batch: %d %s", resp.StatusCode, body)
	}

	var after sessionInfo
	getJSON(t, ts.URL+"/v1/sessions/"+id, &after)
	if !reflect.DeepEqual(before.Problem, after.Problem) {
		t.Errorf("rejected edits mutated the problem:\nbefore %+v\nafter  %+v", before.Problem, after.Problem)
	}
}

// TestConcurrentSolvesSerializeDeterministically is the service-level
// determinism guarantee (satellite of the repo-wide invariant): N
// goroutines hammering one session produce exactly the history that
// posting the same requests sequentially produces — per-session solves
// serialize in admission order and nothing about server concurrency
// leaks into results.
func TestConcurrentSolvesSerializeDeterministically(t *testing.T) {
	const solves = 4
	u := testUniverse(t, 30)

	runHistory := func(concurrent bool) []schemaio.IterationDoc {
		_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16})
		id := createSession(t, ts.URL, u, testProblemDoc())
		if concurrent {
			var wg sync.WaitGroup
			for i := 0; i < solves; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("concurrent solve: %d %s", resp.StatusCode, body)
					}
				}()
			}
			wg.Wait()
		} else {
			for i := 0; i < solves; i++ {
				resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("sequential solve %d: %d %s", i, resp.StatusCode, body)
				}
			}
		}
		var hist struct {
			Iterations []schemaio.IterationDoc `json:"iterations"`
		}
		getJSON(t, ts.URL+"/v1/sessions/"+id+"/history", &hist)
		return hist.Iterations
	}

	sequential := runHistory(false)
	concurrentHist := runHistory(true)
	if len(sequential) != solves || len(concurrentHist) != solves {
		t.Fatalf("histories have %d and %d iterations; want %d", len(sequential), len(concurrentHist), solves)
	}
	// Wall-clock solve duration is operational metadata, not solver
	// output; everything else must match bit for bit.
	for i := range sequential {
		sequential[i].Solution.ElapsedNS = 0
		concurrentHist[i].Solution.ElapsedNS = 0
	}
	// The requests are identical, so admission order cannot matter here;
	// the histories must match iteration by iteration, bit for bit.
	if !reflect.DeepEqual(sequential, concurrentHist) {
		for i := range sequential {
			if !reflect.DeepEqual(sequential[i], concurrentHist[i]) {
				t.Errorf("iteration %d diverges:\nsequential %+v\nconcurrent %+v",
					i, sequential[i].Solution, concurrentHist[i].Solution)
			}
		}
	}
}

// TestQueueOverflow429 fills the admission queue and verifies overflow
// gets 429 with a Retry-After header.
func TestQueueOverflow429(t *testing.T) {
	u := testUniverse(t, 40)
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	doc := testProblemDoc()
	doc.MaxEvals = 200000 // slow enough to still be running when we flood
	id := createSession(t, ts.URL, u, doc)

	// Occupy the single worker.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		resp, _ := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("occupying solve: %d", resp.StatusCode)
		}
	}()
	waitFor(t, 10*time.Second, func() bool { return srv.metrics.inFlight.Load() == 1 })

	// Fill the queue (depth 1), then overflow it.
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		resp, _ := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("queued solve: %d", resp.StatusCode)
		}
	}()
	waitFor(t, 10*time.Second, func() bool { return srv.metrics.queueDepth.Load() == 1 })

	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow solve: %d %s; want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
	if srv.metrics.rejections.Load() == 0 {
		t.Error("rejection not counted")
	}
	<-firstDone
	<-queuedDone
}

// TestSSEEvents subscribes to a session's event stream and checks a solve
// emits queued → start → done in order.
func TestSSEEvents(t *testing.T) {
	u := testUniverse(t, 30)
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, u, testProblemDoc())

	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	events := make(chan string, 64)
	go func() {
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			line := scanner.Text()
			if name, ok := strings.CutPrefix(line, "event: "); ok {
				events <- name
			}
		}
		close(events)
	}()

	if resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}

	var seen []string
	deadline := time.After(15 * time.Second)
	for len(seen) == 0 || seen[len(seen)-1] != "done" {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("event stream closed early; saw %v", seen)
			}
			seen = append(seen, ev)
		case <-deadline:
			t.Fatalf("no done event; saw %v", seen)
		}
	}
	if seen[0] != "queued" {
		t.Errorf("first event %q; want queued", seen[0])
	}
	gotStart := false
	for _, ev := range seen {
		if ev == "start" {
			gotStart = true
		}
	}
	if !gotStart {
		t.Errorf("no start event in %v", seen)
	}
}

// TestTTLEviction verifies idle sessions get evicted and active ones
// survive.
func TestTTLEviction(t *testing.T) {
	u := testUniverse(t, 30)
	srv, ts := newTestServer(t, Config{SessionTTL: 100 * time.Millisecond})
	id := createSession(t, ts.URL, u, testProblemDoc())

	waitFor(t, 10*time.Second, func() bool {
		return srv.metrics.sessionsEvicted.Load() == 1
	})
	if resp := getJSON(t, ts.URL+"/v1/sessions/"+id, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted session still answers: %d", resp.StatusCode)
	}
}

// TestDrain verifies the graceful-shutdown contract: in-flight solves
// finish and are answered; new work is refused with 503.
func TestDrain(t *testing.T) {
	u := testUniverse(t, 40)
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doc := testProblemDoc()
	doc.MaxEvals = 100000
	id := createSession(t, ts.URL, u, doc)

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{})
		inflight <- result{resp.StatusCode, body}
	}()
	waitFor(t, 10*time.Second, func() bool { return srv.metrics.inFlight.Load() == 1 })

	srv.BeginDrain()

	// New solves and sessions are refused while draining.
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("solve while draining: %d; want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions", createSessionRequest{Universe: u}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("create while draining: %d; want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d; want 503", resp.StatusCode)
	}

	// Shutdown waits for the in-flight solve, which completes normally.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	res := <-inflight
	if res.status != http.StatusOK {
		t.Fatalf("in-flight solve during drain: %d %s", res.status, res.body)
	}
}

// TestAuditLog verifies mutations land in the JSONL audit log in order.
func TestAuditLog(t *testing.T) {
	u := testUniverse(t, 30)
	var buf syncBuffer
	_, ts := newTestServer(t, Config{AuditWriter: &buf})
	id := createSession(t, ts.URL, u, testProblemDoc())
	if resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", solveRequest{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}

	var actions []string
	scanner := bufio.NewScanner(strings.NewReader(buf.String()))
	for scanner.Scan() {
		var e auditEntry
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			t.Fatalf("audit line %q: %v", scanner.Text(), err)
		}
		if e.TS == "" {
			t.Error("audit entry missing timestamp")
		}
		actions = append(actions, e.Action)
	}
	want := []string{"session.create", "solve.enqueue", "solve.apply", "solve.done"}
	if !reflect.DeepEqual(actions, want) {
		t.Errorf("audit actions %v; want %v", actions, want)
	}
}

// TestCreateSessionFromSchemas exercises the Figure 1 text-format path.
func TestCreateSessionFromSchemas(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	schemas := `s1.example.com: {title, author, year}
s2.example.com: {title, writer, price}
s3.example.com: {name, author, isbn}
`
	resp, body := postJSON(t, ts.URL+"/v1/sessions", createSessionRequest{Schemas: schemas})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create from schemas: %d %s", resp.StatusCode, body)
	}
	var info sessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Sources != 3 {
		t.Errorf("parsed %d sources; want 3", info.Sources)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/sessions/"+info.ID+"/solve", solveRequest{}); resp.StatusCode != http.StatusOK {
		t.Errorf("solve on parsed universe: %d %s", resp.StatusCode, body)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	//ube:nondeterministic-ok test polling deadline
	deadline := time.Now().Add(timeout)
	for !cond() {
		//ube:nondeterministic-ok test polling deadline
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for cross-goroutine audit
// capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
