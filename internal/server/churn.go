package server

// Universe mutation (churn) over HTTP: PATCH /v1/sessions/{id}/universe
// applies a batch of source additions, removals and metadata updates to
// a session's universe while the session keeps solving. Churn jobs ride
// the same per-session FIFO and work-token scheme as solves (queue.go),
// so a batch serializes against solves in admission order and the
// worker-only engine session still needs no locks.
//
// Durability ordering is the reverse of solves. A solve is applied first
// and logged after, with a full undo when the log refuses — possible
// because a solve's effects are an append the service can pop. Churn has
// no cheap inverse, so the job validates first (engine admissibility
// plus the session's pinned-source refusals), writes the WAL record,
// and only then applies — a batch that validated is guaranteed to
// apply, because planning is pure and the worker owns the session until
// the apply lands (engine.Session.CheckChurn). Recovery replays the
// logged request through the same Session.ApplyChurn path the live job
// took, which the engine's differential churn suite proves reproduces
// the incremental state bit-identically (durability.go).

import (
	"errors"
	"fmt"
	"net/http"

	"ube/internal/engine"
	"ube/internal/faultinject"
	"ube/internal/schemaio"
)

// churnResponse is the successful churn body: the batch ordinal
// (1-based), the post-batch universe size, and the pre-batch IDs of the
// sources the batch removed.
type churnResponse struct {
	Session string `json:"session"`
	Batch   int    `json:"batch"`
	Sources int    `json:"sources"`
	Removed []int  `json:"removed,omitempty"`
}

func (s *Server) handleChurn(w http.ResponseWriter, r *http.Request) {
	sn, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	raw, ok := readBody(w, r)
	if !ok {
		return
	}
	muts, err := schemaio.DecodeChurnRequestBytes(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canon, err := canonicalBody(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	job := &solveJob{
		raw:    canon,
		ctx:    r.Context(),
		remote: r.RemoteAddr,
		churn:  muts,
		done:   make(chan jobResult, 1),
	}
	switch err := s.enqueue(sn, job); {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", s.retryAfter())
		s.audit.record(sn.id, "churn.reject", r.RemoteAddr, map[string]any{"queueDepth": s.cfg.QueueDepth})
		writeError(w, http.StatusTooManyRequests, "solve queue is full (depth %d)", s.cfg.QueueDepth)
		return
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case errors.Is(err, errSessionGone):
		writeError(w, http.StatusGone, "session was deleted")
		return
	}
	s.audit.record(sn.id, "churn.enqueue", r.RemoteAddr, map[string]any{"mutations": len(muts)})
	select {
	case res := <-job.done:
		if res.retryAfter {
			w.Header().Set("Retry-After", s.retryAfter())
		}
		writeJSON(w, res.status, res.body)
	case <-r.Context().Done():
		// Client gone; the worker observes the dead context and discards
		// the job without us.
	}
}

// runChurnJob executes one admitted churn batch on the worker. Worker
// context: the session's work token is held, so the engine session and
// the universe are exclusively ours until we return.
func (s *Server) runChurnJob(sn *session, job *solveJob) {
	s.metrics.queueDepth.Add(-1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)
	defer s.jobsWG.Done()

	finished := false
	finish := func(status int, body any) {
		finished = true
		job.done <- jobResult{status: status, body: body}
	}
	finishRetry := func(status int, body any) {
		finished = true
		job.done <- jobResult{status: status, body: body, retryAfter: true}
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// Nothing was applied: the panic window (validation, the midway
		// fault) precedes both the WAL append and the commit, so the
		// session is exactly as the job found it. Counted under
		// churnErrors, not solvePanics — admitted churn batches reconcile
		// against the churn terminal counters, never the solve ones.
		s.metrics.churnErrors.Add(1)
		s.audit.record(sn.id, "churn.panic", job.remote, map[string]any{"panic": fmt.Sprint(r)})
		sn.hub.publish("error", map[string]any{"error": "internal error: churn panicked"})
		if !finished {
			finish(http.StatusInternalServerError, errorDoc{Error: "internal error: churn panicked"})
		}
	}()

	if job.ctx.Err() != nil {
		s.metrics.churnsCancelled.Add(1)
		s.audit.record(sn.id, "churn.cancelled", job.remote, map[string]any{"stage": "queued"})
		finish(statusClientClosedRequest, errorDoc{Error: "request cancelled before execution"})
		return
	}

	// Injected conflict: the batch reports a pinned-source refusal
	// regardless of its contents, exercising the 409 path
	// deterministically.
	if s.inj.Fire(faultinject.ChurnConflict) != nil {
		s.metrics.churnConflicts.Add(1)
		s.audit.record(sn.id, "churn.conflict", job.remote, map[string]any{"injected": true})
		finish(http.StatusConflict, errorDoc{Error: "churn conflicts with a pinned source (injected)"})
		return
	}

	// Validate before logging: a batch the WAL records must apply.
	if err := sn.sess.CheckChurn(job.churn); err != nil {
		var pinned *engine.PinnedSourceError
		if errors.As(err, &pinned) {
			s.metrics.churnConflicts.Add(1)
			s.audit.record(sn.id, "churn.conflict", job.remote, map[string]any{"source": pinned.ID, "constraint": pinned.Constraint})
			finish(http.StatusConflict, errorDoc{Error: err.Error()})
			return
		}
		s.metrics.churnErrors.Add(1)
		s.audit.record(sn.id, "churn.error", job.remote, map[string]any{"error": err.Error()})
		finish(http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}

	if s.inj.Fire(faultinject.ChurnMidway) != nil {
		panic("faultinject: churn.midway fired between validation and commit")
	}

	// Write-ahead before applying: a mutation the client hears about
	// must replay after a crash, and churn has no undo to lean on.
	sn.mu.Lock()
	batch := len(sn.churnDocs) + 1
	afterSolves := len(sn.historyDocs)
	sn.mu.Unlock()
	payload, err := schemaio.EncodeWALChurn(&schemaio.WALChurnDoc{Batch: batch, Request: job.raw})
	if err == nil {
		err = s.walAppend(schemaio.WALTypeChurn, sn.id, payload)
	}
	if err != nil {
		s.metrics.churnErrors.Add(1)
		s.audit.record(sn.id, "churn.error", job.remote, map[string]any{"error": err.Error()})
		sn.hub.publish("error", map[string]any{"error": "churn not durable"})
		finishRetry(http.StatusServiceUnavailable, errorDoc{Error: fmt.Sprintf("churn not durable: %v", err)})
		return
	}

	remap, err := sn.sess.ApplyChurn(job.churn)
	if err != nil {
		// CheckChurn admitted the batch and nothing else touched the
		// session since: this cannot happen, and guessing would desync
		// the live state from the already-durable record.
		panic(fmt.Sprintf("server: churn desync: validated batch failed to apply: %v", err))
	}
	var removed []int
	for id := 0; id < len(remap); id++ {
		if remap.Of(id) < 0 {
			removed = append(removed, id)
		}
	}
	if err := sn.refreshProblemDoc(); err != nil {
		panic(fmt.Sprintf("server: churn desync: repaired problem has no JSON form: %v", err))
	}
	if s.solveCache != nil {
		fp, err := universeFingerprint(sn.eng.Universe())
		if err != nil {
			panic(fmt.Sprintf("server: churn desync: mutated universe has no JSON form: %v", err))
		}
		sn.universeFP = fp
	}
	n := sn.eng.Universe().N()
	sn.mu.Lock()
	sn.churnDocs = append(sn.churnDocs, schemaio.SnapshotChurnDoc{AfterSolves: afterSolves, Request: job.raw})
	sn.sources = n
	sn.mu.Unlock()
	sn.touch()

	s.metrics.churns.Add(1)
	s.audit.record(sn.id, "churn.apply", job.remote, map[string]any{
		"batch":     batch,
		"mutations": len(job.churn),
		"sources":   n,
		"removed":   removed,
	})
	sn.hub.publish("churn", map[string]any{"batch": batch, "sources": n, "removed": removed})
	finish(http.StatusOK, &churnResponse{Session: sn.id, Batch: batch, Sources: n, Removed: removed})
}
