package server

import (
	"strconv"
	"sync/atomic"
	"time"

	"ube/internal/wal"
)

// latencyBucketsMs are the upper bounds (milliseconds, inclusive) of the
// fixed solve-latency histogram; the implicit final bucket is +Inf.
var latencyBucketsMs = [...]int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000}

// metrics is the server's operational counter set, served by /metrics.
// Everything is a plain atomic so the hot path (workers, handlers) never
// contends on a lock to count.
type metrics struct {
	sessionsCreated atomic.Int64
	sessionsActive  atomic.Int64
	sessionsEvicted atomic.Int64

	solvesAdmitted  atomic.Int64 // accepted into the admission queue
	solves          atomic.Int64 // completed successfully
	solveErrors     atomic.Int64 // engine/validation failures
	solvesCancelled atomic.Int64 // client gone, or cancelled mid-solve
	solvePanics     atomic.Int64 // worker panics recovered into 500s
	solveTimeouts   atomic.Int64 // per-solve deadline expiries (504s)
	rejections      atomic.Int64 // 429s from the admission queue

	churnsAdmitted  atomic.Int64 // churn batches accepted into the admission queue
	churns          atomic.Int64 // universe-mutation batches committed
	churnErrors     atomic.Int64 // churn batches refused (validation, durability, or a recovered panic)
	churnConflicts  atomic.Int64 // churn batches refused for pinned sources (409s)
	churnsCancelled atomic.Int64 // churn batches whose client vanished before execution

	queueDepth      atomic.Int64 // admitted, not yet executing
	inFlight        atomic.Int64 // executing right now
	auditDropped    atomic.Int64 // audit lines lost to sink write errors
	walAppendErrors atomic.Int64 // durability commits the server had to refuse

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64

	solveCacheHits      atomic.Int64 // solves answered by the cross-session memo
	solveCacheMisses    atomic.Int64 // solves that ran the engine and filled the memo
	solveCacheEvictions atomic.Int64 // memo entries dropped by the LRU bound

	tracesCaptured   atomic.Int64 // solves traced and retained in a session ring
	tracesSampledOut atomic.Int64 // solves not traced under the load sampling policy
	traceTick        atomic.Int64 // sampling counter (not exported)

	latencyCount   atomic.Int64
	latencySumNS   atomic.Int64
	latencyBuckets [len(latencyBucketsMs) + 1]atomic.Int64
}

// observeLatency records one solve's wall-clock duration.
func (m *metrics) observeLatency(d time.Duration) {
	m.latencyCount.Add(1)
	m.latencySumNS.Add(d.Nanoseconds())
	ms := d.Milliseconds()
	for i, le := range latencyBucketsMs {
		if ms <= le {
			m.latencyBuckets[i].Add(1)
			return
		}
	}
	m.latencyBuckets[len(latencyBucketsMs)].Add(1)
}

// bucketDoc is one histogram bucket in the /metrics JSON.
type bucketDoc struct {
	LE    string `json:"le"` // upper bound in ms, or "+Inf"
	Count int64  `json:"count"`
}

// metricsDoc is the /metrics response body.
type metricsDoc struct {
	SessionsCreated int64 `json:"sessionsCreated"`
	SessionsActive  int64 `json:"sessionsActive"`
	SessionsEvicted int64 `json:"sessionsEvicted"`

	SolvesAdmitted  int64 `json:"solvesAdmitted"`
	Solves          int64 `json:"solves"`
	SolveErrors     int64 `json:"solveErrors"`
	SolvesCancelled int64 `json:"solvesCancelled"`
	SolvePanics     int64 `json:"solvePanics"`
	SolveTimeouts   int64 `json:"solveTimeouts"`
	QueueRejections int64 `json:"queueRejections"`
	ChurnsAdmitted  int64 `json:"churnsAdmitted"`
	Churns          int64 `json:"churns"`
	ChurnErrors     int64 `json:"churnErrors"`
	ChurnConflicts  int64 `json:"churnConflicts"`
	ChurnsCancelled int64 `json:"churnsCancelled"`
	QueueDepth      int64 `json:"queueDepth"`
	InFlight        int64 `json:"inFlight"`
	AuditDropped    int64 `json:"auditLinesDropped"`

	MatchCacheHits      int64 `json:"matchCacheHits"`
	MatchCacheMisses    int64 `json:"matchCacheMisses"`
	MatchCacheEvictions int64 `json:"matchCacheEvictions"`

	SolveCacheHits      int64 `json:"solveCacheHits"`
	SolveCacheMisses    int64 `json:"solveCacheMisses"`
	SolveCacheEvictions int64 `json:"solveCacheEvictions"`

	TracesCaptured   int64 `json:"tracesCaptured"`
	TracesSampledOut int64 `json:"tracesSampledOut"`

	SolveLatency struct {
		Count   int64       `json:"count"`
		SumMs   float64     `json:"sumMs"`
		Buckets []bucketDoc `json:"buckets"`
	} `json:"solveLatencyMs"`

	// WAL carries the write-ahead log's counters when durability is on;
	// Recovery reports what startup recovery found (absent after a
	// fresh, empty start too — it is set whenever a WAL was opened).
	WAL      *walMetricsDoc `json:"wal,omitempty"`
	Recovery *recoveryDoc   `json:"walRecovery,omitempty"`
}

// walMetricsDoc is the wal.* section of /metrics: the log's own
// counters plus the commits the server refused because an append
// failed, and the group-commit flush-latency histogram.
type walMetricsDoc struct {
	Appends        uint64 `json:"appends"`
	AppendErrors   uint64 `json:"appendErrors"`
	CommitRefusals int64  `json:"commitRefusals"`
	Batches        uint64 `json:"batches"`
	Fsyncs         uint64 `json:"fsyncs"`
	FsyncStalls    uint64 `json:"fsyncStalls"`
	Rotations      uint64 `json:"rotations"`
	BytesWritten   uint64 `json:"bytesWritten"`
	LastSeq        uint64 `json:"lastSeq"`
	ActiveSegment  int    `json:"activeSegment"`
	ActiveBytes    int64  `json:"activeBytes"`

	FlushLatency struct {
		Buckets []bucketDoc `json:"buckets"`
	} `json:"flushLatencyMs"`
}

// metricsSnapshot renders /metrics: the counter snapshot plus, when
// durability is configured, the WAL's counters and the startup
// recovery report.
func (s *Server) metricsSnapshot() *metricsDoc {
	d := s.metrics.snapshot()
	d.Recovery = s.recovered
	if s.wal == nil {
		return d
	}
	st := s.wal.Stats()
	wd := &walMetricsDoc{
		Appends:        st.Appends,
		AppendErrors:   st.AppendErrors,
		CommitRefusals: s.metrics.walAppendErrors.Load(),
		Batches:        st.Batches,
		Fsyncs:         st.Fsyncs,
		FsyncStalls:    st.FsyncStalls,
		Rotations:      st.Rotations,
		BytesWritten:   st.BytesWritten,
		LastSeq:        st.LastSeq,
		ActiveSegment:  st.ActiveSegment,
		ActiveBytes:    st.ActiveBytes,
	}
	wd.FlushLatency.Buckets = make([]bucketDoc, 0, len(st.FlushLatency))
	cum := int64(0)
	for i, le := range wal.FlushLatencyBucketsMs {
		cum += int64(st.FlushLatency[i])
		wd.FlushLatency.Buckets = append(wd.FlushLatency.Buckets, bucketDoc{
			LE:    strconv.FormatFloat(le, 'g', -1, 64),
			Count: cum,
		})
	}
	cum += int64(st.FlushLatency[len(wal.FlushLatencyBucketsMs)])
	wd.FlushLatency.Buckets = append(wd.FlushLatency.Buckets, bucketDoc{LE: "+Inf", Count: cum})
	d.WAL = wd
	return d
}

// snapshot renders the counters for /metrics. Counters are read
// individually, so the snapshot is only loosely consistent — fine for
// monitoring, which is all it serves.
func (m *metrics) snapshot() *metricsDoc {
	d := &metricsDoc{
		SessionsCreated: m.sessionsCreated.Load(),
		SessionsActive:  m.sessionsActive.Load(),
		SessionsEvicted: m.sessionsEvicted.Load(),

		SolvesAdmitted:  m.solvesAdmitted.Load(),
		Solves:          m.solves.Load(),
		SolveErrors:     m.solveErrors.Load(),
		SolvesCancelled: m.solvesCancelled.Load(),
		SolvePanics:     m.solvePanics.Load(),
		SolveTimeouts:   m.solveTimeouts.Load(),
		QueueRejections: m.rejections.Load(),
		ChurnsAdmitted:  m.churnsAdmitted.Load(),
		Churns:          m.churns.Load(),
		ChurnErrors:     m.churnErrors.Load(),
		ChurnConflicts:  m.churnConflicts.Load(),
		ChurnsCancelled: m.churnsCancelled.Load(),
		QueueDepth:      m.queueDepth.Load(),
		InFlight:        m.inFlight.Load(),
		AuditDropped:    m.auditDropped.Load(),

		MatchCacheHits:      m.cacheHits.Load(),
		MatchCacheMisses:    m.cacheMisses.Load(),
		MatchCacheEvictions: m.cacheEvictions.Load(),

		SolveCacheHits:      m.solveCacheHits.Load(),
		SolveCacheMisses:    m.solveCacheMisses.Load(),
		SolveCacheEvictions: m.solveCacheEvictions.Load(),

		TracesCaptured:   m.tracesCaptured.Load(),
		TracesSampledOut: m.tracesSampledOut.Load(),
	}
	d.SolveLatency.Count = m.latencyCount.Load()
	d.SolveLatency.SumMs = float64(m.latencySumNS.Load()) / 1e6
	d.SolveLatency.Buckets = make([]bucketDoc, 0, len(latencyBucketsMs)+1)
	cum := int64(0)
	for i, le := range latencyBucketsMs {
		cum += m.latencyBuckets[i].Load()
		d.SolveLatency.Buckets = append(d.SolveLatency.Buckets, bucketDoc{LE: msLabel(le), Count: cum})
	}
	cum += m.latencyBuckets[len(latencyBucketsMs)].Load()
	d.SolveLatency.Buckets = append(d.SolveLatency.Buckets, bucketDoc{LE: "+Inf", Count: cum})
	return d
}

func msLabel(ms int64) string { return strconv.FormatInt(ms, 10) }
