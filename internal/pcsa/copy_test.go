package pcsa

import "testing"

func TestCopyFrom(t *testing.T) {
	src, err := New(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		src.AddUint64(i)
	}
	dst, err := New(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	//ube:float-exact identical bitmaps must estimate identically
	if dst.Estimate() != src.Estimate() {
		t.Errorf("copy estimates %v, source %v", dst.Estimate(), src.Estimate())
	}
	// The copy is independent: growing the source must not move the copy.
	before := dst.Estimate()
	for i := uint64(5000); i < 20000; i++ {
		src.AddUint64(i)
	}
	//ube:float-exact the copy's bitmaps are untouched by the source's growth
	if dst.Estimate() != before {
		t.Error("CopyFrom aliased the source's bitmaps")
	}

	other, err := New(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.CopyFrom(src); err == nil {
		t.Error("CopyFrom across nmaps did not error")
	}
	seeded, err := New(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := seeded.CopyFrom(src); err == nil {
		t.Error("CopyFrom across seeds did not error")
	}
}
