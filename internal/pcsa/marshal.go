package pcsa

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// The binary layout is: magic "PCSA", u32 nmaps, u64 seed, then nmaps
// little-endian u64 bitmap words.
var magic = [4]byte{'P', 'C', 'S', 'A'}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 4+4+8+8*len(s.maps))
	copy(buf[:4], magic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(s.nmaps))
	binary.LittleEndian.PutUint64(buf[8:16], s.seed)
	for i, w := range s.maps {
		binary.LittleEndian.PutUint64(buf[16+8*i:], w)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 16 || [4]byte(data[:4]) != magic {
		return fmt.Errorf("pcsa: bad sketch header")
	}
	nmaps := int(binary.LittleEndian.Uint32(data[4:8]))
	ns, err := New(nmaps, binary.LittleEndian.Uint64(data[8:16]))
	if err != nil {
		return err
	}
	if len(data) != 16+8*nmaps {
		return fmt.Errorf("pcsa: sketch payload is %d bytes, want %d", len(data), 16+8*nmaps)
	}
	for i := range ns.maps {
		ns.maps[i] = binary.LittleEndian.Uint64(data[16+8*i:])
	}
	*s = *ns
	return nil
}

// MarshalJSON encodes the sketch as a base64 string of its binary form, so
// signatures embed compactly in universe JSON files.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	b, err := s.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return json.Marshal(base64.StdEncoding.EncodeToString(b))
}

// UnmarshalJSON decodes the base64 form produced by MarshalJSON.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var enc string
	if err := json.Unmarshal(data, &enc); err != nil {
		return err
	}
	b, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return fmt.Errorf("pcsa: bad base64 sketch: %w", err)
	}
	return s.UnmarshalBinary(b)
}
