package pcsa

import (
	"math/rand"
	"testing"
)

// randomSketch builds a sketch over a random number of random tuples.
func randomSketch(rng *rand.Rand, nmaps int, seed uint64) *Sketch {
	s := MustNew(nmaps, seed)
	n := rng.Intn(2000)
	for i := 0; i < n; i++ {
		s.AddUint64(rng.Uint64())
	}
	return s
}

// TestUnionCounterDifferential drives a long random add/remove sequence
// and checks, after every step, that the maintained union is bit-identical
// to pcsa.Union over the surviving members.
func TestUnionCounterDifferential(t *testing.T) {
	const seed = 41
	rng := rand.New(rand.NewSource(seed))
	c := NewUnionCounter()
	var live []*Sketch
	for step := 0; step < 400; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			if err := c.Remove(live[i]); err != nil {
				t.Fatalf("seed %d step %d: remove: %v", seed, step, err)
			}
			live = append(live[:i], live[i+1:]...)
		} else {
			s := randomSketch(rng, 64, 7)
			if err := c.Add(s); err != nil {
				t.Fatalf("seed %d step %d: add: %v", seed, step, err)
			}
			live = append(live, s)
		}
		if c.Len() != len(live) {
			t.Fatalf("seed %d step %d: Len=%d want %d", seed, step, c.Len(), len(live))
		}
		if len(live) == 0 {
			if got := c.Sketch(); got != nil {
				t.Fatalf("seed %d step %d: empty counter returned non-nil sketch", seed, step)
			}
			if got := c.Estimate(); got != 0 {
				t.Fatalf("seed %d step %d: empty counter Estimate=%v want 0", seed, step, got)
			}
			continue
		}
		want, err := Union(live...)
		if err != nil {
			t.Fatalf("seed %d step %d: reference union: %v", seed, step, err)
		}
		got := c.Sketch()
		if got.Checksum() != want.Checksum() {
			t.Fatalf("seed %d step %d: counter sketch diverged from Union of survivors", seed, step)
		}
		if ge, we := c.Estimate(), want.Estimate(); ge != we {
			t.Fatalf("seed %d step %d: Estimate=%v want %v", seed, step, ge, we)
		}
	}
}

// TestUnionCounterAddRemoveNoOp: adding then removing the same sketch
// restores the exact prior state (the churn metamorphic property at the
// signature layer).
func TestUnionCounterAddRemoveNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewUnionCounter()
	a := randomSketch(rng, 32, 3)
	b := randomSketch(rng, 32, 3)
	if err := c.Add(a); err != nil {
		t.Fatal(err)
	}
	before := c.Sketch().Checksum()
	if err := c.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(b); err != nil {
		t.Fatal(err)
	}
	if got := c.Sketch().Checksum(); got != before {
		t.Fatalf("add-then-remove changed counter state: %x != %x", got, before)
	}
}

// TestUnionCounterErrors covers nil, incompatible and not-present refusals,
// and verifies a refused remove does not mutate the counter.
func TestUnionCounterErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewUnionCounter()
	if err := c.Add(nil); err == nil {
		t.Fatal("Add(nil) succeeded")
	}
	if err := c.Remove(nil); err == nil {
		t.Fatal("Remove(nil) succeeded")
	}
	if err := c.Remove(randomSketch(rng, 32, 3)); err == nil {
		t.Fatal("Remove from empty counter succeeded")
	}
	a := randomSketch(rng, 32, 3)
	if err := c.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(MustNew(64, 3)); err == nil {
		t.Fatal("Add of incompatible nmaps succeeded")
	}
	if err := c.Add(MustNew(32, 4)); err == nil {
		t.Fatal("Add of incompatible seed succeeded")
	}
	if err := c.Remove(MustNew(64, 3)); err == nil {
		t.Fatal("Remove of incompatible sketch succeeded")
	}
	before := c.Sketch().Checksum()
	// A sketch with bits the counter never saw: not-present refusal.
	foreign := MustNew(32, 3)
	for i := 0; i < 64; i++ {
		foreign.AddUint64(uint64(1_000_000 + i))
	}
	if err := c.Remove(foreign); err == nil {
		t.Fatal("Remove of never-added sketch succeeded")
	}
	if got := c.Sketch().Checksum(); got != before {
		t.Fatal("refused Remove mutated the counter")
	}
}

// TestUnionCounterReparameterize: draining the counter to empty lets a
// new population adopt different parameters.
func TestUnionCounterReparameterize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewUnionCounter()
	a := randomSketch(rng, 32, 1)
	if err := c.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(a); err != nil {
		t.Fatal(err)
	}
	b := randomSketch(rng, 128, 9)
	if err := c.Add(b); err != nil {
		t.Fatalf("re-parameterized Add after drain: %v", err)
	}
	got := c.Sketch()
	if got.NumMaps() != 128 || got.Seed() != 9 {
		t.Fatalf("counter kept stale parameters: nmaps=%d seed=%d", got.NumMaps(), got.Seed())
	}
	if got.Checksum() != b.Checksum() {
		t.Fatal("single-member union differs from the member")
	}
}
