package pcsa

import (
	"errors"
	"math/bits"
)

// A UnionCounter maintains the PCSA signature of a *changing* set of
// sketches. Where Union folds a fixed slice with bitwise OR, the counter
// keeps, per (bitmap, bit) position, the number of member sketches that
// have the bit set; a bit of the maintained union is set iff its count is
// non-zero. Add and Remove are therefore exact inverses, and after any
// sequence of them the maintained signature is bit-identical to
// Union(survivors...) — the property the engine's churn layer relies on
// for its differential tests.
//
// The zero value is ready to use: parameters (nmaps, seed) are adopted
// from the first sketch added and reset when the counter drains back to
// empty, so a fully turned-over population may switch parameters.
type UnionCounter struct {
	nmaps  int
	seed   uint64
	n      int      // member sketches currently included
	counts []uint32 // nmaps*wordBits per-bit membership counts
	maps   []uint64 // maintained union bitmap: bit set iff count > 0
}

// NewUnionCounter returns an empty counter. Parameters are adopted from
// the first Add.
func NewUnionCounter() *UnionCounter { return &UnionCounter{} }

// Len reports the number of member sketches currently included.
func (c *UnionCounter) Len() int { return c.n }

// compatible reports whether t may join the current population.
func (c *UnionCounter) compatible(t *Sketch) bool {
	return t != nil && (c.n == 0 || (c.nmaps == t.nmaps && c.seed == t.seed))
}

// Add includes one sketch in the maintained union. The first Add into an
// empty counter fixes the parameters; later Adds must match them.
func (c *UnionCounter) Add(t *Sketch) error {
	if t == nil {
		return errors.New("pcsa: add of nil sketch to union counter")
	}
	if !c.compatible(t) {
		return errors.New("pcsa: add of incompatible sketch to union counter")
	}
	if c.n == 0 {
		c.nmaps = t.nmaps
		c.seed = t.seed
		if len(c.counts) != t.nmaps*wordBits {
			c.counts = make([]uint32, t.nmaps*wordBits)
			c.maps = make([]uint64, t.nmaps)
		} else {
			for i := range c.counts {
				c.counts[i] = 0
			}
			for i := range c.maps {
				c.maps[i] = 0
			}
		}
	}
	for m, w := range t.maps {
		base := m * wordBits
		for w != 0 {
			b := w & (-w)
			bit := trailing(b)
			c.counts[base+bit]++
			c.maps[m] |= 1 << uint(bit)
			w &^= b
		}
	}
	c.n++
	return nil
}

// Remove excludes one previously added sketch. Removing a sketch that is
// not a member is detected (some bit's count would underflow) and refused
// without mutating the counter.
func (c *UnionCounter) Remove(t *Sketch) error {
	if t == nil {
		return errors.New("pcsa: remove of nil sketch from union counter")
	}
	if c.n == 0 || c.nmaps != t.nmaps || c.seed != t.seed {
		return errors.New("pcsa: remove of incompatible sketch from union counter")
	}
	// Verify first so a refused remove leaves the counter untouched.
	for m, w := range t.maps {
		base := m * wordBits
		for w != 0 {
			b := w & (-w)
			if c.counts[base+trailing(b)] == 0 {
				return errors.New("pcsa: remove of sketch not present in union counter")
			}
			w &^= b
		}
	}
	for m, w := range t.maps {
		base := m * wordBits
		for w != 0 {
			b := w & (-w)
			bit := trailing(b)
			c.counts[base+bit]--
			if c.counts[base+bit] == 0 {
				c.maps[m] &^= 1 << uint(bit)
			}
			w &^= b
		}
	}
	c.n--
	if c.n == 0 {
		// Drained: forget the parameters so a new population may adopt
		// different ones (mirrors Universe.Validate's pairwise rule).
		c.nmaps = 0
		c.seed = 0
	}
	return nil
}

// Sketch returns an independent sketch holding the maintained union, or
// nil when the counter has no members (an empty counter has no
// parameters to build a sketch with).
func (c *UnionCounter) Sketch() *Sketch {
	if c.n == 0 {
		return nil
	}
	s := MustNew(c.nmaps, c.seed)
	copy(s.maps, c.maps)
	return s
}

// Estimate returns the PCSA estimate over the maintained union, 0 when
// empty. It is bit-equal to Union(survivors...).Estimate().
func (c *UnionCounter) Estimate() float64 {
	if c.n == 0 {
		return 0
	}
	s := Sketch{nmaps: c.nmaps, seed: c.seed, maps: c.maps}
	return s.Estimate()
}

// trailing is the bit index of a value with exactly one bit set
// (w & -w of a non-zero word).
func trailing(b uint64) int { return bits.TrailingZeros64(b) }
