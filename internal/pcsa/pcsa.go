// Package pcsa implements Probabilistic Counting with Stochastic Averaging
// (Flajolet & Martin, JCSS 1985), the distinct-count sketch µBE uses to
// estimate the cardinality of unions of data sources without accessing
// their data (paper §4).
//
// Each data source computes a small hash signature (a Sketch) over its
// tuples once. µBE caches these signatures; the cardinality of the union of
// any set of sources is then estimated by bitwise-ORing their signatures
// and running the PCSA estimator on the result. The OR of PCSA signatures
// is exactly the PCSA signature of the union of the underlying multisets,
// so union estimation needs no data access at all.
package pcsa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"

	"ube/internal/ubedebug"
)

// phi is the Flajolet–Martin magic constant 0.77351...: the expected value
// of 2^R for a bitmap that observed n distinct values is ~ phi*n.
const phi = 0.7735162909

// kappa drives the small-range bias correction E = m/phi*(2^A - 2^(-kappa*A)).
// The correction (Scheuermann & Mauve's refinement of the FM estimator)
// removes the systematic overestimate when n is small relative to the
// number of bitmaps; it vanishes exponentially as A grows.
const kappa = 1.75

// wordBits is the length of each FM bitmap. 64 bits supports distinct
// counts far beyond any realistic source (2^64 / nmaps).
const wordBits = 64

// A Sketch is a PCSA signature: nmaps FM bitmaps of 64 bits each, filled by
// stochastic averaging. The zero value is unusable; construct with New.
//
// Two sketches are compatible (can be unioned or compared) iff they were
// created with the same nmaps and seed.
type Sketch struct {
	nmaps int
	seed  uint64
	shift uint // log2(nmaps)
	maps  []uint64
}

// DefaultMaps is the default number of bitmaps. The standard error of PCSA
// is about 0.78/sqrt(nmaps); 256 maps gives ~4.9%, comfortably inside the
// 7% worst-case error the paper reports, at a cost of 2 KiB per source —
// "a few bytes or kilobytes" as §4 promises.
const DefaultMaps = 256

// New returns an empty sketch with the given number of bitmaps, which must
// be a power of two in [1, 65536]. Seed 0 is a valid seed; sources that
// should be union-compatible must share both parameters.
func New(nmaps int, seed uint64) (*Sketch, error) {
	if nmaps < 1 || nmaps > 1<<16 || nmaps&(nmaps-1) != 0 {
		return nil, fmt.Errorf("pcsa: nmaps must be a power of two in [1,65536], got %d", nmaps)
	}
	return &Sketch{
		nmaps: nmaps,
		seed:  seed,
		shift: uint(bits.TrailingZeros(uint(nmaps))),
		maps:  make([]uint64, nmaps),
	}, nil
}

// MustNew is New for parameters known to be valid; it panics otherwise.
func MustNew(nmaps int, seed uint64) *Sketch {
	s, err := New(nmaps, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// NumMaps reports the number of FM bitmaps.
func (s *Sketch) NumMaps() int { return s.nmaps }

// Seed reports the hash seed the sketch was created with.
func (s *Sketch) Seed() uint64 { return s.seed }

// SizeBytes reports the in-memory size of the signature payload.
func (s *Sketch) SizeBytes() int { return s.nmaps * 8 }

// splitmix64 is a strong 64-bit finalizer/mixer (Vigna). It is used both to
// mix the seed into raw hashes and to hash integer tuple IDs directly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AddHash records one tuple given its 64-bit content hash. Duplicate tuples
// (equal hashes) are absorbed: a sketch depends only on the set of distinct
// hashes it has seen, never on multiplicity or order.
func (s *Sketch) AddHash(h uint64) {
	h = splitmix64(h ^ s.seed)
	bucket := h & uint64(s.nmaps-1)
	rest := h >> s.shift
	rho := uint(wordBits - 1)
	if rest != 0 {
		rho = uint(bits.TrailingZeros64(rest))
		if rho > wordBits-1 {
			rho = wordBits - 1
		}
	}
	if ubedebug.Enabled {
		ubedebug.Assert(bucket < uint64(s.nmaps), "pcsa: bucket %d out of range for %d maps", bucket, s.nmaps)
		ubedebug.Assert(rho < wordBits, "pcsa: rho %d exceeds bitmap width %d", rho, wordBits)
	}
	s.maps[bucket] |= 1 << rho
}

// AddUint64 records an integer-identified tuple (e.g. a synthetic tuple ID).
func (s *Sketch) AddUint64(id uint64) { s.AddHash(splitmix64(id)) }

// AddTuple records a tuple given as a sequence of field strings, hashing it
// with FNV-1a. Field boundaries are significant: ("ab","c") and ("a","bc")
// hash differently.
func (s *Sketch) AddTuple(fields ...string) {
	h := fnv.New64a()
	var sep [1]byte
	for i, f := range fields {
		if i > 0 {
			sep[0] = 0
			h.Write(sep[:])
		}
		// Field lengths are encoded so boundaries can't alias.
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(f)))
		h.Write(lenBuf[:])
		h.Write([]byte(f))
	}
	s.AddHash(h.Sum64())
}

// Compatible reports whether two sketches share parameters and may be
// unioned or compared.
func (s *Sketch) Compatible(t *Sketch) bool {
	return t != nil && s.nmaps == t.nmaps && s.seed == t.seed
}

// UnionInto ORs t into s, making s the signature of the union of both
// underlying tuple sets. It returns an error on incompatible parameters.
func (s *Sketch) UnionInto(t *Sketch) error {
	if !s.Compatible(t) {
		return errors.New("pcsa: union of incompatible sketches")
	}
	for i, w := range t.maps {
		s.maps[i] |= w
	}
	return nil
}

// Union returns the signature of the union of all the given sketches. It
// returns an error if the slice is empty or the sketches are incompatible.
func Union(sketches ...*Sketch) (*Sketch, error) {
	if len(sketches) == 0 {
		return nil, errors.New("pcsa: union of no sketches")
	}
	u := sketches[0].Clone()
	for _, t := range sketches[1:] {
		if err := u.UnionInto(t); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// CopyFrom overwrites s's bitmaps with t's, making s an independent copy
// of t's observations without allocating. It returns an error on
// incompatible parameters. Together with UnionInto this supports
// incremental union estimation: copy a cached base union into a scratch
// sketch, OR one more signature in, estimate.
func (s *Sketch) CopyFrom(t *Sketch) error {
	if !s.Compatible(t) {
		return errors.New("pcsa: copy from incompatible sketch")
	}
	copy(s.maps, t.maps)
	return nil
}

// Checksum folds the sketch's parameters and bitmap payload into one
// 64-bit value. Equal checksums for unequal sketches are possible but
// vanishingly unlikely; the ubedebug snapshot-immutability audit uses it
// to detect mutation of state that is contractually frozen.
func (s *Sketch) Checksum() uint64 {
	h := splitmix64(uint64(s.nmaps)<<32 ^ s.seed)
	for _, w := range s.maps {
		h = splitmix64(h ^ w)
	}
	return h
}

// Clone returns an independent copy of s.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.maps = make([]uint64, len(s.maps))
	copy(c.maps, s.maps)
	return &c
}

// Reset clears the sketch to empty.
func (s *Sketch) Reset() {
	for i := range s.maps {
		s.maps[i] = 0
	}
}

// Empty reports whether the sketch has seen no tuples.
func (s *Sketch) Empty() bool {
	for _, w := range s.maps {
		if w != 0 {
			return false
		}
	}
	return true
}

// Estimate returns the PCSA estimate of the number of distinct tuples the
// sketch has observed: (m/phi) * (2^A - 2^(-kappa*A)) where A is the mean,
// over the m bitmaps, of the position of the lowest unset bit.
func (s *Sketch) Estimate() float64 {
	if s.Empty() {
		return 0
	}
	sum := 0
	for _, w := range s.maps {
		sum += lowestZero(w)
	}
	a := float64(sum) / float64(s.nmaps)
	e := float64(s.nmaps) / phi * (math.Pow(2, a) - math.Pow(2, -kappa*a))
	if e < 0 {
		return 0
	}
	return e
}

// EstimateInt returns Estimate rounded to the nearest integer.
func (s *Sketch) EstimateInt() int64 { return int64(math.Round(s.Estimate())) }

// lowestZero returns the index of the least-significant zero bit of w
// (the FM statistic R for one bitmap).
func lowestZero(w uint64) int {
	return bits.TrailingZeros64(^w)
}
