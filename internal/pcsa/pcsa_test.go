package pcsa

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 6, 100, 1 << 17} {
		if _, err := New(bad, 0); err == nil {
			t.Errorf("New(%d) should fail", bad)
		}
	}
	for _, good := range []int{1, 2, 64, 256, 1 << 16} {
		s, err := New(good, 7)
		if err != nil {
			t.Errorf("New(%d) failed: %v", good, err)
			continue
		}
		if s.NumMaps() != good || s.Seed() != 7 {
			t.Errorf("New(%d) params wrong: %d maps seed %d", good, s.NumMaps(), s.Seed())
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(3,0) should panic")
		}
	}()
	MustNew(3, 0)
}

func TestEmptyAndReset(t *testing.T) {
	s := MustNew(64, 0)
	if !s.Empty() || s.Estimate() != 0 || s.EstimateInt() != 0 {
		t.Error("fresh sketch should be empty with estimate 0")
	}
	s.AddUint64(42)
	if s.Empty() {
		t.Error("sketch with data should not be empty")
	}
	s.Reset()
	if !s.Empty() {
		t.Error("Reset should empty the sketch")
	}
}

// estimateError runs n distinct IDs through a sketch and returns the
// relative estimation error.
func estimateError(t *testing.T, nmaps, n int, seed uint64) float64 {
	t.Helper()
	s := MustNew(nmaps, seed)
	for i := 0; i < n; i++ {
		s.AddUint64(uint64(i) + seed*1e9)
	}
	return math.Abs(s.Estimate()-float64(n)) / float64(n)
}

func TestEstimateAccuracy(t *testing.T) {
	// With 256 maps the standard error is ~4.9%; across a few magnitudes
	// and seeds the error should stay well inside 15% (3 sigma) and the
	// paper's reported 7% typical worst case should be approached.
	worst := 0.0
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		for seed := uint64(1); seed <= 3; seed++ {
			e := estimateError(t, DefaultMaps, n, seed)
			if e > worst {
				worst = e
			}
			if e > 0.15 {
				t.Errorf("n=%d seed=%d: error %.1f%% exceeds 15%%", n, seed, e*100)
			}
		}
	}
	t.Logf("worst-case relative error across runs: %.2f%%", worst*100)
}

func TestEstimateSmallCardinalities(t *testing.T) {
	// The small-range correction must keep low counts sane (within 50%
	// down to a handful of elements; PCSA is weakest here).
	for _, n := range []int{32, 64, 128, 256, 512} {
		s := MustNew(64, 9)
		for i := 0; i < n; i++ {
			s.AddUint64(uint64(i))
		}
		e := s.Estimate()
		if e < float64(n)*0.5 || e > float64(n)*1.5 {
			t.Errorf("n=%d: estimate %.0f out of [%d/2, %d*1.5]", n, e, n, n)
		}
	}
}

func TestDuplicatesAbsorbed(t *testing.T) {
	a, b := MustNew(64, 0), MustNew(64, 0)
	for i := 0; i < 1000; i++ {
		a.AddUint64(uint64(i % 100))
		b.AddUint64(uint64(i % 100))
		b.AddUint64(uint64(i % 100)) // extra duplicates
	}
	if a.Estimate() != b.Estimate() {
		t.Error("duplicate insertions must not change the sketch")
	}
}

func TestOrderIndependence(t *testing.T) {
	prop := func(ids []uint64) bool {
		a, b := MustNew(32, 1), MustNew(32, 1)
		for _, id := range ids {
			a.AddHash(id)
		}
		for i := len(ids) - 1; i >= 0; i-- {
			b.AddHash(ids[i])
		}
		return a.Estimate() == b.Estimate()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnionEqualsCombinedStream(t *testing.T) {
	// The signature of the union must equal the OR of the signatures:
	// building one sketch from both streams gives bit-identical maps.
	a, b := MustNew(128, 5), MustNew(128, 5)
	both := MustNew(128, 5)
	for i := 0; i < 5000; i++ {
		a.AddUint64(uint64(i))
		both.AddUint64(uint64(i))
	}
	for i := 2500; i < 8000; i++ {
		b.AddUint64(uint64(i))
		both.AddUint64(uint64(i))
	}
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Estimate() != both.Estimate() {
		t.Errorf("union estimate %v != combined stream estimate %v", u.Estimate(), both.Estimate())
	}
	// And the estimate should be near the true 8000 distinct.
	if e := math.Abs(u.Estimate()-8000) / 8000; e > 0.2 {
		t.Errorf("union estimate off by %.1f%%", e*100)
	}
}

func TestUnionProperties(t *testing.T) {
	mk := func(ids []uint64) *Sketch {
		s := MustNew(32, 3)
		for _, id := range ids {
			s.AddHash(id)
		}
		return s
	}
	// Union is commutative, associative and idempotent (it is bitwise OR).
	prop := func(x, y, z []uint64) bool {
		a, b, c := mk(x), mk(y), mk(z)
		ab, _ := Union(a, b)
		ba, _ := Union(b, a)
		abc1, _ := Union(ab, c)
		bc, _ := Union(b, c)
		abc2, _ := Union(a, bc)
		aa, _ := Union(a, a)
		return ab.Estimate() == ba.Estimate() &&
			abc1.Estimate() == abc2.Estimate() &&
			aa.Estimate() == a.Estimate()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnionErrors(t *testing.T) {
	if _, err := Union(); err == nil {
		t.Error("Union of nothing should fail")
	}
	a := MustNew(64, 0)
	b := MustNew(128, 0)
	c := MustNew(64, 1)
	if err := a.UnionInto(b); err == nil {
		t.Error("union across nmaps should fail")
	}
	if err := a.UnionInto(c); err == nil {
		t.Error("union across seeds should fail")
	}
	if err := a.UnionInto(nil); err == nil {
		t.Error("union with nil should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustNew(64, 0)
	a.AddUint64(1)
	c := a.Clone()
	c.AddUint64(999999)
	if a.Estimate() == c.Estimate() {
		t.Error("mutating a clone must not affect the original")
	}
}

func TestAddTupleFieldBoundaries(t *testing.T) {
	a, b := MustNew(64, 0), MustNew(64, 0)
	a.AddTuple("ab", "c")
	b.AddTuple("a", "bc")
	if a.maps[0] == b.maps[0] && a.Estimate() == b.Estimate() {
		// The sketches could coincide only through a 64-bit hash
		// collision, which this fixed input does not produce.
		t.Error("field boundaries must affect the tuple hash")
	}
	c, d := MustNew(64, 0), MustNew(64, 0)
	c.AddTuple("x", "y")
	d.AddTuple("x", "y")
	if c.Estimate() != d.Estimate() {
		t.Error("equal tuples must hash identically")
	}
}

func TestMonotoneGrowth(t *testing.T) {
	// Estimates must be monotone nondecreasing as distinct items stream in.
	s := MustNew(256, 11)
	prev := 0.0
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		for j := 0; j < 500; j++ {
			s.AddUint64(r.Uint64())
		}
		e := s.Estimate()
		if e < prev {
			t.Fatalf("estimate decreased: %v -> %v at batch %d", prev, e, i)
		}
		prev = e
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := MustNew(128, 42)
	for i := 0; i < 10000; i++ {
		s.AddUint64(uint64(i))
	}
	bin, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := back.UnmarshalBinary(bin); err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != s.Estimate() || back.NumMaps() != 128 || back.Seed() != 42 {
		t.Error("binary round trip lost data")
	}

	js, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back2 Sketch
	if err := json.Unmarshal(js, &back2); err != nil {
		t.Fatal(err)
	}
	if back2.Estimate() != s.Estimate() {
		t.Error("JSON round trip lost data")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var s Sketch
	if err := s.UnmarshalBinary(nil); err == nil {
		t.Error("nil payload should fail")
	}
	if err := s.UnmarshalBinary([]byte("XXXX0123456789ab")); err == nil {
		t.Error("bad magic should fail")
	}
	good := MustNew(64, 0)
	bin, _ := good.MarshalBinary()
	if err := s.UnmarshalBinary(bin[:len(bin)-1]); err == nil {
		t.Error("truncated payload should fail")
	}
	if err := s.UnmarshalJSON([]byte(`"not-base64!!"`)); err == nil {
		t.Error("bad base64 should fail")
	}
	if err := s.UnmarshalJSON([]byte(`123`)); err == nil {
		t.Error("non-string JSON should fail")
	}
}

func TestExactCounter(t *testing.T) {
	e := NewExact()
	for i := 0; i < 1000; i++ {
		e.AddUint64(uint64(i % 250))
	}
	if e.Count() != 250 {
		t.Errorf("Exact.Count = %d, want 250", e.Count())
	}
	o := NewExact()
	o.AddUint64(9999)
	e.UnionInto(o)
	if e.Count() != 251 {
		t.Errorf("after union Count = %d, want 251", e.Count())
	}
}

func TestDenseSet(t *testing.T) {
	d := NewDenseSet(1000)
	if d.Cap() != 1000 {
		t.Errorf("Cap = %d", d.Cap())
	}
	for i := 0; i < 1000; i += 3 {
		d.Add(i)
	}
	want := int64((1000 + 2) / 3)
	if d.Count() != want {
		t.Errorf("Count = %d, want %d", d.Count(), want)
	}
	if !d.Has(3) || d.Has(4) {
		t.Error("Has is wrong")
	}
	d.Add(3) // idempotent
	if d.Count() != want {
		t.Error("duplicate Add changed the count")
	}
	d.Reset()
	if d.Count() != 0 || d.Has(3) {
		t.Error("Reset failed")
	}
}

func TestDenseSetMatchesExact(t *testing.T) {
	prop := func(raw []uint16) bool {
		d := NewDenseSet(1 << 16)
		e := map[int]bool{}
		for _, r := range raw {
			d.Add(int(r))
			e[int(r)] = true
		}
		return d.Count() == int64(len(e))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytes(t *testing.T) {
	if got := MustNew(256, 0).SizeBytes(); got != 2048 {
		t.Errorf("SizeBytes = %d, want 2048", got)
	}
}
