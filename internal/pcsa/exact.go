package pcsa

import "math/bits"

// Exact is an exact distinct counter over 64-bit tuple hashes, used as
// ground truth when validating sketch accuracy (the paper reports a worst
// case PCSA error of 7% against exact counting, §7.3).
type Exact struct {
	seen map[uint64]struct{}
}

// NewExact returns an empty exact counter.
func NewExact() *Exact {
	return &Exact{seen: make(map[uint64]struct{})}
}

// AddHash records one tuple hash.
func (e *Exact) AddHash(h uint64) { e.seen[h] = struct{}{} }

// AddUint64 records an integer tuple ID using the same derivation as
// Sketch.AddUint64 so the two counters observe identical hash streams.
func (e *Exact) AddUint64(id uint64) { e.AddHash(splitmix64(id)) }

// Count returns the exact number of distinct tuples recorded.
func (e *Exact) Count() int64 { return int64(len(e.seen)) }

// UnionInto merges another exact counter into e.
func (e *Exact) UnionInto(o *Exact) {
	//ube:nondeterministic-ok set union: inserting members in any order yields the same set
	for h := range o.seen {
		e.seen[h] = struct{}{}
	}
}

// DenseSet is an exact distinct counter for tuple IDs drawn from a dense
// range [0, n). It is the memory-efficient ground truth for the synthetic
// workload of §7.1, whose tuples are IDs into a 4,000,000-element pool:
// a DenseSet over the full pool costs 500 KiB regardless of how many
// sources stream into it.
type DenseSet struct {
	words []uint64
	n     int
}

// NewDenseSet returns an empty set over the ID range [0, n).
func NewDenseSet(n int) *DenseSet {
	return &DenseSet{words: make([]uint64, (n+63)/64), n: n}
}

// Add records ID id. IDs outside [0, n) panic: the synthetic generator is
// the only producer and an out-of-range ID is a bug, not data.
func (d *DenseSet) Add(id int) {
	d.words[id>>6] |= 1 << (uint(id) & 63)
}

// Has reports whether id has been added.
func (d *DenseSet) Has(id int) bool {
	return d.words[id>>6]&(1<<(uint(id)&63)) != 0
}

// Count returns the number of distinct IDs added.
func (d *DenseSet) Count() int64 {
	var c int64
	for _, w := range d.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// Reset clears the set for reuse without reallocating.
func (d *DenseSet) Reset() {
	for i := range d.words {
		d.words[i] = 0
	}
}

// Cap returns the size n of the ID range the set covers.
func (d *DenseSet) Cap() int { return d.n }
