package pcsa

import (
	"bytes"
	"math"
	"testing"
)

// FuzzPCSAMarshalRoundTrip checks the binary codec on arbitrary input:
// anything UnmarshalBinary accepts must re-marshal to the exact input
// bytes (the format is canonical — the header fixes nmaps and the
// payload length is enforced exactly), estimate to a finite non-negative
// count, and survive a second round trip as a compatible equal sketch.
func FuzzPCSAMarshalRoundTrip(f *testing.F) {
	// Seed with real sketches: empty, small, default-size, saturated.
	for _, seed := range []struct {
		nmaps int
		seed  uint64
		n     int
	}{
		{1, 0, 0}, {8, 7, 5}, {64, 42, 1000}, {DefaultMaps, 0, 100000},
	} {
		s := MustNew(seed.nmaps, seed.seed)
		for i := 0; i < seed.n; i++ {
			s.AddUint64(uint64(i))
		}
		b, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// And with near-misses: truncated header, bad magic, wrong length.
	f.Add([]byte("PCSA"))
	f.Add([]byte("PCSB\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(bytes.Repeat([]byte{0xff}, 17))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sketch
		if err := s.UnmarshalBinary(data); err != nil {
			return // rejected input: nothing more to hold
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal after successful unmarshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not canonical:\n in  %x\n out %x", data, out)
		}
		e := s.Estimate()
		if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			t.Fatalf("estimate %v from accepted payload %x", e, data)
		}
		var s2 Sketch
		if err := s2.UnmarshalBinary(out); err != nil {
			t.Fatalf("second unmarshal rejected own output: %v", err)
		}
		if !s.Compatible(&s2) || s.Checksum() != s2.Checksum() {
			t.Fatal("second round trip changed the sketch")
		}
	})
}
