package eval

import (
	"testing"

	"ube/internal/model"
	"ube/internal/synth"
)

// mkTruth builds a ground truth where source s, attr a expresses the
// concept given by the layout matrix (JunkConcept for junk).
func mkTruth(layout [][]int) *synth.Truth {
	t := &synth.Truth{
		ConceptOf:    make(map[model.AttrRef]int),
		ConceptNames: synth.ConceptNames(),
	}
	for s, attrs := range layout {
		for a, c := range attrs {
			t.ConceptOf[model.AttrRef{Source: s, Attr: a}] = c
		}
	}
	return t
}

func ga(refs ...[2]int) model.GA {
	out := make([]model.AttrRef, len(refs))
	for i, r := range refs {
		out[i] = model.AttrRef{Source: r[0], Attr: r[1]}
	}
	return model.NewGA(out...)
}

func TestEvaluateHappyPath(t *testing.T) {
	// Sources 0,1,2: concept 0 (title) everywhere, concept 1 (author) in
	// 0 and 1, junk in source 2.
	truth := mkTruth([][]int{
		{0, 1},
		{0, 1},
		{0, synth.JunkConcept},
	})
	schema := &model.MediatedSchema{GAs: []model.GA{
		ga([2]int{0, 0}, [2]int{1, 0}, [2]int{2, 0}), // pure title
		ga([2]int{0, 1}, [2]int{1, 1}),               // pure author
	}}
	r := Evaluate(truth, []int{0, 1, 2}, schema)
	if r.TrueGAs != 2 || r.TrueGAClusters != 2 {
		t.Errorf("TrueGAs = %d/%d, want 2/2", r.TrueGAs, r.TrueGAClusters)
	}
	if r.AttrsInTrueGAs != 5 {
		t.Errorf("AttrsInTrueGAs = %d, want 5", r.AttrsInTrueGAs)
	}
	if r.FalseGAs != 0 || r.JunkGAs != 0 || r.MissedGAs != 0 {
		t.Errorf("false/junk/missed = %d/%d/%d, want 0", r.FalseGAs, r.JunkGAs, r.MissedGAs)
	}
	if !r.ConceptFound[0] || !r.ConceptFound[1] || r.ConceptFound[2] {
		t.Error("ConceptFound wrong")
	}
	if r.SourcesSelected != 3 {
		t.Errorf("SourcesSelected = %d", r.SourcesSelected)
	}
}

func TestEvaluateMissedConcept(t *testing.T) {
	// Concept 3 present in two chosen sources but not matched.
	truth := mkTruth([][]int{
		{0, 3},
		{0, 3},
	})
	schema := &model.MediatedSchema{GAs: []model.GA{
		ga([2]int{0, 0}, [2]int{1, 0}),
	}}
	r := Evaluate(truth, []int{0, 1}, schema)
	if r.TrueGAs != 1 || r.MissedGAs != 1 {
		t.Errorf("true/missed = %d/%d, want 1/1", r.TrueGAs, r.MissedGAs)
	}
	if !r.ConceptPresent[3] || r.ConceptFound[3] {
		t.Error("concept 3 should be present but not found")
	}
}

func TestEvaluateConceptInOneSourceNotMissed(t *testing.T) {
	// A concept appearing in only one chosen source cannot form a GA and
	// must not count as missed.
	truth := mkTruth([][]int{
		{0, 5},
		{0},
	})
	schema := &model.MediatedSchema{GAs: []model.GA{
		ga([2]int{0, 0}, [2]int{1, 0}),
	}}
	r := Evaluate(truth, []int{0, 1}, schema)
	if r.MissedGAs != 0 {
		t.Errorf("MissedGAs = %d, want 0", r.MissedGAs)
	}
	if r.ConceptPresent[5] {
		t.Error("single-source concept should not be 'present'")
	}
}

func TestEvaluateFalseAndJunkGAs(t *testing.T) {
	truth := mkTruth([][]int{
		{0, 1, synth.JunkConcept},
		{0, 1, synth.JunkConcept},
	})
	schema := &model.MediatedSchema{GAs: []model.GA{
		ga([2]int{0, 0}, [2]int{1, 1}), // mixes concepts 0 and 1
		ga([2]int{0, 2}, [2]int{1, 2}), // junk only
		ga([2]int{0, 1}, [2]int{1, 2}), // concept + junk = false
	}}
	r := Evaluate(truth, []int{0, 1}, schema)
	if r.FalseGAs != 2 {
		t.Errorf("FalseGAs = %d, want 2", r.FalseGAs)
	}
	if r.JunkGAs != 1 {
		t.Errorf("JunkGAs = %d, want 1", r.JunkGAs)
	}
	if r.TrueGAs != 0 {
		t.Errorf("TrueGAs = %d, want 0", r.TrueGAs)
	}
}

func TestEvaluateSplitConcept(t *testing.T) {
	// One concept split into two pure clusters: 1 true concept, 2 pure
	// clusters, no miss.
	truth := mkTruth([][]int{
		{2}, {2}, {2}, {2},
	})
	schema := &model.MediatedSchema{GAs: []model.GA{
		ga([2]int{0, 0}, [2]int{1, 0}),
		ga([2]int{2, 0}, [2]int{3, 0}),
	}}
	r := Evaluate(truth, []int{0, 1, 2, 3}, schema)
	if r.TrueGAs != 1 || r.TrueGAClusters != 2 {
		t.Errorf("TrueGAs = %d, clusters = %d; want 1, 2", r.TrueGAs, r.TrueGAClusters)
	}
	if r.MissedGAs != 0 {
		t.Errorf("MissedGAs = %d, want 0", r.MissedGAs)
	}
	if r.AttrsInTrueGAs != 4 {
		t.Errorf("AttrsInTrueGAs = %d, want 4", r.AttrsInTrueGAs)
	}
}

func TestEvaluateNilSchema(t *testing.T) {
	truth := mkTruth([][]int{{0}, {0}})
	r := Evaluate(truth, []int{0, 1}, nil)
	if r.TrueGAs != 0 || r.MissedGAs != 1 {
		t.Errorf("nil schema: true=%d missed=%d, want 0/1", r.TrueGAs, r.MissedGAs)
	}
}

func TestEvaluateIgnoresUnchosenSources(t *testing.T) {
	// Concept 4 lives in sources 2 and 3, which are NOT selected: it is
	// neither present nor missed.
	truth := mkTruth([][]int{
		{0}, {0}, {4}, {4},
	})
	schema := &model.MediatedSchema{GAs: []model.GA{
		ga([2]int{0, 0}, [2]int{1, 0}),
	}}
	r := Evaluate(truth, []int{0, 1}, schema)
	if r.ConceptPresent[4] || r.MissedGAs != 0 {
		t.Errorf("unchosen sources leaked into presence: %+v", r)
	}
}

func TestEvaluateEndToEndWithSynth(t *testing.T) {
	// Smoke: real generator output evaluates without anomalies.
	cfg := synth.QuickConfig(40)
	cfg.WithSignatures = false
	_, truth, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	S := []int{0, 1, 2, 3, 4}
	r := Evaluate(truth, S, nil)
	if r.SourcesSelected != 5 {
		t.Errorf("SourcesSelected = %d", r.SourcesSelected)
	}
	// Core concepts (title at 95%) are all but surely present in 5
	// unperturbed schemas.
	if !r.ConceptPresent[0] {
		t.Error("title concept absent from five base schemas — generator shape broken")
	}
}
