// Package eval scores generated mediated schemas against the synthetic
// ground truth, producing the metrics of the paper's Table 1 (§7.3): how
// many true GAs the solution contains, how many attributes those GAs
// cover, and how many true GAs were present in the chosen sources but not
// identified. The paper interprets true-GA count as precision of concept
// identification and covered attributes as recall.
package eval

import (
	"ube/internal/model"
	"ube/internal/synth"
)

// Report holds the Table 1 metrics for one solution.
type Report struct {
	// SourcesSelected is |S|.
	SourcesSelected int
	// TrueGAs is the number of distinct ground-truth concepts
	// represented by at least one pure GA (a GA whose attributes all
	// express that concept). The paper bounds this by 14.
	TrueGAs int
	// TrueGAClusters is the raw number of pure GAs; it can exceed
	// TrueGAs when one concept splits into several clusters (e.g.
	// lexically distant variants).
	TrueGAClusters int
	// FalseGAs counts GAs that mix two or more concepts, or mix a
	// concept with junk attributes — incorrect groupings. The paper
	// reports µBE never produced any.
	FalseGAs int
	// JunkGAs counts GAs made entirely of perturbation junk words.
	// Grouping two sources' "voltage" attributes is lexically correct,
	// so these are neither true nor false; they are reported separately.
	JunkGAs int
	// AttrsInTrueGAs is the total number of attributes covered by pure
	// GAs — the recall measure of Table 1.
	AttrsInTrueGAs int
	// MissedGAs counts concepts that are present in the chosen sources
	// (attributes of the concept occur in at least two of them, so a GA
	// is possible) but have no pure GA in the solution.
	MissedGAs int
	// ConceptFound marks which concepts have a pure GA.
	ConceptFound [synth.NumConcepts]bool
	// ConceptPresent marks which concepts occur in ≥2 chosen sources.
	ConceptPresent [synth.NumConcepts]bool
}

// Evaluate scores a solution's mediated schema against the ground truth.
// S is the chosen source set; schema may be nil (scored as finding
// nothing).
func Evaluate(truth *synth.Truth, S []int, schema *model.MediatedSchema) Report {
	var r Report
	r.SourcesSelected = len(S)

	// Which concepts are present in ≥2 chosen sources?
	sourcesWithConcept := make(map[int]map[int]struct{}) // concept -> set of sources
	chosen := make(map[int]bool, len(S))
	for _, id := range S {
		chosen[id] = true
	}
	for ref, c := range truth.ConceptOf {
		if c == synth.JunkConcept || !chosen[ref.Source] {
			continue
		}
		if sourcesWithConcept[c] == nil {
			sourcesWithConcept[c] = make(map[int]struct{})
		}
		sourcesWithConcept[c][ref.Source] = struct{}{}
	}
	for c, srcs := range sourcesWithConcept {
		if len(srcs) >= 2 {
			r.ConceptPresent[c] = true
		}
	}

	if schema != nil {
		for _, g := range schema.GAs {
			concept, pure, junkOnly := classify(truth, g)
			switch {
			case junkOnly:
				r.JunkGAs++
			case pure:
				r.TrueGAClusters++
				r.AttrsInTrueGAs += len(g)
				if !r.ConceptFound[concept] {
					r.ConceptFound[concept] = true
					r.TrueGAs++
				}
			default:
				r.FalseGAs++
			}
		}
	}

	for c := 0; c < synth.NumConcepts; c++ {
		if r.ConceptPresent[c] && !r.ConceptFound[c] {
			r.MissedGAs++
		}
	}
	return r
}

// classify determines whether a GA is pure (all attributes one concept),
// junk-only, or mixed.
func classify(truth *synth.Truth, g model.GA) (concept int, pure, junkOnly bool) {
	concept = synth.JunkConcept
	sawJunk := false
	for _, ref := range g {
		c, ok := truth.ConceptOf[ref]
		if !ok {
			c = synth.JunkConcept
		}
		if c == synth.JunkConcept {
			sawJunk = true
			continue
		}
		if concept == synth.JunkConcept {
			concept = c
		} else if concept != c {
			return concept, false, false // mixes two concepts
		}
	}
	if concept == synth.JunkConcept {
		return concept, false, true // nothing but junk
	}
	if sawJunk {
		return concept, false, false // concept attributes mixed with junk
	}
	return concept, true, false
}
