package search

import (
	"fmt"

	"ube/internal/model"
)

// Exhaustive enumerates every subset of size ≤ m that contains the
// required sources and avoids the excluded ones, returning the true
// optimum. It exists as a test oracle for the metaheuristics and refuses
// instances whose enumeration would exceed MaxStates.
type Exhaustive struct {
	// MaxStates bounds the number of enumerated candidates.
	MaxStates int
}

// NewExhaustive returns an exhaustive optimizer with a default state bound.
func NewExhaustive() *Exhaustive { return &Exhaustive{MaxStates: 2_000_000} }

// Name implements Optimizer.
func (e *Exhaustive) Name() string { return "exhaustive" }

// Optimize implements Optimizer. The seed is unused. It panics when the
// instance exceeds MaxStates — exhaustive search on a large instance is
// a programming error, not a runtime condition.
func (e *Exhaustive) Optimize(p *Problem, seed int64) Solution {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	req := model.NewSourceSet(p.N)
	for _, id := range p.Required {
		req.Add(id)
	}
	var free []int
	for _, id := range candidatePool(p) {
		if !req.Has(id) {
			free = append(free, id)
		}
	}
	slots := p.M - req.Len()
	if states := countStates(len(free), slots); states > e.MaxStates {
		panic(fmt.Sprintf("search: exhaustive enumeration of ~%d states exceeds bound %d", states, e.MaxStates))
	}

	tr := newTracker(p, int(^uint(0)>>1)) // enumeration ignores budgets
	enumSpan := p.Tracer.Begin("exhaustive.enum")
	defer p.Tracer.End(enumSpan)
	if req.Len() >= 1 {
		tr.eval(req)
	}
	cur := req.Clone()
	var recurse func(start, remaining int)
	recurse = func(start, remaining int) {
		if remaining == 0 || tr.cancelled() {
			// Enumeration ignores evaluation budgets but still honors
			// context cancellation.
			return
		}
		for i := start; i < len(free); i++ {
			cur.Add(free[i])
			if cur.Len() >= 1 {
				tr.eval(cur)
			}
			recurse(i+1, remaining-1)
			cur.Remove(free[i])
		}
	}
	recurse(0, slots)
	return tr.solution()
}

// countStates estimates C(n,0)+C(n,1)+...+C(n,k), saturating at a large
// value to avoid overflow.
func countStates(n, k int) int {
	total := 0
	term := 1
	for i := 0; i <= k; i++ {
		total += term
		if total < 0 || total > 1<<40 {
			return 1 << 40
		}
		if i < k {
			term = term * (n - i) / (i + 1)
		}
	}
	return total
}
