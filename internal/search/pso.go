package search

import (
	"math"
	"math/rand"

	"ube/internal/model"
)

// PSO is binary particle swarm optimization (Kennedy & Eberhart's discrete
// variant): each particle is a candidate source set encoded as a bit
// vector, velocities are per-source real values squashed through a sigmoid
// into inclusion probabilities, and particles are pulled toward their own
// best and the swarm's best. After each position update a repair step
// restores the constraint region (required in, excluded out, at most m
// sources). One of the baselines the paper compared tabu search against
// (§6).
type PSO struct {
	// Particles is the swarm size.
	Particles int
	// Inertia, Cognitive and Social are the standard PSO coefficients.
	Inertia   float64
	Cognitive float64
	Social    float64
	// VMax clamps velocities to keep sigmoid probabilities responsive.
	VMax float64
	// Budget is the default evaluation budget.
	Budget int
}

// NewPSO returns a PSO optimizer with package defaults.
func NewPSO() *PSO {
	return &PSO{Particles: 24, Inertia: 0.72, Cognitive: 1.5, Social: 1.5, VMax: 4, Budget: 16000}
}

// Name implements Optimizer.
func (o *PSO) Name() string { return "pso" }

type particle struct {
	pos   *model.SourceSet
	vel   []float64
	best  *model.SourceSet
	bestQ float64
}

// Optimize implements Optimizer.
func (o *PSO) Optimize(p *Problem, seed int64) Solution {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tr := newTracker(p, o.Budget)
	pool := candidatePool(p)
	required := make(map[int]bool, len(p.Required))
	for _, id := range p.Required {
		required[id] = true
	}

	swarm := make([]*particle, o.Particles)
	var gbest *model.SourceSet
	gbestQ := math.Inf(-1)
	warm := warmStart(p, pool)
	initSpan := p.Tracer.Begin("pso.init")
	for i := range swarm {
		pos := warm
		warm = nil // particle 0 starts from the warm candidate
		if pos == nil {
			pos = randomStart(p, pool, rng)
		}
		q, _ := tr.eval(pos)
		pt := &particle{
			pos:   pos,
			vel:   make([]float64, p.N),
			best:  pos.Clone(),
			bestQ: q,
		}
		for j := range pt.vel {
			pt.vel[j] = (rng.Float64()*2 - 1) * o.VMax
		}
		swarm[i] = pt
		if q > gbestQ {
			gbest, gbestQ = pos.Clone(), q
		}
	}
	p.Tracer.End(initSpan)

	for !tr.exhausted() {
		sweepSpan := p.Tracer.Begin("pso.sweep")
		for _, pt := range swarm {
			if tr.exhausted() {
				break
			}
			// Velocity update toward personal and global bests.
			for j := 0; j < p.N; j++ {
				x, pb, gb := b2f(pt.pos.Has(j)), b2f(pt.best.Has(j)), b2f(gbest.Has(j))
				v := o.Inertia*pt.vel[j] +
					o.Cognitive*rng.Float64()*(pb-x) +
					o.Social*rng.Float64()*(gb-x)
				pt.vel[j] = math.Max(-o.VMax, math.Min(o.VMax, v))
			}
			// Stochastic position update through the sigmoid.
			next := model.NewSourceSet(p.N)
			for _, j := range pool {
				if rng.Float64() < sigmoid(pt.vel[j]) {
					next.Add(j)
				}
			}
			repair(p, next, pool, pt.vel, required, rng)
			pt.pos = next
			q, _ := tr.eval(next)
			if q > pt.bestQ {
				pt.best, pt.bestQ = next.Clone(), q
			}
			if q > gbestQ {
				gbest, gbestQ = next.Clone(), q
			}
		}
		p.Tracer.End(sweepSpan)
	}
	return tr.solution()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// repair pulls a sampled position back into the constraint region: forces
// required sources in, then while |S| > m evicts the non-required member
// with the lowest velocity (the one the particle "wants" least), and if S
// ended up empty adds the highest-velocity candidate.
func repair(p *Problem, s *model.SourceSet, pool []int, vel []float64, required map[int]bool, rng *rand.Rand) {
	// Force required sources in by walking the Problem's slice, not the
	// lookup map: set insertion is order-independent today, but ranging
	// the map here would leave determinism hostage to whatever this loop
	// grows to do per member.
	for _, id := range p.Required {
		s.Add(id)
	}
	for s.Len() > p.M {
		worst, worstV := -1, math.Inf(1)
		s.ForEach(func(id int) {
			if !required[id] && vel[id] < worstV {
				worst, worstV = id, vel[id]
			}
		})
		if worst < 0 {
			break // everything required; Validate guarantees ≤ m
		}
		s.Remove(worst)
	}
	if s.Len() == 0 && len(pool) > 0 {
		best, bestV := pool[rng.Intn(len(pool))], math.Inf(-1)
		for _, id := range pool {
			if vel[id] > bestV {
				best, bestV = id, vel[id]
			}
		}
		s.Add(best)
	}
}
