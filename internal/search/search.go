// Package search provides the combinatorial optimizers that solve µBE's
// constrained source-selection problem (paper §6). The paper's authors
// tried stochastic local search, particle swarm optimization, constrained
// simulated annealing and tabu search, and found tabu search the most
// robust and highest quality; this package implements all of them (plus a
// greedy marginal-gain baseline and an exhaustive oracle for tests) behind
// one Optimizer interface so the comparison can be re-run as an ablation.
//
// The search space is the set of source subsets S ⊆ U with |S| ≤ m.
// Constraints define permanently tabu regions (§6): required sources can
// never leave a candidate and excluded sources can never enter one, for
// every optimizer, so all solutions satisfy C ⊆ S by construction.
package search

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"ube/internal/model"
	"ube/internal/trace"
)

// Objective evaluates a candidate source set. It returns the overall
// quality Q(S) in [0,1] and whether S is feasible (its mediated schema is
// valid on the source constraints and subsumes the GA constraints). For
// infeasible sets the quality still reflects the non-matching QEFs, which
// gives optimizers a gradient through infeasible regions.
type Objective func(S *model.SourceSet) (quality float64, feasible bool)

// Delta describes how a candidate was derived from a base set:
// S = Base − {Drop} + {Add}, with -1 disabling either half. Optimizers
// that generate candidates by editing a current solution pass the edit
// along so a delta-aware objective can evaluate the candidate
// incrementally from cached per-base state instead of from scratch.
// A nil Base means the candidate was built some other way (a restart, a
// particle position) and carries no delta information.
//
// Base is owned by the optimizer and may be mutated after the evaluation
// returns; delta objectives must not retain it.
type Delta struct {
	Base *model.SourceSet
	Add  int
	Drop int
}

// fullDelta is the Delta of a candidate with no usable edit structure.
func fullDelta() Delta { return Delta{Add: -1, Drop: -1} }

// Progress is one solver progress report: the evaluation count and the
// best-so-far solution at the moment the best improved. Reports are
// emitted from the deterministic sequential best-so-far fold — never
// concurrently — so a ProgressFunc needs no locking against the solver,
// though it must not block (a slow consumer stalls the solve).
type Progress struct {
	// Evals is the number of objective evaluations spent so far.
	Evals int
	// BestQuality is the quality of the new best-so-far solution.
	BestQuality float64
	// Feasible reports whether that solution is feasible.
	Feasible bool
}

// ProgressFunc observes a running solve. It is a pure side channel: the
// solver's results never depend on it, so any callback (including none)
// leaves the solution byte-identical.
type ProgressFunc func(Progress)

// DeltaObjective is an Objective that also receives the candidate's
// derivation. S is always the fully materialized set — implementations
// may ignore d entirely, so any Objective lifts to a DeltaObjective —
// and the returned values must not depend on d: for a fixed S every
// (S, d) pair reports the same quality up to floating-point
// reassociation (≤1e-12). The delta is purely an evaluation hint.
type DeltaObjective func(S *model.SourceSet, d Delta) (quality float64, feasible bool)

// BoundFunc returns a cheap upper bound on a candidate's quality given
// its derivation, or ok == false when no cheap bound applies and the
// caller must evaluate exactly. Implementations must guarantee
// quality(S) ≤ bound for the same S — solvers skip exact evaluations on
// the strength of it — and must be deterministic and safe for
// concurrent calls, like the Objective.
type BoundFunc func(S *model.SourceSet, d Delta) (bound float64, ok bool)

// Problem is one instance of the §2.5 optimization problem as seen by an
// optimizer: the universe size, the selection bound m, and the constraint
// region. Everything domain-specific lives behind Objective.
type Problem struct {
	// N is the number of sources in the universe.
	N int
	// M is the maximum number of sources the user is willing to select.
	M int
	// Required are the sources that must appear in every candidate: the
	// source constraints plus the sources implied by GA constraints.
	Required []int
	// Excluded are sources that may never appear in a candidate.
	Excluded []int
	// Initial optionally warm-starts the search from a known good
	// candidate (e.g. the previous iteration's solution). Optimizers
	// sanitize it against the constraint region and use it for their
	// first start; later restarts remain random.
	Initial []int
	// Objective scores candidates.
	Objective Objective
	// DeltaObjective, when non-nil, is used instead of Objective and
	// additionally receives each candidate's derivation (base set plus
	// add/drop edit), enabling incremental evaluation. Objective must
	// still be set — it remains the definition of candidate quality and
	// the fallback for optimizers that predate deltas.
	DeltaObjective DeltaObjective
	// Bound, when non-nil, supplies an upper bound on candidate quality
	// that delta-aware optimizers (tabu, greedy) use to skip exact
	// evaluations that provably cannot change the outcome. Every skip
	// is still charged one evaluation against the budget and the
	// search.evals counter — only the expensive objective call is
	// avoided — so Solutions are byte-identical with and without a
	// bound; the bound.skips trace counter records how often pruning
	// fired. Optimizers without pruning support ignore it.
	Bound BoundFunc
	// MaxEvals bounds the number of objective evaluations (0 means each
	// optimizer's default). Ablations share a budget through this knob.
	MaxEvals int
	// Workers fans candidate evaluations across goroutines (≤1 =
	// sequential). The Objective must then be safe for concurrent
	// calls; the engine's objective is. Results are deterministic for a
	// fixed (problem, seed, Workers): scores are pure and the
	// best-so-far fold always happens in candidate order.
	Workers int
	// Ctx optionally cancels the search: optimizers check it at
	// iteration boundaries (never mid-candidate) and return their
	// best-so-far early. A nil Ctx never cancels, and for any ctx that
	// is never cancelled the run is byte-identical to a run without one
	// — cancellation can only truncate the search, not reroute it.
	Ctx context.Context
	// Progress, when non-nil, observes the solve: it is called from the
	// sequential best-so-far fold each time the best solution improves.
	// It is a pure side channel and never influences the result.
	Progress ProgressFunc
	// Tracer, when non-nil, records the solve's span tree: optimizers
	// open spans around their iteration structure (always from the
	// sequential control path, never from evaluation workers) and the
	// tracker reports evaluation counts into its counters. Like
	// Progress it is a pure side channel — a nil tracer costs only nil
	// checks and the solution is byte-identical either way.
	Tracer *trace.Tracer
}

// Validate checks the problem for structural errors.
func (p *Problem) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("search: empty universe")
	}
	if p.M < 1 {
		return fmt.Errorf("search: m = %d < 1", p.M)
	}
	if len(p.Required) > p.M {
		return fmt.Errorf("search: %d required sources exceed m = %d", len(p.Required), p.M)
	}
	if p.Objective == nil {
		return fmt.Errorf("search: nil objective")
	}
	ex := make(map[int]bool, len(p.Excluded))
	for _, id := range p.Excluded {
		if id < 0 || id >= p.N {
			return fmt.Errorf("search: excluded source %d out of range", id)
		}
		ex[id] = true
	}
	seen := make(map[int]bool, len(p.Required))
	for _, id := range p.Required {
		if id < 0 || id >= p.N {
			return fmt.Errorf("search: required source %d out of range", id)
		}
		if ex[id] {
			return fmt.Errorf("search: source %d both required and excluded", id)
		}
		if seen[id] {
			return fmt.Errorf("search: duplicate required source %d", id)
		}
		seen[id] = true
	}
	return nil
}

// Solution is an optimizer's result.
type Solution struct {
	// S is the chosen source set; never nil after a successful run.
	S *model.SourceSet
	// Quality is the objective value of S.
	Quality float64
	// Feasible reports whether S satisfied the matching-validity
	// conditions. When the constraint region admits no feasible set
	// within the budget, optimizers return their best-scoring candidate
	// with Feasible == false rather than nothing.
	Feasible bool
	// Evals is the number of objective evaluations spent.
	Evals int
}

// An Optimizer solves Problems. Implementations are deterministic given
// (problem, seed).
type Optimizer interface {
	// Name identifies the algorithm ("tabu", "sls", "anneal", "pso",
	// "greedy", "exhaustive").
	Name() string
	// Optimize runs the search. It panics on an invalid problem
	// (programmer error); budget exhaustion is not an error.
	Optimize(p *Problem, seed int64) Solution
}

// ByName returns a predefined optimizer with default parameters, or false
// for an unknown name.
func ByName(name string) (Optimizer, bool) {
	switch name {
	case "tabu":
		return NewTabu(), true
	case "sls":
		return NewSLS(), true
	case "anneal":
		return NewAnneal(), true
	case "pso":
		return NewPSO(), true
	case "greedy":
		return NewGreedy(), true
	case "exhaustive":
		return NewExhaustive(), true
	}
	return nil, false
}

// tracker wraps an Objective with evaluation counting, a budget, and
// best-so-far bookkeeping shared by all optimizers. When the problem
// supplies a DeltaObjective the tracker routes every evaluation through
// it, passing whatever derivation the optimizer reported (or none); the
// plain Objective remains the path for delta-unaware problems, so
// existing callers and tests behave exactly as before.
type tracker struct {
	obj      Objective
	dobj     DeltaObjective
	ctx      context.Context
	progress ProgressFunc
	st       *trace.Stats
	budget   int
	evals    int
	best     *model.SourceSet
	bestQ    float64
	feasible bool
}

func newTracker(p *Problem, defaultBudget int) *tracker {
	b := p.MaxEvals
	if b <= 0 {
		b = defaultBudget
	}
	return &tracker{obj: p.Objective, dobj: p.DeltaObjective, ctx: p.Ctx, progress: p.Progress, st: p.Tracer.Stats(), budget: b}
}

// exhausted reports whether the evaluation budget is spent or the
// problem's context has been cancelled. Every optimizer consults it at
// iteration boundaries, so cancellation stops a solve promptly while an
// uncancelled context changes nothing.
func (t *tracker) exhausted() bool {
	return t.cancelled() || t.evals >= t.budget
}

// cancelled reports whether the problem's context has been cancelled; a
// nil context never cancels.
func (t *tracker) cancelled() bool {
	return t.ctx != nil && t.ctx.Err() != nil
}

// score dispatches one evaluation to the delta objective when available.
func (t *tracker) score(S *model.SourceSet, d Delta) (float64, bool) {
	if t.dobj != nil {
		return t.dobj(S, d)
	}
	return t.obj(S)
}

// eval scores S with no delta information, updating the best-so-far. A
// feasible solution always beats an infeasible one regardless of raw
// quality.
func (t *tracker) eval(S *model.SourceSet) (float64, bool) {
	return t.evalDelta(S, fullDelta())
}

// evalDelta scores S given its derivation from a base set.
func (t *tracker) evalDelta(S *model.SourceSet, d Delta) (float64, bool) {
	t.evals++
	q, ok := t.score(S, d)
	t.record(S, q, ok)
	return q, ok
}

// batchEval is batchEvalDelta for candidates without delta information.
func (t *tracker) batchEval(p *Problem, cands []*model.SourceSet) ([]float64, []bool, int) {
	return t.batchEvalDelta(p, cands, nil)
}

// batchEvalDelta scores a batch of candidates, fanning the objective calls
// across p.Workers goroutines, then folds tracker updates sequentially in
// candidate order so ties resolve identically at any parallelism. deltas,
// when non-nil, is parallel to cands and carries each candidate's
// derivation. The batch is truncated to the remaining budget. Returned
// slices are parallel to the (possibly truncated) batch; the int is the
// evaluated count.
func (t *tracker) batchEvalDelta(p *Problem, cands []*model.SourceSet, deltas []Delta) ([]float64, []bool, int) {
	return t.batchEvalDeltaBound(p, cands, deltas, nil, nil)
}

// batchEvalDeltaBound is batchEvalDelta with bound pruning: skip and
// bounds, when non-nil, are parallel to cands, and a candidate with
// skip[i] set reports (bounds[i], false) instead of calling the
// objective. A skipped candidate still costs one evaluation from the
// budget and the search.evals counter — the optimizer's eval accounting
// is identical with and without pruning — and additionally counts one
// bound.skips. Callers are responsible for the bit-safety precondition:
// only skip when a feasible incumbent exists and bounds[i] ≤ the
// pre-batch best quality, so record() provably ignores the substituted
// result exactly as it would have ignored the exact one.
func (t *tracker) batchEvalDeltaBound(p *Problem, cands []*model.SourceSet, deltas []Delta, skip []bool, bounds []float64) ([]float64, []bool, int) {
	if left := t.budget - t.evals; len(cands) > left {
		cands = cands[:max(left, 0)]
	}
	// Cancellation boundary: a batch is the unit of work between
	// iteration-boundary checks, so refusing a whole batch here stops a
	// cancelled solve before it fans out more candidate evaluations.
	// For an uncancelled context this changes nothing.
	if t.cancelled() {
		return nil, nil, 0
	}
	if len(cands) == 0 {
		return nil, nil, 0
	}
	t.st.Add(trace.CSearchBatches, 1)
	delta := func(i int) Delta {
		if deltas == nil {
			return fullDelta()
		}
		return deltas[i]
	}
	qs := make([]float64, len(cands))
	oks := make([]bool, len(cands))
	eval1 := func(i int) {
		if skip != nil && skip[i] {
			qs[i], oks[i] = bounds[i], false
			return
		}
		qs[i], oks[i] = t.score(cands[i], delta(i))
	}
	workers := p.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i := range cands {
			eval1(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cands) {
						return
					}
					eval1(i)
				}
			}()
		}
		wg.Wait()
	}
	// Sequential fold keeps best-so-far deterministic.
	var skips int64
	for i, c := range cands {
		t.evals++
		if skip != nil && skip[i] {
			skips++
		}
		t.record(c, qs[i], oks[i])
	}
	t.st.Add(trace.CBoundSkips, skips)
	return qs, oks, len(cands)
}

// skipDelta accounts one candidate whose exact evaluation was pruned:
// it charges the budget and search.evals like an exact evaluation, adds
// one bound.skips, and feeds (ub, false) through record. Callers must
// only prune when a feasible incumbent exists and ub ≤ t.bestQ — then
// the substituted result provably leaves the best-so-far untouched for
// any (q ≤ ub, ok) the exact evaluation could have produced.
func (t *tracker) skipDelta(S *model.SourceSet, ub float64) {
	t.evals++
	t.st.Add(trace.CBoundSkips, 1)
	t.record(S, ub, false)
}

// record applies one evaluation result to the best-so-far bookkeeping.
// It runs once per evaluation, always from the sequential fold, so the
// evaluation counter mirrors t.evals exactly.
func (t *tracker) record(S *model.SourceSet, q float64, ok bool) {
	t.st.Add(trace.CSearchEvals, 1)
	better := false
	switch {
	case t.best == nil:
		better = true
	case ok && !t.feasible:
		better = true
	case ok == t.feasible && q > t.bestQ:
		better = true
	}
	if better {
		t.best = S.Clone()
		t.bestQ = q
		t.feasible = ok
		if t.progress != nil {
			t.progress(Progress{Evals: t.evals, BestQuality: t.bestQ, Feasible: t.feasible})
		}
	}
}

func (t *tracker) solution() Solution {
	return Solution{S: t.best, Quality: t.bestQ, Feasible: t.feasible, Evals: t.evals}
}

// candidatePool returns the selectable source IDs: everything except the
// excluded, in ascending order.
func candidatePool(p *Problem) []int {
	ex := make(map[int]bool, len(p.Excluded))
	for _, id := range p.Excluded {
		ex[id] = true
	}
	pool := make([]int, 0, p.N-len(p.Excluded))
	for id := 0; id < p.N; id++ {
		if !ex[id] {
			pool = append(pool, id)
		}
	}
	return pool
}

// warmStart sanitizes p.Initial into a valid candidate: required sources
// first, then initial members that are selectable, truncated to m. It
// returns nil when no initial candidate was provided.
func warmStart(p *Problem, pool []int) *model.SourceSet {
	if len(p.Initial) == 0 {
		return nil
	}
	s := model.NewSourceSet(p.N)
	for _, id := range p.Required {
		s.Add(id)
	}
	selectable := make(map[int]bool, len(pool))
	for _, id := range pool {
		selectable[id] = true
	}
	for _, id := range p.Initial {
		if s.Len() >= p.M {
			break
		}
		if id >= 0 && id < p.N && selectable[id] {
			s.Add(id)
		}
	}
	if s.Len() == 0 {
		return nil
	}
	return s
}

// randomStart builds a random candidate: the required sources plus a
// uniform sample of free sources up to size m.
func randomStart(p *Problem, pool []int, rng *rand.Rand) *model.SourceSet {
	s := model.NewSourceSet(p.N)
	for _, id := range p.Required {
		s.Add(id)
	}
	free := make([]int, 0, len(pool))
	for _, id := range pool {
		if !s.Has(id) {
			free = append(free, id)
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for _, id := range free {
		if s.Len() >= p.M {
			break
		}
		s.Add(id)
	}
	return s
}

// removable returns the members of S that are not required, sorted.
func removable(S *model.SourceSet, required []int) []int {
	req := make(map[int]bool, len(required))
	for _, id := range required {
		req[id] = true
	}
	var out []int
	S.ForEach(func(id int) {
		if !req[id] {
			out = append(out, id)
		}
	})
	sort.Ints(out)
	return out
}

// addable returns the pool sources not in S, sorted.
func addable(S *model.SourceSet, pool []int) []int {
	var out []int
	for _, id := range pool {
		if !S.Has(id) {
			out = append(out, id)
		}
	}
	return out
}
