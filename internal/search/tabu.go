package search

import (
	"math/rand"

	"ube/internal/model"
)

// Tabu implements tabu search (Glover & Laguna), the optimizer µBE uses by
// default: it was the most robust and produced the highest quality
// solutions among the techniques the paper tried (§6, §7.1).
//
// The search walks the space of candidate source sets via add/drop/swap
// moves, always taking the best move in a sampled candidate list — even a
// worsening one — while a recency-based tabu list forbids touching recently
// moved sources for Tenure iterations. The aspiration criterion overrides
// the tabu status of a move that would beat the best solution found so
// far. Constraints define permanently tabu regions: required sources are
// never dropped, excluded sources never added.
type Tabu struct {
	// Tenure is the number of iterations a moved source stays tabu.
	Tenure int
	// MaxIters bounds the number of iterations per restart.
	MaxIters int
	// Sample is the number of candidate moves examined per iteration
	// (tabu search's "candidate list strategy"; the full neighborhood
	// has Θ(m·N) moves, too many to evaluate every iteration).
	Sample int
	// Stall stops a run after this many iterations without improving
	// the best solution.
	Stall int
	// Restarts is the number of independent tabu runs from different
	// random starts; the best result wins.
	Restarts int
}

// NewTabu returns a Tabu optimizer with the package defaults.
func NewTabu() *Tabu {
	return &Tabu{Tenure: 8, MaxIters: 250, Sample: 32, Stall: 60, Restarts: 2}
}

// Name implements Optimizer.
func (t *Tabu) Name() string { return "tabu" }

func (t *Tabu) defaultBudget() int { return t.Restarts * t.MaxIters * t.Sample }

// move is one neighborhood step: drop `out` and/or add `in`; -1 disables
// either half, so {-1,in} is a pure add and {out,-1} a pure drop.
type move struct{ out, in int }

// Optimize implements Optimizer.
func (t *Tabu) Optimize(p *Problem, seed int64) Solution {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tr := newTracker(p, t.defaultBudget())
	pool := candidatePool(p)

	for run := 0; run < t.Restarts && !tr.exhausted(); run++ {
		var start *model.SourceSet
		if run == 0 {
			start = warmStart(p, pool)
		}
		// Ending the run span also closes any iteration span left open
		// by an early return inside run.
		runSpan := p.Tracer.Begin("tabu.run")
		t.run(p, pool, start, tr, rng)
		p.Tracer.End(runSpan)
	}
	return tr.solution()
}

// run executes one tabu search; a nil start means a fresh random start.
func (t *Tabu) run(p *Problem, pool []int, start *model.SourceSet, tr *tracker, rng *rand.Rand) {
	cur := start
	if cur == nil {
		cur = randomStart(p, pool, rng)
	}
	curQ, _ := tr.eval(cur)
	// Asymmetric recency tenure: a dropped source may not re-enter for
	// Tenure iterations; an added source may not be dropped for a short
	// grace period. Freezing both directions equally would lock up most
	// of an m-sized candidate within a few swaps.
	tabuIn := make([]int, p.N)
	tabuOut := make([]int, p.N)
	graceTenure := max(2, t.Tenure/4)
	sinceImprove := 0
	minLen := max(1, len(p.Required))

	for iter := 1; iter <= t.MaxIters && !tr.exhausted(); iter++ {
		iterSpan := p.Tracer.Begin("tabu.iter")
		moves := t.sampleMoves(p, cur, pool, minLen, rng)
		if len(moves) == 0 {
			return // the constraint region leaves no moves at all
		}

		cands := make([]*model.SourceSet, len(moves))
		deltas := make([]Delta, len(moves))
		for i, mv := range moves {
			cand := cur.Clone()
			if mv.out >= 0 {
				cand.Remove(mv.out)
			}
			if mv.in >= 0 {
				cand.Add(mv.in)
			}
			cands[i] = cand
			deltas[i] = Delta{Base: cur, Add: mv.in, Drop: mv.out}
		}
		// Bound pruning: a move that is already tabu can only be taken
		// through the aspiration criterion (q > best-so-far), so when
		// its quality upper bound cannot beat the incumbent the exact
		// evaluation is provably irrelevant — the selection loop below
		// skips it either way — and may be replaced by the bound. The
		// tabu status computed here is exactly the status the selection
		// loop recomputes (the tenure arrays don't change in between),
		// and tr.bestQ can only rise across the batch fold once a
		// feasible incumbent exists, so a bound ≤ tr.bestQ now is still
		// ≤ tr.bestQ at selection time.
		var skip []bool
		var bounds []float64
		if p.Bound != nil && tr.feasible {
			for i, mv := range moves {
				tabu := (mv.out >= 0 && tabuOut[mv.out] > iter) ||
					(mv.in >= 0 && tabuIn[mv.in] > iter)
				if !tabu {
					continue
				}
				if b, ok := p.Bound(cands[i], deltas[i]); ok && b <= tr.bestQ {
					if skip == nil {
						skip = make([]bool, len(moves))
						bounds = make([]float64, len(moves))
					}
					skip[i], bounds[i] = true, b
				}
			}
		}
		qs, _, n := tr.batchEvalDeltaBound(p, cands, deltas, skip, bounds)

		var best *model.SourceSet
		var bestMove move
		bestQ := 0.0
		for i := 0; i < n; i++ {
			mv, q := moves[i], qs[i]
			tabu := (mv.out >= 0 && tabuOut[mv.out] > iter) ||
				(mv.in >= 0 && tabuIn[mv.in] > iter)
			if tabu && q <= tr.bestQ {
				continue // tabu and not aspirating
			}
			if best == nil || q > bestQ {
				best, bestMove, bestQ = cands[i], mv, q
			}
		}
		if best == nil {
			// Every sampled move was tabu; wait for the list to age.
			sinceImprove++
			if sinceImprove > t.Stall {
				return
			}
			p.Tracer.End(iterSpan)
			continue
		}
		cur = best
		if bestMove.out >= 0 {
			tabuIn[bestMove.out] = iter + t.Tenure
		}
		if bestMove.in >= 0 {
			tabuOut[bestMove.in] = iter + graceTenure
		}
		if bestQ > curQ {
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove > t.Stall {
				return
			}
		}
		curQ = bestQ
		p.Tracer.End(iterSpan)
	}
}

// sampleMoves draws up to t.Sample distinct admissible moves around cur.
func (t *Tabu) sampleMoves(p *Problem, cur *model.SourceSet, pool []int, minLen int, rng *rand.Rand) []move {
	outs := removable(cur, p.Required)
	ins := addable(cur, pool)
	var moves []move
	seen := make(map[move]bool, t.Sample)
	try := func(mv move) {
		if !seen[mv] {
			seen[mv] = true
			moves = append(moves, mv)
		}
	}
	// Swaps dominate the sample: once a candidate reaches the size
	// bound m (which good candidates do), adds are infeasible and drops
	// rarely help, so swap moves are where the search happens.
	for attempts := 0; attempts < t.Sample*4 && len(moves) < t.Sample; attempts++ {
		switch k := rng.Intn(10); {
		case k == 0 && cur.Len() < p.M && len(ins) > 0: // add
			try(move{out: -1, in: ins[rng.Intn(len(ins))]})
		case k == 1 && cur.Len() > minLen && len(outs) > 0: // drop
			try(move{out: outs[rng.Intn(len(outs))], in: -1})
		case k >= 2 && len(outs) > 0 && len(ins) > 0: // swap
			try(move{out: outs[rng.Intn(len(outs))], in: ins[rng.Intn(len(ins))]})
		case k >= 2 && cur.Len() < p.M && len(ins) > 0: // add fallback
			try(move{out: -1, in: ins[rng.Intn(len(ins))]})
		}
	}
	return moves
}
