package search

import (
	"math"
	"math/rand"
)

// Anneal is constrained simulated annealing: a random-neighbor walk that
// always accepts improvements and accepts worsening moves with probability
// exp(Δ/T) under a geometric cooling schedule. Constraints are enforced in
// move generation, exactly as for the other optimizers. One of the
// baselines the paper compared tabu search against (§6).
type Anneal struct {
	// T0 is the initial temperature, on the scale of quality deltas
	// (quality lives in [0,1], so deltas are small).
	T0 float64
	// Cooling is the geometric decay factor applied each step.
	Cooling float64
	// Tmin ends the schedule.
	Tmin float64
	// Budget is the default evaluation budget; the schedule restarts
	// while budget remains.
	Budget int
}

// NewAnneal returns an annealer with package defaults. T0 and Tmin are
// chosen for objectives in [0,1]: typical neighbor deltas are 1e-3..1e-1.
func NewAnneal() *Anneal {
	return &Anneal{T0: 0.05, Cooling: 0.995, Tmin: 1e-4, Budget: 16000}
}

// Name implements Optimizer.
func (a *Anneal) Name() string { return "anneal" }

// Optimize implements Optimizer.
func (a *Anneal) Optimize(p *Problem, seed int64) Solution {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tr := newTracker(p, a.Budget)
	pool := candidatePool(p)
	minLen := max(1, len(p.Required))

	warm := warmStart(p, pool)
	for !tr.exhausted() {
		schedSpan := p.Tracer.Begin("anneal.schedule")
		cur := warm
		warm = nil // only the first schedule is warm-started
		if cur == nil {
			cur = randomStart(p, pool, rng)
		}
		curQ, _ := tr.eval(cur)
		for temp := a.T0; temp > a.Tmin && !tr.exhausted(); temp *= a.Cooling {
			cand, d := randomNeighbor(p, cur, pool, minLen, rng)
			if cand == nil {
				break
			}
			q, _ := tr.evalDelta(cand, d)
			if delta := q - curQ; delta >= 0 || rng.Float64() < math.Exp(delta/temp) {
				cur, curQ = cand, q
			}
		}
		p.Tracer.End(schedSpan)
	}
	return tr.solution()
}
