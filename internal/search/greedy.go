package search

import (
	"math/rand"

	"ube/internal/model"
)

// Greedy is deterministic marginal-gain selection: starting from the
// required sources, it repeatedly adds the source whose inclusion most
// improves the objective, until m sources are selected or no addition
// helps. It is the natural "obvious" baseline for source selection and a
// useful lower bound for the metaheuristics.
type Greedy struct {
	// KeepWorsening continues adding the least-bad source even when no
	// addition improves the objective, until m is reached. Useful when
	// the objective rewards set size only in aggregate.
	KeepWorsening bool
}

// NewGreedy returns a Greedy optimizer with package defaults.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Optimizer.
func (g *Greedy) Name() string { return "greedy" }

// Optimize implements Optimizer. The seed is unused; greedy is fully
// deterministic.
func (g *Greedy) Optimize(p *Problem, seed int64) Solution {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	_ = rand.New(rand.NewSource(seed)) // uniform signature; intentionally unused
	tr := newTracker(p, p.N*p.M+1)
	pool := candidatePool(p)

	cur := model.NewSourceSet(p.N)
	for _, id := range p.Required {
		cur.Add(id)
	}
	// Bound pruning applies to greedy's pure add-moves when the problem
	// supplies a bound and the fallback path is off (KeepWorsening needs
	// every candidate's exact quality). A candidate is skipped only when
	// its bound cannot beat the loop's current pick or the tracker's
	// feasible incumbent, so both the selection and the best-so-far
	// bookkeeping provably come out identical to the unpruned run.
	prunable := p.Bound != nil && !g.KeepWorsening

	if cur.Len() == 0 && len(pool) > 0 {
		// Seed with the single best source.
		seedSpan := p.Tracer.Begin("greedy.seed")
		bestID, bestQ := -1, 0.0
		for _, id := range pool {
			if tr.exhausted() {
				break
			}
			cand := cur.Clone()
			cand.Add(id)
			d := Delta{Base: cur, Add: id, Drop: -1}
			if prunable && tr.feasible && bestID != -1 {
				if b, ok := p.Bound(cand, d); ok && b <= bestQ && b <= tr.bestQ {
					tr.skipDelta(cand, b)
					continue
				}
			}
			if q, _ := tr.evalDelta(cand, d); bestID == -1 || q > bestQ {
				bestID, bestQ = id, q
			}
		}
		if bestID >= 0 {
			cur.Add(bestID)
		}
		p.Tracer.End(seedSpan)
	}
	curQ, curOK := tr.eval(cur)

	for cur.Len() < p.M && !tr.exhausted() {
		stepSpan := p.Tracer.Begin("greedy.step")
		bestID, bestQ, bestOK := -1, curQ, curOK
		foundAny := false
		// fallback tracks the least-bad addition for KeepWorsening.
		fallback, fallbackQ, fallbackOK := -1, 0.0, false
		for _, id := range addable(cur, pool) {
			if tr.exhausted() {
				break
			}
			cand := cur.Clone()
			cand.Add(id)
			d := Delta{Base: cur, Add: id, Drop: -1}
			if prunable && tr.feasible {
				if b, ok := p.Bound(cand, d); ok && b <= bestQ && b <= tr.bestQ {
					tr.skipDelta(cand, b)
					continue
				}
			}
			q, ok := tr.evalDelta(cand, d)
			if q > bestQ {
				bestID, bestQ, bestOK = id, q, ok
				foundAny = true
			}
			if fallback == -1 || q > fallbackQ {
				fallback, fallbackQ, fallbackOK = id, q, ok
			}
		}
		switch {
		case foundAny:
			cur.Add(bestID)
			curQ, curOK = bestQ, bestOK
		case g.KeepWorsening && fallback >= 0:
			cur.Add(fallback)
			curQ, curOK = fallbackQ, fallbackOK
		default:
			p.Tracer.End(stepSpan)
			return tr.solution()
		}
		p.Tracer.End(stepSpan)
	}
	if g.KeepWorsening {
		// The contract of KeepWorsening is "select m sources no matter
		// what": return the filled set, not the best point on the path.
		return Solution{S: cur, Quality: curQ, Feasible: curOK, Evals: tr.evals}
	}
	return tr.solution()
}
