package search

import (
	"math"
	"sort"
	"testing"

	"ube/internal/model"
)

// linearObjective scores S as the normalized sum of per-source values, so
// the optimum is exactly the top-m values plus any required sources.
func linearObjective(values []float64, m int) Objective {
	sorted := append([]float64(nil), values...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	norm := 0.0
	for i := 0; i < m && i < len(sorted); i++ {
		norm += sorted[i]
	}
	return func(S *model.SourceSet) (float64, bool) {
		sum := 0.0
		S.ForEach(func(id int) { sum += values[id] })
		return math.Min(sum/norm, 1), true
	}
}

// ruggedObjective rewards specific pairs appearing together, creating
// local optima that pure hill climbing gets stuck in.
func ruggedObjective(n, m int) Objective {
	return func(S *model.SourceSet) (float64, bool) {
		q := 0.0
		S.ForEach(func(id int) {
			q += 0.2 // base reward per source
			if S.Has((id + n/2) % n) {
				q += 1.0 // strong pair bonus
			}
			if id%3 == 0 {
				q += 0.4
			}
		})
		return q / float64(m*2), true
	}
}

func allOptimizers() []Optimizer {
	return []Optimizer{NewTabu(), NewSLS(), NewAnneal(), NewPSO(), NewGreedy()}
}

func vals(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64((i*7)%n) + 1
	}
	return v
}

func TestProblemValidate(t *testing.T) {
	ok := &Problem{N: 10, M: 3, Objective: func(*model.SourceSet) (float64, bool) { return 0, true }}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	obj := ok.Objective
	bad := []*Problem{
		{N: 0, M: 1, Objective: obj},
		{N: 10, M: 0, Objective: obj},
		{N: 10, M: 1, Required: []int{1, 2}, Objective: obj},
		{N: 10, M: 3, Objective: nil},
		{N: 10, M: 3, Required: []int{10}, Objective: obj},
		{N: 10, M: 3, Required: []int{-1}, Objective: obj},
		{N: 10, M: 3, Excluded: []int{10}, Objective: obj},
		{N: 10, M: 3, Required: []int{1}, Excluded: []int{1}, Objective: obj},
		{N: 10, M: 3, Required: []int{1, 1, 2}, Objective: obj},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"tabu", "sls", "anneal", "pso", "greedy", "exhaustive"} {
		o, ok := ByName(name)
		if !ok || o.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, o, ok)
		}
	}
	if _, ok := ByName("genetic"); ok {
		t.Error("unknown optimizer resolved")
	}
}

func TestAllOptimizersRespectConstraints(t *testing.T) {
	n, m := 40, 8
	values := vals(n)
	p := &Problem{
		N: n, M: m,
		Required:  []int{3, 17},
		Excluded:  []int{5, 21, 39},
		Objective: linearObjective(values, m),
		MaxEvals:  4000,
	}
	for _, opt := range allOptimizers() {
		sol := opt.Optimize(p, 1)
		if sol.S == nil {
			t.Fatalf("%s: nil solution", opt.Name())
		}
		if sol.S.Len() > m {
			t.Errorf("%s: |S| = %d > m = %d", opt.Name(), sol.S.Len(), m)
		}
		for _, id := range p.Required {
			if !sol.S.Has(id) {
				t.Errorf("%s: required source %d missing", opt.Name(), id)
			}
		}
		for _, id := range p.Excluded {
			if sol.S.Has(id) {
				t.Errorf("%s: excluded source %d selected", opt.Name(), id)
			}
		}
		if sol.S.Len() == 0 {
			t.Errorf("%s: empty solution", opt.Name())
		}
		if sol.Evals == 0 {
			t.Errorf("%s: no evaluations recorded", opt.Name())
		}
	}
}

func TestOptimizersFindLinearOptimum(t *testing.T) {
	// On an easy separable objective every metaheuristic should reach
	// ≥95% of the optimum with a modest budget.
	n, m := 30, 6
	values := vals(n)
	p := &Problem{N: n, M: m, Objective: linearObjective(values, m), MaxEvals: 8000}
	for _, opt := range allOptimizers() {
		sol := opt.Optimize(p, 7)
		if sol.Quality < 0.95 {
			t.Errorf("%s: quality %.3f < 0.95 on separable objective", opt.Name(), sol.Quality)
		}
	}
}

func TestTabuMatchesExhaustiveOnSmallInstance(t *testing.T) {
	n, m := 14, 4
	obj := ruggedObjective(n, m)
	p := &Problem{N: n, M: m, Objective: obj}
	opt := NewExhaustive().Optimize(p, 0)
	tabu := NewTabu().Optimize(p, 3)
	if tabu.Quality < opt.Quality*0.999 {
		t.Errorf("tabu %.4f below exhaustive optimum %.4f", tabu.Quality, opt.Quality)
	}
	if tabu.Quality > opt.Quality+1e-9 {
		t.Errorf("tabu %.4f exceeds exhaustive optimum %.4f: oracle broken", tabu.Quality, opt.Quality)
	}
}

func TestExhaustiveRespectsConstraints(t *testing.T) {
	n, m := 12, 4
	p := &Problem{
		N: n, M: m,
		Required:  []int{2},
		Excluded:  []int{3},
		Objective: linearObjective(vals(n), m),
	}
	sol := NewExhaustive().Optimize(p, 0)
	if !sol.S.Has(2) || sol.S.Has(3) || sol.S.Len() > m {
		t.Errorf("exhaustive violated constraints: %v", sol.S.Elements())
	}
}

func TestExhaustivePanicsOnHugeInstance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("exhaustive on a huge instance should panic")
		}
	}()
	p := &Problem{N: 500, M: 20, Objective: func(*model.SourceSet) (float64, bool) { return 0, true }}
	NewExhaustive().Optimize(p, 0)
}

func TestDeterminismWithSeed(t *testing.T) {
	n, m := 30, 6
	p := &Problem{N: n, M: m, Objective: ruggedObjective(n, m), MaxEvals: 3000}
	for _, opt := range allOptimizers() {
		a := opt.Optimize(p, 42)
		b := opt.Optimize(p, 42)
		if !a.S.Equal(b.S) || a.Quality != b.Quality || a.Evals != b.Evals {
			t.Errorf("%s: same seed, different result", opt.Name())
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	n, m := 50, 10
	for _, budget := range []int{100, 1000} {
		p := &Problem{N: n, M: m, Objective: linearObjective(vals(n), m), MaxEvals: budget}
		for _, opt := range allOptimizers() {
			sol := opt.Optimize(p, 5)
			// Each loop may overshoot by at most one sampled batch.
			if sol.Evals > budget+64 {
				t.Errorf("%s: %d evals for budget %d", opt.Name(), sol.Evals, budget)
			}
		}
	}
}

func TestInfeasibleNavigation(t *testing.T) {
	// Feasible only when source 7 is selected; quality otherwise still
	// guides toward bigger sets. All optimizers must return a feasible
	// solution and prefer it over infeasible ones.
	n, m := 20, 5
	obj := func(S *model.SourceSet) (float64, bool) {
		q := float64(S.Len()) / float64(m) * 0.5
		if S.Has(7) {
			return q + 0.5, true
		}
		return q, false
	}
	p := &Problem{N: n, M: m, Objective: obj, MaxEvals: 6000}
	for _, opt := range allOptimizers() {
		sol := opt.Optimize(p, 11)
		if !sol.Feasible {
			t.Errorf("%s: did not find the feasible region", opt.Name())
			continue
		}
		if !sol.S.Has(7) {
			t.Errorf("%s: feasible flag without source 7", opt.Name())
		}
	}
}

func TestFeasiblePreferredOverHigherInfeasible(t *testing.T) {
	// An infeasible set can score arbitrarily high; the tracker must
	// still prefer any feasible solution.
	n, m := 10, 3
	obj := func(S *model.SourceSet) (float64, bool) {
		if S.Has(0) {
			return 0.2, true // feasible, low quality
		}
		return 0.9, false // infeasible, high quality
	}
	p := &Problem{N: n, M: m, Objective: obj, MaxEvals: 2000}
	for _, opt := range allOptimizers() {
		sol := opt.Optimize(p, 2)
		if !sol.Feasible {
			t.Errorf("%s: returned infeasible despite feasible region", opt.Name())
		}
	}
}

func TestTabuEscapesLocalOptimum(t *testing.T) {
	// A deceptive objective with a strong local optimum: sets without
	// source 0 plateau at 0.6; adding source 0 alone drops quality, but
	// source 0 plus source 1 is optimal. Greedy gets trapped; tabu's
	// worsening moves escape.
	n, m := 16, 2
	obj := func(S *model.SourceSet) (float64, bool) {
		has0, has1 := S.Has(0), S.Has(1)
		switch {
		case has0 && has1:
			return 1.0, true
		case has0:
			return 0.1, true
		default:
			return 0.6 * float64(S.Len()) / float64(m), true
		}
	}
	p := &Problem{N: n, M: m, Objective: obj, MaxEvals: 6000}
	sol := NewTabu().Optimize(p, 1)
	if sol.Quality < 1.0 {
		t.Errorf("tabu stuck at %.2f, expected to reach the global optimum 1.0", sol.Quality)
	}
}

func TestGreedyKeepWorsening(t *testing.T) {
	// An objective where each addition reduces quality: plain greedy
	// stops at one source, KeepWorsening fills to m.
	n, m := 10, 4
	obj := func(S *model.SourceSet) (float64, bool) {
		return 1 / float64(1+S.Len()), true
	}
	p := &Problem{N: n, M: m, Objective: obj}
	plain := NewGreedy().Optimize(p, 0)
	if plain.S.Len() != 1 {
		t.Errorf("plain greedy selected %d sources, want 1", plain.S.Len())
	}
	filler := &Greedy{KeepWorsening: true}
	full := filler.Optimize(p, 0)
	if full.S.Len() != m {
		t.Errorf("KeepWorsening greedy selected %d sources, want %d", full.S.Len(), m)
	}
}

func TestRequiredOnlyProblem(t *testing.T) {
	// m equals the number of required sources: the solution is forced.
	n := 10
	req := []int{1, 4, 8}
	p := &Problem{N: n, M: 3, Required: req, Objective: linearObjective(vals(n), 3), MaxEvals: 500}
	for _, opt := range allOptimizers() {
		sol := opt.Optimize(p, 9)
		if !sol.S.Equal(model.NewSourceSetOf(n, req...)) {
			t.Errorf("%s: forced solution not returned: %v", opt.Name(), sol.S.Elements())
		}
	}
}

func TestCountStates(t *testing.T) {
	// C(5,0)+C(5,1)+C(5,2) = 1+5+10 = 16
	if got := countStates(5, 2); got != 16 {
		t.Errorf("countStates(5,2) = %d, want 16", got)
	}
	if got := countStates(3, 3); got != 8 {
		t.Errorf("countStates(3,3) = %d, want 8 (full power set)", got)
	}
	// Saturation on huge instances.
	if got := countStates(500, 250); got != 1<<40 {
		t.Errorf("countStates should saturate, got %d", got)
	}
}

func TestSolverComparisonShape(t *testing.T) {
	// The paper's qualitative claim (§6/§7.1): tabu search is at least as
	// good as the other metaheuristics on a rugged landscape with a
	// shared evaluation budget. Allow a small tolerance — this asserts
	// "tabu is not worse", not a strict ranking.
	n, m := 60, 10
	obj := ruggedObjective(n, m)
	p := &Problem{N: n, M: m, Objective: obj, MaxEvals: 8000}
	tabu := NewTabu().Optimize(p, 123).Quality
	for _, opt := range []Optimizer{NewSLS(), NewAnneal(), NewPSO(), NewGreedy()} {
		q := opt.Optimize(p, 123).Quality
		if q > tabu+0.05 {
			t.Errorf("%s (%.3f) clearly beats tabu (%.3f); paper's ranking violated", opt.Name(), q, tabu)
		}
	}
}

func TestWarmStart(t *testing.T) {
	n, m := 40, 8
	values := vals(n)
	obj := linearObjective(values, m)
	// The known optimum: top-m value sources.
	best := NewExhaustive()
	_ = best
	// Build the optimum by hand: indices sorted by value desc.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	optimum := idx[:m]

	// A tiny budget starting cold cannot reliably find the optimum, but
	// warm-started at the optimum every optimizer must return it (the
	// tracker sees it on the very first evaluation).
	for _, opt := range allOptimizers() {
		if opt.Name() == "greedy" {
			continue // greedy ignores warm starts by design
		}
		p := &Problem{N: n, M: m, Initial: optimum, Objective: obj, MaxEvals: 30}
		sol := opt.Optimize(p, 4)
		if sol.Quality < 0.999 {
			t.Errorf("%s: warm start at the optimum lost it: %.4f", opt.Name(), sol.Quality)
		}
	}
}

func TestWarmStartSanitized(t *testing.T) {
	// Initial candidates violating the constraint region are repaired:
	// required sources added, excluded dropped, size truncated to m.
	n, m := 20, 3
	p := &Problem{
		N: n, M: m,
		Required:  []int{7},
		Excluded:  []int{1},
		Initial:   []int{1, 2, 3, 4, 5, 99, -1}, // excluded, too many, out of range
		Objective: linearObjective(vals(n), m),
		MaxEvals:  400,
	}
	for _, opt := range allOptimizers() {
		sol := opt.Optimize(p, 6)
		if !sol.S.Has(7) || sol.S.Has(1) || sol.S.Len() > m {
			t.Errorf("%s: sanitization failed: %v", opt.Name(), sol.S.Elements())
		}
	}
}

func TestWarmStartEmptyIgnored(t *testing.T) {
	// An Initial consisting only of invalid IDs behaves like no warm
	// start at all.
	n, m := 15, 3
	p := &Problem{
		N: n, M: m,
		Initial:   []int{-5, 99},
		Objective: linearObjective(vals(n), m),
		MaxEvals:  800,
	}
	sol := NewTabu().Optimize(p, 8)
	if sol.S == nil || sol.S.Len() == 0 {
		t.Error("degenerate warm start broke the search")
	}
}
