package search

import (
	"math/rand"

	"ube/internal/model"
)

// SLS is stochastic local search with random restarts: first-improvement
// hill climbing over the add/drop/swap neighborhood, restarting from a new
// random candidate when no sampled move improves. One of the baselines the
// paper compared tabu search against (§6).
type SLS struct {
	// Sample is the number of moves tried per improvement step.
	Sample int
	// Patience is the number of consecutive non-improving steps before
	// a restart.
	Patience int
	// Budget is the default evaluation budget.
	Budget int
}

// NewSLS returns an SLS optimizer with package defaults.
func NewSLS() *SLS { return &SLS{Sample: 24, Patience: 40, Budget: 16000} }

// Name implements Optimizer.
func (s *SLS) Name() string { return "sls" }

// Optimize implements Optimizer.
func (s *SLS) Optimize(p *Problem, seed int64) Solution {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tr := newTracker(p, s.Budget)
	pool := candidatePool(p)
	minLen := max(1, len(p.Required))

	warm := warmStart(p, pool)
	for !tr.exhausted() {
		climbSpan := p.Tracer.Begin("sls.climb")
		cur := warm
		warm = nil // only the first climb is warm-started
		if cur == nil {
			cur = randomStart(p, pool, rng)
		}
		curQ, _ := tr.eval(cur)
		fails := 0
		for fails < s.Patience && !tr.exhausted() {
			improved := false
			for i := 0; i < s.Sample && !tr.exhausted(); i++ {
				cand, d := randomNeighbor(p, cur, pool, minLen, rng)
				if cand == nil {
					break
				}
				if q, _ := tr.evalDelta(cand, d); q > curQ {
					cur, curQ = cand, q
					improved = true
					break // first improvement
				}
			}
			if improved {
				fails = 0
			} else {
				fails++
			}
		}
		p.Tracer.End(climbSpan)
	}
	return tr.solution()
}

// randomNeighbor applies one random admissible add/drop/swap to cur,
// returning the candidate with the edit that produced it, or a nil
// candidate when the constraint region admits no move.
func randomNeighbor(p *Problem, cur *model.SourceSet, pool []int, minLen int, rng *rand.Rand) (*model.SourceSet, Delta) {
	outs := removable(cur, p.Required)
	ins := addable(cur, pool)
	for attempt := 0; attempt < 8; attempt++ {
		cand := cur.Clone()
		switch k := rng.Intn(3); {
		case k == 0 && cur.Len() < p.M && len(ins) > 0:
			in := ins[rng.Intn(len(ins))]
			cand.Add(in)
			return cand, Delta{Base: cur, Add: in, Drop: -1}
		case k == 1 && cur.Len() > minLen && len(outs) > 0:
			out := outs[rng.Intn(len(outs))]
			cand.Remove(out)
			return cand, Delta{Base: cur, Add: -1, Drop: out}
		case k == 2 && len(outs) > 0 && len(ins) > 0:
			out := outs[rng.Intn(len(outs))]
			in := ins[rng.Intn(len(ins))]
			cand.Remove(out)
			cand.Add(in)
			return cand, Delta{Base: cur, Add: in, Drop: out}
		}
	}
	return nil, fullDelta()
}
