package search

import (
	"math"
	"testing"
)

// TestDoubleSolveByteIdentical pins optimizer-level reproducibility:
// every optimizer, sequential and with parallel workers, must return
// byte-identical results when run twice on the same (problem, seed) —
// the same set, the same quality bit pattern, the same accounting.
func TestDoubleSolveByteIdentical(t *testing.T) {
	n, m := 28, 6
	for _, opt := range allOptimizers() {
		for _, workers := range []int{1, 4} {
			p := &Problem{
				N: n, M: m,
				Required:  []int{3},
				Excluded:  []int{5},
				Objective: ruggedObjective(n, m),
				MaxEvals:  2500,
				Workers:   workers,
			}
			a := opt.Optimize(p, 42)
			b := opt.Optimize(p, 42)
			label := opt.Name()
			if a.S.Key() != b.S.Key() {
				t.Errorf("%s workers=%d: sets diverge: %v vs %v", label, workers, a.S.Elements(), b.S.Elements())
			}
			if math.Float64bits(a.Quality) != math.Float64bits(b.Quality) {
				t.Errorf("%s workers=%d: quality bits diverge: %v vs %v", label, workers, a.Quality, b.Quality)
			}
			if a.Feasible != b.Feasible || a.Evals != b.Evals {
				t.Errorf("%s workers=%d: accounting diverges: (%v,%d) vs (%v,%d)",
					label, workers, a.Feasible, a.Evals, b.Feasible, b.Evals)
			}
		}
	}
}
