package strsim

import (
	"fmt"
	"math"
	"sort"
)

// DynSparse is the mutable counterpart of BuildSparse: a θ-thresholded
// neighbor index over a *changing* subset of the cache's interned names,
// maintained by per-name Insert and Delete instead of whole-vocabulary
// rebuilds. The engine's churn layer keeps one per solve threshold and
// freezes it into an ordinary SparseScores for each solve.
//
// The maintained pair set is, by construction, exactly the pair set
// BuildSparse would produce over the same live names:
//
//   - In BlockPrefix mode the batch builder has exact recall (every pair
//     whose float32-rounded score reaches θ survives verification), and
//     an inserted name's candidates here are the union of the *full*
//     postings of its grams — a superset of any prefix-filtered probe,
//     since a positive Jaccard/Dice score requires at least one shared
//     gram. Exact verification then admits precisely the same pairs.
//
//   - In BlockMinHash mode candidates are same-(band, key) bucket
//     co-members, and both the per-name signature (a min-fold of salted
//     gram-string hashes) and the band keys are pure functions of the
//     name's gram strings and the seed — independent of insertion order
//     and of gram/name numbering — so the collision set, and after exact
//     verification the pair set, is identical to the batch build's.
//
// Scores are computed with the same integer set-overlap expressions and
// the same float32 rounding as BuildSparse, so frozen tables agree with
// batch-built ones bit for bit on every stored entry. DynSparse is not
// safe for concurrent use; the engine serializes churn against solves.
type DynSparse struct {
	cache *Cache
	theta float64
	cfg   BlockConfig
	gramN int
	dice  bool

	gramIDs map[string]int32        // own gram interning (IDs are arbitrary but stable)
	grams   []string                // gram ID -> gram string
	sets    map[int32][]int32       // live name ID -> ascending gram IDs
	post    map[int32][]int32       // gram ID -> ascending live name IDs
	rows    map[int32][]sparseEntry // live name ID -> θ-neighbors (self excluded), ascending
	stats   BlockStats

	// MinHash mode only.
	salts   []uint64
	keys    map[int32][]uint64   // live name ID -> per-band bucket key
	buckets []map[uint64][]int32 // band -> key -> ascending member IDs
}

// NewDynSparse returns an empty dynamic index over c at threshold theta.
// Constraints mirror BuildSparse: θ in (0,1] and an n-gram measure.
func NewDynSparse(c *Cache, theta float64, cfg BlockConfig) (*DynSparse, error) {
	if theta <= 0 || theta > 1 {
		return nil, fmt.Errorf("strsim: NewDynSparse theta %v outside (0,1]", theta)
	}
	var gramN int
	var dice bool
	switch meas := c.measure.(type) {
	case *NGramJaccard:
		gramN = meas.n
	case *NGramDice:
		gramN, dice = meas.n, true
	default:
		return nil, fmt.Errorf("%w (have %s)", ErrUnsupportedMeasure, c.measure.Name())
	}
	cfg = cfg.withDefaults()
	d := &DynSparse{
		cache:   c,
		theta:   theta,
		cfg:     cfg,
		gramN:   gramN,
		dice:    dice,
		gramIDs: make(map[string]int32),
		sets:    make(map[int32][]int32),
		post:    make(map[int32][]int32),
		rows:    make(map[int32][]sparseEntry),
	}
	switch cfg.Mode {
	case BlockPrefix:
	case BlockMinHash:
		k := cfg.Bands * cfg.Rows
		d.salts = make([]uint64, k)
		x := cfg.Seed
		for i := range d.salts {
			x = splitmix64(x)
			d.salts[i] = x
		}
		d.keys = make(map[int32][]uint64)
		d.buckets = make([]map[uint64][]int32, cfg.Bands)
		for b := range d.buckets {
			d.buckets[b] = make(map[uint64][]int32)
		}
	default:
		return nil, fmt.Errorf("strsim: unknown blocking mode %d", cfg.Mode)
	}
	return d, nil
}

// Theta reports the threshold the index maintains rows at.
func (d *DynSparse) Theta() float64 { return d.theta }

// Len reports the number of live (inserted, not deleted) names.
func (d *DynSparse) Len() int { return len(d.sets) }

// Contains reports whether the interned name ID is currently live.
func (d *DynSparse) Contains(id int) bool {
	_, ok := d.sets[int32(id)]
	return ok
}

// Stats reports the cumulative deterministic work counts of all inserts
// so far (candidates surfaced and pruned; probes = non-empty inserts).
func (d *DynSparse) Stats() BlockStats { return d.stats }

// gramID interns one gram string in the index's private gram space.
func (d *DynSparse) gramID(g string) int32 {
	if id, ok := d.gramIDs[g]; ok {
		return id
	}
	id := int32(len(d.grams))
	d.gramIDs[g] = id
	d.grams = append(d.grams, g)
	return id
}

// Insert makes one interned name live, discovering and verifying its
// θ-neighbors among the names already live. Inserting an ID that is
// already live, or one the cache never interned, is an error.
func (d *DynSparse) Insert(id int) error {
	if id < 0 || id >= d.cache.Len() {
		return fmt.Errorf("strsim: DynSparse.Insert of unknown name ID %d", id)
	}
	a := int32(id)
	if _, ok := d.sets[a]; ok {
		return fmt.Errorf("strsim: DynSparse.Insert of already-live name ID %d", id)
	}
	gs := NGrams(d.cache.NameOf(id), d.gramN)
	set := make([]int32, 0, len(gs))
	//ube:nondeterministic-ok gram IDs are private labels; the set is sorted below and all downstream folds are order-free
	for g := range gs {
		set = append(set, d.gramID(g))
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })

	// Candidate discovery. Both modes collect into a dedup set, then the
	// candidates are sorted so verification order (and hence row memory
	// behavior) is deterministic; membership itself is order-free.
	seen := make(map[int32]struct{})
	var cands []int32
	addCand := func(b int32) {
		if _, ok := seen[b]; ok {
			return
		}
		seen[b] = struct{}{}
		cands = append(cands, b)
	}
	var bandKeys []uint64
	if len(set) > 0 {
		d.stats.Probes++
		switch d.cfg.Mode {
		case BlockPrefix:
			for _, g := range set {
				for _, b := range d.post[g] {
					addCand(b)
				}
			}
		case BlockMinHash:
			k := len(d.salts)
			sig := make([]uint64, k)
			for i := range sig {
				sig[i] = math.MaxUint64
			}
			//ube:nondeterministic-ok the signature is a per-lane min over gram hashes, order-free
			for g := range gs {
				h := fnv64a(g)
				for i, salt := range d.salts {
					if v := splitmix64(h ^ salt); v < sig[i] {
						sig[i] = v
					}
				}
			}
			bandKeys = make([]uint64, d.cfg.Bands)
			for b := 0; b < d.cfg.Bands; b++ {
				key := uint64(0xcbf29ce484222325)
				for r := 0; r < d.cfg.Rows; r++ {
					key = (key ^ sig[b*d.cfg.Rows+r]) * 1099511628211
				}
				bandKeys[b] = key
				for _, m := range d.buckets[b][key] {
					addCand(m)
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	// Exact verification, mirroring BuildSparse's verify closure: the
	// same length filter, the same overlap expressions and the same
	// float32-rounded inclusion test.
	d.stats.Candidates += int64(len(cands))
	for _, b := range cands {
		sb := d.sets[b]
		if !lenCompatible(d.theta, len(set), len(sb), d.dice) {
			d.stats.Pruned++
			continue
		}
		inter := interSize(set, sb)
		var s float64
		if d.dice {
			s = 2 * float64(inter) / float64(len(set)+len(sb))
		} else {
			s = float64(inter) / float64(len(set)+len(sb)-inter)
		}
		if float64(float32(s)) >= d.theta {
			d.rows[a] = insertEntry(d.rows[a], sparseEntry{id: b, score: float32(s)})
			d.rows[b] = insertEntry(d.rows[b], sparseEntry{id: a, score: float32(s)})
		} else {
			d.stats.Pruned++
		}
	}

	// Publish the name into the index structures.
	for _, g := range set {
		d.post[g] = insertID(d.post[g], a)
	}
	if d.cfg.Mode == BlockMinHash && len(set) > 0 {
		for b, key := range bandKeys {
			d.buckets[b][key] = insertID(d.buckets[b][key], a)
		}
		d.keys[a] = bandKeys
	}
	d.sets[a] = set
	return nil
}

// Delete removes one live name: its postings, bucket memberships and
// row, plus its entry in every neighbor's row. Deleting a name that is
// not live is an error.
func (d *DynSparse) Delete(id int) error {
	a := int32(id)
	set, ok := d.sets[a]
	if !ok {
		return fmt.Errorf("strsim: DynSparse.Delete of non-live name ID %d", id)
	}
	for _, e := range d.rows[a] {
		d.rows[e.id] = removeEntry(d.rows[e.id], a)
		if len(d.rows[e.id]) == 0 {
			delete(d.rows, e.id)
		}
	}
	delete(d.rows, a)
	for _, g := range set {
		d.post[g] = removeID(d.post[g], a)
		if len(d.post[g]) == 0 {
			delete(d.post, g)
		}
	}
	if d.cfg.Mode == BlockMinHash {
		if keys, ok := d.keys[a]; ok {
			for b, key := range keys {
				d.buckets[b][key] = removeID(d.buckets[b][key], a)
				if len(d.buckets[b][key]) == 0 {
					delete(d.buckets[b], key)
				}
			}
			delete(d.keys, a)
		}
	}
	delete(d.sets, a)
	return nil
}

// Freeze materializes the current state as an ordinary SparseScores over
// the cache's full intern space (cache.Len() rows). Names that are not
// live — never inserted, or deleted — get a self-only row, exactly what
// BuildSparse gives an isolated name; callers that only query live names
// (the engine routes solves through live sources' name IDs) observe a
// table bit-identical to a fresh batch build over the live names.
func (d *DynSparse) Freeze() *SparseScores {
	n := d.cache.Len()
	s := &SparseScores{n: n, theta: d.theta, start: make([]int32, n+1), cache: d.cache}
	nnz := n
	//ube:nondeterministic-ok summing row lengths commutes; order cannot matter
	for _, row := range d.rows {
		nnz += len(row)
	}
	s.cols = make([]int32, 0, nnz)
	s.vals = make([]float32, 0, nnz)
	for i := 0; i < n; i++ {
		row := d.rows[int32(i)]
		// Splice the self entry (score exactly 1) into the ascending row.
		selfAt := len(row)
		for k, e := range row {
			if e.id > int32(i) {
				selfAt = k
				break
			}
		}
		for _, e := range row[:selfAt] {
			s.cols = append(s.cols, e.id)
			s.vals = append(s.vals, e.score)
		}
		s.cols = append(s.cols, int32(i))
		s.vals = append(s.vals, 1)
		for _, e := range row[selfAt:] {
			s.cols = append(s.cols, e.id)
			s.vals = append(s.vals, e.score)
		}
		s.start[i+1] = int32(len(s.cols))
	}
	return s
}

// insertEntry splices e into an ascending-ID row. Rows never hold
// duplicate IDs: a pair is verified once per insert of its newer side.
func insertEntry(row []sparseEntry, e sparseEntry) []sparseEntry {
	at := sort.Search(len(row), func(i int) bool { return row[i].id >= e.id })
	row = append(row, sparseEntry{})
	copy(row[at+1:], row[at:])
	row[at] = e
	return row
}

// removeEntry deletes the entry with the given ID from an ascending row.
func removeEntry(row []sparseEntry, id int32) []sparseEntry {
	at := sort.Search(len(row), func(i int) bool { return row[i].id >= id })
	if at < len(row) && row[at].id == id {
		row = append(row[:at], row[at+1:]...)
	}
	return row
}

// insertID splices v into an ascending ID list.
func insertID(lst []int32, v int32) []int32 {
	at := sort.Search(len(lst), func(i int) bool { return lst[i] >= v })
	lst = append(lst, 0)
	copy(lst[at+1:], lst[at:])
	lst[at] = v
	return lst
}

// removeID deletes v from an ascending ID list.
func removeID(lst []int32, v int32) []int32 {
	at := sort.Search(len(lst), func(i int) bool { return lst[i] >= v })
	if at < len(lst) && lst[at] == v {
		lst = append(lst[:at], lst[at+1:]...)
	}
	return lst
}
