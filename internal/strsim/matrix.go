package strsim

import "fmt"

// A Scorer scores similarity between two interned attribute names. Cache
// implements Scorer with lazy memoization; Matrix implements it with a
// precomputed dense table for the hot clustering loop.
type Scorer interface {
	Score(a, b int) float64
}

// A Table is a Scorer backed by a precomputed score table over the full
// interned vocabulary whose every result is an exact float32 value —
// either stored as float32 (Matrix, SparseScores rows) or explicitly
// rounded through float32 (the SparseScores fallback). The clustering
// agenda gates its 30-bit radix sort keys and the seed-pair fast path
// on this property, so only scorers that guarantee it implement the
// marker.
type Table interface {
	Scorer
	// Len reports the number of names the table covers.
	Len() int
	// float32Exact marks the scorer's float32-exactness; it is
	// unexported so only this package can make the promise.
	float32Exact()
}

// MaxMatrixNames caps BuildMatrix's vocabulary size. The dense table
// costs 4·n² bytes — 1 GiB at the cap — and past it a build is almost
// certainly a mistake (and on 32-bit n·n overflows int well before the
// alloc): large vocabularies belong on BuildSparse.
const MaxMatrixNames = 16384

// Matrix is a dense, read-only table of pairwise similarities between all
// names interned in a Cache at build time. Lookups are lock-free array
// reads, which matters because the search loop re-clusters candidate
// source sets thousands of times. Scores are stored as float32: schema
// similarity coefficients are ratios of small integers and lose nothing
// that matters to a θ comparison at that precision.
type Matrix struct {
	n    int
	vals []float32
}

// BuildMatrix computes the full similarity matrix over every name interned
// so far. Names interned after the build are unknown to the matrix and
// make Score panic, so callers must intern the complete vocabulary first —
// the engine interns every attribute name of the universe before building.
// Vocabularies beyond MaxMatrixNames are refused (the n² table would be
// multi-GiB); use BuildSparse for those.
func (c *Cache) BuildMatrix() (*Matrix, error) {
	c.mu.RLock()
	names := append([]string(nil), c.names...)
	c.mu.RUnlock()
	n := len(names)
	if n > MaxMatrixNames {
		return nil, fmt.Errorf("strsim: BuildMatrix over %d names exceeds the %d-name limit (the dense table would need %d MiB); use BuildSparse", n, MaxMatrixNames, 4*int64(n)*int64(n)>>20)
	}
	m := &Matrix{n: n, vals: make([]float32, n*n)}

	// Precompute gram sets once per name when the measure is gram-based;
	// other measures fall back to direct scoring.
	score := func(i, j int) float64 { return c.measure.Score(names[i], names[j]) }
	var gramN int
	var setScore func(a, b map[string]struct{}) float64
	switch meas := c.measure.(type) {
	case *NGramJaccard:
		gramN, setScore = meas.n, Jaccard[string]
	case *NGramDice:
		gramN, setScore = meas.n, Dice[string]
	}
	if setScore != nil {
		grams := make([]map[string]struct{}, n)
		for i, name := range names {
			grams[i] = NGrams(name, gramN)
		}
		score = func(i, j int) float64 { return setScore(grams[i], grams[j]) }
	}

	for i := 0; i < n; i++ {
		m.vals[i*n+i] = 1
		for j := i + 1; j < n; j++ {
			s := float32(score(i, j))
			m.vals[i*n+j] = s
			m.vals[j*n+i] = s
		}
	}
	return m, nil
}

// float32Exact marks Matrix as a Table: it stores every score as
// float32.
func (m *Matrix) float32Exact() {}

// Len reports the number of names the matrix covers.
func (m *Matrix) Len() int { return m.n }

// Score implements Scorer. Both IDs must have been interned before the
// matrix was built.
func (m *Matrix) Score(a, b int) float64 {
	if a >= m.n || b >= m.n || a < 0 || b < 0 {
		panic("strsim: Matrix.Score on a name interned after BuildMatrix")
	}
	return float64(m.vals[a*m.n+b])
}

// SizeBytes reports the memory footprint of the score table.
func (m *Matrix) SizeBytes() int { return 4 * len(m.vals) }

// Neighbors returns, for every name ID, the ascending list of name IDs
// (including itself) whose similarity is at least theta. Clustering uses
// this index to enumerate only the cluster pairs that can possibly merge,
// instead of scoring all Θ(k²) pairs every round.
func (m *Matrix) Neighbors(theta float64) [][]int {
	out := make([][]int, m.n)
	for i := 0; i < m.n; i++ {
		row := m.vals[i*m.n : (i+1)*m.n]
		var nbr []int
		for j, s := range row {
			if float64(s) >= theta {
				nbr = append(nbr, j)
			}
		}
		out[i] = nbr
	}
	return out
}
