package strsim

import "sync"

// Cache memoizes pairwise similarity scores between interned attribute
// names. Synthetic and real schema corpora repeat the same handful of names
// across hundreds of sources, and the µBE search loop re-clusters candidate
// source sets thousands of times, so caching per unique name pair turns the
// dominant cost of clustering into a map lookup.
//
// A Cache is safe for concurrent use.
type Cache struct {
	measure Measure

	mu    sync.RWMutex
	ids   map[string]int // normalized name -> intern ID
	names []string       // intern ID -> normalized name
	pairs map[pairKey]float64
}

type pairKey struct{ lo, hi int }

// NewCache returns a Cache wrapping the given measure. A nil measure means
// Default().
func NewCache(m Measure) *Cache {
	if m == nil {
		m = Default()
	}
	return &Cache{
		measure: m,
		ids:     make(map[string]int),
		pairs:   make(map[pairKey]float64),
	}
}

// Measure returns the underlying measure.
func (c *Cache) Measure() Measure { return c.measure }

// Intern returns a stable small integer ID for the normalized form of name.
// Two names with the same normalized form share an ID.
func (c *Cache) Intern(name string) int {
	n := Normalize(name)
	c.mu.RLock()
	id, ok := c.ids[n]
	c.mu.RUnlock()
	if ok {
		return id
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.ids[n]; ok {
		return id
	}
	id = len(c.names)
	c.ids[n] = id
	c.names = append(c.names, n)
	return id
}

// NameOf returns the normalized name for an intern ID. It panics on an ID
// that was never returned by Intern, which always indicates a programming
// error in the caller.
func (c *Cache) NameOf(id int) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.names[id]
}

// Len reports how many distinct normalized names have been interned.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.names)
}

// Score returns the similarity between two interned names, computing and
// caching it on first use. Identical IDs score 1 without consulting the
// measure (every Measure must satisfy Score(a,a)==1 for non-empty a, and
// clustering never needs self-similarity of the empty name).
func (c *Cache) Score(a, b int) float64 {
	if a == b {
		return 1
	}
	k := pairKey{a, b}
	if a > b {
		k = pairKey{b, a}
	}
	c.mu.RLock()
	s, ok := c.pairs[k]
	c.mu.RUnlock()
	if ok {
		return s
	}
	c.mu.RLock()
	na, nb := c.names[a], c.names[b]
	c.mu.RUnlock()
	s = c.measure.Score(na, nb)
	c.mu.Lock()
	c.pairs[k] = s
	c.mu.Unlock()
	return s
}

// ScoreNames is a convenience that interns both names and returns their
// cached similarity.
func (c *Cache) ScoreNames(a, b string) float64 {
	return c.Score(c.Intern(a), c.Intern(b))
}
