package strsim

import (
	"math/rand"
	"testing"
)

// levenshteinRef is the pre-fast-path implementation, kept as the
// reference for the differential test: always rune slices, no trimming.
func levenshteinRef(a, b string) int {
	return levenshteinGeneric([]rune(a), []rune(b))
}

// TestLevenshteinFastPathsMatchReference checks the ASCII byte path and
// the prefix/suffix trimming against the plain rune DP over random string
// pairs, including multi-byte inputs and pairs engineered to share long
// prefixes and suffixes.
func TestLevenshteinFastPathsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabets := []string{
		"abcdefgh ",
		"abcéü日本語 ",
		"aab", // heavy repetition → long shared affixes
	}
	randStr := func(alpha []rune, n int) string {
		out := make([]rune, n)
		for i := range out {
			out[i] = alpha[r.Intn(len(alpha))]
		}
		return string(out)
	}
	for trial := 0; trial < 2000; trial++ {
		alpha := []rune(alphabets[trial%len(alphabets)])
		a := randStr(alpha, r.Intn(20))
		b := randStr(alpha, r.Intn(20))
		if trial%3 == 0 {
			// Force shared affixes around a differing core.
			pre := randStr(alpha, r.Intn(8))
			suf := randStr(alpha, r.Intn(8))
			a = pre + a + suf
			b = pre + b + suf
		}
		if got, want := Levenshtein(a, b), levenshteinRef(a, b); got != want {
			t.Fatalf("Levenshtein(%q,%q) = %d, reference %d", a, b, got, want)
		}
	}
}

// Typical normalized attribute-name pairs: mostly ASCII, short, often
// sharing affixes — the matcher's actual workload for LevenshteinRatio.
var levenshteinPairs = [][2]string{
	{"title", "book title"},
	{"isbn", "isbn number"},
	{"author name", "author names"},
	{"publication date", "date of publication"},
	{"price range", "price"},
	{"keyword", "keywords"},
}

func BenchmarkLevenshteinASCII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := levenshteinPairs[i%len(levenshteinPairs)]
		Levenshtein(p[0], p[1])
	}
}

// BenchmarkLevenshteinASCIIRef is the ablation baseline: the same pairs
// through the plain rune DP with no trimming.
func BenchmarkLevenshteinASCIIRef(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := levenshteinPairs[i%len(levenshteinPairs)]
		levenshteinRef(p[0], p[1])
	}
}

func BenchmarkLevenshteinUnicode(b *testing.B) {
	pairs := [][2]string{
		{"títle", "böok títle"},
		{"autor", "auteur é"},
	}
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		Levenshtein(p[0], p[1])
	}
}
