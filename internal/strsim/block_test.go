package strsim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// blockVocab builds a deterministic mixed vocabulary of about n names:
// clusters of shared-core variants (pairs above the paper's θ), plus
// lexically unrelated random words and a few short/unicode edge cases.
func blockVocab(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	letters := "abcdefghijklmnopqrstuvwxyz"
	word := func(k int) string {
		b := make([]byte, k)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	}
	suffixes := []string{"", "s", " id", " code", " number"}
	names := []string{"a", "ab", "é", "日本語", "x y"}
	for len(names) < n {
		core := word(6 + r.Intn(8))
		for _, suf := range suffixes[:1+r.Intn(len(suffixes))] {
			names = append(names, core+suf)
		}
	}
	return names[:n]
}

// exactPairs computes the reference θ-pair set: every unordered ID pair
// whose exact measure score, rounded through float32 like every stored
// table cell, reaches θ.
func exactPairs(c *Cache, theta float64) map[[2]int]bool {
	out := make(map[[2]int]bool)
	n := c.Len()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			//ube:float-exact the float32 rounding is the table-inclusion contract under test
			if float64(float32(c.Score(a, b))) >= theta {
				out[[2]int{a, b}] = true
			}
		}
	}
	return out
}

// sparsePairs extracts the unordered above-θ pair set a sparse table holds.
func sparsePairs(sp *SparseScores, theta float64) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for a, row := range sp.Neighbors(theta) {
		for _, b := range row {
			if a < b {
				out[[2]int{a, b}] = true
			}
		}
	}
	return out
}

// TestPrefixBlockingExactRecall: the prefix-filter mode is lossless — on
// mixed vocabularies, for both n-gram measures and several θ, the sparse
// table holds exactly the pairs the all-pairs scorer puts at or above θ
// (recall 1 by the prefix-filter argument, precision 1 by verification).
func TestPrefixBlockingExactRecall(t *testing.T) {
	for _, tc := range []struct {
		name    string
		measure Measure
	}{
		{"jaccard3", NewNGramJaccard(3)},
		{"dice3", NewNGramDice(3)},
		{"jaccard2", NewNGramJaccard(2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCache(tc.measure)
			for _, name := range blockVocab(600, 7) {
				c.Intern(name)
			}
			for _, theta := range []float64{0.3, 0.5, 0.65, 0.8, 0.95} {
				sp, stats, err := c.BuildSparse(theta, BlockConfig{})
				if err != nil {
					t.Fatalf("θ=%v: %v", theta, err)
				}
				want := exactPairs(c, theta)
				got := sparsePairs(sp, theta)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("θ=%v: sparse holds %d pairs, exact scorer says %d", theta, len(got), len(want))
					for p := range want {
						if !got[p] {
							t.Errorf("θ=%v: missed pair %v (score %v)", theta, p, c.Score(p[0], p[1]))
						}
					}
				}
				if stats.Candidates < int64(len(want)) {
					t.Errorf("θ=%v: %d candidates cannot cover %d true pairs", theta, stats.Candidates, len(want))
				}
			}
		})
	}
}

// TestMinHashBlockingRecall: the probabilistic LSH mode must reach ≥0.98
// recall against the exact θ-pair set at the paper's θ, with perfect
// precision (candidates are exactly verified).
func TestMinHashBlockingRecall(t *testing.T) {
	c := NewCache(nil)
	for _, name := range blockVocab(1000, 11) {
		c.Intern(name)
	}
	theta := 0.65
	sp, _, err := c.BuildSparse(theta, BlockConfig{Mode: BlockMinHash})
	if err != nil {
		t.Fatal(err)
	}
	want := exactPairs(c, theta)
	got := sparsePairs(sp, theta)
	for p := range got {
		if !want[p] {
			t.Errorf("false pair %v survived verification (score %v)", p, c.Score(p[0], p[1]))
		}
	}
	hits := 0
	for p := range want {
		if got[p] {
			hits++
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate vocabulary: no exact pairs to recall")
	}
	recall := float64(hits) / float64(len(want))
	if recall < 0.98 {
		t.Errorf("MinHash recall %.4f (%d/%d) below 0.98", recall, hits, len(want))
	}
}

// TestSparseMatchesMatrix: on a vocabulary where both tables exist, every
// Score the sparse table answers is bit-identical to the dense matrix —
// above θ from its own entries, below θ through the float32-rounded
// fallback — and the ≥θ adjacency agrees.
func TestSparseMatchesMatrix(t *testing.T) {
	c := NewCache(nil)
	for _, name := range blockVocab(300, 3) {
		c.Intern(name)
	}
	m := mustMatrix(c)
	theta := 0.5
	sp, _, err := c.BuildSparse(theta, BlockConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != m.Len() {
		t.Fatalf("sparse covers %d names, matrix %d", sp.Len(), m.Len())
	}
	for a := 0; a < sp.Len(); a++ {
		for b := 0; b < sp.Len(); b++ {
			//ube:float-exact bit-identity of the two storage paths is the property under test
			if sp.Score(a, b) != m.Score(a, b) {
				t.Fatalf("Score(%d,%d): sparse %v, matrix %v", a, b, sp.Score(a, b), m.Score(a, b))
			}
		}
	}
	for _, th := range []float64{theta, 0.65, 0.9} {
		if !reflect.DeepEqual(m.Neighbors(th), sp.Neighbors(th)) {
			t.Errorf("Neighbors(%v) differ between matrix and sparse", th)
		}
	}
}

// TestSparseDeterminism: two independent builds produce identical stats
// and identical tables, in both modes.
func TestSparseDeterminism(t *testing.T) {
	for _, mode := range []BlockMode{BlockPrefix, BlockMinHash} {
		c1 := NewCache(nil)
		c2 := NewCache(nil)
		for _, name := range blockVocab(400, 5) {
			c1.Intern(name)
			c2.Intern(name)
		}
		cfg := BlockConfig{Mode: mode}
		sp1, st1, err := c1.BuildSparse(0.65, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp2, st2, err := c2.BuildSparse(0.65, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st1 != st2 {
			t.Errorf("mode %d: stats differ across builds: %+v vs %+v", mode, st1, st2)
		}
		if sp1.NNZ() != sp2.NNZ() || !reflect.DeepEqual(sp1.Neighbors(0.65), sp2.Neighbors(0.65)) {
			t.Errorf("mode %d: tables differ across builds", mode)
		}
	}
}

// TestSparseScoreContract: range panics, the stored diagonal, the
// float32-rounded sub-θ fallback, and SizeBytes accounting.
func TestSparseScoreContract(t *testing.T) {
	c := NewCache(nil)
	ids := make([]int, 0, 4)
	for _, n := range []string{"title", "titles", "author", "zzz unrelated"} {
		ids = append(ids, c.Intern(n))
	}
	sp, _, err := c.BuildSparse(0.65, BlockConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range ids {
		//ube:float-exact the diagonal is an exact stored 1
		if sp.Score(a, a) != 1 {
			t.Errorf("self score of %d = %v", a, sp.Score(a, a))
		}
	}
	// "author" vs "title" is far below θ: the answer must come from the
	// exact measure rounded through float32, matching a dense cell.
	//ube:float-exact fallback must round like a stored float32 cell
	if got, want := sp.Score(ids[0], ids[2]), float64(float32(c.Score(ids[0], ids[2]))); got != want {
		t.Errorf("sub-θ fallback = %v, want %v", got, want)
	}
	if sp.Theta() != 0.65 {
		t.Errorf("Theta = %v", sp.Theta())
	}
	if want := 4 * (sp.Len() + 1 + 2*sp.NNZ()); sp.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", sp.SizeBytes(), want)
	}
	defer func() {
		if recover() == nil {
			t.Error("Score on an out-of-range ID did not panic")
		}
	}()
	sp.Score(0, sp.Len())
}

// TestSparseNeighborsPanicsBelowBuildTheta: the table only holds ≥build-θ
// entries, so asking for a looser adjacency must refuse loudly instead of
// silently under-reporting.
func TestSparseNeighborsPanicsBelowBuildTheta(t *testing.T) {
	c := NewCache(nil)
	c.Intern("title")
	c.Intern("titles")
	sp, _, err := c.BuildSparse(0.65, BlockConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Neighbors below the build θ did not panic")
		}
	}()
	sp.Neighbors(0.5)
}

// TestBuildSparseErrors: θ outside (0,1] and measures without a sound
// blocking scheme are rejected.
func TestBuildSparseErrors(t *testing.T) {
	c := NewCache(nil)
	c.Intern("title")
	for _, theta := range []float64{0, -0.5, 1.5} {
		if _, _, err := c.BuildSparse(theta, BlockConfig{}); err == nil {
			t.Errorf("θ=%v: no error", theta)
		}
	}
	tok := NewCache(TokenJaccard{})
	tok.Intern("title")
	_, _, err := tok.BuildSparse(0.65, BlockConfig{})
	if !errors.Is(err, ErrUnsupportedMeasure) {
		t.Errorf("token measure: err = %v, want ErrUnsupportedMeasure", err)
	}
}

// TestBuildMatrixGuard: the dense table refuses vocabularies whose n²
// float32 cells would be a silent gigabyte-scale allocation.
func TestBuildMatrixGuard(t *testing.T) {
	c := NewCache(nil)
	for i := 0; i <= MaxMatrixNames; i++ {
		c.Intern(fmt.Sprintf("name %d", i))
	}
	if c.Len() != MaxMatrixNames+1 {
		t.Fatalf("interned %d names", c.Len())
	}
	if _, err := c.BuildMatrix(); err == nil {
		t.Fatal("BuildMatrix over the limit did not error")
	}
	// The sparse path is the documented escape hatch and must accept the
	// same vocabulary.
	if _, _, err := c.BuildSparse(0.65, BlockConfig{}); err != nil {
		t.Fatalf("BuildSparse on the same vocabulary: %v", err)
	}
}

func BenchmarkBlockingBuild(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  BlockConfig
	}{
		{"prefix", BlockConfig{}},
		{"minhash", BlockConfig{Mode: BlockMinHash}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			c := NewCache(nil)
			for _, name := range blockVocab(4096, 9) {
				c.Intern(name)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.BuildSparse(0.65, mode.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
