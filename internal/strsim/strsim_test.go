package strsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Author Name", "author name"},
		{"author_name", "author name"},
		{"AUTHOR-NAME", "author name"},
		{"  keyword  ", "keyword"},
		{"Pub. Date", "pub date"},
		{"ISBN#", "isbn"},
		{"", ""},
		{"---", ""},
		{"Prénom", "prénom"},
		{"a  b\tc", "a b c"},
		{"search for:", "search for"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNGrams(t *testing.T) {
	g := NGrams("title", 3)
	want := []string{"tit", "itl", "tle"}
	if len(g) != len(want) {
		t.Fatalf("NGrams(title,3) has %d grams, want %d: %v", len(g), len(want), g)
	}
	for _, w := range want {
		if _, ok := g[w]; !ok {
			t.Errorf("NGrams(title,3) missing gram %q", w)
		}
	}
	// A name shorter than n is a single gram.
	short := NGrams("ab", 3)
	if len(short) != 1 {
		t.Fatalf("NGrams(ab,3) = %v, want single whole-name gram", short)
	}
	if _, ok := short["ab"]; !ok {
		t.Errorf("NGrams(ab,3) missing whole-name gram: %v", short)
	}
	if len(NGrams("", 3)) != 0 {
		t.Error("NGrams of empty string should be empty")
	}
	if len(NGrams("!!!", 3)) != 0 {
		t.Error("NGrams of punctuation-only string should be empty")
	}
}

func TestJaccardKnownValues(t *testing.T) {
	set := func(ks ...string) map[string]struct{} {
		m := make(map[string]struct{})
		for _, k := range ks {
			m[k] = struct{}{}
		}
		return m
	}
	if got := Jaccard(set("a", "b"), set("b", "c")); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(set("a"), set("a")); got != 1 {
		t.Errorf("Jaccard identical = %v, want 1", got)
	}
	if got := Jaccard(set("a"), set("b")); got != 0 {
		t.Errorf("Jaccard disjoint = %v, want 0", got)
	}
	if got := Jaccard(set(), set()); got != 0 {
		t.Errorf("Jaccard empty = %v, want 0", got)
	}
	if got := Dice(set("a", "b"), set("b", "c")); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Dice = %v, want 0.5", got)
	}
}

// allMeasures returns every measure the package ships.
func allMeasures() []Measure {
	return []Measure{
		NewNGramJaccard(3),
		NewNGramJaccard(2),
		NewNGramDice(3),
		TokenJaccard{},
		TokenCosine{},
		LevenshteinRatio{},
		JaroWinkler{},
		Exact{},
	}
}

func TestMeasureProperties(t *testing.T) {
	for _, m := range allMeasures() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			// Symmetry, range, and self-similarity on random strings.
			sym := func(a, b string) bool {
				s1, s2 := m.Score(a, b), m.Score(b, a)
				if s1 != s2 {
					return false
				}
				if s1 < 0 || s1 > 1 {
					return false
				}
				if Normalize(a) != "" && m.Score(a, a) != 1 {
					return false
				}
				return true
			}
			if err := quick.Check(sym, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestPaperExamples(t *testing.T) {
	m := Default()
	// "keyword" vs "keywords" should comfortably clear the paper's default
	// threshold θ = 0.65: near-identical names must match.
	if s := m.Score("keyword", "keywords"); s < 0.65 {
		t.Errorf("keyword/keywords = %v, want >= 0.65", s)
	}
	// Identical names modulo normalization score exactly 1.
	if s := m.Score("Author Name", "author_name"); s != 1 {
		t.Errorf("normalized-identical names = %v, want 1", s)
	}
	// Semantically equal but lexically distant names (the Figure 3 example:
	// "F name" vs "Prenom") must NOT clear the threshold — that is exactly
	// why GA constraints exist.
	if s := m.Score("F name", "Prenom"); s >= 0.65 {
		t.Errorf("F name/Prenom = %v, want < 0.65", s)
	}
	// Unrelated names score low.
	if s := m.Score("price", "director"); s >= 0.3 {
		t.Errorf("price/director = %v, want < 0.3", s)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"book", "back", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	// Edit distance satisfies the triangle inequality.
	tri := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCache(t *testing.T) {
	c := NewCache(nil)
	a := c.Intern("Author")
	b := c.Intern("author") // same normalized form
	if a != b {
		t.Errorf("Intern should unify normalized-equal names: %d vs %d", a, b)
	}
	k := c.Intern("keyword")
	if k == a {
		t.Error("distinct names must get distinct IDs")
	}
	if got := c.NameOf(k); got != "keyword" {
		t.Errorf("NameOf = %q", got)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	direct := Default().Score("author", "keyword")
	if got := c.Score(a, k); got != direct {
		t.Errorf("cached Score = %v, direct = %v", got, direct)
	}
	// Second call must hit the cache and return the identical value.
	if got := c.Score(k, a); got != direct {
		t.Errorf("cached symmetric Score = %v, want %v", got, direct)
	}
	if got := c.Score(a, a); got != 1 {
		t.Errorf("self Score = %v, want 1", got)
	}
	if got := c.ScoreNames("Keyword", "keyword"); got != 1 {
		t.Errorf("ScoreNames normalized-equal = %v, want 1", got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(nil)
	names := []string{"title", "author", "isbn", "keyword", "price", "format"}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				a := names[i%len(names)]
				b := names[(i+1)%len(names)]
				s := c.ScoreNames(a, b)
				if s < 0 || s > 1 {
					t.Errorf("score out of range: %v", s)
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestMeasureNames(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range allMeasures() {
		n := m.Name()
		if n == "" {
			t.Error("empty measure name")
		}
		// 3- and 2-gram Jaccard share a name; that's fine, but the
		// remaining measures must be distinct.
		seen[n] = true
	}
	if len(seen) < 7 {
		t.Errorf("expected at least 7 distinct measure names, got %d", len(seen))
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	m := JaroWinkler{}
	// Classic reference pair: martha/marhta ≈ 0.961.
	if got := m.Score("martha", "marhta"); math.Abs(got-0.9611) > 0.001 {
		t.Errorf("martha/marhta = %v, want ≈0.961", got)
	}
	// Shared prefixes boost: "keyword"/"keywords" is very high.
	if got := m.Score("keyword", "keywords"); got < 0.9 {
		t.Errorf("keyword/keywords = %v, want ≥ 0.9", got)
	}
	if got := m.Score("abc", "xyz"); got != 0 {
		t.Errorf("disjoint strings = %v, want 0", got)
	}
}

func TestTokenCosineKnownValues(t *testing.T) {
	m := TokenCosine{}
	// Reordered tokens score 1 on cosine over token counts... "date of
	// publication" vs "publication date": shared {date, publication} of
	// norms √3·√2 → 2/√6 ≈ 0.816.
	if got := m.Score("date of publication", "publication date"); math.Abs(got-2/math.Sqrt(6)) > 1e-9 {
		t.Errorf("reordered tokens = %v, want ≈0.816", got)
	}
	if got := m.Score("title", "title"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := m.Score("title", "price"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}
