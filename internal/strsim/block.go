package strsim

// This file implements the blocking (candidate-generation) layer that
// makes similarity sub-quadratic on large vocabularies. Instead of
// scoring all n² name pairs like BuildMatrix, a blocking index surfaces
// only the pairs that can plausibly reach θ and verifies exactly those
// with the real measure:
//
//   - BlockPrefix (the default) is an exact-recall mode: a character
//     n-gram inverted index with full postings, probed with prefix
//     filtering (AllPairs/ppjoin-style). A pair with score ≥ θ must
//     share at least m grams, and m common grams cannot all hide in a
//     probe's last m−1 grams, so probing only the first s−m+1 grams of
//     each name (in a canonical rarest-first gram order) finds every
//     qualifying pair. Candidates then pass a size-window check before
//     exact verification.
//
//   - BlockMinHash trades a bounded recall loss (< 2‰ per pair at θ
//     with the default 32×4 banding) for index probes that do not
//     depend on posting-list lengths: each name gets a MinHash
//     signature over its grams, and names colliding in any band become
//     candidates. Candidates are exactly verified, so precision is
//     still 1 — only recall is probabilistic.
//
// Both modes are deterministic: gram order, probe order and all hashes
// are pure functions of the name set (and the fixed MinHash seed), so
// the resulting candidate pairs — and everything built from them — are
// byte-reproducible across runs, machines and -race.
//
// The prefix-filter thresholds are conservatively widened (by more than
// one float32 ulp) because the sparse scorer's inclusion test rounds
// scores through float32 exactly like the dense Matrix does: a pair
// whose exact score is marginally below θ can still round into the
// θ-neighborhood, and the index must not lose it. Widening can only
// lengthen prefixes and size windows, so recall is never at risk.

import (
	"errors"
	"math"
	"sort"
)

// BlockMode selects how the blocking index generates candidate pairs.
type BlockMode int

const (
	// BlockPrefix probes an n-gram inverted index with prefix and
	// length filtering. Recall is exactly 1 for the n-gram measures.
	BlockPrefix BlockMode = iota
	// BlockMinHash buckets names by banded MinHash signatures. Recall
	// is probabilistic (≈ 0.998 per pair at θ = 0.65 with the default
	// banding) but probing cost is independent of gram frequency.
	BlockMinHash
)

// Default MinHash banding: 32 bands of 4 rows. At θ = 0.65 a pair at
// exactly the threshold collides in at least one band with probability
// 1 − (1 − 0.65⁴)³² ≈ 0.998; pairs above θ are caught with higher
// probability still.
const (
	DefaultBands = 32
	DefaultRows  = 4
)

// defaultMinHashSeed seeds the MinHash permutations when the config
// leaves Seed zero. It is a fixed constant — never wall-clock or global
// randomness — so indexes are reproducible across processes.
const defaultMinHashSeed = 0x9e3779b97f4a7c15

// BlockConfig configures the blocking index.
type BlockConfig struct {
	// Mode selects the candidate-generation strategy.
	Mode BlockMode
	// Bands and Rows shape the MinHash banding (BlockMinHash only);
	// zero values take the package defaults.
	Bands, Rows int
	// Seed perturbs the MinHash permutations; zero takes the fixed
	// package default. Deterministic for any fixed value.
	Seed uint64
}

func (c BlockConfig) withDefaults() BlockConfig {
	if c.Bands <= 0 {
		c.Bands = DefaultBands
	}
	if c.Rows <= 0 {
		c.Rows = DefaultRows
	}
	if c.Seed == 0 {
		c.Seed = defaultMinHashSeed
	}
	return c
}

// BlockStats reports the deterministic work counts of one sparse build:
// names probed against the index, candidate pairs surfaced before exact
// verification, and candidates the size window or the exact measure
// rejected. Candidates − Pruned pairs end up in the sparse scorer.
type BlockStats struct {
	Probes     int64
	Candidates int64
	Pruned     int64
}

// ErrUnsupportedMeasure is returned by BuildSparse for measures the
// blocking index has no sound candidate generation for. Only the n-gram
// measures (NGramJaccard, NGramDice) are supported.
var ErrUnsupportedMeasure = errors.New("strsim: blocking index requires an n-gram measure")

// gramIndex is the shared substrate of both blocking modes: per-name
// gram-ID sets in a canonical global order, plus full (θ-independent)
// postings per gram.
type gramIndex struct {
	sets  [][]int32 // per name: gram IDs ascending in canonical order
	post  [][]int32 // per gram ID: name IDs ascending (full postings)
	grams []string  // gram ID -> gram string, canonical order
}

// buildGramIndex grams every name and interns the gram vocabulary in
// canonical order: ascending document frequency, ties broken by the
// gram string. Rarest-first ordering makes prefix probes hit the
// shortest postings, and the order is a pure function of the name set.
func buildGramIndex(names []string, gramN int) *gramIndex {
	ids := make(map[string]int32)
	var gramStrs []string
	var df []int32
	sets := make([][]int32, len(names))
	for i, name := range names {
		gs := NGrams(name, gramN)
		lst := make([]int32, 0, len(gs))
		//ube:nondeterministic-ok provisional IDs are re-ranked canonically (df asc, gram asc) below
		for g := range gs {
			id, ok := ids[g]
			if !ok {
				id = int32(len(gramStrs))
				ids[g] = id
				gramStrs = append(gramStrs, g)
				df = append(df, 0)
			}
			df[id]++
			lst = append(lst, id)
		}
		sets[i] = lst
	}
	order := make([]int32, len(gramStrs))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := order[a], order[b]
		if df[ga] != df[gb] {
			return df[ga] < df[gb]
		}
		return gramStrs[ga] < gramStrs[gb]
	})
	rank := make([]int32, len(order))
	grams := make([]string, len(order))
	for r, g := range order {
		rank[g] = int32(r)
		grams[r] = gramStrs[g]
	}
	post := make([][]int32, len(order))
	for i, lst := range sets {
		for k, g := range lst {
			lst[k] = rank[g]
		}
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
		for _, g := range lst {
			// Name IDs ascend naturally: names are processed in order.
			post[g] = append(post[g], int32(i))
		}
	}
	return &gramIndex{sets: sets, post: post, grams: grams}
}

// thetaSlack widens θ before deriving integer prefix/window bounds. The
// inclusion test rounds exact scores through float32 (to match the
// dense Matrix bit for bit), which can admit pairs whose exact score is
// up to one float32 ulp (≈ 6e-8 for scores in [0,1]) below θ; 1e-6
// over-covers that. Widening only lengthens prefixes and windows, so it
// can cost candidates but never recall.
const thetaSlack = 1e-6

// minOverlap returns a lower bound on |A∩B| for any pair with
// (float32-rounded) score ≥ θ when |A| = s. For Jaccard, I ≥ θ·|A∪B| ≥
// θ·s; for Dice, 2I ≥ θ(|A|+|B|) ≥ θ(s+I) gives I ≥ θs/(2−θ). The
// float ceil is nudged down so rounding can only shrink m (a smaller m
// lengthens the probe prefix — conservative, never lossy).
func minOverlap(theta float64, s int, dice bool) int {
	t := theta - thetaSlack
	if t <= 0 {
		return 1
	}
	v := t * float64(s)
	if dice {
		v /= 2 - t
	}
	m := int(math.Ceil(v - 1e-9))
	if m < 1 {
		m = 1
	}
	if m > s {
		m = s
	}
	return m
}

// lenCompatible reports whether gram-set sizes sa, sb can possibly
// score ≥ θ: Jaccard needs sb ∈ [θ·sa, sa/θ], Dice needs
// sb ∈ [θ·sa/(2−θ), sa(2−θ)/θ]. θ is slack-widened like minOverlap.
func lenCompatible(theta float64, sa, sb int, dice bool) bool {
	t := theta - thetaSlack
	if t <= 0 {
		return true
	}
	a, b := float64(sa), float64(sb)
	if dice {
		return b >= t*a/(2-t) && b <= a*(2-t)/t
	}
	return b >= t*a && b <= a/t
}

// prefixPairs emits every candidate pair (a < b) the prefix filter
// surfaces at threshold theta. Each unordered pair is emitted exactly
// once, from its smaller-ID side: if the pair's score reaches θ the two
// names share at least minOverlap(θ, |Aₐ|) grams, and those cannot all
// sit in a's last m−1 grams, so one of a's first |Aₐ|−m+1 grams finds b
// in the full postings.
func (ix *gramIndex) prefixPairs(theta float64, dice bool, stats *BlockStats, emit func(a, b int32)) {
	mark := make([]int32, len(ix.sets))
	for i := range mark {
		mark[i] = -1
	}
	for a, set := range ix.sets {
		if len(set) == 0 {
			continue
		}
		stats.Probes++
		m := minOverlap(theta, len(set), dice)
		for _, g := range set[:len(set)-m+1] {
			for _, b := range ix.post[g] {
				if int(b) <= a || mark[b] == int32(a) {
					continue
				}
				mark[b] = int32(a)
				stats.Candidates++
				emit(int32(a), b)
			}
		}
	}
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-distributed
// bijective mixer used for the MinHash permutations.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64a is FNV-1a over the gram bytes.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// minhashPairs returns the deduplicated candidate pairs of the banded
// MinHash mode. Bucket membership is a pure function of (name set,
// seed); pairs are collected into a set, so the result does not depend
// on discovery order.
func (ix *gramIndex) minhashPairs(cfg BlockConfig, stats *BlockStats) map[pairKey]struct{} {
	k := cfg.Bands * cfg.Rows
	gh := make([]uint64, len(ix.grams))
	for g, s := range ix.grams {
		gh[g] = fnv64a(s)
	}
	salts := make([]uint64, k)
	x := cfg.Seed
	for i := range salts {
		x = splitmix64(x)
		salts[i] = x
	}
	type bandEntry struct {
		key uint64
		id  int32
	}
	bands := make([][]bandEntry, cfg.Bands)
	sig := make([]uint64, k)
	for a, set := range ix.sets {
		if len(set) == 0 {
			continue
		}
		stats.Probes++
		for i := range sig {
			sig[i] = math.MaxUint64
		}
		for _, g := range set {
			h := gh[g]
			for i, salt := range salts {
				if v := splitmix64(h ^ salt); v < sig[i] {
					sig[i] = v
				}
			}
		}
		for b := 0; b < cfg.Bands; b++ {
			key := uint64(0xcbf29ce484222325)
			for r := 0; r < cfg.Rows; r++ {
				key = (key ^ sig[b*cfg.Rows+r]) * 1099511628211
			}
			bands[b] = append(bands[b], bandEntry{key: key, id: int32(a)})
		}
	}
	pairs := make(map[pairKey]struct{})
	for _, entries := range bands {
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].key != entries[j].key {
				return entries[i].key < entries[j].key
			}
			return entries[i].id < entries[j].id
		})
		for lo := 0; lo < len(entries); {
			hi := lo
			for hi < len(entries) && entries[hi].key == entries[lo].key {
				hi++
			}
			for i := lo; i < hi; i++ {
				for j := i + 1; j < hi; j++ {
					pairs[pairKey{int(entries[i].id), int(entries[j].id)}] = struct{}{}
				}
			}
			lo = hi
		}
	}
	stats.Candidates += int64(len(pairs))
	return pairs
}

// interSize returns |a∩b| for two ascending int32 sets.
func interSize(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
