package strsim

import "testing"

// FuzzNormalize checks that normalization is idempotent and produces only
// lowercase alphanumerics and single spaces.
func FuzzNormalize(f *testing.F) {
	f.Add("Author Name")
	f.Add("  ___--  ")
	f.Add("Prénom")
	f.Add("ISBN#13")
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		if Normalize(n) != n {
			t.Fatalf("not idempotent: %q -> %q -> %q", s, n, Normalize(n))
		}
		for i, r := range n {
			if r == ' ' {
				if i == 0 || i == len(n)-1 {
					t.Fatalf("leading/trailing space in %q", n)
				}
				continue
			}
		}
	})
}

// FuzzMeasures checks the Measure contract on arbitrary inputs for every
// shipped measure: symmetry, range, self-similarity.
func FuzzMeasures(f *testing.F) {
	f.Add("title", "book title")
	f.Add("", "x")
	f.Add("a b c", "c b a")
	measures := []Measure{
		NewNGramJaccard(3), NewNGramDice(3), TokenJaccard{},
		TokenCosine{}, LevenshteinRatio{}, JaroWinkler{}, Exact{},
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		for _, m := range measures {
			s1, s2 := m.Score(a, b), m.Score(b, a)
			if s1 != s2 {
				t.Fatalf("%s: asymmetric on (%q,%q): %v vs %v", m.Name(), a, b, s1, s2)
			}
			if s1 < 0 || s1 > 1 {
				t.Fatalf("%s: out of range on (%q,%q): %v", m.Name(), a, b, s1)
			}
			if Normalize(a) != "" && m.Score(a, a) != 1 {
				t.Fatalf("%s: self-similarity of %q is %v", m.Name(), a, m.Score(a, a))
			}
		}
	})
}
