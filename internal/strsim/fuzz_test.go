package strsim

import "testing"

// FuzzNormalize checks that normalization is idempotent and produces only
// lowercase alphanumerics and single spaces.
func FuzzNormalize(f *testing.F) {
	f.Add("Author Name")
	f.Add("  ___--  ")
	f.Add("Prénom")
	f.Add("ISBN#13")
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		if Normalize(n) != n {
			t.Fatalf("not idempotent: %q -> %q -> %q", s, n, Normalize(n))
		}
		for i, r := range n {
			if r == ' ' {
				if i == 0 || i == len(n)-1 {
					t.Fatalf("leading/trailing space in %q", n)
				}
				continue
			}
		}
	})
}

// FuzzLevenshtein checks the fast-path edit distance (prefix/suffix
// trimming, ASCII byte DP) against the reference two-row DP on arbitrary
// inputs, plus the metric properties the fast paths could plausibly
// break: symmetry, identity, and the rune-count bounds. Note the
// converse of identity does not hold for invalid UTF-8 — distinct byte
// strings can decode to equal rune sequences via U+FFFD — so distance 0
// between unequal strings is not asserted against.
func FuzzLevenshtein(f *testing.F) {
	f.Add("book title", "full title")
	f.Add("isbn", "isbn number")
	f.Add("", "x")
	f.Add("Prénom", "Prenom")
	f.Add("aaaa", "aa")
	f.Add("\xff\xfe", "\xfd")
	f.Fuzz(func(t *testing.T, a, b string) {
		d := Levenshtein(a, b)
		if ref := levenshteinRef(a, b); d != ref {
			t.Fatalf("Levenshtein(%q,%q) = %d, reference says %d", a, b, d, ref)
		}
		if rev := Levenshtein(b, a); d != rev {
			t.Fatalf("asymmetric on (%q,%q): %d vs %d", a, b, d, rev)
		}
		if Levenshtein(a, a) != 0 {
			t.Fatalf("self-distance of %q is nonzero", a)
		}
		la, lb := len([]rune(a)), len([]rune(b))
		lo, hi := la-lb, max(la, lb)
		if lo < 0 {
			lo = -lo
		}
		if d < lo || d > hi {
			t.Fatalf("Levenshtein(%q,%q) = %d outside [%d,%d]", a, b, d, lo, hi)
		}
	})
}

// FuzzMeasures checks the Measure contract on arbitrary inputs for every
// shipped measure: symmetry, range, self-similarity.
func FuzzMeasures(f *testing.F) {
	f.Add("title", "book title")
	f.Add("", "x")
	f.Add("a b c", "c b a")
	measures := []Measure{
		NewNGramJaccard(3), NewNGramDice(3), TokenJaccard{},
		TokenCosine{}, LevenshteinRatio{}, JaroWinkler{}, Exact{},
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		for _, m := range measures {
			s1, s2 := m.Score(a, b), m.Score(b, a)
			if s1 != s2 {
				t.Fatalf("%s: asymmetric on (%q,%q): %v vs %v", m.Name(), a, b, s1, s2)
			}
			if s1 < 0 || s1 > 1 {
				t.Fatalf("%s: out of range on (%q,%q): %v", m.Name(), a, b, s1)
			}
			if Normalize(a) != "" && m.Score(a, a) != 1 {
				t.Fatalf("%s: self-similarity of %q is %v", m.Name(), a, m.Score(a, a))
			}
		}
	})
}

// FuzzBlockingCandidates checks the blocking index's soundness guarantee
// on adversarial vocabularies: for every pair the exact scorer puts at or
// above θ (after the float32 rounding every stored cell gets), the
// prefix-filter sparse table must hold the pair — the index may verify
// extra candidates but can never miss a true pair. Inputs are five
// arbitrary names interned together with a fixed mixed base vocabulary,
// so the fuzzer exercises unicode, invalid UTF-8, and near-duplicate
// collisions against both measures' prefix schemes.
func FuzzBlockingCandidates(f *testing.F) {
	f.Add("title", "titles", "book title", "a", "")
	f.Add("é", "é", "日本語", "日本語版", "\xff\xfe")
	f.Add("x y z", "x_y_z", "X Y Z!", "xyz", "zyx")
	f.Add("aaaaaaaa", "aaaaaaab", "aaaa", "baaa", "aa")
	measures := []Measure{NewNGramJaccard(3), NewNGramDice(3), NewNGramJaccard(2)}
	thetas := []float64{0.3, 0.65, 0.9}
	f.Fuzz(func(t *testing.T, a, b, c, d, e string) {
		for _, m := range measures {
			cache := NewCache(m)
			for _, name := range []string{a, b, c, d, e,
				"title", "titles", "author name", "isbn number", "pub year"} {
				cache.Intern(name)
			}
			for _, theta := range thetas {
				sp, _, err := cache.BuildSparse(theta, BlockConfig{})
				if err != nil {
					t.Fatalf("%s θ=%v: %v", m.Name(), theta, err)
				}
				got := sparsePairs(sp, theta)
				for p := range exactPairs(cache, theta) {
					if !got[p] {
						t.Fatalf("%s θ=%v: index missed ≥θ pair %q/%q (score %v)",
							m.Name(), theta, cache.NameOf(p[0]), cache.NameOf(p[1]),
							cache.Score(p[0], p[1]))
					}
				}
			}
		}
	})
}
