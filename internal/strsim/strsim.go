// Package strsim provides string similarity measures for schema matching.
//
// The µBE prototype measures the similarity between a pair of attributes as
// the Jaccard similarity coefficient between the 3-grams in the attribute
// names (paper §3). The package also ships several alternative measures
// (Dice, token Jaccard, Levenshtein ratio, exact match) behind a common
// Measure interface, since µBE is explicitly designed to accept any pairwise
// attribute similarity measure as the building block of its clustering.
package strsim

import (
	"math"
	"strings"
	"unicode"
)

// A Measure computes a symmetric similarity score in [0,1] between two
// attribute names. Score(a, a) must be 1 for any non-empty a, and
// Score(a, b) == Score(b, a).
type Measure interface {
	// Name identifies the measure, e.g. for logging or configuration.
	Name() string
	// Score returns the similarity between two attribute names in [0,1].
	Score(a, b string) float64
}

// Normalize canonicalizes an attribute name before similarity computation:
// it lowercases the name, maps every run of non-alphanumeric characters
// (spaces, punctuation, underscores) to a single space, and trims the ends.
// Hidden-Web query interfaces label the same concept as "Author Name",
// "author_name" or "author-name"; normalization makes these identical.
func Normalize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	space := true // suppress leading separators
	for _, r := range name {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			space = false
		default:
			if !space {
				b.WriteByte(' ')
				space = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// NGrams returns the set of character n-grams of the normalized form of
// name, matching the paper's unpadded 3-gram formulation. A normalized name
// shorter than n contributes itself as a single gram so that very short
// labels ("id", "by") still compare meaningfully. The result is a set:
// duplicate grams appear once.
func NGrams(name string, n int) map[string]struct{} {
	if n <= 0 {
		n = 3
	}
	s := Normalize(name)
	if s == "" {
		return map[string]struct{}{}
	}
	runes := []rune(s)
	if len(runes) < n {
		return map[string]struct{}{s: {}}
	}
	grams := make(map[string]struct{}, len(runes))
	for i := 0; i+n <= len(runes); i++ {
		grams[string(runes[i:i+n])] = struct{}{}
	}
	return grams
}

// Jaccard returns |a∩b| / |a∪b| for two sets, and 0 when both are empty.
func Jaccard[K comparable](a, b map[K]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	inter := 0
	//ube:nondeterministic-ok integer membership counting is order-independent
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Dice returns 2|a∩b| / (|a|+|b|) for two sets, and 0 when both are empty.
func Dice[K comparable](a, b map[K]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	inter := 0
	//ube:nondeterministic-ok integer membership counting is order-independent
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(a)+len(b))
}

// NGramJaccard is the paper's default measure: Jaccard coefficient between
// the n-gram sets of the two names. The zero value is not usable; construct
// with NewNGramJaccard.
type NGramJaccard struct {
	n int
}

// NewNGramJaccard returns the paper's measure with the given gram size.
// µBE uses n = 3.
func NewNGramJaccard(n int) *NGramJaccard {
	if n <= 0 {
		n = 3
	}
	return &NGramJaccard{n: n}
}

// Name implements Measure.
func (m *NGramJaccard) Name() string { return "ngram-jaccard" }

// Score implements Measure.
func (m *NGramJaccard) Score(a, b string) float64 {
	return Jaccard(NGrams(a, m.n), NGrams(b, m.n))
}

// NGramDice is like NGramJaccard but uses the Dice coefficient, which is
// more forgiving for names of very different lengths.
type NGramDice struct {
	n int
}

// NewNGramDice returns a Dice-coefficient n-gram measure.
func NewNGramDice(n int) *NGramDice {
	if n <= 0 {
		n = 3
	}
	return &NGramDice{n: n}
}

// Name implements Measure.
func (m *NGramDice) Name() string { return "ngram-dice" }

// Score implements Measure.
func (m *NGramDice) Score(a, b string) float64 {
	return Dice(NGrams(a, m.n), NGrams(b, m.n))
}

// TokenJaccard computes the Jaccard coefficient between the sets of
// whitespace-separated tokens of the normalized names. "publication date"
// vs "date of publication" scores 2/3 here but much lower on 3-grams.
type TokenJaccard struct{}

// Name implements Measure.
func (TokenJaccard) Name() string { return "token-jaccard" }

// Score implements Measure.
func (TokenJaccard) Score(a, b string) float64 {
	return Jaccard(tokenSet(a), tokenSet(b))
}

func tokenSet(name string) map[string]struct{} {
	toks := strings.Fields(Normalize(name))
	set := make(map[string]struct{}, len(toks))
	for _, t := range toks {
		set[t] = struct{}{}
	}
	return set
}

// LevenshteinRatio scores 1 − dist(a,b)/max(len(a),len(b)) on normalized
// names, a classic edit-distance similarity.
type LevenshteinRatio struct{}

// Name implements Measure.
func (LevenshteinRatio) Name() string { return "levenshtein-ratio" }

// Score implements Measure.
func (LevenshteinRatio) Score(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	la, lb := len([]rune(na)), len([]rune(nb))
	if la == 0 && lb == 0 {
		return 0
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	d := Levenshtein(na, nb)
	return 1 - float64(d)/float64(maxLen)
}

// Levenshtein returns the edit distance between two strings, counting
// insertions, deletions and substitutions each as cost 1.
//
// Attribute names are overwhelmingly ASCII and frequently share long
// prefixes or suffixes ("book title" / "full title", "isbn" / "isbn
// number"), so two fast paths run before the O(|a|·|b|) dynamic program:
// a shared prefix and suffix are stripped (they never participate in an
// optimal edit script), and all-ASCII inputs are processed as bytes,
// skipping the []rune conversions entirely.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if isASCII(a) && isASCII(b) {
		// Byte indexing is safe — every byte is one rune. Trimming is
		// only safe here: sharing prefix bytes does not imply sharing
		// prefix runes in multi-byte UTF-8.
		a, b = trimCommon(a, b)
		return levenshteinASCII(a, b)
	}
	ra, rb := []rune(a), []rune(b)
	lo := 0
	for lo < len(ra) && lo < len(rb) && ra[lo] == rb[lo] {
		lo++
	}
	ha, hb := len(ra), len(rb)
	for ha > lo && hb > lo && ra[ha-1] == rb[hb-1] {
		ha--
		hb--
	}
	return levenshteinGeneric(ra[lo:ha], rb[lo:hb])
}

// isASCII reports whether s has no byte ≥ 0x80.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// trimCommon strips the longest shared prefix and suffix from two
// byte-indexable strings.
func trimCommon(a, b string) (string, string) {
	lo := 0
	for lo < len(a) && lo < len(b) && a[lo] == b[lo] {
		lo++
	}
	ha, hb := len(a), len(b)
	for ha > lo && hb > lo && a[ha-1] == b[hb-1] {
		ha--
		hb--
	}
	return a[lo:ha], b[lo:hb]
}

// levenshteinASCII is the two-row DP indexing the strings as bytes —
// valid only for ASCII inputs — with no rune-slice allocation.
func levenshteinASCII(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// A small stack buffer serves both rows for typical attribute names.
	var buf [2 * 64]int
	var prev, cur []int
	if len(b)+1 <= 64 {
		prev, cur = buf[:len(b)+1], buf[64:64+len(b)+1]
	} else {
		prev = make([]int, len(b)+1)
		cur = make([]int, len(b)+1)
	}
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitution
			if v := prev[j] + 1; v < m { // deletion
				m = v
			}
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// levenshteinGeneric is the two-row DP over rune slices.
func levenshteinGeneric(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitution
			if v := prev[j] + 1; v < m { // deletion
				m = v
			}
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Exact scores 1 when the normalized names are identical and 0 otherwise.
// Useful as a conservative baseline and in tests.
type Exact struct{}

// Name implements Measure.
func (Exact) Name() string { return "exact" }

// Score implements Measure.
func (Exact) Score(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == "" && nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	return 0
}

// Default returns the measure used by the µBE prototype: Jaccard similarity
// over 3-grams of the attribute names.
func Default() Measure { return NewNGramJaccard(3) }

// JaroWinkler is the Jaro–Winkler similarity on normalized names — the
// classic measure for short name-matching tasks (Cohen, Ravikumar &
// Fienberg [6], the paper's similarity-measure reference, evaluate it
// alongside Jaccard variants).
type JaroWinkler struct{}

// Name implements Measure.
func (JaroWinkler) Name() string { return "jaro-winkler" }

// Score implements Measure.
func (JaroWinkler) Score(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == "" && nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	j := jaro([]rune(na), []rune(nb))
	// Winkler boost: reward a shared prefix of up to 4 runes.
	prefix := 0
	ra, rb := []rune(na), []rune(nb)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	const p = 0.1
	return j + float64(prefix)*p*(1-j)
}

// jaro computes the plain Jaro similarity.
func jaro(a, b []rune) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	window := max(len(a), len(b))/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(a))
	matchB := make([]bool, len(b))
	matches := 0
	for i, ra := range a {
		lo := max(0, i-window)
		hi := min(len(b), i+window+1)
		for j := lo; j < hi; j++ {
			if !matchB[j] && b[j] == ra {
				matchA[i], matchB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched runes.
	trans := 0
	j := 0
	for i := range a {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if a[i] != b[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(a)) + m/float64(len(b)) + (m-float64(trans)/2)/m) / 3
}

// TokenCosine is the cosine similarity between the token multisets of the
// normalized names — robust to word reordering and partial overlap in
// longer labels like "date of publication" vs "publication date".
type TokenCosine struct{}

// Name implements Measure.
func (TokenCosine) Name() string { return "token-cosine" }

// Score implements Measure.
func (TokenCosine) Score(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == "" || nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	ta := tokenCounts(na)
	tb := tokenCounts(nb)
	// Integer accumulation: exact regardless of map iteration order, so
	// the score is a pure function of the two names.
	var dot, qa, qb int
	//ube:nondeterministic-ok integer sums are order-independent
	for tok, ca := range ta {
		qa += ca * ca
		if cb, ok := tb[tok]; ok {
			dot += ca * cb
		}
	}
	//ube:nondeterministic-ok integer sums are order-independent
	for _, cb := range tb {
		qb += cb * cb
	}
	cos := float64(dot) / (math.Sqrt(float64(qa)) * math.Sqrt(float64(qb)))
	// sqrt rounding can nudge the ratio a hair outside [0,1].
	return math.Max(0, math.Min(cos, 1))
}

func tokenCounts(name string) map[string]int {
	counts := map[string]int{}
	for _, t := range strings.Fields(Normalize(name)) {
		counts[t]++
	}
	return counts
}
