package strsim

import "testing"

// mustMatrix builds the dense matrix for a test vocabulary, panicking on
// the (impossible at test sizes) over-limit error.
func mustMatrix(c *Cache) *Matrix {
	m, err := c.BuildMatrix()
	if err != nil {
		panic(err)
	}
	return m
}

func TestMatrixScoresMatchCache(t *testing.T) {
	c := NewCache(nil)
	names := []string{"title", "book_title", "author", "isbn", "price"}
	ids := make([]int, len(names))
	for i, n := range names {
		ids[i] = c.Intern(n)
	}
	if c.Measure() == nil {
		t.Fatal("cache has no measure")
	}
	m := mustMatrix(c)
	if m.Len() != len(names) {
		t.Fatalf("matrix covers %d names, want %d", m.Len(), len(names))
	}
	if m.SizeBytes() != 4*len(names)*len(names) {
		t.Errorf("SizeBytes = %d", m.SizeBytes())
	}
	for _, a := range ids {
		//ube:float-exact the diagonal is stored as an exact 1
		if m.Score(a, a) != 1 {
			t.Errorf("self score of %d = %v", a, m.Score(a, a))
		}
		for _, b := range ids {
			//ube:float-exact both cells are the same stored float32
			if m.Score(a, b) != m.Score(b, a) {
				t.Errorf("asymmetric score (%d,%d)", a, b)
			}
			// The float32 table must agree with direct scoring to that
			// precision.
			want := c.Score(a, b)
			if diff := m.Score(a, b) - want; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("matrix score (%d,%d) = %v, cache says %v", a, b, m.Score(a, b), want)
			}
		}
	}
}

func TestMatrixNeighbors(t *testing.T) {
	c := NewCache(nil)
	for _, n := range []string{"title", "book_title", "zzz_unrelated"} {
		c.Intern(n)
	}
	m := mustMatrix(c)
	nbr := m.Neighbors(0.2)
	if len(nbr) != m.Len() {
		t.Fatalf("neighbor lists = %d, want %d", len(nbr), m.Len())
	}
	for i, row := range nbr {
		found := false
		for _, j := range row {
			if j == i {
				found = true
			}
			if m.Score(i, j) < 0.2 {
				t.Errorf("neighbor (%d,%d) below theta: %v", i, j, m.Score(i, j))
			}
		}
		if !found {
			t.Errorf("name %d missing from its own neighbor list", i)
		}
	}
}

func TestMatrixScorePanicsOnLateIntern(t *testing.T) {
	c := NewCache(nil)
	c.Intern("title")
	m := mustMatrix(c)
	late := c.Intern("author")
	defer func() {
		if recover() == nil {
			t.Error("Score on a post-build ID did not panic")
		}
	}()
	m.Score(0, late)
}
