package strsim

import "fmt"

// SparseScores is the large-vocabulary replacement for Matrix: a
// θ-thresholded CSR table holding, per interned name, the ascending
// list of names scoring at least θ against it (self included, like
// Matrix.Neighbors). It is built from the blocking index, so
// construction touches only plausible pairs instead of all n².
//
// Scores are stored as float32 — the same rounding the dense Matrix
// applies — and lookups of pairs outside the θ-neighborhood fall back
// to the exact measure through the cache, rounded through float32, so a
// SparseScores and a Matrix over the same vocabulary agree bit for bit
// on every pair (the clustering quality fold queries sub-θ pairs inside
// constraint clusters, so the fallback is correctness-critical, not
// just a convenience).
type SparseScores struct {
	n     int
	theta float64
	start []int32   // name ID -> offset of its row in cols/vals
	cols  []int32   // row-major ascending neighbor IDs
	vals  []float32 // scores parallel to cols
	cache *Cache    // exact fallback for pairs outside the rows
}

// sparseEntry is one neighbor during row assembly.
type sparseEntry struct {
	id    int32
	score float32
}

// BuildSparse builds the θ-thresholded sparse scorer over every name
// interned so far, generating candidates with the configured blocking
// mode and verifying each with the exact measure. Only the n-gram
// measures are supported (ErrUnsupportedMeasure otherwise); θ must lie
// in (0, 1] — at θ ≤ 0 every pair qualifies and no blocking scheme can
// beat the dense path. Like BuildMatrix, names interned after the build
// are unknown to the row structure and make Score panic.
func (c *Cache) BuildSparse(theta float64, cfg BlockConfig) (*SparseScores, BlockStats, error) {
	var stats BlockStats
	if theta <= 0 || theta > 1 {
		return nil, stats, fmt.Errorf("strsim: BuildSparse theta %v outside (0,1]", theta)
	}
	var gramN int
	var dice bool
	switch meas := c.measure.(type) {
	case *NGramJaccard:
		gramN = meas.n
	case *NGramDice:
		gramN, dice = meas.n, true
	default:
		return nil, stats, fmt.Errorf("%w (have %s)", ErrUnsupportedMeasure, c.measure.Name())
	}
	cfg = cfg.withDefaults()

	c.mu.RLock()
	names := append([]string(nil), c.names...)
	c.mu.RUnlock()
	n := len(names)
	ix := buildGramIndex(names, gramN)

	rows := make([][]sparseEntry, n)
	verify := func(a, b int32) {
		sa, sb := ix.sets[a], ix.sets[b]
		if !lenCompatible(theta, len(sa), len(sb), dice) {
			stats.Pruned++
			return
		}
		inter := interSize(sa, sb)
		// The score expressions mirror Jaccard/Dice exactly so the
		// stored values match what the dense path computes.
		var s float64
		if dice {
			s = 2 * float64(inter) / float64(len(sa)+len(sb))
		} else {
			s = float64(inter) / float64(len(sa)+len(sb)-inter)
		}
		// Inclusion mirrors the dense path: scores round through float32
		// before the θ comparison.
		if float64(float32(s)) >= theta {
			rows[a] = append(rows[a], sparseEntry{id: b, score: float32(s)})
			rows[b] = append(rows[b], sparseEntry{id: a, score: float32(s)})
		} else {
			stats.Pruned++
		}
	}
	switch cfg.Mode {
	case BlockPrefix:
		ix.prefixPairs(theta, dice, &stats, verify)
	case BlockMinHash:
		//ube:nondeterministic-ok rows are sorted by neighbor ID below; stats are order-free counts
		for p := range ix.minhashPairs(cfg, &stats) {
			verify(int32(p.lo), int32(p.hi))
		}
	default:
		return nil, stats, fmt.Errorf("strsim: unknown blocking mode %d", cfg.Mode)
	}

	s := &SparseScores{n: n, theta: theta, start: make([]int32, n+1), cache: c}
	nnz := 0
	for i := range rows {
		// Self-similarity is 1 for every interned name (the Matrix diag
		// stores exactly that), so every row carries itself.
		rows[i] = append(rows[i], sparseEntry{id: int32(i), score: 1})
		nnz += len(rows[i])
	}
	s.cols = make([]int32, 0, nnz)
	s.vals = make([]float32, 0, nnz)
	for i, row := range rows {
		// Candidate discovery order varies by mode; ascending-ID rows
		// make the structure (and everything built on it) canonical.
		sortEntries(row)
		for _, e := range row {
			s.cols = append(s.cols, e.id)
			s.vals = append(s.vals, e.score)
		}
		s.start[i+1] = int32(len(s.cols))
	}
	return s, stats, nil
}

// sortEntries orders a row by neighbor ID ascending. Rows never hold
// duplicate IDs: both blocking modes emit each unordered pair once.
func sortEntries(row []sparseEntry) {
	// Insertion sort: rows are typically a handful of entries, and the
	// common case (already ascending from prefixPairs emission order)
	// is linear.
	for i := 1; i < len(row); i++ {
		for j := i; j > 0 && row[j].id < row[j-1].id; j-- {
			row[j], row[j-1] = row[j-1], row[j]
		}
	}
}

// Len reports the number of names the sparse table covers.
func (s *SparseScores) Len() int { return s.n }

// Theta reports the threshold the rows were built at.
func (s *SparseScores) Theta() float64 { return s.theta }

// NNZ reports the number of stored row entries (θ-neighbors plus one
// self entry per name).
func (s *SparseScores) NNZ() int { return len(s.cols) }

// SizeBytes reports the memory footprint of the CSR arrays.
func (s *SparseScores) SizeBytes() int { return 4*len(s.start) + 4*len(s.cols) + 4*len(s.vals) }

// Score implements Scorer. θ-neighborhood lookups are lock-free reads
// of the CSR row; anything else falls back to the exact cached measure,
// rounded through float32 to match the dense Matrix bit for bit.
func (s *SparseScores) Score(a, b int) float64 {
	if a >= s.n || b >= s.n || a < 0 || b < 0 {
		panic("strsim: SparseScores.Score on a name interned after BuildSparse")
	}
	if a == b {
		return 1
	}
	lo, hi := int(s.start[a]), int(s.start[a+1])
	cols := s.cols[lo:hi]
	i, j := 0, len(cols)
	for i < j {
		h := (i + j) / 2
		if cols[h] < int32(b) {
			i = h + 1
		} else {
			j = h
		}
	}
	if i < len(cols) && cols[i] == int32(b) {
		return float64(s.vals[lo+i])
	}
	// The sub-θ fallback rounds through float32 so sparse and dense
	// scorers agree bit for bit.
	return float64(float32(s.cache.Score(a, b)))
}

// float32Exact marks SparseScores as a Table: every Score result is an
// exact float32 value (stored entries by construction, fallback by the
// explicit round-trip).
func (s *SparseScores) float32Exact() {}

// Neighbors returns, for every name ID, the ascending list of name IDs
// (including itself) whose similarity is at least theta — the same
// shape Matrix.Neighbors produces. theta must be at least the build
// threshold: pairs below it were never materialized, so a looser query
// would silently miss neighbors (that is a programming error, hence the
// panic).
func (s *SparseScores) Neighbors(theta float64) [][]int {
	if theta < s.theta {
		panic(fmt.Sprintf("strsim: SparseScores built at θ=%v cannot enumerate neighbors at θ=%v", s.theta, theta))
	}
	out := make([][]int, s.n)
	for i := 0; i < s.n; i++ {
		var nbr []int
		for k := s.start[i]; k < s.start[i+1]; k++ {
			if float64(s.vals[k]) >= theta {
				nbr = append(nbr, int(s.cols[k]))
			}
		}
		out[i] = nbr
	}
	return out
}
