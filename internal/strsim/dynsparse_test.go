package strsim

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// dynCanonical renders the rows of the given live name IDs in an
// ID-space-independent form: normalized name -> sorted list of
// "neighborName:float32bits" entries. Two tables over different intern
// spaces are bit-identical on the live names iff these maps are equal.
func dynCanonical(c *Cache, sp *SparseScores, live []int) map[string][]string {
	out := make(map[string][]string, len(live))
	for _, id := range live {
		var row []string
		for k := sp.start[id]; k < sp.start[id+1]; k++ {
			row = append(row, fmt.Sprintf("%s:%08x", c.NameOf(int(sp.cols[k])), math.Float32bits(sp.vals[k])))
		}
		sort.Strings(row)
		out[c.NameOf(id)] = row
	}
	return out
}

// freshReference builds a from-scratch cache holding exactly the given
// names and batch-builds its sparse table — the differential oracle.
func freshReference(measure func() Measure, names []string, theta float64, cfg BlockConfig) (*Cache, *SparseScores) {
	c := NewCache(measure())
	ids := make([]int, 0, len(names))
	for _, n := range names {
		ids = append(ids, c.Intern(n))
	}
	sp, _, err := c.BuildSparse(theta, cfg)
	if err != nil {
		panic(err)
	}
	_ = ids
	return c, sp
}

// TestDynSparseFullVocabBitIdentical: inserting every interned name into
// a DynSparse and freezing yields CSR arrays byte-identical to
// BuildSparse on the same cache — same ID space, so the comparison is
// raw, not canonicalized. Covers both modes, both measures, several θ.
func TestDynSparseFullVocabBitIdentical(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  BlockConfig
	}{
		{"prefix", BlockConfig{}},
		{"minhash", BlockConfig{Mode: BlockMinHash}},
	} {
		for _, meas := range []struct {
			name string
			mk   func() Measure
		}{
			{"jaccard3", func() Measure { return NewNGramJaccard(3) }},
			{"dice3", func() Measure { return NewNGramDice(3) }},
		} {
			t.Run(mode.name+"/"+meas.name, func(t *testing.T) {
				c := NewCache(meas.mk())
				for _, name := range blockVocab(400, 3) {
					c.Intern(name)
				}
				for _, theta := range []float64{0.5, 0.65, 0.9} {
					want, _, err := c.BuildSparse(theta, mode.cfg)
					if err != nil {
						t.Fatalf("θ=%v: BuildSparse: %v", theta, err)
					}
					d, err := NewDynSparse(c, theta, mode.cfg)
					if err != nil {
						t.Fatalf("θ=%v: NewDynSparse: %v", theta, err)
					}
					for id := 0; id < c.Len(); id++ {
						if err := d.Insert(id); err != nil {
							t.Fatalf("θ=%v: Insert(%d): %v", theta, id, err)
						}
					}
					got := d.Freeze()
					if !reflect.DeepEqual(got.start, want.start) ||
						!reflect.DeepEqual(got.cols, want.cols) ||
						!reflect.DeepEqual(got.vals, want.vals) {
						t.Fatalf("θ=%v: frozen CSR differs from batch build (nnz %d vs %d)", theta, got.NNZ(), want.NNZ())
					}
					if got.Theta() != theta || got.Len() != c.Len() {
						t.Fatalf("θ=%v: frozen table metadata %v/%d", theta, got.Theta(), got.Len())
					}
				}
			})
		}
	}
}

// TestDynSparseDifferentialChurn drives a 200-step random insert/delete
// schedule and checks, after every step, that the live rows of the
// frozen incremental table are bit-identical (canonicalized by name) to
// a fresh batch build over exactly the live names — the tentpole
// index-level differential, in both blocking modes.
func TestDynSparseDifferentialChurn(t *testing.T) {
	const seed = 23
	vocab := blockVocab(250, seed)
	for _, mode := range []struct {
		name string
		cfg  BlockConfig
	}{
		{"prefix", BlockConfig{}},
		{"minhash", BlockConfig{Mode: BlockMinHash}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			theta := 0.65
			mk := func() Measure { return NewNGramJaccard(3) }
			c := NewCache(mk())
			d, err := NewDynSparse(c, theta, mode.cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			var live []int // intern IDs, ascending
			liveSet := make(map[int]bool)
			steps := 200
			if testing.Short() {
				steps = 60
			}
			for step := 0; step < steps; step++ {
				if len(live) > 0 && rng.Intn(3) == 0 {
					i := rng.Intn(len(live))
					id := live[i]
					if err := d.Delete(id); err != nil {
						t.Fatalf("seed %d step %d: Delete(%d): %v", seed, step, id, err)
					}
					live = append(live[:i], live[i+1:]...)
					delete(liveSet, id)
				} else {
					id := c.Intern(vocab[rng.Intn(len(vocab))])
					if liveSet[id] {
						// Same normalized name already live; re-inserting
						// must refuse without corrupting state.
						if err := d.Insert(id); err == nil {
							t.Fatalf("seed %d step %d: double Insert(%d) succeeded", seed, step, id)
						}
						continue
					}
					if err := d.Insert(id); err != nil {
						t.Fatalf("seed %d step %d: Insert(%d): %v", seed, step, id, err)
					}
					at := sort.SearchInts(live, id)
					live = append(live, 0)
					copy(live[at+1:], live[at:])
					live[at] = id
					liveSet[id] = true
				}
				if d.Len() != len(live) {
					t.Fatalf("seed %d step %d: Len=%d want %d", seed, step, d.Len(), len(live))
				}
				frozen := d.Freeze()
				got := dynCanonical(c, frozen, live)
				names := make([]string, len(live))
				for i, id := range live {
					names[i] = c.NameOf(id)
				}
				fc, fsp := freshReference(mk, names, theta, mode.cfg)
				fresh := make([]int, fc.Len())
				for i := range fresh {
					fresh[i] = i
				}
				want := dynCanonical(fc, fsp, fresh)
				if !reflect.DeepEqual(got, want) {
					for name, row := range want {
						if !reflect.DeepEqual(got[name], row) {
							t.Errorf("seed %d step %d: row %q: incremental %v, fresh %v", seed, step, name, got[name], row)
						}
					}
					t.Fatalf("seed %d step %d: incremental table diverged from fresh build (%d live names)", seed, step, len(live))
				}
			}
		})
	}
}

// TestDynSparseInsertDeleteNoOp: inserting then deleting a name restores
// the exact prior frozen state — the index-level metamorphic property.
func TestDynSparseInsertDeleteNoOp(t *testing.T) {
	c := NewCache(NewNGramJaccard(3))
	d, err := NewDynSparse(c, 0.65, BlockConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vocab := blockVocab(60, 5)
	var live []int
	for _, n := range vocab[:40] {
		id := c.Intern(n)
		if d.Contains(id) {
			continue
		}
		if err := d.Insert(id); err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	sort.Ints(live)
	before := dynCanonical(c, d.Freeze(), live)
	extra := c.Intern(vocab[50])
	if err := d.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(extra); err != nil {
		t.Fatal(err)
	}
	after := dynCanonical(c, d.Freeze(), live)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("insert-then-delete changed the live rows")
	}
}

// TestDynSparseErrors covers the constructor and mutation refusals.
func TestDynSparseErrors(t *testing.T) {
	c := NewCache(NewNGramJaccard(3))
	if _, err := NewDynSparse(c, 0, BlockConfig{}); err == nil {
		t.Fatal("θ=0 accepted")
	}
	if _, err := NewDynSparse(c, 1.5, BlockConfig{}); err == nil {
		t.Fatal("θ=1.5 accepted")
	}
	if _, err := NewDynSparse(NewCache(TokenCosine{}), 0.65, BlockConfig{}); err == nil {
		t.Fatal("non-n-gram measure accepted")
	}
	if _, err := NewDynSparse(c, 0.65, BlockConfig{Mode: BlockMode(9)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	d, err := NewDynSparse(c, 0.65, BlockConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(0); err == nil {
		t.Fatal("Insert of never-interned ID accepted")
	}
	if err := d.Insert(-1); err == nil {
		t.Fatal("Insert of negative ID accepted")
	}
	id := c.Intern("customer name")
	if err := d.Insert(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(id); err == nil {
		t.Fatal("double Insert accepted")
	}
	if err := d.Delete(id + 7); err == nil {
		t.Fatal("Delete of non-live ID accepted")
	}
	if err := d.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(id); err == nil {
		t.Fatal("double Delete accepted")
	}
	if d.Len() != 0 || d.Contains(id) {
		t.Fatal("index not empty after delete")
	}
	if d.Theta() != 0.65 {
		t.Fatal("Theta mismatch")
	}
}
