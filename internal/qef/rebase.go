package qef

import (
	"sync"

	"ube/internal/model"
	"ube/internal/pcsa"
)

// Rebase recomputes the context's precomputed state after its universe
// was mutated in place (source churn): total cardinality and the
// characteristic ranges are exact rescans, the scratch pool is rebuilt
// so its prototype matches the current signature parameters (a stale
// prototype would panic inside unionEstimate after a full cooperative
// turnover), and the universe-distinct estimate is taken from the
// supplied union signature when the caller maintains one incrementally
// (the engine's pcsa.UnionCounter), or rescanned when union is nil.
//
// A rebased context is bit-identical to NewContext on the mutated
// universe: every recomputed field is either an exact fold or the PCSA
// estimate of the identical union bitmap.
func (ctx *Context) Rebase(union *pcsa.Sketch) error {
	if err := ctx.U.Validate(); err != nil {
		return err
	}
	ctx.totalCard = ctx.U.TotalCardinality()
	ctx.charRange = make(map[string][2]float64)
	ctx.scratch = nil
	for i := range ctx.U.Sources {
		s := &ctx.U.Sources[i]
		if s.Signature != nil && ctx.scratch == nil {
			proto := s.Signature
			ctx.scratch = &sync.Pool{New: func() any {
				sk := proto.Clone()
				sk.Reset()
				return sk
			}}
		}
		//ube:nondeterministic-ok per-key min/max fold is order-independent
		for name, v := range s.Characteristics {
			r, ok := ctx.charRange[name]
			if !ok {
				ctx.charRange[name] = [2]float64{v, v}
				continue
			}
			if v < r[0] {
				r[0] = v
			}
			if v > r[1] {
				r[1] = v
			}
			ctx.charRange[name] = r
		}
	}
	switch {
	case ctx.scratch == nil:
		ctx.universeDistinct = 0
	case union != nil:
		ctx.universeDistinct = union.Estimate()
	default:
		all := model.NewSourceSet(ctx.U.N())
		for i := 0; i < ctx.U.N(); i++ {
			all.Add(i)
		}
		ctx.universeDistinct = ctx.unionEstimate(all)
	}
	return nil
}
