package qef

// Metamorphic properties of the QEF layer: relations that must hold
// between evaluations of related inputs, checked over seeded random
// universes. Unlike the example-based tests, these pin the algebra the
// solver leans on — monotonicity, permutation invariance, union
// idempotence — for both the full Composite pipeline and the delta
// (snapshot + EvalAdd) pipeline the incremental engine uses.

import (
	"bytes"
	"math/rand"
	"testing"

	"ube/internal/model"
	"ube/internal/pcsa"
)

const metamorphicTrials = 40

// randomMetaUniverse builds a universe of n sources with overlapping
// tuple ranges and a random cooperation mask (source 0 always
// cooperates so the PCSA machinery is live).
func randomMetaUniverse(t *testing.T, rng *rand.Rand, n int) *model.Universe {
	t.Helper()
	tuples := make([][]uint64, n)
	coop := make([]bool, n)
	for i := range tuples {
		lo := rng.Intn(5000)
		tuples[i] = seqTuples(lo, lo+500+rng.Intn(4000))
		coop[i] = i == 0 || rng.Float64() < 0.8
	}
	return buildUniverse(t, tuples, coop)
}

// randomSubset returns a random subset of [0,n), possibly empty.
func randomSubset(rng *rand.Rand, u *model.Universe, p float64) *model.SourceSet {
	s := model.NewSourceSet(u.N())
	for i := 0; i < u.N(); i++ {
		if rng.Float64() < p {
			s.Add(i)
		}
	}
	return s
}

// TestMetamorphicCardMonotoneUnderSuperset: S ⊆ T ⇒ Card(S) ≤ Card(T).
// Card is a nonnegative sum over members, so growing the set can never
// shrink the score.
func TestMetamorphicCardMonotoneUnderSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	u := randomMetaUniverse(t, rng, 12)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	c := Card{}
	for trial := 0; trial < metamorphicTrials; trial++ {
		sub := randomSubset(rng, u, 0.4)
		super := sub.Clone()
		for i := 0; i < u.N(); i++ {
			if rng.Float64() < 0.3 {
				super.Add(i)
			}
		}
		lo, hi := c.Eval(ctx, sub), c.Eval(ctx, super)
		if lo > hi {
			t.Fatalf("trial %d: Card(%v) = %v > Card(%v) = %v for a subset",
				trial, sub.Elements(), lo, super.Elements(), hi)
		}
	}
}

// TestMetamorphicCoveragePermutationInvariant: the union signature — and
// therefore Coverage — cannot depend on the order sources are OR-ed in.
// The sketches are compared at the byte level, the strongest form of the
// claim.
func TestMetamorphicCoveragePermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	u := randomMetaUniverse(t, rng, 10)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	cov := Coverage{}
	for trial := 0; trial < metamorphicTrials; trial++ {
		s := randomSubset(rng, u, 0.6)
		var coopIDs []int
		s.ForEach(func(id int) {
			if u.Sources[id].Signature != nil {
				coopIDs = append(coopIDs, id)
			}
		})
		if len(coopIDs) < 2 {
			continue
		}

		union := func(order []int) *pcsa.Sketch {
			sk := u.Sources[order[0]].Signature.Clone()
			for _, id := range order[1:] {
				if err := sk.UnionInto(u.Sources[id].Signature); err != nil {
					t.Fatal(err)
				}
			}
			return sk
		}
		ascending := union(coopIDs)
		want, err := ascending.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 4; p++ {
			perm := append([]int(nil), coopIDs...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			got, err := union(perm).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("trial %d: union over %v has different sketch bytes than over %v", trial, perm, coopIDs)
			}
		}
		// The evaluated Coverage agrees with the explicit union's estimate.
		if ctx.UniverseDistinct() > 0 {
			want := min(ascending.Estimate()/ctx.UniverseDistinct(), 1)
			if got := cov.Eval(ctx, s); got != want {
				t.Fatalf("trial %d: Coverage(%v) = %v, explicit union gives %v", trial, s.Elements(), got, want)
			}
		}
	}
}

// TestMetamorphicSketchUnionAlgebra: sketch union is commutative,
// associative and idempotent at the byte level — the properties that
// make cached PCSA unions (engine snapshots, scratch pools) sound.
func TestMetamorphicSketchUnionAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mk := func() *pcsa.Sketch {
		sk := pcsa.MustNew(256, 7)
		for i, n := 0, 100+rng.Intn(3000); i < n; i++ {
			sk.AddUint64(uint64(rng.Intn(20000)))
		}
		return sk
	}
	marshal := func(sk *pcsa.Sketch, err error) []byte {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		data, err := sk.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for trial := 0; trial < metamorphicTrials; trial++ {
		a, b, c := mk(), mk(), mk()
		ab := marshal(pcsa.Union(a, b))
		ba := marshal(pcsa.Union(b, a))
		if !bytes.Equal(ab, ba) {
			t.Fatalf("trial %d: A∪B != B∪A", trial)
		}
		abC := marshal(pcsa.Union(a, b, c))
		bcA := marshal(pcsa.Union(c, b, a))
		if !bytes.Equal(abC, bcA) {
			t.Fatalf("trial %d: (A∪B)∪C != C∪(B∪A)", trial)
		}
		aa := marshal(pcsa.Union(a, a))
		aAlone := marshal(a, nil)
		if !bytes.Equal(aa, aAlone) {
			t.Fatalf("trial %d: A∪A != A", trial)
		}
	}
}

// TestMetamorphicDeltaMatchesFullPipeline: for S = base ∪ {add}, the
// delta pipeline (Snapshot + EvalAdd) must reproduce the full
// Composite.Eval bit for bit on the data-dependent QEFs — the invariant
// that lets the incremental engine swap pipelines candidate by
// candidate without perturbing the search trajectory.
func TestMetamorphicDeltaMatchesFullPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	u := randomMetaUniverse(t, rng, 12)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewComposite(
		[]QEF{Card{}, Coverage{}, Redundancy{}},
		Weights{"card": 0.25, "coverage": 0.5, "redundancy": 0.25},
	)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeltaEval(comp)
	for trial := 0; trial < metamorphicTrials; trial++ {
		base := randomSubset(rng, u, 0.4)
		add := rng.Intn(u.N())
		if base.Has(add) {
			base.Remove(add)
		}
		S := base.Clone()
		S.Add(add)

		snap := d.Snapshot(ctx, base)
		got := d.EvalAdd(ctx, snap, add, S)
		want := comp.Eval(ctx, S)
		if got != want {
			t.Fatalf("trial %d: EvalAdd(%v + %d) = %v, full Eval = %v (must be bit-identical)",
				trial, base.Elements(), add, got, want)
		}
		// The same snapshot extended by different sources stays exact:
		// snapshots are immutable and shareable.
		for i := 0; i < u.N(); i++ {
			if base.Has(i) || i == add {
				continue
			}
			S2 := base.Clone()
			S2.Add(i)
			if got, want := d.EvalAdd(ctx, snap, i, S2), comp.Eval(ctx, S2); got != want {
				t.Fatalf("trial %d: reused snapshot EvalAdd(+%d) = %v, full Eval = %v", trial, i, got, want)
			}
		}
	}
}
