package qef

import (
	"fmt"
	"sort"

	"ube/internal/floats"
	"ube/internal/model"
)

// Weights maps QEF names to their relative importance. Per §2.3 every
// weight lies in [0,1] and the weights sum to 1.
type Weights map[string]float64

// weightSumTolerance absorbs floating-point error in user-entered weights.
const weightSumTolerance = 1e-9

// Validate checks the §2.3 conditions against a QEF list: one weight per
// QEF, each in [0,1], summing to 1.
func (w Weights) Validate(qefs []QEF) error {
	if len(w) != len(qefs) {
		return fmt.Errorf("qef: %d weights for %d QEFs", len(w), len(qefs))
	}
	sum := 0.0
	for _, q := range qefs {
		wi, ok := w[q.Name()]
		if !ok {
			return fmt.Errorf("qef: missing weight for QEF %q", q.Name())
		}
		if wi < 0 || wi > 1 {
			return fmt.Errorf("qef: weight %v for %q outside [0,1]", wi, q.Name())
		}
		sum += wi
	}
	if !floats.EqTol(sum, 1, weightSumTolerance) {
		return fmt.Errorf("qef: weights sum to %v, want 1", sum)
	}
	return nil
}

// Normalized returns a copy of w scaled so the weights sum to 1. All-zero
// or empty weights are returned unchanged (they cannot be normalized).
// Summation runs in sorted key order: float addition is not associative,
// and map-order sums would make otherwise identical solves differ in the
// low bits from run to run.
func (w Weights) Normalized() Weights {
	keys := make([]string, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += w[k]
	}
	out := make(Weights, len(w))
	for _, k := range keys {
		if sum > 0 {
			out[k] = w[k] / sum
		} else {
			out[k] = w[k]
		}
	}
	return out
}

// Clone returns a copy of w.
func (w Weights) Clone() Weights {
	out := make(Weights, len(w))
	//ube:nondeterministic-ok key-for-key map copy is order-independent
	for k, v := range w {
		out[k] = v
	}
	return out
}

// Composite is the overall quality Q(S) = Σ_i w_i·F_i(S) (§2.3).
type Composite struct {
	qefs    []QEF
	weights []float64
}

// NewComposite pairs QEFs with their weights, validating the §2.3
// conditions.
func NewComposite(qefs []QEF, w Weights) (*Composite, error) {
	if err := w.Validate(qefs); err != nil {
		return nil, err
	}
	c := &Composite{qefs: qefs, weights: make([]float64, len(qefs))}
	for i, q := range qefs {
		c.weights[i] = w[q.Name()]
	}
	return c, nil
}

// Eval returns the overall quality Q(S). Zero-weight QEFs are skipped
// entirely, so turning a dimension off also saves its evaluation cost.
func (c *Composite) Eval(ctx *Context, S *model.SourceSet) float64 {
	q := 0.0
	for i, f := range c.qefs {
		//ube:float-exact zero means exactly zero (dimension off); must match DeltaEval's skip
		if c.weights[i] == 0 {
			continue
		}
		q += c.weights[i] * f.Eval(ctx, S)
	}
	return q
}

// Breakdown returns each QEF's raw (unweighted) score, keyed by name —
// what the µBE UI shows the user next to the chosen solution.
func (c *Composite) Breakdown(ctx *Context, S *model.SourceSet) map[string]float64 {
	out := make(map[string]float64, len(c.qefs))
	for _, f := range c.qefs {
		out[f.Name()] = f.Eval(ctx, S)
	}
	return out
}

// QEFs returns the composite's QEF list in evaluation order.
func (c *Composite) QEFs() []QEF { return c.qefs }

// Weight returns the weight of the named QEF, or 0 if absent.
func (c *Composite) Weight(name string) float64 {
	for i, q := range c.qefs {
		if q.Name() == name {
			return c.weights[i]
		}
	}
	return 0
}
